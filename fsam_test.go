package fsam_test

import (
	"reflect"
	"testing"

	fsam "repro"
)

// run analyzes src with the default configuration.
func run(t *testing.T, src string) *fsam.Analysis {
	t.Helper()
	a, err := fsam.AnalyzeSource("test.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// ptOf queries the flow-sensitive points-to of a global at program exit.
func ptOf(t *testing.T, a *fsam.Analysis, name string) []string {
	t.Helper()
	got, err := a.PointsToGlobal(name)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func wantPts(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(want) == 0 {
		if len(got) != 0 {
			t.Errorf("points-to = %v, want empty", got)
		}
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("points-to = %v, want %v", got, want)
	}
}

// TestFig1aInterleaving: c = *p can read values stored by the main thread
// (*p = r) or the parallel thread (*p = q): pt(c) = {y, z}.
func TestFig1aInterleaving(t *testing.T) {
	a := run(t, `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) {
	*p = q;
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	return 0;
}
`)
	wantPts(t, ptOf(t, a, "c"), "y", "z")
}

// TestFig1bSoundness: t2 outlives its spawner t1 (joined only via t1, which
// does not join it), so *p = r in main may interleave with t2's statements:
// pt(c) = {y, z}.
func TestFig1bSoundness(t *testing.T) {
	a := run(t, `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void bar(void *arg) {
	*p = q;
	c = *p;
}
void foo(void *arg) {
	thread_t t2;
	t2 = spawn(bar, NULL);
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t1;
	t1 = spawn(foo, NULL);
	join(t1);
	*p = r;
	c = *p;
	return 0;
}
`)
	// c is written in two threads; the union over all of c's definitions
	// must include both y and z.
	got, err := a.PointsToGlobalAnywhere("c")
	if err != nil {
		t.Fatal(err)
	}
	wantPts(t, got, "y", "z")
}

// TestFig1cPrecision: *p = r, *p = q, c = *p execute serially (fork
// directly followed by the body and a full join), so the strong update at
// *p = q kills z: pt(c) = {y}.
func TestFig1cPrecision(t *testing.T) {
	a := run(t, `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) {
	*p = q;
}
int main() {
	p = &x; q = &y; r = &z;
	*p = r;
	thread_t t;
	t = spawn(foo, NULL);
	join(t);
	c = *p;
	return 0;
}
`)
	wantPts(t, ptOf(t, a, "c"), "y")
}

// TestFig1dSparsity: *p and *x are not aliases, so the store *x = r must
// not pollute c = *p: pt(c) = {y}.
func TestFig1dSparsity(t *testing.T) {
	a := run(t, `
int y; int z; int a2;
int *x;
int **p;
int *c; int *r;
void foo(void *arg) {
	*x = r;
	*p = &y;   // the store c can observe
}
int main() {
	p = malloc();
	x = &a2;
	r = &z;
	*p = &a2;
	thread_t t;
	t = spawn(foo, NULL);
	c = *p;
	join(t);
	return 0;
}
`)
	got := ptOf(t, a, "c")
	for _, n := range got {
		if n == "z" {
			t.Errorf("pt(c) = %v: contains z from non-aliased *x = r", got)
		}
	}
}

// TestFig1eLockFiltering: the two critical sections are protected by the
// same lock; *p = u's value cannot reach c = *p because the store *p = q is
// the tail of its span and c = *p reads under the same mutex ordering:
// pt(c) must not contain v.
func TestFig1eLockFiltering(t *testing.T) {
	a := run(t, `
int x; int y; int z; int v;
int *p; int *q; int *r; int *u; int *c;
lock_t l1;
void foo(void *arg) {
	lock(&l1);
	*p = u;
	*p = q;
	unlock(&l1);
}
int main() {
	p = &x; q = &y; r = &z; u = &v;
	*p = r;
	thread_t t;
	t = spawn(foo, NULL);
	lock(&l1);
	c = *p;
	unlock(&l1);
	join(t);
	return 0;
}
`)
	got := ptOf(t, a, "c")
	has := map[string]bool{}
	for _, n := range got {
		has[n] = true
	}
	// Paper Figure 1(e): pt(c) = {y, z} — v is filtered by lock analysis
	// because *p = u is not the tail of its span.
	if !has["y"] || !has["z"] {
		t.Errorf("pt(c) = %v, must contain y and z", got)
	}
	if has["v"] {
		t.Errorf("pt(c) = %v: v must be filtered by the lock analysis", got)
	}
}

// TestFig1eNoLockAblation: with lock analysis disabled the spurious value v
// appears, demonstrating what the filter buys.
func TestFig1eNoLockAblation(t *testing.T) {
	src := `
int x; int y; int z; int v;
int *p; int *q; int *r; int *u; int *c;
lock_t l1;
void foo(void *arg) {
	lock(&l1);
	*p = u;
	*p = q;
	unlock(&l1);
}
int main() {
	p = &x; q = &y; r = &z; u = &v;
	*p = r;
	thread_t t;
	t = spawn(foo, NULL);
	lock(&l1);
	c = *p;
	unlock(&l1);
	join(t);
	return 0;
}
`
	a, err := fsam.AnalyzeSource("test.mc", src, fsam.Config{NoLock: true})
	if err != nil {
		t.Fatal(err)
	}
	got := ptOf(t, a, "c")
	has := map[string]bool{}
	for _, n := range got {
		has[n] = true
	}
	if !has["v"] {
		t.Errorf("pt(c) = %v: expected spurious v without lock analysis", got)
	}
}

// TestSequentialStrongUpdateChain checks flow-sensitive precision on purely
// sequential code: the second store kills the first.
func TestSequentialStrongUpdateChain(t *testing.T) {
	a := run(t, `
int x; int y; int z;
int *p; int *c;
int main() {
	p = &x;
	*p = &y;
	*p = &z;
	c = *p;
	return 0;
}
`)
	wantPts(t, ptOf(t, a, "c"), "z")
}

// TestAndersenIsUpperBound: the flow-sensitive result refines the
// pre-analysis (FSAM ⊆ Andersen) on every global.
func TestAndersenIsUpperBound(t *testing.T) {
	a := run(t, `
int x; int y; int z;
int *p; int *q; int *c;
void foo(void *arg) { *p = q; }
int main() {
	p = &x; q = &y;
	*p = &z;
	thread_t t;
	t = spawn(foo, NULL);
	c = *p;
	join(t);
	return 0;
}
`)
	for _, g := range []string{"p", "q", "c"} {
		fs, err := a.PointsToGlobal(g)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := a.AndersenPointsToGlobal(g)
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, n := range fi {
			set[n] = true
		}
		for _, n := range fs {
			if !set[n] {
				t.Errorf("global %s: FS result %v exceeds Andersen %v", g, fs, fi)
			}
		}
	}
}

// TestStatsPopulated sanity-checks the run statistics.
func TestStatsPopulated(t *testing.T) {
	a := run(t, `
int x;
int *p;
void w(void *arg) { *p = &x; }
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	st := a.Stats
	if st.Threads != 2 {
		t.Errorf("threads = %d, want 2", st.Threads)
	}
	if st.DefUseEdges == 0 || st.Stmts == 0 || st.Bytes == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

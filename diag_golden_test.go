package fsam_test

// Golden-file tests for the diagnostics engine: every corpus program's
// checker-suite output is pinned as testdata/diag/<name>.txt, and the
// merged corpus SARIF as testdata/diag/corpus.sarif (the same document CI
// regenerates with cmd/fsamcheck and diffs). Regenerate after an
// intentional checker change with:
//
//	go test . -run TestDiagnosticsGolden -update-golden
//
// The determinism test re-analyzes the corpus from scratch and demands
// byte-identical output — map-iteration order anywhere in the checker
// stack shows up here as a flake.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	fsam "repro"
	"repro/internal/checkers"
	"repro/internal/diag"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/diag golden files")

// corpusDiagnostics analyzes every testdata/*.mc and returns the per-file
// results plus the merged, canonically sorted list.
func corpusDiagnostics(t *testing.T) (map[string][]diag.Diagnostic, []diag.Diagnostic) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(paths))
	}
	sort.Strings(paths)
	perFile := map[string][]diag.Diagnostic{}
	var all []diag.Diagnostic
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		// Slash-normalized names keep goldens portable across platforms.
		name := filepath.ToSlash(path)
		a, err := fsam.AnalyzeSource(name, string(src), fsam.Config{})
		if err != nil {
			t.Fatalf("analyze %s: %v", path, err)
		}
		res, err := a.Diagnostics()
		if err != nil {
			t.Fatalf("diagnostics %s: %v", path, err)
		}
		if len(res.Skipped) > 0 {
			t.Fatalf("%s: checkers skipped at full precision: %v", path, res.Skipped)
		}
		perFile[name] = res.Diags
		all = append(all, res.Diags...)
	}
	diag.Sort(all)
	return perFile, all
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (rerun with -update-golden?): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (rerun with -update-golden if intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

func TestDiagnosticsGolden(t *testing.T) {
	perFile, all := corpusDiagnostics(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "diag"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, diags := range perFile {
		base := strings.TrimSuffix(filepath.Base(name), ".mc")
		var buf bytes.Buffer
		if err := diag.WriteText(&buf, diags); err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		checkGolden(t, filepath.Join("testdata", "diag", base+".txt"), buf.Bytes())
	}
	var sarif bytes.Buffer
	if err := diag.WriteSARIF(&sarif, all, checkers.Rules()); err != nil {
		t.Fatalf("render SARIF: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "diag", "corpus.sarif"), sarif.Bytes())
}

// TestDiagnosticsDeterministic runs the whole corpus twice from scratch
// and demands byte-identical SARIF (order, fingerprints, witnesses).
func TestDiagnosticsDeterministic(t *testing.T) {
	render := func() []byte {
		_, all := corpusDiagnostics(t)
		var buf bytes.Buffer
		if err := diag.WriteSARIF(&buf, all, checkers.Rules()); err != nil {
			t.Fatalf("render: %v", err)
		}
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated corpus runs diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestDiagnosticsSuppression: an inline fsam:ignore comment drops the
// finding on its line and is counted, without re-finalizing the rest.
func TestDiagnosticsSuppression(t *testing.T) {
	src := `
int main() {
	int *p;
	p = malloc(4);
	free(p);
	*p = 2; // fsam:ignore[uaf]
	return 0;
}
`
	a, err := fsam.AnalyzeSource("supp.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res, err := a.Diagnostics()
	if err != nil {
		t.Fatalf("diagnostics: %v", err)
	}
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", res.Suppressed)
	}
	for _, d := range res.Diags {
		if d.Checker == "uaf" {
			t.Fatalf("suppressed uaf finding still reported: %+v", d)
		}
	}

	// The same source without the ignore comment reports the finding.
	b, err := fsam.AnalyzeSource("supp.mc", strings.Replace(src, " // fsam:ignore[uaf]", "", 1), fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	bres, err := b.Diagnostics("uaf")
	if err != nil {
		t.Fatalf("diagnostics: %v", err)
	}
	if len(bres.Diags) != 1 {
		t.Fatalf("unsuppressed run: %d uaf findings, want 1", len(bres.Diags))
	}
}

// TestDiagnosticsBaselineRoundTrip: a baseline written from the corpus
// findings filters all of them out on the next run (the fsamcheck
// `-baseline write` then `-baseline check` contract).
func TestDiagnosticsBaselineRoundTrip(t *testing.T) {
	_, all := corpusDiagnostics(t)
	if len(all) == 0 {
		t.Skip("corpus produced no findings")
	}
	var buf bytes.Buffer
	if err := diag.WriteBaseline(&buf, all); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	base, err := diag.ReadBaseline(&buf)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	remaining, known := base.Filter(all)
	if len(remaining) != 0 || known != len(all) {
		t.Fatalf("baseline left %d of %d findings (known %d)", len(remaining), len(all), known)
	}
}

// TestRacyPubGolden pins the memory-model-aware checker's output: the
// flag-publication fixture analyzed under tso must report racypub (text
// and SARIF pinned as testdata/diag/racypub_tso.{txt,sarif}), and the same
// fixture under sc — where the pattern is safe — must stay silent.
func TestRacyPubGolden(t *testing.T) {
	path := filepath.Join("testdata", "racypub.mc")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.ToSlash(path)

	for _, mm := range []string{"sc", "tso"} {
		a, err := fsam.AnalyzeSource(name, string(src), fsam.Config{MemModel: mm})
		if err != nil {
			t.Fatalf("analyze under %s: %v", mm, err)
		}
		res, err := a.Diagnostics("racypub")
		if err != nil {
			t.Fatalf("diagnostics under %s: %v", mm, err)
		}
		if len(res.Skipped) > 0 {
			t.Fatalf("racypub skipped under %s: %v", mm, res.Skipped)
		}
		if mm == "sc" {
			if len(res.Diags) != 0 {
				t.Fatalf("racypub reported %d finding(s) under sc, want 0: %+v", len(res.Diags), res.Diags)
			}
			continue
		}
		if len(res.Diags) == 0 {
			t.Fatal("racypub reported nothing under tso")
		}
		var txt bytes.Buffer
		if err := diag.WriteText(&txt, res.Diags); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, filepath.Join("testdata", "diag", "racypub_tso.txt"), txt.Bytes())
		var sarif bytes.Buffer
		if err := diag.WriteSARIF(&sarif, res.Diags, checkers.Rules("racypub")); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, filepath.Join("testdata", "diag", "racypub_tso.sarif"), sarif.Bytes())
	}
}

package fsam

import (
	"sort"
	"time"

	"repro/internal/ir"
	"repro/internal/nonsparse"
	"repro/internal/pipeline"
)

// Baseline is a completed NONSPARSE run (the paper's comparison analysis).
type Baseline struct {
	Prog   *ir.Program
	Base   *pipeline.Base
	Result *nonsparse.Result
	Stats  Stats
	// OOT reports that the run exceeded its deadline before convergence.
	OOT bool
}

// AnalyzeSourceNonSparse parses and analyzes src with the NONSPARSE
// baseline. timeout <= 0 disables the deadline.
func AnalyzeSourceNonSparse(name, src string, timeout time.Duration) (*Baseline, error) {
	prog, err := pipeline.Compile(name, src)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgramNonSparse(prog, timeout), nil
}

// AnalyzeProgramNonSparse runs the baseline over an existing program.
func AnalyzeProgramNonSparse(prog *ir.Program, timeout time.Duration) *Baseline {
	b := &Baseline{Prog: prog}
	t0 := time.Now()
	base := pipeline.BuildBase(prog, 0)
	b.Base = base
	b.Stats.Times.PreAnalysis = time.Since(t0) - base.ThreadModelTime
	b.Stats.Times.ThreadModel = base.ThreadModelTime

	t0 = time.Now()
	b.Result = nonsparse.Analyze(base, timeout)
	b.Stats.Times.Sparse = time.Since(t0) // the data-flow solve slot
	b.OOT = b.Result.OOT

	b.Stats.Threads = len(base.Model.Threads)
	b.Stats.Iterations = b.Result.Iterations
	b.Stats.Stmts = prog.NumStmts()
	b.Stats.Bytes = b.Result.Bytes() + base.Pre.Bytes()
	b.Stats.PrePops = base.Pre.Pops
	b.Stats.SolvePops = b.Result.Iterations
	rs := b.Result.InternStats()
	rs.AddFrom(base.Pre.InternStats())
	b.Stats.UniqueSets = rs.Unique
	b.Stats.SetRefs = rs.Refs
	b.Stats.DedupRatio = rs.DedupRatio()
	return b
}

// PointsToGlobal mirrors Analysis.PointsToGlobal for the baseline.
func (b *Baseline) PointsToGlobal(name string) ([]string, error) {
	var obj *ir.Object
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			obj = o
			break
		}
	}
	if obj == nil {
		return nil, errNoGlobal(name)
	}
	set := b.Result.ObjAtExit(b.Prog.Main, obj)
	var out []string
	set.ForEach(func(id uint32) {
		out = append(out, b.Prog.Objects[id].Name)
	})
	sort.Strings(out)
	return out, nil
}

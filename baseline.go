package fsam

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/ir"
	"repro/internal/nonsparse"
	"repro/internal/pipeline"
	"repro/internal/solver"
)

// Baseline is a completed NONSPARSE run (the paper's comparison analysis).
type Baseline struct {
	Prog   *ir.Program
	Base   *pipeline.Base
	Result *nonsparse.Result
	Stats  Stats
	// OOT reports that the run exceeded its deadline before convergence.
	OOT bool
	// Err records a non-deadline failure (e.g. a contained phase panic)
	// when the caller used the error-less AnalyzeProgramNonSparse entry
	// point; nil otherwise.
	Err error
}

// AnalyzeSourceNonSparse parses and analyzes src with the NONSPARSE
// baseline. timeout <= 0 disables the deadline.
func AnalyzeSourceNonSparse(name, src string, timeout time.Duration) (*Baseline, error) {
	ctx, cancel := deadlineCtx(timeout)
	defer cancel()
	b, err := runNonSparse(ctx, solver.NonSparsePhases(name, src, true), pipeline.NewState())
	var pe *pipeline.PhaseError
	if errors.As(err, &pe) && pe.Phase == solver.PhaseCompile {
		return nil, pe.Err // a source error, not an analysis failure
	}
	if err != nil && pipeline.ErrCancelled(err) {
		b.OOT = true // deadline hit before the solve phase even started
		return b, nil
	}
	return b, err
}

// AnalyzeProgramNonSparse runs the baseline over an existing program. It
// never panics: a deadline sets OOT, any other contained failure lands in
// Baseline.Err alongside whatever phases completed.
func AnalyzeProgramNonSparse(prog *ir.Program, timeout time.Duration) *Baseline {
	ctx, cancel := deadlineCtx(timeout)
	defer cancel()
	b, err := AnalyzeProgramNonSparseCtx(ctx, prog)
	if b == nil {
		b = &Baseline{Prog: prog}
	}
	if err != nil {
		if pipeline.ErrCancelled(err) {
			b.OOT = true
			return b
		}
		b.Err = err
	}
	return b
}

// AnalyzeProgramNonSparseCtx runs the baseline under a context. A deadline
// that expires during the solve yields a partial Result with OOT set (and
// nil error); one that expires in an earlier phase surfaces as a
// *pipeline.PhaseError alongside the partially-populated Baseline.
func AnalyzeProgramNonSparseCtx(ctx context.Context, prog *ir.Program) (*Baseline, error) {
	st := pipeline.NewState()
	st.Put(solver.SlotProg, prog)
	return runNonSparse(ctx, solver.NonSparsePhases("", "", false), st)
}

// deadlineCtx maps the legacy timeout parameter onto a context.
func deadlineCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

// runNonSparse schedules the baseline DAG and assembles the facade view.
func runNonSparse(ctx context.Context, phases []pipeline.Phase, st *pipeline.State) (*Baseline, error) {
	mgr, err := newManager(Config{}, "nonsparse", phases)
	if err != nil {
		return nil, err
	}
	rep, runErr := mgr.Run(ctx, st)
	b := &Baseline{
		Prog:   pipeline.Get[*ir.Program](st, solver.SlotProg),
		Base:   pipeline.Get[*pipeline.Base](st, solver.SlotBase),
		Result: pipeline.Get[*nonsparse.Result](st, solver.SlotNSResult),
	}
	b.fillStats(rep)
	return b, runErr
}

// fillStats maps the manager's Report onto the baseline Stats. The solve
// time lands in the Sparse slot so FSAM and NONSPARSE rows line up.
func (b *Baseline) fillStats(rep *pipeline.Report) {
	t := &b.Stats.Times
	t.Compile = rep.Time(solver.PhaseCompile)
	t.PreAnalysis = rep.Time(solver.PhasePre)
	t.ThreadModel = rep.Time(solver.PhaseModel)
	t.Sparse = rep.Time(solver.PhaseNonSparse)
	b.Stats.Bytes = rep.TotalBytes()
	if b.Prog != nil {
		b.Stats.Stmts = b.Prog.NumStmts()
	}
	if b.Base != nil {
		b.Stats.PrePops = b.Base.Pre.Pops
		if b.Base.Model != nil {
			b.Stats.Threads = len(b.Base.Model.Threads)
		}
	}
	if b.Result != nil {
		b.OOT = b.Result.OOT
		b.Stats.Iterations = b.Result.Iterations
		b.Stats.SolvePops = b.Result.Iterations
		rs := b.Result.InternStats()
		if b.Base != nil {
			rs.AddFrom(b.Base.Pre.InternStats())
		}
		b.Stats.UniqueSets = rs.Unique
		b.Stats.SetRefs = rs.Refs
		b.Stats.DedupRatio = rs.DedupRatio()
	}
}

// PointsToGlobal mirrors Analysis.PointsToGlobal for the baseline.
func (b *Baseline) PointsToGlobal(name string) ([]string, error) {
	var obj *ir.Object
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			obj = o
			break
		}
	}
	if obj == nil {
		return nil, errNoGlobal(name)
	}
	set := b.Result.ObjAtExit(b.Prog.Main, obj)
	var out []string
	set.ForEach(func(id uint32) {
		out = append(out, b.Prog.Objects[id].Name)
	})
	sort.Strings(out)
	return out, nil
}

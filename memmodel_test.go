package fsam_test

// Memory-model properties of the thread-modular engine over the committed
// fixture corpus: relaxing the model only ever widens results (sc ⊆ tso ⊆
// pso per variable and per global), and at least one committed fixture
// witnesses each inclusion strictly — so the models are ordered AND
// genuinely distinct on real programs, not just by construction.

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	fsam "repro"
	"repro/internal/ir"
)

// memModelChain is the widening order under test.
var memModelChain = []string{"sc", "tso", "pso"}

// analyzeTmodCorpus analyzes one fixture under tmod with each memory
// model, failing on degradation.
func analyzeTmodCorpus(t *testing.T, path string) []*fsam.Analysis {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*fsam.Analysis, 0, len(memModelChain))
	for _, mm := range memModelChain {
		a, err := fsam.AnalyzeSource(filepath.ToSlash(path), string(src),
			fsam.Config{Engine: "tmod", MemModel: mm})
		if err != nil {
			t.Fatalf("%s under %s: %v", path, mm, err)
		}
		if a.Stats.Degraded != "" {
			t.Fatalf("%s under %s degraded: %s", path, mm, a.Stats.Degraded)
		}
		out = append(out, a)
	}
	return out
}

func corpusPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(paths))
	}
	sort.Strings(paths)
	return paths
}

// TestMemModelMonotonic: pt(sc) ⊆ pt(tso) ⊆ pt(pso) per top-level
// variable and per global on every fixture.
func TestMemModelMonotonic(t *testing.T) {
	for _, path := range corpusPaths(t) {
		runs := analyzeTmodCorpus(t, path)
		for vi, v := range runs[0].Prog.Vars {
			prev := runs[0].PointsToVar(v)
			for i := 1; i < len(runs); i++ {
				next := runs[i].PointsToVar(runs[i].Prog.Vars[vi])
				if !prev.SubsetOf(next) {
					t.Errorf("%s: pt(%s) under %s = %s exceeds %s = %s",
						path, v, memModelChain[i-1], prev, memModelChain[i], next)
				}
				prev = next
			}
		}
		for _, o := range runs[0].Prog.Objects {
			if o.Kind != ir.ObjGlobal {
				continue
			}
			prev, err := runs[0].PointsToGlobal(o.Name)
			if err != nil {
				continue
			}
			for i := 1; i < len(runs); i++ {
				next, err := runs[i].PointsToGlobal(o.Name)
				if err != nil {
					t.Fatalf("%s: pt(%s) under %s: %v", path, o.Name, memModelChain[i], err)
				}
				if !nameSubset(prev, next) {
					t.Errorf("%s: pt(%s) under %s = %v exceeds %s = %v",
						path, o.Name, memModelChain[i-1], prev, memModelChain[i], next)
				}
				prev = next
			}
		}
	}
}

// TestMemModelStrictness: the committed memmodel.mc fixture separates the
// three models — pso answers a strict superset of sc, with tso strictly in
// between on the late reader and pso alone widening the early reader.
func TestMemModelStrictness(t *testing.T) {
	runs := analyzeTmodCorpus(t, filepath.Join("testdata", "memmodel.mc"))
	pt := func(i int, name string) []string {
		t.Helper()
		s, err := runs[i].PointsToGlobal(name)
		if err != nil {
			t.Fatalf("pt(%s) under %s: %v", name, memModelChain[i], err)
		}
		return s
	}
	late := [3][]string{pt(0, "outLate"), pt(1, "outLate"), pt(2, "outLate")}
	early := [3][]string{pt(0, "outEarly"), pt(1, "outEarly"), pt(2, "outEarly")}
	if len(late[0]) >= len(late[1]) {
		t.Errorf("tso did not strictly widen outLate: sc=%v tso=%v", late[0], late[1])
	}
	if len(early[1]) >= len(early[2]) {
		t.Errorf("pso did not strictly widen outEarly: tso=%v pso=%v", early[1], early[2])
	}
	if !nameSubset(late[0], late[2]) || len(late[0]) >= len(late[2]) {
		t.Errorf("pso is not a strict superset of sc on outLate: sc=%v pso=%v", late[0], late[2])
	}
}

// nameSubset reports a ⊆ b over sorted-or-not name slices.
func nameSubset(a, b []string) bool {
	in := map[string]bool{}
	for _, n := range b {
		in[n] = true
	}
	for _, n := range a {
		if !in[n] {
			return false
		}
	}
	return true
}

// Bugfinder: run all three analysis clients the paper motivates — data-race
// detection, deadlock detection, and memory-leak detection — over one buggy
// producer/consumer program.
//
// Run with: go run ./examples/bugfinder
package main

import (
	"fmt"
	"log"

	fsam "repro"
)

// The program contains all three bug classes:
//   - a data race on the shared counter (written without the lock),
//   - an AB-BA deadlock between mu and logmu,
//   - a leaked buffer (malloc'd, never freed, dropped at exit).
const buggy = `
int counter;
int *stats;
lock_t mu; lock_t logmu;

void producer(void *arg) {
	int *buf;
	buf = malloc();        // leaked: never freed, never published
	*buf = 1;
	lock(&mu);
	lock(&logmu);          // order: mu -> logmu
	stats = &counter;
	unlock(&logmu);
	unlock(&mu);
	counter = 1;           // race: unlocked write
}

void logger(void *arg) {
	lock(&logmu);
	lock(&mu);             // order: logmu -> mu  (deadlock with producer)
	stats = &counter;
	unlock(&mu);
	unlock(&logmu);
	counter = 2;           // race: unlocked write
}

int main() {
	thread_t p; thread_t l;
	p = spawn(producer, NULL);
	l = spawn(logger, NULL);
	join(p);
	join(l);
	return 0;
}
`

func main() {
	a, err := fsam.AnalyzeSource("buggy.mc", buggy, fsam.Config{})
	if err != nil {
		log.Fatal(err)
	}

	races, err := a.Races()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== data races: %d candidate(s)\n", len(races))
	for _, r := range races {
		fmt.Println("  ", r)
	}

	deadlocks, err := a.Deadlocks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== deadlocks: %d candidate(s)\n", len(deadlocks))
	for _, r := range deadlocks {
		fmt.Println("  ", r)
	}

	leaks := a.Leaks()
	fmt.Printf("\n== memory leaks: %d candidate(s)\n", len(leaks))
	for _, r := range leaks {
		fmt.Println("  ", r)
	}
}

// Quickstart: analyze a small multithreaded MiniC program with FSAM and
// query flow-sensitive points-to results.
//
// The program is the paper's Figure 1(a): a thread's store *p = q may
// interleave with the main thread's *p = r, so c = *p sees both y and z.
// Changing the fork into fork+join before the load (Figure 1(c)) would
// shrink the answer to {y} thanks to the strong update.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	fsam "repro"
)

const program = `
int x; int y; int z;
int *p; int *q; int *r; int *c;

void foo(void *arg) {
	*p = q;
}

int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	join(t);
	return 0;
}
`

func main() {
	a, err := fsam.AnalyzeSource("fig1a.mc", program, fsam.Config{})
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range []string{"p", "q", "r", "c"} {
		pt, err := a.PointsToGlobal(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pt(%s) = {%s}\n", g, strings.Join(pt, ", "))
	}

	st := a.Stats
	fmt.Printf("\n%d statements, %d abstract threads, %d def-use edges "+
		"(%d thread-aware), solved in %s\n",
		st.Stmts, st.Threads, st.DefUseEdges, st.ThreadEdges, st.Times.Total())

	// Compare with the flow-insensitive pre-analysis to see what
	// flow-sensitivity buys.
	fi, _ := a.AndersenPointsToGlobal("c")
	fmt.Printf("Andersen pt(c) = {%s} (flow-insensitive upper bound)\n",
		strings.Join(fi, ", "))
}

// Race detection: use FSAM's interference analyses to find data races in a
// small producer/consumer program, then show that adding a mutex silences
// the reports — the paper's motivating client (Section 1).
//
// Run with: go run ./examples/racedetect
package main

import (
	"fmt"
	"log"

	fsam "repro"
)

const racy = `
int items[8];
int *head;
int count;

void producer(void *arg) {
	head = &count;      // unprotected write to head
	*head = *head + 1;  // unprotected read-modify-write of count
}

int main() {
	head = &count;
	thread_t prod;
	prod = spawn(producer, NULL);
	*head = 0;          // races with the producer's accesses
	int snapshot;
	snapshot = *head;   // racy read
	join(prod);
	return 0;
}
`

const fixed = `
int items[8];
int *head;
int count;
lock_t m;

void producer(void *arg) {
	lock(&m);
	head = &count;
	*head = *head + 1;
	unlock(&m);
}

int main() {
	head = &count;
	thread_t prod;
	prod = spawn(producer, NULL);
	lock(&m);
	*head = 0;
	int snapshot;
	snapshot = *head;
	unlock(&m);
	join(prod);
	return 0;
}
`

func report(name, src string) int {
	a, err := fsam.AnalyzeSource(name, src, fsam.Config{})
	if err != nil {
		log.Fatal(err)
	}
	races, err := a.Races()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s: %d candidate race(s)\n", name, len(races))
	for _, r := range races {
		fmt.Println("  ", r)
	}
	return len(races)
}

func main() {
	before := report("racy.mc", racy)
	after := report("fixed.mc", fixed)
	fmt.Printf("\nadding the mutex removed %d report(s); %d remain\n",
		before-after, after)
}

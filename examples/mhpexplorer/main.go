// MHP explorer: build the static thread model and interleaving analysis for
// the paper's Figure 8 program and print the thread relations it derives —
// spawning, joining (full/partial), happens-before — plus the
// may-happen-in-parallel verdict for every labeled statement pair.
//
// Run with: go run ./examples/mhpexplorer
package main

import (
	"fmt"
	"log"

	"repro/internal/ir"
	"repro/internal/pipeline"
)

// The paper's Figure 8, with s1..s5 modeled as stores to labeled globals.
const program = `
int s1g; int s2g; int s3g; int s4g; int s5g;

void bar(void *a) {
	s5g = 1;                 // s5
}
void foo1(void *a) {
	thread_t t3;
	t3 = spawn(bar, NULL);   // fk3
	join(t3);                // jn3
}
void foo2(void *a) {
	bar(NULL);               // cs4
	s4g = 1;                 // s4
}
int main() {
	s1g = 1;                 // s1
	thread_t t1;
	t1 = spawn(foo1, NULL);  // fk1
	s2g = 1;                 // s2
	join(t1);                // jn1
	thread_t t2;
	t2 = spawn(foo2, NULL);  // fk2
	s3g = 1;                 // s3
	join(t2);                // jn2
	return 0;
}
`

func main() {
	base, err := pipeline.FromSource("fig8.mc", program)
	if err != nil {
		log.Fatal(err)
	}
	m := base.Model

	fmt.Println("Abstract threads:")
	for _, t := range m.Threads {
		multi := ""
		if t.Multi {
			multi = " (multi-forked)"
		}
		routine := "main"
		if len(t.Routines) > 0 {
			routine = t.Routines[0].Name
		}
		fmt.Printf("  t%d runs %s%s\n", t.ID, routine, multi)
	}

	fmt.Println("\nSpawning relation (transitive):")
	for _, a := range m.Threads {
		for _, b := range m.Threads {
			if m.IsAncestor(a, b) {
				fmt.Printf("  t%d ==> t%d\n", a.ID, b.ID)
			}
		}
	}

	fmt.Println("\nJoin edges:")
	for _, e := range m.Joins {
		kind := "partial"
		if e.Full {
			kind = "full"
		}
		if e.JoinAll {
			kind += ", join-all"
		}
		fmt.Printf("  t%d <== t%d at [%s] (%s)\n", e.Joiner.ID, e.Joinee.ID, e.Site, kind)
	}

	fmt.Println("\nHappens-before among siblings:")
	for _, a := range m.Threads {
		for _, b := range m.Threads {
			if m.Siblings(a, b) && m.HappensBefore(a, b) {
				fmt.Printf("  t%d > t%d\n", a.ID, b.ID)
			}
		}
	}

	il := base.Interleavings()
	labeled := map[string]ir.Stmt{}
	for _, s := range base.Prog.Stmts {
		st, ok := s.(*ir.Store)
		if !ok {
			continue
		}
		for _, a := range base.Prog.Stmts {
			ad, ok := a.(*ir.AddrOf)
			if ok && ad.Dst == st.Addr && ad.Obj.Kind == ir.ObjGlobal {
				labeled[ad.Obj.Name] = st
			}
		}
	}
	names := []string{"s1g", "s2g", "s3g", "s4g", "s5g"}
	fmt.Println("\nMay-happen-in-parallel statement pairs:")
	for i, a := range names {
		for _, b := range names[i+1:] {
			sa, sb := labeled[a], labeled[b]
			if sa == nil || sb == nil {
				continue
			}
			if il.MHPStmts(sa, sb) {
				fmt.Printf("  %s || %s\n", a, b)
			}
		}
	}
	fmt.Println("\n(paper Figure 8(d): s2||s5, s3||s5, s3||s4)")
}

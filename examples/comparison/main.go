// Comparison: run FSAM and the NONSPARSE baseline side by side on one of
// the generated Table 1 workloads and report the time/memory gap — a
// single-program slice of the paper's Table 2.
//
// Run with: go run ./examples/comparison [benchmark] [scale]
// (defaults: bodytrack, scale 3)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	fsam "repro"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	name := "bodytrack"
	scale := 3
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		if v, err := strconv.Atoi(os.Args[2]); err == nil {
			scale = v
		}
	}

	src, err := workload.Generate(name, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s at scale %d: %d lines of MiniC\n\n",
		name, scale, workload.LOC(src))

	prog, err := pipeline.Compile(name, src)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	a := fsam.AnalyzeProgram(prog, fsam.Config{})
	fsamTime := time.Since(t0)
	fmt.Printf("FSAM:      %10.3fs  %8.2f MB  (%d def-use edges, %d threads)\n",
		fsamTime.Seconds(), float64(a.Stats.Bytes)/1e6,
		a.Stats.DefUseEdges, a.Stats.Threads)

	prog2, err := pipeline.Compile(name, src)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	b := fsam.AnalyzeProgramNonSparse(prog2, 5*time.Minute)
	nsTime := time.Since(t0)
	if b.OOT {
		fmt.Printf("NONSPARSE: out of time (>5m)\n")
		return
	}
	fmt.Printf("NONSPARSE: %10.3fs  %8.2f MB  (%d node transfers)\n",
		nsTime.Seconds(), float64(b.Stats.Bytes)/1e6, b.Stats.Iterations)

	fmt.Printf("\nFSAM is %.1fx faster and uses %.1fx less memory on this input\n",
		nsTime.Seconds()/fsamTime.Seconds(),
		float64(b.Stats.Bytes)/float64(a.Stats.Bytes))
	fmt.Println("(paper Table 2 average: 12x faster, 28x less memory)")
}

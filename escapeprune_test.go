package fsam_test

// Differential soundness gate for the thread-escape pruning oracle: over
// the whole fixture corpus, EscapePrune on versus off must be
// byte-identical on every externally observable result — points-to sets,
// races, leaks, and the rendered diagnostics — while the pruned runs
// actually skip work somewhere in the corpus (a prune that never fires
// gates nothing).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	fsam "repro"
	"repro/internal/diag"
	"repro/internal/ir"
)

// observableState renders everything a client can observe from a.
func observableState(t *testing.T, path string, a *fsam.Analysis) string {
	t.Helper()
	var buf bytes.Buffer
	var globals []string
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal {
			globals = append(globals, o.Name)
		}
	}
	sort.Strings(globals)
	for _, g := range globals {
		if pt, err := a.PointsToGlobal(g); err == nil {
			fmt.Fprintf(&buf, "pt %s = %v\n", g, pt)
		}
	}
	races, err := a.Races()
	if err != nil {
		t.Fatalf("%s: Races: %v", path, err)
	}
	for _, r := range races {
		fmt.Fprintf(&buf, "race %s\n", r)
	}
	for _, l := range a.Leaks() {
		fmt.Fprintf(&buf, "leak %s\n", l)
	}
	res, err := a.Diagnostics()
	if err != nil {
		t.Fatalf("%s: Diagnostics: %v", path, err)
	}
	if err := diag.WriteText(&buf, res.Diags); err != nil {
		t.Fatalf("%s: WriteText: %v", path, err)
	}
	return buf.String()
}

func TestEscapePruneCorpusDifferential(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (%d files)", err, len(paths))
	}
	sort.Strings(paths)
	totalPruned := 0
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.ToSlash(path)
		on, err := fsam.AnalyzeSource(name, string(src), fsam.Config{})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		off, err := fsam.AnalyzeSource(name, string(src),
			fsam.Config{EscapePrune: fsam.EscapePruneOff})
		if err != nil {
			t.Fatalf("%s (off): %v", path, err)
		}
		if off.Stats.EscapePrunedEdges != 0 {
			t.Errorf("%s: off run pruned %d edges", path, off.Stats.EscapePrunedEdges)
		}
		if got := on.Stats.EscapeLocal + on.Stats.EscapeHandedOff +
			on.Stats.EscapeShared; got != len(on.Prog.Objects) {
			t.Errorf("%s: escape counters cover %d of %d objects",
				path, got, len(on.Prog.Objects))
		}
		totalPruned += on.Stats.EscapePrunedEdges
		if a, b := observableState(t, path, on), observableState(t, path, off); a != b {
			t.Errorf("%s: pruned and unpruned runs differ\n--- on ---\n%s--- off ---\n%s",
				path, a, b)
		}
	}
	if totalPruned == 0 {
		t.Error("EscapePrune skipped zero interference edges across the whole corpus")
	}
}

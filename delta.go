package fsam

// Incremental re-analysis. AnalyzeDeltaCtx re-analyzes an edited source
// against a completed base Analysis, adopting every per-function fact the
// edit provably did not change instead of recomputing it:
//
//   - Tier "noop": the patch's program-level content address equals the
//     base's (whitespace, comments, reformatting). The base analysis is
//     adopted wholesale; zero phases run.
//   - Tier "iso": some function keys changed but the rebuilt IR is
//     isomorphic to the base's (ir.Isomorphic) — every VarID/ObjID/StmtID
//     denotes the same entity, so the expensive ID-indexed facts
//     (pre-analysis rows, def-use graph, sparse solve rows) are rebound
//     onto the fresh program and only the cheap glue (call graph, ICFG,
//     thread model, interleaving, locks) is recomputed. This is the tier
//     a typical one-function edit (tweaked constants, reordered
//     arithmetic over the same pointers) lands in.
//   - Tier "semantic": the edit changed pointer-relevant structure. The
//     landed engine's full pipeline re-runs over the fresh program; the
//     fact store invalidates the changed functions' records and the
//     report names the functions whose interference facts were impacted
//     (the changed functions' transitive callers/callees intersected by
//     mod/ref).
//
// Every tier is observably equal to a from-scratch analysis of the new
// source: points-to query answers, Table 1 counts and diagnostic
// fingerprints are identical (for "noop" adoptions, diagnostics may carry
// the base run's line numbers — the edit only moved text, and
// fingerprints are line-independent by construction).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/facts"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/irbuild"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/solver"
)

// DefaultFacts is the process-wide per-function fact store delta runs use
// when the base Analysis carries no store of its own. Every engine reads
// facts through one store; records are content-addressed (and salted by
// the configuration), so engines and configurations can share it without
// ever adopting each other's facts.
var DefaultFacts = facts.NewStore(0)

// Delta tiers (DeltaReport.Tier).
const (
	// DeltaNoop adopts the base analysis unchanged (equal program keys).
	DeltaNoop = "noop"
	// DeltaIso rebinds the base's ID-indexed facts onto the re-built IR.
	DeltaIso = "iso"
	// DeltaSemantic re-runs the full pipeline.
	DeltaSemantic = "semantic"
)

// DeltaReport describes what an incremental re-analysis did.
type DeltaReport struct {
	// Tier is one of DeltaNoop, DeltaIso, DeltaSemantic.
	Tier string
	// ProgKey and BaseProgKey are the content addresses of the new and
	// base programs (the address fsamd accepts as "base").
	ProgKey     string
	BaseProgKey string
	// ChangedFuncs and RemovedFuncs are the functions whose content
	// address changed or disappeared, sorted. AdoptedFuncs counts the
	// functions whose per-function facts were adopted unchanged.
	ChangedFuncs []string
	RemovedFuncs []string
	AdoptedFuncs int
	// ImpactedFuncs lists the functions whose interference-phase facts
	// had to be recomputed: the changed functions' transitive callers and
	// callees, widened to every function whose mod/ref sets intersect
	// theirs. Empty for the noop tier.
	ImpactedFuncs []string
	// PhasesRun lists the pipeline phases that actually executed, in DAG
	// order. Empty for the noop tier.
	PhasesRun []string
	// Facts is the fact-store counter delta of this run.
	Facts facts.Counters
	// IsoNote explains why the iso tier was not taken (first structural
	// mismatch, or rebind-eligibility reason); empty when it was.
	IsoNote string
}

// AnalyzeDelta is AnalyzeDeltaCtx with a background context.
func AnalyzeDelta(base *Analysis, name, src string) (*Analysis, *DeltaReport, error) {
	return AnalyzeDeltaCtx(context.Background(), base, name, src)
}

// AnalyzeDeltaCtx re-analyzes src (an edit of the program base analyzed)
// under base's configuration, reusing base's per-function facts wherever
// the edit did not invalidate them. The returned Analysis answers every
// query as a from-scratch AnalyzeSourceCtx of src would; the report says
// which tier the edit landed in and what was reused. Malformed source
// returns a positioned error, like AnalyzeSourceCtx.
func AnalyzeDeltaCtx(ctx context.Context, base *Analysis, name, src string) (*Analysis, *DeltaReport, error) {
	if base == nil {
		return nil, nil, errors.New("nil base analysis")
	}
	cfg := base.Config
	baseSnap, err := base.factsSnapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("base analysis cannot be delta-keyed: %w", err)
	}
	store := base.factsStore()
	before := store.Counters()
	base.installFacts(baseSnap)

	t0 := time.Now()
	file, err := parser.ParseChecked(name, src)
	if err != nil {
		return nil, nil, err
	}
	parseDur := time.Since(t0)
	next := facts.SnapshotFile(cfg.Canonical(), file)
	for _, rec := range next.Funcs {
		store.Lookup(rec.Key)
	}
	d := baseSnap.Diff(next)
	rep := &DeltaReport{
		ProgKey:      next.ProgKey,
		BaseProgKey:  baseSnap.ProgKey,
		ChangedFuncs: sortedNames(d.Changed),
		RemovedFuncs: sortedNames(d.Removed),
		AdoptedFuncs: len(d.Same),
	}

	if next.ProgKey == baseSnap.ProgKey {
		rep.Tier = DeltaNoop
		rep.Facts = store.Counters().Sub(before)
		return base, rep, nil
	}
	rep.ImpactedFuncs = impactedFuncs(base, d.Changed, d.Removed)

	t1 := time.Now()
	fresh, err := irbuild.BuildChecked(file)
	if err != nil {
		return nil, nil, err
	}
	compileDur := parseDur + time.Since(t1)

	// The changed and removed functions' records are stale by content
	// address; drop them so the counters reflect exactly what this edit
	// cost. Unchanged functions keep their records — their
	// pre-interference facts stay valid even when their interference
	// facts recompute.
	for _, nm := range append(append([]string(nil), d.Changed...), d.Removed...) {
		if r, ok := baseSnap.ByName[nm]; ok {
			store.Invalidate(r.Key)
		}
	}

	var a *Analysis
	var phases []string
	if note := base.deltaIneligible(); note != "" {
		rep.IsoNote = note
	} else if ok, why := ir.Isomorphic(base.Prog, fresh); !ok {
		rep.IsoNote = why
	} else {
		bctx := engine.WithBudget(ctx, engine.Budget{MemBytes: cfg.MemBudgetBytes, MaxSteps: cfg.StepLimit})
		a, phases, err = base.deltaRebind(bctx, cfg, fresh)
		if err != nil {
			a = nil
			rep.IsoNote = "rebind failed: " + err.Error()
		} else {
			rep.Tier = DeltaIso
		}
	}
	if a == nil {
		rep.Tier = DeltaSemantic
		st := pipeline.NewState()
		st.Put(solver.SlotProg, fresh)
		full, rerr := runEngine(ctx, cfg, "", "", false, st)
		if full == nil || rerr != nil {
			rep.Facts = store.Counters().Sub(before)
			return full, rep, rerr
		}
		a = full
		for _, p := range solver.Lookup(cfg.Engine).Phases(cfg) {
			phases = append(phases, p.Name)
		}
	}
	rep.PhasesRun = phases
	a.SourceName = name
	a.Suppress = diag.ParseSuppressions(src)
	a.source = src
	a.FactsStore = base.FactsStore
	a.seedSnapshot(next)
	a.Stats.Times.Compile = compileDur
	a.installFacts(next)
	rep.Facts = store.Counters().Sub(before)
	return a, rep, nil
}

// deltaIneligible reports why base's facts cannot be structurally
// rebound (empty when they can).
func (a *Analysis) deltaIneligible() string {
	switch {
	case a.Prog == nil || a.Base == nil || a.Base.Pre == nil:
		return "base analysis holds no completed pre-analysis"
	case a.Stats.Degraded != "":
		return "base analysis is degraded: " + a.Stats.Degraded
	}
	switch a.Engine {
	case "fsam", "oblivious":
		if a.Graph == nil || a.Result == nil {
			return "base analysis holds no sparse result"
		}
	case "cfgfree":
		if a.CFGFree == nil {
			return "base analysis holds no cfgfree result"
		}
	case "andersen":
	default:
		return fmt.Sprintf("engine %q has no incremental rebind path", a.Engine)
	}
	return ""
}

// deltaRebind executes the iso tier: adopt every ID-indexed fact of base
// by rebinding it onto fresh, recompute only the glue phases, and
// assemble a full Analysis. Any divergence (field-object replay, a glue
// phase failure, a panic in rebind code) is an error — the caller falls
// back to the semantic tier, so a rebind bug can cost time but never
// wrong results.
func (base *Analysis) deltaRebind(ctx context.Context, cfg Config, fresh *ir.Program) (a *Analysis, phases []string, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, fmt.Errorf("rebind panicked: %v", r)
		}
	}()
	if err := fresh.ReplayFieldObjs(base.Prog); err != nil {
		return nil, nil, err
	}
	newPre := base.Base.Pre.Rebind(fresh)

	var ps []pipeline.Phase
	switch base.Engine {
	case "fsam":
		ps = []pipeline.Phase{solver.PreAnalysisFromPhase(newPre, cfg.CtxDepth),
			solver.ThreadModelPhase(), solver.InterleavePhase(cfg.NoInterleaving)}
		if !cfg.NoLock {
			ps = append(ps, solver.LocksPhase())
		}
	case "oblivious":
		ps = []pipeline.Phase{solver.PreAnalysisFromPhase(newPre, cfg.CtxDepth),
			solver.ThreadModelPhase()}
	case "cfgfree", "andersen":
		ps = []pipeline.Phase{solver.PreAnalysisFromPhase(newPre, cfg.CtxDepth)}
	default:
		return nil, nil, fmt.Errorf("engine %q has no incremental rebind path", base.Engine)
	}

	st := pipeline.NewState()
	st.Put(solver.SlotProg, fresh)
	mgr, err := newManager(cfg, base.Engine, ps)
	if err != nil {
		return nil, nil, err
	}
	rep, err := mgr.Run(ctx, st)
	if err != nil {
		return nil, nil, err
	}
	newBase := pipeline.Get[*pipeline.Base](st, solver.SlotBase)
	switch base.Engine {
	case "fsam", "oblivious":
		ng := base.Graph.Rebind(fresh, newPre, newBase.Model)
		st.Put(solver.SlotVFG, ng)
		st.Put(solver.SlotResult, base.Result.Rebind(fresh, ng, newBase.Model))
	case "cfgfree":
		st.Put(solver.SlotCFGFree, base.CFGFree.Rebind(fresh))
	}
	a = assemble(st)
	a.Engine = base.Engine
	a.Config = cfg
	a.fillStats(rep)
	a.Precision = base.Precision
	a.view = solver.Lookup(base.Engine).Result(st)
	if a.view == nil {
		return nil, nil, errors.New("rebound state yields no engine view")
	}
	for _, p := range ps {
		phases = append(phases, p.Name)
	}
	return a, phases, nil
}

// impactedFuncs computes the functions whose interference facts the edit
// touches: the changed/removed functions' transitive callers and callees
// over the base call graph, widened — when the base carries mod/ref
// summaries — to every function whose mod/ref sets intersect that
// closure's. Sorted by name.
func impactedFuncs(base *Analysis, changed, removed []string) []string {
	if base.Prog == nil || base.Base == nil || base.Base.Pre == nil {
		return sortedNames(append(append([]string(nil), changed...), removed...))
	}
	pre := base.Base.Pre

	// Undirected call adjacency (callers and callees both depend on the
	// changed function's interference behavior).
	adj := map[*ir.Function][]*ir.Function{}
	link := func(site ir.Stmt, callee *ir.Function) {
		caller := ir.StmtFunc(site)
		if caller == nil || callee == nil {
			return
		}
		adj[caller] = append(adj[caller], callee)
		adj[callee] = append(adj[callee], caller)
	}
	for c, targets := range pre.CallTargets {
		for _, t := range targets {
			link(c, t)
		}
	}
	for f, routines := range pre.ForkTargets {
		for _, r := range routines {
			link(f, r)
		}
	}

	seed := map[*ir.Function]bool{}
	for _, nm := range changed {
		if f := base.Prog.FuncByName[nm]; f != nil {
			seed[f] = true
		}
	}
	for _, nm := range removed {
		if f := base.Prog.FuncByName[nm]; f != nil {
			seed[f] = true
		}
	}
	closure := map[*ir.Function]bool{}
	var stack []*ir.Function
	for f := range seed {
		closure[f] = true
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range adj[f] {
			if !closure[g] {
				closure[g] = true
				stack = append(stack, g)
			}
		}
	}

	impacted := map[string]bool{}
	for _, nm := range append(append([]string(nil), changed...), removed...) {
		impacted[nm] = true
	}
	for f := range closure {
		impacted[f.Name] = true
	}
	if base.Graph != nil && base.Graph.MR != nil {
		mr := base.Graph.MR
		effect := &pts.Set{}
		for f := range closure {
			effect.UnionWith(mr.Mod(f))
			effect.UnionWith(mr.Ref(f))
		}
		for _, f := range base.Prog.Funcs {
			if impacted[f.Name] {
				continue
			}
			if mr.Mod(f).IntersectsWith(effect) || mr.Ref(f).IntersectsWith(effect) {
				impacted[f.Name] = true
			}
		}
	}
	var out []string
	for nm := range impacted {
		out = append(out, nm)
	}
	sort.Strings(out)
	return out
}

// factsStore returns the store this analysis' delta runs use.
func (a *Analysis) factsStore() *facts.Store {
	if a.FactsStore != nil {
		return a.FactsStore
	}
	return DefaultFacts
}

// factsSnapshot computes (once) the per-function key table of this
// analysis' retained source.
func (a *Analysis) factsSnapshot() (*facts.Snapshot, error) {
	a.snapOnce.Do(func() {
		if a.source == "" {
			a.snapErr = errors.New("analysis retains no source text (analyze via AnalyzeSource to enable incremental runs)")
			return
		}
		f, err := parser.ParseChecked(a.SourceName, a.source)
		if err != nil {
			a.snapErr = err
			return
		}
		a.snap = facts.SnapshotFile(a.Config.Canonical(), f)
	})
	return a.snap, a.snapErr
}

// seedSnapshot pre-fills the memoized snapshot (the delta path already
// parsed the source, so re-deriving it would be pure waste).
func (a *Analysis) seedSnapshot(s *facts.Snapshot) {
	a.snapOnce.Do(func() { a.snap = s })
}

// ProgKey returns this analysis' program-level content address — the
// value fsamd accepts as the "base" of a patch request.
func (a *Analysis) ProgKey() (string, error) {
	s, err := a.factsSnapshot()
	if err != nil {
		return "", err
	}
	return s.ProgKey, nil
}

// installFacts installs one record per function of snap into the store,
// filled with this analysis' per-function producer counters (IR size,
// memory-SSA definitions, thread-oblivious def-use out-edges). Install
// refreshes existing records without counting lookups, so re-installing a
// base's facts before a delta is idempotent.
func (a *Analysis) installFacts(snap *facts.Snapshot) {
	store := a.factsStore()
	irStmts := map[string]int{}
	if a.Prog != nil {
		for _, f := range a.Prog.Funcs {
			n := 0
			for _, b := range f.Blocks {
				n += len(b.Stmts)
			}
			irStmts[f.Name] = n
		}
	}
	memDefs := map[string]int{}
	oblOut := map[string]int{}
	if a.Graph != nil {
		for _, n := range a.Graph.Nodes {
			if n.Func == nil {
				continue
			}
			memDefs[n.Func.Name]++
			for _, e := range a.Graph.Out[n.ID] {
				if !e.ThreadAware {
					oblOut[n.Func.Name]++
				}
			}
		}
	}
	for _, rec := range snap.Funcs {
		r := *rec
		r.Callees = rec.Callees
		r.IRStmts = irStmts[rec.Name]
		r.MemDefs = memDefs[rec.Name]
		r.ObliviousOut = oblOut[rec.Name]
		store.Install(&r)
	}
}

func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

package fsam_test

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	fsam "repro"
	"repro/internal/checkers"
	"repro/internal/diag"
)

// FuzzAnalyzeSource: the full pipeline is panic-free on arbitrary input.
// Malformed source comes back as a positioned error; anything that
// compiles comes back as an Analysis at some ladder tier — never a panic,
// never a nil Analysis with a nil error. A step limit plus a deadline keep
// pathological inputs from stalling the fuzzer; tripping either is itself
// a valid outcome (the ladder absorbs it).
func FuzzAnalyzeSource(f *testing.F) {
	f.Add("int main() { int x; int *p; p = &x; return 0; }")
	f.Add("int *g; void w() { int h; g = &h; } int main() { spawn w(); join; return 0; }")
	f.Add("int main() { lock(m); unlock(m); return 0; }")
	f.Add("}{")
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.mc"))
	for _, p := range paths {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		a, err := fsam.AnalyzeSourceCtx(ctx, "fuzz.mc", src, fsam.Config{StepLimit: 200000})
		if err == nil {
			if a == nil {
				t.Fatal("nil Analysis with nil error")
			}
			if a.Precision == fsam.PrecisionNone {
				t.Fatalf("nil error but precision %s", a.Precision)
			}
			// Queries over whatever tier we landed on must not panic either.
			for _, o := range a.Prog.Objects {
				_, _ = a.PointsToGlobal(o.Name)
			}
		}
	})
}

// FuzzDiagnostics: the checker suite and every renderer are panic-free on
// whatever tier the ladder lands on, including degraded analyses where
// most checkers skip. Rendering goes to io.Discard — the property under
// test is "no panic, no error", not output content.
func FuzzDiagnostics(f *testing.F) {
	f.Add("int main() { int *p; p = malloc(4); free(p); *p = 1; return 0; }")
	f.Add("lock_t m; int main() { lock(&m); lock(&m); unlock(&m); return 0; }")
	f.Add("int *g; void w(void *a) { free(g); } int main() { thread_t t; g = malloc(4); t = spawn(w, NULL); free(g); join(t); return 0; }")
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.mc"))
	for _, p := range paths {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		a, err := fsam.AnalyzeSourceCtx(ctx, "fuzz.mc", src, fsam.Config{StepLimit: 200000})
		if err != nil {
			return
		}
		res, err := a.Diagnostics()
		if err != nil {
			t.Fatalf("Diagnostics on a successful analysis: %v", err)
		}
		if err := diag.WriteText(io.Discard, res.Diags); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := diag.WriteJSON(io.Discard, res.Diags); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := diag.WriteSARIF(io.Discard, res.Diags, checkers.Rules()); err != nil {
			t.Fatalf("WriteSARIF: %v", err)
		}
	})
}

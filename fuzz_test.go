package fsam_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	fsam "repro"
)

// FuzzAnalyzeSource: the full pipeline is panic-free on arbitrary input.
// Malformed source comes back as a positioned error; anything that
// compiles comes back as an Analysis at some ladder tier — never a panic,
// never a nil Analysis with a nil error. A step limit plus a deadline keep
// pathological inputs from stalling the fuzzer; tripping either is itself
// a valid outcome (the ladder absorbs it).
func FuzzAnalyzeSource(f *testing.F) {
	f.Add("int main() { int x; int *p; p = &x; return 0; }")
	f.Add("int *g; void w() { int h; g = &h; } int main() { spawn w(); join; return 0; }")
	f.Add("int main() { lock(m); unlock(m); return 0; }")
	f.Add("}{")
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.mc"))
	for _, p := range paths {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		a, err := fsam.AnalyzeSourceCtx(ctx, "fuzz.mc", src, fsam.Config{StepLimit: 200000})
		if err == nil {
			if a == nil {
				t.Fatal("nil Analysis with nil error")
			}
			if a.Precision == fsam.PrecisionNone {
				t.Fatalf("nil error but precision %s", a.Precision)
			}
			// Queries over whatever tier we landed on must not panic either.
			for _, o := range a.Prog.Objects {
				_, _ = a.PointsToGlobal(o.Name)
			}
		}
	})
}

package fsam_test

// Tests for the pass-manager refounding of the facade: schedule
// equivalence (parallel vs sequential runs produce byte-identical
// results), prompt context cancellation with partial progress, and
// per-phase accounting read off the manager's Report.

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	fsam "repro"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// compileWorkload compiles one generated workload benchmark.
func compileWorkload(t *testing.T, name string, scale int) *ir.Program {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	prog, err := pipeline.Compile(name, workload.GenerateSpec(spec, scale))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// globalPointsTo collects the points-to set of every global at exit.
func globalPointsTo(t *testing.T, a *fsam.Analysis) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for _, o := range a.Prog.Objects {
		if o.Kind != ir.ObjGlobal {
			continue
		}
		pt, err := a.PointsToGlobal(o.Name)
		if err != nil {
			t.Fatal(err)
		}
		out[o.Name] = pt
	}
	return out
}

// TestParallelSequentialIdentical runs the same program under the
// concurrent and the sequential schedule and requires identical results:
// same points-to set for every global, same edge counts, and the same
// Stats modulo wall-clock times. ferret both spawns threads and locks, so
// the interleaving and lock phases genuinely overlap in the parallel run.
func TestParallelSequentialIdentical(t *testing.T) {
	prog := compileWorkload(t, "ferret", 1)
	par := fsam.AnalyzeProgram(prog, fsam.Config{})
	prog2 := compileWorkload(t, "ferret", 1)
	seq := fsam.AnalyzeProgram(prog2, fsam.Config{Sequential: true})

	ppt, spt := globalPointsTo(t, par), globalPointsTo(t, seq)
	if len(ppt) == 0 {
		t.Fatal("no globals analyzed")
	}
	var names []string
	for n := range ppt {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p, s := ppt[n], spt[n]
		if len(p) != len(s) {
			t.Fatalf("pt(%s): parallel %v vs sequential %v", n, p, s)
		}
		for i := range p {
			if p[i] != s[i] {
				t.Fatalf("pt(%s): parallel %v vs sequential %v", n, p, s)
			}
		}
	}

	zeroTimes := func(st fsam.Stats) fsam.Stats {
		st.Times = fsam.PhaseTimes{}
		return st
	}
	if !reflect.DeepEqual(zeroTimes(par.Stats), zeroTimes(seq.Stats)) {
		t.Errorf("stats diverge between schedules:\nparallel:   %+v\nsequential: %+v",
			zeroTimes(par.Stats), zeroTimes(seq.Stats))
	}
	if par.Stats.DefUseEdges == 0 || par.Stats.ThreadEdges == 0 {
		t.Errorf("expected thread-aware edges on ferret: %+v", par.Stats)
	}
}

// TestAnalyzeProgramCtxCancellation: an already-expired context must make
// AnalyzeProgramCtx return promptly with a cancellation PhaseError and a
// partially-populated Analysis (no completed solve).
func TestAnalyzeProgramCtxCancellation(t *testing.T) {
	prog := compileWorkload(t, "x264", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	a, err := fsam.AnalyzeProgramCtx(ctx, prog, fsam.Config{})
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !pipeline.ErrCancelled(err) {
		t.Fatalf("err = %v, want context cancellation", err)
	}
	var pe *pipeline.PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *pipeline.PhaseError", err)
	}
	if a == nil {
		t.Fatal("partial Analysis missing")
	}
	if a.Result != nil {
		t.Error("solve completed under an expired context")
	}
	// Cancellation is polled at worklist pops (amortized); on an expired
	// context the first poll fires, so anything beyond a second means a
	// fixpoint loop is not honoring ctx.
	if elapsed > time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestAnalyzeProgramCtxDeadlineMidRun: a deadline that expires during the
// run (not before) must also surface as ErrCancelled.
func TestAnalyzeProgramCtxDeadlineMidRun(t *testing.T) {
	prog := compileWorkload(t, "x264", 2)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
	defer cancel()
	a, err := fsam.AnalyzeProgramCtx(ctx, prog, fsam.Config{})
	if err == nil {
		t.Skip("machine too fast: analysis finished inside 500µs")
	}
	if !pipeline.ErrCancelled(err) {
		t.Fatalf("err = %v, want deadline expiry", err)
	}
	if a == nil {
		t.Fatal("partial Analysis missing")
	}
}

// TestStatsTimesComeFromManager: every per-phase duration is recorded by
// the manager, sums to Total(), and AnalyzeSource attributes compile time
// directly (not derived by subtraction, so it is non-negative and the
// components are individually positive).
func TestStatsTimesComeFromManager(t *testing.T) {
	spec, _ := workload.ByName("word_count")
	src := workload.GenerateSpec(spec, 1)
	a, err := fsam.AnalyzeSource("word_count.mc", src, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ti := a.Stats.Times
	sum := ti.Compile + ti.PreAnalysis + ti.ThreadModel + ti.Interleave +
		ti.Escape + ti.LockSpans + ti.DefUse + ti.Sparse
	if ti.Total() != sum {
		t.Errorf("Total() = %v, sum of phases = %v", ti.Total(), sum)
	}
	for name, d := range map[string]time.Duration{
		"Compile":     ti.Compile,
		"PreAnalysis": ti.PreAnalysis,
		"ThreadModel": ti.ThreadModel,
		"Interleave":  ti.Interleave,
		"Escape":      ti.Escape,
		"LockSpans":   ti.LockSpans,
		"DefUse":      ti.DefUse,
		"Sparse":      ti.Sparse,
	} {
		if d <= 0 {
			t.Errorf("phase %s has no recorded time", name)
		}
	}
}

// TestBaselineCtxAndOOT covers the two deadline paths of the baseline: a
// context expiring before the solve yields a PhaseError with partial
// progress, and the legacy timeout parameter maps that onto OOT.
func TestBaselineCtxAndOOT(t *testing.T) {
	prog := compileWorkload(t, "word_count", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := fsam.AnalyzeProgramNonSparseCtx(ctx, prog)
	if err == nil || !pipeline.ErrCancelled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if b == nil {
		t.Fatal("partial Baseline missing")
	}

	prog2 := compileWorkload(t, "x264", 1)
	b2 := fsam.AnalyzeProgramNonSparse(prog2, time.Nanosecond)
	if !b2.OOT {
		t.Error("nanosecond budget must report OOT")
	}
}

// TestFSAMOOTSymmetry: the harness-level FSAM deadline behaves like the
// NONSPARSE budget — detectable via pipeline.ErrCancelled so Table 2 can
// print OOT rows for either analysis.
func TestFSAMOOTSymmetry(t *testing.T) {
	prog := compileWorkload(t, "x264", 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := fsam.AnalyzeProgramCtx(ctx, prog, fsam.Config{})
	if err == nil || !pipeline.ErrCancelled(err) {
		t.Fatalf("err = %v, want deadline expiry", err)
	}
}

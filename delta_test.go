package fsam_test

import (
	"strings"
	"testing"

	fsam "repro"
	"repro/internal/facts"
	"repro/internal/harness"
	"repro/internal/randprog"
	"repro/internal/workload"
)

const deltaSrc = `
int g; int h; int k;
int *p; int *q;
lock_t m;

void helper(void) {
	q = &k;
}

void worker(void *arg) {
	lock(&m);
	*p = &g;
	unlock(&m);
	if (g > 3) { q = &g; } else { q = &h; }
}

int main() {
	p = &g;
	thread_t t;
	t = spawn(worker, NULL);
	helper();
	q = p;
	join(t);
	return 0;
}
`

// analyzeBase runs a from-scratch analysis with a private fact store so
// counter assertions are deterministic.
func analyzeBase(t *testing.T, src string, cfg fsam.Config) *fsam.Analysis {
	t.Helper()
	a, err := fsam.AnalyzeSource("prog.mc", src, cfg)
	if err != nil {
		t.Fatalf("base analysis: %v", err)
	}
	a.FactsStore = facts.NewStore(0)
	return a
}

func mustFingerprint(t *testing.T, a *fsam.Analysis) string {
	t.Helper()
	fp, err := harness.Fingerprint(a)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

// A comment/whitespace edit must adopt the base wholesale: zero phases,
// all-hit counters, and the very same Analysis value.
func TestDeltaNoop(t *testing.T) {
	base := analyzeBase(t, deltaSrc, fsam.Config{})
	patched := strings.Replace(deltaSrc, "int main() {", "/* tweak */\n\nint main() {", 1)

	a, rep, err := fsam.AnalyzeDelta(base, "prog.mc", patched)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if rep.Tier != fsam.DeltaNoop {
		t.Fatalf("tier = %s (iso note %q), want noop", rep.Tier, rep.IsoNote)
	}
	if a != base {
		t.Fatalf("noop tier did not adopt the base analysis")
	}
	if len(rep.PhasesRun) != 0 {
		t.Fatalf("noop tier ran phases: %v", rep.PhasesRun)
	}
	if len(rep.ImpactedFuncs) != 0 {
		t.Fatalf("noop tier impacted functions: %v", rep.ImpactedFuncs)
	}
	// Satellite: zero recomputation is visible in the store counters —
	// every function key hit, nothing missed or invalidated.
	if rep.Facts.Hits != 3 || rep.Facts.Misses != 0 || rep.Facts.Invalidations != 0 {
		t.Fatalf("noop counters = %s, want 3 hits and nothing else", rep.Facts)
	}
	if rep.ProgKey != rep.BaseProgKey {
		t.Fatalf("noop tier with differing prog keys: %s vs %s", rep.ProgKey, rep.BaseProgKey)
	}
	if pk, err := base.ProgKey(); err != nil || pk != rep.BaseProgKey {
		t.Fatalf("ProgKey() = %s, %v; want %s", pk, err, rep.BaseProgKey)
	}
}

// A constant tweak keeps the CFG isomorphic: the expensive phases are
// adopted by rebinding and only glue phases re-run, yet every observable
// answer equals a from-scratch analysis.
func TestDeltaIso(t *testing.T) {
	base := analyzeBase(t, deltaSrc, fsam.Config{})
	patched := strings.Replace(deltaSrc, "g > 3", "g > 9", 1)

	a, rep, err := fsam.AnalyzeDelta(base, "prog.mc", patched)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if rep.Tier != fsam.DeltaIso {
		t.Fatalf("tier = %s (iso note %q), want iso", rep.Tier, rep.IsoNote)
	}
	if got := rep.ChangedFuncs; len(got) != 1 || got[0] != "worker" {
		t.Fatalf("changed = %v, want [worker]", got)
	}
	if rep.AdoptedFuncs != 2 {
		t.Fatalf("adopted = %d, want 2", rep.AdoptedFuncs)
	}
	for _, p := range rep.PhasesRun {
		if p == fsam.PhaseDefUse || p == fsam.PhaseSparse {
			t.Fatalf("iso tier re-ran expensive phase %s (ran %v)", p, rep.PhasesRun)
		}
	}
	// worker spawns from main and helper is called by main: the undirected
	// closure plus mod/ref widening pulls all three in.
	if len(rep.ImpactedFuncs) == 0 {
		t.Fatalf("iso tier reports no impacted functions")
	}
	if rep.Facts.Invalidations != 1 {
		t.Fatalf("counters = %s, want exactly 1 invalidation", rep.Facts)
	}

	scratch, err := fsam.AnalyzeSource("prog.mc", patched, fsam.Config{})
	if err != nil {
		t.Fatalf("scratch: %v", err)
	}
	if got, want := mustFingerprint(t, a), mustFingerprint(t, scratch); got != want {
		t.Fatalf("iso result diverges from scratch:\n--- delta ---\n%s--- scratch ---\n%s", got, want)
	}
	// Diagnostics must carry the *new* source's positions on this tier.
	if a.Stats.Times.Compile == 0 {
		t.Fatalf("delta analysis reports no compile time")
	}
}

// A structural edit falls to the semantic tier and still matches scratch.
func TestDeltaSemantic(t *testing.T) {
	base := analyzeBase(t, deltaSrc, fsam.Config{})
	patched := strings.Replace(deltaSrc, "q = p;", "q = p;\n\t*q = &k;", 1)

	a, rep, err := fsam.AnalyzeDelta(base, "prog.mc", patched)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if rep.Tier != fsam.DeltaSemantic {
		t.Fatalf("tier = %s, want semantic", rep.Tier)
	}
	if rep.IsoNote == "" {
		t.Fatalf("semantic tier with empty iso note")
	}
	if len(rep.PhasesRun) == 0 {
		t.Fatalf("semantic tier ran no phases")
	}

	scratch, err := fsam.AnalyzeSource("prog.mc", patched, fsam.Config{})
	if err != nil {
		t.Fatalf("scratch: %v", err)
	}
	if got, want := mustFingerprint(t, a), mustFingerprint(t, scratch); got != want {
		t.Fatalf("semantic result diverges from scratch:\n--- delta ---\n%s--- scratch ---\n%s", got, want)
	}
}

// Chained deltas: each derived analysis is itself a valid base.
func TestDeltaChained(t *testing.T) {
	base := analyzeBase(t, deltaSrc, fsam.Config{})
	s1 := strings.Replace(deltaSrc, "g > 3", "g > 4", 1)
	a1, rep1, err := fsam.AnalyzeDelta(base, "prog.mc", s1)
	if err != nil {
		t.Fatalf("delta 1: %v", err)
	}
	if a1.FactsStore != base.FactsStore {
		t.Fatalf("derived analysis did not inherit the base store")
	}
	s2 := strings.Replace(s1, "g > 4", "g > 5", 1)
	a2, rep2, err := fsam.AnalyzeDelta(a1, "prog.mc", s2)
	if err != nil {
		t.Fatalf("delta 2: %v", err)
	}
	if rep1.Tier != fsam.DeltaIso || rep2.Tier != fsam.DeltaIso {
		t.Fatalf("tiers = %s, %s, want iso, iso", rep1.Tier, rep2.Tier)
	}
	if rep2.BaseProgKey != rep1.ProgKey {
		t.Fatalf("chain broke: base key %s, prior key %s", rep2.BaseProgKey, rep1.ProgKey)
	}
	scratch, err := fsam.AnalyzeSource("prog.mc", s2, fsam.Config{})
	if err != nil {
		t.Fatalf("scratch: %v", err)
	}
	if got, want := mustFingerprint(t, a2), mustFingerprint(t, scratch); got != want {
		t.Fatalf("chained delta diverges from scratch")
	}
}

// An analysis built without source text cannot be delta-keyed.
func TestDeltaRequiresSource(t *testing.T) {
	base := analyzeBase(t, deltaSrc, fsam.Config{})
	if _, _, err := fsam.AnalyzeDelta(nil, "prog.mc", deltaSrc); err == nil {
		t.Fatalf("nil base accepted")
	}
	// Malformed patch source surfaces as a parse error.
	if _, _, err := fsam.AnalyzeDelta(base, "prog.mc", "int main( {"); err == nil {
		t.Fatalf("malformed patch accepted")
	}
}

// Differential property test (satellite): random single-function edits of
// random threaded programs re-analyze to the same observable results as
// from-scratch, on every on-ladder engine and every edit class.
func TestDeltaDifferentialRandprog(t *testing.T) {
	engines := []string{"fsam", "oblivious", "cfgfree", "andersen"}
	kinds := []randprog.MutateKind{randprog.MutateComment, randprog.MutateConst, randprog.MutateStmt}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, eng := range engines {
		for _, seed := range seeds {
			src := randprog.Threaded(seed, 2)
			cfg := fsam.Config{Engine: eng}
			base, err := fsam.AnalyzeSource("prog.mc", src, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: base: %v", eng, seed, err)
			}
			base.FactsStore = facts.NewStore(0)
			for _, kind := range kinds {
				patched, fn := randprog.Mutate(seed, src, kind)
				a, rep, err := fsam.AnalyzeDelta(base, "prog.mc", patched)
				if err != nil {
					t.Fatalf("%s seed %d %s(%s): delta: %v", eng, seed, kind, fn, err)
				}
				scratch, err := fsam.AnalyzeSource("prog.mc", patched, cfg)
				if err != nil {
					t.Fatalf("%s seed %d %s: scratch: %v", eng, seed, kind, err)
				}
				got, err := harness.Fingerprint(a)
				if err != nil {
					t.Fatalf("%s seed %d %s: fingerprint delta: %v", eng, seed, kind, err)
				}
				want, err := harness.Fingerprint(scratch)
				if err != nil {
					t.Fatalf("%s seed %d %s: fingerprint scratch: %v", eng, seed, kind, err)
				}
				if got != want {
					t.Errorf("%s seed %d %s edit of %s (tier %s, note %q): delta diverges from scratch\n--- delta ---\n%s--- scratch ---\n%s",
						eng, seed, kind, fn, rep.Tier, rep.IsoNote, got, want)
				}
				if kind == randprog.MutateComment && rep.Tier != fsam.DeltaNoop {
					t.Errorf("%s seed %d: comment edit landed in tier %s (note %q), want noop",
						eng, seed, rep.Tier, rep.IsoNote)
				}
			}
		}
	}
}

// The canonical workload edit lands in the iso tier and reuses the
// expensive phases on the real benchmark generator's output.
func TestDeltaCanonicalWorkloadEdit(t *testing.T) {
	src, err := workload.Generate("x264", 1)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	base := analyzeBase(t, src, fsam.Config{})
	patched, line := harness.CanonicalEdit(src)
	if line < 0 {
		t.Fatalf("workload source has no filler line to edit")
	}
	a, rep, err := fsam.AnalyzeDelta(base, "prog.mc", patched)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	if rep.Tier != fsam.DeltaIso {
		t.Fatalf("canonical edit landed in tier %s (note %q), want iso", rep.Tier, rep.IsoNote)
	}
	if len(rep.ChangedFuncs) != 1 {
		t.Fatalf("canonical edit changed %v, want exactly one function", rep.ChangedFuncs)
	}
	scratch, err := fsam.AnalyzeSource("prog.mc", patched, fsam.Config{})
	if err != nil {
		t.Fatalf("scratch: %v", err)
	}
	if got, want := mustFingerprint(t, a), mustFingerprint(t, scratch); got != want {
		t.Fatalf("canonical edit diverges from scratch")
	}
}

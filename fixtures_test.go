package fsam_test

// Fixture corpus driver: every testdata/*.mc program carries embedded
// expectations as comments of the form
//
//	// EXPECT pt(name) = {a, b}       exact points-to of a global at exit
//	// EXPECT pt(name) contains a     membership
//	// EXPECT pt(name) excludes a     non-membership
//	// EXPECT races = N | races >= N
//	// EXPECT deadlocks = N
//	// EXPECT leaks = N
//	// EXPECT threads = N
//
// The driver analyzes each fixture with full FSAM and checks every
// expectation; it also validates the analysis against 8 concrete schedules.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	fsam "repro"
	"repro/internal/interp"
)

// expectation is one parsed EXPECT line.
type expectation struct {
	line int
	text string
}

func parseExpectations(src string) []expectation {
	var out []expectation
	for i, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(trimmed, "// EXPECT "); ok {
			out = append(out, expectation{line: i + 1, text: strings.TrimSpace(rest)})
		}
	}
	return out
}

func checkExpectation(t *testing.T, a *fsam.Analysis, e expectation) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("line %d: EXPECT %s: %s", e.line, e.text, fmt.Sprintf(format, args...))
	}

	switch {
	case strings.HasPrefix(e.text, "pt("):
		rest := strings.TrimPrefix(e.text, "pt(")
		idx := strings.Index(rest, ")")
		if idx < 0 {
			fail("malformed")
			return
		}
		name := rest[:idx]
		spec := strings.TrimSpace(rest[idx+1:])
		got, err := a.PointsToGlobal(name)
		if err != nil {
			fail("%v", err)
			return
		}
		switch {
		case strings.HasPrefix(spec, "= {"):
			want := parseSet(strings.TrimPrefix(spec, "= "))
			if !equalSlices(got, want) {
				fail("got %v, want %v", got, want)
			}
		case strings.HasPrefix(spec, "contains "):
			obj := strings.TrimPrefix(spec, "contains ")
			if !containsStr(got, obj) {
				fail("got %v", got)
			}
		case strings.HasPrefix(spec, "excludes "):
			obj := strings.TrimPrefix(spec, "excludes ")
			if containsStr(got, obj) {
				fail("got %v", got)
			}
		default:
			fail("malformed points-to spec")
		}

	case strings.HasPrefix(e.text, "races"):
		reports, err := a.Races()
		if err != nil {
			fail("%v", err)
			return
		}
		checkCount(t, e, len(reports))
	case strings.HasPrefix(e.text, "deadlocks"):
		reports, err := a.Deadlocks()
		if err != nil {
			fail("%v", err)
			return
		}
		checkCount(t, e, len(reports))
	case strings.HasPrefix(e.text, "leaks"):
		checkCount(t, e, len(a.Leaks()))
	case strings.HasPrefix(e.text, "threads"):
		checkCount(t, e, a.Stats.Threads)
	default:
		fail("unknown expectation kind")
	}
}

func checkCount(t *testing.T, e expectation, got int) {
	t.Helper()
	fields := strings.Fields(e.text)
	if len(fields) != 3 {
		t.Errorf("line %d: malformed count expectation %q", e.line, e.text)
		return
	}
	want, err := strconv.Atoi(fields[2])
	if err != nil {
		t.Errorf("line %d: bad count in %q", e.line, e.text)
		return
	}
	switch fields[1] {
	case "=":
		if got != want {
			t.Errorf("line %d: EXPECT %s: got %d", e.line, e.text, got)
		}
	case ">=":
		if got < want {
			t.Errorf("line %d: EXPECT %s: got %d", e.line, e.text, got)
		}
	default:
		t.Errorf("line %d: bad operator in %q", e.line, e.text)
	}
}

func parseSet(s string) []string {
	s = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(s), "}"), "{")
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	sort.Strings(out)
	return out
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestFixtures(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.mc")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("fixture corpus too small: %d files", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			srcBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcBytes)
			expects := parseExpectations(src)
			if len(expects) == 0 {
				t.Fatalf("%s has no EXPECT lines", path)
			}
			a, err := fsam.AnalyzeSource(path, src, fsam.Config{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			for _, e := range expects {
				checkExpectation(t, a, e)
			}
			// Concrete validation: every observed load value must be in the
			// analysis' points-to set.
			for seed := int64(0); seed < 8; seed++ {
				r := interp.Run(a.Prog, seed, 0)
				for _, obs := range r.Observations {
					if obs.Value.Obj == nil {
						continue
					}
					if !a.Result.PointsToVar(obs.Load.Dst).Has(uint32(obs.Value.Obj.ID)) {
						t.Fatalf("seed %d: unsound: load [%s] observed %s", seed, obs.Load, obs.Value)
					}
				}
			}
		})
	}
}

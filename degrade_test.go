package fsam_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	fsam "repro"
	"repro/internal/pipeline"
)

// ladderSrc is the Fig. 1a program: pt(c) = {y, z} under full FSAM, and
// every global's Andersen set is a superset of its flow-sensitive one.
const ladderSrc = `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) {
	*p = q;
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	return 0;
}
`

// wrapPhases installs a test wrapper around the named phases (every
// instance the ladder schedules, including fallback rungs) and removes it
// on cleanup.
func wrapPhases(t *testing.T, names []string, run func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error) {
	t.Helper()
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	fsam.SetTestPhaseWrap(func(p pipeline.Phase) pipeline.Phase {
		if !want[p.Name] {
			return p
		}
		orig := p
		p.Run = func(ctx context.Context, st *pipeline.State) error {
			return run(orig, ctx, st)
		}
		return p
	})
	t.Cleanup(func() { fsam.SetTestPhaseWrap(nil) })
}

// wrapSparse wraps the sparse phase only (the tier-1 instance and the
// thread-oblivious fallback rung's instance).
func wrapSparse(t *testing.T, run func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error) {
	t.Helper()
	wrapPhases(t, []string{fsam.PhaseSparse}, run)
}

// checkSubsetOfAndersen: whatever tier the ladder landed on, points-to
// answers stay within the sound Andersen sets.
func checkSubsetOfAndersen(t *testing.T, a *fsam.Analysis, globals ...string) {
	t.Helper()
	for _, g := range globals {
		pt, err := a.PointsToGlobal(g)
		if err != nil {
			t.Fatalf("pt(%s): %v", g, err)
		}
		ai, err := a.AndersenPointsToGlobal(g)
		if err != nil {
			t.Fatalf("andersen pt(%s): %v", g, err)
		}
		set := map[string]bool{}
		for _, n := range ai {
			set[n] = true
		}
		for _, n := range pt {
			if !set[n] {
				t.Errorf("pt(%s) = %v outside Andersen %v", g, pt, ai)
			}
		}
	}
}

// TestSparsePanicDegradesToThreadOblivious: a one-shot panic in the sparse
// solve is contained, and the ladder reruns it over the thread-oblivious
// def-use graph.
func TestSparsePanicDegradesToThreadOblivious(t *testing.T) {
	for _, seq := range []bool{false, true} {
		var calls atomic.Int32
		wrapSparse(t, func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error {
			if calls.Add(1) == 1 {
				panic("injected sparse fault")
			}
			return orig.Run(ctx, st)
		})
		a, err := fsam.AnalyzeSource("test.mc", ladderSrc, fsam.Config{Sequential: seq})
		if err != nil {
			t.Fatalf("Sequential=%v: degraded run errored: %v", seq, err)
		}
		if a.Precision != fsam.PrecisionThreadObliviousFS {
			t.Fatalf("Sequential=%v: precision = %s, want %s (degraded: %q)",
				seq, a.Precision, fsam.PrecisionThreadObliviousFS, a.Stats.Degraded)
		}
		if !strings.Contains(a.Stats.Degraded, "panicked") {
			t.Errorf("Degraded = %q, want panic reason", a.Stats.Degraded)
		}
		if a.Result == nil || a.Graph == nil {
			t.Fatalf("Sequential=%v: thread-oblivious tier missing Result/Graph", seq)
		}
		checkSubsetOfAndersen(t, a, "p", "q", "r", "c")
		fsam.SetTestPhaseWrap(nil)
	}
}

// TestPersistentSparseFailureDegradesToTmod: when the thread-oblivious
// fallback's sparse solve fails too, the ladder lands on the
// thread-modular rung — its per-thread solves run their own phase, not
// the shared sparse one, so the injected fault cannot reach it.
func TestPersistentSparseFailureDegradesToTmod(t *testing.T) {
	for _, seq := range []bool{false, true} {
		wrapSparse(t, func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error {
			panic("injected persistent fault")
		})
		a, err := fsam.AnalyzeSource("test.mc", ladderSrc, fsam.Config{Sequential: seq})
		if err != nil {
			t.Fatalf("Sequential=%v: degraded run errored: %v", seq, err)
		}
		if a.Precision != fsam.PrecisionThreadModularFS {
			t.Fatalf("Sequential=%v: precision = %s, want %s (degraded: %q)",
				seq, a.Precision, fsam.PrecisionThreadModularFS, a.Stats.Degraded)
		}
		if a.Engine != "tmod" || a.Tmod == nil {
			t.Fatalf("Sequential=%v: engine = %q, Tmod = %v, want landed tmod rung", seq, a.Engine, a.Tmod)
		}
		if !strings.Contains(a.Stats.Degraded, "panicked") ||
			!strings.Contains(a.Stats.Degraded, "oblivious fallback") {
			t.Errorf("Degraded = %q, want original fault and fallback failure", a.Stats.Degraded)
		}
		checkSubsetOfAndersen(t, a, "p", "q", "r", "c")
		fsam.SetTestPhaseWrap(nil)
	}
}

// TestPersistentSparseFailureDegradesToCFGFree: when the sparse solves
// and the thread-modular rung all fail, the ladder lands on the CFG-free
// rung, which shares no sparse machinery with the failed tiers.
func TestPersistentSparseFailureDegradesToCFGFree(t *testing.T) {
	for _, seq := range []bool{false, true} {
		wrapPhases(t, []string{fsam.PhaseSparse, fsam.PhaseTmod},
			func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error {
				panic("injected persistent fault")
			})
		a, err := fsam.AnalyzeSource("test.mc", ladderSrc, fsam.Config{Sequential: seq})
		if err != nil {
			t.Fatalf("Sequential=%v: degraded run errored: %v", seq, err)
		}
		if a.Precision != fsam.PrecisionCFGFreeFS {
			t.Fatalf("Sequential=%v: precision = %s, want %s (degraded: %q)",
				seq, a.Precision, fsam.PrecisionCFGFreeFS, a.Stats.Degraded)
		}
		if a.Engine != "cfgfree" || a.CFGFree == nil {
			t.Fatalf("Sequential=%v: engine = %q, CFGFree = %v, want landed cfgfree rung", seq, a.Engine, a.CFGFree)
		}
		if !strings.Contains(a.Stats.Degraded, "panicked") ||
			!strings.Contains(a.Stats.Degraded, "oblivious fallback") ||
			!strings.Contains(a.Stats.Degraded, "tmod fallback") {
			t.Errorf("Degraded = %q, want original fault and both fallback failures", a.Stats.Degraded)
		}
		if _, err := a.Races(); err == nil || !strings.Contains(err.Error(), "cfgfree-fs") {
			t.Errorf("Races on degraded tier: err = %v, want precision-gated refusal", err)
		}
		if reports := a.Leaks(); reports != nil {
			t.Errorf("Leaks on cfgfree tier = %v, want nil", reports)
		}
		checkSubsetOfAndersen(t, a, "p", "q", "r", "c")
		fsam.SetTestPhaseWrap(nil)
	}
}

// TestPersistentFailureDegradesToAndersen: when every phase-running rung
// fails — sparse solves and the CFG-free solve alike — queries answer from
// the pre-analysis, with the full failure history in Stats.Degraded, and
// the precision-gated clients refuse cleanly instead of crashing.
func TestPersistentFailureDegradesToAndersen(t *testing.T) {
	for _, seq := range []bool{false, true} {
		wrapPhases(t, []string{fsam.PhaseSparse, fsam.PhaseTmod, fsam.PhaseCFGFree},
			func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error {
				panic("injected persistent fault")
			})
		a, err := fsam.AnalyzeSource("test.mc", ladderSrc, fsam.Config{Sequential: seq})
		if err != nil {
			t.Fatalf("Sequential=%v: degraded run errored: %v", seq, err)
		}
		if a.Precision != fsam.PrecisionAndersenOnly {
			t.Fatalf("Sequential=%v: precision = %s, want %s (degraded: %q)",
				seq, a.Precision, fsam.PrecisionAndersenOnly, a.Stats.Degraded)
		}
		if !strings.Contains(a.Stats.Degraded, "panicked") ||
			!strings.Contains(a.Stats.Degraded, "oblivious fallback") ||
			!strings.Contains(a.Stats.Degraded, "tmod fallback") ||
			!strings.Contains(a.Stats.Degraded, "cfgfree fallback") {
			t.Errorf("Degraded = %q, want original fault and every fallback failure", a.Stats.Degraded)
		}
		// Andersen answers are the Andersen sets exactly.
		pt, err := a.PointsToGlobal("c")
		if err != nil {
			t.Fatal(err)
		}
		ai, err := a.AndersenPointsToGlobal("c")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(pt, ",") != strings.Join(ai, ",") {
			t.Errorf("Andersen-only pt(c) = %v, want Andersen's %v", pt, ai)
		}
		if _, err := a.Races(); err == nil || !strings.Contains(err.Error(), "andersen-only") {
			t.Errorf("Races on degraded tier: err = %v, want precision-gated refusal", err)
		}
		if reports := a.Leaks(); reports != nil {
			t.Errorf("Leaks on Andersen-only tier = %v, want nil", reports)
		}
		fsam.SetTestPhaseWrap(nil)
	}
}

// TestDeadlineInsideSparsePhase: a deadline that expires mid-solve (after
// the pre-analysis) still yields a usable, labeled tier — never a
// zero-value Result, never an escaped cancellation error.
func TestDeadlineInsideSparsePhase(t *testing.T) {
	for _, seq := range []bool{false, true} {
		wrapSparse(t, func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error {
			<-ctx.Done() // stall until the deadline fires, then solve
			return orig.Run(ctx, st)
		})
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		a, err := fsam.AnalyzeSourceCtx(ctx, "test.mc", ladderSrc, fsam.Config{Sequential: seq})
		cancel()
		if err != nil {
			t.Fatalf("Sequential=%v: %v", seq, err)
		}
		if a.Precision != fsam.PrecisionThreadObliviousFS && a.Precision != fsam.PrecisionAndersenOnly {
			t.Fatalf("Sequential=%v: precision = %s, want a degraded tier", seq, a.Precision)
		}
		if !strings.Contains(a.Stats.Degraded, "out of time") {
			t.Errorf("Degraded = %q, want out-of-time reason", a.Stats.Degraded)
		}
		if a.Base == nil || a.Prog == nil {
			t.Fatalf("Sequential=%v: zero-value Analysis", seq)
		}
		checkSubsetOfAndersen(t, a, "p", "q", "r", "c")
		fsam.SetTestPhaseWrap(nil)
	}
}

// TestNoDegradeSurfacesFault: with the ladder disabled, the contained
// panic surfaces as a *pipeline.PhaseError for the caller to handle.
func TestNoDegradeSurfacesFault(t *testing.T) {
	wrapSparse(t, func(orig pipeline.Phase, ctx context.Context, st *pipeline.State) error {
		panic("injected sparse fault")
	})
	a, err := fsam.AnalyzeSource("test.mc", ladderSrc, fsam.Config{NoDegrade: true})
	if err == nil || !pipeline.ErrPanicked(err) {
		t.Fatalf("err = %v, want contained panic", err)
	}
	if a == nil || a.Base == nil {
		t.Fatal("partial Analysis missing alongside NoDegrade error")
	}
	if a.Precision != fsam.PrecisionNone {
		t.Errorf("precision = %s, want %s on NoDegrade failure", a.Precision, fsam.PrecisionNone)
	}
}

// TestBudgetTripRendersInDegradedReason: an over-budget trip names the
// phase and wraps ErrOverBudget semantics into the reason string.
func TestBudgetTripRendersInDegradedReason(t *testing.T) {
	a, err := fsam.AnalyzeSource("test.mc", ladderSrc, fsam.Config{StepLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Precision == fsam.PrecisionSparseFS || a.Precision == fsam.PrecisionNone {
		t.Fatalf("precision = %s, want a degraded tier", a.Precision)
	}
	if !strings.Contains(a.Stats.Degraded, "over budget") {
		t.Errorf("Degraded = %q, want over-budget reason", a.Stats.Degraded)
	}
}

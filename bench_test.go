package fsam_test

// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// family exists per table/figure:
//
//	BenchmarkTable1Stats          — Table 1 (program statistics pipeline)
//	BenchmarkTable2/<p>/FSAM      — Table 2, FSAM column
//	BenchmarkTable2/<p>/NonSparse — Table 2, NONSPARSE column
//	BenchmarkFigure12/<p>/<cfg>   — Figure 12 ablations
//
// plus per-phase benchmarks (pre-analysis, thread model, interleaving,
// locks, def-use, sparse solve) used as ablation evidence for the design
// choices called out in DESIGN.md. Benchmarks run at a reduced scale so
// `go test -bench=.` completes quickly; use cmd/fsambench for the
// full-scale tables.

import (
	"testing"
	"time"

	fsam "repro"
	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/harness"
	"repro/internal/icfg"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pipeline"
	"repro/internal/threads"
	"repro/internal/workload"
)

// benchScale keeps `go test -bench` fast; cmd/fsambench uses DefaultScale.
const benchScale = 1

// nsBenchTimeout bounds each baseline measurement.
const nsBenchTimeout = 30 * time.Second

func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable1(benchScale)
		if len(rows) != 10 {
			b.Fatal("expected 10 rows")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for _, spec := range workload.Suite {
		spec := spec
		src := workload.GenerateSpec(spec, benchScale)
		b.Run(spec.Name+"/FSAM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := pipeline.Compile(spec.Name, src)
				if err != nil {
					b.Fatal(err)
				}
				a := fsam.AnalyzeProgram(prog, fsam.Config{})
				b.ReportMetric(float64(a.Stats.Bytes), "pts-bytes")
				b.ReportMetric(float64(a.Stats.UniqueSets), "unique-sets")
				b.ReportMetric(a.Stats.DedupRatio, "dedup-ratio")
			}
		})
		b.Run(spec.Name+"/NonSparse", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := pipeline.Compile(spec.Name, src)
				if err != nil {
					b.Fatal(err)
				}
				r := fsam.AnalyzeProgramNonSparse(prog, nsBenchTimeout)
				if r.OOT {
					b.Skip("baseline exceeded bench deadline at this scale")
				}
				b.ReportMetric(float64(r.Stats.Bytes), "pts-bytes")
				b.ReportMetric(float64(r.Stats.UniqueSets), "unique-sets")
				b.ReportMetric(r.Stats.DedupRatio, "dedup-ratio")
			}
		})
	}
}

func BenchmarkFigure12(b *testing.B) {
	configs := append([]harness.Fig12Config{{Label: "Full", Cfg: fsam.Config{}}},
		harness.Fig12Configs...)
	for _, spec := range workload.Suite {
		for _, c := range configs {
			spec, c := spec, c
			src := workload.GenerateSpec(spec, benchScale)
			b.Run(spec.Name+"/"+c.Label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					prog, err := pipeline.Compile(spec.Name, src)
					if err != nil {
						b.Fatal(err)
					}
					a := fsam.AnalyzeProgram(prog, c.Cfg)
					b.ReportMetric(float64(a.Stats.ThreadEdges), "thread-edges")
				}
			})
		}
	}
}

// ---- Per-phase ablation benchmarks (DESIGN.md section 5) ----

// benchBase builds the substrate once per iteration for phase benchmarks.
func compileBench(b *testing.B, name string) *pipeline.Base {
	b.Helper()
	src := workload.GenerateSpec(mustSpec(name), benchScale)
	prog, err := pipeline.Compile(name, src)
	if err != nil {
		b.Fatal(err)
	}
	return pipeline.BuildBase(prog, 0)
}

func mustSpec(name string) workload.Spec {
	s, ok := workload.ByName(name)
	if !ok {
		panic("unknown spec " + name)
	}
	return s
}

func BenchmarkPhaseAndersen(b *testing.B) {
	src := workload.GenerateSpec(mustSpec("bodytrack"), benchScale)
	prog, err := pipeline.Compile("bodytrack", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := andersen.Analyze(prog)
		b.ReportMetric(float64(r.Iterations), "iters")
	}
}

func BenchmarkPhaseCallGraphAndICFG(b *testing.B) {
	src := workload.GenerateSpec(mustSpec("bodytrack"), benchScale)
	prog, err := pipeline.Compile("bodytrack", src)
	if err != nil {
		b.Fatal(err)
	}
	pre := andersen.Analyze(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := callgraph.Build(pre)
		g := icfg.Build(cg)
		nodes, edges := g.Stats()
		b.ReportMetric(float64(nodes+edges), "nodes+edges")
	}
}

func BenchmarkPhaseThreadModel(b *testing.B) {
	src := workload.GenerateSpec(mustSpec("x264"), benchScale)
	prog, err := pipeline.Compile("x264", src)
	if err != nil {
		b.Fatal(err)
	}
	pre := andersen.Analyze(prog)
	cg := callgraph.Build(pre)
	g := icfg.Build(cg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := threads.BuildModel(pre, cg, g, callgraph.NewCtxs(0))
		b.ReportMetric(float64(len(m.Threads)), "threads")
	}
}

func BenchmarkPhaseInterleaving(b *testing.B) {
	base := compileBench(b, "x264")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mhp.Analyze(base.Model)
		b.ReportMetric(float64(r.Iterations), "iters")
	}
}

func BenchmarkPhaseLockSpans(b *testing.B) {
	base := compileBench(b, "automount")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := locks.Analyze(base.Model)
		b.ReportMetric(float64(r.NumSpans()), "spans")
	}
}

func BenchmarkPhaseSparseSolve(b *testing.B) {
	src := workload.GenerateSpec(mustSpec("raytrace"), benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := pipeline.Compile("raytrace", src)
		if err != nil {
			b.Fatal(err)
		}
		a := fsam.AnalyzeProgram(prog, fsam.Config{})
		b.ReportMetric(float64(a.Stats.Iterations), "iters")
	}
}

// BenchmarkContextDepth measures the cost of deeper call-string contexts
// (an ablation over the context-sensitivity design choice).
func BenchmarkContextDepth(b *testing.B) {
	src := workload.GenerateSpec(mustSpec("raytrace"), benchScale)
	for _, depth := range []int{2, 8, 32} {
		depth := depth
		b.Run(map[int]string{2: "k2", 8: "k8", 32: "k32"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := pipeline.Compile("raytrace", src)
				if err != nil {
					b.Fatal(err)
				}
				a := fsam.AnalyzeProgram(prog, fsam.Config{CtxDepth: depth})
				b.ReportMetric(float64(a.Stats.DefUseEdges), "edges")
			}
		})
	}
}

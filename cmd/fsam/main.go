// Command fsam analyzes a MiniC program with the sparse flow-sensitive
// pointer analysis for multithreaded programs (or the NONSPARSE baseline)
// and reports points-to results, statistics, and optionally data races.
//
// Usage:
//
//	fsam [flags] prog.mc
//
//	-engine NAME       analysis engine: fsam (default), oblivious, tmod,
//	                   cfgfree, andersen, or nonsparse
//	-memmodel NAME     memory consistency model: sc (default), tso, or pso
//	                   (tmod widens cross-thread visibility accordingly)
//	-baseline          run the NONSPARSE baseline instead of FSAM
//	-races             report candidate data races (FSAM only)
//	-escape            report the thread-escape classification: per-class
//	                   counts plus every handed-off and shared object with
//	                   its accessor threads
//	-escapeprune NAME  thread-escape interference pruning: on (default) or
//	                   off (differential escape hatch; results identical)
//	-globals           print the points-to set of every global at exit
//	-query NAME        print the points-to set of one global
//	-stats             print analysis statistics
//	-no-interleaving / -no-valueflow / -no-lock   phase ablations
//	-timeout D         analysis deadline, FSAM or baseline (default 2h,
//	                   like the paper; exits 1 with an OOT message)
//	-membudget N       soft heap budget in bytes for the post-pre-analysis
//	                   phases (0 = unlimited); a trip degrades precision
//	-steplimit N       per-phase worklist-pop limit (0 = unlimited)
//	-ir                dump the partial-SSA IR instead of analyzing
//	-server URL        submit to a running fsamd instead of analyzing
//	                   in-process (-query/-races/-stats work; the exit
//	                   code carries the served result's tier)
//
// Exit codes: 0 result at the requested engine's tier, 1 hard failure
// (I/O, compile error, pre-analysis deadline), 2 usage, 3 result degraded
// to thread-oblivious flow-sensitive, 4 result degraded to Andersen-only,
// 5 result degraded to CFG-free flow-sensitive, 6 result degraded to
// thread-modular flow-sensitive (later rungs are registry-assigned from 6
// upward; see internal/exitcode).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	fsam "repro"
	"repro/internal/escape"
	"repro/internal/exitcode"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	var (
		engine   = flag.String("engine", fsam.DefaultEngine, "analysis engine ("+strings.Join(fsam.Engines(), ", ")+")")
		memModel = flag.String("memmodel", fsam.DefaultMemModel, "memory consistency model ("+strings.Join(fsam.MemModels(), ", ")+")")
		baseline = flag.Bool("baseline", false, "run the NonSparse baseline")
		races    = flag.Bool("races", false, "report candidate data races")
		escRep   = flag.Bool("escape", false, "report the thread-escape classification")
		escPrune = flag.String("escapeprune", "", "thread-escape pruning ("+strings.Join(fsam.EscapePruneModes(), ", ")+"; default on)")
		globals  = flag.Bool("globals", false, "print points-to of every global at exit")
		query    = flag.String("query", "", "print points-to of one global")
		stats    = flag.Bool("stats", false, "print analysis statistics")
		noIL     = flag.Bool("no-interleaving", false, "disable the interleaving analysis (use PCG)")
		noVF     = flag.Bool("no-valueflow", false, "disable the value-flow aliasing premise")
		noLK     = flag.Bool("no-lock", false, "disable the lock analysis")
		timeout  = flag.Duration("timeout", 2*time.Hour, "analysis deadline (FSAM and baseline)")
		memBud   = flag.Uint64("membudget", 0, "soft heap budget in bytes, 0 = unlimited")
		stepLim  = flag.Int64("steplimit", 0, "per-phase worklist-pop limit, 0 = unlimited")
		dumpIR   = flag.Bool("ir", false, "dump the partial-SSA IR and exit")
		dotVFG   = flag.Bool("dot-vfg", false, "dump the def-use graph as Graphviz DOT")
		dotICFG  = flag.Bool("dot-icfg", false, "dump the ICFG as Graphviz DOT")
		srvURL   = flag.String("server", "", "submit to a running fsamd at this base URL instead of analyzing in-process")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsam [flags] prog.mc")
		flag.Usage()
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownEngine(*engine) {
		fmt.Fprintf(os.Stderr, "fsam: unknown engine %q (known: %s)\n", *engine, strings.Join(fsam.Engines(), ", "))
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownMemModel(*memModel) {
		fmt.Fprintf(os.Stderr, "fsam: unknown memory model %q (known: %s)\n", *memModel, strings.Join(fsam.MemModels(), ", "))
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownEscapePrune(*escPrune) {
		fmt.Fprintf(os.Stderr, "fsam: unknown escape-prune mode %q (known: %s)\n", *escPrune, strings.Join(fsam.EscapePruneModes(), ", "))
		os.Exit(exitcode.Usage)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	if *srvURL != "" {
		if *baseline || *dumpIR || *dotVFG || *dotICFG || *globals {
			fmt.Fprintln(os.Stderr, "fsam: -baseline/-ir/-dot-vfg/-dot-icfg/-globals are in-process only, not available with -server")
			os.Exit(exitcode.Usage)
		}
		os.Exit(runServed(*srvURL, flag.Arg(0), src, servedOpts{
			query: *query, races: *races, stats: *stats, escape: *escRep,
			cfg: server.ConfigRequest{
				Engine: *engine, MemModel: *memModel,
				NoInterleaving: *noIL, NoValueFlow: *noVF, NoLock: *noLK,
				MemBudgetBytes: *memBud, StepLimit: *stepLim,
				EscapePrune: *escPrune,
			},
			timeout: *timeout,
		}))
	}

	if *dumpIR {
		prog, err := pipeline.Compile(flag.Arg(0), src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(prog.String())
		return
	}

	if *baseline {
		b, err := fsam.AnalyzeSourceNonSparse(flag.Arg(0), src, *timeout)
		if err != nil {
			fatal(err)
		}
		if b.OOT {
			fmt.Printf("NONSPARSE: out of time after %s\n", *timeout)
			os.Exit(1)
		}
		fmt.Printf("NONSPARSE: %d stmts, %d threads, %d iterations, %.2f MB\n",
			b.Stats.Stmts, b.Stats.Threads, b.Stats.Iterations, float64(b.Stats.Bytes)/1e6)
		if *query != "" {
			pt, err := b.PointsToGlobal(*query)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("pt(%s) = {%s}\n", *query, strings.Join(pt, ", "))
		}
		return
	}

	// Normalize keeps the CLI on the same canonical configuration the
	// fsamd cache keys on, so a local run and a served run can't diverge.
	cfg := fsam.Config{
		Engine: *engine, MemModel: *memModel, EscapePrune: *escPrune,
		NoInterleaving: *noIL, NoValueFlow: *noVF, NoLock: *noLK,
		MemBudgetBytes: *memBud, StepLimit: *stepLim,
	}.Normalize()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	a, err := fsam.AnalyzeSourceCtx(ctx, flag.Arg(0), src, cfg)
	if err != nil {
		if pipeline.ErrCancelled(err) {
			fmt.Printf("FSAM: out of time after %s\n", *timeout)
			os.Exit(exitcode.Failure)
		}
		fatal(err)
	}
	if a.Stats.Degraded != "" {
		fmt.Fprintf(os.Stderr, "fsam: precision degraded to %s (%s)\n",
			a.Precision, a.Stats.Degraded)
	}

	if *dotVFG {
		if a.Graph == nil {
			fatal(fmt.Errorf("no def-use graph at precision %s", a.Precision))
		}
		if err := a.Graph.WriteDot(os.Stdout); err != nil {
			fatal(err)
		}
		os.Exit(exitcode.ForAnalysis(a))
	}
	if *dotICFG {
		if err := a.Base.G.WriteDot(os.Stdout); err != nil {
			fatal(err)
		}
		os.Exit(exitcode.ForAnalysis(a))
	}

	if *stats {
		st := a.Stats
		fmt.Printf("engine:            %s\n", a.Engine)
		fmt.Printf("memory model:      %s\n", a.Config.MemModel)
		fmt.Printf("precision:         %s\n", a.Precision)
		if st.Degraded != "" {
			fmt.Printf("degraded:          %s\n", st.Degraded)
		}
		if st.InterferenceRounds > 0 {
			fmt.Printf("interference:      %d rounds\n", st.InterferenceRounds)
		}
		fmt.Printf("statements:        %d\n", st.Stmts)
		fmt.Printf("abstract threads:  %d\n", st.Threads)
		fmt.Printf("def-use edges:     %d (%d thread-oblivious + %d thread-aware)\n",
			st.DefUseEdges, st.ObliviousEdges, st.ThreadEdges)
		fmt.Printf("lock spans:        %d\n", st.LockSpans)
		fmt.Printf("escape classes:    %d local / %d handedoff / %d shared (pruned %d interference edges)\n",
			st.EscapeLocal, st.EscapeHandedOff, st.EscapeShared, st.EscapePrunedEdges)
		fmt.Printf("solver iterations: %d\n", st.Iterations)
		fmt.Printf("worklist pops:     %d pre + %d solve\n", st.PrePops, st.SolvePops)
		fmt.Printf("memory:            %.2f MB\n", float64(st.Bytes)/1e6)
		fmt.Printf("interned sets:     %d unique / %d refs (dedup %.2fx)\n",
			st.UniqueSets, st.SetRefs, st.DedupRatio)
		fmt.Printf("time: pre=%s threads=%s interleave=%s locks=%s defuse=%s sparse=%s cfgfree=%s\n",
			st.Times.PreAnalysis, st.Times.ThreadModel, st.Times.Interleave,
			st.Times.LockSpans, st.Times.DefUse, st.Times.Sparse, st.Times.CFGFree)
	}

	if *query != "" {
		pt, err := a.PointsToGlobal(*query)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pt(%s) = {%s}\n", *query, strings.Join(pt, ", "))
	}

	if *globals {
		for _, o := range a.Prog.Objects {
			if o.Kind != ir.ObjGlobal {
				continue
			}
			pt, err := a.PointsToGlobal(o.Name)
			if err != nil {
				continue
			}
			if len(pt) > 0 {
				fmt.Printf("pt(%s) = {%s}\n", o.Name, strings.Join(pt, ", "))
			}
		}
	}

	if *races {
		reports, err := a.Races()
		if err != nil {
			fatal(err)
		}
		if len(reports) == 0 {
			fmt.Println("no candidate races")
		}
		for _, r := range reports {
			fmt.Println(r)
		}
	}

	if *escRep {
		printEscape(a)
	}

	os.Exit(exitcode.ForAnalysis(a))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsam:", err)
	os.Exit(exitcode.Failure)
}

// printEscape renders the thread-escape classification: the per-class
// summary, then every handed-off and shared object with the threads that
// access it (thread-local objects are elided — they are the common case).
func printEscape(a *fsam.Analysis) {
	esc := a.EscapeResult()
	if esc == nil {
		fatal(fmt.Errorf("no thread model at precision %s: escape classification unavailable", a.Precision))
	}
	fmt.Printf("escape: %d objects: %d local, %d handedoff, %d shared (pruned %d interference edges)\n",
		len(a.Prog.Objects), esc.NumLocal, esc.NumHandedOff, esc.NumShared,
		a.Stats.EscapePrunedEdges)
	for _, o := range a.Prog.Objects {
		cls := esc.ClassOf(o.ID)
		if cls == escape.ThreadLocal {
			continue
		}
		var names []string
		for _, tid := range esc.AccessorThreads(o.ID) {
			names = append(names, esc.Model.Threads[tid].String())
		}
		fmt.Printf("%-9s  %s (accessed by %s)\n", cls, o, strings.Join(names, ", "))
	}
}

// servedOpts is the subset of the CLI surface that works against fsamd.
type servedOpts struct {
	query   string
	races   bool
	stats   bool
	escape  bool
	cfg     server.ConfigRequest
	timeout time.Duration
}

// runServed submits the program to a running fsamd and renders the same
// views the in-process path prints. The returned exit code is the served
// result's tier under the repo convention, exactly as a local run would
// exit.
func runServed(baseURL, name, src string, opts servedOpts) int {
	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	c := client.New(baseURL)
	areq := server.AnalyzeRequest{Name: name, Source: src, Config: opts.cfg}
	if opts.timeout > 0 {
		areq.DeadlineMS = opts.timeout.Milliseconds()
	}
	resp, err := c.Analyze(ctx, areq)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.ExitCode != 0 {
			fmt.Fprintln(os.Stderr, "fsam:", apiErr.Message)
			return apiErr.ExitCode
		}
		fmt.Fprintln(os.Stderr, "fsam:", err)
		return exitcode.Failure
	}
	if resp.Degraded != "" {
		fmt.Fprintf(os.Stderr, "fsam: precision degraded to %s (%s)\n", resp.Precision, resp.Degraded)
	}

	if opts.stats {
		fmt.Printf("server:            %s\n", baseURL)
		fmt.Printf("id:                %s\n", resp.ID)
		fmt.Printf("cached:            %v (shared %v)\n", resp.Cached, resp.Shared)
		fmt.Printf("engine:            %s\n", resp.Engine)
		fmt.Printf("precision:         %s\n", resp.Precision)
		if resp.Degraded != "" {
			fmt.Printf("degraded:          %s\n", resp.Degraded)
		}
		fmt.Printf("fsam time:         %s\n", resp.Stats.FSAMTime)
		fmt.Printf("memory:            %.2f MB\n", float64(resp.Stats.FSAMBytes)/1e6)
		fmt.Printf("interned sets:     %d unique / %d refs (dedup %.2fx)\n",
			resp.Stats.FSAMUniqueSets, resp.Stats.FSAMSetRefs, resp.Stats.FSAMDedup)
	}

	if opts.query != "" {
		pt, err := c.PointsTo(ctx, resp.ID, opts.query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsam:", err)
			return exitcode.Failure
		}
		fmt.Printf("pt(%s) = {%s}\n", opts.query, strings.Join(pt.PointsTo, ", "))
	}

	if opts.races {
		rr, err := c.Races(ctx, resp.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsam:", err)
			return resp.ExitCode
		}
		if rr.Count == 0 {
			fmt.Println("no candidate races")
		}
		for _, r := range rr.Reports {
			fmt.Println(r)
		}
	}

	if opts.escape {
		// The served view is the counter summary only — the per-object
		// classification needs the in-memory escape.Result, which stays
		// server-side. Run without -server for the full report.
		fmt.Printf("escape: %d local, %d handedoff, %d shared (pruned %d interference edges)\n",
			resp.Stats.FSAMEscapeLocal, resp.Stats.FSAMEscapeHandedOff,
			resp.Stats.FSAMEscapeShared, resp.Stats.FSAMEscapePruned)
	}
	return resp.ExitCode
}

// Command fsamd is the long-running FSAM analysis service: an HTTP/JSON
// daemon over the staged pipeline with a content-addressed result cache,
// admission control, and Prometheus-text metrics.
//
// Usage:
//
//	fsamd [flags]
//
//	-addr ADDR         listen address (default 127.0.0.1:8077; port 0
//	                   picks a free port, reported on stdout)
//	-workers N         concurrent pipeline runs (default GOMAXPROCS)
//	-queue N           admission queue depth beyond the workers (default 64)
//	-cachemb N         result-cache budget in MB (default 256)
//	-cacheentries N    result-cache entry bound (default 128)
//	-deadline D        default per-request analysis deadline (default 30s)
//	-maxdeadline D     cap on requested deadlines (default 5m)
//	-grace D           drain grace period after SIGTERM/SIGINT (default 30s)
//	-quiet             suppress per-request logs
//	-chaos SPEC        inject faults into the API paths for resilience
//	                   testing, e.g. latency=50ms:0.3,error=0.1,drop=0.05
//	                   (latency=DUR[:PROB], error/drop=PROB, seed=N);
//	                   injected faults are counted in
//	                   fsamd_chaos_injected_total{kind}
//
// Endpoints: POST /v1/analyze, GET /v1/pointsto, /v1/races, /v1/leaks,
// /healthz (liveness, always 200 while the process serves), /readyz
// (readiness, 503 while draining or saturated), /metrics. See README
// "Running fsamd" for a curl walkthrough.
//
// On SIGTERM or SIGINT the daemon stops accepting analyze requests (503
// with a Retry-After hint), flips /readyz to draining, finishes in-flight
// requests, and exits 0; if the grace period expires first it exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exitcode"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind a testable seam: it returns the process exit code
// instead of calling os.Exit, and reports the bound address on stdout so
// callers (tests, CI scripts) can use port 0.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsamd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address (port 0 picks a free port)")
		workers  = fs.Int("workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 64, "admission queue depth beyond the workers")
		cacheMB  = fs.Int64("cachemb", 256, "result-cache budget in MB")
		cacheEnt = fs.Int("cacheentries", 128, "result-cache entry bound")
		deadline = fs.Duration("deadline", 30*time.Second, "default per-request analysis deadline")
		maxDL    = fs.Duration("maxdeadline", 5*time.Minute, "cap on requested deadlines")
		grace    = fs.Duration("grace", 30*time.Second, "drain grace period on SIGTERM/SIGINT")
		quiet    = fs.Bool("quiet", false, "suppress per-request logs")
		chaosStr = fs.String("chaos", "", "fault injection spec, e.g. latency=50ms:0.3,error=0.1,drop=0.05")
	)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "fsamd: unexpected arguments")
		return exitcode.Usage
	}
	chaosCfg, err := server.ParseChaos(*chaosStr)
	if err != nil {
		fmt.Fprintln(stderr, "fsamd:", err)
		return exitcode.Usage
	}

	logger := log.New(stderr, "fsamd: ", log.LstdFlags|log.Lmsgprefix)
	reqLog := logger
	if *quiet {
		reqLog = log.New(io.Discard, "", 0)
	}
	svc := server.New(server.Options{
		Workers:         *workers,
		Queue:           *queue,
		CacheBytes:      *cacheMB << 20,
		CacheEntries:    *cacheEnt,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDL,
		Log:             reqLog,
		Chaos:           chaosCfg,
	})
	if chaosCfg.Enabled() {
		logger.Printf("chaos enabled: %s", *chaosStr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "fsamd:", err)
		return exitcode.Failure
	}
	// The bound address goes to stdout (not the log) so scripts using
	// port 0 can scrape it reliably.
	fmt.Fprintf(stdout, "fsamd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "fsamd:", err)
		return exitcode.Failure
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (grace %s)", *grace)
	svc.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Printf("grace period expired with requests in flight")
		} else {
			logger.Printf("shutdown: %v", err)
		}
		return exitcode.Failure
	}
	logger.Printf("drained cleanly")
	return exitcode.OK
}

package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// newDaemon starts an in-process fsamd and returns its base URL.
func newDaemon(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// incrBaseSrc has one known data race (unsynchronized g), so baselines are
// non-trivial.
const incrBaseSrc = `int g;
int *p;
void worker(void *arg) {
	g = 2;
	p = &g;
}
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	g = 1;
	join(t);
	return 0;
}
`

func writeFile(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCheck drives the CLI entry point and returns (exit code, stdout).
func runCheck(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	t.Logf("fsamcheck %s -> %d\nstderr: %s", strings.Join(args, " "), code, stderr.String())
	return code, stdout.String()
}

// TestIncrementalBaselineCheckIdentical is the -incremental contract: with
// a recorded baseline, `-baseline check` over an edited program produces
// byte-identical stdout (and the same exit code) whether the edit is
// analyzed from scratch or incrementally against the base program —
// across the tier a constant tweak lands in (iso) and the tier a new
// statement forces (semantic), and across output formats.
func TestIncrementalBaselineCheckIdentical(t *testing.T) {
	dir := t.TempDir()
	// The editor-loop layout: prog.mc is baselined, then edited in place;
	// base.mc keeps the pre-edit text for -incremental to delta against.
	progPath := writeFile(t, dir, "prog.mc", incrBaseSrc)
	basePath := writeFile(t, dir, "base.mc", incrBaseSrc)
	baseline := filepath.Join(dir, "fsamcheck.baseline")

	if code, _ := runCheck(t, "-baseline", "write", "-baseline-file", baseline, progPath); code != 0 {
		t.Fatalf("baseline write: exit %d", code)
	}

	edits := map[string]string{
		// Constant tweak: same pointer structure (iso tier).
		"iso": strings.Replace(incrBaseSrc, "g = 2;", "g = 7;", 1),
		// New unsynchronized global: a new race the baseline does not know
		// (semantic tier).
		"semantic": strings.Replace(
			strings.Replace(incrBaseSrc, "int g;", "int g;\nint h;", 1),
			"g = 1;", "g = 1;\n\th = 1;", 1),
	}

	for tier, src := range edits {
		writeFile(t, dir, "prog.mc", src)
		for _, format := range []string{"text", "json"} {
			scratchCode, scratchOut := runCheck(t,
				"-format", format, "-baseline", "check", "-baseline-file", baseline, progPath)
			incrCode, incrOut := runCheck(t,
				"-incremental", basePath, "-format", format,
				"-baseline", "check", "-baseline-file", baseline, progPath)
			if scratchCode != incrCode {
				t.Errorf("%s/%s: exit codes differ: scratch %d, incremental %d",
					tier, format, scratchCode, incrCode)
			}
			if scratchOut != incrOut {
				t.Errorf("%s/%s: output differs\n--- from scratch ---\n%s--- incremental ---\n%s",
					tier, format, scratchOut, incrOut)
			}
		}
	}

	// The semantic edit must surface its new race through the baseline.
	writeFile(t, dir, "prog.mc", edits["semantic"])
	code, out := runCheck(t,
		"-incremental", basePath, "-baseline", "check", "-baseline-file", baseline, progPath)
	if code == 0 || !strings.Contains(out, "h") {
		t.Errorf("semantic edit's new race not reported: exit %d\n%s", code, out)
	}
	// The iso edit changes no findings: the baseline hides everything.
	writeFile(t, dir, "prog.mc", edits["iso"])
	if code, out := runCheck(t,
		"-incremental", basePath, "-baseline", "check", "-baseline-file", baseline, progPath); code != 0 {
		t.Errorf("iso edit reported findings past the baseline: exit %d\n%s", code, out)
	}
}

// TestIncrementalPlainOutputIdentical covers the no-baseline path: full
// finding output of an edited program is byte-identical from scratch and
// incrementally.
func TestIncrementalPlainOutputIdentical(t *testing.T) {
	dir := t.TempDir()
	basePath := writeFile(t, dir, "prog.mc", incrBaseSrc)
	editDir := filepath.Join(dir, "edited")
	if err := os.Mkdir(editDir, 0o755); err != nil {
		t.Fatal(err)
	}
	editedPath := writeFile(t, editDir, "prog.mc",
		strings.Replace(incrBaseSrc, "g = 2;", "g = 9;", 1))

	scratchCode, scratchOut := runCheck(t, editedPath)
	incrCode, incrOut := runCheck(t, "-incremental", basePath, editedPath)
	if scratchCode != incrCode || scratchOut != incrOut {
		t.Errorf("outputs differ (exit %d vs %d)\n--- from scratch ---\n%s--- incremental ---\n%s",
			scratchCode, incrCode, scratchOut, incrOut)
	}
	if !strings.Contains(scratchOut, "race") {
		t.Errorf("expected a race finding, got:\n%s", scratchOut)
	}
}

// TestIncrementalServed routes the same flow through a live fsamd: the
// base is analyzed once, the edit goes up as a base+patch request.
func TestIncrementalServed(t *testing.T) {
	srv := newDaemon(t)
	dir := t.TempDir()
	basePath := writeFile(t, dir, "prog.mc", incrBaseSrc)
	editDir := filepath.Join(dir, "edited")
	if err := os.Mkdir(editDir, 0o755); err != nil {
		t.Fatal(err)
	}
	editedPath := writeFile(t, editDir, "prog.mc",
		strings.Replace(incrBaseSrc, "g = 2;", "g = 9;", 1))

	localCode, localOut := runCheck(t, "-incremental", basePath, editedPath)
	servedCode, servedOut := runCheck(t, "-server", srv, "-incremental", basePath, editedPath)
	if localCode != servedCode || localOut != servedOut {
		t.Errorf("served output differs (exit %d vs %d)\n--- local ---\n%s--- served ---\n%s",
			localCode, servedCode, localOut, servedOut)
	}
}

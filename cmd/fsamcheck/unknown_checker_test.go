package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/exitcode"
	"repro/internal/server"
)

// TestUnknownCheckerExits2 pins the CLI contract for a misspelled -checkers
// entry: exit code 2 (usage) and a stderr message listing every registered
// checker ID, so the caller can self-correct without consulting docs.
func TestUnknownCheckerExits2(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "prog.mc", incrBaseSrc)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-checkers", "race,nosuchchecker", path}, &stdout, &stderr)
	if code != exitcode.Usage {
		t.Fatalf("exit code = %d, want %d (usage)", code, exitcode.Usage)
	}
	msg := stderr.String()
	if !strings.Contains(msg, `"nosuchchecker"`) {
		t.Errorf("stderr %q does not quote the unknown ID", msg)
	}
	for _, id := range checkers.IDs() {
		if !strings.Contains(msg, id) {
			t.Errorf("stderr %q does not list registered checker %q", msg, id)
		}
	}
}

// TestUnknownCheckerServed400 is the same contract through fsamd: the
// /v1/diagnostics handler answers 400 with the checkers package's
// ErrUnknownChecker message — the one source of truth for both surfaces.
func TestUnknownCheckerServed400(t *testing.T) {
	base := newDaemon(t)

	body, _ := json.Marshal(server.AnalyzeRequest{Name: "prog.mc", Source: incrBaseSrc})
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var ar server.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatalf("decode analyze: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/diagnostics?id=" + ar.ID + "&checkers=nosuchchecker")
	if err != nil {
		t.Fatalf("diagnostics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, raw)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if er.ExitCode != exitcode.Usage {
		t.Errorf("exit_code = %d, want %d", er.ExitCode, exitcode.Usage)
	}
	if !strings.Contains(er.Error, `"nosuchchecker"`) {
		t.Errorf("error %q does not quote the unknown ID", er.Error)
	}
	for _, id := range checkers.IDs() {
		if !strings.Contains(er.Error, id) {
			t.Errorf("error %q does not list registered checker %q", er.Error, id)
		}
	}

	// And the served CLI path folds the 400 back into exit 2.
	dir := t.TempDir()
	path := writeFile(t, dir, "prog.mc", incrBaseSrc)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-server", base, "-checkers", "nosuchchecker", path}, &stdout, &stderr)
	if code != exitcode.Usage {
		t.Fatalf("served CLI exit code = %d, want %d; stderr %s", code, exitcode.Usage, stderr.String())
	}
}

// Command fsamcheck runs the FSAM diagnostic checker suite over MiniC
// programs and reports the findings: data races, lock-order deadlock
// cycles, memory leaks, use-after-free, double free, and pthread API
// misuse, all derived from the sparse flow-sensitive thread-aware
// points-to results.
//
// Usage:
//
//	fsamcheck [flags] prog.mc [prog2.mc ...]
//
//	-engine NAME       analysis engine (default fsam; precision-gated
//	                   checkers are skipped on coarser engines)
//	-memmodel NAME     memory consistency model: sc (default), tso, or pso
//	                   (the racypub checker reports only under tso/pso,
//	                   where unfenced publication is actually unsafe)
//	-checkers a,b      run only the named checkers (default: all; see
//	                   -list for IDs)
//	-format FMT        output format: text (default), json, or sarif
//	                   (SARIF 2.1.0, for code-scanning upload)
//	-baseline MODE     "write" records current findings to the baseline
//	                   file and exits 0; "check" reports only findings
//	                   not in the baseline
//	-baseline-file F   baseline path (default .fsamcheck.baseline)
//	-incremental F     re-analyze each input as an edit of base program F,
//	                   adopting every per-function fact the edit did not
//	                   invalidate (findings are identical to a from-scratch
//	                   run; with -server, F is analyzed once and the inputs
//	                   are submitted as base+patch requests)
//	-list              print the registered checkers and exit
//	-timeout D         analysis deadline per file (default 2h)
//	-membudget N       soft heap budget in bytes (0 = unlimited)
//	-steplimit N       per-phase worklist-pop limit (0 = unlimited)
//	-server URL        analyze via a running fsamd instead of in-process
//
// Findings suppressed by inline `// fsam:ignore[checker]` comments are
// dropped (counted on stderr). When the engine's degradation ladder lands
// below full precision, checkers that need the unavailable analyses are
// skipped with a note on stderr — skipping never fails the run.
//
// Exit codes: 0 no findings, 1 findings reported or hard failure
// (distinguished on stderr), 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	fsam "repro"
	"repro/internal/checkers"
	"repro/internal/diag"
	"repro/internal/exitcode"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed flag set; factored out so tests can drive run().
type options struct {
	engine     string
	memModel   string
	checkerIDs []string
	format     string
	baseline   string
	baseFile   string
	timeout    time.Duration
	memBudget  uint64
	stepLimit  int64
	serverURL  string
	// incremental names a base program; inputs are analyzed as edits of it.
	incremental string
	files       []string
}

// incrementalBase is the analyzed -incremental program: the in-process
// analysis handle, or (on the -server path) the daemon-side program key.
type incrementalBase struct {
	a       *fsam.Analysis
	progKey string
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsamcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engine       = fs.String("engine", fsam.DefaultEngine, "analysis engine ("+strings.Join(fsam.Engines(), ", ")+")")
		memModel     = fs.String("memmodel", fsam.DefaultMemModel, "memory consistency model ("+strings.Join(fsam.MemModels(), ", ")+")")
		checkersFlag = fs.String("checkers", "", "comma-separated checker IDs to run (default: all)")
		format       = fs.String("format", "text", "output format: text, json, or sarif")
		baseMode     = fs.String("baseline", "", `baseline mode: "write" or "check"`)
		baseFile     = fs.String("baseline-file", ".fsamcheck.baseline", "baseline file path")
		list         = fs.Bool("list", false, "print the registered checkers and exit")
		timeout      = fs.Duration("timeout", 2*time.Hour, "analysis deadline per file")
		memBud       = fs.Uint64("membudget", 0, "soft heap budget in bytes, 0 = unlimited")
		stepLim      = fs.Int64("steplimit", 0, "per-phase worklist-pop limit, 0 = unlimited")
		srvURL       = fs.String("server", "", "analyze via a running fsamd at this base URL")
		incr         = fs.String("incremental", "", "re-analyze inputs as edits of this base program")
	)
	if err := fs.Parse(argv); err != nil {
		return exitcode.Usage
	}
	if *list {
		for _, c := range checkers.All() {
			fmt.Fprintf(stdout, "%-12s %s (%s): %s\n", c.ID, c.Name, c.Severity, c.Doc)
		}
		return exitcode.OK
	}
	opt := options{
		engine: *engine, memModel: *memModel,
		format: *format, baseline: *baseMode, baseFile: *baseFile,
		timeout: *timeout, memBudget: *memBud, stepLimit: *stepLim,
		serverURL: *srvURL, incremental: *incr, files: fs.Args(),
	}
	if !fsam.KnownEngine(opt.engine) {
		fmt.Fprintf(stderr, "fsamcheck: unknown engine %q (known: %s)\n",
			opt.engine, strings.Join(fsam.Engines(), ", "))
		return exitcode.Usage
	}
	if !fsam.KnownMemModel(opt.memModel) {
		fmt.Fprintf(stderr, "fsamcheck: unknown memory model %q (known: %s)\n",
			opt.memModel, strings.Join(fsam.MemModels(), ", "))
		return exitcode.Usage
	}
	if *checkersFlag != "" {
		for _, id := range strings.Split(*checkersFlag, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opt.checkerIDs = append(opt.checkerIDs, id)
			}
		}
	}
	switch opt.format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "fsamcheck: unknown -format %q (want text, json, or sarif)\n", opt.format)
		return exitcode.Usage
	}
	switch opt.baseline {
	case "", "write", "check":
	default:
		fmt.Fprintf(stderr, "fsamcheck: unknown -baseline %q (want write or check)\n", opt.baseline)
		return exitcode.Usage
	}
	for _, id := range opt.checkerIDs {
		if checkers.ByID(id) == nil {
			fmt.Fprintf(stderr, "fsamcheck: unknown checker %q (known: %s)\n",
				id, strings.Join(checkers.IDs(), ", "))
			return exitcode.Usage
		}
	}
	if len(opt.files) == 0 {
		fmt.Fprintln(stderr, "usage: fsamcheck [flags] prog.mc [prog2.mc ...]")
		fs.Usage()
		return exitcode.Usage
	}
	return check(opt, stdout, stderr)
}

// check analyzes every file, merges the diagnostics, applies the baseline,
// and renders. The merged list is re-sorted under the canonical order so
// multi-file output is deterministic regardless of argument order effects
// within a file (fingerprints are per-file and unaffected by the merge).
func check(opt options, stdout, stderr io.Writer) int {
	var (
		all        []diag.Diagnostic
		skipped    = map[string]string{}
		suppressed int
		inc        *incrementalBase
	)
	if opt.incremental != "" {
		var code int
		inc, code = loadIncrementalBase(opt, stderr)
		if inc == nil {
			return code
		}
	}
	for _, path := range opt.files {
		srcBytes, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "fsamcheck:", err)
			return exitcode.Failure
		}
		res, code := analyzeOne(opt, inc, path, string(srcBytes), stderr)
		if res == nil {
			return code
		}
		all = append(all, res.Diags...)
		for id, reason := range res.Skipped {
			skipped[id] = reason
		}
		suppressed += res.Suppressed
	}
	diag.Sort(all)

	if len(skipped) > 0 {
		ids := make([]string, 0, len(skipped))
		for id := range skipped {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(stderr, "fsamcheck: checker %s skipped: %s\n", id, skipped[id])
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(stderr, "fsamcheck: %d finding(s) suppressed by fsam:ignore comments\n", suppressed)
	}

	switch opt.baseline {
	case "write":
		f, err := os.Create(opt.baseFile)
		if err == nil {
			err = diag.WriteBaseline(f, all)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "fsamcheck:", err)
			return exitcode.Failure
		}
		fmt.Fprintf(stdout, "fsamcheck: wrote %d finding(s) to %s\n", len(all), opt.baseFile)
		return exitcode.OK
	case "check":
		f, err := os.Open(opt.baseFile)
		if err != nil {
			fmt.Fprintln(stderr, "fsamcheck:", err)
			return exitcode.Failure
		}
		base, err := diag.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "fsamcheck:", err)
			return exitcode.Failure
		}
		var known int
		all, known = base.Filter(all)
		if known > 0 {
			fmt.Fprintf(stderr, "fsamcheck: %d known finding(s) hidden by baseline %s\n", known, opt.baseFile)
		}
	}

	if err := render(stdout, opt, all); err != nil {
		fmt.Fprintln(stderr, "fsamcheck:", err)
		return exitcode.Failure
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "fsamcheck: %d finding(s)\n", len(all))
		return exitcode.FindingsReported
	}
	return exitcode.OK
}

// render writes the findings in the selected format. SARIF carries the
// rule metadata of exactly the checkers that ran (or all, by default).
func render(w io.Writer, opt options, diags []diag.Diagnostic) error {
	switch opt.format {
	case "json":
		return diag.WriteJSON(w, diags)
	case "sarif":
		return diag.WriteSARIF(w, diags, checkers.Rules(opt.checkerIDs...))
	default:
		return diag.WriteText(w, diags)
	}
}

// loadIncrementalBase analyzes the -incremental program once. In-process
// the result is the base Analysis every input deltas against; on the
// -server path it is the daemon-side program key the patch requests name.
// A nil result means a terminal error; the int is the exit code.
func loadIncrementalBase(opt options, stderr io.Writer) (*incrementalBase, int) {
	srcBytes, err := os.ReadFile(opt.incremental)
	if err != nil {
		fmt.Fprintln(stderr, "fsamcheck:", err)
		return nil, exitcode.Failure
	}
	ctx := context.Background()
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	if opt.serverURL != "" {
		c := client.New(opt.serverURL)
		resp, err := c.Analyze(ctx, server.AnalyzeRequest{
			Name:   opt.incremental,
			Source: string(srcBytes),
			Config: server.ConfigRequest{Engine: opt.engine, MemModel: opt.memModel, MemBudgetBytes: opt.memBudget, StepLimit: opt.stepLimit},
		})
		if err != nil {
			fmt.Fprintln(stderr, "fsamcheck:", err)
			return nil, exitcode.Failure
		}
		if resp.ProgKey == "" {
			fmt.Fprintf(stderr, "fsamcheck: server returned no program key for %s; cannot analyze incrementally\n", opt.incremental)
			return nil, exitcode.Failure
		}
		return &incrementalBase{progKey: resp.ProgKey}, exitcode.OK
	}
	cfg := fsam.Config{Engine: opt.engine, MemModel: opt.memModel, MemBudgetBytes: opt.memBudget, StepLimit: opt.stepLimit}.Normalize()
	a, err := fsam.AnalyzeSourceCtx(ctx, opt.incremental, string(srcBytes), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "fsamcheck:", err)
		return nil, exitcode.Failure
	}
	return &incrementalBase{a: a}, exitcode.OK
}

// analyzeOne produces the diagnostics of one file, in-process or via a
// served fsamd, optionally as a delta against inc. A nil result means a
// terminal error; the int is the exit code to return.
func analyzeOne(opt options, inc *incrementalBase, path, src string, stderr io.Writer) (*fsam.DiagnosticsResult, int) {
	ctx := context.Background()
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	if opt.serverURL != "" {
		return analyzeServed(ctx, opt, inc, path, src, stderr)
	}
	var (
		a   *fsam.Analysis
		err error
	)
	if inc != nil {
		var rep *fsam.DeltaReport
		a, rep, err = fsam.AnalyzeDeltaCtx(ctx, inc.a, path, src)
		if rep != nil {
			fmt.Fprintf(stderr, "fsamcheck: %s: incremental tier=%s adopted=%d changed=%d (%s)\n",
				path, rep.Tier, rep.AdoptedFuncs, len(rep.ChangedFuncs), rep.Facts)
		}
	} else {
		cfg := fsam.Config{Engine: opt.engine, MemModel: opt.memModel, MemBudgetBytes: opt.memBudget, StepLimit: opt.stepLimit}.Normalize()
		a, err = fsam.AnalyzeSourceCtx(ctx, path, src, cfg)
	}
	if err != nil {
		if pipeline.ErrCancelled(err) {
			fmt.Fprintf(stderr, "fsamcheck: %s: out of time after %s\n", path, opt.timeout)
			return nil, exitcode.Failure
		}
		fmt.Fprintln(stderr, "fsamcheck:", err)
		return nil, exitcode.Failure
	}
	if a.Stats.Degraded != "" {
		fmt.Fprintf(stderr, "fsamcheck: %s: precision degraded to %s (%s)\n",
			path, a.Precision, a.Stats.Degraded)
	}
	res, err := a.Diagnostics(opt.checkerIDs...)
	if err != nil {
		fmt.Fprintln(stderr, "fsamcheck:", err)
		if errors.Is(err, checkers.ErrUnknownChecker) {
			return nil, exitcode.Usage
		}
		return nil, exitcode.Failure
	}
	return res, exitcode.OK
}

// analyzeServed is the -server path: POST the source (as a base+patch
// request when inc is set), then query /v1/diagnostics on the cached
// result.
func analyzeServed(ctx context.Context, opt options, inc *incrementalBase, path, src string, stderr io.Writer) (*fsam.DiagnosticsResult, int) {
	c := client.New(opt.serverURL)
	areq := server.AnalyzeRequest{
		Name:   path,
		Source: src,
		Config: server.ConfigRequest{Engine: opt.engine, MemModel: opt.memModel, MemBudgetBytes: opt.memBudget, StepLimit: opt.stepLimit},
	}
	if opt.timeout > 0 {
		areq.DeadlineMS = opt.timeout.Milliseconds()
	}
	var resp *server.AnalyzeResponse
	var err error
	if inc != nil {
		resp, err = c.AnalyzeDelta(ctx, inc.progKey, areq)
		if err == nil && resp.Delta != nil {
			fmt.Fprintf(stderr, "fsamcheck: %s: incremental tier=%s adopted=%d changed=%d (%s)\n",
				path, resp.Delta.Tier, resp.Delta.AdoptedFuncs, len(resp.Delta.ChangedFuncs), resp.Delta.Facts)
		}
	} else {
		resp, err = c.Analyze(ctx, areq)
	}
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.ExitCode == exitcode.Usage {
			fmt.Fprintln(stderr, "fsamcheck:", apiErr.Message)
			return nil, exitcode.Usage
		}
		fmt.Fprintln(stderr, "fsamcheck:", err)
		return nil, exitcode.Failure
	}
	if resp.Degraded != "" {
		fmt.Fprintf(stderr, "fsamcheck: %s: precision degraded to %s (%s)\n",
			path, resp.Precision, resp.Degraded)
	}
	dr, err := c.Diagnostics(ctx, resp.ID, opt.checkerIDs)
	if err != nil {
		var apiErr *client.APIError
		fmt.Fprintln(stderr, "fsamcheck:", err)
		if errors.As(err, &apiErr) && apiErr.ExitCode == exitcode.Usage {
			return nil, exitcode.Usage
		}
		return nil, exitcode.Failure
	}
	return &fsam.DiagnosticsResult{
		Diags:      dr.Diagnostics,
		Skipped:    dr.Skipped,
		Suppressed: dr.Suppressed,
	}, exitcode.OK
}

// Command fsamgen emits the synthetic benchmark programs of the paper's
// Table 1 as MiniC source, for inspection or for feeding to cmd/fsam.
//
// Usage:
//
//	fsamgen -list
//	fsamgen [-scale N] word_count            # print one program to stdout
//	fsamgen [-scale N] -o DIR -all           # write every program to DIR
//	fsamgen [-scale N] -check -all           # compile-check, emit nothing
//
// Exit codes: 0 success, 1 generation or compile-check failure, 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exitcode"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list benchmark names")
		all   = flag.Bool("all", false, "generate every benchmark")
		scale = flag.Int("scale", 1, "scale factor")
		out   = flag.String("o", "", "output directory (default stdout)")
		check = flag.Bool("check", false, "compile-check the generated source instead of emitting it")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.Suite {
			fmt.Printf("%-14s %s (paper LOC %d)\n", s.Name, s.Description, s.PaperLOC)
		}
		return
	}

	var names []string
	if *all {
		for _, s := range workload.Suite {
			names = append(names, s.Name)
		}
	} else {
		names = flag.Args()
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsamgen [-scale N] [-o DIR | -check] (-all | name...)")
		os.Exit(exitcode.Usage)
	}

	for _, name := range names {
		src, err := workload.Generate(name, *scale)
		if err != nil {
			fatal(err)
		}
		if *check {
			// Compile surfaces positioned errors ("name:line:col: msg")
			// instead of panicking; a generator regression fails here.
			if _, err := pipeline.Compile(name+".mc", src); err != nil {
				fatal(fmt.Errorf("%s does not compile: %w", name, err))
			}
			fmt.Printf("%s: ok (%d lines)\n", name, workload.LOC(src))
			continue
		}
		if *out == "" {
			fmt.Print(src)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name+".mc")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d lines)\n", path, workload.LOC(src))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsamgen:", err)
	os.Exit(exitcode.Failure)
}

// Command fsambench regenerates the paper's evaluation artifacts over the
// synthetic workload suite:
//
//	fsambench -table1              benchmark statistics (Table 1)
//	fsambench -table2              FSAM vs NONSPARSE time/memory (Table 2)
//	fsambench -figure12            ablation slowdowns (Figure 12)
//	fsambench -all                 everything
//	fsambench -table2 -json        Table 2 rows as JSON (machine-readable)
//
// Flags -scale and -timeout control workload size and the NONSPARSE budget
// (the stand-in for the paper's two-hour limit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 (program statistics)")
		table2   = flag.Bool("table2", false, "print Table 2 (time and memory, FSAM vs NonSparse)")
		figure12 = flag.Bool("figure12", false, "print Figure 12 (phase-ablation slowdowns)")
		all      = flag.Bool("all", false, "print every artifact")
		scale    = flag.Int("scale", harness.DefaultScale, "workload scale factor")
		timeout  = flag.Duration("timeout", harness.DefaultTimeout, "NonSparse deadline (stand-in for the paper's 2h)")
		asJSON   = flag.Bool("json", false, "emit Table 2 rows as JSON instead of text (implies -table2)")
	)
	flag.Parse()

	if *asJSON {
		*table2 = true
	}
	if !*table1 && !*table2 && !*figure12 && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*table1, *table2, *figure12 = true, true, true
	}

	if *asJSON {
		rows := harness.RunTable2(*scale, *timeout)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *table1 {
		harness.PrintTable1(os.Stdout, harness.RunTable1(*scale))
		fmt.Println()
	}
	if *table2 {
		start := time.Now()
		rows := harness.RunTable2(*scale, *timeout)
		harness.PrintTable2(os.Stdout, rows)
		fmt.Printf("(total harness time %.1fs, scale %d, timeout %s)\n\n",
			time.Since(start).Seconds(), *scale, *timeout)
	}
	if *figure12 {
		harness.PrintFigure12(os.Stdout, harness.RunFigure12(*scale))
	}
}

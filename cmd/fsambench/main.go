// Command fsambench regenerates the paper's evaluation artifacts over the
// synthetic workload suite:
//
//	fsambench -table1              benchmark statistics (Table 1)
//	fsambench -table2              FSAM vs NONSPARSE time/memory (Table 2)
//	fsambench -figure12            ablation slowdowns (Figure 12)
//	fsambench -all                 everything
//	fsambench -table1 -json        Table 1 rows as JSON (machine-readable)
//	fsambench -table2 -json        Table 2 rows as JSON (machine-readable)
//
// Flags -scale and -timeout control workload size and the per-analysis
// budget (the stand-in for the paper's two-hour limit); the budget applies
// to FSAM and NONSPARSE alike, so either analysis can appear as an OOT
// row. Exit status is 1 when any benchmark fails to compile or analyze.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fsambench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 (program statistics)")
		table2   = flag.Bool("table2", false, "print Table 2 (time and memory, FSAM vs NonSparse)")
		figure12 = flag.Bool("figure12", false, "print Figure 12 (phase-ablation slowdowns)")
		all      = flag.Bool("all", false, "print every artifact")
		scale    = flag.Int("scale", harness.DefaultScale, "workload scale factor")
		timeout  = flag.Duration("timeout", harness.DefaultTimeout, "per-analysis deadline (stand-in for the paper's 2h)")
		asJSON   = flag.Bool("json", false, "emit the selected tables as JSON instead of text (alone, implies -table2)")
	)
	flag.Parse()

	if *asJSON && !*table1 && !*figure12 && !*all {
		*table2 = true
	}
	if !*table1 && !*table2 && !*figure12 && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*table1, *table2, *figure12 = true, true, true
	}

	if *asJSON {
		return emitJSON(*table1, *table2, *scale, *timeout)
	}

	if *table1 {
		harness.PrintTable1(os.Stdout, harness.RunTable1(*scale))
		fmt.Println()
	}
	if *table2 {
		start := time.Now()
		rows, err := harness.RunTable2(*scale, *timeout)
		if err != nil {
			return err
		}
		harness.PrintTable2(os.Stdout, rows)
		fmt.Printf("(total harness time %.1fs, scale %d, timeout %s)\n\n",
			time.Since(start).Seconds(), *scale, *timeout)
	}
	if *figure12 {
		rows, err := harness.RunFigure12(*scale)
		if err != nil {
			return err
		}
		harness.PrintFigure12(os.Stdout, rows)
	}
	return nil
}

// emitJSON writes the selected tables as JSON. A single table keeps the
// historical bare-array schema; both tables nest under "table1"/"table2".
func emitJSON(table1, table2 bool, scale int, timeout time.Duration) error {
	var payload any
	switch {
	case table1 && table2:
		t2, err := harness.RunTable2(scale, timeout)
		if err != nil {
			return err
		}
		payload = map[string]any{
			"table1": harness.RunTable1(scale),
			"table2": t2,
		}
	case table1:
		payload = harness.RunTable1(scale)
	default:
		t2, err := harness.RunTable2(scale, timeout)
		if err != nil {
			return err
		}
		payload = t2
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

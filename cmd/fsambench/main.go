// Command fsambench regenerates the paper's evaluation artifacts over the
// synthetic workload suite:
//
//	fsambench -table1              benchmark statistics (Table 1)
//	fsambench -table2              FSAM vs NONSPARSE time/memory (Table 2)
//	                               plus the per-engine comparison matrix
//	fsambench -figure12            ablation slowdowns (Figure 12)
//	fsambench -all                 everything
//	fsambench -table1 -json        Table 1 rows as JSON (machine-readable)
//	fsambench -table2 -json        Table 2 rows as JSON (machine-readable)
//	fsambench -engines -json       engine matrix rows as JSON
//	fsambench -scales 1,4,16 -json multi-scale seed object (see BENCH_seed.json)
//	fsambench -perfdiff FILE       re-run the smallest scale recorded in a
//	                               -scales seed file and fail (exit 1) on a
//	                               >25% total wall-time regression
//	fsambench -incremental         cold vs warm: analyze each benchmark,
//	                               apply the canonical one-function edit,
//	                               and re-analyze both from scratch and
//	                               incrementally (default scales 1,4,16;
//	                               override with -scales). Fails (exit 1)
//	                               when results differ or warm exceeds
//	                               40% of cold at scale 4
//	fsambench -server URL          drive a running fsamd instead: N requests
//	                               per benchmark (-requests), reporting
//	                               client-observed latency percentiles and
//	                               cache hits
//	fsambench -cluster             boot an in-process fleet (-replicas, default
//	                               2) behind an fsamgw gateway, inject chaos
//	                               into replica 0 (-chaos), kill and restart
//	                               the last replica mid-run (-kill), and drive
//	                               -traffic mixed hot/cold requests through
//	                               the gateway with client retries disabled.
//	                               Fails (exit 1) on any client-visible
//	                               failure, or if retries, hedges, or a full
//	                               breaker open→close cycle were not observed,
//	                               or the fleet cache hit ratio sags
//
// Flags -scale and -timeout control workload size and the per-analysis
// budget (the stand-in for the paper's two-hour limit); the budget applies
// to every engine alike, so any analysis can appear as an OOT row.
// -engine selects the backend of the Table 2 FSAM column (default fsam);
// -memmodel selects the memory consistency model those runs assume
// (sc/tso/pso; tmod widens interference accordingly); -escapeprune turns
// the thread-escape pruning oracle off for ablation; -membudget and
// -steplimit impose the degradation ladder's resource budgets on those
// runs; a tripped row reports its tier in the fsam_precision /
// fsam_degraded columns rather than failing. Engine-matrix tmod rows also
// record interference rounds and the seq/par wall-time ratio of solving
// threads on one goroutine vs one goroutine per thread.
//
// Exit codes: 0 every row at its requested engine's tier, 1 a benchmark
// failed to compile or analyze (or the perf diff regressed), 2 usage,
// 3/4/5/6 at least one row degraded (the worst tier reached:
// thread-oblivious / Andersen-only / CFG-free / thread-modular).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	fsam "repro"
	"repro/internal/cluster"
	"repro/internal/exitcode"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsambench:", err)
		os.Exit(exitcode.Failure)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		table1    = flag.Bool("table1", false, "print Table 1 (program statistics)")
		table2    = flag.Bool("table2", false, "print Table 2 (time and memory, FSAM vs NonSparse) and the engine matrix")
		engines   = flag.Bool("engines", false, "print the per-engine comparison matrix only")
		figure12  = flag.Bool("figure12", false, "print Figure 12 (phase-ablation slowdowns)")
		all       = flag.Bool("all", false, "print every artifact")
		engine    = flag.String("engine", fsam.DefaultEngine, "engine of the Table 2 FSAM column ("+strings.Join(fsam.Engines(), ", ")+")")
		memModel  = flag.String("memmodel", fsam.DefaultMemModel, "memory consistency model ("+strings.Join(fsam.MemModels(), ", ")+")")
		scale     = flag.Int("scale", harness.DefaultScale, "workload scale factor")
		scalesCSV = flag.String("scales", "", "comma-separated scales: run Table 2 at each (with -json, emit the seed-file object)")
		perfdiff  = flag.String("perfdiff", "", "seed JSON file to diff wall times against (exit 1 on >25% total regression)")
		incr      = flag.Bool("incremental", false, "measure cold vs warm (incremental) re-analysis per benchmark")
		reps      = flag.Int("reps", 3, "timed repetitions per -incremental measurement (best-of-N)")
		timeout   = flag.Duration("timeout", harness.DefaultTimeout, "per-analysis deadline (stand-in for the paper's 2h)")
		memBud    = flag.Uint64("membudget", 0, "soft heap budget in bytes for each FSAM run, 0 = unlimited")
		stepLim   = flag.Int64("steplimit", 0, "per-phase worklist-pop limit for each FSAM run, 0 = unlimited")
		escPrune  = flag.String("escapeprune", "", "thread-escape pruning mode for each FSAM run ("+strings.Join(fsam.EscapePruneModes(), ", ")+"); empty = on")
		asJSON    = flag.Bool("json", false, "emit the selected tables as JSON instead of text (alone, implies -table2)")
		srvURL    = flag.String("server", "", "drive a running fsamd at this base URL instead of analyzing in-process")
		requests  = flag.Int("requests", 5, "requests per benchmark in -server mode")
		clusterM  = flag.Bool("cluster", false, "boot an in-process fsamd fleet behind fsamgw, drive chaos traffic through it, and gate on resilience")
		replicas  = flag.Int("replicas", 2, "fleet size in -cluster mode")
		traffic   = flag.Int("traffic", 200, "total analyze requests in -cluster mode")
		chaosStr  = flag.String("chaos", "latency=30ms:0.3,error=0.15", "fault spec injected into replica 0 in -cluster mode")
		kill      = flag.Bool("kill", true, "kill and restart the last replica mid-run in -cluster mode")
		hedge     = flag.Duration("hedge", 30*time.Millisecond, "gateway hedge delay in -cluster mode")
		seed      = flag.Int64("seed", 1, "traffic-plan seed in -cluster mode")
	)
	flag.Parse()

	if !fsam.KnownEngine(*engine) {
		fmt.Fprintf(os.Stderr, "fsambench: unknown engine %q (known: %s)\n", *engine, strings.Join(fsam.Engines(), ", "))
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownMemModel(*memModel) {
		fmt.Fprintf(os.Stderr, "fsambench: unknown memory model %q (known: %s)\n", *memModel, strings.Join(fsam.MemModels(), ", "))
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownEscapePrune(*escPrune) {
		fmt.Fprintf(os.Stderr, "fsambench: unknown escape-prune mode %q (known: %s)\n", *escPrune, strings.Join(fsam.EscapePruneModes(), ", "))
		os.Exit(exitcode.Usage)
	}
	if *clusterM {
		return runCluster(*replicas, *traffic, *chaosStr, *kill, *hedge, *seed)
	}
	if *srvURL != "" {
		return runServer(*srvURL, *requests, *scale, *timeout, *engine, *memBud, *stepLim)
	}
	cfg := fsam.Config{Engine: *engine, MemModel: *memModel, MemBudgetBytes: *memBud, StepLimit: *stepLim, EscapePrune: *escPrune}
	if *incr {
		scales := []int{1, 4, 16}
		if *scalesCSV != "" {
			var err error
			if scales, err = parseScales(*scalesCSV); err != nil {
				fmt.Fprintln(os.Stderr, "fsambench:", err)
				os.Exit(exitcode.Usage)
			}
		}
		return runIncremental(scales, *reps, *timeout, cfg, *asJSON)
	}
	if *perfdiff != "" {
		return runPerfDiff(*perfdiff, *timeout, cfg)
	}
	if *scalesCSV != "" {
		scales, err := parseScales(*scalesCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsambench:", err)
			os.Exit(exitcode.Usage)
		}
		return runScales(scales, *timeout, cfg, *asJSON)
	}
	if *asJSON && !*table1 && !*figure12 && !*all && !*engines {
		*table2 = true
	}
	if !*table1 && !*table2 && !*figure12 && !*all && !*engines {
		flag.Usage()
		os.Exit(exitcode.Usage)
	}
	if *all {
		*table1, *table2, *figure12 = true, true, true
	}

	if *asJSON {
		return emitJSON(*table1, *table2, *engines, *scale, *timeout, cfg)
	}

	code := exitcode.OK
	if *table1 {
		harness.PrintTable1(os.Stdout, harness.RunTable1(*scale))
		fmt.Println()
	}
	if *table2 {
		start := time.Now()
		rows, err := harness.RunTable2(*scale, *timeout, cfg)
		if err != nil {
			return exitcode.Failure, err
		}
		code = worstTier(rows)
		harness.PrintTable2(os.Stdout, rows)
		fmt.Printf("(total harness time %.1fs, scale %d, timeout %s, engine %s)\n\n",
			time.Since(start).Seconds(), *scale, *timeout, *engine)
	}
	if *table2 || *engines {
		mrows, err := harness.RunEngineMatrix(*scale, *timeout, nil)
		if err != nil {
			return exitcode.Failure, err
		}
		harness.PrintEngineMatrix(os.Stdout, mrows)
		fmt.Println()
	}
	if *figure12 {
		rows, err := harness.RunFigure12(*scale)
		if err != nil {
			return exitcode.Failure, err
		}
		harness.PrintFigure12(os.Stdout, rows)
	}
	return code, nil
}

// runServer drives a running fsamd: N analyze requests per suite benchmark,
// reporting client-observed latency percentiles (the service-level view —
// queueing, caching, and transport included) alongside how many were served
// from the daemon's cache. The exit code folds the worst served tier, same
// as the in-process harness.
func runServer(baseURL string, requests, scale int, timeout time.Duration, engine string, memBud uint64, stepLim int64) (int, error) {
	if requests < 1 {
		requests = 1
	}
	ctx := context.Background()
	c := client.New(baseURL)
	cfg := server.ConfigRequest{Engine: engine, MemBudgetBytes: memBud, StepLimit: stepLim}

	fmt.Printf("fsamd at %s: %d request(s) per benchmark, scale %d, engine %s\n\n", baseURL, requests, scale, engine)
	fmt.Printf("%-14s %8s %6s %6s  %10s %10s %10s  %s\n",
		"benchmark", "requests", "hits", "dedup", "p50", "p90", "p99", "precision")
	code := exitcode.OK
	for _, spec := range workload.Suite {
		samples := make([]time.Duration, 0, requests)
		hits, shared := 0, 0
		tier := ""
		for i := 0; i < requests; i++ {
			areq := server.AnalyzeRequest{Benchmark: spec.Name, Scale: scale, Config: cfg}
			if timeout > 0 {
				areq.DeadlineMS = timeout.Milliseconds()
			}
			t0 := time.Now()
			resp, err := c.Analyze(ctx, areq)
			if err != nil {
				return exitcode.Failure, fmt.Errorf("%s: %w", spec.Name, err)
			}
			samples = append(samples, time.Since(t0))
			if resp.Cached {
				hits++
			}
			if resp.Shared {
				shared++
			}
			tier = resp.Precision
			code = exitcode.Worst(code, resp.ExitCode)
		}
		ps := harness.Percentiles(samples, 0.50, 0.90, 0.99)
		fmt.Printf("%-14s %8d %6d %6d  %10s %10s %10s  %s\n",
			spec.Name, requests, hits, shared,
			ps[0].Round(time.Microsecond), ps[1].Round(time.Microsecond), ps[2].Round(time.Microsecond), tier)
	}
	return code, nil
}

// runCluster is the fleet resilience drill: N in-process fsamd replicas
// behind an fsamgw gateway, chaos on replica 0, a kill/restart of the last
// replica mid-run, and a client with retries disabled so only the gateway
// stands between the faults and the caller. Exit 1 unless the run shows
// zero client-visible failures with retries, hedges, and a full breaker
// open→close cycle actually observed.
func runCluster(replicas, traffic int, chaosSpec string, kill bool, hedge time.Duration, seed int64) (int, error) {
	chaos, err := server.ParseChaos(chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsambench:", err)
		os.Exit(exitcode.Usage)
	}
	rep, err := cluster.Run(cluster.Options{
		Replicas:    replicas,
		Requests:    traffic,
		Chaos:       chaos,
		KillRestart: kill,
		Seed:        seed,
		HedgeAfter:  hedge,
		Out:         os.Stdout,
	})
	if err != nil {
		return exitcode.Failure, err
	}
	rep.Print(os.Stdout)
	if err := rep.Gate(); err != nil {
		return exitcode.Failure, fmt.Errorf("cluster gate: %w", err)
	}
	fmt.Println("cluster ok")
	return exitcode.OK, nil
}

// worstTier folds degraded rows into the exit-code convention. A row that
// completed at its requested engine's tier (FSAMDegraded empty) is OK even
// when that tier is below sparse FS — selecting `-engine andersen` and
// getting Andersen's result is success.
func worstTier(rows []harness.Table2Row) int {
	code := exitcode.OK
	for _, r := range rows {
		if r.FSAMDegraded == "" {
			continue
		}
		if p, ok := fsam.ParsePrecision(r.FSAMPrecision); ok {
			code = exitcode.Worst(code, exitcode.ForPrecision(p))
		}
	}
	return code
}

// emitJSON writes the selected tables as JSON. A single table keeps the
// historical bare-array schema; multiple tables nest under
// "table1"/"table2"/"engines".
func emitJSON(table1, table2, engines bool, scale int, timeout time.Duration, cfg fsam.Config) (int, error) {
	code := exitcode.OK
	parts := map[string]any{}
	var selected []string
	if table1 {
		parts["table1"] = harness.RunTable1(scale)
		selected = append(selected, "table1")
	}
	if table2 {
		t2, err := harness.RunTable2(scale, timeout, cfg)
		if err != nil {
			return exitcode.Failure, err
		}
		code = worstTier(t2)
		parts["table2"] = t2
		selected = append(selected, "table2")
	}
	if engines {
		m, err := harness.RunEngineMatrix(scale, timeout, nil)
		if err != nil {
			return exitcode.Failure, err
		}
		parts["engines"] = m
		selected = append(selected, "engines")
	}
	var payload any = parts
	if len(selected) == 1 {
		payload = parts[selected[0]]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		return exitcode.Failure, err
	}
	return code, nil
}

// seedFile is the schema of `fsambench -scales ... -json`, the committed
// BENCH_seed.json: Table 2 rows per scale plus the engine matrix at the
// smallest scale. Scales are kept as strings in the map (JSON object keys).
type seedFile struct {
	Scales  []int                          `json:"scales"`
	Table2  map[string][]harness.Table2Row `json:"table2"`
	Engines []harness.EngineRow            `json:"engines"`
}

func parseScales(csv string) ([]int, error) {
	var scales []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scales entry %q (want positive integers)", f)
		}
		scales = append(scales, n)
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("-scales is empty")
	}
	sort.Ints(scales)
	return scales, nil
}

// runScales measures Table 2 at each scale (plus the engine matrix at the
// smallest), emitting the seed object with -json or per-scale text tables
// without.
func runScales(scales []int, timeout time.Duration, cfg fsam.Config, asJSON bool) (int, error) {
	seed := seedFile{Scales: scales, Table2: map[string][]harness.Table2Row{}}
	code := exitcode.OK
	for _, sc := range scales {
		rows, err := harness.RunTable2(sc, timeout, cfg)
		if err != nil {
			return exitcode.Failure, err
		}
		code = exitcode.Worst(code, worstTier(rows))
		seed.Table2[strconv.Itoa(sc)] = rows
		if !asJSON {
			fmt.Printf("== scale %d ==\n", sc)
			harness.PrintTable2(os.Stdout, rows)
			fmt.Println()
		}
	}
	m, err := harness.RunEngineMatrix(scales[0], timeout, nil)
	if err != nil {
		return exitcode.Failure, err
	}
	seed.Engines = m
	if !asJSON {
		fmt.Printf("== engine matrix, scale %d ==\n", scales[0])
		harness.PrintEngineMatrix(os.Stdout, m)
		return code, nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(seed); err != nil {
		return exitcode.Failure, err
	}
	return code, nil
}

// perfDiffThreshold is the tolerated total wall-time growth over the seed.
const perfDiffThreshold = 1.25

// warmRatioThreshold is the incremental-path speedup gate: at the gated
// scale, re-analyzing the suite's canonical one-function edits warm must
// cost at most this fraction of analyzing them cold.
const warmRatioThreshold = 0.40

// warmRatioScale is the scale the warm/cold gate applies at. Scale 1 runs
// are milliseconds-noisy and scale 16 is slow to double-run in CI; 4 is
// where the suite is big enough to measure and small enough to gate on.
const warmRatioScale = 4

// runIncremental measures cold vs warm re-analysis per benchmark and scale:
// each benchmark is analyzed, edited via the canonical one-function edit,
// and the edit re-analyzed both from scratch and incrementally (best of
// reps timed runs each). Results must be identical; at warmRatioScale the
// suite-total warm time must stay under warmRatioThreshold of cold.
func runIncremental(scales []int, reps int, timeout time.Duration, cfg fsam.Config, asJSON bool) (int, error) {
	ctx := context.Background()
	byScale := map[string][]harness.IncrementalRow{}
	var gateErr error
	for _, sc := range scales {
		var rows []harness.IncrementalRow
		var coldTotal, warmTotal time.Duration
		if !asJSON {
			fmt.Printf("== incremental, scale %d, engine %s ==\n", sc, cfg.Normalize().Engine)
			fmt.Printf("%-14s %10s %10s %7s  %-8s %8s %8s %s\n",
				"benchmark", "cold(s)", "warm(s)", "ratio", "tier", "adopted", "changed", "identical")
		}
		for _, spec := range workload.Suite {
			row, err := harness.RunIncremental(ctx, spec.Name, sc, reps, timeout, cfg)
			if err != nil {
				return exitcode.Failure, err
			}
			rows = append(rows, row)
			coldTotal += row.Cold
			warmTotal += row.Warm
			if !row.Identical {
				gateErr = fmt.Errorf("%s at scale %d: warm results differ from cold", spec.Name, sc)
			}
			if !asJSON {
				fmt.Printf("%-14s %10.3f %10.3f %6.2fx  %-8s %8d %8d %v\n",
					row.Name, row.Cold.Seconds(), row.Warm.Seconds(), row.Ratio(),
					row.Tier, row.Adopted, row.Changed, row.Identical)
			}
		}
		ratio := 0.0
		if coldTotal > 0 {
			ratio = float64(warmTotal) / float64(coldTotal)
		}
		if !asJSON {
			fmt.Printf("%-14s %10.3f %10.3f %6.2fx\n\n", "TOTAL",
				coldTotal.Seconds(), warmTotal.Seconds(), ratio)
		}
		if sc == warmRatioScale && ratio > warmRatioThreshold && gateErr == nil {
			gateErr = fmt.Errorf("warm re-analysis at scale %d cost %.2fx of cold (threshold %.2fx)",
				sc, ratio, warmRatioThreshold)
		}
		byScale[strconv.Itoa(sc)] = rows
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(byScale); err != nil {
			return exitcode.Failure, err
		}
	}
	if gateErr != nil {
		return exitcode.Failure, gateErr
	}
	if !asJSON {
		fmt.Println("incremental ok")
	}
	return exitcode.OK, nil
}

// runPerfDiff re-runs Table 2 at the smallest scale recorded in the seed
// file and compares total FSAM wall time. Per-benchmark times at small
// scales are milliseconds-noisy, so the gate is on the suite total; the
// per-benchmark deltas are printed for diagnosis. Exits 1 when the total
// regresses by more than 25%.
func runPerfDiff(path string, timeout time.Duration, cfg fsam.Config) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return exitcode.Failure, err
	}
	var seed seedFile
	if err := json.Unmarshal(data, &seed); err != nil {
		return exitcode.Failure, fmt.Errorf("%s: %w", path, err)
	}
	if len(seed.Scales) == 0 {
		return exitcode.Failure, fmt.Errorf("%s: no scales recorded", path)
	}
	sc := seed.Scales[0]
	base := seed.Table2[strconv.Itoa(sc)]
	if len(base) == 0 {
		return exitcode.Failure, fmt.Errorf("%s: no table2 rows at scale %d", path, sc)
	}
	rows, err := harness.RunTable2(sc, timeout, cfg)
	if err != nil {
		return exitcode.Failure, err
	}
	baseBy := map[string]time.Duration{}
	var baseTotal time.Duration
	for _, r := range base {
		baseBy[r.Name] = r.FSAMTime
		baseTotal += r.FSAMTime
	}
	var nowTotal time.Duration
	fmt.Printf("perf diff vs %s (scale %d, engine %s)\n", path, sc, cfg.Normalize().Engine)
	fmt.Printf("%-14s %12s %12s %8s\n", "benchmark", "seed(s)", "now(s)", "ratio")
	for _, r := range rows {
		nowTotal += r.FSAMTime
		b, ok := baseBy[r.Name]
		if !ok || b <= 0 {
			fmt.Printf("%-14s %12s %12.3f %8s\n", r.Name, "-", r.FSAMTime.Seconds(), "new")
			continue
		}
		fmt.Printf("%-14s %12.3f %12.3f %7.2fx\n",
			r.Name, b.Seconds(), r.FSAMTime.Seconds(), float64(r.FSAMTime)/float64(b))
	}
	ratio := float64(nowTotal) / float64(baseTotal)
	fmt.Printf("%-14s %12.3f %12.3f %7.2fx (threshold %.2fx)\n",
		"TOTAL", baseTotal.Seconds(), nowTotal.Seconds(), ratio, perfDiffThreshold)
	if ratio > perfDiffThreshold {
		return exitcode.Failure, fmt.Errorf("total wall time regressed %.2fx over seed (threshold %.2fx)", ratio, perfDiffThreshold)
	}
	fmt.Println("perf diff ok")
	return exitcode.OK, nil
}

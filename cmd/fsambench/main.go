// Command fsambench regenerates the paper's evaluation artifacts over the
// synthetic workload suite:
//
//	fsambench -table1              benchmark statistics (Table 1)
//	fsambench -table2              FSAM vs NONSPARSE time/memory (Table 2)
//	fsambench -figure12            ablation slowdowns (Figure 12)
//	fsambench -all                 everything
//	fsambench -table1 -json        Table 1 rows as JSON (machine-readable)
//	fsambench -table2 -json        Table 2 rows as JSON (machine-readable)
//	fsambench -server URL          drive a running fsamd instead: N requests
//	                               per benchmark (-requests), reporting
//	                               client-observed latency percentiles and
//	                               cache hits
//
// Flags -scale and -timeout control workload size and the per-analysis
// budget (the stand-in for the paper's two-hour limit); the budget applies
// to FSAM and NONSPARSE alike, so either analysis can appear as an OOT
// row. -membudget and -steplimit impose the degradation ladder's resource
// budgets on the FSAM runs; a tripped row reports its tier in the
// fsam_precision / fsam_degraded columns rather than failing.
//
// Exit codes: 0 every FSAM row at full precision, 1 a benchmark failed to
// compile or analyze, 2 usage, 3/4 at least one FSAM row degraded (3 if
// the lowest tier reached was thread-oblivious, 4 if Andersen-only).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	fsam "repro"
	"repro/internal/exitcode"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsambench:", err)
		os.Exit(exitcode.Failure)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 (program statistics)")
		table2   = flag.Bool("table2", false, "print Table 2 (time and memory, FSAM vs NonSparse)")
		figure12 = flag.Bool("figure12", false, "print Figure 12 (phase-ablation slowdowns)")
		all      = flag.Bool("all", false, "print every artifact")
		scale    = flag.Int("scale", harness.DefaultScale, "workload scale factor")
		timeout  = flag.Duration("timeout", harness.DefaultTimeout, "per-analysis deadline (stand-in for the paper's 2h)")
		memBud   = flag.Uint64("membudget", 0, "soft heap budget in bytes for each FSAM run, 0 = unlimited")
		stepLim  = flag.Int64("steplimit", 0, "per-phase worklist-pop limit for each FSAM run, 0 = unlimited")
		asJSON   = flag.Bool("json", false, "emit the selected tables as JSON instead of text (alone, implies -table2)")
		srvURL   = flag.String("server", "", "drive a running fsamd at this base URL instead of analyzing in-process")
		requests = flag.Int("requests", 5, "requests per benchmark in -server mode")
	)
	flag.Parse()

	if *srvURL != "" {
		return runServer(*srvURL, *requests, *scale, *timeout, *memBud, *stepLim)
	}
	if *asJSON && !*table1 && !*figure12 && !*all {
		*table2 = true
	}
	if !*table1 && !*table2 && !*figure12 && !*all {
		flag.Usage()
		os.Exit(exitcode.Usage)
	}
	if *all {
		*table1, *table2, *figure12 = true, true, true
	}
	cfg := fsam.Config{MemBudgetBytes: *memBud, StepLimit: *stepLim}

	if *asJSON {
		return emitJSON(*table1, *table2, *scale, *timeout, cfg)
	}

	code := exitcode.OK
	if *table1 {
		harness.PrintTable1(os.Stdout, harness.RunTable1(*scale))
		fmt.Println()
	}
	if *table2 {
		start := time.Now()
		rows, err := harness.RunTable2(*scale, *timeout, cfg)
		if err != nil {
			return exitcode.Failure, err
		}
		code = worstTier(rows)
		harness.PrintTable2(os.Stdout, rows)
		fmt.Printf("(total harness time %.1fs, scale %d, timeout %s)\n\n",
			time.Since(start).Seconds(), *scale, *timeout)
	}
	if *figure12 {
		rows, err := harness.RunFigure12(*scale)
		if err != nil {
			return exitcode.Failure, err
		}
		harness.PrintFigure12(os.Stdout, rows)
	}
	return code, nil
}

// runServer drives a running fsamd: N analyze requests per suite benchmark,
// reporting client-observed latency percentiles (the service-level view —
// queueing, caching, and transport included) alongside how many were served
// from the daemon's cache. The exit code folds the worst served tier, same
// as the in-process harness.
func runServer(baseURL string, requests, scale int, timeout time.Duration, memBud uint64, stepLim int64) (int, error) {
	if requests < 1 {
		requests = 1
	}
	ctx := context.Background()
	c := client.New(baseURL)
	cfg := server.ConfigRequest{MemBudgetBytes: memBud, StepLimit: stepLim}

	fmt.Printf("fsamd at %s: %d request(s) per benchmark, scale %d\n\n", baseURL, requests, scale)
	fmt.Printf("%-14s %8s %6s %6s  %10s %10s %10s  %s\n",
		"benchmark", "requests", "hits", "dedup", "p50", "p90", "p99", "precision")
	code := exitcode.OK
	for _, spec := range workload.Suite {
		samples := make([]time.Duration, 0, requests)
		hits, shared := 0, 0
		tier := ""
		for i := 0; i < requests; i++ {
			areq := server.AnalyzeRequest{Benchmark: spec.Name, Scale: scale, Config: cfg}
			if timeout > 0 {
				areq.DeadlineMS = timeout.Milliseconds()
			}
			t0 := time.Now()
			resp, err := c.Analyze(ctx, areq)
			if err != nil {
				return exitcode.Failure, fmt.Errorf("%s: %w", spec.Name, err)
			}
			samples = append(samples, time.Since(t0))
			if resp.Cached {
				hits++
			}
			if resp.Shared {
				shared++
			}
			tier = resp.Precision
			code = exitcode.Worst(code, resp.ExitCode)
		}
		ps := harness.Percentiles(samples, 0.50, 0.90, 0.99)
		fmt.Printf("%-14s %8d %6d %6d  %10s %10s %10s  %s\n",
			spec.Name, requests, hits, shared,
			ps[0].Round(time.Microsecond), ps[1].Round(time.Microsecond), ps[2].Round(time.Microsecond), tier)
	}
	return code, nil
}

// worstTier folds the FSAM precision column into the exit-code convention.
func worstTier(rows []harness.Table2Row) int {
	code := exitcode.OK
	for _, r := range rows {
		switch r.FSAMPrecision {
		case fsam.PrecisionThreadObliviousFS.String():
			code = exitcode.Worst(code, exitcode.DegradedThreadOblivious)
		case fsam.PrecisionAndersenOnly.String():
			code = exitcode.Worst(code, exitcode.DegradedAndersen)
		}
	}
	return code
}

// emitJSON writes the selected tables as JSON. A single table keeps the
// historical bare-array schema; both tables nest under "table1"/"table2".
func emitJSON(table1, table2 bool, scale int, timeout time.Duration, cfg fsam.Config) (int, error) {
	var payload any
	code := exitcode.OK
	switch {
	case table1 && table2:
		t2, err := harness.RunTable2(scale, timeout, cfg)
		if err != nil {
			return exitcode.Failure, err
		}
		code = worstTier(t2)
		payload = map[string]any{
			"table1": harness.RunTable1(scale),
			"table2": t2,
		}
	case table1:
		payload = harness.RunTable1(scale)
	default:
		t2, err := harness.RunTable2(scale, timeout, cfg)
		if err != nil {
			return exitcode.Failure, err
		}
		code = worstTier(t2)
		payload = t2
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		return exitcode.Failure, err
	}
	return code, nil
}

// Command fsamgw is the fault-tolerant gateway in front of a fleet of
// fsamd replicas. It routes analyze requests by their content address over
// a consistent-hash ring (keeping each replica's result cache hot for its
// share of the keyspace) and absorbs replica faults so clients never see
// them: active /readyz probes, retries with exponential backoff honoring
// Retry-After, per-replica circuit breakers, hedged requests after an
// adaptive p99 delay, and peer cache-fill on miss.
//
// Usage:
//
//	fsamgw -replicas URL[,URL...] [flags]
//
//	-addr ADDR            listen address (default 127.0.0.1:8070; port 0
//	                      picks a free port, reported on stdout)
//	-replicas URLS        comma-separated fsamd base URLs (required)
//	-probe D              health-probe interval (default 1s)
//	-probe-timeout D      per-probe timeout (default 2s)
//	-eject N              consecutive probe failures that eject a replica
//	                      (default 3)
//	-retries N            attempts per replica incl. the first (default 3)
//	-breaker-threshold N  consecutive failures that open a breaker (default 5)
//	-breaker-cooldown D   open period before a half-open probe (default 5s)
//	-hedge D              fixed hedge delay; 0 = adaptive p99 (default 0)
//	-vnodes N             ring points per replica (default 64)
//	-grace D              drain grace period on SIGTERM/SIGINT (default 30s)
//	-quiet                suppress routing logs
//
// The gateway serves the fsamd API surface (POST /v1/analyze, GET
// /v1/pointsto, /v1/races, /v1/leaks, /v1/diagnostics) plus its own
// /healthz, /readyz (503 when no replica can take new work) and /metrics
// (fsamgw_* counters: retries, failovers, hedges, breaker transitions,
// cache hits by source, replica states). Responses carry X-Fsamgw-Replica
// naming the replica that served them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exitcode"
	"repro/internal/gateway"
	"repro/internal/resilience"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsamgw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8070", "listen address (port 0 picks a free port)")
		replicas     = fs.String("replicas", "", "comma-separated fsamd base URLs (required)")
		probe        = fs.Duration("probe", time.Second, "health-probe interval")
		probeTimeout = fs.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		eject        = fs.Int("eject", 3, "consecutive probe failures that eject a replica")
		retries      = fs.Int("retries", 3, "attempts per replica including the first")
		brkThreshold = fs.Int("breaker-threshold", 5, "consecutive failures that open a breaker")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "open period before a half-open probe")
		hedge        = fs.Duration("hedge", 0, "fixed hedge delay (0 = adaptive p99)")
		vnodes       = fs.Int("vnodes", 64, "ring points per replica")
		grace        = fs.Duration("grace", 30*time.Second, "drain grace period on SIGTERM/SIGINT")
		quiet        = fs.Bool("quiet", false, "suppress routing logs")
	)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "fsamgw: unexpected arguments")
		return exitcode.Usage
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "fsamgw: -replicas is required")
		return exitcode.Usage
	}

	logger := log.New(stderr, "fsamgw: ", log.LstdFlags|log.Lmsgprefix)
	gwLog := logger
	if *quiet {
		gwLog = log.New(io.Discard, "", 0)
	}
	gw, err := gateway.New(gateway.Options{
		Replicas:         urls,
		VNodes:           *vnodes,
		ProbeInterval:    *probe,
		ProbeTimeout:     *probeTimeout,
		EjectAfter:       *eject,
		Retry:            resilience.Policy{MaxAttempts: *retries},
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		HedgeAfter:       *hedge,
		Log:              gwLog,
	})
	if err != nil {
		fmt.Fprintln(stderr, "fsamgw:", err)
		return exitcode.Usage
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "fsamgw:", err)
		return exitcode.Failure
	}
	// The bound address goes to stdout (not the log) so scripts using
	// port 0 can scrape it reliably.
	fmt.Fprintf(stdout, "fsamgw: listening on %s (%d replicas)\n", ln.Addr(), len(urls))

	gw.Start()
	defer gw.Stop()

	httpSrv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "fsamgw:", err)
		return exitcode.Failure
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (grace %s)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Printf("grace period expired with requests in flight")
		} else {
			logger.Printf("shutdown: %v", err)
		}
		return exitcode.Failure
	}
	logger.Printf("drained cleanly")
	return exitcode.OK
}

// Command fsamrun executes a MiniC program concretely under seeded thread
// schedules (the validation interpreter) and cross-checks every observed
// load against the FSAM points-to results — the runnable form of the
// artifact's "validate pointer analysis results" micro-benchmarks.
//
// Usage:
//
//	fsamrun [-schedules N] [-fuel N] [-verbose] prog.mc
package main

import (
	"flag"
	"fmt"
	"os"

	fsam "repro"
	"repro/internal/interp"
	"repro/internal/ir"
)

func main() {
	var (
		schedules = flag.Int("schedules", 16, "number of seeded schedules to run")
		fuel      = flag.Int("fuel", 0, "statement budget per run (0 = default)")
		verbose   = flag.Bool("verbose", false, "print every load observation")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsamrun [flags] prog.mc")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	a, err := fsam.AnalyzeSource(flag.Arg(0), string(srcBytes), fsam.Config{})
	if err != nil {
		fatal(err)
	}

	completed, deadlocked, aborted, violations, observations := 0, 0, 0, 0, 0
	for seed := 0; seed < *schedules; seed++ {
		r := interp.Run(a.Prog, int64(seed), *fuel)
		switch {
		case r.Completed:
			completed++
		case r.Deadlocked:
			deadlocked++
		case r.UB:
			aborted++
		}
		for _, obs := range r.Observations {
			observations++
			if obs.Value.Obj == nil {
				continue
			}
			pt := a.Result.PointsToVar(obs.Load.Dst)
			ok := pt.Has(uint32(obs.Value.Obj.ID))
			if *verbose {
				mark := "ok"
				if !ok {
					mark = "VIOLATION"
				}
				fmt.Printf("seed %2d line %3d: [%s] read %-12s %s\n",
					seed, ir.LineOf(obs.Load), obs.Load, obs.Value, mark)
			}
			if !ok {
				violations++
				if !*verbose {
					fmt.Printf("VIOLATION seed %d: load [%s] observed %s outside pt set %s\n",
						seed, obs.Load, obs.Value, pt)
				}
			}
		}
	}

	fmt.Printf("%d schedule(s): %d completed, %d deadlocked, %d aborted on null dereference; %d load observations, %d violation(s)\n",
		*schedules, completed, deadlocked, aborted, observations, violations)
	if violations > 0 {
		os.Exit(1)
	}
	fmt.Println("all concrete observations covered by the FSAM points-to results")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsamrun:", err)
	os.Exit(1)
}

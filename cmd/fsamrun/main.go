// Command fsamrun executes a MiniC program concretely under seeded thread
// schedules (the validation interpreter) and cross-checks every observed
// load against the FSAM points-to results — the runnable form of the
// artifact's "validate pointer analysis results" micro-benchmarks.
//
// Usage:
//
//	fsamrun [-engine NAME] [-memmodel NAME] [-schedules N] [-fuel N] [-membudget N] [-verbose] prog.mc
//
// Every registered engine is sound, so the cross-check applies to all of
// them: a load observation outside the selected engine's points-to set is
// a soundness violation regardless of tier. The interpreter executes
// sequentially-consistent interleavings, which every -memmodel admits, so
// the cross-check is valid for sc, tso and pso alike.
//
// Exit codes: 0 all observations covered at the requested engine's tier,
// 1 hard failure or a coverage violation, 2 usage, 3/4/5/6 the analysis
// degraded (thread-oblivious / Andersen-only / CFG-free / thread-modular)
// so the cross-check ran below the requested tier.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fsam "repro"
	"repro/internal/exitcode"
	"repro/internal/interp"
	"repro/internal/ir"
)

func main() {
	var (
		engine    = flag.String("engine", fsam.DefaultEngine, "analysis engine ("+strings.Join(fsam.Engines(), ", ")+")")
		memModel  = flag.String("memmodel", fsam.DefaultMemModel, "memory consistency model ("+strings.Join(fsam.MemModels(), ", ")+")")
		schedules = flag.Int("schedules", 16, "number of seeded schedules to run")
		fuel      = flag.Int("fuel", 0, "statement budget per run (0 = default)")
		verbose   = flag.Bool("verbose", false, "print every load observation")
		memBud    = flag.Uint64("membudget", 0, "soft heap budget in bytes for the analysis, 0 = unlimited")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsamrun [flags] prog.mc")
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownEngine(*engine) {
		fmt.Fprintf(os.Stderr, "fsamrun: unknown engine %q (known: %s)\n", *engine, strings.Join(fsam.Engines(), ", "))
		os.Exit(exitcode.Usage)
	}
	if !fsam.KnownMemModel(*memModel) {
		fmt.Fprintf(os.Stderr, "fsamrun: unknown memory model %q (known: %s)\n", *memModel, strings.Join(fsam.MemModels(), ", "))
		os.Exit(exitcode.Usage)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	// Normalize keeps the CLI on the same canonical configuration the
	// fsamd cache keys on, so a local run and a served run can't diverge.
	a, err := fsam.AnalyzeSource(flag.Arg(0), string(srcBytes),
		fsam.Config{Engine: *engine, MemModel: *memModel, MemBudgetBytes: *memBud}.Normalize())
	if err != nil {
		fatal(err)
	}
	if a.Stats.Degraded != "" {
		fmt.Fprintf(os.Stderr, "fsamrun: analysis degraded to %s (%s)\n",
			a.Precision, a.Stats.Degraded)
	}

	completed, deadlocked, aborted, violations, observations := 0, 0, 0, 0, 0
	for seed := 0; seed < *schedules; seed++ {
		r := interp.Run(a.Prog, int64(seed), *fuel)
		switch {
		case r.Completed:
			completed++
		case r.Deadlocked:
			deadlocked++
		case r.UB:
			aborted++
		}
		for _, obs := range r.Observations {
			observations++
			if obs.Value.Obj == nil {
				continue
			}
			pt := a.PointsToVar(obs.Load.Dst)
			ok := pt.Has(uint32(obs.Value.Obj.ID))
			if *verbose {
				mark := "ok"
				if !ok {
					mark = "VIOLATION"
				}
				fmt.Printf("seed %2d line %3d: [%s] read %-12s %s\n",
					seed, ir.LineOf(obs.Load), obs.Load, obs.Value, mark)
			}
			if !ok {
				violations++
				if !*verbose {
					fmt.Printf("VIOLATION seed %d: load [%s] observed %s outside pt set %s\n",
						seed, obs.Load, obs.Value, pt)
				}
			}
		}
	}

	fmt.Printf("%d schedule(s): %d completed, %d deadlocked, %d aborted on null dereference; %d load observations, %d violation(s)\n",
		*schedules, completed, deadlocked, aborted, observations, violations)
	if violations > 0 {
		os.Exit(exitcode.Failure)
	}
	fmt.Printf("all concrete observations covered by the %s points-to results\n", a.Engine)
	os.Exit(exitcode.ForAnalysis(a))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsamrun:", err)
	os.Exit(exitcode.Failure)
}

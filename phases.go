package fsam

// The phase vocabulary lives in internal/solver (shared by the registered
// engine backends); the facade names slots and phases directly as
// solver.SlotX / solver.PhaseX. This file keeps the manager construction
// with its test fault-injection seam.

import (
	"repro/internal/pipeline"
)

// testPhaseWrap, when non-nil, wraps every phase before scheduling. It is
// the fault-injection seam for the degradation-ladder tests (installed via
// export_test.go) and is nil outside test binaries.
var testPhaseWrap func(pipeline.Phase) pipeline.Phase

// newManager builds a Manager over phases, honoring cfg.Sequential and the
// test fault-injection hook. engineName labels the run for phase-error
// attribution (PhaseError.Engine).
func newManager(cfg Config, engineName string, phases []pipeline.Phase) (*pipeline.Manager, error) {
	if testPhaseWrap != nil {
		wrapped := make([]pipeline.Phase, len(phases))
		for i, p := range phases {
			wrapped[i] = testPhaseWrap(p)
		}
		phases = wrapped
	}
	m, err := pipeline.NewManager(phases...)
	if err != nil {
		return nil, err
	}
	m.Sequential = cfg.Sequential
	m.Engine = engineName
	return m, nil
}

// prunePhases drops phases whose every provided slot is already populated
// in st — the degradation ladder's way of not re-running the pre-analysis
// or thread model a failed tier already completed.
func prunePhases(phases []pipeline.Phase, st *pipeline.State) []pipeline.Phase {
	var out []pipeline.Phase
	for _, p := range phases {
		done := len(p.Provides) > 0
		for _, slot := range p.Provides {
			if v, ok := st.Value(slot); !ok || v == nil {
				done = false
				break
			}
		}
		if !done {
			out = append(out, p)
		}
	}
	return out
}

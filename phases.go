package fsam

// The FSAM and NONSPARSE pipelines as phase DAGs over the pass manager
// (internal/pipeline). Each phase declares the State slots it consumes and
// produces; the manager derives the dependency DAG, runs independent
// phases concurrently (the interleaving and lock analyses both consume
// only the thread model, so they overlap), enforces the per-run context
// deadline, and records per-phase wall time and bytes — the facade's
// Stats.Times are read off the manager's Report, not inline stopwatches.

import (
	"context"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/threads"
	"repro/internal/vfg"
)

// State slot names shared by the FSAM and NONSPARSE phase DAGs.
const (
	slotProg       = "prog"     // *ir.Program
	slotBase       = "base"     // *pipeline.Base (Model nil until threadmodel)
	slotModel      = "model"    // *threads.Model
	slotMHP        = "mhp"      // *mhp.Result
	slotPCG        = "pcg"      // *pcg.Result
	slotLocks      = "locks"    // *locks.Result
	slotVFG        = "vfg"      // *vfg.Graph
	slotResult     = "result"   // *core.Result
	slotNSResult   = "nsresult" // *nonsparse.Result
	phaseCompile   = "compile"
	phasePre       = "preanalysis"
	phaseModel     = "threadmodel"
	phaseIL        = "interleave"
	phaseLocks     = "locks"
	phaseDefUse    = "defuse"
	phaseSparse    = "sparse"
	phaseNonSparse = "nonsparse"
)

// compilePhase parses and lowers source into the prog slot. Having it on
// the manager means compile time is measured directly rather than derived
// by subtracting the other phases from a wall clock.
func compilePhase(name, src string) pipeline.Phase {
	return pipeline.Phase{
		Name:     phaseCompile,
		Provides: []string{slotProg},
		Run: func(ctx context.Context, st *pipeline.State) error {
			prog, err := pipeline.Compile(name, src)
			if err != nil {
				return err
			}
			st.Put(slotProg, prog)
			return nil
		},
	}
}

// preAnalysisPhase runs Andersen + call graph + ICFG + context table.
func preAnalysisPhase(ctxDepth int) pipeline.Phase {
	return pipeline.Phase{
		Name:     phasePre,
		Needs:    []string{slotProg},
		Provides: []string{slotBase},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base, err := pipeline.BuildPre(ctx, pipeline.Get[*ir.Program](st, slotProg), ctxDepth)
			if err != nil {
				return err
			}
			st.Put(slotBase, base)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*pipeline.Base](st, slotBase).Pre.Bytes()
		},
	}
}

// threadModelPhase builds the static thread model.
func threadModelPhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     phaseModel,
		Needs:    []string{slotBase},
		Provides: []string{slotModel},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base := pipeline.Get[*pipeline.Base](st, slotBase)
			base.BuildThreadModel()
			st.Put(slotModel, base.Model)
			return nil
		},
	}
}

// interleavePhase runs the precise interleaving analysis (or the coarse
// PCG under NoInterleaving). Independent of the lock phase by
// construction: both consume only the thread model.
func interleavePhase(noInterleaving bool) pipeline.Phase {
	provides := slotMHP
	if noInterleaving {
		provides = slotPCG
	}
	return pipeline.Phase{
		Name:     phaseIL,
		Needs:    []string{slotModel},
		Provides: []string{provides},
		Run: func(ctx context.Context, st *pipeline.State) error {
			model := pipeline.Get[*threads.Model](st, slotModel)
			if noInterleaving {
				st.Put(slotPCG, pcg.Analyze(model))
				return nil
			}
			il, err := mhp.AnalyzeCtx(ctx, model)
			if err != nil {
				return err
			}
			st.Put(slotMHP, il)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			if noInterleaving {
				return pipeline.Get[*pcg.Result](st, slotPCG).Bytes()
			}
			return pipeline.Get[*mhp.Result](st, slotMHP).Bytes()
		},
	}
}

// locksPhase discovers lock-release spans.
func locksPhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     phaseLocks,
		Needs:    []string{slotModel},
		Provides: []string{slotLocks},
		Run: func(ctx context.Context, st *pipeline.State) error {
			st.Put(slotLocks, locks.Analyze(pipeline.Get[*threads.Model](st, slotModel)))
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*locks.Result](st, slotLocks).Bytes()
		},
	}
}

// defUsePhase builds the thread-oblivious + thread-aware def-use graph.
func defUsePhase(cfg Config) pipeline.Phase {
	needs := []string{slotModel}
	if cfg.NoInterleaving {
		needs = append(needs, slotPCG)
	} else {
		needs = append(needs, slotMHP)
	}
	if !cfg.NoLock {
		needs = append(needs, slotLocks)
	}
	return pipeline.Phase{
		Name:     phaseDefUse,
		Needs:    needs,
		Provides: []string{slotVFG},
		Run: func(ctx context.Context, st *pipeline.State) error {
			g, err := vfg.BuildCtx(ctx, pipeline.Get[*threads.Model](st, slotModel), vfg.Options{
				Interleave:  pipeline.Get[*mhp.Result](st, slotMHP),
				PCG:         pipeline.Get[*pcg.Result](st, slotPCG),
				Locks:       pipeline.Get[*locks.Result](st, slotLocks),
				NoValueFlow: cfg.NoValueFlow,
			})
			if err != nil {
				return err
			}
			st.Put(slotVFG, g)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*vfg.Graph](st, slotVFG).Bytes()
		},
	}
}

// obliviousDefUsePhase builds the def-use graph in thread-oblivious mode
// (sequential memory SSA plus fork-bypass/join edges, no [THREAD-VF]).
// It is the degradation ladder's middle tier: it consumes only the thread
// model, so it can run after the interference analyses failed.
func obliviousDefUsePhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     phaseDefUse,
		Needs:    []string{slotModel},
		Provides: []string{slotVFG},
		Run: func(ctx context.Context, st *pipeline.State) error {
			g, err := vfg.BuildCtx(ctx, pipeline.Get[*threads.Model](st, slotModel),
				vfg.Options{ThreadOblivious: true})
			if err != nil {
				return err
			}
			st.Put(slotVFG, g)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*vfg.Graph](st, slotVFG).Bytes()
		},
	}
}

// sparsePhase runs the sparse flow-sensitive solve.
func sparsePhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     phaseSparse,
		Needs:    []string{slotModel, slotVFG},
		Provides: []string{slotResult},
		Run: func(ctx context.Context, st *pipeline.State) error {
			res, err := core.SolveCtx(ctx,
				pipeline.Get[*threads.Model](st, slotModel),
				pipeline.Get[*vfg.Graph](st, slotVFG))
			if err != nil {
				return err
			}
			st.Put(slotResult, res)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			// Result.Bytes includes the def-use graph, which the defuse
			// phase already accounts for.
			res := pipeline.Get[*core.Result](st, slotResult)
			return res.Bytes() - pipeline.Get[*vfg.Graph](st, slotVFG).Bytes()
		},
	}
}

// fsamPhases assembles the FSAM DAG for cfg; withCompile prepends the
// compile phase (the AnalyzeSource path), otherwise the prog slot must be
// seeded.
func fsamPhases(cfg Config, name, src string, withCompile bool) []pipeline.Phase {
	var ps []pipeline.Phase
	if withCompile {
		ps = append(ps, compilePhase(name, src))
	}
	ps = append(ps, preAnalysisPhase(cfg.CtxDepth), threadModelPhase(),
		interleavePhase(cfg.NoInterleaving))
	if !cfg.NoLock {
		ps = append(ps, locksPhase())
	}
	ps = append(ps, defUsePhase(cfg), sparsePhase())
	return ps
}

// testPhaseWrap, when non-nil, wraps every phase before scheduling. It is
// the fault-injection seam for the degradation-ladder tests (installed via
// export_test.go) and is nil outside test binaries.
var testPhaseWrap func(pipeline.Phase) pipeline.Phase

// newManager builds a Manager over phases, honoring cfg.Sequential and
// the test fault-injection hook.
func newManager(cfg Config, phases []pipeline.Phase) (*pipeline.Manager, error) {
	if testPhaseWrap != nil {
		wrapped := make([]pipeline.Phase, len(phases))
		for i, p := range phases {
			wrapped[i] = testPhaseWrap(p)
		}
		phases = wrapped
	}
	m, err := pipeline.NewManager(phases...)
	if err != nil {
		return nil, err
	}
	m.Sequential = cfg.Sequential
	return m, nil
}

package fsam

// The phase vocabulary lives in internal/solver (shared by the registered
// engine backends); this file keeps the facade-local aliases and the
// manager construction with its test fault-injection seam.

import (
	"repro/internal/pipeline"
	"repro/internal/solver"
)

// State slot and phase names, aliased from the solver package for the
// facade's internal use.
const (
	slotProg     = solver.SlotProg
	slotBase     = solver.SlotBase
	slotModel    = solver.SlotModel
	slotMHP      = solver.SlotMHP
	slotPCG      = solver.SlotPCG
	slotLocks    = solver.SlotLocks
	slotVFG      = solver.SlotVFG
	slotResult   = solver.SlotResult
	slotNSResult = solver.SlotNSResult
	slotCFGFree  = solver.SlotCFGFree

	phaseCompile   = solver.PhaseCompile
	phasePre       = solver.PhasePre
	phaseModel     = solver.PhaseModel
	phaseIL        = solver.PhaseIL
	phaseLocks     = solver.PhaseLocks
	phaseDefUse    = solver.PhaseDefUse
	phaseSparse    = solver.PhaseSparse
	phaseNonSparse = solver.PhaseNonSparse
	phaseCFGFree   = solver.PhaseCFGFree
)

// testPhaseWrap, when non-nil, wraps every phase before scheduling. It is
// the fault-injection seam for the degradation-ladder tests (installed via
// export_test.go) and is nil outside test binaries.
var testPhaseWrap func(pipeline.Phase) pipeline.Phase

// newManager builds a Manager over phases, honoring cfg.Sequential and the
// test fault-injection hook. engineName labels the run for phase-error
// attribution (PhaseError.Engine).
func newManager(cfg Config, engineName string, phases []pipeline.Phase) (*pipeline.Manager, error) {
	if testPhaseWrap != nil {
		wrapped := make([]pipeline.Phase, len(phases))
		for i, p := range phases {
			wrapped[i] = testPhaseWrap(p)
		}
		phases = wrapped
	}
	m, err := pipeline.NewManager(phases...)
	if err != nil {
		return nil, err
	}
	m.Sequential = cfg.Sequential
	m.Engine = engineName
	return m, nil
}

// prunePhases drops phases whose every provided slot is already populated
// in st — the degradation ladder's way of not re-running the pre-analysis
// or thread model a failed tier already completed.
func prunePhases(phases []pipeline.Phase, st *pipeline.State) []pipeline.Phase {
	var out []pipeline.Phase
	for _, p := range phases {
		done := len(p.Provides) > 0
		for _, slot := range p.Provides {
			if v, ok := st.Value(slot); !ok || v == nil {
				done = false
				break
			}
		}
		if !done {
			out = append(out, p)
		}
	}
	return out
}

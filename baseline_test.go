package fsam_test

import (
	"testing"
	"time"

	fsam "repro"
)

const baselineProg = `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) { *p = q; }
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	join(t);
	return 0;
}
`

func TestBaselineSoundOnFig1a(t *testing.T) {
	b, err := fsam.AnalyzeSourceNonSparse("t.mc", baselineProg, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if b.OOT {
		t.Fatal("OOT on a tiny program")
	}
	got, err := b.PointsToGlobal("c")
	if err != nil {
		t.Fatal(err)
	}
	has := map[string]bool{}
	for _, n := range got {
		has[n] = true
	}
	if !has["y"] || !has["z"] {
		t.Errorf("baseline pt(c) = %v, want y and z", got)
	}
}

func TestBaselineStats(t *testing.T) {
	b, err := fsam.AnalyzeSourceNonSparse("t.mc", baselineProg, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.Stmts == 0 || b.Stats.Threads != 2 || b.Stats.Iterations == 0 || b.Stats.Bytes == 0 {
		t.Errorf("stats not populated: %+v", b.Stats)
	}
}

func TestBaselineUnknownGlobal(t *testing.T) {
	b, err := fsam.AnalyzeSourceNonSparse("t.mc", baselineProg, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PointsToGlobal("nosuch"); err == nil {
		t.Error("expected error for unknown global")
	}
}

func TestBaselineParseError(t *testing.T) {
	if _, err := fsam.AnalyzeSourceNonSparse("bad.mc", "int main( {", time.Minute); err == nil {
		t.Error("expected parse error")
	}
}

func TestFacadeParseError(t *testing.T) {
	if _, err := fsam.AnalyzeSource("bad.mc", "not a program", fsam.Config{}); err == nil {
		t.Error("expected parse error")
	}
}

func TestFacadeUnknownGlobal(t *testing.T) {
	a, err := fsam.AnalyzeSource("t.mc", "int main() { return 0; }", fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.PointsToGlobal("missing"); err == nil {
		t.Error("expected error for unknown global")
	}
	if _, err := a.PointsToGlobalAnywhere("missing"); err == nil {
		t.Error("expected error for unknown global (anywhere)")
	}
	if _, err := a.AndersenPointsToGlobal("missing"); err == nil {
		t.Error("expected error for unknown global (andersen)")
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	a, err := fsam.AnalyzeSource("t.mc", baselineProg, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Times.Total() <= 0 {
		t.Error("phase times must be positive")
	}
	if a.Stats.Times.PreAnalysis <= 0 {
		t.Error("pre-analysis time missing")
	}
}

func TestAblationConfigsProduceResults(t *testing.T) {
	for _, cfg := range []fsam.Config{
		{NoInterleaving: true},
		{NoValueFlow: true},
		{NoLock: true},
		{NoInterleaving: true, NoValueFlow: true, NoLock: true},
		{CtxDepth: 2},
	} {
		a, err := fsam.AnalyzeSource("t.mc", baselineProg, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got, err := a.PointsToGlobal("c")
		if err != nil {
			t.Fatal(err)
		}
		// Every ablation must still include the sound answer {y, z}.
		has := map[string]bool{}
		for _, n := range got {
			has[n] = true
		}
		if !has["y"] || !has["z"] {
			t.Errorf("%+v: pt(c) = %v, want ⊇ {y,z}", cfg, got)
		}
	}
}

package fsam_test

import (
	"sync"
	"testing"

	fsam "repro"
	"repro/internal/ir"
	"repro/internal/workload"
)

// TestAnalysisConcurrentReaders hammers one completed Analysis from many
// goroutines, the access pattern of the fsamd service: a cached Analysis is
// shared by every request that hits it, so all query methods must be safe
// for concurrent readers. radiosity exercises the lock analysis (the
// Span.Head/Tail memoization) and the race/leak/deadlock clients behind
// their sync.Once memos; run under -race this test is the guard.
func TestAnalysisConcurrentReaders(t *testing.T) {
	src, err := workload.Generate("radiosity", 1)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	a, err := fsam.AnalyzeSource("radiosity.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.Precision != fsam.PrecisionSparseFS {
		t.Fatalf("precision = %s, want sparse-fs", a.Precision)
	}

	var globals []string
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal {
			globals = append(globals, o.Name)
		}
	}
	if len(globals) == 0 {
		t.Fatal("no globals in workload")
	}

	const readers = 8
	const rounds = 4
	var wg sync.WaitGroup

	// First-call results, to compare against what concurrent readers see:
	// memoized clients must hand every caller the same reports.
	wantRaces, err := a.Races()
	if err != nil {
		t.Fatalf("races: %v", err)
	}
	wantLeaks := a.Leaks()

	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, name := range globals {
					if _, err := a.PointsToGlobal(name); err != nil {
						errs <- err
						return
					}
					if _, err := a.PointsToGlobalAnywhere(name); err != nil {
						errs <- err
						return
					}
					if _, err := a.AndersenPointsToGlobal(name); err != nil {
						errs <- err
						return
					}
				}
				races, err := a.Races()
				if err != nil {
					errs <- err
					return
				}
				if len(races) != len(wantRaces) {
					t.Errorf("reader %d: %d races, want %d", g, len(races), len(wantRaces))
					return
				}
				if got := a.Leaks(); len(got) != len(wantLeaks) {
					t.Errorf("reader %d: %d leaks, want %d", g, len(got), len(wantLeaks))
					return
				}
				a.LeakAudit()
				if _, err := a.Deadlocks(); err != nil {
					errs <- err
					return
				}
				_ = a.Stats.Times.Total()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent reader: %v", err)
	}
}

// TestConfigNormalize pins the canonicalization contract shared by the
// CLIs and the service cache key.
func TestConfigNormalize(t *testing.T) {
	zero := fsam.Config{}.Normalize()
	if zero.CtxDepth <= 0 {
		t.Fatalf("Normalize left CtxDepth=%d", zero.CtxDepth)
	}
	explicit := fsam.Config{CtxDepth: zero.CtxDepth, StepLimit: -5}.Normalize()
	if explicit.StepLimit != 0 {
		t.Fatalf("Normalize left StepLimit=%d", explicit.StepLimit)
	}
	if (fsam.Config{}).Canonical() != explicit.Canonical() {
		t.Fatalf("default and explicit-default configs render differently:\n%s\n%s",
			(fsam.Config{}).Canonical(), explicit.Canonical())
	}
	if (fsam.Config{}).Canonical() == (fsam.Config{NoLock: true}).Canonical() {
		t.Fatal("distinct configs share a canonical key")
	}
}

package fsam

import (
	"repro/internal/pipeline"
	"repro/internal/solver"
)

// SetTestPhaseWrap installs (or, with nil, removes) a wrapper applied to
// every pipeline phase before scheduling — including the degradation
// ladder's fallback phases. Fault-containment tests use it to inject
// panics, budget trips, and deadline stalls into specific phases by name.
func SetTestPhaseWrap(f func(pipeline.Phase) pipeline.Phase) { testPhaseWrap = f }

// Phase names re-exported for the fault-injection tests.
const (
	PhaseSparse  = solver.PhaseSparse
	PhaseDefUse  = solver.PhaseDefUse
	PhaseIL      = solver.PhaseIL
	PhaseCFGFree = solver.PhaseCFGFree
	PhaseTmod    = solver.PhaseTmod
)

package fsam

import "repro/internal/pipeline"

// SetTestPhaseWrap installs (or, with nil, removes) a wrapper applied to
// every pipeline phase before scheduling — including the degradation
// ladder's fallback phases. Fault-containment tests use it to inject
// panics, budget trips, and deadline stalls into specific phases by name.
func SetTestPhaseWrap(f func(pipeline.Phase) pipeline.Phase) { testPhaseWrap = f }

// Phase names re-exported for the fault-injection tests.
const (
	PhaseSparse  = phaseSparse
	PhaseDefUse  = phaseDefUse
	PhaseIL      = phaseIL
	PhaseCFGFree = phaseCFGFree
)

// Package facts is the per-function fact layer behind the incremental
// analysis path: every function of a submitted program gets a content
// address (a hash of its positioned-stripped AST body plus the signatures
// of everything it calls or spawns), per-function fact records are kept in
// a bounded LRU store with hit/miss/invalidation counters, and a Snapshot
// — the ordered key table of one whole program — is what two submissions
// are diffed through to decide which facts can be adopted wholesale and
// which functions' interference facts must be recomputed.
//
// The keying scheme is deliberately position-free: whitespace, comments
// and line renumbering caused by edits elsewhere in the file do not change
// a function's key, so a one-function edit invalidates exactly that
// function (plus, via the caller/callee closure computed by the facade,
// the functions whose interference facts depend on it).
package facts

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/frontend/ast"
)

// Record is the per-function fact record the store holds. Shape counters
// are filled in by the producers that ran when the record's function was
// last analyzed (zero when the producing phase did not run, e.g. below the
// def-use tier).
type Record struct {
	// Key is the function's content address.
	Key string
	// Name is the function's name (diagnostic; keys already separate
	// same-named functions from different programs by content).
	Name string
	// Callees lists the functions this one calls, spawns or joins
	// syntactically, by name, sorted. The facade widens them to the
	// semantic (function-pointer) call graph when computing impact sets.
	Callees []string

	// Producer-filled shape counters: IR statements lowered from this
	// function, memory-SSA definition nodes owned by it, and
	// thread-oblivious def-use edges created while renaming it.
	IRStmts      int
	MemDefs      int
	ObliviousOut int
}

// Snapshot is the ordered per-function key table of one program under one
// configuration, plus the program-level content address derived from it.
type Snapshot struct {
	// ProgKey is the program-level content address: the configuration's
	// canonical rendering, the globals/structs table, and every function
	// key in declaration order. Two sources with equal ProgKey analyze
	// identically (modulo diagnostics positions, which are re-derived).
	ProgKey string
	// Funcs holds one record per defined function, in declaration order.
	Funcs []*Record
	// ByName indexes Funcs.
	ByName map[string]*Record
}

// SnapshotFile computes the per-function key table of a parsed file.
// cfgCanonical is the configuration's canonical rendering (it salts every
// key: facts computed under one engine or ablation are never adopted by
// another).
func SnapshotFile(cfgCanonical string, f *ast.File) *Snapshot {
	snap := &Snapshot{ByName: map[string]*Record{}}

	// Signatures of every defined function, for callee salting.
	sigs := map[string]string{}
	for _, fd := range f.Funcs {
		if fd.Body == nil {
			continue
		}
		sigs[fd.Name] = fd.Name + ":" + fd.Signature().String()
	}

	// Rendering goes through plain buffers and each key is hashed with one
	// Write: feeding sha256 (and fmt) hundreds of 2-10 byte chunks per
	// function was measurable on the warm re-analysis path, where
	// snapshotting is pure overhead over the adopted facts.
	var prog, fbuf bytes.Buffer
	prog.WriteString("cfg|")
	prog.WriteString(cfgCanonical)
	prog.WriteByte('\n')
	for _, sd := range f.Structs {
		prog.WriteString("struct|")
		prog.WriteString(sd.Name)
		if sd.Type != nil {
			for _, fl := range sd.Type.Fields {
				prog.WriteByte('|')
				prog.WriteString(fl.Name)
				prog.WriteByte(':')
				prog.WriteString(typeString(fl.Type))
			}
		}
		prog.WriteByte('\n')
	}
	for _, g := range f.Globals {
		prog.WriteString("global|")
		prog.WriteString(g.Name)
		prog.WriteByte('|')
		prog.WriteString(typeString(g.Type))
		prog.WriteByte('|')
		if g.Init != nil {
			writeExpr(&prog, g.Init)
		}
		prog.WriteByte('\n')
	}

	for _, fd := range f.Funcs {
		if fd.Body == nil {
			continue
		}
		rec := funcRecord(cfgCanonical, fd, sigs, &fbuf)
		snap.Funcs = append(snap.Funcs, rec)
		snap.ByName[rec.Name] = rec
		prog.WriteString("func|")
		prog.WriteString(rec.Name)
		prog.WriteByte('|')
		prog.WriteString(rec.Key)
		prog.WriteByte('\n')
	}
	snap.ProgKey = shortHash(prog.Bytes())
	return snap
}

// shortHash is the content-address form used for every key: the first 16
// hex digits of the sha256 of one rendered buffer.
func shortHash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// funcRecord computes one function's content address: its own rendered
// body (no positions) plus the signatures of its syntactic callees, so a
// signature change in a callee invalidates the caller too.
func funcRecord(cfgCanonical string, fd *ast.FuncDecl, sigs map[string]string, buf *bytes.Buffer) *Record {
	buf.Reset()
	buf.WriteString("cfg|")
	buf.WriteString(cfgCanonical)
	buf.WriteString("\nfunc|")
	buf.WriteString(fd.Name)
	buf.WriteByte('|')
	for _, p := range fd.Params {
		buf.WriteString(p.Name)
		buf.WriteByte(':')
		buf.WriteString(typeString(p.Type))
		buf.WriteByte(',')
	}
	buf.WriteByte('|')
	buf.WriteString(typeString(fd.Ret))
	buf.WriteByte('\n')
	writeStmt(buf, fd.Body)

	callees := calleeNames(fd.Body)
	for _, c := range callees {
		buf.WriteString("callee|")
		if sig, ok := sigs[c]; ok {
			buf.WriteString(sig)
			buf.WriteByte('\n')
		} else {
			buf.WriteString(c)
			buf.WriteString(":undeclared\n")
		}
	}
	return &Record{
		Key:     shortHash(buf.Bytes()),
		Name:    fd.Name,
		Callees: callees,
	}
}

// calleeNames collects the sorted, deduplicated names called or spawned
// from a statement tree.
func calleeNames(s ast.Stmt) []string {
	set := map[string]bool{}
	var visitExpr func(e ast.Expr)
	visitExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				set[id.Name] = true
			} else {
				visitExpr(e.Fun)
			}
			for _, a := range e.Args {
				visitExpr(a)
			}
		case *ast.SpawnExpr:
			if id, ok := e.Routine.(*ast.Ident); ok {
				set[id.Name] = true
			} else {
				visitExpr(e.Routine)
			}
			if e.Arg != nil {
				visitExpr(e.Arg)
			}
		case *ast.Unary:
			visitExpr(e.X)
		case *ast.Binary:
			visitExpr(e.X)
			visitExpr(e.Y)
		case *ast.Index:
			visitExpr(e.X)
			visitExpr(e.I)
		case *ast.FieldSel:
			visitExpr(e.X)
		}
	}
	var visitStmt func(s ast.Stmt)
	visitStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.DeclStmt:
			if s.Decl.Init != nil {
				visitExpr(s.Decl.Init)
			}
		case *ast.AssignStmt:
			visitExpr(s.LHS)
			visitExpr(s.RHS)
		case *ast.ExprStmt:
			visitExpr(s.X)
		case *ast.IfStmt:
			visitExpr(s.Cond)
			visitStmt(s.Then)
			visitStmt(s.Else)
		case *ast.WhileStmt:
			visitExpr(s.Cond)
			visitStmt(s.Body)
		case *ast.ForStmt:
			visitStmt(s.Init)
			if s.Cond != nil {
				visitExpr(s.Cond)
			}
			visitStmt(s.Post)
			visitStmt(s.Body)
		case *ast.ReturnStmt:
			if s.X != nil {
				visitExpr(s.X)
			}
		case *ast.BlockStmt:
			for _, st := range s.Stmts {
				visitStmt(st)
			}
		case *ast.FreeStmt:
			visitExpr(s.X)
		case *ast.JoinStmt:
			visitExpr(s.Handle)
		case *ast.LockStmt:
			visitExpr(s.Ptr)
		case *ast.UnlockStmt:
			visitExpr(s.Ptr)
		}
	}
	visitStmt(s)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// writeStmt renders a statement tree into b with no position information.
func writeStmt(b *bytes.Buffer, s ast.Stmt) {
	switch s := s.(type) {
	case nil:
		b.WriteString("nil;")
	case *ast.DeclStmt:
		b.WriteString("decl ")
		b.WriteString(typeString(s.Decl.Type))
		b.WriteByte(' ')
		b.WriteString(s.Decl.Name)
		if s.Decl.Init != nil {
			b.WriteByte('=')
			writeExpr(b, s.Decl.Init)
		}
		b.WriteByte(';')
	case *ast.AssignStmt:
		writeExpr(b, s.LHS)
		b.WriteByte('=')
		writeExpr(b, s.RHS)
		b.WriteByte(';')
	case *ast.ExprStmt:
		writeExpr(b, s.X)
		b.WriteByte(';')
	case *ast.IfStmt:
		b.WriteString("if(")
		writeExpr(b, s.Cond)
		b.WriteByte(')')
		writeStmt(b, s.Then)
		if s.Else != nil {
			b.WriteString("else")
			writeStmt(b, s.Else)
		}
	case *ast.WhileStmt:
		b.WriteString("while(")
		writeExpr(b, s.Cond)
		b.WriteByte(')')
		writeStmt(b, s.Body)
	case *ast.ForStmt:
		b.WriteString("for(")
		writeStmt(b, s.Init)
		if s.Cond != nil {
			writeExpr(b, s.Cond)
		}
		b.WriteByte(';')
		writeStmt(b, s.Post)
		b.WriteByte(')')
		writeStmt(b, s.Body)
	case *ast.ReturnStmt:
		b.WriteString("return")
		if s.X != nil {
			b.WriteByte(' ')
			writeExpr(b, s.X)
		}
		b.WriteByte(';')
	case *ast.BreakStmt:
		b.WriteString("break;")
	case *ast.ContinueStmt:
		b.WriteString("continue;")
	case *ast.BlockStmt:
		b.WriteByte('{')
		for _, st := range s.Stmts {
			writeStmt(b, st)
		}
		b.WriteByte('}')
	case *ast.FreeStmt:
		b.WriteString("free(")
		writeExpr(b, s.X)
		b.WriteString(");")
	case *ast.JoinStmt:
		b.WriteString("join(")
		writeExpr(b, s.Handle)
		b.WriteString(");")
	case *ast.LockStmt:
		b.WriteString("lock(")
		writeExpr(b, s.Ptr)
		b.WriteString(");")
	case *ast.UnlockStmt:
		b.WriteString("unlock(")
		writeExpr(b, s.Ptr)
		b.WriteString(");")
	default:
		fmt.Fprintf(b, "stmt<%T>;", s)
	}
}

// writeExpr renders an expression tree into b with no position information.
func writeExpr(b *bytes.Buffer, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString("id:")
		b.WriteString(e.Name)
	case *ast.IntLit:
		b.WriteString("int:")
		writeInt(b, int64(e.Value))
	case *ast.StringLit:
		b.WriteString("str:")
		b.WriteString(strconv.Quote(e.Value))
	case *ast.NullLit:
		b.WriteString("null")
	case *ast.Unary:
		b.WriteByte('u')
		writeInt(b, int64(e.Op))
		b.WriteByte('(')
		writeExpr(b, e.X)
		b.WriteByte(')')
	case *ast.Binary:
		b.WriteByte('b')
		writeInt(b, int64(e.Op))
		b.WriteByte('(')
		writeExpr(b, e.X)
		b.WriteByte(',')
		writeExpr(b, e.Y)
		b.WriteByte(')')
	case *ast.Index:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.I)
		b.WriteByte(']')
	case *ast.FieldSel:
		writeExpr(b, e.X)
		if e.Arrow {
			b.WriteString("->")
		} else {
			b.WriteByte('.')
		}
		b.WriteString(e.Name)
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *ast.MallocExpr:
		b.WriteString("malloc()")
	case *ast.SpawnExpr:
		b.WriteString("spawn(")
		writeExpr(b, e.Routine)
		if e.Arg != nil {
			b.WriteByte(',')
			writeExpr(b, e.Arg)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "expr<%T>", e)
	}
}

// writeInt appends v in decimal without going through fmt.
func writeInt(b *bytes.Buffer, v int64) {
	var tmp [20]byte
	b.Write(strconv.AppendInt(tmp[:0], v, 10))
}

func typeString(t fmt.Stringer) string {
	if t == nil {
		return "void"
	}
	return t.String()
}

// Diff classifies the functions of next against base.
type Diff struct {
	// Changed lists functions of next whose key differs from base's record
	// of the same name, or which base did not have at all.
	Changed []string
	// Removed lists functions base had and next does not.
	Removed []string
	// Same lists functions whose key is unchanged.
	Same []string
}

// Diff compares two snapshots function by function.
func (base *Snapshot) Diff(next *Snapshot) Diff {
	var d Diff
	for _, rec := range next.Funcs {
		if b, ok := base.ByName[rec.Name]; ok && b.Key == rec.Key {
			d.Same = append(d.Same, rec.Name)
		} else {
			d.Changed = append(d.Changed, rec.Name)
		}
	}
	for _, rec := range base.Funcs {
		if _, ok := next.ByName[rec.Name]; !ok {
			d.Removed = append(d.Removed, rec.Name)
		}
	}
	return d
}

// Counters is a point-in-time snapshot of a store's statistics.
type Counters struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Evictions     uint64
	Entries       int
}

// Sub returns c - prev, for per-run deltas over a shared store.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Hits:          c.Hits - prev.Hits,
		Misses:        c.Misses - prev.Misses,
		Invalidations: c.Invalidations - prev.Invalidations,
		Evictions:     c.Evictions - prev.Evictions,
		Entries:       c.Entries,
	}
}

// HitRatio returns Hits / (Hits + Misses), 0 when no lookups happened.
func (c Counters) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// String renders the counters in the X-Fsamd-Facts header format.
func (c Counters) String() string {
	return fmt.Sprintf("hits=%d misses=%d invalidations=%d evictions=%d entries=%d",
		c.Hits, c.Misses, c.Invalidations, c.Evictions, c.Entries)
}

// Store is a bounded LRU of per-function fact records, safe for concurrent
// use. Lookups count hits and misses; Invalidate counts invalidations;
// inserts beyond capacity evict the least-recently-used record.
type Store struct {
	mu  sync.Mutex
	cap int
	m   map[string]*storeEntry
	// head is most-recently-used, tail least. Intrusive doubly-linked list
	// to avoid container/list's interface boxing.
	head, tail *storeEntry

	hits, misses, invalidations, evictions uint64
}

type storeEntry struct {
	rec        *Record
	prev, next *storeEntry
}

// DefaultCapacity bounds the default store: roomy enough for many
// programs' worth of functions, small enough to stay a cache.
const DefaultCapacity = 65536

// NewStore returns an empty store holding at most capacity records
// (DefaultCapacity when capacity <= 0).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, m: map[string]*storeEntry{}}
}

// Lookup returns the record under key, counting a hit or a miss and
// marking the entry most-recently-used.
func (s *Store) Lookup(key string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveToFront(e)
	return e.rec, true
}

// Contains reports whether key is present without counting a lookup or
// touching recency.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}

// Install inserts or refreshes a record, evicting LRU entries over
// capacity.
func (s *Store) Install(rec *Record) {
	if rec == nil || rec.Key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[rec.Key]; ok {
		e.rec = rec
		s.moveToFront(e)
		return
	}
	e := &storeEntry{rec: rec}
	s.m[rec.Key] = e
	s.pushFront(e)
	for len(s.m) > s.cap {
		lru := s.tail
		s.remove(lru)
		delete(s.m, lru.rec.Key)
		s.evictions++
	}
}

// Invalidate removes the record under key, counting an invalidation when
// it was present.
func (s *Store) Invalidate(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return false
	}
	s.remove(e)
	delete(s.m, key)
	s.invalidations++
	return true
}

// Counters returns a point-in-time snapshot of the store's statistics.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Hits:          s.hits,
		Misses:        s.misses,
		Invalidations: s.invalidations,
		Evictions:     s.evictions,
		Entries:       len(s.m),
	}
}

// Len returns the number of records held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *Store) pushFront(e *storeEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) remove(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFront(e *storeEntry) {
	if s.head == e {
		return
	}
	s.remove(e)
	s.pushFront(e)
}

// Keys returns the stored keys, most-recently-used first (tests and
// debugging).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for e := s.head; e != nil; e = e.next {
		out = append(out, e.rec.Key)
	}
	return out
}

// SortedNames renders a name list canonically (helper shared by the delta
// report and tests).
func SortedNames(names []string) string {
	cp := append([]string(nil), names...)
	sort.Strings(cp)
	return strings.Join(cp, ",")
}

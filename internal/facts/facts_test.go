package facts_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/facts"
	"repro/internal/frontend/parser"
)

func snap(t *testing.T, cfg, src string) *facts.Snapshot {
	t.Helper()
	f, err := parser.ParseChecked("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return facts.SnapshotFile(cfg, f)
}

const factsBase = `
int g; int h;
int *p;

void worker(void *arg) {
	if (g > 3) { p = &g; } else { p = &h; }
}

int main() {
	thread_t t;
	p = &g;
	t = spawn(worker, NULL);
	join(t);
	return 0;
}
`

func TestSnapshotPositionFree(t *testing.T) {
	a := snap(t, "c", factsBase)
	// Comments and whitespace shift every position but no token.
	edited := strings.Replace(factsBase, "int main() {", "/* a comment */\n\n\nint main() {", 1)
	b := snap(t, "c", edited)
	if a.ProgKey != b.ProgKey {
		t.Fatalf("whitespace/comment edit changed ProgKey: %s vs %s", a.ProgKey, b.ProgKey)
	}
	for i := range a.Funcs {
		if a.Funcs[i].Key != b.Funcs[i].Key {
			t.Fatalf("func %s key changed on comment edit", a.Funcs[i].Name)
		}
	}
}

func TestSnapshotSensitivity(t *testing.T) {
	a := snap(t, "c", factsBase)

	// Body edit changes only that function's key (plus ProgKey).
	b := snap(t, "c", strings.Replace(factsBase, "g > 3", "g > 4", 1))
	if a.ProgKey == b.ProgKey {
		t.Fatalf("constant edit did not change ProgKey")
	}
	if a.ByName["worker"].Key == b.ByName["worker"].Key {
		t.Fatalf("constant edit did not change worker key")
	}
	if a.ByName["main"].Key != b.ByName["main"].Key {
		t.Fatalf("constant edit in worker changed main key")
	}

	// Config salt separates otherwise-identical programs.
	c := snap(t, "other-cfg", factsBase)
	if a.ProgKey == c.ProgKey || a.ByName["main"].Key == c.ByName["main"].Key {
		t.Fatalf("config salt not applied")
	}

	// A signature change in a callee invalidates the caller.
	d := snap(t, "c", strings.Replace(factsBase, "void worker(void *arg)", "int worker(void *arg)", 1))
	if a.ByName["main"].Key == d.ByName["main"].Key {
		t.Fatalf("callee signature change did not invalidate caller")
	}

	// A global declaration change moves ProgKey but not function keys
	// (function facts only depend on bodies + callee signatures).
	e := snap(t, "c", strings.Replace(factsBase, "int g; int h;", "int g; int h; int z;", 1))
	if a.ProgKey == e.ProgKey {
		t.Fatalf("global add did not change ProgKey")
	}
}

func TestDiff(t *testing.T) {
	a := snap(t, "c", factsBase)
	b := snap(t, "c", strings.Replace(factsBase, "g > 3", "g > 4", 1))
	d := a.Diff(b)
	if len(d.Changed) != 1 || d.Changed[0] != "worker" {
		t.Fatalf("changed = %v, want [worker]", d.Changed)
	}
	if len(d.Removed) != 0 {
		t.Fatalf("removed = %v, want []", d.Removed)
	}
	if len(d.Same) != 1 || d.Same[0] != "main" {
		t.Fatalf("same = %v, want [main]", d.Same)
	}

	// Removing a function shows up as removed.
	noWorker := strings.Replace(factsBase,
		"void worker(void *arg) {\n\tif (g > 3) { p = &g; } else { p = &h; }\n}\n", "", 1)
	noWorker = strings.Replace(noWorker, "t = spawn(worker, NULL);\n\tjoin(t);\n", "", 1)
	c := snap(t, "c", noWorker)
	d2 := a.Diff(c)
	found := false
	for _, n := range d2.Removed {
		if n == "worker" {
			found = true
		}
	}
	if !found {
		t.Fatalf("removed = %v, want worker included", d2.Removed)
	}
}

func TestStoreLRUAndCounters(t *testing.T) {
	s := facts.NewStore(3)
	rec := func(k string) *facts.Record { return &facts.Record{Key: k, Name: "f" + k} }

	for _, k := range []string{"a", "b", "c"} {
		s.Install(rec(k))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if _, ok := s.Lookup("a"); !ok {
		t.Fatalf("miss on installed key a")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatalf("hit on absent key")
	}
	// "a" was refreshed by the lookup; installing d must evict the LRU "b".
	s.Install(rec("d"))
	if s.Contains("b") {
		t.Fatalf("LRU eviction removed the wrong entry")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !s.Contains(k) {
			t.Fatalf("entry %s evicted unexpectedly", k)
		}
	}

	if !s.Invalidate("c") {
		t.Fatalf("invalidate of present key returned false")
	}
	if s.Invalidate("c") {
		t.Fatalf("invalidate of absent key returned true")
	}

	c := s.Counters()
	want := facts.Counters{Hits: 1, Misses: 1, Invalidations: 1, Evictions: 1, Entries: 2}
	if c != want {
		t.Fatalf("counters = %+v, want %+v", c, want)
	}
	wantStr := fmt.Sprintf("hits=%d misses=%d invalidations=%d evictions=%d entries=%d",
		c.Hits, c.Misses, c.Invalidations, c.Evictions, c.Entries)
	if c.String() != wantStr {
		t.Fatalf("String() = %q, want %q", c.String(), wantStr)
	}
	delta := c.Sub(facts.Counters{Hits: 1, Entries: 2})
	if delta.Hits != 0 || delta.Misses != 1 {
		t.Fatalf("Sub wrong: %+v", delta)
	}
	if r := (facts.Counters{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Fatalf("HitRatio = %v, want 0.75", r)
	}
}

func TestStoreInstallRefreshesNoDuplicate(t *testing.T) {
	s := facts.NewStore(2)
	r1 := &facts.Record{Key: "k", Name: "one"}
	r2 := &facts.Record{Key: "k", Name: "two"}
	s.Install(r1)
	s.Install(r2)
	if s.Len() != 1 {
		t.Fatalf("duplicate key grew store: len=%d", s.Len())
	}
	got, ok := s.Lookup("k")
	if !ok || got.Name != "two" {
		t.Fatalf("install did not replace record: %+v", got)
	}
}

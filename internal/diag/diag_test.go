package diag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func sample() []Diagnostic {
	return []Diagnostic{
		{Checker: "race", Severity: SevWarning, File: "a.mc", Line: 12, Message: "data race on obj#3", Object: "obj#3",
			Related: []Related{{Line: 20, Message: "second access"}}},
		{Checker: "leak", Severity: SevWarning, File: "a.mc", Line: 4, Message: "obj#1 may leak", Object: "obj#1"},
		{Checker: "uaf", Severity: SevError, File: "b.mc", Line: 7, Message: "use of freed obj#2", Object: "obj#2"},
		{Checker: "deadlock", Severity: SevWarning, File: "a.mc", Line: 12, Message: "lock cycle", Object: "lock#1"},
	}
}

func TestFinalizeOrderAndFingerprints(t *testing.T) {
	diags := sample()
	Finalize(diags)
	// Canonical order: file, line, checker.
	wantOrder := []string{"leak", "deadlock", "race", "uaf"}
	for i, w := range wantOrder {
		if diags[i].Checker != w {
			t.Fatalf("position %d: got checker %q, want %q (order %v)", i, diags[i].Checker, w, diags)
		}
	}
	for _, d := range diags {
		if d.Fingerprint == "" {
			t.Fatalf("missing fingerprint on %+v", d)
		}
	}
	// Finalize is deterministic under input permutation.
	perm := sample()
	rand.New(rand.NewSource(1)).Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	Finalize(perm)
	for i := range diags {
		if diags[i].Fingerprint != perm[i].Fingerprint || diags[i].Checker != perm[i].Checker {
			t.Fatalf("permuted input diverged at %d: %+v vs %+v", i, diags[i], perm[i])
		}
	}
}

func TestFingerprintStableUnderLineShift(t *testing.T) {
	a := Diagnostic{Checker: "uaf", File: "x.mc", Line: 10, Message: "use of freed obj#2", Object: "obj#2"}
	b := a
	b.Line = 99
	b.Related = []Related{} // empty vs nil must not matter
	if a.contentHash() != b.contentHash() {
		t.Fatalf("fingerprint changed with line shift: %s vs %s", a.contentHash(), b.contentHash())
	}
}

func TestFinalizeCollisionSuffixes(t *testing.T) {
	diags := []Diagnostic{
		{Checker: "doublefree", File: "x.mc", Line: 5, Message: "double free of obj#1", Object: "obj#1"},
		{Checker: "doublefree", File: "x.mc", Line: 9, Message: "double free of obj#1", Object: "obj#1"},
		{Checker: "doublefree", File: "x.mc", Line: 13, Message: "double free of obj#1", Object: "obj#1"},
	}
	Finalize(diags)
	if diags[0].Fingerprint == diags[1].Fingerprint || diags[1].Fingerprint == diags[2].Fingerprint {
		t.Fatalf("collision suffixes missing: %q %q %q", diags[0].Fingerprint, diags[1].Fingerprint, diags[2].Fingerprint)
	}
	if !strings.HasSuffix(diags[1].Fingerprint, "/2") || !strings.HasSuffix(diags[2].Fingerprint, "/3") {
		t.Fatalf("want /2 and /3 suffixes, got %q %q", diags[1].Fingerprint, diags[2].Fingerprint)
	}
	if !strings.HasPrefix(diags[1].Fingerprint, diags[0].Fingerprint) {
		t.Fatalf("suffix not derived from base: %q vs %q", diags[1].Fingerprint, diags[0].Fingerprint)
	}
}

func TestParseSuppressions(t *testing.T) {
	src := strings.Join([]string{
		"int g;",                         // 1
		"x = y; // fsam:ignore[race]",    // 2
		"// fsam:ignore[uaf,doublefree]", // 3: whole line -> applies to 4
		"*p = q;",                        // 4
		"free(p); // fsam:ignore",        // 5: all checkers
		"z = w; // plain comment",        // 6
	}, "\n")
	s := ParseSuppressions(src)
	if s == nil {
		t.Fatal("expected suppressions")
	}
	cases := []struct {
		line    int
		checker string
		want    bool
	}{
		{2, "race", true},
		{2, "uaf", false},
		{3, "uaf", false}, // whole-line comment targets the next line
		{4, "uaf", true},
		{4, "doublefree", true},
		{4, "race", false},
		{5, "race", true}, // bare marker suppresses everything
		{5, "leak", true},
		{6, "race", false},
	}
	for _, c := range cases {
		if got := s.Suppressed(c.line, c.checker); got != c.want {
			t.Errorf("Suppressed(%d, %q) = %v, want %v", c.line, c.checker, got, c.want)
		}
	}
	diags := []Diagnostic{
		{Checker: "race", File: "x.mc", Line: 2, Message: "race"},
		{Checker: "race", File: "x.mc", Line: 4, Message: "race"},
	}
	kept, n := s.Filter(diags)
	if n != 1 || len(kept) != 1 || kept[0].Line != 4 {
		t.Fatalf("Filter: kept=%v removed=%d", kept, n)
	}
	if ParseSuppressions("int g;\nx = y;\n") != nil {
		t.Fatal("source without markers should parse to nil")
	}
	var nilS *Suppressions
	if nilS.Suppressed(1, "race") {
		t.Fatal("nil Suppressions must suppress nothing")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := sample()
	Finalize(diags)
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags); err != nil {
		t.Fatal(err)
	}
	bl, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	kept, removed := bl.Filter(append([]Diagnostic(nil), diags...))
	if len(kept) != 0 || removed != len(diags) {
		t.Fatalf("baseline should swallow all its own findings: kept=%v removed=%d", kept, removed)
	}
	// A new finding survives.
	novel := []Diagnostic{{Checker: "race", File: "new.mc", Line: 1, Message: "fresh"}}
	Finalize(novel)
	kept, removed = bl.Filter(novel)
	if len(kept) != 1 || removed != 0 {
		t.Fatalf("novel finding filtered: kept=%v removed=%d", kept, removed)
	}
	if _, err := ReadBaseline(strings.NewReader("not a baseline\n")); err == nil {
		t.Fatal("expected header-validation error")
	}
	var nilBL *Baseline
	if nilBL.Has("x") {
		t.Fatal("nil baseline must contain nothing")
	}
}

func TestWriteText(t *testing.T) {
	diags := sample()
	Finalize(diags)
	var buf bytes.Buffer
	if err := WriteText(&buf, diags); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.mc:12: warning: [race] data race on obj#3\n    a.mc:20: second access\n") {
		t.Fatalf("text output missing expected lines:\n%s", out)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil diags should render as [], got %q", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	diags := sample()
	Finalize(diags)
	rules := []Rule{{ID: "race", Name: "DataRace", Doc: "reports data races"}, {ID: "uaf", Name: "UseAfterFree"}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, rules); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Fatalf("version = %v", log["version"])
	}
	runs := log["runs"].([]any)
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "fsamcheck" {
		t.Fatalf("driver name = %v", driver["name"])
	}
	if n := len(driver["rules"].([]any)); n != 2 {
		t.Fatalf("rules = %d, want 2", n)
	}
	results := run["results"].([]any)
	if len(results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(results), len(diags))
	}
	r0 := results[0].(map[string]any)
	if r0["ruleId"] != "leak" || r0["level"] != "warning" {
		t.Fatalf("first result = %v", r0)
	}
	if _, ok := r0["partialFingerprints"].(map[string]any)["fsamcheck/v1"]; !ok {
		t.Fatalf("missing partialFingerprints: %v", r0)
	}
	// An empty run still has a results array (SARIF requires it).
	buf.Reset()
	if err := WriteSARIF(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Fatalf("empty run must serialize results as []:\n%s", buf.String())
	}
}

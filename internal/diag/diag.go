// Package diag defines the unified diagnostics model shared by every
// checker in the suite (race, deadlock, leak, use-after-free, double-free,
// pthread misuse): one Diagnostic schema with severity, positions,
// witnessing evidence and a stable content fingerprint, plus the rendering
// (text, JSON, SARIF 2.1.0), inline-suppression and baseline machinery the
// fsamcheck CLI and the fsamd /v1/diagnostics endpoint are built on.
//
// The paper motivates FSAM by the client analyses it enables (Section 1:
// data-race detection and memory-bug finding on top of precise points-to);
// this package is what turns those clients from ad-hoc report structs into
// a CI-gateable analysis suite.
package diag

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// Severity classifies a diagnostic. The values are SARIF 2.1.0 levels, so
// the SARIF renderer emits them verbatim.
type Severity string

const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
	SevNote    Severity = "note"
)

// Related is a secondary source position participating in a finding (the
// second access of a race, the acquisitions of a deadlock cycle, the free
// site of a use-after-free).
type Related struct {
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// Diagnostic is one finding of one checker. Messages deliberately avoid
// embedding raw line numbers — positions live in Line and Related — so the
// fingerprint survives unrelated edits that only shift lines.
type Diagnostic struct {
	// Checker is the registry ID of the checker that produced the finding
	// (e.g. "race", "uaf").
	Checker string `json:"checker"`
	// Severity is the SARIF level of the finding.
	Severity Severity `json:"severity"`
	// File and Line are the primary position.
	File string `json:"file"`
	Line int    `json:"line"`
	// Message is the human-readable statement of the finding.
	Message string `json:"message"`
	// Object names the witnessing abstract memory object, when one exists
	// (the raced-on object, the freed heap object, the lock).
	Object string `json:"object,omitempty"`
	// Threads names the witnessing thread instance(s).
	Threads []string `json:"threads,omitempty"`
	// Related lists the secondary positions of the finding.
	Related []Related `json:"related,omitempty"`
	// Fingerprint is the stable content address of the finding, assigned by
	// Finalize; baselines suppress by it.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// contentHash is the fingerprint core: checker, file, object and messages,
// with no line numbers, so renumbering-only edits keep baselines valid.
func (d *Diagnostic) contentHash() string {
	h := sha256.New()
	sep := []byte{0}
	h.Write([]byte(d.Checker))
	h.Write(sep)
	h.Write([]byte(d.File))
	h.Write(sep)
	h.Write([]byte(d.Object))
	h.Write(sep)
	h.Write([]byte(d.Message))
	for _, r := range d.Related {
		h.Write(sep)
		h.Write([]byte(r.Message))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Sort orders diagnostics in the suite's canonical order: file, then
// file-order line, then checker ID, then fingerprint (content hash when
// Fingerprint is not yet assigned), then message as a final total-order
// tie-break. Golden tests, baselines and the CLI all rely on this order
// being identical across runs.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := &diags[i], &diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		fa, fb := a.Fingerprint, b.Fingerprint
		if fa == "" {
			fa = a.contentHash()
		}
		if fb == "" {
			fb = b.contentHash()
		}
		if fa != fb {
			return fa < fb
		}
		return a.Message < b.Message
	})
}

// Finalize sorts diags canonically and assigns fingerprints. Identical
// findings (same checker, file, object and messages — e.g. the same bug
// repeated on two lines) get a deterministic "/2", "/3"... occurrence
// suffix in sorted order, so every finding has a distinct fingerprint and
// baselining one occurrence does not hide the others.
func Finalize(diags []Diagnostic) {
	Sort(diags)
	seen := map[string]int{}
	for i := range diags {
		base := diags[i].contentHash()
		seen[base]++
		if n := seen[base]; n > 1 {
			diags[i].Fingerprint = base + "/" + itoa(n)
		} else {
			diags[i].Fingerprint = base
		}
	}
}

// itoa avoids strconv for the tiny occurrence counter.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

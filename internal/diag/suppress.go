package diag

import (
	"strings"
)

// Suppressions is the parsed set of inline "// fsam:ignore" comments of one
// source file. Two placements are honored:
//
//	x = y; // fsam:ignore[race]      suppresses race findings on this line
//	// fsam:ignore[uaf,doublefree]   a whole-line comment suppresses the
//	*p = q;                          next line
//	free(p); // fsam:ignore          no [...] filter suppresses every checker
//
// A nil *Suppressions suppresses nothing, so callers without source text
// (AnalyzeProgram) can pass it through unconditionally.
type Suppressions struct {
	// byLine maps a source line to the checker IDs suppressed on it; the
	// empty string entry means "all checkers".
	byLine map[int][]string
}

const ignoreMarker = "fsam:ignore"

// ParseSuppressions scans src for fsam:ignore comments. It works on raw
// lines rather than lexer tokens so it sees comments the frontend discards,
// and tolerates any amount of surrounding text inside the comment.
func ParseSuppressions(src string) *Suppressions {
	s := &Suppressions{byLine: map[int][]string{}}
	for i, line := range strings.Split(src, "\n") {
		ci := strings.Index(line, "//")
		if ci < 0 {
			continue
		}
		comment := line[ci:]
		mi := strings.Index(comment, ignoreMarker)
		if mi < 0 {
			continue
		}
		checkers := parseIgnoreList(comment[mi+len(ignoreMarker):])
		target := i + 1 // 1-based line of the comment itself
		if strings.TrimSpace(line[:ci]) == "" {
			// Whole-line comment: applies to the following line.
			target++
		}
		s.byLine[target] = append(s.byLine[target], checkers...)
	}
	if len(s.byLine) == 0 {
		return nil
	}
	return s
}

// parseIgnoreList parses the optional "[a,b,c]" checker filter directly
// after the marker. No filter (or a malformed one) means "all checkers".
func parseIgnoreList(rest string) []string {
	if !strings.HasPrefix(rest, "[") {
		return []string{""}
	}
	end := strings.Index(rest, "]")
	if end < 0 {
		return []string{""}
	}
	var ids []string
	for _, part := range strings.Split(rest[1:end], ",") {
		if p := strings.TrimSpace(part); p != "" {
			ids = append(ids, p)
		}
	}
	if len(ids) == 0 {
		return []string{""}
	}
	return ids
}

// Suppressed reports whether a finding of checker at line is suppressed.
func (s *Suppressions) Suppressed(line int, checker string) bool {
	if s == nil {
		return false
	}
	for _, id := range s.byLine[line] {
		if id == "" || id == checker {
			return true
		}
	}
	return false
}

// Filter removes suppressed diagnostics, returning the kept slice and the
// number removed.
func (s *Suppressions) Filter(diags []Diagnostic) ([]Diagnostic, int) {
	if s == nil {
		return diags, 0
	}
	kept := diags[:0]
	for _, d := range diags {
		if s.Suppressed(d.Line, d.Checker) {
			continue
		}
		kept = append(kept, d)
	}
	return kept, len(diags) - len(kept)
}

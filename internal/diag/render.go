package diag

import (
	"encoding/json"
	"fmt"
	"io"
)

// Rule is the checker metadata the SARIF renderer embeds as
// tool.driver.rules. The checkers registry provides these; diag stays
// independent of it (checkers imports diag, not the reverse).
type Rule struct {
	ID   string
	Name string
	Doc  string
}

// WriteText renders diagnostics in the compiler-style one-line-per-finding
// format, with related positions indented beneath:
//
//	file.mc:12: warning: [race] data race on obj#3 ...
//	    file.mc:20: second access by thread t1
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s:%d: %s: [%s] %s\n", d.File, d.Line, d.Severity, d.Checker, d.Message); err != nil {
			return err
		}
		for _, r := range d.Related {
			if _, err := fmt.Fprintf(w, "    %s:%d: %s\n", d.File, r.Line, r.Message); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders diagnostics as an indented JSON array (the raw
// Diagnostic schema, fingerprints included).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if diags == nil {
		diags = []Diagnostic{}
	}
	return enc.Encode(diags)
}

// SARIF 2.1.0 document structure, restricted to the slice of the schema
// fsamcheck emits. Field order follows the spec's presentation order so the
// serialized form is conventional.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	Name             string            `json:"name,omitempty"`
	ShortDescription *sarifMessage     `json:"shortDescription,omitempty"`
	FullDescription  *sarifMessage     `json:"fullDescription,omitempty"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations,omitempty"`
	RelatedLocations    []sarifLocation   `json:"relatedLocations,omitempty"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          *sarifMessage         `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log with one run. rules
// is the registry metadata for the checkers that ran (order preserved);
// diag Severity values are SARIF levels, so they pass through verbatim.
func WriteSARIF(w io.Writer, diags []Diagnostic, rules []Rule) error {
	var srules []sarifRule
	for _, r := range rules {
		sr := sarifRule{ID: r.ID, Name: r.Name}
		if r.Doc != "" {
			sr.ShortDescription = &sarifMessage{Text: r.Doc}
		}
		srules = append(srules, sr)
	}
	results := []sarifResult{}
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Checker,
			Level:   string(d.Severity),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line},
				},
			}},
		}
		for _, r := range d.Related {
			msg := r.Message
			res.RelatedLocations = append(res.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: r.Line},
				},
				Message: &sarifMessage{Text: msg},
			})
		}
		if d.Fingerprint != "" {
			res.PartialFingerprints = map[string]string{"fsamcheck/v1": d.Fingerprint}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fsamcheck", Rules: srules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

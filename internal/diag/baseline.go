package diag

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// A Baseline is a set of known-finding fingerprints. "fsamcheck -baseline
// write" records every current finding; "-baseline check" then filters
// those out, so the suite can gate CI on new findings only while existing
// debt is paid down incrementally.
type Baseline struct {
	fps map[string]bool
}

// baselineHeader is the first line of every baseline file; ReadBaseline
// rejects files without it, so a stray file cannot silently suppress
// everything.
const baselineHeader = "# fsamcheck baseline v1"

// WriteBaseline renders diags as a baseline file: one line per finding,
// fingerprint first, with the checker, position and message following as
// human-readable context (ignored on read). diags should already be
// finalized; the output inherits their canonical order.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	if _, err := fmt.Fprintln(w, baselineHeader); err != nil {
		return err
	}
	for _, d := range diags {
		fp := d.Fingerprint
		if fp == "" {
			fp = d.contentHash()
		}
		if _, err := fmt.Fprintf(w, "%s %s %s:%d %s\n", fp, d.Checker, d.File, d.Line, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// ReadBaseline parses a baseline file written by WriteBaseline. Blank
// lines and additional comment lines are ignored; only the leading
// fingerprint field of each line matters.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty baseline file (expected %q header)", baselineHeader)
	}
	if strings.TrimSpace(sc.Text()) != baselineHeader {
		return nil, fmt.Errorf("not a baseline file (expected %q header, got %q)", baselineHeader, sc.Text())
	}
	b := &Baseline{fps: map[string]bool{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fp, _, _ := strings.Cut(line, " ")
		b.fps[fp] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Has reports whether the baseline contains the fingerprint.
func (b *Baseline) Has(fp string) bool { return b != nil && b.fps[fp] }

// Filter removes baselined diagnostics (matched by fingerprint), returning
// the kept slice and the number removed. diags must be finalized so every
// entry carries its fingerprint.
func (b *Baseline) Filter(diags []Diagnostic) ([]Diagnostic, int) {
	if b == nil {
		return diags, 0
	}
	kept := diags[:0]
	for _, d := range diags {
		if b.Has(d.Fingerprint) {
			continue
		}
		kept = append(kept, d)
	}
	return kept, len(diags) - len(kept)
}

package gateway

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/server/client"
)

// TestRingOrder: every key's preference walk names each replica exactly
// once, is deterministic, and the primary assignment actually spreads
// across the fleet.
func TestRingOrder(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 64)
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("sha256:%064d", i)
		order := r.order(key)
		if len(order) != 3 {
			t.Fatalf("order(%q) = %v, want 3 distinct replicas", key, order)
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("order(%q) = %v repeats a replica", key, order)
			}
			seen[idx] = true
		}
		again := r.order(key)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("order(%q) unstable: %v vs %v", key, order, again)
			}
		}
		counts[order[0]]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("replica %d never primary over 300 keys: %v", i, counts)
		}
	}
}

// fleet is an in-process pair-of-replicas test fixture.
type fleet struct {
	svcs []*server.Server
	ts   []*httptest.Server
	gw   *Gateway
	gts  *httptest.Server
	cl   *client.Client
}

func newFleet(t *testing.T, n int, chaos []server.ChaosConfig, opt Options) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		so := server.Options{}
		if chaos != nil {
			so.Chaos = chaos[i]
		}
		svc := server.New(so)
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		f.svcs = append(f.svcs, svc)
		f.ts = append(f.ts, ts)
		opt.Replicas = append(opt.Replicas, ts.URL)
	}
	gw, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	gw.probeRound() // accurate state without the background prober
	f.gw = gw
	f.gts = httptest.NewServer(gw.Handler())
	t.Cleanup(f.gts.Close)
	f.cl = client.New(f.gts.URL)
	f.cl.Retry = &resilience.Policy{MaxAttempts: 1} // the gateway must absorb faults
	return f
}

// srcOwnedBy finds a source whose routing key makes replica `want` the
// primary owner on the gateway's ring.
func (f *fleet) srcOwnedBy(t *testing.T, want int) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		src := fmt.Sprintf("int x%d; int main() { return %d; }", i, i%2)
		key, ok, _, err := server.RoutingKey(server.AnalyzeRequest{Source: src}, 16)
		if err != nil || !ok {
			t.Fatalf("RoutingKey: %v", err)
		}
		if f.gw.ring.order(key)[0] == want {
			return src
		}
	}
	t.Fatal("no source found with the desired primary")
	return ""
}

// TestGatewayRoutesAndCaches: repeated requests for one key land on one
// replica, the repeat is answered from cache via the peek path, and
// exactly one replica ever ran the pipeline.
func TestGatewayRoutesAndCaches(t *testing.T) {
	f := newFleet(t, 2, nil, Options{})
	ctx := context.Background()

	src := f.srcOwnedBy(t, 0)
	first, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if first.Cached {
		t.Fatal("first analyze reported cached")
	}
	second, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("Analyze (repeat): %v", err)
	}
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("repeat: cached=%v id=%q want %q", second.Cached, second.ID, first.ID)
	}
	st := f.gw.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no gateway cache hit recorded: %+v", st)
	}
	// The sibling never ran the pipeline.
	m, err := client.New(f.ts[1].URL).Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(m, "fsamd_analyses_total 0") {
		t.Fatalf("sibling ran an analysis:\n%s", m)
	}
}

// TestGatewayPeerFill: a result cached only on a ring sibling is found by
// the peek chain and served without re-analyzing.
func TestGatewayPeerFill(t *testing.T) {
	f := newFleet(t, 2, nil, Options{})
	ctx := context.Background()

	src := f.srcOwnedBy(t, 0)
	// Warm the SIBLING's cache directly, behind the gateway's back.
	direct := client.New(f.ts[1].URL)
	warmed, err := direct.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("direct Analyze: %v", err)
	}
	got, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("gateway Analyze: %v", err)
	}
	if !got.Cached || got.ID != warmed.ID {
		t.Fatalf("peer fill missed: cached=%v id=%q want %q", got.Cached, got.ID, warmed.ID)
	}
	if st := f.gw.Stats(); st.PeerFills == 0 {
		t.Fatalf("no peer fill recorded: %+v", st)
	}
	// The primary owner must NOT have re-run the analysis.
	m, err := client.New(f.ts[0].URL).Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(m, "fsamd_analyses_total 0") {
		t.Fatalf("primary re-analyzed despite the peer's warm cache:\n%s", m)
	}
}

// TestGatewayFailover: a dead primary is retried, then the request fails
// over to the sibling; after enough probes the corpse is ejected and its
// breaker opens.
func TestGatewayFailover(t *testing.T) {
	f := newFleet(t, 2, nil, Options{
		Retry:            resilience.Policy{MaxAttempts: 2, Backoff: resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: 0.01}},
		BreakerThreshold: 2,
	})
	ctx := context.Background()

	src := f.srcOwnedBy(t, 0)
	f.ts[0].Close() // kill the primary

	got, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("Analyze with dead primary: %v", err)
	}
	if got.ID == "" {
		t.Fatal("empty response through failover")
	}
	st := f.gw.Stats()
	if st.Retries == 0 || st.Failovers == 0 {
		t.Fatalf("failover not recorded: %+v", st)
	}

	// Probes eject the corpse and trip its breaker.
	for i := 0; i < 4; i++ {
		f.gw.probeRound()
	}
	if s := f.gw.reps[0].State(); s != stateEjected {
		t.Fatalf("dead replica state = %s, want ejected", s)
	}
	if st := f.gw.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	// With the corpse ejected, requests route straight to the sibling.
	if _, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src + " "}); err != nil {
		t.Fatalf("Analyze after ejection: %v", err)
	}
}

// TestGatewayDrainFailover: SIGTERM semantics through the gateway — a
// request in flight on the draining replica completes, the drained replica
// leaves the rotation without being ejected, new traffic fails over, and
// the drained cache still answers peeks.
func TestGatewayDrainFailover(t *testing.T) {
	// Replica 0 gets 150ms of injected latency so a request is reliably
	// still in flight when the drain begins.
	chaos := []server.ChaosConfig{{Latency: 150 * time.Millisecond, LatencyP: 1}, {}}
	f := newFleet(t, 2, chaos, Options{})
	ctx := context.Background()

	src := f.srcOwnedBy(t, 0)
	// Warm the draining replica's cache first (also ~150ms).
	warm, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("warm Analyze: %v", err)
	}

	// Launch an in-flight analysis of a fresh key owned by replica 0 …
	slow := f.srcOwnedBy(t, 0) + " // distinct"
	inflight := make(chan error, 1)
	go func() {
		_, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: slow})
		inflight <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the replica
	// … then drain replica 0 mid-request, as SIGTERM would.
	f.svcs[0].BeginDrain()
	f.gw.probeRound()

	if s := f.gw.reps[0].State(); s != stateDegraded || !f.gw.reps[0].draining.Load() {
		t.Fatalf("draining replica state = %s (draining=%v), want degraded+draining",
			s, f.gw.reps[0].draining.Load())
	}

	// The in-flight request completes despite the drain.
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}

	// New traffic for replica 0's keyspace fails over to the sibling.
	fresh := f.srcOwnedBy(t, 0) + " // after drain"
	got, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: fresh})
	if err != nil {
		t.Fatalf("Analyze during drain: %v", err)
	}
	if got.ID == "" {
		t.Fatal("empty response during drain")
	}

	// The draining replica's warm cache still serves peeks.
	peeked, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("peek during drain: %v", err)
	}
	if !peeked.Cached || peeked.ID != warm.ID {
		t.Fatalf("drain peek: cached=%v id=%q want %q", peeked.Cached, peeked.ID, warm.ID)
	}
}

// TestGatewayHedge: a slow primary is raced against the sibling after the
// hedge delay, and the fast sibling's answer wins.
func TestGatewayHedge(t *testing.T) {
	chaos := []server.ChaosConfig{{Latency: 400 * time.Millisecond, LatencyP: 1}, {}}
	f := newFleet(t, 2, chaos, Options{HedgeAfter: 20 * time.Millisecond})
	ctx := context.Background()

	src := f.srcOwnedBy(t, 0)
	t0 := time.Now()
	got, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if got.ID == "" {
		t.Fatal("empty hedged response")
	}
	if d := time.Since(t0); d >= 400*time.Millisecond {
		t.Fatalf("hedge did not help: %s elapsed", d)
	}
	st := f.gw.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge not recorded: %+v", st)
	}
}

// TestGatewayQueryFailover: id-keyed queries walk the ring — a sibling
// holding the entry answers after the owner dies.
func TestGatewayQueryFailover(t *testing.T) {
	f := newFleet(t, 2, nil, Options{
		Retry: resilience.Policy{MaxAttempts: 2, Backoff: resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: 0.01}},
	})
	ctx := context.Background()

	src := f.srcOwnedBy(t, 0)
	// Cache the analysis on BOTH replicas (the sibling via a direct call).
	got, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if _, err := client.New(f.ts[1].URL).Analyze(ctx, server.AnalyzeRequest{Source: src}); err != nil {
		t.Fatalf("direct Analyze: %v", err)
	}

	if _, err := f.cl.Races(ctx, got.ID); err != nil {
		t.Fatalf("Races via gateway: %v", err)
	}

	f.ts[0].Close()
	for i := 0; i < 4; i++ {
		f.gw.probeRound()
	}
	if _, err := f.cl.Races(ctx, got.ID); err != nil {
		t.Fatalf("Races after owner death: %v", err)
	}
}

// TestGatewayBaseAffinity: base+patch requests follow the learned
// ProgKey→replica affinity, and a fleet-wide unknown base falls back to a
// fresh analysis instead of a client-visible 404.
func TestGatewayBaseAffinity(t *testing.T) {
	f := newFleet(t, 2, nil, Options{})
	ctx := context.Background()

	src := "int x; int *p; int main() { p = &x; return 0; }"
	first, err := f.cl.Analyze(ctx, server.AnalyzeRequest{Name: "aff.mc", Source: src})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if first.ProgKey == "" {
		t.Skip("server does not report ProgKey")
	}
	edited := strings.Replace(src, "return 0", "return 1", 1)
	delta, err := f.cl.AnalyzeDelta(ctx, first.ProgKey, server.AnalyzeRequest{Name: "aff.mc", Source: edited})
	if err != nil {
		t.Fatalf("AnalyzeDelta via gateway: %v", err)
	}
	if delta.ID == "" {
		t.Fatal("empty delta response")
	}

	// Unknown base everywhere: the gateway strips it and analyzes fresh.
	fresh, err := f.cl.AnalyzeDelta(ctx, "sha256:feedfacefeedface", server.AnalyzeRequest{Name: "aff.mc", Source: edited + " "})
	if err != nil {
		t.Fatalf("AnalyzeDelta with bogus base: %v", err)
	}
	if fresh.ID == "" {
		t.Fatal("empty fallback response")
	}
}

// TestGatewayReadyz: the gateway is ready while any replica is, and says
// so honestly when the whole fleet is gone.
func TestGatewayReadyz(t *testing.T) {
	f := newFleet(t, 2, nil, Options{})

	resp, err := http.Get(f.gts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	f.ts[0].Close()
	f.ts[1].Close()
	for i := 0; i < 4; i++ {
		f.gw.probeRound()
	}
	resp, err = http.Get(f.gts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet = %d, want 503", resp.StatusCode)
	}

	// Liveness and metrics stay up regardless.
	resp, err = http.Get(f.gts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	resp.Body.Close()
	m, err := http.Get(f.gts.URL + "/metrics")
	if err != nil || m.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %v, %v", m, err)
	}
	m.Body.Close()
}

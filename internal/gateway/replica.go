package gateway

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/server/client"
)

// replicaState is the probe-driven availability of one fsamd replica.
type replicaState int32

const (
	// stateHealthy: /readyz answered 200; full rotation.
	stateHealthy replicaState = iota
	// stateDegraded: the process is alive but not taking new work — it
	// answered /readyz with 503 (draining or saturated) or failed a probe
	// but not enough of them to eject. A draining replica is deliberately
	// kept here, NOT ejected: it is finishing in-flight requests and still
	// answers cache peeks, so tearing it out of the peek chain would throw
	// away its warm cache.
	stateDegraded
	// stateEjected: consecutive probe transport failures crossed the
	// threshold; the process is presumed gone. Out of every chain until a
	// probe succeeds again.
	stateEjected
)

func (s replicaState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDegraded:
		return "degraded"
	case stateEjected:
		return "ejected"
	}
	return "unknown"
}

// replica is the gateway's handle on one fsamd instance: a non-retrying
// client (the gateway owns retries), a circuit breaker shared by probes
// and traffic, and the probe-driven state machine.
type replica struct {
	name    string // base URL, also the metrics label
	client  *client.Client
	breaker *resilience.Breaker

	state       atomic.Int32
	consecFails atomic.Int32
	draining    atomic.Bool
}

func (rp *replica) State() replicaState     { return replicaState(rp.state.Load()) }
func (rp *replica) setState(s replicaState) { rp.state.Store(int32(s)) }
func (rp *replica) routable() bool          { return rp.State() == stateHealthy }
func (rp *replica) peekable() bool          { return rp.State() != stateEjected }

// probe runs one readiness check and advances the state machine. The
// probe routes through the same breaker as traffic: a killed replica's
// breaker opens (and a restarted one walks open → half-open → closed)
// even when no client traffic touches it, so breaker state always tracks
// reality rather than request luck.
func (rp *replica) probe(ctx context.Context, ejectAfter int, met *metrics) {
	admitted := rp.breaker.Allow()
	resp, ready, err := rp.client.Ready(ctx)
	switch {
	case err != nil:
		if admitted {
			rp.breaker.Record(false)
		}
		met.observeProbe("error")
		if int(rp.consecFails.Add(1)) >= ejectAfter {
			rp.setState(stateEjected)
		} else {
			rp.setState(stateDegraded)
		}
	case ready:
		if admitted {
			rp.breaker.Record(true)
		}
		met.observeProbe("ready")
		rp.consecFails.Store(0)
		rp.draining.Store(false)
		rp.setState(stateHealthy)
	default:
		// 503 from /readyz: the process is alive and explicitly saying
		// "no new work". That is a correct answer, not a fault — the
		// breaker records success (the replica is reachable) and the
		// state machine degrades instead of ejecting, which is exactly
		// how a drain is respected: out of the rotation, in-flight work
		// untouched, cache peeks still served.
		if admitted {
			rp.breaker.Record(true)
		}
		met.observeProbe("notready")
		rp.consecFails.Store(0)
		rp.draining.Store(resp != nil && resp.Status == "draining")
		rp.setState(stateDegraded)
	}
}

// latencyWindow is a fixed-size ring of full-analysis latencies backing
// the adaptive hedge delay.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
}

func newLatencyWindow(size int) *latencyWindow {
	if size <= 0 {
		size = 512
	}
	return &latencyWindow{samples: make([]time.Duration, size)}
}

func (lw *latencyWindow) observe(d time.Duration) {
	lw.mu.Lock()
	lw.samples[lw.next] = d
	lw.next = (lw.next + 1) % len(lw.samples)
	if lw.next == 0 {
		lw.full = true
	}
	lw.mu.Unlock()
}

// p99 returns the 99th-percentile sample, or 0 while the window has too
// few samples to say anything (callers fall back to the hedge floor).
func (lw *latencyWindow) p99() time.Duration {
	lw.mu.Lock()
	n := lw.next
	if lw.full {
		n = len(lw.samples)
	}
	if n < 8 {
		lw.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, lw.samples[:n])
	lw.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	idx := (n*99 + 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// Package gateway implements fsamgw: a stateless fault-tolerant router in
// front of a fleet of fsamd replicas. Requests are spread by consistent
// hashing on their content address (server.RoutingKey), so each replica's
// result cache stays hot for its share of the keyspace; everything else —
// health probing, retries with backoff, circuit breakers, hedged requests,
// peer cache-fill, drain-respecting failover — exists to keep that routing
// correct and the client oblivious while replicas fail, drain, restart, or
// misbehave.
//
// The gateway holds no durable state. Replica availability is re-learned
// by probes within seconds of a restart, and the result caches live in the
// replicas; any number of gateways can front the same fleet.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/server/client"
)

// Options configures a Gateway. Zero values select the documented
// defaults.
type Options struct {
	// Replicas are the fsamd base URLs, e.g. "http://127.0.0.1:8077".
	Replicas []string
	// VNodes is the number of ring points per replica (default 64).
	VNodes int
	// ProbeInterval spaces the /readyz health probes (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange (default 2s).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive probe transport failures that eject a
	// replica (default 3). A 503 readiness answer never ejects.
	EjectAfter int
	// Retry is the same-replica retry policy for transient failures
	// (default: resilience defaults, 3 attempts).
	Retry resilience.Policy
	// BreakerThreshold / BreakerCooldown configure the per-replica
	// circuit breakers (defaults 5 failures / 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter, when positive, is a fixed delay before a cold analyze
	// is hedged on a sibling. 0 selects the adaptive policy: the p99 of
	// recent analyze latencies, never below HedgeFloor.
	HedgeAfter time.Duration
	// HedgeFloor is the minimum hedge delay (default 25ms) so a fast
	// fleet doesn't hedge every request.
	HedgeFloor time.Duration
	// PeekTimeout bounds one cache-peek exchange (default 2s) — peeks
	// never run the pipeline, so a slow peek means a sick replica.
	PeekTimeout time.Duration
	// MaxSourceBytes bounds the request body (default 4 MB) and MaxScale
	// the benchmark scale (default 16); both must match the replicas or
	// the gateway would compute routing keys for requests the replicas
	// reject.
	MaxSourceBytes int64
	MaxScale       int
	// Log receives routing decisions (default: discard).
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = 25 * time.Millisecond
	}
	if o.PeekTimeout <= 0 {
		o.PeekTimeout = 2 * time.Second
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 4 << 20
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 16
	}
	if o.Log == nil {
		o.Log = log.New(io.Discard, "", 0)
	}
	return o
}

// affinityBound caps the ProgKey→replica map; oldest entries fall off.
const affinityBound = 4096

// Gateway routes analysis traffic across the replica fleet.
type Gateway struct {
	opt  Options
	ring *ring
	reps []*replica
	met  *metrics
	lat  *latencyWindow
	http *http.Client
	mux  *http.ServeMux

	affMu    sync.Mutex
	affinity map[string]int // ProgKey → replica index that served it
	affOrder []string       // FIFO eviction order

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Gateway over the given replicas. Call Start to begin
// probing and Stop to shut the prober down.
func New(opt Options) (*Gateway, error) {
	opt = opt.withDefaults()
	if len(opt.Replicas) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	g := &Gateway{
		opt:      opt,
		ring:     newRing(opt.Replicas, opt.VNodes),
		met:      newMetrics(),
		lat:      newLatencyWindow(512),
		http:     &http.Client{Timeout: client.DefaultTimeout},
		affinity: map[string]int{},
		stop:     make(chan struct{}),
	}
	for _, name := range opt.Replicas {
		name := name
		rp := &replica{name: name}
		rp.client = client.New(name)
		rp.client.Retry = &resilience.Policy{MaxAttempts: 1} // the gateway owns retries
		rp.breaker = &resilience.Breaker{
			Threshold: opt.BreakerThreshold,
			Cooldown:  opt.BreakerCooldown,
			OnTransition: func(from, to resilience.State) {
				g.met.observeBreaker(name, to.String())
			},
		}
		g.reps = append(g.reps, rp)
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/v1/analyze", g.handleAnalyze)
	for _, p := range []string{"/v1/pointsto", "/v1/races", "/v1/leaks", "/v1/diagnostics"} {
		g.mux.HandleFunc(p, g.handleQuery)
	}
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/readyz", g.handleReadyz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	return g, nil
}

// Start runs one synchronous probe round (so routing state is accurate
// before the first request) and then probes on ProbeInterval until Stop.
func (g *Gateway) Start() {
	g.probeRound()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.probeRound()
			}
		}
	}()
}

// Stop halts the prober. In-flight requests are unaffected.
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Handler returns the gateway's HTTP handler: the fsamd API surface plus
// the gateway's own /healthz, /readyz and /metrics.
func (g *Gateway) Handler() http.Handler { return g.mux }

func (g *Gateway) probeRound() {
	var wg sync.WaitGroup
	for _, rp := range g.reps {
		rp := rp
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), g.opt.ProbeTimeout)
			defer cancel()
			was := rp.State()
			rp.probe(ctx, g.opt.EjectAfter, g.met)
			if now := rp.State(); now != was {
				g.opt.Log.Printf("replica %s: %s -> %s", rp.name, was, now)
			}
		}()
	}
	wg.Wait()
}

// replicaStates samples the fleet for the metrics gauges.
func (g *Gateway) replicaStates() map[string]string {
	out := make(map[string]string, len(g.reps))
	for _, rp := range g.reps {
		st := rp.State().String()
		if rp.State() == stateDegraded && rp.draining.Load() {
			st = "draining"
		}
		out[rp.name] = st
	}
	return out
}

// hedgeDelay is the wait before a cold analyze is raced on a sibling.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.opt.HedgeAfter > 0 {
		return g.opt.HedgeAfter
	}
	if p := g.lat.p99(); p > g.opt.HedgeFloor {
		return p
	}
	return g.opt.HedgeFloor
}

// ---- upstream plumbing ----

// upstream is one buffered HTTP exchange with a replica. Bodies are small
// JSON documents, so buffering beats streaming: it lets the gateway
// classify, replay, and race responses freely.
type upstream struct {
	status  int
	header  http.Header
	body    []byte
	replica int
}

func (g *Gateway) roundTrip(ctx context.Context, repIdx int, method, path, rawQuery string, body []byte) (*upstream, error) {
	u := g.reps[repIdx].name + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := g.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return &upstream{status: resp.StatusCode, header: resp.Header, body: buf, replica: repIdx}, nil
}

// emit forwards an upstream response to the client, stamping the replica
// that served it.
func (g *Gateway) emit(w http.ResponseWriter, us *upstream) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Fsamd-Progkey"} {
		if v := us.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fsamgw-Replica", g.reps[us.replica].name)
	w.WriteHeader(us.status)
	w.Write(us.body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, server.ErrorResponse{Error: msg})
}

// ---- analyze path ----

var (
	errBreakerOpen = errors.New("circuit breaker open")
	errAllNotFound = errors.New("no candidate holds the entry")
	errNoCandidate = errors.New("no replica available")
)

// analyzeOn runs one analyze against one replica under the same-replica
// retry policy. A nil error means us is the client's final answer (2xx, or
// a 4xx that replaying cannot fix). A non-nil error means this replica is
// out of the running — us, when non-nil, is the last HTTP response seen,
// kept so the chain can propagate an honest 503 if every replica is out.
func (g *Gateway) analyzeOn(ctx context.Context, repIdx int, rawQuery string, body []byte, retry404 bool) (us *upstream, err error) {
	rep := g.reps[repIdx]
	var out, last *upstream
	retryReason := ""
	err = g.opt.Retry.Do(ctx, func(attempt int) (time.Duration, bool, error) {
		if attempt > 0 {
			g.met.observeRetry(retryReason)
		}
		if !rep.breaker.Allow() {
			return 0, false, errBreakerOpen
		}
		r, rerr := g.roundTrip(ctx, repIdx, http.MethodPost, "/v1/analyze", rawQuery, body)
		if rerr != nil {
			rep.breaker.Record(false)
			retryReason = "connect"
			return 0, true, rerr
		}
		last = r
		hint, _ := resilience.RetryAfter(r.header)
		switch {
		case r.status >= 200 && r.status <= 299:
			rep.breaker.Record(true)
			out = r
			return 0, false, nil
		case resilience.RetryableStatus(r.status):
			// 429/503: explicit backpressure from a live process. Not a
			// breaker failure — tripping on overload would turn a brownout
			// into a blackout.
			rep.breaker.Record(true)
			retryReason = "status"
			return hint, true, fmt.Errorf("replica %s: HTTP %d", rep.name, r.status)
		case r.status == http.StatusNotFound && retry404:
			// Base+patch routing miss: this replica doesn't hold the base.
			rep.breaker.Record(true)
			return 0, false, errAllNotFound
		case r.status >= 500:
			rep.breaker.Record(false)
			return 0, false, fmt.Errorf("replica %s: HTTP %d", rep.name, r.status)
		default:
			// 4xx: the client's fault; every replica would agree.
			rep.breaker.Record(true)
			out = r
			return 0, false, nil
		}
	})
	if err != nil {
		return last, err
	}
	return out, nil
}

// analyzeChain walks the candidate replicas in ring order until one
// produces a final answer. Unavailable replicas (ejected, or degraded
// while healthy siblings exist) are skipped; each move past the first
// attempted replica is a failover.
func (g *Gateway) analyzeChain(ctx context.Context, candidates []int, rawQuery string, body []byte, retry404 bool) (*upstream, error) {
	usable := g.usable(candidates)
	if len(usable) == 0 {
		return nil, errNoCandidate
	}
	var last *upstream
	var lastErr error
	sawNotFound := false
	for i, idx := range usable {
		if i > 0 {
			g.met.observeFailover()
		}
		us, err := g.analyzeOn(ctx, idx, rawQuery, body, retry404)
		if err == nil {
			return us, nil
		}
		if errors.Is(err, errAllNotFound) {
			sawNotFound = true
			if us != nil {
				last = us
			}
			continue
		}
		lastErr = err
		if us != nil {
			last = us
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
	}
	if sawNotFound && lastErr == nil {
		return last, errAllNotFound
	}
	if lastErr == nil {
		lastErr = errNoCandidate
	}
	return last, lastErr
}

// usable filters candidates to routable replicas, relaxing to any
// non-ejected replica when nothing healthy remains — a degraded fleet
// should brown out, not black out.
func (g *Gateway) usable(candidates []int) []int {
	var healthy, alive []int
	for _, idx := range candidates {
		if g.reps[idx].routable() {
			healthy = append(healthy, idx)
		}
		if g.reps[idx].peekable() {
			alive = append(alive, idx)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	return alive
}

// analyzeHedged races the primary chain against a rotated sibling chain
// after the hedge delay. Analyses are deterministic and content-addressed,
// so duplicated work converges on the same cache entry; the loser's
// request context is cancelled as soon as a winner lands.
func (g *Gateway) analyzeHedged(ctx context.Context, candidates []int, rawQuery string, body []byte, retry404 bool) (*upstream, error) {
	usable := g.usable(candidates)
	if len(usable) < 2 {
		return g.analyzeChain(ctx, candidates, rawQuery, body, retry404)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		us    *upstream
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(order []int, hedge bool) {
		go func() {
			us, err := g.analyzeChain(hctx, order, rawQuery, body, retry404)
			ch <- result{us, err, hedge}
		}()
	}
	launch(usable, false)
	outstanding := 1

	timer := time.NewTimer(g.hedgeDelay())
	defer timer.Stop()
	timerC := timer.C

	rotated := append(append([]int{}, usable[1:]...), usable[0])
	var last *upstream
	var lastErr error
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					g.met.observeHedgeWin()
				}
				return r.us, nil
			}
			if r.us != nil {
				last = r.us
			}
			lastErr = r.err
		case <-timerC:
			timerC = nil
			g.met.observeHedge()
			launch(rotated, true)
			outstanding++
		}
	}
	return last, lastErr
}

// peekChain asks the primary owner — and on a miss, the next ring sibling
// — whether the result is already cached, via ?cachedonly=1 (which never
// runs the pipeline and is served even by draining replicas). Two peeks
// maximum: past the first sibling the expected value of another RTT is
// worse than just analyzing.
func (g *Gateway) peekChain(ctx context.Context, candidates []int, q url.Values, body []byte) *upstream {
	pq := url.Values{}
	for k, v := range q {
		pq[k] = v
	}
	pq.Set("cachedonly", "1")
	rawQuery := pq.Encode()

	// A peek is only worth its latency: if a cache lookup takes longer
	// than the delay after which we would hedge a full analysis, analyzing
	// is the better spend. Bound each peek accordingly.
	bound := 2 * g.hedgeDelay()
	if bound > g.opt.PeekTimeout {
		bound = g.opt.PeekTimeout
	}

	tried := 0
	for pos, idx := range candidates {
		if tried >= 2 {
			break
		}
		rep := g.reps[idx]
		if !rep.peekable() || !rep.breaker.Allow() {
			continue
		}
		tried++
		pctx, cancel := context.WithTimeout(ctx, bound)
		us, err := g.roundTrip(pctx, idx, http.MethodPost, "/v1/analyze", rawQuery, body)
		timedOut := pctx.Err() != nil
		cancel()
		// A timed-out peek says "slow", not "dead" — only a transport
		// failure on a live deadline counts against the breaker.
		rep.breaker.Record(err == nil || timedOut)
		if err != nil || us.status != http.StatusOK {
			continue
		}
		if pos == 0 {
			g.met.observeCacheHit("peek_primary")
		} else {
			g.met.observeCacheHit("peek_peer")
			g.met.observePeerFill()
		}
		return us
	}
	return nil
}

// rememberAffinity records which replica holds a program key, so future
// base+patch requests route to the replica that can actually serve them.
func (g *Gateway) rememberAffinity(progKey string, repIdx int) {
	if progKey == "" {
		return
	}
	g.affMu.Lock()
	defer g.affMu.Unlock()
	if _, ok := g.affinity[progKey]; !ok {
		g.affOrder = append(g.affOrder, progKey)
		if len(g.affOrder) > affinityBound {
			delete(g.affinity, g.affOrder[0])
			g.affOrder = g.affOrder[1:]
		}
	}
	g.affinity[progKey] = repIdx
}

// baseCandidates orders replicas for a base+patch request: the replica
// known (via X-Fsamd-Progkey affinity) to hold the base first, then the
// ring walk on the base key.
func (g *Gateway) baseCandidates(base string) []int {
	order := g.ring.order(base)
	g.affMu.Lock()
	idx, ok := g.affinity[base]
	g.affMu.Unlock()
	if !ok {
		return order
	}
	out := []int{idx}
	for _, o := range order {
		if o != idx {
			out = append(out, o)
		}
	}
	return out
}

func (g *Gateway) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	g.met.observeRequest("analyze")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opt.MaxSourceBytes))
	if err != nil {
		g.met.observeBadRequest()
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	q := r.URL.Query()
	req, err := server.DecodeAnalyze(body, q)
	if err != nil {
		g.met.observeBadRequest()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, keyable, errStatus, err := server.RoutingKey(req, g.opt.MaxScale)
	if err != nil {
		g.met.observeBadRequest()
		writeError(w, errStatus, err.Error())
		return
	}

	var candidates []int
	if keyable {
		candidates = g.ring.order(key)
	} else {
		candidates = g.baseCandidates(req.Base)
	}

	// A cached result anywhere in the fleet beats re-analyzing: peek the
	// primary owner, then one sibling (peer cache-fill).
	cachedOnly := q.Get("cachedonly") == "1"
	if keyable {
		if us := g.peekChain(r.Context(), candidates, q, body); us != nil {
			g.emit(w, us)
			return
		}
	}
	if cachedOnly {
		writeError(w, http.StatusNotFound, "not cached anywhere in the fleet")
		return
	}

	start := time.Now()
	us, err := g.analyzeHedged(r.Context(), candidates, r.URL.RawQuery, body, !keyable)
	if errors.Is(err, errAllNotFound) && req.Base != "" {
		// No replica holds the base (evicted, or its holder died). The
		// delta is unservable, but the full analysis is not: strip the
		// base and run it fresh on the key's proper owner.
		g.opt.Log.Printf("base %s unknown fleet-wide; re-analyzing fresh", req.Base)
		req.Base = ""
		if fresh, merr := json.Marshal(req); merr == nil {
			if key, ok, _, kerr := server.RoutingKey(req, g.opt.MaxScale); kerr == nil && ok {
				us, err = g.analyzeHedged(r.Context(), g.ring.order(key), r.URL.RawQuery, fresh, false)
				body = fresh
			}
		}
	}
	if err != nil {
		if us != nil {
			// Propagate the honest upstream answer (e.g. 503 + Retry-After
			// from a fleet that is entirely draining).
			g.emit(w, us)
			return
		}
		g.met.observeUpstreamError()
		writeError(w, http.StatusBadGateway, "no replica could serve the request: "+err.Error())
		return
	}
	if us.status >= 200 && us.status <= 299 {
		g.lat.observe(time.Since(start))
		g.rememberAffinity(us.header.Get("X-Fsamd-Progkey"), us.replica)
		var ar server.AnalyzeResponse
		if json.Unmarshal(us.body, &ar) == nil && ar.Cached {
			g.met.observeCacheHit("replica")
		}
	}
	g.emit(w, us)
}

// ---- query path ----

// handleQuery serves the id-keyed read endpoints (/v1/pointsto, /v1/races,
// /v1/leaks, /v1/diagnostics). The id IS the routing key, so the owner
// walk mirrors the analyze path; a 404 means "not my cache" and moves to
// the next sibling, and a round with transient failures is replayed so a
// chaos-flaky owner cannot surface a spurious miss to the client.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	g.met.observeRequest("query")
	id := r.URL.Query().Get("id")
	if id == "" {
		g.met.observeBadRequest()
		writeError(w, http.StatusBadRequest, "missing id")
		return
	}
	candidates := g.ring.order(id)

	const rounds = 3
	var last *upstream
	for round := 0; round < rounds; round++ {
		transient := false
		for _, idx := range g.usable(candidates) {
			rep := g.reps[idx]
			var us *upstream
			retryReason := ""
			err := g.opt.Retry.Do(r.Context(), func(attempt int) (time.Duration, bool, error) {
				if attempt > 0 {
					g.met.observeRetry(retryReason)
				}
				if !rep.breaker.Allow() {
					return 0, false, errBreakerOpen
				}
				res, rerr := g.roundTrip(r.Context(), idx, http.MethodGet, r.URL.Path, r.URL.RawQuery, nil)
				if rerr != nil {
					rep.breaker.Record(false)
					retryReason = "connect"
					return 0, true, rerr
				}
				us = res
				hint, _ := resilience.RetryAfter(res.header)
				if resilience.RetryableStatus(res.status) {
					rep.breaker.Record(true)
					retryReason = "status"
					return hint, true, fmt.Errorf("replica %s: HTTP %d", rep.name, res.status)
				}
				rep.breaker.Record(res.status < 500)
				return 0, false, nil
			})
			if err != nil {
				transient = true
				continue
			}
			if us.status == http.StatusNotFound {
				last = us
				continue // not this replica's cache; try the next owner
			}
			g.emit(w, us)
			return
		}
		if !transient {
			break // a clean all-404 walk: the id is genuinely unknown
		}
	}
	if last != nil {
		g.emit(w, last)
		return
	}
	g.met.observeUpstreamError()
	writeError(w, http.StatusBadGateway, "no replica could serve the query")
	return
}

// ---- gateway observability ----

// gatewayHealth is the /healthz and /readyz document.
type gatewayHealth struct {
	Status   string            `json:"status"`
	Replicas map[string]string `json:"replicas"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, gatewayHealth{Status: "ok", Replicas: g.replicaStates()})
}

// handleReadyz: ready while at least one replica can take new work.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, rp := range g.reps {
		if rp.routable() {
			writeJSON(w, http.StatusOK, gatewayHealth{Status: "ready", Replicas: g.replicaStates()})
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, gatewayHealth{Status: "no replicas available", Replicas: g.replicaStates()})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.met.write(w, g.replicaStates(), g.hedgeDelay())
}

// Stats exposes the counters the cluster harness gates on.
type Stats struct {
	Retries       uint64
	Hedges        uint64
	HedgeWins     uint64
	Failovers     uint64
	PeerFills     uint64
	CacheHits     uint64
	BreakerOpens  uint64
	BreakerCloses uint64
}

// Stats samples the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Retries:       g.met.counterTotal("retries"),
		Hedges:        g.met.counterTotal("hedges"),
		HedgeWins:     g.met.counterTotal("hedge_wins"),
		Failovers:     g.met.counterTotal("failovers"),
		PeerFills:     g.met.counterTotal("peer_fills"),
		CacheHits:     g.met.counterTotal("cache_hits"),
		BreakerOpens:  g.met.breakerTransitions("open"),
		BreakerCloses: g.met.breakerTransitions("closed"),
	}
}

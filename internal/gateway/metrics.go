package gateway

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics is the gateway's Prometheus-text registry. Everything is
// mutex-guarded counters/maps — the gateway's request rate is bounded by
// the fleet's analysis throughput, so contention is a non-issue and the
// simplicity pays for itself in the exposition code.
type metrics struct {
	mu sync.Mutex

	requests    map[string]uint64 // by route: analyze, query, peek
	retries     map[string]uint64 // by reason: connect, status
	failovers   uint64
	hedges      uint64
	hedgeWins   uint64
	peerFills   uint64
	cacheHits   map[string]uint64 // by source: peek_primary, peek_peer, replica
	breakerTran map[string]uint64 // by "replica\x00to"
	probes      map[string]uint64 // by result: ready, notready, error
	badRequests uint64
	upstreamErr uint64

	started time.Time
}

func newMetrics() *metrics {
	return &metrics{
		requests:    map[string]uint64{},
		retries:     map[string]uint64{},
		cacheHits:   map[string]uint64{},
		breakerTran: map[string]uint64{},
		probes:      map[string]uint64{},
		started:     time.Now(),
	}
}

func (m *metrics) inc(mp map[string]uint64, key string) {
	m.mu.Lock()
	mp[key]++
	m.mu.Unlock()
}

func (m *metrics) observeRequest(route string) { m.inc(m.requests, route) }
func (m *metrics) observeRetry(reason string)  { m.inc(m.retries, reason) }
func (m *metrics) observeCacheHit(src string)  { m.inc(m.cacheHits, src) }
func (m *metrics) observeProbe(result string)  { m.inc(m.probes, result) }

func (m *metrics) observeFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

func (m *metrics) observeHedge() {
	m.mu.Lock()
	m.hedges++
	m.mu.Unlock()
}

func (m *metrics) observeHedgeWin() {
	m.mu.Lock()
	m.hedgeWins++
	m.mu.Unlock()
}

func (m *metrics) observePeerFill() {
	m.mu.Lock()
	m.peerFills++
	m.mu.Unlock()
}

func (m *metrics) observeBreaker(replica, to string) {
	m.inc(m.breakerTran, replica+"\x00"+to)
}

func (m *metrics) observeBadRequest() {
	m.mu.Lock()
	m.badRequests++
	m.mu.Unlock()
}

func (m *metrics) observeUpstreamError() {
	m.mu.Lock()
	m.upstreamErr++
	m.mu.Unlock()
}

// counterTotal sums one labeled counter family — the cluster harness gates
// on these without scraping text.
func (m *metrics) counterTotal(family string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	sum := func(mp map[string]uint64) (n uint64) {
		for _, v := range mp {
			n += v
		}
		return
	}
	switch family {
	case "retries":
		return sum(m.retries)
	case "hedges":
		return m.hedges
	case "hedge_wins":
		return m.hedgeWins
	case "failovers":
		return m.failovers
	case "peer_fills":
		return m.peerFills
	case "cache_hits":
		return sum(m.cacheHits)
	}
	return 0
}

// breakerTransitions returns the transition count into a given state,
// summed over replicas.
func (m *metrics) breakerTransitions(to string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for k, v := range m.breakerTran {
		if len(k) > len(to) && k[len(k)-len(to):] == to && k[len(k)-len(to)-1] == 0 {
			n += v
		}
	}
	return n
}

func writeLabeled(w io.Writer, name, label string, mp map[string]uint64) {
	keys := make([]string, 0, len(mp))
	for k := range mp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, mp[k])
	}
}

// write renders the exposition. replicaStates is sampled by the caller so
// gauges reflect the instant of the scrape.
func (m *metrics) write(w io.Writer, replicaStates map[string]string, hedgeDelay time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP fsamgw_requests_total Requests received, by route.")
	fmt.Fprintln(w, "# TYPE fsamgw_requests_total counter")
	writeLabeled(w, "fsamgw_requests_total", "route", m.requests)

	fmt.Fprintln(w, "# HELP fsamgw_retries_total Same-replica retries, by reason.")
	fmt.Fprintln(w, "# TYPE fsamgw_retries_total counter")
	writeLabeled(w, "fsamgw_retries_total", "reason", m.retries)

	fmt.Fprintln(w, "# HELP fsamgw_failovers_total Requests moved to a sibling replica.")
	fmt.Fprintln(w, "# TYPE fsamgw_failovers_total counter")
	fmt.Fprintf(w, "fsamgw_failovers_total %d\n", m.failovers)

	fmt.Fprintln(w, "# HELP fsamgw_hedges_total Hedged requests launched.")
	fmt.Fprintln(w, "# TYPE fsamgw_hedges_total counter")
	fmt.Fprintf(w, "fsamgw_hedges_total %d\n", m.hedges)

	fmt.Fprintln(w, "# HELP fsamgw_hedge_wins_total Hedges that answered before the primary.")
	fmt.Fprintln(w, "# TYPE fsamgw_hedge_wins_total counter")
	fmt.Fprintf(w, "fsamgw_hedge_wins_total %d\n", m.hedgeWins)

	fmt.Fprintln(w, "# HELP fsamgw_peer_fill_total Misses answered from a sibling's cache.")
	fmt.Fprintln(w, "# TYPE fsamgw_peer_fill_total counter")
	fmt.Fprintf(w, "fsamgw_peer_fill_total %d\n", m.peerFills)

	fmt.Fprintln(w, "# HELP fsamgw_cache_hits_total Cached answers, by where they were found.")
	fmt.Fprintln(w, "# TYPE fsamgw_cache_hits_total counter")
	writeLabeled(w, "fsamgw_cache_hits_total", "source", m.cacheHits)

	fmt.Fprintln(w, "# HELP fsamgw_breaker_transitions_total Circuit-breaker state changes.")
	fmt.Fprintln(w, "# TYPE fsamgw_breaker_transitions_total counter")
	{
		keys := make([]string, 0, len(m.breakerTran))
		for k := range m.breakerTran {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var rep, to string
			for i := 0; i < len(k); i++ {
				if k[i] == 0 {
					rep, to = k[:i], k[i+1:]
					break
				}
			}
			fmt.Fprintf(w, "fsamgw_breaker_transitions_total{replica=%q,to=%q} %d\n", rep, to, m.breakerTran[k])
		}
	}

	fmt.Fprintln(w, "# HELP fsamgw_probes_total Health probes, by outcome.")
	fmt.Fprintln(w, "# TYPE fsamgw_probes_total counter")
	writeLabeled(w, "fsamgw_probes_total", "result", m.probes)

	fmt.Fprintln(w, "# HELP fsamgw_replica_state Replica availability (1 = in rotation).")
	fmt.Fprintln(w, "# TYPE fsamgw_replica_state gauge")
	{
		keys := make([]string, 0, len(replicaStates))
		for k := range replicaStates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := 0
			if replicaStates[k] == "healthy" {
				v = 1
			}
			fmt.Fprintf(w, "fsamgw_replica_state{replica=%q,state=%q} %d\n", k, replicaStates[k], v)
		}
	}

	fmt.Fprintln(w, "# HELP fsamgw_bad_requests_total Requests rejected before routing.")
	fmt.Fprintln(w, "# TYPE fsamgw_bad_requests_total counter")
	fmt.Fprintf(w, "fsamgw_bad_requests_total %d\n", m.badRequests)

	fmt.Fprintln(w, "# HELP fsamgw_upstream_errors_total Requests no replica could serve.")
	fmt.Fprintln(w, "# TYPE fsamgw_upstream_errors_total counter")
	fmt.Fprintf(w, "fsamgw_upstream_errors_total %d\n", m.upstreamErr)

	fmt.Fprintln(w, "# HELP fsamgw_hedge_delay_seconds Current adaptive hedge delay.")
	fmt.Fprintln(w, "# TYPE fsamgw_hedge_delay_seconds gauge")
	fmt.Fprintf(w, "fsamgw_hedge_delay_seconds %g\n", hedgeDelay.Seconds())

	fmt.Fprintln(w, "# HELP fsamgw_uptime_seconds Gateway uptime.")
	fmt.Fprintln(w, "# TYPE fsamgw_uptime_seconds gauge")
	fmt.Fprintf(w, "fsamgw_uptime_seconds %g\n", time.Since(m.started).Seconds())
}

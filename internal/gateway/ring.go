package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over the replica set. Each replica owns
// vnodes points on a uint64 circle; a key routes to the replica owning the
// first point at or after the key's hash. order() extends that to a full
// distinct-replica preference walk, which is what every routing decision in
// the gateway consumes: candidates[0] is the primary owner, candidates[1]
// the first failover/peer-fill sibling, and so on.
//
// The ring always contains every configured replica regardless of health —
// availability is a routing-time filter, not a ring mutation. Rebuilding
// the ring on every health flap would remap keys and shred the per-replica
// cache locality the consistent hash exists to protect.
type ring struct {
	n      int      // replica count
	points []rpoint // sorted by hash
}

type rpoint struct {
	hash    uint64
	replica int
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256. Keys are
// already sha256 content addresses, but hashing again costs little and
// keeps vnode placement uniform for arbitrary replica names.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing places vnodes points per replica. Replica identity is the index
// into the gateway's replica slice; names only seed the point positions.
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{n: len(names), points: make([]rpoint, 0, len(names)*vnodes)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, rpoint{hash64(fmt.Sprintf("%s#%d", name, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// order returns every replica index exactly once, in the key's preference
// order: the clockwise walk from the key's hash, keeping the first
// occurrence of each replica.
func (r *ring) order(key string) []int {
	if r.n == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// Package pipeline wires the analysis stages together: parse → IR →
// pre-analysis → call graph → ICFG → thread model, and provides the pass
// manager (manager.go) that schedules those stages — plus the interference
// and solve stages the facade registers — as an explicit phase DAG. It
// exists so the public facade, the benchmark harness and the internal tests
// share one setup path.
package pipeline

import (
	"context"

	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/frontend/parser"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/irbuild"
	"repro/internal/mhp"
	"repro/internal/threads"
)

// Base bundles the substrate every interference analysis builds on. Model
// is nil until BuildThreadModel runs (the thread model is its own pipeline
// phase, so the manager can time it separately from the pre-analysis).
type Base struct {
	Prog  *ir.Program
	Pre   *andersen.Result
	CG    *callgraph.Graph
	G     *icfg.Graph
	Ctxs  *callgraph.Ctxs
	Model *threads.Model
}

// Compile parses and lowers MiniC source into IR. Malformed source is a
// positioned error ("name:line:col: message"), never a panic.
func Compile(name, src string) (*ir.Program, error) {
	f, err := parser.ParseChecked(name, src)
	if err != nil {
		return nil, err
	}
	return irbuild.BuildChecked(f)
}

// BuildPre runs the pre-analysis and constructs the call graph, ICFG and
// context table for prog (the "preanalysis" phase; Model stays nil until
// BuildThreadModel). maxCtxDepth bounds call strings (<=0 for the
// default). On ctx cancellation it returns (nil, ctx.Err()).
func BuildPre(ctx context.Context, prog *ir.Program, maxCtxDepth int) (*Base, error) {
	pre, err := andersen.AnalyzeCtx(ctx, prog)
	if err != nil {
		return nil, err
	}
	return BuildPreFrom(ctx, pre, maxCtxDepth)
}

// BuildPreFrom constructs the call graph, ICFG and context table over an
// already-computed (or rebound) pre-analysis. It is the incremental path's
// entry into the pipeline: when an isomorphic edit lets the pre-analysis
// be adopted from a previous run, only this cheap glue is rebuilt.
func BuildPreFrom(ctx context.Context, pre *andersen.Result, maxCtxDepth int) (*Base, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cg := callgraph.Build(pre)
	g := icfg.Build(cg)
	ctxs := callgraph.NewCtxs(maxCtxDepth)
	return &Base{Prog: pre.Prog, Pre: pre, CG: cg, G: g, Ctxs: ctxs}, nil
}

// BuildThreadModel constructs the static thread model (the "threadmodel"
// phase) over an already-built substrate.
func (b *Base) BuildThreadModel() {
	b.Model = threads.BuildModel(b.Pre, b.CG, b.G, b.Ctxs)
}

// BuildBase runs the pre-analysis and constructs the call graph, ICFG and
// static thread model for prog in one call (the non-managed path used by
// tests and benchmarks). maxCtxDepth bounds call strings (<=0 for the
// default).
func BuildBase(prog *ir.Program, maxCtxDepth int) *Base {
	b, _ := BuildPre(context.Background(), prog, maxCtxDepth)
	b.BuildThreadModel()
	return b
}

// FromSource compiles src and builds the base pipeline.
func FromSource(name, src string) (*Base, error) {
	prog, err := Compile(name, src)
	if err != nil {
		return nil, err
	}
	return BuildBase(prog, 0), nil
}

// Interleavings runs the statement-level interleaving analysis.
func (b *Base) Interleavings() *mhp.Result {
	return mhp.Analyze(b.Model)
}

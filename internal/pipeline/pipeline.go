// Package pipeline wires the analysis stages together: parse → IR →
// pre-analysis → call graph → ICFG → thread model. It exists so the public
// facade, the benchmark harness and the internal tests share one setup path.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/frontend/parser"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/irbuild"
	"repro/internal/mhp"
	"repro/internal/threads"
)

// Base bundles the substrate every interference analysis builds on.
type Base struct {
	Prog  *ir.Program
	Pre   *andersen.Result
	CG    *callgraph.Graph
	G     *icfg.Graph
	Ctxs  *callgraph.Ctxs
	Model *threads.Model

	// ThreadModelTime is the wall-clock cost of constructing the static
	// thread model, measured inside BuildBase so the facade can report it
	// as its own phase instead of folding it into the pre-analysis.
	ThreadModelTime time.Duration
}

// Compile parses and lowers MiniC source into IR.
func Compile(name, src string) (*ir.Program, error) {
	f, errs := parser.Parse(name, src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("%s: %w (and %d more)", name, errs[0], len(errs)-1)
	}
	return irbuild.Build(f)
}

// BuildBase runs the pre-analysis and constructs the call graph, ICFG and
// static thread model for prog. maxCtxDepth bounds call strings (<=0 for
// the default).
func BuildBase(prog *ir.Program, maxCtxDepth int) *Base {
	pre := andersen.Analyze(prog)
	cg := callgraph.Build(pre)
	g := icfg.Build(cg)
	ctxs := callgraph.NewCtxs(maxCtxDepth)
	t0 := time.Now()
	model := threads.BuildModel(pre, cg, g, ctxs)
	return &Base{Prog: prog, Pre: pre, CG: cg, G: g, Ctxs: ctxs, Model: model,
		ThreadModelTime: time.Since(t0)}
}

// FromSource compiles src and builds the base pipeline.
func FromSource(name, src string) (*Base, error) {
	prog, err := Compile(name, src)
	if err != nil {
		return nil, err
	}
	return BuildBase(prog, 0), nil
}

// Interleavings runs the statement-level interleaving analysis.
func (b *Base) Interleavings() *mhp.Result {
	return mhp.Analyze(b.Model)
}

package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// phaseThatPanics provides a slot but panics before writing it.
func phaseThatPanics(name string, val any) Phase {
	return Phase{
		Name:     name,
		Provides: []string{name + ".out"},
		Run: func(ctx context.Context, st *State) error {
			panic(val)
		},
	}
}

func TestPanicContainedAsPhaseError(t *testing.T) {
	for _, seq := range []bool{false, true} {
		m, err := NewManager(phaseThatPanics("boom", "kaput"))
		if err != nil {
			t.Fatal(err)
		}
		m.Sequential = seq
		rep, err := m.Run(context.Background(), NewState())
		if err == nil {
			t.Fatalf("Sequential=%v: panic did not surface as error", seq)
		}
		var pe *PhaseError
		if !errors.As(err, &pe) {
			t.Fatalf("Sequential=%v: err = %T, want *PhaseError", seq, err)
		}
		if !pe.Panic || pe.Phase != "boom" {
			t.Fatalf("Sequential=%v: PhaseError = %+v, want Panic in boom", seq, pe)
		}
		if !strings.Contains(pe.Error(), "panicked") || !strings.Contains(pe.Error(), "kaput") {
			t.Errorf("Error() = %q, want panic message with value", pe.Error())
		}
		if !bytes.Contains(pe.Stack, []byte("goroutine")) {
			t.Errorf("PhaseError.Stack missing goroutine trace")
		}
		if !ErrPanicked(err) {
			t.Errorf("ErrPanicked(err) = false")
		}
		if rep == nil {
			t.Errorf("Sequential=%v: nil Report alongside contained panic", seq)
		}
	}
}

// TestPanicInBytesHookContained: the Bytes accounting hook runs under the
// same recover as Run.
func TestPanicInBytesHookContained(t *testing.T) {
	p := Phase{
		Name:     "acct",
		Provides: []string{"out"},
		Run: func(ctx context.Context, st *State) error {
			st.Put("out", 1)
			return nil
		},
		Bytes: func(st *State) uint64 { panic("bytes hook") },
	}
	m, err := NewManager(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(context.Background(), NewState())
	var pe *PhaseError
	if !errors.As(err, &pe) || !pe.Panic {
		t.Fatalf("err = %v, want contained panic from Bytes hook", err)
	}
}

// TestPanicDoesNotAbortCompletedPhases: a panic in a leaf phase leaves the
// other phases' slots intact so callers can degrade.
func TestPanicDoesNotAbortCompletedPhases(t *testing.T) {
	ok := Phase{
		Name:     "ok",
		Provides: []string{"x"},
		Run: func(ctx context.Context, st *State) error {
			st.Put("x", 42)
			return nil
		},
	}
	bad := Phase{
		Name:  "bad",
		Needs: []string{"x"},
		Run: func(ctx context.Context, st *State) error {
			panic("late")
		},
	}
	m, err := NewManager(ok, bad)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	_, err = m.Run(context.Background(), st)
	if !ErrPanicked(err) {
		t.Fatalf("err = %v, want panic", err)
	}
	if Get[int](st, "x") != 42 {
		t.Error("completed phase's slot lost after sibling panic")
	}
}

func TestStateDelete(t *testing.T) {
	st := NewState()
	st.Put("x", 7)
	st.Delete("x")
	if Get[int](st, "x") != 0 {
		t.Error("Delete left the slot populated")
	}
}

package pipeline_test

import (
	"testing"

	"repro/internal/pipeline"
)

func TestCompileError(t *testing.T) {
	if _, err := pipeline.Compile("bad.mc", "int main( {"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := pipeline.Compile("nomain.mc", "int foo() { return 0; }"); err == nil {
		t.Error("expected missing-main error")
	}
}

func TestFromSource(t *testing.T) {
	b, err := pipeline.FromSource("ok.mc", `
int x;
int *p;
void w(void *a) { p = &x; }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Prog == nil || b.Pre == nil || b.CG == nil || b.G == nil || b.Ctxs == nil || b.Model == nil {
		t.Fatal("base incomplete")
	}
	if len(b.Model.Threads) != 2 {
		t.Errorf("threads = %d", len(b.Model.Threads))
	}
	il := b.Interleavings()
	if il == nil || il.Model != b.Model {
		t.Error("interleavings")
	}
}

func TestCtxDepthPlumbing(t *testing.T) {
	prog, err := pipeline.Compile("t.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	b := pipeline.BuildBase(prog, 3)
	if b.Ctxs.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d", b.Ctxs.MaxDepth)
	}
	b2 := pipeline.BuildBase(prog, 0)
	if b2.Ctxs.MaxDepth <= 0 {
		t.Error("default depth must be positive")
	}
}

package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// chain returns phases a→b→c communicating through slots.
func chain(trace *[]string) []Phase {
	mk := func(name, need, give string) Phase {
		p := Phase{
			Name:     name,
			Provides: []string{give},
			Run: func(ctx context.Context, st *State) error {
				if need != "" {
					if Get[int](st, need) == 0 {
						return errors.New(name + ": input missing")
					}
				}
				*trace = append(*trace, name)
				st.Put(give, 1)
				return nil
			},
		}
		if need != "" {
			p.Needs = []string{need}
		}
		return p
	}
	return []Phase{mk("c", "y", "z"), mk("a", "", "x"), mk("b", "x", "y")}
}

func TestSequentialTopologicalOrder(t *testing.T) {
	var trace []string
	m, err := NewManager(chain(&trace)...)
	if err != nil {
		t.Fatal(err)
	}
	m.Sequential = true
	rep, err := m.Run(context.Background(), NewState())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, n := range rep.Order() {
		if n != want[i] {
			t.Fatalf("order = %v, want %v", rep.Order(), want)
		}
	}
	for i, n := range trace {
		if n != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestParallelPhasesOverlap(t *testing.T) {
	// left and right have no mutual dependency: each one blocks until the
	// other has started, so the run can only finish if the manager
	// actually overlaps them.
	leftUp := make(chan struct{})
	rightUp := make(chan struct{})
	rendezvous := func(name string, mine, other chan struct{}) Phase {
		return Phase{
			Name:     name,
			Needs:    []string{"seed"},
			Provides: []string{name + "-out"},
			Run: func(ctx context.Context, st *State) error {
				close(mine)
				select {
				case <-other:
					st.Put(name+"-out", 1)
					return nil
				case <-time.After(10 * time.Second):
					return errors.New(name + " never saw its peer: phases did not overlap")
				}
			},
		}
	}
	seed := Phase{
		Name:     "seed",
		Provides: []string{"seed"},
		Run: func(ctx context.Context, st *State) error {
			st.Put("seed", 1)
			return nil
		},
	}
	m, err := NewManager(seed, rendezvous("left", leftUp, rightUp), rendezvous("right", rightUp, leftUp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), NewState()); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialNeverOverlaps(t *testing.T) {
	var inFlight, peak int32
	mk := func(name string) Phase {
		return Phase{
			Name:     name,
			Provides: []string{name},
			Run: func(ctx context.Context, st *State) error {
				n := atomic.AddInt32(&inFlight, 1)
				for {
					old := atomic.LoadInt32(&peak)
					if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt32(&inFlight, -1)
				st.Put(name, 1)
				return nil
			},
		}
	}
	m, err := NewManager(mk("p"), mk("q"), mk("r"))
	if err != nil {
		t.Fatal(err)
	}
	m.Sequential = true
	if _, err := m.Run(context.Background(), NewState()); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&peak); got != 1 {
		t.Fatalf("sequential run reached concurrency %d", got)
	}
}

func TestRunCancellationPhaseError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	first := Phase{
		Name:     "first",
		Provides: []string{"x"},
		Run: func(ctx context.Context, st *State) error {
			st.Put("x", 1)
			return nil
		},
	}
	blocker := Phase{
		Name:  "blocker",
		Needs: []string{"x"},
		Run: func(ctx context.Context, st *State) error {
			cancel()
			<-ctx.Done()
			return ctx.Err()
		},
	}
	m, err := NewManager(first, blocker)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(ctx, NewState())
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PhaseError", err)
	}
	if pe.Phase != "blocker" {
		t.Errorf("failed phase = %q", pe.Phase)
	}
	if len(pe.Completed) != 1 || pe.Completed[0] != "first" {
		t.Errorf("completed = %v", pe.Completed)
	}
	if !ErrCancelled(err) {
		t.Error("ErrCancelled should see through PhaseError")
	}
	if rep.Time("first") <= 0 {
		t.Error("completed phase not in report")
	}
}

func TestReportAccounting(t *testing.T) {
	mk := func(name string, bytes uint64) Phase {
		return Phase{
			Name:     name,
			Provides: []string{name},
			Run: func(ctx context.Context, st *State) error {
				st.Put(name, 1)
				return nil
			},
			Bytes: func(st *State) uint64 { return bytes },
		}
	}
	m, err := NewManager(mk("u", 100), mk("v", 23))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background(), NewState())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes("u") != 100 || rep.Bytes("v") != 23 || rep.TotalBytes() != 123 {
		t.Errorf("bytes: u=%d v=%d total=%d", rep.Bytes("u"), rep.Bytes("v"), rep.TotalBytes())
	}
}

func TestManagerValidation(t *testing.T) {
	noop := func(ctx context.Context, st *State) error { return nil }
	cases := []struct {
		name   string
		phases []Phase
	}{
		{"unnamed", []Phase{{Run: noop}}},
		{"no run", []Phase{{Name: "a"}}},
		{"duplicate name", []Phase{
			{Name: "a", Run: noop}, {Name: "a", Run: noop}}},
		{"duplicate provider", []Phase{
			{Name: "a", Provides: []string{"s"}, Run: noop},
			{Name: "b", Provides: []string{"s"}, Run: noop}}},
		{"self need", []Phase{
			{Name: "a", Needs: []string{"s"}, Provides: []string{"s"}, Run: noop}}},
		{"cycle", []Phase{
			{Name: "a", Needs: []string{"y"}, Provides: []string{"x"}, Run: noop},
			{Name: "b", Needs: []string{"x"}, Provides: []string{"y"}, Run: noop}}},
	}
	for _, tc := range cases {
		if _, err := NewManager(tc.phases...); err == nil {
			t.Errorf("%s: NewManager accepted an invalid DAG", tc.name)
		}
	}
}

func TestUnseededExternalSlot(t *testing.T) {
	p := Phase{Name: "a", Needs: []string{"outside"},
		Run: func(ctx context.Context, st *State) error { return nil }}
	m, err := NewManager(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), NewState()); err == nil {
		t.Fatal("Run accepted a missing external slot")
	}
	st := NewState()
	st.Put("outside", 7)
	if _, err := m.Run(context.Background(), st); err != nil {
		t.Fatal(err)
	}
}

func TestGetZeroAndTypeMismatch(t *testing.T) {
	st := NewState()
	if got := Get[int](st, "absent"); got != 0 {
		t.Errorf("absent slot = %d", got)
	}
	st.Put("n", 42)
	if got := Get[int](st, "n"); got != 42 {
		t.Errorf("n = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch should panic")
		}
	}()
	Get[string](st, "n")
}

// Pass manager: the analysis pipeline as an explicit phase DAG.
//
// FSAM is a staged analysis (paper Figure 2: pre-analysis → thread-oblivious
// def-use → interleaving/value-flow/lock interference → sparse solve), and
// the stage boundary is the unit of engineering this layer exposes: a Phase
// declares the typed State slots it consumes and produces, and the Manager
// topologically schedules the resulting DAG, running phases whose inputs are
// ready concurrently (the interleaving and lock analyses are independent by
// construction and overlap today; race/deadlock/leak clients can join the
// DAG tomorrow). The Manager is also the single place that enforces the
// per-run context deadline and records per-phase wall time and bytes — the
// facade's Stats are read off the Report instead of inline stopwatches.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

// Phase is one pipeline stage. Needs and Provides name State slots; the
// Manager derives the DAG edges from them (a phase depends on the phase
// providing each slot it needs). Slots no phase provides must be seeded
// into the State before Run.
type Phase struct {
	Name string
	// Needs lists the slots read by Run. Provides lists the slots Run is
	// obliged to Put; each slot has exactly one provider.
	Needs    []string
	Provides []string
	// Run executes the phase. It must honor ctx cancellation (long fixpoint
	// loops poll at their worklist pop) and communicate only through st.
	Run func(ctx context.Context, st *State) error
	// Bytes optionally reports the resident footprint of the phase's
	// outputs; the Manager records it after Run succeeds.
	Bytes func(st *State) uint64
	// Subphases optionally reports named sub-measurements after Run
	// succeeds (e.g. the thread-modular engine's per-round and per-thread
	// solve times); the Manager records each under "<phase>.<name>", so
	// they ride the Report into phase timing displays without becoming
	// schedulable DAG nodes.
	Subphases func(st *State) []Subphase
}

// Subphase is one named sub-measurement of a phase (see Phase.Subphases).
type Subphase struct {
	Name  string
	Time  time.Duration
	Bytes uint64
}

// State is the shared slot store phases communicate through. It is safe for
// concurrent use by phases running in parallel.
type State struct {
	mu    sync.Mutex
	slots map[string]any
}

// NewState returns an empty State.
func NewState() *State { return &State{slots: map[string]any{}} }

// Put stores v under slot.
func (s *State) Put(slot string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots[slot] = v
}

// Delete removes slot, releasing its value for collection. The degradation
// ladder uses it to drop a failed tier's outputs before retrying a cheaper
// tier under a memory budget.
func (s *State) Delete(slot string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.slots, slot)
}

// Value returns the raw slot value and whether it is present.
func (s *State) Value(slot string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.slots[slot]
	return v, ok
}

// Get returns the slot value as a T. It returns the zero T when the slot is
// absent or holds a nil; it panics when the slot holds a different type
// (a phase wiring bug, not a runtime condition).
func Get[T any](s *State, slot string) T {
	var zero T
	v, ok := s.Value(slot)
	if !ok || v == nil {
		return zero
	}
	t, ok := v.(T)
	if !ok {
		panic(fmt.Sprintf("pipeline: slot %q holds %T, want %T", slot, v, zero))
	}
	return t
}

// Report is the Manager's per-run accounting: wall time and bytes per
// phase, and the completion order (a valid topological order of the DAG).
type Report struct {
	mu    sync.Mutex
	times map[string]time.Duration
	bytes map[string]uint64
	order []string
}

func newReport() *Report {
	return &Report{times: map[string]time.Duration{}, bytes: map[string]uint64{}}
}

func (r *Report) record(name string, d time.Duration, b uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.times[name] = d
	r.bytes[name] = b
	r.order = append(r.order, name)
}

// Time returns the recorded wall time of a phase (0 if it never completed).
func (r *Report) Time(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.times[name]
}

// Bytes returns the recorded footprint of a phase's outputs.
func (r *Report) Bytes(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes[name]
}

// TotalBytes sums the recorded footprint over all completed phases.
func (r *Report) TotalBytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, b := range r.bytes {
		total += b
	}
	return total
}

// Order returns the completion order of the phases that ran.
func (r *Report) Order() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// PhaseError reports a failed (or cancelled) phase together with the
// phases that did complete, so callers can expose partial progress. A
// recovered phase panic sets Panic and carries the goroutine stack —
// fault containment: no phase, however broken, takes the process down.
type PhaseError struct {
	Phase     string
	Completed []string
	Err       error
	// Engine names the analysis backend whose DAG was running when the
	// phase failed (Manager.Engine; empty when the Manager was not
	// labeled). The degradation ladder runs several engines' DAGs in one
	// logical request, so error attribution needs the engine, not just the
	// phase.
	Engine string
	// Panic is set when Err is a recovered panic; Stack then holds the
	// panicking goroutine's stack trace.
	Panic bool
	Stack []byte
}

func (e *PhaseError) Error() string {
	eng := ""
	if e.Engine != "" {
		eng = fmt.Sprintf(" [engine %s]", e.Engine)
	}
	if e.Panic {
		return fmt.Sprintf("pipeline: phase %q%s panicked: %v (completed: %v)", e.Phase, eng, e.Err, e.Completed)
	}
	return fmt.Sprintf("pipeline: phase %q%s: %v (completed: %v)", e.Phase, eng, e.Err, e.Completed)
}

func (e *PhaseError) Unwrap() error { return e.Err }

// panicError carries a recovered phase panic value and its stack until the
// Manager folds it into the PhaseError.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// Manager schedules a phase DAG.
type Manager struct {
	phases []Phase
	// Sequential forces one-phase-at-a-time execution in a deterministic
	// topological order (diagnostics and scheduling-equivalence tests);
	// the default runs every ready phase concurrently.
	Sequential bool
	// Engine labels the run with the analysis backend whose DAG this is;
	// it is carried into any PhaseError for attribution.
	Engine string

	providerOf map[string]int // slot → phase index
	deps       [][]int        // phase → indices of phases it depends on
	external   []string       // slots that must be seeded into the State
}

// NewManager validates the phase set (unique names, single provider per
// slot, acyclic dependencies) and returns a Manager.
func NewManager(phases ...Phase) (*Manager, error) {
	m := &Manager{phases: phases, providerOf: map[string]int{}}
	names := map[string]bool{}
	for i, p := range phases {
		if p.Name == "" || p.Run == nil {
			return nil, fmt.Errorf("pipeline: phase %d needs a name and a Run", i)
		}
		if names[p.Name] {
			return nil, fmt.Errorf("pipeline: duplicate phase %q", p.Name)
		}
		names[p.Name] = true
		for _, slot := range p.Provides {
			if j, dup := m.providerOf[slot]; dup {
				return nil, fmt.Errorf("pipeline: slot %q provided by both %q and %q",
					slot, phases[j].Name, p.Name)
			}
			m.providerOf[slot] = i
		}
	}
	ext := map[string]bool{}
	m.deps = make([][]int, len(phases))
	for i, p := range phases {
		seen := map[int]bool{}
		for _, slot := range p.Needs {
			j, ok := m.providerOf[slot]
			if !ok {
				ext[slot] = true
				continue
			}
			if j == i {
				return nil, fmt.Errorf("pipeline: phase %q needs its own output %q", p.Name, slot)
			}
			if !seen[j] {
				seen[j] = true
				m.deps[i] = append(m.deps[i], j)
			}
		}
		sort.Ints(m.deps[i])
	}
	for slot := range ext {
		m.external = append(m.external, slot)
	}
	sort.Strings(m.external)
	if err := m.checkAcyclic(); err != nil {
		return nil, err
	}
	return m, nil
}

// checkAcyclic rejects dependency cycles (Kahn's algorithm).
func (m *Manager) checkAcyclic() error {
	indeg := make([]int, len(m.phases))
	succs := make([][]int, len(m.phases))
	for i, ds := range m.deps {
		for _, j := range ds {
			succs[j] = append(succs[j], i)
			indeg[i]++
		}
	}
	var ready []int
	for i := range m.phases {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	done := 0
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		done++
		for _, j := range succs[i] {
			if indeg[j]--; indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if done != len(m.phases) {
		var stuck []string
		for i, p := range m.phases {
			if indeg[i] > 0 {
				stuck = append(stuck, p.Name)
			}
		}
		return fmt.Errorf("pipeline: dependency cycle among phases %v", stuck)
	}
	return nil
}

// Run executes the DAG over st. Phases whose dependencies are satisfied run
// concurrently unless m.Sequential is set. On the first failure (including
// ctx cancellation) no new phases start, in-flight phases are drained, and
// the error is returned as a *PhaseError carrying the completed set. The
// Report covers every phase that completed, even on error.
func (m *Manager) Run(ctx context.Context, st *State) (*Report, error) {
	if st == nil {
		st = NewState()
	}
	rep := newReport()
	for _, slot := range m.external {
		if _, ok := st.Value(slot); !ok {
			return rep, fmt.Errorf("pipeline: slot %q has no providing phase and is not seeded", slot)
		}
	}

	n := len(m.phases)
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, ds := range m.deps {
		indeg[i] = len(ds)
		for _, j := range ds {
			succs[j] = append(succs[j], i)
		}
	}
	var ready []int
	for i := n - 1; i >= 0; i-- {
		if indeg[i] == 0 {
			ready = append(ready, i) // reversed; popped back-to-front in order
		}
	}

	type doneMsg struct {
		idx int
		err error
	}
	doneCh := make(chan doneMsg)
	running := 0
	var firstErr *PhaseError

	// run executes one phase with panic containment: a panic anywhere in
	// Run (or the Bytes probe) is recovered into a *panicError instead of
	// unwinding through the Manager's goroutine and killing the process.
	run := func(i int) (msg doneMsg) {
		p := m.phases[i]
		if err := ctx.Err(); err != nil {
			return doneMsg{i, err}
		}
		defer func() {
			if r := recover(); r != nil {
				msg = doneMsg{i, &panicError{val: r, stack: debug.Stack()}}
			}
		}()
		t0 := time.Now()
		if err := p.Run(ctx, st); err != nil {
			return doneMsg{i, err}
		}
		var b uint64
		if p.Bytes != nil {
			b = p.Bytes(st)
		}
		rep.record(p.Name, time.Since(t0), b)
		if p.Subphases != nil {
			for _, sp := range p.Subphases(st) {
				rep.record(p.Name+"."+sp.Name, sp.Time, sp.Bytes)
			}
		}
		return doneMsg{i, nil}
	}

	launch := func() {
		for len(ready) > 0 && firstErr == nil {
			i := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			running++
			go func(i int) { doneCh <- run(i) }(i)
			if m.Sequential {
				// One phase at a time: wait for its message before the next.
				return
			}
		}
	}

	launch()
	for running > 0 {
		msg := <-doneCh
		running--
		if msg.err != nil {
			if firstErr == nil {
				firstErr = &PhaseError{Phase: m.phases[msg.idx].Name, Err: msg.err, Engine: m.Engine}
				var pv *panicError
				if errors.As(msg.err, &pv) {
					firstErr.Panic = true
					firstErr.Stack = pv.stack
				}
			}
			continue
		}
		for _, j := range succs[msg.idx] {
			if indeg[j]--; indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
		launch()
	}
	if firstErr != nil {
		firstErr.Completed = rep.Order()
		return rep, firstErr
	}
	return rep, nil
}

// ErrCancelled reports whether err stems from context cancellation or
// deadline expiry (possibly wrapped in a *PhaseError).
func ErrCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ErrOverBudget reports whether err stems from a resource-budget trip
// (engine.ErrOverBudget, possibly wrapped in a *PhaseError).
func ErrOverBudget(err error) bool {
	return errors.Is(err, engine.ErrOverBudget)
}

// ErrPanicked reports whether err is (or wraps) a recovered phase panic.
func ErrPanicked(err error) bool {
	var pe *PhaseError
	if errors.As(err, &pe) {
		return pe.Panic
	}
	var pv *panicError
	return errors.As(err, &pv)
}

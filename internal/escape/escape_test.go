package escape_test

import (
	"testing"

	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/threads"
)

// setup compiles src and runs the escape analysis over its thread model.
func setup(t *testing.T, src string) (*threads.Model, *escape.Result) {
	t.Helper()
	b, err := pipeline.FromSource("test.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return b.Model, escape.Analyze(b.Model)
}

// globalID resolves a global object by name.
func globalID(t *testing.T, prog *ir.Program, name string) ir.ObjID {
	t.Helper()
	for _, o := range prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o.ID
		}
	}
	t.Fatalf("no global %s", name)
	return 0
}

// classSrc exercises all three lattice points in one program: g is written
// by two parallel threads (Shared), h is written by wa and then — after wa
// is fully joined — by wc (HandedOff), l and the never-accessed u stay
// ThreadLocal.
const classSrc = `
int g; int h; int l; int u;

void wa(void *arg) { g = 1; h = 1; }
void wb(void *arg) { g = 2; }
void wc(void *arg) { h = 2; }

int main() {
	l = 3;
	thread_t ta; thread_t tb;
	ta = spawn(wa, NULL);
	tb = spawn(wb, NULL);
	join(ta);
	join(tb);
	thread_t tc;
	tc = spawn(wc, NULL);
	join(tc);
	return 0;
}
`

func TestClassification(t *testing.T) {
	m, r := setup(t, classSrc)
	for name, want := range map[string]escape.Class{
		"g": escape.Shared,
		"h": escape.HandedOff,
		"l": escape.ThreadLocal,
		"u": escape.ThreadLocal,
	} {
		id := globalID(t, m.Prog, name)
		if got := r.ClassOf(id); got != want {
			t.Errorf("ClassOf(%s) = %v, want %v", name, got, want)
		}
	}
	if r.NumLocal+r.NumHandedOff+r.NumShared != len(m.Prog.Objects) {
		t.Errorf("counters %d+%d+%d do not cover %d objects",
			r.NumLocal, r.NumHandedOff, r.NumShared, len(m.Prog.Objects))
	}
	if r.NumShared == 0 || r.NumHandedOff == 0 || r.NumLocal == 0 {
		t.Errorf("expected all three classes populated: local=%d handedoff=%d shared=%d",
			r.NumLocal, r.NumHandedOff, r.NumShared)
	}
	g := globalID(t, m.Prog, "g")
	tids := r.AccessorThreads(g)
	if len(tids) < 2 {
		t.Errorf("AccessorThreads(g) = %v, want >= 2 threads", tids)
	}
	for i := 1; i < len(tids); i++ {
		if tids[i-1] >= tids[i] {
			t.Errorf("AccessorThreads(g) = %v, not strictly sorted", tids)
		}
	}
	if r.Bytes() == 0 {
		t.Error("Bytes() = 0")
	}
}

// TestMultiSelfShared: two instances of one loop-forked thread may run in
// parallel with each other, so an object only that thread accesses is
// still Shared (the self-pair).
func TestMultiSelfShared(t *testing.T) {
	m, r := setup(t, `
int v;

void worker(void *arg) { v = 1; }

int main() {
	thread_t pool[4];
	int i;
	for (i = 0; i < 4; i++) {
		pool[i] = spawn(worker, NULL);
	}
	for (i = 0; i < 4; i++) {
		join(pool[i]);
	}
	return 0;
}
`)
	if got := r.ClassOf(globalID(t, m.Prog, "v")); got != escape.Shared {
		t.Errorf("ClassOf(v) = %v, want Shared", got)
	}
}

func TestInterferesUnder(t *testing.T) {
	m, r := setup(t, classSrc)
	g := globalID(t, m.Prog, "g")
	h := globalID(t, m.Prog, "h")
	l := globalID(t, m.Prog, "l")
	for _, mm := range []string{"", "sc", "tso", "pso"} {
		if !r.InterferesUnder(g, mm) {
			t.Errorf("Shared g must interfere under %q", mm)
		}
		if r.InterferesUnder(l, mm) {
			t.Errorf("ThreadLocal l must never interfere (under %q)", mm)
		}
	}
	// HandedOff flows only along HB edges: invisible under SC, visible
	// under relaxed models where the HB edge does not order memory.
	for mm, want := range map[string]bool{"": false, "sc": false, "tso": true, "pso": true} {
		if got := r.InterferesUnder(h, mm); got != want {
			t.Errorf("InterferesUnder(h, %q) = %v, want %v", mm, got, want)
		}
	}
}

func TestOutOfRangeIsShared(t *testing.T) {
	_, r := setup(t, `int main() { return 0; }`)
	if got := r.ClassOf(ir.ObjID(1 << 20)); got != escape.Shared {
		t.Errorf("out-of-range ClassOf = %v, want the conservative Shared", got)
	}
	if !r.IsShared(ir.ObjID(1 << 20)) {
		t.Error("out-of-range IsShared = false, want true")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[escape.Class]string{
		escape.ThreadLocal: "local",
		escape.HandedOff:   "handedoff",
		escape.Shared:      "shared",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

// checkInvariants asserts the classification's semantic invariants from
// the public API alone: counters partition the object space, and any
// object two MHP-parallel threads both dereference is Shared.
func checkInvariants(t *testing.T, m *threads.Model, r *escape.Result) {
	t.Helper()
	if r.NumLocal+r.NumHandedOff+r.NumShared != len(m.Prog.Objects) {
		t.Fatalf("counters %d+%d+%d do not cover %d objects",
			r.NumLocal, r.NumHandedOff, r.NumShared, len(m.Prog.Objects))
	}
	byID := map[int]*threads.Thread{}
	for _, th := range m.Threads {
		byID[th.ID] = th
	}
	for _, o := range m.Prog.Objects {
		tids := r.AccessorThreads(o.ID)
		for i, a := range tids {
			ta := byID[a]
			if ta == nil {
				t.Fatalf("object %s: unknown accessor thread %d", o, a)
			}
			for _, b := range tids[i:] {
				tb := byID[b]
				if a == b && !ta.Multi {
					continue
				}
				if m.MayHappenInParallelThreads(ta, tb) && !r.IsShared(o.ID) {
					t.Fatalf("object %s: MHP accessors %d,%d but class %v",
						o, a, b, r.ClassOf(o.ID))
				}
			}
		}
	}
}

// FuzzEscape: the escape analysis is panic-free on anything that compiles,
// and its classification invariants hold on arbitrary programs.
func FuzzEscape(f *testing.F) {
	f.Add(classSrc)
	f.Add(`int v; void w(void *a) { v = 1; } int main() { thread_t t; t = spawn(w, NULL); v = 2; join(t); return 0; }`)
	f.Add(`lock_t m; int *gp; void w(void *a) { int s; lock(&m); gp = &s; unlock(&m); } int main() { thread_t t; t = spawn(w, NULL); join(t); return 0; }`)
	f.Add(`}{`)
	f.Fuzz(func(t *testing.T, src string) {
		b, err := pipeline.FromSource("fuzz.mc", src)
		if err != nil {
			return
		}
		r := escape.Analyze(b.Model)
		checkInvariants(t, b.Model, r)
	})
}

// Package escape implements the thread-escape/sharedness analysis: a
// classification of every abstract object into ThreadLocal, HandedOff, or
// Shared, computed over the pre-analysis results (Andersen points-to plus
// the static thread model). It is the pruning oracle the interference-
// bearing engines consult — fsam's thread-aware def-use construction, the
// thread-modular engine's interference publication, the CFG-free engine's
// mutual-concurrency reach admission, and the race detector's pair
// enumeration all skip objects the oracle proves non-shared — and the fact
// base of the localonlylock/unsyncshared/escapeleak checkers.
//
// The escape propagation itself (through globals, stores into escaping
// objects, spawn arguments, and callee flows) is exactly the transitive
// closure Andersen's inclusion solve has already computed: if a thread can
// reach an object through any chain of globals, heap cells, or fork
// arguments and dereference it, the pre-analysis puts the object in that
// dereference's points-to set. What remains here is the classification
// post-pass: attribute every dereference site to the runtime thread
// instances that may execute it, and compare accessor instances pairwise
// under the thread model's may-happen-in-parallel relation.
//
// Lattice (ThreadLocal < HandedOff < Shared):
//
//   - ThreadLocal: at most one runtime thread instance ever dereferences
//     the object. No interference is possible under any memory model.
//   - HandedOff: several thread instances dereference the object, but
//     every pair is ordered by thread-level happens-before (fork-argument
//     handoff to a fully-joined thread, join-result readback). Value may
//     flow across threads, but only along HB edges — never concurrently.
//   - Shared: some pair of accessor instances (including two instances of
//     one multi-forked thread) may happen in parallel.
//
// Soundness of the attribution mirrors the engines it prunes: statements
// of functions no thread reaches are attributed to main (thread 0),
// exactly as the thread-modular engine's funcThreads fallback does, so a
// pruned engine never drops a flow the unpruned engine would have kept.
package escape

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/threads"
)

// Class is an object's sharedness verdict.
type Class uint8

const (
	// ThreadLocal objects are dereferenced by at most one runtime thread
	// instance.
	ThreadLocal Class = iota
	// HandedOff objects reach several thread instances, every pair of
	// which is ordered by thread-level happens-before.
	HandedOff
	// Shared objects have a pair of accessor instances that may happen in
	// parallel.
	Shared
)

func (c Class) String() string {
	switch c {
	case ThreadLocal:
		return "local"
	case HandedOff:
		return "handedoff"
	case Shared:
		return "shared"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Result is the computed classification.
type Result struct {
	Model *threads.Model

	// classes is indexed by ir.ObjID. Objects materialized after the
	// analysis ran (lazy field objects) fall off the end and are answered
	// conservatively as Shared.
	classes []Class

	// accessors[id] lists the distinct accessor thread IDs, sorted.
	accessors [][]int

	// NumLocal, NumHandedOff and NumShared count the classified objects.
	NumLocal     int
	NumHandedOff int
	NumShared    int
}

// Analyze classifies every object of the model's program.
func Analyze(m *threads.Model) *Result {
	n := len(m.Prog.Objects)
	r := &Result{
		Model:     m,
		classes:   make([]Class, n),
		accessors: make([][]int, n),
	}

	// Attribute every function to the threads that may execute it. A
	// function no thread reaches is attributed to main, mirroring the
	// thread-modular engine's slice attribution, so pruning decisions and
	// engine behavior can never disagree about dead code.
	funcThreads := map[*ir.Function][]int{}
	for _, t := range m.Threads {
		seen := map[*ir.Function]bool{}
		for fc := range m.Funcs(t) {
			if !seen[fc.Func] {
				seen[fc.Func] = true
				funcThreads[fc.Func] = append(funcThreads[fc.Func], t.ID)
			}
		}
	}
	for _, f := range m.Prog.Funcs {
		if len(funcThreads[f]) == 0 {
			funcThreads[f] = []int{0}
		}
	}

	// Collect accessor threads per object: every dereference of an address
	// whose Andersen points-to set contains the object counts each thread
	// executing the enclosing function as an accessor. Lock, unlock, and
	// free sites count too — they touch the object's memory, and including
	// them only widens the Shared class (never unsoundly narrows it).
	acc := make([]map[int]bool, n)
	record := func(addr *ir.Var, tids []int) {
		if addr == nil {
			return
		}
		m.Pre.PointsToVar(addr).ForEach(func(id uint32) {
			if int(id) >= n {
				return
			}
			if acc[id] == nil {
				acc[id] = map[int]bool{}
			}
			for _, tid := range tids {
				acc[id][tid] = true
			}
		})
	}
	for _, f := range m.Prog.Funcs {
		tids := funcThreads[f]
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s := s.(type) {
				case *ir.Load:
					record(s.Addr, tids)
				case *ir.Store:
					record(s.Addr, tids)
				case *ir.Lock:
					record(s.Ptr, tids)
				case *ir.Unlock:
					record(s.Ptr, tids)
				case *ir.Free:
					record(s.Ptr, tids)
				}
			}
		}
	}

	for id := range m.Prog.Objects {
		set := acc[id]
		tids := make([]int, 0, len(set))
		for tid := range set {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		r.accessors[id] = tids

		// Instances counts runtime thread instances (a multi-forked thread
		// is at least two); shared holds once any accessor pair — including
		// two instances of one Multi thread — may run in parallel.
		instances := 0
		shared := false
		for i, a := range tids {
			ta := m.ThreadByID(a)
			w := 1
			if ta.Multi {
				w = 2
			}
			instances += w
			for _, b := range tids[i:] {
				if m.MayHappenInParallelThreads(ta, m.ThreadByID(b)) {
					shared = true
				}
			}
		}
		switch {
		case shared:
			r.classes[id] = Shared
			r.NumShared++
		case instances <= 1:
			r.classes[id] = ThreadLocal
			r.NumLocal++
		default:
			r.classes[id] = HandedOff
			r.NumHandedOff++
		}
	}
	return r
}

// ClassOf returns the object's classification. Objects the analysis never
// saw (materialized later) are conservatively Shared.
func (r *Result) ClassOf(id ir.ObjID) Class {
	if int(id) >= len(r.classes) {
		return Shared
	}
	return r.classes[id]
}

// IsShared reports whether the object may be accessed by two thread
// instances that run in parallel — the only objects for which
// statement-level interference edges can exist.
func (r *Result) IsShared(id ir.ObjID) bool { return r.ClassOf(id) == Shared }

// InterferesUnder reports whether the object's cross-thread store
// publications can be absorbed under the thread-modular engine's
// interference gate for the given memory model. Under sc the gate is
// thread-level MHP, which no HandedOff accessor pair passes; under the
// relaxed models (tso, pso) the gate also admits happens-before-ordered
// pairs, so HandedOff objects must keep publishing. ThreadLocal objects
// have no cross-instance absorber under any model.
func (r *Result) InterferesUnder(id ir.ObjID, memModel string) bool {
	switch r.ClassOf(id) {
	case Shared:
		return true
	case HandedOff:
		return memModel != "" && memModel != "sc"
	default:
		return false
	}
}

// AccessorThreads returns the sorted IDs of the threads that may
// dereference the object (empty for never-dereferenced objects).
func (r *Result) AccessorThreads(id ir.ObjID) []int {
	if int(id) >= len(r.accessors) {
		return nil
	}
	return r.accessors[id]
}

// Bytes reports the approximate footprint of the classification.
func (r *Result) Bytes() uint64 {
	total := uint64(len(r.classes))
	for _, a := range r.accessors {
		total += 24 + uint64(len(a))*8
	}
	return total
}

package interp_test

import (
	"testing"

	fsam "repro"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/randprog"
	"repro/internal/workload"
)

// validate runs prog under several schedules and asserts that every load
// observation is covered by the analysis' points-to set for that load.
func validate(t *testing.T, label, src string, schedules int) {
	t.Helper()
	a, err := fsam.AnalyzeSource(label, src, fsam.Config{})
	if err != nil {
		t.Fatalf("%s: analyze: %v", label, err)
	}
	completed := 0
	for seed := int64(0); seed < int64(schedules); seed++ {
		r := interp.Run(a.Prog, seed, 0)
		if !r.Completed {
			continue
		}
		completed++
		for _, obs := range r.Observations {
			if obs.Value.Obj == nil {
				continue
			}
			pt := a.Result.PointsToVar(obs.Load.Dst)
			if !pt.Has(uint32(obs.Value.Obj.ID)) {
				t.Errorf("%s seed %d: load [%s] observed %s, FSAM pt = %s\n%s",
					label, seed, obs.Load, obs.Value, pt, src)
				return
			}
			// The pre-analysis must cover it too (it is an upper bound).
			pre := a.Base.Pre.PointsToVar(obs.Load.Dst)
			if !pre.Has(uint32(obs.Value.Obj.ID)) {
				t.Errorf("%s seed %d: load [%s] observed %s beyond Andersen %s",
					label, seed, obs.Load, obs.Value, pre)
				return
			}
		}
	}
	if completed == 0 {
		t.Logf("%s: no schedule completed (fuel/deadlock); vacuous", label)
	}
}

// TestSoundnessOnPaperExamples validates FSAM against concrete executions
// of the paper's worked examples.
func TestSoundnessOnPaperExamples(t *testing.T) {
	examples := map[string]string{
		"fig1a": `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) { *p = q; }
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	join(t);
	return 0;
}`,
		"fig1c": `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) { *p = q; }
int main() {
	p = &x; q = &y; r = &z;
	*p = r;
	thread_t t;
	t = spawn(foo, NULL);
	join(t);
	c = *p;
	return 0;
}`,
		"fig1e": `
int x; int y; int z; int v;
int *p; int *q; int *r; int *u; int *c;
lock_t l1;
void foo(void *arg) {
	lock(&l1);
	*p = u;
	*p = q;
	unlock(&l1);
}
int main() {
	p = &x; q = &y; r = &z; u = &v;
	*p = r;
	thread_t t;
	t = spawn(foo, NULL);
	lock(&l1);
	c = *p;
	unlock(&l1);
	join(t);
	return 0;
}`,
	}
	for label, src := range examples {
		validate(t, label, src, 40)
	}
}

// TestSoundnessOnRandomPrograms validates against random multithreaded
// programs under many schedules.
func TestSoundnessOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := randprog.Threaded(seed, 2)
		validate(t, "rand", src, 12)
	}
}

// TestSoundnessOnSequentialPrograms cross-checks the interpreter against
// the generator's own concrete semantics.
func TestSoundnessOnSequentialPrograms(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src, want := randprog.Sequential(seed, 3, 4, 2, 20)
		prog, err := pipeline.Compile("seq.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		r := interp.Run(prog, 0, 0)
		if !r.Completed {
			t.Fatalf("seed %d: straight-line program must complete", seed)
		}
		// The interpreter's final memory must match the generator's
		// concrete state for every pointer global.
		for _, o := range prog.Objects {
			if o.Kind != ir.ObjGlobal {
				continue
			}
			pointee, tracked := want[o.Name]
			if !tracked {
				continue
			}
			got := r.FinalMem[o]
			if pointee == "" {
				if got.Obj != nil {
					t.Errorf("seed %d: %s = %s, want null", seed, o.Name, got)
				}
			} else if got.Obj == nil || got.Obj.Name != pointee {
				t.Errorf("seed %d: %s = %s, want %s", seed, o.Name, got, pointee)
			}
		}
	}
}

// TestSoundnessOnWorkloads validates one small workload per family.
func TestSoundnessOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"word_count", "radiosity", "ferret"} {
		src, err := workload.Generate(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		validate(t, name, src, 4)
	}
}

// TestInterpreterMechanics covers scheduler/semantics corners directly.
func TestInterpreterMechanics(t *testing.T) {
	prog, err := pipeline.Compile("t.mc", `
int x; int y;
int *p;
lock_t m;
void w(void *arg) {
	lock(&m);
	*p = &y;
	unlock(&m);
}
int main() {
	p = &x;
	*p = &x;
	thread_t t;
	t = spawn(w, NULL);
	lock(&m);
	*p = &x;
	unlock(&m);
	join(t);
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for seed := int64(0); seed < 30; seed++ {
		r := interp.Run(prog, seed, 0)
		if r.Deadlocked {
			t.Fatalf("seed %d: lock discipline must not deadlock", seed)
		}
		if r.Completed {
			completed++
			if r.Steps == 0 {
				t.Error("no steps in a completed run")
			}
		}
	}
	if completed == 0 {
		t.Fatal("no schedule completed")
	}
}

func TestJoinReallyWaits(t *testing.T) {
	// After join(t), the worker's store must be visible: every completed
	// schedule ends with x3 pointing to y (the worker wrote last and main
	// read after the join).
	prog, err := pipeline.Compile("t.mc", `
int y;
int *g;
void w(void *arg) { g = &y; }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		r := interp.Run(prog, seed, 0)
		if !r.Completed {
			continue
		}
		var gObj *ir.Object
		for _, o := range prog.Objects {
			if o.Name == "g" {
				gObj = o
			}
		}
		if v := r.FinalMem[gObj]; v.Obj == nil || v.Obj.Name != "y" {
			t.Fatalf("seed %d: after join, g = %s, want y", seed, v)
		}
	}
}

func TestFuelExhaustion(t *testing.T) {
	prog, err := pipeline.Compile("t.mc", `
int main() {
	while (1) { }
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r := interp.Run(prog, 1, 100)
	if r.Completed {
		// The random branch chooser may escape while(1) since conditions
		// are unmodeled; either outcome is acceptable, but with fuel 100 it
		// must terminate quickly.
		return
	}
	if r.Steps > 100 {
		t.Error("fuel not respected")
	}
}

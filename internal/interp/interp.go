// Package interp is a concrete interpreter for the partial-SSA IR, used to
// validate the pointer analyses: it executes a multithreaded program under
// a seeded thread schedule (and seeded branch outcomes, since the IR does
// not model integer values) and records, for every executed Load, the
// pointer value observed. Soundness of an analysis means every observation
// is contained in the analysis' points-to set for that load's destination.
//
// Abstraction-faithful semantics: each abstract object is one memory cell
// (all allocations of a malloc site share a cell; arrays are one cell;
// struct fields are separate cells). Any behaviour of this machine is a
// behaviour the analyses must cover. Locks provide real mutual exclusion
// and joins really wait, so the machine generates no executions the
// Pthreads model forbids.
package interp

import (
	"fmt"

	"repro/internal/ir"
)

// Value is a runtime pointer value: the object it addresses (nil for null)
// plus, for thread handles, the concrete thread it names.
type Value struct {
	Obj *ir.Object
	Tid int // concrete thread id for handle values; -1 otherwise
}

// Null is the null pointer.
var Null = Value{Tid: -1}

// Observation records one executed load and the value it read.
type Observation struct {
	Load  *ir.Load
	Value Value
}

// Result summarizes one run.
type Result struct {
	// Completed is true when main returned within the step budget with no
	// undefined behaviour.
	Completed bool
	// Deadlocked is true when no thread could make progress.
	Deadlocked bool
	// UB is true when the run hit undefined behaviour (a null dereference)
	// and was abandoned.
	UB bool
	// Steps is the number of statements executed.
	Steps int
	// Observations lists every load executed, with the value read.
	Observations []Observation
	// ParallelPairs lists memory-access statement pairs observed to be
	// truly concurrent: the two accesses executed in adjacent steps by
	// different threads, so both were enabled simultaneously and a sound
	// MHP analysis must report them may-happen-in-parallel.
	ParallelPairs [][2]ir.Stmt
	// FinalMem maps each object to its content at the end of the run
	// (at main's return for completed runs).
	FinalMem map[*ir.Object]Value
}

// rng is a deterministic generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// frame is one activation record.
type frame struct {
	fn      *ir.Function
	blk     *ir.Block
	stmtIdx int
	prevBlk *ir.Block // for phi resolution
	vars    map[ir.VarID]Value
	retDst  *ir.Var // caller variable awaiting this frame's return
}

// thread is one concurrent execution.
type thread struct {
	id     int
	frames []*frame
	done   bool
	// blockedJoin is the thread id being joined (-1 when not blocked).
	blockedJoin int
	// blockedLock is the lock object being acquired (nil when not).
	blockedLock *ir.Object
	// retValue carries a Ret value across the frame pop.
	retValue Value
	hasRet   bool
}

// machine is the whole-program state.
type machine struct {
	prog    *ir.Program
	rng     *rng
	mem     map[*ir.Object]Value
	locks   map[*ir.Object]int // lock object → holder thread id
	threads []*thread
	result  *Result
	fuel    int
	ub      bool // undefined behaviour encountered (null deref etc.)

	// lastMem tracks the previous step's memory access for parallel-pair
	// recording.
	lastMemStmt   ir.Stmt
	lastMemThread int
	pairSeen      map[[2]ir.StmtID]bool
	// prevWasMem / curWasMem implement the adjacency check: a pair is
	// recorded only when the immediately preceding step was a memory
	// access (by another thread).
	prevWasMem bool
	curWasMem  bool
}

// Run executes prog under the schedule derived from seed, with at most
// fuel statement executions (<=0 means a generous default).
func Run(prog *ir.Program, seed int64, fuel int) *Result {
	if fuel <= 0 {
		fuel = 200000
	}
	m := &machine{
		prog:          prog,
		rng:           &rng{s: uint64(seed)*2 + 1},
		mem:           map[*ir.Object]Value{},
		locks:         map[*ir.Object]int{},
		result:        &Result{FinalMem: map[*ir.Object]Value{}},
		fuel:          fuel,
		lastMemThread: -1,
		pairSeen:      map[[2]ir.StmtID]bool{},
	}
	if prog.Main == nil {
		return m.result
	}
	m.spawn(prog.Main, Null, nil)
	m.run()
	m.result.FinalMem = m.mem
	m.result.UB = m.ub
	return m.result
}

// spawn creates a thread running fn with one argument.
func (m *machine) spawn(fn *ir.Function, arg Value, _ *thread) *thread {
	t := &thread{id: len(m.threads), blockedJoin: -1}
	f := &frame{fn: fn, blk: fn.Entry, vars: map[ir.VarID]Value{}}
	if len(fn.Params) > 0 {
		f.vars[fn.Params[0].ID] = arg
	}
	t.frames = append(t.frames, f)
	m.threads = append(m.threads, t)
	return t
}

// runnable reports whether t can take a step right now.
func (m *machine) runnable(t *thread) bool {
	if t.done {
		return false
	}
	if t.blockedJoin >= 0 {
		return m.threads[t.blockedJoin].done
	}
	if t.blockedLock != nil {
		holder, held := m.locks[t.blockedLock]
		return !held || holder == t.id
	}
	return true
}

func (m *machine) run() {
	mainThread := m.threads[0]
	for m.fuel > 0 && !m.ub {
		if mainThread.done {
			m.result.Completed = true
			return
		}
		// Collect runnable threads.
		var ready []*thread
		for _, t := range m.threads {
			if m.runnable(t) {
				ready = append(ready, t)
			}
		}
		if len(ready) == 0 {
			m.result.Deadlocked = true
			return
		}
		t := ready[m.rng.intn(len(ready))]
		m.prevWasMem = m.curWasMem
		m.curWasMem = false
		m.step(t)
		m.fuel--
		m.result.Steps++
	}
}

// val reads a variable in the current frame (undefined variables are null).
func (f *frame) val(v *ir.Var) Value {
	if v == nil {
		return Null
	}
	if x, ok := f.vars[v.ID]; ok {
		return x
	}
	return Null
}

// step executes one statement of thread t.
func (m *machine) step(t *thread) {
	// Clear a resolved block.
	if t.blockedJoin >= 0 {
		t.blockedJoin = -1
	}
	if t.blockedLock != nil {
		// The lock is free (runnable said so): acquire it.
		m.locks[t.blockedLock] = t.id
		t.blockedLock = nil
		m.advance(t)
		return
	}

	f := t.frames[len(t.frames)-1]
	if f.stmtIdx >= len(f.blk.Stmts) {
		m.jump(t, f)
		return
	}
	s := f.blk.Stmts[f.stmtIdx]

	switch s := s.(type) {
	case *ir.AddrOf:
		f.vars[s.Dst.ID] = Value{Obj: s.Obj, Tid: -1}

	case *ir.Copy:
		f.vars[s.Dst.ID] = f.val(s.Src)

	case *ir.Phi:
		// Select the incoming matching the predecessor block.
		idx := -1
		for i, p := range f.blk.Preds {
			if p == f.prevBlk {
				idx = i
				break
			}
		}
		if idx >= 0 && idx < len(s.Incoming) && s.Incoming[idx] != nil {
			f.vars[s.Dst.ID] = f.val(s.Incoming[idx])
		} else {
			f.vars[s.Dst.ID] = Null
		}

	case *ir.Gep:
		base := f.val(s.Base)
		if base.Obj == nil {
			f.vars[s.Dst.ID] = Null
		} else {
			f.vars[s.Dst.ID] = Value{Obj: m.prog.FieldObj(base.Obj, s.Field), Tid: -1}
		}

	case *ir.Load:
		addr := f.val(s.Addr)
		if addr.Obj == nil {
			m.ub = true // null dereference: abandon the run
			return
		}
		v := m.mem[addr.Obj]
		f.vars[s.Dst.ID] = v
		m.result.Observations = append(m.result.Observations, Observation{Load: s, Value: v})
		m.noteMemStep(t, s)

	case *ir.Store:
		addr := f.val(s.Addr)
		if addr.Obj == nil {
			m.ub = true
			return
		}
		m.mem[addr.Obj] = f.val(s.Src)
		m.noteMemStep(t, s)

	case *ir.Call:
		callee := s.Callee
		if callee == nil {
			fv := f.val(s.CalleeVar)
			if fv.Obj != nil && fv.Obj.Kind == ir.ObjFunc {
				callee = fv.Obj.Func
			}
		}
		if callee == nil || callee.Entry == nil {
			// External/unresolved call: no-op with null result.
			if s.Dst != nil {
				f.vars[s.Dst.ID] = Null
			}
			break
		}
		nf := &frame{fn: callee, blk: callee.Entry, vars: map[ir.VarID]Value{}, retDst: s.Dst}
		for i, p := range callee.Params {
			if i < len(s.Args) {
				nf.vars[p.ID] = f.val(s.Args[i])
			}
		}
		f.stmtIdx++ // resume after the call on return
		t.frames = append(t.frames, nf)
		return

	case *ir.Ret:
		t.retValue = f.val(s.Val)
		t.hasRet = s.Val != nil
		m.popFrame(t)
		return

	case *ir.Fork:
		routine := s.Routine
		if routine == nil {
			fv := f.val(s.RoutineVar)
			if fv.Obj != nil && fv.Obj.Kind == ir.ObjFunc {
				routine = fv.Obj.Func
			}
		}
		if routine != nil && routine.Entry != nil {
			nt := m.spawn(routine, f.val(s.Arg), t)
			if s.Dst != nil {
				f.vars[s.Dst.ID] = Value{Obj: s.Handle, Tid: nt.id}
			}
		} else if s.Dst != nil {
			f.vars[s.Dst.ID] = Null
		}

	case *ir.Join:
		h := f.val(s.Handle)
		if h.Tid >= 0 && h.Tid < len(m.threads) {
			if !m.threads[h.Tid].done {
				t.blockedJoin = h.Tid
				return // retry this statement when unblocked... advance below
			}
		}
		// Joining an invalid handle is UB in Pthreads; treat as no-op.

	case *ir.Lock:
		lv := f.val(s.Ptr)
		if lv.Obj == nil {
			m.ub = true
			return
		}
		if holder, held := m.locks[lv.Obj]; held && holder != t.id {
			t.blockedLock = lv.Obj
			return // acquired when unblocked
		}
		m.locks[lv.Obj] = t.id

	case *ir.Unlock:
		lv := f.val(s.Ptr)
		if lv.Obj != nil {
			if holder, held := m.locks[lv.Obj]; held && holder == t.id {
				delete(m.locks, lv.Obj)
			}
		}
	}

	m.advance(t)
}

// noteMemStep records a memory access and, when the previous step was a
// memory access by a different thread, the resulting concurrent pair (both
// statements were enabled at the earlier step, so they are unordered).
func (m *machine) noteMemStep(t *thread, s ir.Stmt) {
	if m.lastMemStmt != nil && m.lastMemThread != t.id && m.prevWasMem {
		key := [2]ir.StmtID{m.lastMemStmt.ID(), s.ID()}
		if !m.pairSeen[key] {
			m.pairSeen[key] = true
			m.result.ParallelPairs = append(m.result.ParallelPairs, [2]ir.Stmt{m.lastMemStmt, s})
		}
	}
	m.lastMemStmt = s
	m.lastMemThread = t.id
	m.curWasMem = true
}

// advance moves past the current statement; a Join that blocked stays put.
func (m *machine) advance(t *thread) {
	f := t.frames[len(t.frames)-1]
	f.stmtIdx++
	if f.stmtIdx >= len(f.blk.Stmts) {
		m.jump(t, f)
	}
}

// jump transfers control at a block end: random successor (branch outcomes
// are unmodeled), or function return when the block has none.
func (m *machine) jump(t *thread, f *frame) {
	if len(f.blk.Succs) == 0 {
		// Fall-off without Ret (builder normally prevents this).
		t.retValue = Null
		t.hasRet = false
		m.popFrame(t)
		return
	}
	next := f.blk.Succs[m.rng.intn(len(f.blk.Succs))]
	f.prevBlk = f.blk
	f.blk = next
	f.stmtIdx = 0
}

// popFrame returns from the top frame, delivering the return value.
func (m *machine) popFrame(t *thread) {
	top := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		t.done = true
		// Release any locks still held by the thread (a terminated holder
		// would otherwise deadlock the schedule; real Pthreads would too,
		// but for validation we prefer completed runs).
		for obj, holder := range m.locks {
			if holder == t.id {
				delete(m.locks, obj)
			}
		}
		return
	}
	caller := t.frames[len(t.frames)-1]
	if top.retDst != nil {
		if t.hasRet {
			caller.vars[top.retDst.ID] = t.retValue
		} else {
			caller.vars[top.retDst.ID] = Null
		}
	}
}

// String renders a value for diagnostics.
func (v Value) String() string {
	if v.Obj == nil {
		return "null"
	}
	if v.Tid >= 0 {
		return fmt.Sprintf("%s#t%d", v.Obj.Name, v.Tid)
	}
	return v.Obj.Name
}

package interp_test

import (
	"testing"

	fsam "repro"
	"repro/internal/interp"
	"repro/internal/randprog"
	"repro/internal/workload"
)

// validateMHP runs src under schedules and asserts that every concurrent
// memory-access pair observed by the interpreter (two accesses executed in
// adjacent steps by different threads, hence unordered) is reported
// may-happen-in-parallel by the interleaving analysis.
func validateMHP(t *testing.T, label, src string, schedules int) int {
	t.Helper()
	a, err := fsam.AnalyzeSource(label, src, fsam.Config{})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	pairs := 0
	for seed := int64(0); seed < int64(schedules); seed++ {
		r := interp.Run(a.Prog, seed, 0)
		for _, pr := range r.ParallelPairs {
			pairs++
			if !a.MHP.MHPStmts(pr[0], pr[1]) {
				t.Errorf("%s seed %d: observed concurrent pair not MHP:\n  [%s]\n  [%s]",
					label, seed, pr[0], pr[1])
				return pairs
			}
		}
	}
	return pairs
}

func TestMHPSoundOnFig8(t *testing.T) {
	src := `
int s1g; int s2g; int s3g; int s4g; int s5g;
void bar(void *a) { s5g = 1; }
void foo1(void *a) {
	thread_t t3;
	t3 = spawn(bar, NULL);
	join(t3);
}
void foo2(void *a) {
	bar(NULL);
	s4g = 1;
}
int main() {
	s1g = 1;
	thread_t t1;
	t1 = spawn(foo1, NULL);
	s2g = 1;
	join(t1);
	thread_t t2;
	t2 = spawn(foo2, NULL);
	s3g = 1;
	join(t2);
	return 0;
}
`
	validateMHP(t, "fig8", src, 60)
}

func TestMHPSoundOnRandomPrograms(t *testing.T) {
	total := 0
	for seed := int64(0); seed < 20; seed++ {
		total += validateMHP(t, "rand", randprog.Threaded(seed, 2), 10)
	}
	if total == 0 {
		t.Log("no concurrent pairs observed (vacuous); acceptable but unusual")
	}
}

func TestMHPSoundOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"word_count", "ferret", "bodytrack"} {
		src, err := workload.Generate(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		validateMHP(t, name, src, 4)
	}
}

func TestParallelPairsNotRecordedSequentially(t *testing.T) {
	// A single-threaded program can never produce parallel pairs.
	a, err := fsam.AnalyzeSource("seq.mc", `
int x; int y;
int *p;
int main() {
	p = &x;
	*p = &y;
	int *q;
	q = *p;
	return 0;
}
`, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		r := interp.Run(a.Prog, seed, 0)
		if len(r.ParallelPairs) != 0 {
			t.Fatalf("sequential program produced parallel pairs: %v", r.ParallelPairs)
		}
	}
}

package nonsparse_test

import (
	"testing"
	"time"

	"repro/internal/nonsparse"
	"repro/internal/pipeline"
	"repro/internal/randprog"
)

// analyze builds the base pipeline and runs the baseline.
func analyze(t *testing.T, src string, timeout time.Duration) (*pipeline.Base, *nonsparse.Result) {
	t.Helper()
	base, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return base, nonsparse.Analyze(base, timeout)
}

// ptOf returns the names in obj's exit points-to set at main.
func ptOf(t *testing.T, b *pipeline.Base, r *nonsparse.Result, global string) map[string]bool {
	t.Helper()
	for _, o := range b.Prog.Objects {
		if o.Name == global {
			out := map[string]bool{}
			r.ObjAtExit(b.Prog.Main, o).ForEach(func(id uint32) {
				out[b.Prog.Objects[id].Name] = true
			})
			return out
		}
	}
	t.Fatalf("no global %s", global)
	return nil
}

func TestSequentialFlow(t *testing.T) {
	b, r := analyze(t, `
int x; int y; int z;
int *p; int *c;
int main() {
	p = &x;
	*p = &y;
	*p = &z;
	c = *p;
	return 0;
}
`, time.Minute)
	got := ptOf(t, b, r, "c")
	// The baseline performs strong updates in sequential code: exactly z.
	if !got["z"] || got["y"] {
		t.Errorf("pt(c) = %v, want exactly {z}", got)
	}
}

func TestInterferencePropagation(t *testing.T) {
	// A worker's store must reach the main thread's parallel load.
	b, r := analyze(t, `
int x; int y; int z;
int *p; int *c;
void w(void *arg) {
	*p = &y;
}
int main() {
	p = &x;
	*p = &z;
	thread_t t;
	t = spawn(w, NULL);
	c = *p;
	join(t);
	return 0;
}
`, time.Minute)
	got := ptOf(t, b, r, "c")
	if !got["y"] || !got["z"] {
		t.Errorf("pt(c) = %v, want y and z (interference)", got)
	}
}

func TestNoStrongUpdateInParallelRegions(t *testing.T) {
	// Both stores happen in code that is PCG-parallel: weak updates keep
	// both values.
	b, r := analyze(t, `
int x; int y; int z;
int *p; int *c;
void w(void *arg) {
	*p = &y;
	*p = &z;
	c = *p;
}
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`, time.Minute)
	got := ptOf(t, b, r, "c")
	if !got["y"] || !got["z"] {
		t.Errorf("pt(c) = %v: parallel-region stores must be weak", got)
	}
}

func TestOOTFlag(t *testing.T) {
	// A 1ns deadline forces an OOT on any non-trivial program.
	src := randprog.Threaded(1, 4)
	base, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	r := nonsparse.Analyze(base, time.Nanosecond)
	if !r.OOT {
		t.Error("expected OOT with a nanosecond budget")
	}
}

func TestNoDeadline(t *testing.T) {
	_, r := analyze(t, `
int x;
int *p;
int main() { p = &x; return 0; }
`, 0)
	if r.OOT {
		t.Error("no deadline must never OOT")
	}
	if r.Iterations == 0 || r.Bytes() == 0 {
		t.Error("stats")
	}
}

// TestSoundnessAgainstConcrete: the baseline must include the concrete
// value on deterministic sequential programs.
func TestSoundnessAgainstConcrete(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		src, want := randprog.Sequential(seed, 3, 3, 2, 15)
		b, r := analyze(t, src, time.Minute)
		if r.OOT {
			t.Fatal("OOT on tiny program")
		}
		for name, pointee := range want {
			if pointee == "" {
				continue
			}
			if got := ptOf(t, b, r, name); !got[pointee] {
				t.Errorf("seed %d: pt(%s) = %v, must contain %s\n%s",
					seed, name, got, pointee, src)
			}
		}
	}
}

// TestBaselineContainsFSAMValues: on random threaded programs the baseline
// (coarser interference) must cover every value FSAM derives for the
// pointer globals at exit.
func TestBaselineContainsFSAMValues(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := randprog.Threaded(seed, 2)
		base1, err := pipeline.FromSource("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		ns := nonsparse.Analyze(base1, time.Minute)
		if ns.OOT {
			continue
		}
		// FSAM via a fresh pipeline (programs are per-pipeline).
		fsBase, err := pipeline.FromSource("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		// Compare per-point object exit states by name through the facade
		// would be simpler, but keep this internal: compare Andersen as the
		// common upper bound instead.
		for _, o := range base1.Prog.Objects {
			if o.Kind.String() != "global" {
				continue
			}
			nsSet := map[string]bool{}
			ns.ObjAtExit(base1.Prog.Main, o).ForEach(func(id uint32) {
				nsSet[base1.Prog.Objects[id].Name] = true
			})
			// Baseline must stay within the pre-analysis (soundness of the
			// upper bound in the other direction).
			var preObj map[string]bool
			for _, o2 := range fsBase.Prog.Objects {
				if o2.Name == o.Name && o2.Kind == o.Kind {
					preObj = map[string]bool{}
					fsBase.Pre.PointsToObj(o2).ForEach(func(id uint32) {
						preObj[fsBase.Prog.Objects[id].Name] = true
					})
				}
			}
			for n := range nsSet {
				if preObj != nil && !preObj[n] {
					t.Errorf("seed %d: baseline pt(%s) contains %s beyond Andersen",
						seed, o.Name, n)
				}
			}
		}
	}
}

// Package nonsparse implements the paper's baseline, NONSPARSE: a
// traditional data-flow-based flow-sensitive pointer analysis in the style
// of Rugina-Rinard, extended to unstructured Pthreads programs by
// discovering parallel regions with a PCG-style procedure-level MHP
// analysis (paper Section 4.3).
//
// Unlike FSAM it maintains a points-to graph for address-taken objects at
// every ICFG program point and propagates facts blindly from each node to
// its successors — and, for thread interference, from every store into
// every node of every may-parallel procedure — without knowing whether the
// facts are needed there. This is the time and memory behaviour Table 2
// quantifies.
//
// The baseline runs on the shared engine layer: per-point graphs store
// interned SetID handles (the same set at thousands of program points costs
// one canonical copy), and nodes pop from the engine's SCC-topologically
// prioritized worklist over the ICFG.
package nonsparse

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/pts"
)

// pgKey indexes a per-point points-to graph: variable IDs first, then
// object IDs offset by the variable count.
type pgKey uint32

// Result holds the baseline's outcome.
type Result struct {
	Prog *ir.Program

	varIDs []engine.SetID
	// outOf[node] is the per-program-point points-to graph after the node,
	// keyed by pgKey. As in the paper's baseline (which also works on
	// partial SSA), it carries bindings for the address-taken objects at
	// every program point — what "maintains points-to information at every
	// program point" costs, and what sparsity removes. Values are interned
	// handles; the set storage itself is shared through the interner.
	outOf []map[pgKey]engine.SetID
	// inOf[node] is the persistent merged IN graph (predecessor OUTs plus
	// procedure interference input), updated incrementally.
	inOf []map[pgKey]engine.SetID

	intern *engine.Interner
	base   *pipeline.Base

	// OOT is set when the analysis hit its deadline before converging; the
	// partial results must not be trusted.
	OOT bool
	// Iterations counts node transfers.
	Iterations int
}

// PointsToVar returns the points-to set of a top-level variable.
func (r *Result) PointsToVar(v *ir.Var) *pts.Set {
	if v == nil || int(v.ID) >= len(r.varIDs) {
		return &pts.Set{}
	}
	return r.intern.Set(r.varIDs[v.ID])
}

// ObjAtExit returns obj's points-to set at f's exit node.
func (r *Result) ObjAtExit(f *ir.Function, obj *ir.Object) *pts.Set {
	exit := r.base.G.ExitOf[f]
	if exit == nil {
		return &pts.Set{}
	}
	if m := r.outOf[exit.ID]; m != nil {
		if id, ok := m[r.objKey(obj.ID)]; ok {
			return r.intern.Set(id)
		}
	}
	return &pts.Set{}
}

// InternStats returns sharing statistics over every points-to slot the
// baseline holds (per-point graphs plus top-level variables). The dedup
// ratio here is where interning pays most: the same sets recur at thousands
// of program points.
func (r *Result) InternStats() *engine.RefStats {
	rs := r.intern.NewRefStats()
	for _, id := range r.varIDs {
		rs.Ref(id)
	}
	for _, m := range r.outOf {
		for _, id := range m {
			rs.Ref(id)
		}
	}
	for _, m := range r.inOf {
		for _, id := range m {
			rs.Ref(id)
		}
	}
	return rs
}

// Bytes reports the footprint of the per-point points-to graphs — the
// quantity that blows up relative to FSAM: canonical sets once, plus map
// headers and one key+handle entry per program-point binding.
func (r *Result) Bytes() uint64 {
	rs := r.InternStats()
	total := rs.UniqueBytes + uint64(len(r.varIDs))*4
	for _, m := range r.outOf {
		if m == nil {
			continue
		}
		total += 48 + uint64(len(m))*8
	}
	for _, m := range r.inOf {
		if m == nil {
			continue
		}
		total += 48 + uint64(len(m))*8
	}
	return total
}

type solver struct {
	r    *Result
	base *pipeline.Base
	pcg  *pcg.Result
	it   *engine.Interner

	singletons *pts.Set
	// parallelWith[f] reports whether f may run concurrently with any
	// procedure (including itself); strong updates are disabled there.
	parallelWith map[*ir.Function]bool
	// parallelFuncs[f] lists the procedures that may run concurrently with
	// f (interference propagation targets).
	parallelFuncs map[*ir.Function][]*ir.Function

	// interIn[f] accumulates interference facts from stores in procedures
	// parallel with f.
	interIn map[*ir.Function]map[pgKey]engine.SetID

	varUses map[ir.VarID][]*icfg.Node
	retUses map[ir.VarID][]*icfg.Node

	nodesOfFunc map[*ir.Function][]*icfg.Node

	wl *engine.Worklist

	cancel *engine.Canceller
}

// Analyze runs the baseline over a prepared pipeline base. timeout <= 0
// means no deadline; otherwise the analysis aborts with OOT when exceeded
// (standing in for the paper's two-hour budget).
func Analyze(base *pipeline.Base, timeout time.Duration) *Result {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return AnalyzeCtx(ctx, base)
}

// AnalyzeCtx runs the baseline under a context. Deadline expiry (or
// cancellation) mid-solve sets Result.OOT — the same out-of-time flag the
// timeout produced — so the pass manager can report the baseline's OOT
// rows symmetrically with FSAM's.
func AnalyzeCtx(ctx context.Context, base *pipeline.Base) *Result {
	it := engine.NewInterner()
	r := &Result{
		Prog:   base.Prog,
		varIDs: make([]engine.SetID, len(base.Prog.Vars)),
		outOf:  make([]map[pgKey]engine.SetID, len(base.G.Nodes)),
		inOf:   make([]map[pgKey]engine.SetID, len(base.G.Nodes)),
		intern: it,
		base:   base,
	}
	s := &solver{
		r:             r,
		base:          base,
		pcg:           pcg.Analyze(base.Model),
		it:            it,
		singletons:    base.Model.SingletonObjects(),
		parallelWith:  map[*ir.Function]bool{},
		parallelFuncs: map[*ir.Function][]*ir.Function{},
		interIn:       map[*ir.Function]map[pgKey]engine.SetID{},
		varUses:       map[ir.VarID][]*icfg.Node{},
		retUses:       map[ir.VarID][]*icfg.Node{},
		nodesOfFunc:   map[*ir.Function][]*icfg.Node{},
		wl:            engine.NewWorklist(len(base.G.Nodes)),
		cancel:        engine.NewLimitedCanceller(ctx),
	}
	s.prepare()
	s.run()
	return r
}

func (s *solver) prepare() {
	g := s.base.G
	for _, n := range g.Nodes {
		s.nodesOfFunc[n.Func] = append(s.nodesOfFunc[n.Func], n)
		// The ICFG edges drive the worklist's SCC-topo priorities: a node's
		// predecessors transfer (heuristically) before it does.
		for _, e := range n.Out {
			s.wl.AddEdge(n.ID, e.To.ID)
		}
		if n.Kind != icfg.NStmt {
			continue
		}
		for _, u := range ir.Uses(n.Stmt) {
			s.varUses[u.ID] = append(s.varUses[u.ID], n)
		}
		if c, ok := n.Stmt.(*ir.Call); ok && c.Dst != nil {
			for _, callee := range s.base.Pre.CallTargets[c] {
				if callee.RetVar != nil {
					s.retUses[callee.RetVar.ID] = append(s.retUses[callee.RetVar.ID], n)
				}
			}
		}
	}
	for _, f := range s.base.Prog.Funcs {
		for _, gfn := range s.base.Prog.Funcs {
			if s.pcg.MHPFuncs(f, gfn) {
				s.parallelWith[f] = true
				s.parallelFuncs[f] = append(s.parallelFuncs[f], gfn)
			}
		}
	}
	// Seed: every node processed once.
	for _, n := range g.Nodes {
		s.push(n)
	}
}

func (s *solver) push(n *icfg.Node) { s.wl.Push(n.ID) }

func (s *solver) varChanged(v *ir.Var) {
	for _, n := range s.varUses[v.ID] {
		s.push(n)
	}
	for _, n := range s.retUses[v.ID] {
		s.push(n)
	}
}

// varSet returns the current canonical points-to set of v (read-only).
func (s *solver) varSet(v *ir.Var) *pts.Set {
	return s.it.Set(s.r.varIDs[v.ID])
}

func (s *solver) addVar(v *ir.Var, set engine.SetID) {
	if v == nil || set == engine.EmptySet {
		return
	}
	if u := s.it.Union(s.r.varIDs[v.ID], set); u != s.r.varIDs[v.ID] {
		s.r.varIDs[v.ID] = u
		s.varChanged(v)
	}
}

func (s *solver) addVarObj(v *ir.Var, obj uint32) {
	if v == nil {
		return
	}
	if u := s.it.Add(s.r.varIDs[v.ID], obj); u != s.r.varIDs[v.ID] {
		s.r.varIDs[v.ID] = u
		s.varChanged(v)
	}
}

// objKey and varKey map IDs into the per-point graph key space.
func (r *Result) objKey(obj ir.ObjID) pgKey {
	return pgKey(uint32(len(r.varIDs)) + uint32(obj))
}

func (r *Result) varKey(v *ir.Var) pgKey { return pgKey(v.ID) }

// mergeOut unions (key → set) into node n's OUT graph, reporting change.
func (s *solver) mergeOut(n *icfg.Node, key pgKey, set engine.SetID) bool {
	if set == engine.EmptySet {
		return false
	}
	m := s.r.outOf[n.ID]
	if m == nil {
		m = map[pgKey]engine.SetID{}
		s.r.outOf[n.ID] = m
	}
	u := s.it.Union(m[key], set)
	if u == m[key] {
		return false
	}
	m[key] = u
	return true
}

// inView refreshes and returns node n's persistent IN graph: the merge of
// predecessor OUTs plus the interference input of its procedure. The
// returned map must not be mutated by callers.
func (s *solver) inView(n *icfg.Node) map[pgKey]engine.SetID {
	in := s.r.inOf[n.ID]
	if in == nil {
		in = map[pgKey]engine.SetID{}
		s.r.inOf[n.ID] = in
	}
	acc := func(m map[pgKey]engine.SetID) {
		for key, id := range m {
			in[key] = s.it.Union(in[key], id)
		}
	}
	for _, e := range n.In {
		if m := s.r.outOf[e.From.ID]; m != nil {
			acc(m)
		}
	}
	if m := s.interIn[n.Func]; m != nil {
		acc(m)
	}
	return in
}

func (s *solver) run() {
	for {
		id, ok := s.wl.Pop()
		if !ok {
			break
		}
		n := s.base.G.Nodes[id]
		s.r.Iterations++
		// Deadline expiry and resource-budget trips (engine.Budget on the
		// context) both mark the row OOT — the baseline degrades to a
		// partial result either way, it never errors out mid-solve.
		if s.cancel.Cancelled() {
			s.r.OOT = true
			return
		}
		s.transfer(n)
	}
}

// transfer recomputes node n's OUT from its IN and statement, pushing
// successors whose IN changed.
func (s *solver) transfer(n *icfg.Node) {
	in := s.inView(n)
	changed := false

	// Identity part: everything flows through unless killed below.
	kill := map[pgKey]bool{}

	if n.Kind == icfg.NStmt {
		switch st := n.Stmt.(type) {
		case *ir.AddrOf:
			s.addVarObj(st.Dst, uint32(st.Obj.ID))
		case *ir.Copy:
			s.addVar(st.Dst, s.r.varIDs[st.Src.ID])
		case *ir.Phi:
			for _, inV := range st.Incoming {
				if inV != nil {
					s.addVar(st.Dst, s.r.varIDs[inV.ID])
				}
			}
		case *ir.Gep:
			s.varSet(st.Base).ForEach(func(id uint32) {
				fo := s.r.Prog.FieldObj(s.r.Prog.Objects[id], st.Field)
				s.addVarObj(st.Dst, uint32(fo.ID))
			})
		case *ir.Load:
			s.varSet(st.Addr).ForEach(func(id uint32) {
				if setID, ok := in[s.r.objKey(ir.ObjID(id))]; ok {
					s.addVar(st.Dst, setID)
				}
			})
		case *ir.Store:
			addr := s.varSet(st.Addr)
			src := s.r.varIDs[st.Src.ID]
			single, isSingle := addr.Single()
			strongOK := isSingle && s.singletons.Has(single) &&
				!s.parallelWith[n.Func]
			addr.ForEach(func(id uint32) {
				obj := ir.ObjID(id)
				if s.mergeOut(n, s.r.objKey(obj), src) {
					changed = true
				}
				if strongOK && uint32(obj) == single {
					kill[s.r.objKey(obj)] = true
				}
				// Interference: the store's fact flows into every node of
				// every parallel procedure.
				s.propagateInterference(n.Func, s.r.objKey(obj), src)
			})
		case *ir.Call:
			for _, callee := range s.base.Pre.CallTargets[st] {
				nn := len(st.Args)
				if len(callee.Params) < nn {
					nn = len(callee.Params)
				}
				for i := 0; i < nn; i++ {
					s.addVar(callee.Params[i], s.r.varIDs[st.Args[i].ID])
				}
				if st.Dst != nil && callee.RetVar != nil {
					s.addVar(st.Dst, s.r.varIDs[callee.RetVar.ID])
				}
			}
		case *ir.Ret:
			if st.Val != nil && n.Func.RetVar != nil {
				s.addVar(n.Func.RetVar, s.r.varIDs[st.Val.ID])
			}
		case *ir.Fork:
			if st.Dst != nil {
				s.addVarObj(st.Dst, uint32(st.Handle.ID))
			}
			for _, routine := range s.base.Pre.ForkTargets[st] {
				if st.Arg != nil && len(routine.Params) > 0 {
					s.addVar(routine.Params[0], s.r.varIDs[st.Arg.ID])
				}
			}
		}
	}

	// Pass IN through to OUT (minus strong-update kills).
	for key, id := range in {
		if kill[key] {
			continue
		}
		if s.mergeOut(n, key, id) {
			changed = true
		}
	}
	if changed {
		for _, e := range n.Out {
			s.push(e.To)
		}
	}
}

// propagateInterference merges a store's generated fact into the
// interference input of every procedure that may run in parallel with f.
func (s *solver) propagateInterference(f *ir.Function, key pgKey, src engine.SetID) {
	if src == engine.EmptySet {
		return
	}
	for _, g := range s.parallelFuncs[f] {
		m := s.interIn[g]
		if m == nil {
			m = map[pgKey]engine.SetID{}
			s.interIn[g] = m
		}
		u := s.it.Union(m[key], src)
		if u != m[key] {
			m[key] = u
			// Blind propagation: every node of g re-processes.
			for _, n := range s.nodesOfFunc[g] {
				s.push(n)
			}
		}
	}
}

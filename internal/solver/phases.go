package solver

// The analysis pipelines as phase DAGs over the pass manager
// (internal/pipeline). Each phase declares the State slots it consumes and
// produces; the manager derives the dependency DAG, runs independent
// phases concurrently (the interleaving and lock analyses both consume
// only the thread model, so they overlap), enforces the per-run context
// deadline, and records per-phase wall time and bytes — the facade's
// Stats.Times are read off the manager's Report, not inline stopwatches.
//
// The constructors here are the shared phase vocabulary the registered
// backends assemble their DAGs from; they are exported so the facade (the
// compile phase), the baseline API, and the fault-injection tests can name
// them.

import (
	"context"
	"fmt"

	"repro/internal/andersen"
	"repro/internal/cfgfree"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/nonsparse"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/threads"
	"repro/internal/tmod"
	"repro/internal/vfg"
)

// State slot and phase names shared by every engine's phase DAG.
const (
	SlotProg     = "prog"     // *ir.Program
	SlotBase     = "base"     // *pipeline.Base (Model nil until threadmodel)
	SlotModel    = "model"    // *threads.Model
	SlotMHP      = "mhp"      // *mhp.Result
	SlotPCG      = "pcg"      // *pcg.Result
	SlotLocks    = "locks"    // *locks.Result
	SlotVFG      = "vfg"      // *vfg.Graph
	SlotResult   = "result"   // *core.Result
	SlotNSResult = "nsresult" // *nonsparse.Result
	SlotCFGFree  = "cfgfree"  // *cfgfree.Result
	SlotTmod     = "tmod"     // *tmod.Result
	SlotEscape   = "escape"   // *escape.Result

	PhaseCompile   = "compile"
	PhasePre       = "preanalysis"
	PhaseModel     = "threadmodel"
	PhaseIL        = "interleave"
	PhaseLocks     = "locks"
	PhaseEscape    = "escape"
	PhaseDefUse    = "defuse"
	PhaseSparse    = "sparse"
	PhaseNonSparse = "nonsparse"
	PhaseCFGFree   = "cfgfree"
	PhaseTmod      = "tmod"
)

// ResultSlots lists every slot that holds an engine's final result. The
// degradation ladder clears them all before retrying a cheaper rung, so a
// failed tier's partial outputs can neither leak into the next rung's view
// nor hold heap a memory-budgeted retry needs back.
var ResultSlots = []string{SlotVFG, SlotResult, SlotNSResult, SlotCFGFree, SlotTmod}

// CompilePhase parses and lowers source into the prog slot. Having it on
// the manager means compile time is measured directly rather than derived
// by subtracting the other phases from a wall clock.
func CompilePhase(name, src string) pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseCompile,
		Provides: []string{SlotProg},
		Run: func(ctx context.Context, st *pipeline.State) error {
			prog, err := pipeline.Compile(name, src)
			if err != nil {
				return err
			}
			st.Put(SlotProg, prog)
			return nil
		},
	}
}

// PreAnalysisPhase runs Andersen + call graph + ICFG + context table.
func PreAnalysisPhase(ctxDepth int) pipeline.Phase {
	return pipeline.Phase{
		Name:     PhasePre,
		Needs:    []string{SlotProg},
		Provides: []string{SlotBase},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base, err := pipeline.BuildPre(ctx, pipeline.Get[*ir.Program](st, SlotProg), ctxDepth)
			if err != nil {
				return err
			}
			st.Put(SlotBase, base)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*pipeline.Base](st, SlotBase).Pre.Bytes()
		},
	}
}

// PreAnalysisFromPhase is the preanalysis phase of the incremental path:
// instead of running Andersen it adopts pre — a pre-analysis rebound onto
// the program in the prog slot — and rebuilds only the cheap glue (call
// graph, ICFG, context table). It reports under the same phase name as
// PreAnalysisPhase so phase timing stays uniform across cold and warm
// runs.
func PreAnalysisFromPhase(pre *andersen.Result, ctxDepth int) pipeline.Phase {
	return pipeline.Phase{
		Name:     PhasePre,
		Needs:    []string{SlotProg},
		Provides: []string{SlotBase},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base, err := pipeline.BuildPreFrom(ctx, pre, ctxDepth)
			if err != nil {
				return err
			}
			st.Put(SlotBase, base)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*pipeline.Base](st, SlotBase).Pre.Bytes()
		},
	}
}

// ThreadModelPhase builds the static thread model.
func ThreadModelPhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseModel,
		Needs:    []string{SlotBase},
		Provides: []string{SlotModel},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base := pipeline.Get[*pipeline.Base](st, SlotBase)
			base.BuildThreadModel()
			st.Put(SlotModel, base.Model)
			return nil
		},
	}
}

// InterleavePhase runs the precise interleaving analysis (or the coarse
// PCG under NoInterleaving). Independent of the lock phase by
// construction: both consume only the thread model.
func InterleavePhase(noInterleaving bool) pipeline.Phase {
	provides := SlotMHP
	if noInterleaving {
		provides = SlotPCG
	}
	return pipeline.Phase{
		Name:     PhaseIL,
		Needs:    []string{SlotModel},
		Provides: []string{provides},
		Run: func(ctx context.Context, st *pipeline.State) error {
			model := pipeline.Get[*threads.Model](st, SlotModel)
			if noInterleaving {
				st.Put(SlotPCG, pcg.Analyze(model))
				return nil
			}
			il, err := mhp.AnalyzeCtx(ctx, model)
			if err != nil {
				return err
			}
			st.Put(SlotMHP, il)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			if noInterleaving {
				return pipeline.Get[*pcg.Result](st, SlotPCG).Bytes()
			}
			return pipeline.Get[*mhp.Result](st, SlotMHP).Bytes()
		},
	}
}

// LocksPhase discovers lock-release spans.
func LocksPhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseLocks,
		Needs:    []string{SlotModel},
		Provides: []string{SlotLocks},
		Run: func(ctx context.Context, st *pipeline.State) error {
			st.Put(SlotLocks, locks.Analyze(pipeline.Get[*threads.Model](st, SlotModel)))
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*locks.Result](st, SlotLocks).Bytes()
		},
	}
}

// EscapePhase runs the thread-escape/sharedness classification over the
// thread model. It always runs for engines that consult interference —
// the verdicts feed Stats and the escape-aware checkers even when pruning
// is off — and the consuming phases decide from cfg.EscapePrune whether
// to use it as a pruning oracle.
func EscapePhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseEscape,
		Needs:    []string{SlotModel},
		Provides: []string{SlotEscape},
		Run: func(ctx context.Context, st *pipeline.State) error {
			st.Put(SlotEscape, escape.Analyze(pipeline.Get[*threads.Model](st, SlotModel)))
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*escape.Result](st, SlotEscape).Bytes()
		},
	}
}

// escapeOracle returns the computed escape result when cfg enables
// pruning, nil otherwise.
func escapeOracle(cfg Config, st *pipeline.State) *escape.Result {
	if cfg.EscapePrune == EscapePruneOff {
		return nil
	}
	return pipeline.Get[*escape.Result](st, SlotEscape)
}

// DefUsePhase builds the thread-oblivious + thread-aware def-use graph.
func DefUsePhase(cfg Config) pipeline.Phase {
	needs := []string{SlotModel, SlotEscape}
	if cfg.NoInterleaving {
		needs = append(needs, SlotPCG)
	} else {
		needs = append(needs, SlotMHP)
	}
	if !cfg.NoLock {
		needs = append(needs, SlotLocks)
	}
	return pipeline.Phase{
		Name:     PhaseDefUse,
		Needs:    needs,
		Provides: []string{SlotVFG},
		Run: func(ctx context.Context, st *pipeline.State) error {
			opt := vfg.Options{
				Interleave:  pipeline.Get[*mhp.Result](st, SlotMHP),
				PCG:         pipeline.Get[*pcg.Result](st, SlotPCG),
				Locks:       pipeline.Get[*locks.Result](st, SlotLocks),
				NoValueFlow: cfg.NoValueFlow,
			}
			// The oracle's soundness argument needs the pointer gate the
			// No-Value-Flow ablation removes, so that configuration always
			// builds unpruned.
			if !cfg.NoValueFlow {
				opt.Escape = escapeOracle(cfg, st)
			}
			g, err := vfg.BuildCtx(ctx, pipeline.Get[*threads.Model](st, SlotModel), opt)
			if err != nil {
				return err
			}
			st.Put(SlotVFG, g)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*vfg.Graph](st, SlotVFG).Bytes()
		},
	}
}

// ObliviousDefUsePhase builds the def-use graph in thread-oblivious mode
// (sequential memory SSA plus fork-bypass/join edges, no [THREAD-VF]).
// It is the oblivious engine's def-use stage and the degradation ladder's
// second rung: it consumes only the thread model, so it can run after the
// interference analyses failed.
func ObliviousDefUsePhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseDefUse,
		Needs:    []string{SlotModel},
		Provides: []string{SlotVFG},
		Run: func(ctx context.Context, st *pipeline.State) error {
			g, err := vfg.BuildCtx(ctx, pipeline.Get[*threads.Model](st, SlotModel),
				vfg.Options{ThreadOblivious: true})
			if err != nil {
				return err
			}
			st.Put(SlotVFG, g)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*vfg.Graph](st, SlotVFG).Bytes()
		},
	}
}

// SparsePhase runs the sparse flow-sensitive solve.
func SparsePhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseSparse,
		Needs:    []string{SlotModel, SlotVFG},
		Provides: []string{SlotResult},
		Run: func(ctx context.Context, st *pipeline.State) error {
			res, err := core.SolveCtx(ctx,
				pipeline.Get[*threads.Model](st, SlotModel),
				pipeline.Get[*vfg.Graph](st, SlotVFG))
			if err != nil {
				return err
			}
			st.Put(SlotResult, res)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			// Result.Bytes includes the def-use graph, which the defuse
			// phase already accounts for.
			res := pipeline.Get[*core.Result](st, SlotResult)
			return res.Bytes() - pipeline.Get[*vfg.Graph](st, SlotVFG).Bytes()
		},
	}
}

// TmodPhase runs the thread-modular interference solve over the
// thread-oblivious def-use graph: per-thread sparse solves (one goroutine
// per thread unless cfg.Sequential) iterated against a global interference
// environment gated by cfg.MemModel. Per-round and per-thread wall times
// ride the Report as subphases ("tmod.round1", "tmod.thread0", ...).
func TmodPhase(cfg Config) pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseTmod,
		Needs:    []string{SlotModel, SlotVFG, SlotEscape},
		Provides: []string{SlotTmod},
		Run: func(ctx context.Context, st *pipeline.State) error {
			res, err := tmod.SolveCtx(ctx,
				pipeline.Get[*threads.Model](st, SlotModel),
				pipeline.Get[*vfg.Graph](st, SlotVFG),
				tmod.Options{MemModel: cfg.MemModel, Sequential: cfg.Sequential,
					Escape: escapeOracle(cfg, st)})
			if err != nil {
				return err
			}
			st.Put(SlotTmod, res)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			// Result.Bytes includes the def-use graph, which the defuse
			// phase already accounts for.
			res := pipeline.Get[*tmod.Result](st, SlotTmod)
			return res.Bytes() - pipeline.Get[*vfg.Graph](st, SlotVFG).Bytes()
		},
		Subphases: func(st *pipeline.State) []pipeline.Subphase {
			res := pipeline.Get[*tmod.Result](st, SlotTmod)
			if res == nil {
				return nil
			}
			out := make([]pipeline.Subphase, 0, len(res.RoundWall)+len(res.ThreadWall))
			for i, d := range res.RoundWall {
				out = append(out, pipeline.Subphase{Name: fmt.Sprintf("round%d", i+1), Time: d})
			}
			for i, d := range res.ThreadWall {
				out = append(out, pipeline.Subphase{Name: fmt.Sprintf("thread%d", i), Time: d})
			}
			return out
		},
	}
}

// CFGFreePhase runs the CFG-free flow-sensitive solve over the
// pre-analysis Base. It needs only SlotBase, so it can run as a
// degradation rung after the thread model or interference analyses failed.
// SlotEscape is picked up opportunistically rather than required: the
// standalone cfgfree engine has no thread model to classify against, but a
// degradation from a higher rung that already computed the verdicts hands
// them to the reach-admission gate for free.
func CFGFreePhase(cfg Config) pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseCFGFree,
		Needs:    []string{SlotBase},
		Provides: []string{SlotCFGFree},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base := pipeline.Get[*pipeline.Base](st, SlotBase)
			var shared cfgfree.SharedFn
			if esc := escapeOracle(cfg, st); esc != nil {
				shared = func(objID uint32) bool { return esc.IsShared(ir.ObjID(objID)) }
			}
			res, err := cfgfree.AnalyzeCtxPruned(ctx, base.CG, base.G, shared)
			if err != nil {
				return err
			}
			st.Put(SlotCFGFree, res)
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*cfgfree.Result](st, SlotCFGFree).Bytes()
		},
	}
}

// NonSparsePhase runs the iterative whole-program data-flow solve with the
// baseline API's partial-result semantics: an expired deadline is a
// partial result (Result.OOT), not a phase failure — Table 2 reports OOT
// rows, it doesn't abort them.
func NonSparsePhase() pipeline.Phase {
	return pipeline.Phase{
		Name:     PhaseNonSparse,
		Needs:    []string{SlotBase, SlotModel},
		Provides: []string{SlotNSResult},
		Run: func(ctx context.Context, st *pipeline.State) error {
			base := pipeline.Get[*pipeline.Base](st, SlotBase)
			st.Put(SlotNSResult, nonsparse.AnalyzeCtx(ctx, base))
			return nil
		},
		Bytes: func(st *pipeline.State) uint64 {
			return pipeline.Get[*nonsparse.Result](st, SlotNSResult).Bytes()
		},
	}
}

// EngineNonSparsePhase is the nonsparse solve with engine semantics: a
// solve that stopped before convergence is a phase failure, so the
// degradation ladder can take over — symmetric with how the sparse and
// cfgfree engines report deadline and budget trips.
func EngineNonSparsePhase() pipeline.Phase {
	p := NonSparsePhase()
	inner := p.Run
	p.Run = func(ctx context.Context, st *pipeline.State) error {
		if err := inner(ctx, st); err != nil {
			return err
		}
		if r := pipeline.Get[*nonsparse.Result](st, SlotNSResult); r != nil && r.OOT {
			if err := ctx.Err(); err != nil {
				return err
			}
			return fmt.Errorf("nonsparse solve stopped before convergence")
		}
		return nil
	}
	return p
}

// NonSparsePhases assembles the NONSPARSE baseline DAG; withCompile
// prepends the compile phase, otherwise the prog slot must be seeded.
func NonSparsePhases(name, src string, withCompile bool) []pipeline.Phase {
	var ps []pipeline.Phase
	if withCompile {
		ps = append(ps, CompilePhase(name, src))
	}
	return append(ps, PreAnalysisPhase(0), ThreadModelPhase(), NonSparsePhase())
}

// Package solver is the multi-engine registry of this repository's pointer
// analyses. Every analysis — the sparse flow-sensitive FSAM reproduction,
// its thread-oblivious variant, the CFG-free flow-sensitive analysis, the
// Andersen pre-analysis, and the NONSPARSE baseline — is expressed as a
// Solver: a named backend that contributes a phase DAG to the shared pass
// manager (internal/pipeline) and extracts a uniform points-to view from
// the completed pipeline State.
//
// The registry replaces the hand-built phase switches the facade used to
// carry: the facade asks Lookup(cfg.Engine) for the backend, schedules
// Solver.Phases, and reads Solver.Result — and the precision-degradation
// ladder walks Ladder() instead of a hard-coded tier list, so adding an
// engine extends the ladder without touching the facade.
//
// Config and Precision live here (the public fsam package aliases them)
// because both the backends and the facade key off them: Config selects a
// backend by name through the Engine field, and Precision orders the
// ladder's rungs.
package solver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/tmod"
)

// Config selects the analysis engine, its variants, and resource budgets.
type Config struct {
	// Engine names the registered analysis backend ("fsam", "oblivious",
	// "tmod", "cfgfree", "andersen", "nonsparse"); empty selects the
	// default sparse FSAM engine. Unknown names fail the run before any
	// phase is scheduled.
	Engine string
	// MemModel selects the memory consistency model ("sc", "tso", "pso";
	// empty means DefaultMemModel). Only the thread-modular engine's
	// interference gate consumes it today, but it is part of every
	// engine's canonical configuration — and cache identity — so a future
	// consumer cannot silently alias results across models. Unknown names
	// fail the run before any phase is scheduled.
	MemModel string
	// NoInterleaving replaces the flow- and context-sensitive interleaving
	// analysis with the coarse procedure-level PCG MHP (Figure 12).
	NoInterleaving bool
	// NoValueFlow disables the aliasing premise of [THREAD-VF] (Figure 12).
	NoValueFlow bool
	// NoLock disables non-interference filtering (Figure 12).
	NoLock bool
	// CtxDepth bounds call-string contexts (<=0 uses the default).
	CtxDepth int
	// Sequential forces the pass manager to run phases one at a time in
	// topological order instead of overlapping independent phases
	// (interleaving ∥ locks). Results are identical either way; the switch
	// exists for determinism tests and scheduling diagnostics.
	Sequential bool
	// MemBudgetBytes is a soft budget on the live process heap, polled by
	// every post-pre-analysis fixpoint loop (the pre-analysis is exempt:
	// it is the degradation ladder's safety net). A trip degrades the
	// result down the ladder instead of failing; 0 means unlimited.
	MemBudgetBytes uint64
	// StepLimit bounds the worklist pops of each post-pre-analysis
	// fixpoint loop independently; a trip degrades like a memory trip.
	// 0 means unlimited.
	StepLimit int64
	// NoDegrade disables the precision-degradation ladder: any phase
	// failure (panic, deadline, budget) surfaces as an error alongside
	// the partial Analysis, as in the pre-ladder API.
	NoDegrade bool
	// EscapePrune gates the thread-escape pruning oracle ("on" or "off";
	// empty means on). When on, the interference-bearing engines skip
	// work for objects the escape analysis proves non-shared: fsam skips
	// interference value-flow edge construction, tmod skips interference
	// publication, a degraded cfgfree rung skips mutual-concurrency reach
	// admission, and the race detector skips pair enumeration. Pruned and
	// unpruned results are identical by construction; the knob is the
	// escape hatch that lets the differential gate prove it.
	EscapePrune string
}

// DefaultEngine is the backend Normalize selects when Config.Engine is
// empty: the full sparse flow-sensitive FSAM analysis.
const DefaultEngine = "fsam"

// DefaultMemModel is the memory model Normalize selects when
// Config.MemModel is empty: sequential consistency, the model the paper's
// interleaving semantics assumes.
const DefaultMemModel = tmod.MemModelSC

// MemModels lists the supported memory models, most to least constrained
// (sc, tso, pso).
func MemModels() []string { return tmod.MemModels() }

// KnownMemModel reports whether name is a supported memory model.
func KnownMemModel(name string) bool { return tmod.KnownMemModel(name) }

// EscapePruneOn is the Config.EscapePrune value Normalize selects when the
// field is empty: thread-escape pruning enabled.
const EscapePruneOn = "on"

// EscapePruneOff disables the thread-escape pruning oracle (the
// `-escapeprune=off` escape hatch and the differential gate's baseline).
const EscapePruneOff = "off"

// EscapePruneModes lists the supported Config.EscapePrune values.
func EscapePruneModes() []string { return []string{EscapePruneOn, EscapePruneOff} }

// KnownEscapePrune reports whether mode is a supported EscapePrune value
// (the empty string normalizes to on).
func KnownEscapePrune(mode string) bool {
	return mode == "" || mode == EscapePruneOn || mode == EscapePruneOff
}

// Normalize returns cfg with implementation defaults made explicit and
// out-of-range values clamped, so two Configs that would drive identical
// analyses compare (and render) identically. It is the shared
// canonicalization used by the CLIs and by the analysis service's
// content-addressed cache key — keeping them on one helper is what stops
// CLI behavior and cache identity from drifting apart.
func (c Config) Normalize() Config {
	if c.Engine == "" {
		c.Engine = DefaultEngine
	}
	if c.MemModel == "" {
		c.MemModel = DefaultMemModel
	}
	if c.CtxDepth <= 0 {
		c.CtxDepth = callgraph.DefaultMaxDepth
	}
	if c.StepLimit < 0 {
		c.StepLimit = 0
	}
	if c.EscapePrune == "" {
		c.EscapePrune = EscapePruneOn
	}
	return c
}

// Canonical renders the normalized Config as a stable, human-readable
// key fragment. Every field that can change analysis results or resource
// behavior appears — the Engine first, so two requests that differ only in
// backend can never collide in a content-addressed cache; adding a Config
// field without extending Canonical would silently alias distinct
// configurations, so keep the two in lockstep.
func (c Config) Canonical() string {
	n := c.Normalize()
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("eng=%s mm=%s il=%d vf=%d lk=%d ctx=%d seq=%d mem=%d steps=%d nodeg=%d esc=%s",
		n.Engine, n.MemModel, b2i(n.NoInterleaving), b2i(n.NoValueFlow), b2i(n.NoLock),
		n.CtxDepth, b2i(n.Sequential), n.MemBudgetBytes, n.StepLimit, b2i(n.NoDegrade), n.EscapePrune)
}

// Precision labels the tier of the result an analysis carries, in
// ascending precision. The degradation ladder guarantees every analysis
// of a compilable program lands on at least PrecisionAndersenOnly: the
// pipeline is staged so the cheap, sound Andersen pre-analysis always has
// run before anything expensive can fail.
type Precision int

const (
	// PrecisionNone: no usable result (the program did not compile or the
	// pre-analysis itself failed).
	PrecisionNone Precision = iota
	// PrecisionAndersenOnly: only the flow-insensitive pre-analysis
	// completed; points-to queries answer from it.
	PrecisionAndersenOnly
	// PrecisionCFGFreeFS: the CFG-free flow-sensitive tier — Andersen-style
	// propagation whose memory flows are restricted to store→load pairs
	// admitted by a one-shot control-flow/concurrency reachability summary.
	// Sounder orderings than Andersen, cheaper than memory-SSA tiers.
	PrecisionCFGFreeFS
	// PrecisionThreadModularFS: per-thread sparse flow-sensitive solves
	// composed through a global interference environment iterated to
	// fixpoint (internal/tmod). Sound for cross-thread flows under the
	// configured memory model, coarser than the statement-level
	// interleaving reasoning of the tiers above it.
	PrecisionThreadModularFS
	// PrecisionThreadObliviousFS: sparse flow-sensitive solve over the
	// thread-oblivious def-use graph only (interference phases skipped).
	// Sound for sequential flows; cross-thread value flows are missing.
	PrecisionThreadObliviousFS
	// PrecisionSparseFS: the full FSAM result (under whatever ablations
	// Config selected).
	PrecisionSparseFS
)

func (p Precision) String() string {
	switch p {
	case PrecisionNone:
		return "none"
	case PrecisionAndersenOnly:
		return "andersen-only"
	case PrecisionCFGFreeFS:
		return "cfgfree-fs"
	case PrecisionThreadModularFS:
		return "thread-modular-fs"
	case PrecisionThreadObliviousFS:
		return "thread-oblivious-fs"
	case PrecisionSparseFS:
		return "sparse-fs"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision maps a Precision.String() rendering back onto the tier
// (PrecisionNone and false for unknown strings). Consumers that fold
// serialized tiers — the bench harness' exit-code computation, log
// analysis — parse here instead of re-hardcoding the strings.
func ParsePrecision(s string) (Precision, bool) {
	for _, p := range []Precision{PrecisionNone, PrecisionAndersenOnly,
		PrecisionCFGFreeFS, PrecisionThreadModularFS,
		PrecisionThreadObliviousFS, PrecisionSparseFS} {
		if p.String() == s {
			return p, true
		}
	}
	return PrecisionNone, false
}

// PTSView is the uniform points-to query surface every backend extracts
// from its result, so the facade's queries and the harness' precision
// metrics are engine-independent.
type PTSView interface {
	// VarPTS returns the points-to set of a top-level SSA variable (never
	// nil). Top-level variables are in SSA form, so one set per variable is
	// a flow-sensitive answer for every engine that orders memory flows.
	VarPTS(v *ir.Var) *pts.Set
	// GlobalExit returns the objects obj may hold at the exit of main —
	// the paper's "final" answer. Flow-insensitive engines (Andersen,
	// cfgfree's object summaries) answer with their single per-object set.
	GlobalExit(main *ir.Function, obj *ir.Object) *pts.Set
}

// Solver is one registered analysis backend.
type Solver interface {
	// Name is the engine's registry key (Config.Engine).
	Name() string
	// Tier is the precision the engine's successful result carries, and
	// its position on the degradation ladder.
	Tier() Precision
	// Phases returns the engine's phase DAG for cfg, excluding the compile
	// phase (the facade prepends it on the source path). The first phase
	// needs SlotProg; the pre-analysis phase is shared by every engine.
	Phases(cfg Config) []pipeline.Phase
	// Result extracts the engine's points-to view from a pipeline State in
	// which the engine's phases completed; nil when the State does not
	// hold the engine's outputs.
	Result(st *pipeline.State) PTSView
	// OnLadder reports whether the engine serves as a degradation rung.
	// Off-ladder engines (the NONSPARSE baseline) can still be selected
	// explicitly and still degrade downward through on-ladder rungs.
	OnLadder() bool
}

var (
	regMu     sync.RWMutex
	regByName = map[string]Solver{}
	regOrder  []Solver
)

// Register adds a backend to the registry. Registering a duplicate name
// panics: engines are wired at init time, so a collision is a programming
// error, not a runtime condition.
func Register(s Solver) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[s.Name()]; dup {
		panic(fmt.Sprintf("solver: duplicate engine %q", s.Name()))
	}
	regByName[s.Name()] = s
	regOrder = append(regOrder, s)
}

// Lookup returns the backend registered under name, or nil.
func Lookup(name string) Solver {
	regMu.RLock()
	defer regMu.RUnlock()
	return regByName[name]
}

// Known reports whether name is a registered engine.
func Known(name string) bool { return Lookup(name) != nil }

// Names lists the registered engines in registration order (ladder order
// first, then off-ladder baselines).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	for i, s := range regOrder {
		out[i] = s.Name()
	}
	return out
}

// Ladder returns the on-ladder engines in descending Tier order: the
// degradation sequence sparse FS → thread-oblivious FS → thread-modular →
// cfgfree → Andersen-only. The facade walks the returned slice, attempting
// each rung strictly below the failed engine's tier.
func Ladder() []Solver {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Solver
	for _, s := range regOrder {
		if s.OnLadder() {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tier() > out[j].Tier() })
	return out
}

package solver

// The registered backends. Each is a thin assembly: pick phases from
// phases.go, extract a PTSView from the slots those phases provide. The
// compile phase is prepended by the facade on the source path, so every
// DAG here starts at SlotProg.

import (
	"repro/internal/cfgfree"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/nonsparse"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/tmod"
)

func init() {
	Register(fsamSolver{})
	Register(obliviousSolver{})
	Register(tmodSolver{})
	Register(cfgfreeSolver{})
	Register(andersenSolver{})
	Register(nonsparseSolver{})
}

// coreView adapts the sparse engine's core.Result (also produced by the
// thread-oblivious engine — same solver, thinner def-use graph).
type coreView struct{ r *core.Result }

func (v coreView) VarPTS(x *ir.Var) *pts.Set { return v.r.PointsToVar(x) }
func (v coreView) GlobalExit(main *ir.Function, obj *ir.Object) *pts.Set {
	return v.r.ObjAtExit(main, obj)
}

// fsamSolver is the full sparse flow-sensitive FSAM reproduction.
type fsamSolver struct{}

func (fsamSolver) Name() string    { return "fsam" }
func (fsamSolver) Tier() Precision { return PrecisionSparseFS }
func (fsamSolver) OnLadder() bool  { return true }
func (fsamSolver) Phases(cfg Config) []pipeline.Phase {
	ps := []pipeline.Phase{PreAnalysisPhase(cfg.CtxDepth), ThreadModelPhase(),
		InterleavePhase(cfg.NoInterleaving), EscapePhase()}
	if !cfg.NoLock {
		ps = append(ps, LocksPhase())
	}
	return append(ps, DefUsePhase(cfg), SparsePhase())
}
func (fsamSolver) Result(st *pipeline.State) PTSView {
	if r := pipeline.Get[*core.Result](st, SlotResult); r != nil {
		return coreView{r}
	}
	return nil
}

// obliviousSolver is the sparse solve over the thread-oblivious def-use
// graph only: sound for sequential flows, blind to cross-thread value
// flows. It is also the ladder's rung below full FSAM.
type obliviousSolver struct{}

func (obliviousSolver) Name() string    { return "oblivious" }
func (obliviousSolver) Tier() Precision { return PrecisionThreadObliviousFS }
func (obliviousSolver) OnLadder() bool  { return true }
func (obliviousSolver) Phases(cfg Config) []pipeline.Phase {
	return []pipeline.Phase{PreAnalysisPhase(cfg.CtxDepth), ThreadModelPhase(),
		ObliviousDefUsePhase(), SparsePhase()}
}
func (obliviousSolver) Result(st *pipeline.State) PTSView {
	if r := pipeline.Get[*core.Result](st, SlotResult); r != nil {
		return coreView{r}
	}
	return nil
}

// tmodView adapts the thread-modular engine's composed result.
type tmodView struct{ r *tmod.Result }

func (v tmodView) VarPTS(x *ir.Var) *pts.Set { return v.r.PointsToVar(x) }
func (v tmodView) GlobalExit(main *ir.Function, obj *ir.Object) *pts.Set {
	return v.r.ObjAtExit(main, obj)
}

// tmodSolver is the thread-modular interference engine: per-thread sparse
// flow-sensitive solves over slices of the thread-oblivious def-use graph,
// composed through a global interference environment iterated to fixpoint,
// with the interference gate set by Config.MemModel. Cross-thread flows are
// sound (unlike the oblivious engine) but thread-granular (coarser than
// fsam's statement-level interleaving reasoning), which places its ladder
// rung between oblivious and cfgfree.
type tmodSolver struct{}

func (tmodSolver) Name() string    { return "tmod" }
func (tmodSolver) Tier() Precision { return PrecisionThreadModularFS }
func (tmodSolver) OnLadder() bool  { return true }
func (tmodSolver) Phases(cfg Config) []pipeline.Phase {
	return []pipeline.Phase{PreAnalysisPhase(cfg.CtxDepth), ThreadModelPhase(),
		EscapePhase(), ObliviousDefUsePhase(), TmodPhase(cfg)}
}
func (tmodSolver) Result(st *pipeline.State) PTSView {
	if r := pipeline.Get[*tmod.Result](st, SlotTmod); r != nil {
		return tmodView{r}
	}
	return nil
}

// cfgfreeView adapts the CFG-free engine's result.
type cfgfreeView struct{ r *cfgfree.Result }

func (v cfgfreeView) VarPTS(x *ir.Var) *pts.Set { return v.r.PointsToVar(x) }
func (v cfgfreeView) GlobalExit(main *ir.Function, obj *ir.Object) *pts.Set {
	return v.r.ObjAtExit(main, obj)
}

// cfgfreeSolver is the CFG-free flow-sensitive engine: Andersen-style
// propagation with memory flows gated by a one-shot reachability summary.
// It needs no thread model, interference analysis or memory SSA, which is
// what makes it the ladder rung between thread-oblivious FS and
// Andersen-only.
type cfgfreeSolver struct{}

func (cfgfreeSolver) Name() string    { return "cfgfree" }
func (cfgfreeSolver) Tier() Precision { return PrecisionCFGFreeFS }
func (cfgfreeSolver) OnLadder() bool  { return true }
func (cfgfreeSolver) Phases(cfg Config) []pipeline.Phase {
	return []pipeline.Phase{PreAnalysisPhase(cfg.CtxDepth), CFGFreePhase(cfg)}
}
func (cfgfreeSolver) Result(st *pipeline.State) PTSView {
	if r := pipeline.Get[*cfgfree.Result](st, SlotCFGFree); r != nil {
		return cfgfreeView{r}
	}
	return nil
}

// andersenView answers every query from the flow-insensitive
// pre-analysis.
type andersenView struct{ b *pipeline.Base }

func (v andersenView) VarPTS(x *ir.Var) *pts.Set { return v.b.Pre.PointsToVar(x) }
func (v andersenView) GlobalExit(main *ir.Function, obj *ir.Object) *pts.Set {
	return v.b.Pre.PointsToObj(obj)
}

// andersenSolver exposes the pre-analysis as a first-class engine — and
// the ladder's bottom rung: its only phase is the pre-analysis every other
// engine already needs, so by the time anything expensive can fail, this
// engine's result already exists.
type andersenSolver struct{}

func (andersenSolver) Name() string    { return "andersen" }
func (andersenSolver) Tier() Precision { return PrecisionAndersenOnly }
func (andersenSolver) OnLadder() bool  { return true }
func (andersenSolver) Phases(cfg Config) []pipeline.Phase {
	return []pipeline.Phase{PreAnalysisPhase(cfg.CtxDepth)}
}
func (andersenSolver) Result(st *pipeline.State) PTSView {
	if b := pipeline.Get[*pipeline.Base](st, SlotBase); b != nil && b.Pre != nil {
		return andersenView{b}
	}
	return nil
}

// nonsparseView adapts the NONSPARSE baseline's result.
type nonsparseView struct{ r *nonsparse.Result }

func (v nonsparseView) VarPTS(x *ir.Var) *pts.Set { return v.r.PointsToVar(x) }
func (v nonsparseView) GlobalExit(main *ir.Function, obj *ir.Object) *pts.Set {
	return v.r.ObjAtExit(main, obj)
}

// nonsparseSolver is the NONSPARSE comparison baseline as a selectable
// engine. Off the ladder: it exists to be measured against, not to be a
// fallback (its cost profile dominates the sparse engine's). Its tier is
// SparseFS — it computes the same thread-aware flow-sensitive result, just
// non-sparsely — so a degraded run of it walks the same rungs as fsam.
type nonsparseSolver struct{}

func (nonsparseSolver) Name() string    { return "nonsparse" }
func (nonsparseSolver) Tier() Precision { return PrecisionSparseFS }
func (nonsparseSolver) OnLadder() bool  { return false }
func (nonsparseSolver) Phases(cfg Config) []pipeline.Phase {
	return []pipeline.Phase{PreAnalysisPhase(cfg.CtxDepth), ThreadModelPhase(),
		EngineNonSparsePhase()}
}
func (nonsparseSolver) Result(st *pipeline.State) PTSView {
	if r := pipeline.Get[*nonsparse.Result](st, SlotNSResult); r != nil {
		return nonsparseView{r}
	}
	return nil
}

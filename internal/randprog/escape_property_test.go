package randprog_test

import (
	"bytes"
	"fmt"
	"testing"

	fsam "repro"
	"repro/internal/diag"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/randprog"
	"repro/internal/threads"
)

// escapeSnapshot reduces an analysis to the comparison surface the
// escape-prune differential demands be identical: points-to sets of every
// pointer global, the race and leak reports, and the full rendered
// diagnostics.
func escapeSnapshot(t *testing.T, seed int64, a *fsam.Analysis) string {
	t.Helper()
	var buf bytes.Buffer
	for _, g := range pointerGlobals(a) {
		pt, err := a.PointsToGlobal(g)
		if err != nil {
			continue
		}
		fmt.Fprintf(&buf, "pt %s = %v\n", g, pt)
	}
	races, err := a.Races()
	if err != nil {
		t.Fatalf("seed %d: Races: %v", seed, err)
	}
	for _, r := range races {
		fmt.Fprintf(&buf, "race %s\n", r)
	}
	for _, l := range a.Leaks() {
		fmt.Fprintf(&buf, "leak %s\n", l)
	}
	res, err := a.Diagnostics()
	if err != nil {
		t.Fatalf("seed %d: Diagnostics: %v", seed, err)
	}
	if err := diag.WriteText(&buf, res.Diags); err != nil {
		t.Fatalf("seed %d: WriteText: %v", seed, err)
	}
	return buf.String()
}

// TestEscapePruneDifferential: the thread-escape pruning oracle is a pure
// work-skipping optimization for the default engine — EscapePrune on
// versus off yields byte-identical points-to sets, races, leaks, and
// diagnostics on random threaded programs, and the off run prunes
// nothing.
func TestEscapePruneDifferential(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Threaded(seed, 3)
		on, err := fsam.AnalyzeSource("esc.mc", src, fsam.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		off, err := fsam.AnalyzeSource("esc.mc", src,
			fsam.Config{EscapePrune: fsam.EscapePruneOff})
		if err != nil {
			t.Fatalf("seed %d (off): %v\n%s", seed, err, src)
		}
		if off.Stats.EscapePrunedEdges != 0 {
			t.Fatalf("seed %d: off run pruned %d edges",
				seed, off.Stats.EscapePrunedEdges)
		}
		if got := on.Stats.EscapeLocal + on.Stats.EscapeHandedOff +
			on.Stats.EscapeShared; got != len(on.Prog.Objects) {
			t.Fatalf("seed %d: escape counters cover %d of %d objects",
				seed, got, len(on.Prog.Objects))
		}
		if a, b := escapeSnapshot(t, seed, on), escapeSnapshot(t, seed, off); a != b {
			t.Errorf("seed %d: pruned and unpruned runs differ\n--- on ---\n%s--- off ---\n%s\n%s",
				seed, a, b, src)
		}
	}
}

// derefObjs collects the objects a thread's functions dereference through
// Load/Store/Lock/Unlock/Free, straight from the pre-analysis — an
// implementation-independent recomputation of the escape analysis's
// accessor relation.
func derefObjs(m *threads.Model, th *threads.Thread) map[ir.ObjID]bool {
	out := map[ir.ObjID]bool{}
	seen := map[*ir.Function]bool{}
	for fc := range m.Funcs(th) {
		if seen[fc.Func] {
			continue
		}
		seen[fc.Func] = true
		for _, blk := range fc.Func.Blocks {
			for _, s := range blk.Stmts {
				var addr *ir.Var
				switch a := s.(type) {
				case *ir.Load:
					addr = a.Addr
				case *ir.Store:
					addr = a.Addr
				case *ir.Lock:
					addr = a.Ptr
				case *ir.Unlock:
					addr = a.Ptr
				case *ir.Free:
					addr = a.Ptr
				default:
					continue
				}
				m.Pre.PointsToVar(addr).ForEach(func(id uint32) {
					out[ir.ObjID(id)] = true
				})
			}
		}
	}
	return out
}

// TestEscapeSharednessProperty: on random threaded programs, every object
// dereferenced by two may-happen-in-parallel threads is classified
// Shared. The accessor relation is recomputed here from the IR and the
// pre-analysis, independent of the escape package's own bookkeeping.
func TestEscapeSharednessProperty(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Threaded(seed, 3)
		b, err := pipeline.FromSource("esc.mc", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		r := escape.Analyze(b.Model)
		objsOf := make([]map[ir.ObjID]bool, len(b.Model.Threads))
		for i, th := range b.Model.Threads {
			objsOf[i] = derefObjs(b.Model, th)
		}
		for i, ta := range b.Model.Threads {
			for j, tb := range b.Model.Threads {
				if j < i || (i == j && !ta.Multi) {
					continue
				}
				if !b.Model.MayHappenInParallelThreads(ta, tb) {
					continue
				}
				for id := range objsOf[i] {
					if objsOf[j][id] && !r.IsShared(id) {
						t.Errorf("seed %d: object %s deref'd by MHP threads %s,%s but class %v\n%s",
							seed, b.Prog.Objects[id], ta, tb, r.ClassOf(id), src)
					}
				}
			}
		}
	}
}

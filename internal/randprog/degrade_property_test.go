package randprog_test

import (
	"context"
	"testing"

	fsam "repro"
	"repro/internal/randprog"
)

// TestDegradedSubsetOfAndersen: under a one-byte memory budget the
// pre-analysis (budget-exempt by design) still completes, every later
// phase trips on its first poll, and the ladder lands deterministically on
// the Andersen-only tier — whose answers must equal the flow-insensitive
// pre-analysis of an unbudgeted run. Combined with TestThreadedRefinement
// (FSAM ⊆ Andersen) this pins the ladder's soundness story: degrading can
// only widen points-to sets, never invent or lose objects vs Andersen.
func TestDegradedSubsetOfAndersen(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Threaded(seed, 3)
		full, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		deg, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{MemBudgetBytes: 1})
		if err != nil {
			t.Fatalf("seed %d: degraded run errored: %v", seed, err)
		}
		if deg.Precision != fsam.PrecisionAndersenOnly {
			t.Fatalf("seed %d: precision = %s, want %s (degraded: %q)",
				seed, deg.Precision, fsam.PrecisionAndersenOnly, deg.Stats.Degraded)
		}
		if deg.Stats.Degraded == "" {
			t.Errorf("seed %d: degraded tier with empty Stats.Degraded", seed)
		}
		for _, g := range pointerGlobals(full) {
			dp, err1 := deg.PointsToGlobal(g)
			ap, err2 := full.AndersenPointsToGlobal(g)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: query pt(%s): %v / %v", seed, g, err1, err2)
			}
			if !subset(dp, ap) || !subset(ap, dp) {
				t.Errorf("seed %d: degraded pt(%s)=%v != Andersen %v\n%s",
					seed, g, dp, ap, src)
			}
			fs, err3 := full.PointsToGlobal(g)
			if err3 == nil && !subset(fs, dp) {
				t.Errorf("seed %d: full FSAM pt(%s)=%v not within degraded %v",
					seed, g, fs, dp)
			}
		}
	}
}

// TestBudgetTripsNeverPanic: random threaded programs under assorted tiny
// budgets always come back as a labeled tier with working queries — no
// panic, no error, no zero-value result.
func TestBudgetTripsNeverPanic(t *testing.T) {
	configs := []fsam.Config{
		{MemBudgetBytes: 1},
		{StepLimit: 1},
		{StepLimit: 500},
		{MemBudgetBytes: 1, StepLimit: 1, Sequential: true},
	}
	for seed := int64(0); seed < 10; seed++ {
		src := randprog.Threaded(seed, 2)
		for _, cfg := range configs {
			a, err := fsam.AnalyzeSourceCtx(context.Background(), "thr.mc", src, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %+v: %v", seed, cfg, err)
			}
			if a.Precision == fsam.PrecisionNone {
				t.Fatalf("seed %d cfg %+v: landed on %s", seed, cfg, a.Precision)
			}
			if a.Precision != fsam.PrecisionSparseFS && a.Stats.Degraded == "" {
				t.Errorf("seed %d cfg %+v: %s with empty Stats.Degraded",
					seed, cfg, a.Precision)
			}
			for _, g := range pointerGlobals(a) {
				if _, err := a.PointsToGlobal(g); err != nil {
					t.Errorf("seed %d cfg %+v: pt(%s): %v", seed, cfg, g, err)
				}
			}
		}
	}
}

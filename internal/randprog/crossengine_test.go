package randprog_test

import (
	"testing"

	fsam "repro"
	"repro/internal/randprog"
)

// crossEngines is the soundness-ordered engine chain the differential
// tests exercise: each engine's points-to result must be a subset of the
// next, coarser one. The thread-oblivious engine is deliberately absent —
// it drops cross-thread value flows, so it is not comparable to the
// sparse thread-aware result on multithreaded programs.
var crossEngines = []string{"fsam", "cfgfree", "andersen"}

// analyzeEngines runs src under every engine in crossEngines and fails the
// test if any engine degrades below its own tier (a degraded run would
// answer from a different rung and void the comparison).
func analyzeEngines(t *testing.T, seed int64, src string) []*fsam.Analysis {
	t.Helper()
	out := make([]*fsam.Analysis, 0, len(crossEngines))
	for _, eng := range crossEngines {
		a, err := fsam.AnalyzeSource("cross.mc", src, fsam.Config{Engine: eng})
		if err != nil {
			t.Fatalf("seed %d: engine %s: %v\n%s", seed, eng, err, src)
		}
		if a.Stats.Degraded != "" {
			t.Fatalf("seed %d: engine %s degraded (%s) on a tiny program",
				seed, eng, a.Stats.Degraded)
		}
		out = append(out, a)
	}
	return out
}

// TestCrossEngineGlobalSubset: per pointer global on random multithreaded
// programs, pt(sparse FSAM) ⊆ pt(cfgfree) ⊆ pt(Andersen). This is the
// precision ordering of the ladder — coarser engines may only over-
// approximate, never drop, a more precise engine's answer.
func TestCrossEngineGlobalSubset(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Threaded(seed, 3)
		runs := analyzeEngines(t, seed, src)
		for _, g := range pointerGlobals(runs[0]) {
			prev, err := runs[0].PointsToGlobal(g)
			if err != nil {
				continue
			}
			for i := 1; i < len(runs); i++ {
				next, err := runs[i].PointsToGlobal(g)
				if err != nil {
					t.Fatalf("seed %d: engine %s pt(%s): %v", seed, crossEngines[i], g, err)
				}
				if !subset(prev, next) {
					t.Errorf("seed %d: %s pt(%s)=%v exceeds %s pt=%v\n%s",
						seed, crossEngines[i-1], g, prev, crossEngines[i], next, src)
				}
				prev = next
			}
		}
	}
}

// TestCrossEngineVarSubset: the same subset chain per top-level SSA
// variable. Compilation is deterministic, so variable i and the object IDs
// its sets carry coincide across the per-engine runs of one program.
func TestCrossEngineVarSubset(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Threaded(seed, 2)
		runs := analyzeEngines(t, seed, src)
		for i := 1; i < len(runs); i++ {
			if len(runs[i].Prog.Vars) != len(runs[0].Prog.Vars) {
				t.Fatalf("seed %d: engine %s compiled %d vars, %s compiled %d",
					seed, crossEngines[i], len(runs[i].Prog.Vars),
					crossEngines[0], len(runs[0].Prog.Vars))
			}
		}
		for vi, v0 := range runs[0].Prog.Vars {
			prev := runs[0].PointsToVar(v0)
			for i := 1; i < len(runs); i++ {
				next := runs[i].PointsToVar(runs[i].Prog.Vars[vi])
				if !prev.SubsetOf(next) {
					t.Errorf("seed %d: var %s: %s pt=%s exceeds %s pt=%s\n%s",
						seed, v0, crossEngines[i-1], prev, crossEngines[i], next, src)
				}
				prev = next
			}
		}
	}
}

// TestCrossEngineSequentialExactness: on deterministic straight-line
// programs every engine must still contain the concrete final value
// (soundness holds at every tier, not just the sparse one).
func TestCrossEngineSequentialExactness(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src, want := randprog.Sequential(seed, 4, 4, 3, 20)
		runs := analyzeEngines(t, seed, src)
		for ei, a := range runs {
			for name, pointee := range want {
				if pointee == "" {
					continue
				}
				got, err := a.PointsToGlobal(name)
				if err != nil {
					t.Fatalf("seed %d: engine %s pt(%s): %v", seed, crossEngines[ei], name, err)
				}
				found := false
				for _, n := range got {
					if n == pointee {
						found = true
					}
				}
				if !found {
					t.Errorf("seed %d: engine %s pt(%s)=%v misses concrete value %s\n%s",
						seed, crossEngines[ei], name, got, pointee, src)
				}
			}
		}
	}
}

// TestCrossEngineTable1Agreement: the Table 1 shape metrics (pointer and
// statement counts) are facts about the compiled program, so every engine
// must report identical values — a divergence means an engine mutated the
// shared IR.
func TestCrossEngineTable1Agreement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := randprog.Threaded(seed, 3)
		runs := analyzeEngines(t, seed, src)
		for i := 1; i < len(runs); i++ {
			if got, want := len(runs[i].Prog.Vars), len(runs[0].Prog.Vars); got != want {
				t.Errorf("seed %d: engine %s reports %d pointers, %s reports %d",
					seed, crossEngines[i], got, crossEngines[0], want)
			}
			if got, want := runs[i].Stats.Stmts, runs[0].Stats.Stmts; got != want {
				t.Errorf("seed %d: engine %s reports %d stmts, %s reports %d",
					seed, crossEngines[i], got, crossEngines[0], want)
			}
		}
	}
}

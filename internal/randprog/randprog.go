// Package randprog generates random MiniC programs for property-based
// testing of the analyses:
//
//   - Sequential produces straight-line, single-threaded pointer programs
//     together with their exact concrete final state (obtained by
//     interpreting the operations during generation). A flow-sensitive
//     analysis with strong updates must compute exactly that state.
//   - Threaded produces small multithreaded programs with branches, loops,
//     forks, joins and locks, used for refinement/monotonicity properties
//     (FSAM ⊆ Andersen; ablations ⊇ full FSAM).
//
// All generation is deterministic in the seed.
package randprog

import (
	"fmt"
	"strings"
)

// rng is a small deterministic generator (split-mix style).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Sequential generates a straight-line program over nTargets int globals
// (x<i>), nPtrs int* globals (p<i>) and nPPtrs int** globals (q<i>), with
// nOps operations, and returns the source plus the concrete final pointee
// of every pointer global ("" when null).
func Sequential(seed int64, nTargets, nPtrs, nPPtrs, nOps int) (string, map[string]string) {
	r := &rng{s: uint64(seed)*2 + 1}
	if nTargets < 1 {
		nTargets = 1
	}
	if nPtrs < 1 {
		nPtrs = 1
	}
	if nPPtrs < 1 {
		nPPtrs = 1
	}

	// Concrete state: pVal[i] = index of x it points to (-1 null);
	// qVal[i] = index of p it points to (-1 null).
	pVal := make([]int, nPtrs)
	qVal := make([]int, nPPtrs)
	for i := range pVal {
		pVal[i] = -1
	}
	for i := range qVal {
		qVal[i] = -1
	}

	var b strings.Builder
	for i := 0; i < nTargets; i++ {
		fmt.Fprintf(&b, "int x%d;\n", i)
	}
	for i := 0; i < nPtrs; i++ {
		fmt.Fprintf(&b, "int *p%d;\n", i)
	}
	for i := 0; i < nPPtrs; i++ {
		fmt.Fprintf(&b, "int **q%d;\n", i)
	}
	b.WriteString("int main() {\n")

	for op := 0; op < nOps; op++ {
		switch r.intn(5) {
		case 0: // p_i = &x_j
			i, j := r.intn(nPtrs), r.intn(nTargets)
			fmt.Fprintf(&b, "\tp%d = &x%d;\n", i, j)
			pVal[i] = j
		case 1: // q_i = &p_j
			i, j := r.intn(nPPtrs), r.intn(nPtrs)
			fmt.Fprintf(&b, "\tq%d = &p%d;\n", i, j)
			qVal[i] = j
		case 2: // *q_i = p_j (requires q_i non-null)
			i, j := r.intn(nPPtrs), r.intn(nPtrs)
			if qVal[i] < 0 {
				continue
			}
			fmt.Fprintf(&b, "\t*q%d = p%d;\n", i, j)
			pVal[qVal[i]] = pVal[j]
		case 3: // *q_i = &x_j
			i, j := r.intn(nPPtrs), r.intn(nTargets)
			if qVal[i] < 0 {
				continue
			}
			fmt.Fprintf(&b, "\t*q%d = &x%d;\n", i, j)
			pVal[qVal[i]] = j
		case 4: // p_i = *q_j (requires q_j non-null)
			i, j := r.intn(nPtrs), r.intn(nPPtrs)
			if qVal[j] < 0 {
				continue
			}
			fmt.Fprintf(&b, "\tp%d = *q%d;\n", i, j)
			pVal[i] = pVal[qVal[j]]
		}
	}
	b.WriteString("\treturn 0;\n}\n")

	want := map[string]string{}
	for i, v := range pVal {
		name := fmt.Sprintf("p%d", i)
		if v < 0 {
			want[name] = ""
		} else {
			want[name] = fmt.Sprintf("x%d", v)
		}
	}
	for i, v := range qVal {
		name := fmt.Sprintf("q%d", i)
		if v < 0 {
			want[name] = ""
		} else {
			want[name] = fmt.Sprintf("p%d", v)
		}
	}
	return b.String(), want
}

// Threaded generates a small multithreaded program: global pointer webs, a
// few worker routines with branches/loops/locks, forked (sometimes in
// loops) and joined (sometimes partially) from main.
func Threaded(seed int64, size int) string {
	r := &rng{s: uint64(seed)*2 + 1}
	if size < 1 {
		size = 1
	}
	nT := 3 + size
	nP := 3 + size
	nW := 1 + r.intn(3)

	var b strings.Builder
	for i := 0; i < nT; i++ {
		fmt.Fprintf(&b, "int x%d;\n", i)
	}
	for i := 0; i < nP; i++ {
		fmt.Fprintf(&b, "int *p%d;\n", i)
	}
	b.WriteString("lock_t m0; lock_t m1;\n")
	b.WriteString("int cond;\n")

	stmt := func(indent string) string {
		switch r.intn(6) {
		case 0:
			return fmt.Sprintf("%sp%d = &x%d;\n", indent, r.intn(nP), r.intn(nT))
		case 1:
			return fmt.Sprintf("%s*p%d = &x%d;\n", indent, r.intn(nP), r.intn(nT))
		case 2:
			return fmt.Sprintf("%sp%d = p%d;\n", indent, r.intn(nP), r.intn(nP))
		case 3:
			a := r.intn(nP)
			return fmt.Sprintf("%s{ int *v; v = *p%d; p%d = v; }\n", indent, a, r.intn(nP))
		case 4:
			m := r.intn(2)
			return fmt.Sprintf("%slock(&m%d);\n%s*p%d = &x%d;\n%sunlock(&m%d);\n",
				indent, m, indent, r.intn(nP), r.intn(nT), indent, m)
		default:
			return fmt.Sprintf("%sif (cond > %d) { p%d = &x%d; } else { *p%d = &x%d; }\n",
				indent, r.intn(5), r.intn(nP), r.intn(nT), r.intn(nP), r.intn(nT))
		}
	}

	for w := 0; w < nW; w++ {
		fmt.Fprintf(&b, "void worker%d(void *arg) {\n", w)
		n := 2 + r.intn(4)
		for i := 0; i < n; i++ {
			b.WriteString(stmt("\t"))
		}
		if r.intn(2) == 0 {
			b.WriteString("\tint i;\n\tfor (i = 0; i < 3; i++) {\n")
			b.WriteString(stmt("\t\t"))
			b.WriteString("\t}\n")
		}
		b.WriteString("}\n")
	}

	b.WriteString("int main() {\n")
	for i := 0; i < 2+r.intn(3); i++ {
		b.WriteString(stmt("\t"))
	}
	loopFork := r.intn(2) == 0
	if loopFork {
		fmt.Fprintf(&b, "\tthread_t tids[4];\n\tint i;\n")
		fmt.Fprintf(&b, "\tfor (i = 0; i < 4; i++) {\n\t\ttids[i] = spawn(worker%d, NULL);\n\t}\n", r.intn(nW))
		b.WriteString(stmt("\t"))
		fmt.Fprintf(&b, "\tfor (i = 0; i < 4; i++) {\n\t\tjoin(tids[i]);\n\t}\n")
	} else {
		for w := 0; w < nW; w++ {
			fmt.Fprintf(&b, "\tthread_t t%d;\n\tt%d = spawn(worker%d, NULL);\n", w, w, w)
		}
		b.WriteString(stmt("\t"))
		for w := 0; w < nW; w++ {
			if r.intn(4) == 0 {
				// Partial join.
				fmt.Fprintf(&b, "\tif (cond > 2) { join(t%d); }\n", w)
			} else {
				fmt.Fprintf(&b, "\tjoin(t%d);\n", w)
			}
		}
	}
	for i := 0; i < 2; i++ {
		b.WriteString(stmt("\t"))
	}
	b.WriteString("\treturn 0;\n}\n")
	return b.String()
}

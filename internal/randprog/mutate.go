package randprog

import (
	"fmt"
	"strings"
)

// MutateKind classifies the single-function edits Mutate can apply.
type MutateKind int

const (
	// MutateComment inserts a comment-only change: the program text differs
	// but the IR is identical, so the incremental tier should be "noop".
	MutateComment MutateKind = iota
	// MutateConst bumps an integer constant inside one function: the IR
	// differs only in a constant operand, so the CFG stays isomorphic and
	// the incremental tier should be "iso".
	MutateConst
	// MutateStmt inserts a new pointer assignment into one function: the
	// CFG shape changes, forcing a semantic recompute.
	MutateStmt
)

func (k MutateKind) String() string {
	switch k {
	case MutateComment:
		return "comment"
	case MutateConst:
		return "const"
	case MutateStmt:
		return "stmt"
	}
	return fmt.Sprintf("MutateKind(%d)", int(k))
}

// Mutate applies one deterministic single-function edit of the given kind to
// a generated program and returns the patched source plus the name of the
// edited function. The edit is textual: Mutate scans for function
// definitions ("void worker0(...) {" / "int main() {") and rewrites one
// line inside the chosen body. It panics if src contains no function —
// generated programs always have at least main.
func Mutate(seed int64, src string, kind MutateKind) (string, string) {
	r := &rng{s: uint64(seed)*4 + 3}
	lines := strings.Split(src, "\n")

	// Locate function bodies: header line index -> name. Headers in
	// generated programs are always "ret name(args) {" on one line with the
	// closing "}" on its own line at column 0.
	type fnSpan struct {
		name       string
		start, end int // line indexes of "{" header and closing "}"
	}
	var fns []fnSpan
	for i, ln := range lines {
		if !strings.HasSuffix(ln, "{") || strings.HasPrefix(ln, "\t") || !strings.Contains(ln, "(") {
			continue
		}
		name := ln[:strings.Index(ln, "(")]
		if j := strings.LastIndexAny(name, " *"); j >= 0 {
			name = name[j+1:]
		}
		end := i + 1
		for end < len(lines) && lines[end] != "}" {
			end++
		}
		fns = append(fns, fnSpan{name: name, start: i, end: end})
	}
	if len(fns) == 0 {
		panic("randprog.Mutate: no function definitions in source")
	}
	fn := fns[r.intn(len(fns))]

	switch kind {
	case MutateComment:
		// Insert a comment line just inside the body.
		at := fn.start + 1
		out := make([]string, 0, len(lines)+1)
		out = append(out, lines[:at]...)
		out = append(out, fmt.Sprintf("\t/* mutate %d */", r.intn(1000)))
		out = append(out, lines[at:]...)
		return strings.Join(out, "\n"), fn.name

	case MutateConst:
		// Find a line in the body with an integer literal after "> " (the
		// branch conditions use "cond > N") and bump it. If the chosen
		// function has none, fall back to rewriting the first body line's
		// indices — but generated bodies always contain at least one &xN.
		for i := fn.start + 1; i < fn.end; i++ {
			if j := strings.Index(lines[i], "> "); j >= 0 {
				lines[i] = lines[i][:j+2] + bumpInt(lines[i][j+2:])
				return strings.Join(lines, "\n"), fn.name
			}
		}
		// No comparison constant: retarget an address-of to a different
		// (always-declared) global. Same stmt kinds, one operand changed —
		// the CFG stays isomorphic but the operand differs, so the delta
		// path is expected to fall back to a semantic recompute.
		for i := fn.start + 1; i < fn.end; i++ {
			if j := strings.Index(lines[i], "&x"); j >= 0 {
				rest := lines[i][j+2:]
				n := 0
				for n < len(rest) && rest[n] >= '0' && rest[n] <= '9' {
					n++
				}
				repl := "0"
				if strings.HasPrefix(rest, "0") {
					repl = "1"
				}
				lines[i] = lines[i][:j+2] + repl + rest[n:]
				return strings.Join(lines, "\n"), fn.name
			}
		}
		// Nothing editable in place; degrade to a comment edit.
		return Mutate(seed+1, src, MutateComment)

	default: // MutateStmt
		at := fn.start + 1
		out := make([]string, 0, len(lines)+1)
		out = append(out, lines[:at]...)
		out = append(out, fmt.Sprintf("\tp%d = &x%d;", r.intn(3), r.intn(3)))
		out = append(out, lines[at:]...)
		return strings.Join(out, "\n"), fn.name
	}
}

// bumpInt increments the leading decimal integer of s, keeping the suffix.
func bumpInt(s string) string {
	n := 0
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		n++
	}
	if n == 0 {
		return s
	}
	v := 0
	for _, c := range s[:n] {
		v = v*10 + int(c-'0')
	}
	return fmt.Sprintf("%d%s", v+1, s[n:])
}

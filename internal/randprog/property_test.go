package randprog_test

import (
	"testing"
	"time"

	fsam "repro"
	"repro/internal/randprog"
)

// TestSequentialExactness: on deterministic straight-line programs, FSAM's
// flow-sensitive result with strong updates must equal the concrete final
// state exactly — sound (⊇) and, on these programs, precise (⊆).
func TestSequentialExactness(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		src, want := randprog.Sequential(seed, 4, 4, 3, 25)
		a, err := fsam.AnalyzeSource("seq.mc", src, fsam.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for name, pointee := range want {
			got, err := a.PointsToGlobal(name)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if pointee == "" {
				if len(got) != 0 {
					t.Errorf("seed %d: pt(%s) = %v, want empty\n%s", seed, name, got, src)
				}
				continue
			}
			if len(got) != 1 || got[0] != pointee {
				t.Errorf("seed %d: pt(%s) = %v, want {%s}\n%s", seed, name, got, pointee, src)
			}
		}
	}
}

// TestSequentialBaselineSoundness: the NONSPARSE baseline must include the
// concrete value (soundness; it may be less precise).
func TestSequentialBaselineSoundness(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src, want := randprog.Sequential(seed, 4, 4, 3, 20)
		b, err := fsam.AnalyzeSourceNonSparse("seq.mc", src, 30*time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b.OOT {
			t.Fatalf("seed %d: baseline OOT on tiny program", seed)
		}
		for name, pointee := range want {
			if pointee == "" {
				continue
			}
			got, err := b.PointsToGlobal(name)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, n := range got {
				if n == pointee {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %d: baseline pt(%s) = %v, must contain %s\n%s",
					seed, name, got, pointee, src)
			}
		}
	}
}

// globalsOf lists the pointer globals of a threaded program (p<i>).
func pointerGlobals(a *fsam.Analysis) []string {
	var out []string
	for _, o := range a.Prog.Objects {
		if o.Kind.String() == "global" && len(o.Name) >= 2 && o.Name[0] == 'p' {
			out = append(out, o.Name)
		}
	}
	return out
}

// subset reports a ⊆ b.
func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// TestThreadedRefinement: on random multithreaded programs, FSAM's result
// must refine the Andersen pre-analysis on every pointer global.
func TestThreadedRefinement(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Threaded(seed, 3)
		a, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for _, g := range pointerGlobals(a) {
			fs, err1 := a.PointsToGlobal(g)
			fi, err2 := a.AndersenPointsToGlobal(g)
			if err1 != nil || err2 != nil {
				continue
			}
			if !subset(fs, fi) {
				t.Errorf("seed %d: FSAM pt(%s)=%v exceeds Andersen %v\n%s",
					seed, g, fs, fi, src)
			}
		}
	}
}

// TestAblationMonotonicity: each ablation only adds def-use edges, so its
// result must be a superset of full FSAM's on every pointer global.
func TestAblationMonotonicity(t *testing.T) {
	configs := map[string]fsam.Config{
		"NoInterleaving": {NoInterleaving: true},
		"NoValueFlow":    {NoValueFlow: true},
		"NoLock":         {NoLock: true},
	}
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Threaded(seed, 2)
		full, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for label, cfg := range configs {
			abl, err := fsam.AnalyzeSource("thr.mc", src, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, label, err)
			}
			for _, g := range pointerGlobals(full) {
				fullPt, err1 := full.PointsToGlobal(g)
				ablPt, err2 := abl.PointsToGlobal(g)
				if err1 != nil || err2 != nil {
					continue
				}
				if !subset(fullPt, ablPt) {
					t.Errorf("seed %d: %s pt(%s)=%v misses values of full FSAM %v\n%s",
						seed, label, g, ablPt, fullPt, src)
				}
			}
		}
	}
}

// TestThreadedEdgeMonotonicity: ablations may only grow the thread-aware
// edge count.
func TestThreadedEdgeMonotonicity(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := randprog.Threaded(seed, 3)
		full, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []fsam.Config{{NoValueFlow: true}, {NoLock: true}} {
			abl, err := fsam.AnalyzeSource("thr.mc", src, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if abl.Stats.ThreadEdges < full.Stats.ThreadEdges {
				t.Errorf("seed %d: ablation %+v has fewer thread edges (%d < %d)",
					seed, cfg, abl.Stats.ThreadEdges, full.Stats.ThreadEdges)
			}
		}
	}
}

// TestDeterministicAnalysis: two runs over the same threaded program give
// identical results and statistics.
func TestDeterministicAnalysis(t *testing.T) {
	src := randprog.Threaded(99, 3)
	a1, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fsam.AnalyzeSource("thr.mc", src, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Stats.DefUseEdges != a2.Stats.DefUseEdges ||
		a1.Stats.Threads != a2.Stats.Threads {
		t.Errorf("stats differ: %+v vs %+v", a1.Stats, a2.Stats)
	}
	for _, g := range pointerGlobals(a1) {
		p1, _ := a1.PointsToGlobal(g)
		p2, _ := a2.PointsToGlobal(g)
		if !subset(p1, p2) || !subset(p2, p1) {
			t.Errorf("pt(%s) differs: %v vs %v", g, p1, p2)
		}
	}
}

// TestGenerationDeterministic: same seed, same program.
func TestGenerationDeterministic(t *testing.T) {
	a1, _ := randprog.Sequential(5, 3, 3, 2, 15)
	a2, _ := randprog.Sequential(5, 3, 3, 2, 15)
	if a1 != a2 {
		t.Error("Sequential not deterministic")
	}
	if randprog.Threaded(5, 2) != randprog.Threaded(5, 2) {
		t.Error("Threaded not deterministic")
	}
}

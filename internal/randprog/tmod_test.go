package randprog_test

// Differential properties of the thread-modular interference engine.
// Thread-modular composition is coarser than FSAM's statement-level
// interleaving reasoning but still a sound refinement of Andersen, and its
// memory-model gate only ever widens from sc to tso to pso, so per query
//
//	pt(fsam) ⊆ pt(tmod@sc) ⊆ pt(tmod@tso) ⊆ pt(tmod@pso) ⊆ pt(andersen)
//
// must hold on every program. (cfgfree is absent from this chain: its
// reachability gating and tmod's interference gating are incomparable
// approximations.) On single-thread programs the whole interference
// machinery must vanish: one thread, one slice, no gated absorption under
// any model — tmod's answer is exactly fsam's.

import (
	"testing"

	fsam "repro"
	"repro/internal/randprog"
)

// tmodChain is the soundness-ordered (engine, memmodel) chain.
var tmodChain = []struct{ engine, memModel string }{
	{"fsam", "sc"},
	{"tmod", "sc"},
	{"tmod", "tso"},
	{"tmod", "pso"},
	{"andersen", "sc"},
}

// analyzeTmodChain runs src under every configuration in tmodChain,
// failing on degradation (a degraded run answers from a different rung and
// voids the comparison).
func analyzeTmodChain(t *testing.T, seed int64, src string) []*fsam.Analysis {
	t.Helper()
	out := make([]*fsam.Analysis, 0, len(tmodChain))
	for _, c := range tmodChain {
		a, err := fsam.AnalyzeSource("tmodchain.mc", src, fsam.Config{Engine: c.engine, MemModel: c.memModel})
		if err != nil {
			t.Fatalf("seed %d: %s/%s: %v\n%s", seed, c.engine, c.memModel, err, src)
		}
		if a.Stats.Degraded != "" {
			t.Fatalf("seed %d: %s/%s degraded (%s) on a tiny program",
				seed, c.engine, c.memModel, a.Stats.Degraded)
		}
		out = append(out, a)
	}
	return out
}

// TestTmodGlobalSubsetChain: the per-global subset chain on random
// multithreaded programs.
func TestTmodGlobalSubsetChain(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Threaded(seed, 3)
		runs := analyzeTmodChain(t, seed, src)
		for _, g := range pointerGlobals(runs[0]) {
			prev, err := runs[0].PointsToGlobal(g)
			if err != nil {
				continue
			}
			for i := 1; i < len(runs); i++ {
				next, err := runs[i].PointsToGlobal(g)
				if err != nil {
					t.Fatalf("seed %d: %s/%s pt(%s): %v", seed, tmodChain[i].engine, tmodChain[i].memModel, g, err)
				}
				if !subset(prev, next) {
					t.Errorf("seed %d: %s/%s pt(%s)=%v exceeds %s/%s pt=%v\n%s",
						seed, tmodChain[i-1].engine, tmodChain[i-1].memModel, g, prev,
						tmodChain[i].engine, tmodChain[i].memModel, next, src)
				}
				prev = next
			}
		}
	}
}

// TestTmodVarSubsetChain: the same chain per top-level SSA variable.
func TestTmodVarSubsetChain(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Threaded(seed, 2)
		runs := analyzeTmodChain(t, seed, src)
		for vi, v0 := range runs[0].Prog.Vars {
			prev := runs[0].PointsToVar(v0)
			for i := 1; i < len(runs); i++ {
				next := runs[i].PointsToVar(runs[i].Prog.Vars[vi])
				if !prev.SubsetOf(next) {
					t.Errorf("seed %d: var %s: %s/%s pt=%s exceeds %s/%s pt=%s\n%s",
						seed, v0, tmodChain[i-1].engine, tmodChain[i-1].memModel, prev,
						tmodChain[i].engine, tmodChain[i].memModel, next, src)
				}
				prev = next
			}
		}
	}
}

// TestTmodSequentialExactness: on single-thread programs tmod must equal
// fsam exactly — per variable and per global, under every memory model.
func TestTmodSequentialExactness(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src, _ := randprog.Sequential(seed, 4, 4, 3, 20)
		ref, err := fsam.AnalyzeSource("seq.mc", src, fsam.Config{})
		if err != nil {
			t.Fatalf("seed %d: fsam: %v\n%s", seed, err, src)
		}
		if ref.Stats.Degraded != "" {
			t.Fatalf("seed %d: fsam degraded (%s)", seed, ref.Stats.Degraded)
		}
		for _, mm := range fsam.MemModels() {
			a, err := fsam.AnalyzeSource("seq.mc", src, fsam.Config{Engine: "tmod", MemModel: mm})
			if err != nil {
				t.Fatalf("seed %d: tmod/%s: %v\n%s", seed, mm, err, src)
			}
			if a.Stats.Degraded != "" {
				t.Fatalf("seed %d: tmod/%s degraded (%s)", seed, mm, a.Stats.Degraded)
			}
			if a.Stats.InterferenceRounds > 1 {
				t.Errorf("seed %d: tmod/%s took %d interference rounds on a single-thread program",
					seed, mm, a.Stats.InterferenceRounds)
			}
			for vi, v := range ref.Prog.Vars {
				want := ref.PointsToVar(v)
				got := a.PointsToVar(a.Prog.Vars[vi])
				if !want.SubsetOf(got) || !got.SubsetOf(want) {
					t.Errorf("seed %d: tmod/%s pt(%s)=%s, fsam says %s\n%s",
						seed, mm, v, got, want, src)
				}
			}
			for _, g := range pointerGlobals(ref) {
				want, err := ref.PointsToGlobal(g)
				if err != nil {
					continue
				}
				got, err := a.PointsToGlobal(g)
				if err != nil {
					t.Fatalf("seed %d: tmod/%s pt(%s): %v", seed, mm, g, err)
				}
				if !subset(want, got) || !subset(got, want) {
					t.Errorf("seed %d: tmod/%s pt(%s)=%v, fsam says %v\n%s",
						seed, mm, g, got, want, src)
				}
			}
		}
	}
}

// TestTmodScheduleEquivalence: the goroutine-per-thread rounds and the
// Sequential single-goroutine mode must compute identical results — the
// exchange is a barrier over monotone unions, so schedule order cannot
// show through.
func TestTmodScheduleEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := randprog.Threaded(seed, 3)
		par, err := fsam.AnalyzeSource("sched.mc", src, fsam.Config{Engine: "tmod"})
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		seq, err := fsam.AnalyzeSource("sched.mc", src, fsam.Config{Engine: "tmod", Sequential: true})
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		if par.Stats.InterferenceRounds != seq.Stats.InterferenceRounds {
			t.Errorf("seed %d: rounds diverge: parallel %d, sequential %d",
				seed, par.Stats.InterferenceRounds, seq.Stats.InterferenceRounds)
		}
		for vi, v := range par.Prog.Vars {
			p := par.PointsToVar(v)
			s := seq.PointsToVar(seq.Prog.Vars[vi])
			if !p.SubsetOf(s) || !s.SubsetOf(p) {
				t.Errorf("seed %d: pt(%s) diverges between schedules: parallel %s, sequential %s\n%s",
					seed, v, p, s, src)
			}
		}
	}
}

package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when told, making cooldown transitions exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := &Breaker{Threshold: 3, Cooldown: time.Second, Now: clk.now}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("Allow refused while closed (failure %d)", i)
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state %s after 2 failures, want closed", b.State())
	}
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %s after 3 failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("Allow admitted a request while open, before cooldown")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := &Breaker{Threshold: 2}
	b.Record(false)
	b.Record(true)
	b.Record(false)
	if b.State() != Closed {
		t.Fatalf("state %s, want closed: success must reset the streak", b.State())
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var transitions []string
	b := &Breaker{Threshold: 1, Cooldown: time.Second, Now: clk.now,
		OnTransition: func(from, to State) {
			transitions = append(transitions, from.String()+">"+to.String())
		}}
	b.Record(false) // opens
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("Allow refused the half-open probe after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("Allow admitted a second request during the half-open probe")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state %s after probe success, want closed", b.State())
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenProbeReopensOnFailure(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := &Breaker{Threshold: 1, Cooldown: time.Second, Now: clk.now}
	b.Record(false)
	clk.advance(time.Second)
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %s after probe failure, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("Allow admitted a request right after the probe failed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("Allow refused a second probe after another cooldown")
	}
}

func TestBreakerLateRecordWhileOpenIgnored(t *testing.T) {
	b := &Breaker{Threshold: 1}
	b.Record(false)
	b.Record(true) // straggler from before the trip
	if b.State() != Open {
		t.Fatalf("state %s, want open: stragglers must not close the breaker", b.State())
	}
}

func TestBreakerConcurrentSafety(t *testing.T) {
	b := &Breaker{Threshold: 10, Cooldown: time.Microsecond}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if b.Allow() {
					b.Record(j%3 != 0)
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
}

// Package resilience holds the fault-tolerance primitives shared by every
// component that talks to an fsamd replica over the network: the typed
// client (`fsam -server`, `fsamcheck -server`, `fsambench -server`) and the
// fleet gateway (fsamgw). It provides exponential backoff with jitter, a
// retry policy that understands the daemon's overload signals (429
// queue-full, 503 draining/saturated, Retry-After hints), and a per-target
// circuit breaker.
//
// The primitives are deliberately transport-agnostic: Policy.Do drives any
// attempt function, and the HTTP helpers (RetryableStatus, RetryAfter) do
// the status classification callers feed back into it. Analyses are
// deterministic and content-addressed, so replaying a request — against the
// same replica or a different one — is always safe; the only question these
// types answer is when and how fast.
package resilience

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Backoff computes capped exponential delays with jitter. The zero value
// selects the documented defaults.
type Backoff struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the grown delay (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the randomized fraction of each delay in [0,1]: the delay
	// becomes d*(1-Jitter) + d*Jitter*rand. 0 selects the default 0.5
	// ("equal jitter"); use a tiny positive value for near-determinism.
	Jitter float64
	// Rand is the randomness seam for tests (default math/rand.Float64).
	Rand func() float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	if b.Rand == nil {
		b.Rand = rand.Float64
	}
	return b
}

// Delay returns the wait before retry number attempt (0-based: Delay(0) is
// the wait after the first failure).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	d = d*(1-b.Jitter) + d*b.Jitter*b.Rand()
	return time.Duration(d)
}

// Policy bounds a retry loop. The zero value selects the defaults.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3; 1 disables retries).
	MaxAttempts int
	// Backoff spaces the retries.
	Backoff Backoff
	// MaxHintWait caps how long a server-provided hint (Retry-After) is
	// honored for (default 5s) — a hint beyond the cap waits the cap.
	MaxHintWait time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.MaxHintWait <= 0 {
		p.MaxHintWait = 5 * time.Second
	}
	return p
}

// Do calls fn until it succeeds, reports a non-retryable error, the
// attempts are exhausted, or ctx is done. fn receives the 0-based attempt
// number and returns a server wait hint (0 for none), whether the failure
// invites a retry, and the error (nil on success). The wait between
// attempts is the larger of the backoff delay and the (capped) hint.
func (p Policy) Do(ctx context.Context, fn func(attempt int) (hint time.Duration, retryable bool, err error)) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		hint, retryable, err := fn(attempt)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt == p.MaxAttempts-1 {
			return lastErr
		}
		wait := p.Backoff.Delay(attempt)
		if hint > 0 {
			if hint > p.MaxHintWait {
				hint = p.MaxHintWait
			}
			if hint > wait {
				wait = hint
			}
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return lastErr
}

// RetryableStatus reports whether an HTTP status invites retrying the same
// request: 429 (admission queue full) and 503 (draining, saturated, or a
// chaos-injected fault). Everything else is either success, the client's
// fault, or a replica fault better answered by failover than by hammering.
func RetryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// RetryAfter parses a Retry-After header into a wait hint. Both the
// delta-seconds and the HTTP-date forms are accepted; absent or malformed
// headers report ok=false.
func RetryAfter(h http.Header) (d time.Duration, ok bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second)), true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// State is a circuit breaker's position.
type State int32

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed State = iota
	// Open: requests are refused until the cooldown elapses.
	Open
	// HalfOpen: one probe request is admitted; its outcome decides.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-target circuit breaker: Threshold consecutive failures
// open it, the Cooldown later a single half-open probe is admitted, and
// that probe's outcome closes or re-opens it. The zero value (with any
// needed fields set before first use) is ready to use; all methods are
// safe for concurrent callers.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 5).
	Threshold int
	// Cooldown is the open period before a half-open probe (default 5s).
	Cooldown time.Duration
	// OnTransition, when non-nil, observes every state change. It is
	// called with the breaker's lock held and must not call back in.
	OnTransition func(from, to State)
	// Now is the clock seam for tests (default time.Now).
	Now func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 5 * time.Second
	}
	return b.Cooldown
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// Allow reports whether a request may proceed. While open, the first call
// after the cooldown flips the breaker half-open and is admitted as the
// probe; every admitted caller must report back through Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			b.transition(HalfOpen)
			b.probing = true
			return true
		}
		return false
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Record reports the outcome of an admitted request.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold() {
			b.transition(Open)
			b.openedAt = b.now()
		}
	case HalfOpen:
		b.probing = false
		if success {
			b.transition(Closed)
			b.failures = 0
		} else {
			b.transition(Open)
			b.openedAt = b.now()
		}
	case Open:
		// A straggler from before the trip; the trip already decided.
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

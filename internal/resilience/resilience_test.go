package resilience

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2,
		Jitter: 1e-9, Rand: func() float64 { return 0 }}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		got := b.Delay(i)
		w *= time.Millisecond
		// Jitter is epsilon; allow 1% slack.
		if got < w*99/100 || got > w {
			t.Fatalf("Delay(%d) = %s, want ~%s", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for _, r := range []float64{0, 0.5, 0.999} {
		b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Rand: func() float64 { return r }}
		d := b.Delay(0)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("Delay with rand=%g = %s, want within [50ms,100ms]", r, d)
		}
	}
}

func TestPolicyDoRetriesThenSucceeds(t *testing.T) {
	p := Policy{MaxAttempts: 4, Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}}
	calls := 0
	err := p.Do(context.Background(), func(attempt int) (time.Duration, bool, error) {
		if attempt != calls {
			t.Fatalf("attempt %d out of order (calls %d)", attempt, calls)
		}
		calls++
		if calls < 3 {
			return 0, true, errors.New("transient")
		}
		return 0, false, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestPolicyDoStopsOnNonRetryable(t *testing.T) {
	p := Policy{MaxAttempts: 5, Backoff: Backoff{Base: time.Millisecond}}
	calls := 0
	fatal := errors.New("fatal")
	err := p.Do(context.Background(), func(int) (time.Duration, bool, error) {
		calls++
		return 0, false, fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want fatal after 1", err, calls)
	}
}

func TestPolicyDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond}}
	calls := 0
	transient := errors.New("transient")
	err := p.Do(context.Background(), func(int) (time.Duration, bool, error) {
		calls++
		return 0, true, transient
	})
	if !errors.Is(err, transient) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want transient after 3", err, calls)
	}
}

func TestPolicyDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, Backoff: Backoff{Base: time.Hour, Max: time.Hour}}
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(int) (time.Duration, bool, error) {
			return 0, true, errors.New("transient")
		})
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not honor cancellation")
	}
}

func TestPolicyDoHonorsHintOverBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 2, Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond},
		MaxHintWait: 80 * time.Millisecond}
	t0 := time.Now()
	p.Do(context.Background(), func(int) (time.Duration, bool, error) {
		return 50 * time.Millisecond, true, errors.New("hinted")
	})
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("retry waited %s, want >= the 50ms hint", d)
	}
}

func TestPolicyDoCapsHint(t *testing.T) {
	p := Policy{MaxAttempts: 2, Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond},
		MaxHintWait: 30 * time.Millisecond}
	t0 := time.Now()
	p.Do(context.Background(), func(int) (time.Duration, bool, error) {
		return time.Hour, true, errors.New("hinted")
	})
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("retry waited %s, want the hint capped at 30ms", d)
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusOK: false, http.StatusBadRequest: false, http.StatusNotFound: false,
		http.StatusTooManyRequests: true, http.StatusInternalServerError: false,
		http.StatusServiceUnavailable: true, http.StatusGatewayTimeout: false,
	} {
		if got := RetryableStatus(code); got != want {
			t.Errorf("RetryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestRetryAfter(t *testing.T) {
	h := http.Header{}
	if _, ok := RetryAfter(h); ok {
		t.Fatal("absent header reported ok")
	}
	h.Set("Retry-After", "2")
	if d, ok := RetryAfter(h); !ok || d != 2*time.Second {
		t.Fatalf("seconds form: %s, %v", d, ok)
	}
	h.Set("Retry-After", "0")
	if d, ok := RetryAfter(h); !ok || d != 0 {
		t.Fatalf("zero seconds: %s, %v", d, ok)
	}
	h.Set("Retry-After", time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	if d, ok := RetryAfter(h); !ok || d <= 0 || d > 4*time.Second {
		t.Fatalf("date form: %s, %v", d, ok)
	}
	h.Set("Retry-After", "soon")
	if _, ok := RetryAfter(h); ok {
		t.Fatal("malformed header reported ok")
	}
}

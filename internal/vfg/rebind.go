package vfg

import (
	"repro/internal/andersen"
	"repro/internal/ir"
	"repro/internal/pts"
	"repro/internal/threads"
)

// rebind re-keys a ModRef onto fresh (a program isomorphic to the one it
// was computed for). The mod/ref sets themselves are ObjID bitsets —
// ID-stable under isomorphism — so they are shared; only the function and
// join keys are swapped.
func (mr *ModRef) rebind(fresh *ir.Program) *ModRef {
	nm := &ModRef{
		mod:      make(map[*ir.Function]*pts.Set, len(mr.mod)),
		ref:      make(map[*ir.Function]*pts.Set, len(mr.ref)),
		joinMods: make(map[*ir.Join]*pts.Set, len(mr.joinMods)),
	}
	for f, s := range mr.mod {
		nm.mod[fresh.FuncByName[f.Name]] = s
	}
	for f, s := range mr.ref {
		nm.ref[fresh.FuncByName[f.Name]] = s
	}
	for j, s := range mr.joinMods {
		nm.joinMods[fresh.Stmts[j.ID()].(*ir.Join)] = s
	}
	return nm
}

// Rebind re-targets a completed def-use graph onto fresh, a program for
// which ir.Isomorphic held and whose field objects have been replayed,
// given the rebound pre-analysis and the freshly built thread model. Node
// IDs, the In adjacency (node-ID lists) and the StmtID-keyed store-chi
// index are representation-stable and shared; everything pointer-typed
// (nodes' Obj/Stmt/Func/Blk, edges' ToLoad, the LoadIn and entry/exit
// indexes) is swapped to fresh's identically-numbered entities.
func (g *Graph) Rebind(fresh *ir.Program, pre *andersen.Result, model *threads.Model) *Graph {
	fn := func(f *ir.Function) *ir.Function {
		if f == nil {
			return nil
		}
		return fresh.FuncByName[f.Name]
	}
	load := func(l *ir.Load) *ir.Load {
		return fresh.Stmts[l.ID()].(*ir.Load)
	}
	ng := &Graph{
		Prog:     fresh,
		Pre:      pre,
		Model:    model,
		MR:       g.MR.rebind(fresh),
		Nodes:    make([]*MemNode, len(g.Nodes)),
		Out:      make([][]Edge, len(g.Out)),
		In:       g.In,
		LoadIn:   make(map[*ir.Load][]Edge, len(g.LoadIn)),
		storeChi: g.storeChi,
		entryChi: make(map[funcObjKey]int, len(g.entryChi)),
		exitPhi:  make(map[funcObjKey]int, len(g.exitPhi)),

		ObliviousEdges: g.ObliviousEdges,
		ThreadEdges:    g.ThreadEdges,
		FilteredByLock: g.FilteredByLock,
		FilteredByVF:   g.FilteredByVF,
	}
	// Nodes and out-edges are copied through two arenas — one bump
	// allocation each instead of one heap object per node and one slice
	// header per adjacency row. Rebind is on the warm re-analysis critical
	// path, and this copy dominated its allocation profile.
	arena := make([]MemNode, len(g.Nodes))
	for i, n := range g.Nodes {
		nn := &arena[i]
		nn.ID, nn.Kind, nn.Func = n.ID, n.Kind, fn(n.Func)
		if n.Obj != nil {
			nn.Obj = fresh.Objects[n.Obj.ID]
		}
		if n.Stmt != nil {
			nn.Stmt = fresh.Stmts[n.Stmt.ID()]
		}
		if n.Blk != nil && nn.Func != nil {
			nn.Blk = nn.Func.Blocks[n.Blk.Index]
		}
		ng.Nodes[i] = nn
	}
	total := 0
	for _, outs := range g.Out {
		total += len(outs)
	}
	edges := make([]Edge, 0, total)
	for i, outs := range g.Out {
		if outs == nil {
			continue
		}
		start := len(edges)
		for _, e := range outs {
			if e.ToLoad != nil {
				e.ToLoad = load(e.ToLoad)
			}
			edges = append(edges, e)
		}
		ng.Out[i] = edges[start:len(edges):len(edges)]
	}
	for l, edges := range g.LoadIn {
		nl := load(l)
		ne := make([]Edge, len(edges))
		for j, e := range edges {
			e.ToLoad = nl
			ne[j] = e
		}
		ng.LoadIn[nl] = ne
	}
	for k, id := range g.entryChi {
		ng.entryChi[funcObjKey{f: fn(k.f), obj: k.obj}] = id
	}
	for k, id := range g.exitPhi {
		ng.exitPhi[funcObjKey{f: fn(k.f), obj: k.obj}] = id
	}
	return ng
}

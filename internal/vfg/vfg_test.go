package vfg_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/pipeline"
	"repro/internal/vfg"
)

// build compiles src and constructs the full def-use graph.
func build(t *testing.T, src string) (*pipeline.Base, *vfg.Graph) {
	t.Helper()
	b, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	il := b.Interleavings()
	lk := locks.Analyze(b.Model)
	g := vfg.BuildWithOptions(b.Model, vfg.Options{Interleave: il, Locks: lk})
	return b, g
}

func globalObj(t *testing.T, b *pipeline.Base, name string) *ir.Object {
	t.Helper()
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o
		}
	}
	t.Fatalf("no global %s", name)
	return nil
}

// storesOf returns stores of a function that may write obj.
func storesOf(b *pipeline.Base, fname string, obj *ir.Object) []*ir.Store {
	var out []*ir.Store
	for _, blk := range b.Prog.FuncByName[fname].Blocks {
		for _, s := range blk.Stmts {
			if st, ok := s.(*ir.Store); ok && b.Pre.PointsToVar(st.Addr).Has(uint32(obj.ID)) {
				out = append(out, st)
			}
		}
	}
	return out
}

// loadsOf returns loads of a function that may read obj.
func loadsOf(b *pipeline.Base, fname string, obj *ir.Object) []*ir.Load {
	var out []*ir.Load
	for _, blk := range b.Prog.FuncByName[fname].Blocks {
		for _, s := range blk.Stmts {
			if l, ok := s.(*ir.Load); ok && b.Pre.PointsToVar(l.Addr).Has(uint32(obj.ID)) {
				out = append(out, l)
			}
		}
	}
	return out
}

// hasMemPath reports whether the def-use graph can carry obj's value from
// node `from` to the load (transitively through memory nodes).
func hasMemPath(g *vfg.Graph, from int, load *ir.Load) bool {
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out[n] {
			if e.ToLoad == load {
				return true
			}
			if e.ToMem >= 0 && !seen[e.ToMem] {
				seen[e.ToMem] = true
				stack = append(stack, e.ToMem)
			}
		}
	}
	return false
}

// fig6 is the paper's Figure 6 program: p and q point to o; the fork-related
// and join-related def-use edges must materialize.
const fig6 = `
int o;
int *p; int *q;
int *sink;

void foo(void *arg) {
	*q = &o;      // s4
	sink = *q;    // s5
}

int main() {
	p = &o; q = &o;
	*p = &o;      // s1
	thread_t t;
	t = spawn(foo, NULL);
	*p = &o;      // s2
	join(t);
	sink = *p;    // s3
	return 0;
}
`

func TestFig6DefUseStructure(t *testing.T) {
	b, g := build(t, fig6)
	obj := globalObj(t, b, "o")
	mainStores := storesOf(b, "main", obj)
	fooStores := storesOf(b, "foo", obj)
	if len(mainStores) != 2 || len(fooStores) != 1 {
		t.Fatalf("stores: main=%d foo=%d", len(mainStores), len(fooStores))
	}
	s1, s2 := mainStores[0], mainStores[1]
	s4 := fooStores[0]
	mainLoads := loadsOf(b, "main", obj)
	fooLoads := loadsOf(b, "foo", obj)
	if len(mainLoads) != 1 || len(fooLoads) != 1 {
		t.Fatalf("loads: main=%d foo=%d", len(mainLoads), len(fooLoads))
	}
	s3, s5 := mainLoads[0], fooLoads[0]

	chi := func(s *ir.Store) int { return g.StoreChiNode(s, obj) }

	// s1 flows into foo (fork mu): s1 → s4's chi (weak in) or s5.
	if !hasMemPath(g, chi(s1), s5) && !hasMemPath(g, chi(s4), s5) {
		t.Error("foo's load must see a definition")
	}
	// Fork bypass (Figure 6(c)): s1's value reaches s2's chi directly
	// (s2 is between fork and join).
	found := false
	for _, e := range g.Out[chi(s1)] {
		if e.ToMem == chi(s2) {
			found = true
		}
	}
	if !found {
		t.Error("missing fork-bypass edge s1 → s2 (Figure 6(c))")
	}
	// Join-related flow (Figure 6(d)): s4's value reaches s3.
	if !hasMemPath(g, chi(s4), s3) {
		t.Error("missing join-related flow s4 → s3 (Figure 6(d))")
	}
	// Thread-aware (THREAD-VF): s2 MHP s5 → edge s2 → s5.
	if !hasMemPath(g, chi(s2), s5) {
		t.Error("missing thread-aware flow s2 → s5")
	}
}

func TestNoBypassAfterFullJoin(t *testing.T) {
	// Figure 1(c) shape: value before the fork must NOT flow directly to a
	// use after the full join (the routine definitely completed).
	b, g := build(t, `
int o;
int *p;
int *sink;
void foo(void *arg) {
	*p = &o;
}
int main() {
	p = &o;
	*p = &o;     // pre-fork store
	thread_t t;
	t = spawn(foo, NULL);
	join(t);
	sink = *p;   // post-join load
	return 0;
}
`)
	obj := globalObj(t, b, "o")
	pre := storesOf(b, "main", obj)[0]
	post := loadsOf(b, "main", obj)[0]
	chi := g.StoreChiNode(pre, obj)
	// Direct bypass edge chi(pre) → post must not exist (the flow must go
	// through foo, where it is strongly updated).
	for _, e := range g.Out[chi] {
		if e.ToLoad == post {
			t.Error("stale pre-fork value must not bypass a full join")
		}
	}
}

func TestBypassForUnjoinedThread(t *testing.T) {
	b, g := build(t, `
int o;
int *p;
int *sink;
void foo(void *arg) {
	*p = &o;
}
int main() {
	p = &o;
	*p = &o;     // pre-fork store
	thread_t t;
	t = spawn(foo, NULL);
	sink = *p;   // load with the thread still running
	return 0;
}
`)
	obj := globalObj(t, b, "o")
	pre := storesOf(b, "main", obj)[0]
	load := loadsOf(b, "main", obj)[0]
	chi := g.StoreChiNode(pre, obj)
	found := false
	for _, e := range g.Out[chi] {
		if e.ToLoad == load {
			found = true
		}
	}
	if !found {
		t.Error("pre-fork value must bypass the (possibly unrun) routine")
	}
}

func TestThreadEdgeCounts(t *testing.T) {
	_, g := build(t, fig6)
	if g.ThreadEdges == 0 {
		t.Error("expected thread-aware edges")
	}
	if g.ObliviousEdges == 0 {
		t.Error("expected thread-oblivious edges")
	}
	if g.NumEdges() != g.ThreadEdges+g.ObliviousEdges {
		// NumEdges counts graph edges; LoadIn mirrors load edges, so the
		// totals must be consistent.
		t.Errorf("edge accounting: total=%d thr=%d obl=%d",
			g.NumEdges(), g.ThreadEdges, g.ObliviousEdges)
	}
}

func TestLockFilteringReducesEdges(t *testing.T) {
	src := `
int o;
int *p; int *q;
lock_t m;
void w1(void *arg) {
	lock(&m);
	*p = &o;
	*p = NULL;
	*p = &o;
	unlock(&m);
}
void w2(void *arg) {
	lock(&m);
	int *v;
	v = *q;
	v = *q;
	unlock(&m);
}
int main() {
	p = &o; q = &o;
	thread_t a; thread_t b;
	a = spawn(w1, NULL);
	b = spawn(w2, NULL);
	join(a);
	join(b);
	return 0;
}
`
	b, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	il := b.Interleavings()
	withLocks := vfg.BuildWithOptions(b.Model, vfg.Options{Interleave: il, Locks: locks.Analyze(b.Model)})
	withoutLocks := vfg.BuildWithOptions(b.Model, vfg.Options{Interleave: il})
	if withLocks.ThreadEdges >= withoutLocks.ThreadEdges {
		t.Errorf("lock filtering must remove edges: with=%d without=%d",
			withLocks.ThreadEdges, withoutLocks.ThreadEdges)
	}
	if withLocks.FilteredByLock == 0 {
		t.Error("FilteredByLock counter must be positive")
	}
}

func TestNoValueFlowAddsEdges(t *testing.T) {
	src := fig6
	b, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	il := b.Interleavings()
	normal := vfg.BuildWithOptions(b.Model, vfg.Options{Interleave: il})
	ablated := vfg.BuildWithOptions(b.Model, vfg.Options{Interleave: il, NoValueFlow: true})
	if ablated.ThreadEdges <= normal.ThreadEdges {
		t.Errorf("No-Value-Flow must add edges: normal=%d ablated=%d",
			normal.ThreadEdges, ablated.ThreadEdges)
	}
}

func TestModRef(t *testing.T) {
	b, g := build(t, `
int a; int b2;
int *pa; int *pb;
void writeA() { *pa = &a; }
void readB() { int *v; v = *pb; }
void both() { writeA(); readB(); }
int main() {
	pa = &a; pb = &b2;
	both();
	return 0;
}
`)
	objA := globalObj(t, b, "a")
	objB := globalObj(t, b, "b2")
	writeA := b.Prog.FuncByName["writeA"]
	readB := b.Prog.FuncByName["readB"]
	both := b.Prog.FuncByName["both"]
	if !g.MR.Mod(writeA).Has(uint32(objA.ID)) {
		t.Error("writeA must mod a")
	}
	if g.MR.Mod(readB).Has(uint32(objA.ID)) {
		t.Error("readB must not mod a")
	}
	if !g.MR.Ref(readB).Has(uint32(objB.ID)) {
		t.Error("readB must ref b2")
	}
	// Transitive.
	if !g.MR.Mod(both).Has(uint32(objA.ID)) || !g.MR.Ref(both).Has(uint32(objB.ID)) {
		t.Error("both must inherit callee effects")
	}
}

func TestEntryAndExitNodes(t *testing.T) {
	b, g := build(t, `
int o;
int *p;
void w() { *p = &o; }
int main() {
	p = &o;
	w();
	int *v;
	v = *p;
	return 0;
}
`)
	obj := globalObj(t, b, "o")
	w := b.Prog.FuncByName["w"]
	if g.EntryChiNode(w, obj) < 0 {
		t.Error("w must have an entry chi for o")
	}
	if g.ExitPhiNode(w, obj) < 0 {
		t.Error("w must have an exit phi for o")
	}
	if g.ExitPhiNode(b.Prog.Main, obj) < 0 {
		t.Error("main must have an exit phi for o")
	}
}

func TestGraphBytes(t *testing.T) {
	_, g := build(t, fig6)
	if g.Bytes() == 0 {
		t.Error("graph bytes")
	}
}

func TestMemNodeStringers(t *testing.T) {
	_, g := build(t, fig6)
	for _, n := range g.Nodes {
		if n.String() == "" {
			t.Fatal("empty node string")
		}
	}
}

package vfg_test

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	_, g := build(t, fig6)
	var sb strings.Builder
	if err := g.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph defuse {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("malformed DOT")
	}
	if !strings.Contains(out, "dashed") {
		t.Error("thread-aware edges should render dashed")
	}
	if !strings.Contains(out, "entry-chi") {
		t.Error("entry chis missing from dump")
	}
}

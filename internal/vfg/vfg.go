// Package vfg builds the sparse def-use graph (value-flow graph) that the
// sparse flow-sensitive solver propagates over, implementing Sections 3.2
// and 3.3 of the paper:
//
//   - Thread-oblivious def-use chains: memory SSA (mu/chi annotations and
//     SSA renaming of address-taken objects) over the sequentialized view
//     Pseq in which a fork behaves as a call to its spawn routines (Step 1),
//     with fork-bypass edges (weak chi at fork call sites, Step 2) and
//     join-related edges making the joined thread's side effects visible at
//     the join site (Step 3).
//   - Thread-aware def-use chains ([THREAD-VF]): edges between MHP
//     store-load and store-store pairs with a common pointed-to object,
//     filtered by the lock analysis' non-interference pairs (Definition 6).
//
// Graph shape: memory definitions are MemNodes (store chis, call/fork chis,
// join chis, entry chis, exit phis, memory phis), each carrying one object.
// Edges flow points-to sets from a definition to either another MemNode or
// a Load statement (which feeds its destination top-level variable).
package vfg

import (
	"context"
	"fmt"

	"repro/internal/andersen"
	"repro/internal/dom"
	"repro/internal/engine"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pcg"
	"repro/internal/threads"
)

// MemKind classifies memory-definition nodes.
type MemKind uint8

const (
	// MStoreChi is the definition of one object at a Store.
	MStoreChi MemKind = iota
	// MCallChi is the definition at a call or fork site of an object the
	// callee may modify.
	MCallChi
	// MJoinChi is the definition at a join site of an object the joined
	// thread may modify (Step 3).
	MJoinChi
	// MEntryChi is the formal-in definition at a function entry.
	MEntryChi
	// MExitPhi merges an object's definitions at a function's exits.
	MExitPhi
	// MPhi is a memory phi at a block head.
	MPhi
)

func (k MemKind) String() string {
	switch k {
	case MStoreChi:
		return "chi"
	case MCallChi:
		return "call-chi"
	case MJoinChi:
		return "join-chi"
	case MEntryChi:
		return "entry-chi"
	case MExitPhi:
		return "exit-phi"
	case MPhi:
		return "mphi"
	}
	return fmt.Sprintf("MemKind(%d)", uint8(k))
}

// MemNode is one memory definition in the def-use graph.
type MemNode struct {
	ID   int
	Kind MemKind
	Obj  *ir.Object
	Stmt ir.Stmt      // Store / Call / Fork / Join; nil for entry/exit/phi
	Func *ir.Function // owning function
	Blk  *ir.Block    // for MPhi
}

func (n *MemNode) String() string {
	switch n.Kind {
	case MStoreChi, MCallChi, MJoinChi:
		return fmt.Sprintf("%s(%s @ %s)", n.Kind, n.Obj, n.Stmt)
	case MPhi:
		return fmt.Sprintf("mphi(%s @ %s.%s)", n.Obj, n.Func, n.Blk)
	default:
		return fmt.Sprintf("%s(%s @ %s)", n.Kind, n.Obj, n.Func)
	}
}

// Edge carries a memory definition to a consumer: another MemNode or a Load
// statement. ThreadAware marks [THREAD-VF] edges; Ungated marks ablation
// (No-Value-Flow) edges that bypass the solver's pointer gate.
type Edge struct {
	ToMem       int // MemNode ID, or -1
	ToLoad      *ir.Load
	ThreadAware bool
	Ungated     bool
}

// Options configure graph construction (the paper's ablations).
type Options struct {
	// Interleave supplies precise statement-instance MHP facts. When nil,
	// PCG is used instead (the No-Interleaving configuration).
	Interleave *mhp.Result
	// PCG is the coarse procedure-level MHP (required when Interleave is
	// nil).
	PCG *pcg.Result
	// Locks enables non-interference filtering; nil disables it (the
	// No-Lock configuration).
	Locks *locks.Result
	// NoValueFlow disables the aliasing premise of [THREAD-VF]: every MHP
	// store-access pair gets edges for all objects the store may define.
	NoValueFlow bool
	// ThreadOblivious skips [THREAD-VF] entirely: only the sequential
	// memory-SSA def-use chains (plus fork bypass and join edges) are
	// built, and no interference analysis is consulted. This is the
	// degradation ladder's middle tier — a flow-sensitive result that
	// ignores cross-thread value flows, used when the interference phases
	// or the full sparse solve fail by panic or budget.
	ThreadOblivious bool
	// Escape is the thread-escape pruning oracle: [THREAD-VF] construction
	// skips objects it proves non-Shared (no accessor pair may run in
	// parallel, so no statement-level MHP store-access pair exists for
	// them). Nil disables pruning. It is never consulted under
	// NoValueFlow, whose ungated ablation edges bypass the pointer gate
	// the oracle's soundness argument relies on.
	Escape *escape.Result
}

// Graph is the finished def-use graph.
type Graph struct {
	Prog  *ir.Program
	Pre   *andersen.Result
	Model *threads.Model
	MR    *ModRef

	Nodes []*MemNode
	// Out and In are edge lists per MemNode ID.
	Out [][]Edge
	In  [][]int
	// LoadIn lists the incoming definition nodes of each Load.
	LoadIn map[*ir.Load][]Edge

	// storeChi indexes StoreChi nodes by (store, obj).
	storeChi map[stmtObjKey]int
	entryChi map[funcObjKey]int
	exitPhi  map[funcObjKey]int

	// Stats.
	ObliviousEdges int
	ThreadEdges    int
	FilteredByLock int
	FilteredByVF   int
	// FilteredByEscape counts objects whose [THREAD-VF] candidate pairs
	// were skipped wholesale because the escape oracle proved them
	// non-shared.
	FilteredByEscape int
}

type stmtObjKey struct {
	stmt ir.StmtID
	obj  ir.ObjID
}

type funcObjKey struct {
	f   *ir.Function
	obj ir.ObjID
}

// Build constructs the def-use graph.
func Build(model *threads.Model, lk *locks.Result, il *mhp.Result, pc *pcg.Result, opt Options) *Graph {
	opt.Locks = lk
	opt.Interleave = il
	opt.PCG = pc
	return BuildWithOptions(model, opt)
}

// BuildWithOptions constructs the def-use graph with explicit options.
func BuildWithOptions(model *threads.Model, opt Options) *Graph {
	g, _ := BuildCtx(context.Background(), model, opt)
	return g
}

// BuildCtx constructs the def-use graph under a context. On cancellation
// it returns (nil, ctx.Err()); the construction loops (SSA renaming,
// fork-bypass wiring, [THREAD-VF] pair enumeration) poll periodically.
func BuildCtx(ctx context.Context, model *threads.Model, opt Options) (*Graph, error) {
	g := &Graph{
		Prog:     model.Prog,
		Pre:      model.Pre,
		Model:    model,
		MR:       computeModRef(model.Pre, model),
		LoadIn:   map[*ir.Load][]Edge{},
		storeChi: map[stmtObjKey]int{},
		entryChi: map[funcObjKey]int{},
		exitPhi:  map[funcObjKey]int{},
	}
	b := &gbuilder{
		g:        g,
		opt:      opt,
		forkDefs: map[*ir.Fork]map[ir.ObjID]int{},
		seenMem:  map[memEdgeKey]bool{},
		seenLoad: map[loadEdgeKey]bool{},
		cancel:   engine.NewLimitedCanceller(ctx),
	}
	if err := b.buildOblivious(); err != nil {
		return nil, err
	}
	if err := b.buildForkBypass(); err != nil {
		return nil, err
	}
	if !opt.ThreadOblivious {
		if err := b.buildThreadAware(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// StoreChiNode returns the node ID for (store, obj), or -1.
func (g *Graph) StoreChiNode(s *ir.Store, obj *ir.Object) int {
	if id, ok := g.storeChi[stmtObjKey{stmt: s.ID(), obj: obj.ID}]; ok {
		return id
	}
	return -1
}

// EntryChiNode returns the entry-chi node ID for (f, obj), or -1.
func (g *Graph) EntryChiNode(f *ir.Function, obj *ir.Object) int {
	if id, ok := g.entryChi[funcObjKey{f: f, obj: obj.ID}]; ok {
		return id
	}
	return -1
}

// ExitPhiNode returns the exit-phi node ID for (f, obj), or -1. The exit
// phi of main holds an object's final points-to set, which is what the
// facade reports for whole-program queries.
func (g *Graph) ExitPhiNode(f *ir.Function, obj *ir.Object) int {
	if id, ok := g.exitPhi[funcObjKey{f: f, obj: obj.ID}]; ok {
		return id
	}
	return -1
}

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, out := range g.Out {
		n += len(out)
	}
	return n
}

// Bytes estimates the graph's memory footprint.
func (g *Graph) Bytes() uint64 {
	var total uint64
	total += uint64(len(g.Nodes)) * 64
	total += uint64(g.NumEdges()) * 24
	for _, in := range g.In {
		total += uint64(len(in)) * 8
	}
	return total
}

// gbuilder carries construction state.
type gbuilder struct {
	g   *Graph
	opt Options

	// forkDefs records, per fork site and modified object, the memory
	// definition reaching the fork (the pre-fork value); buildForkBypass
	// wires these to the uses between the fork and its join (Step 2).
	forkDefs map[*ir.Fork]map[ir.ObjID]int

	// seenMem and seenLoad deduplicate edges in O(1).
	seenMem  map[memEdgeKey]bool
	seenLoad map[loadEdgeKey]bool

	cancel *engine.Canceller
}

type memEdgeKey struct {
	from, to int
	ungated  bool
}

type loadEdgeKey struct {
	from    int
	load    *ir.Load
	ungated bool
}

func (b *gbuilder) newNode(kind MemKind, obj *ir.Object, stmt ir.Stmt, f *ir.Function, blk *ir.Block) int {
	g := b.g
	n := &MemNode{ID: len(g.Nodes), Kind: kind, Obj: obj, Stmt: stmt, Func: f, Blk: blk}
	g.Nodes = append(g.Nodes, n)
	g.Out = append(g.Out, nil)
	g.In = append(g.In, nil)
	return n.ID
}

// addMemEdge wires def → MemNode.
func (b *gbuilder) addMemEdge(from, to int, threadAware bool, ungated bool) {
	if from < 0 || to < 0 || from == to {
		return
	}
	g := b.g
	key := memEdgeKey{from: from, to: to, ungated: ungated}
	if b.seenMem[key] {
		return
	}
	b.seenMem[key] = true
	g.Out[from] = append(g.Out[from], Edge{ToMem: to, ThreadAware: threadAware, Ungated: ungated})
	g.In[to] = append(g.In[to], from)
	if threadAware {
		g.ThreadEdges++
	} else {
		g.ObliviousEdges++
	}
}

// addLoadEdge wires def → load.
func (b *gbuilder) addLoadEdge(from int, l *ir.Load, threadAware bool, ungated bool) {
	if from < 0 {
		return
	}
	g := b.g
	key := loadEdgeKey{from: from, load: l, ungated: ungated}
	if b.seenLoad[key] {
		return
	}
	b.seenLoad[key] = true
	e := Edge{ToMem: -1, ToLoad: l, ThreadAware: threadAware, Ungated: ungated}
	g.Out[from] = append(g.Out[from], e)
	g.LoadIn[l] = append(g.LoadIn[l], Edge{ToMem: from, ToLoad: l, ThreadAware: threadAware, Ungated: ungated})
	if threadAware {
		g.ThreadEdges++
	} else {
		g.ObliviousEdges++
	}
}

// ---- Thread-oblivious construction (memory SSA over Pseq) ----

func (b *gbuilder) buildOblivious() error {
	g := b.g
	// Pre-create entry chis and exit phis so interprocedural edges can be
	// wired during each function's renaming regardless of order.
	for _, f := range g.Prog.Funcs {
		refs := g.MR.Ref(f).Copy()
		refs.UnionWith(g.MR.Mod(f))
		refs.ForEach(func(id uint32) {
			obj := g.Prog.Objects[id]
			key := funcObjKey{f: f, obj: obj.ID}
			g.entryChi[key] = b.newNode(MEntryChi, obj, nil, f, nil)
		})
		g.MR.Mod(f).ForEach(func(id uint32) {
			obj := g.Prog.Objects[id]
			key := funcObjKey{f: f, obj: obj.ID}
			g.exitPhi[key] = b.newNode(MExitPhi, obj, nil, f, nil)
		})
	}
	for _, f := range g.Prog.Funcs {
		if b.cancel.Cancelled() {
			return b.cancel.Err()
		}
		b.renameFunc(f)
	}
	return nil
}

// calleesAt returns the Pseq callees of a statement: call targets, fork
// routines, or joined-thread routines.
func (b *gbuilder) calleesAt(s ir.Stmt) []*ir.Function {
	switch s := s.(type) {
	case *ir.Call:
		return b.g.Pre.CallTargets[s]
	case *ir.Fork:
		return b.g.Pre.ForkTargets[s]
	case *ir.Join:
		var out []*ir.Function
		seen := map[*ir.Function]bool{}
		for _, e := range b.g.Model.JoinEdgesAt(s) {
			for _, r := range e.Joinee.Routines {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
		return out
	}
	return nil
}

// renameFunc performs block-level memory-SSA construction for one function.
func (b *gbuilder) renameFunc(f *ir.Function) {
	g := b.g
	if f.Entry == nil {
		return
	}
	objsOf := g.MR.Ref(f).Copy()
	objsOf.UnionWith(g.MR.Mod(f))
	if objsOf.IsEmpty() {
		return
	}

	// Definition blocks per object.
	defBlocks := map[ir.ObjID][]*ir.Block{}
	addDef := func(obj ir.ObjID, blk *ir.Block) {
		defBlocks[obj] = append(defBlocks[obj], blk)
	}
	for _, blk := range f.Blocks {
		for _, s := range blk.Stmts {
			switch s := s.(type) {
			case *ir.Store:
				g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
					addDef(ir.ObjID(id), blk)
				})
			case *ir.Call, *ir.Fork:
				for _, callee := range b.calleesAt(s) {
					g.MR.Mod(callee).ForEach(func(id uint32) {
						addDef(ir.ObjID(id), blk)
					})
				}
			case *ir.Join:
				g.MR.JoinMods(s).ForEach(func(id uint32) {
					addDef(ir.ObjID(id), blk)
				})
			}
		}
	}

	// Phi placement.
	d := dom.Compute(f)
	type blockPhi struct {
		obj  ir.ObjID
		node int
	}
	phisAt := map[*ir.Block][]blockPhi{}
	for objID, blocks := range defBlocks {
		obj := g.Prog.Objects[objID]
		for _, fb := range d.IteratedFrontier(blocks) {
			phisAt[fb] = append(phisAt[fb], blockPhi{obj: objID, node: b.newNode(MPhi, obj, nil, f, fb)})
		}
	}

	// Renaming along the dominator tree with an undo log.
	cur := map[ir.ObjID]int{} // current definition node per object
	objsOf.ForEach(func(id uint32) {
		if ec, ok := g.entryChi[funcObjKey{f: f, obj: ir.ObjID(id)}]; ok {
			cur[ir.ObjID(id)] = ec
		}
	})

	curDef := func(obj ir.ObjID) int {
		if n, ok := cur[obj]; ok {
			return n
		}
		return -1
	}

	var rename func(blk *ir.Block)
	rename = func(blk *ir.Block) {
		type undo struct {
			obj  ir.ObjID
			node int
			had  bool
		}
		var undos []undo
		set := func(obj ir.ObjID, node int) {
			old, had := cur[obj]
			undos = append(undos, undo{obj: obj, node: old, had: had})
			cur[obj] = node
		}

		// Phis at block head.
		for _, p := range phisAt[blk] {
			set(p.obj, p.node)
		}

		for _, s := range blk.Stmts {
			switch s := s.(type) {
			case *ir.Load:
				g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
					b.addLoadEdge(curDef(ir.ObjID(id)), s, false, false)
				})

			case *ir.Store:
				g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
					obj := g.Prog.Objects[id]
					chi := b.newNode(MStoreChi, obj, s, f, blk)
					g.storeChi[stmtObjKey{stmt: s.ID(), obj: obj.ID}] = chi
					// Weak-in edge: the old contents flow into the chi; the
					// solver kills them when a strong update applies.
					b.addMemEdge(curDef(obj.ID), chi, false, false)
					set(obj.ID, chi)
				})

			case *ir.Call, *ir.Fork, *ir.Join:
				callees := b.calleesAt(s)
				if len(callees) == 0 {
					break
				}
				_, isFork := s.(*ir.Fork)
				_, isJoin := s.(*ir.Join)

				// mu: current versions flow into callee entry chis.
				modHere := map[ir.ObjID]bool{}
				anyNonMod := map[ir.ObjID]bool{}
				for _, callee := range callees {
					refs := g.MR.Ref(callee).Copy()
					refs.UnionWith(g.MR.Mod(callee))
					refs.ForEach(func(id uint32) {
						ec := g.entryChi[funcObjKey{f: callee, obj: ir.ObjID(id)}]
						b.addMemEdge(curDef(ir.ObjID(id)), ec, false, false)
					})
					g.MR.Mod(callee).ForEach(func(id uint32) {
						modHere[ir.ObjID(id)] = true
					})
				}
				for _, callee := range callees {
					for objID := range modHere {
						if !g.MR.Mod(callee).Has(uint32(objID)) {
							anyNonMod[objID] = true
						}
					}
				}
				if isJoin {
					// Joins only absorb the joined routines' mods.
					modHere = map[ir.ObjID]bool{}
					g.MR.JoinMods(s.(*ir.Join)).ForEach(func(id uint32) {
						modHere[ir.ObjID(id)] = true
					})
				}

				// chi: callee exit versions define the object here.
				for objID := range modHere {
					obj := g.Prog.Objects[objID]
					kind := MCallChi
					if isJoin {
						kind = MJoinChi
					}
					chi := b.newNode(kind, obj, s, f, blk)
					for _, callee := range callees {
						if ep, ok := g.exitPhi[funcObjKey{f: callee, obj: objID}]; ok {
							b.addMemEdge(ep, chi, false, false)
						}
					}
					// Joins merge the routine's exit state with the current
					// value (the spawner may have written in parallel);
					// calls with a non-modifying callee flow through. Fork
					// chis are strong: the deferred-execution case (Step 2)
					// is handled by separate bypass edges from the pre-fork
					// definition to every use between the fork and its join
					// (see buildForkBypass).
					if isJoin || (!isFork && anyNonMod[objID]) {
						b.addMemEdge(curDef(objID), chi, false, false)
					}
					if isFork {
						fk := s.(*ir.Fork)
						if b.forkDefs[fk] == nil {
							b.forkDefs[fk] = map[ir.ObjID]int{}
						}
						b.forkDefs[fk][objID] = curDef(objID)
					}
					set(objID, chi)
				}

			case *ir.Ret:
				g.MR.Mod(f).ForEach(func(id uint32) {
					ep := g.exitPhi[funcObjKey{f: f, obj: ir.ObjID(id)}]
					b.addMemEdge(curDef(ir.ObjID(id)), ep, false, false)
				})
			}
		}

		// Fill memory-phi inputs of CFG successors.
		for _, succ := range blk.Succs {
			for _, p := range phisAt[succ] {
				b.addMemEdge(curDef(p.obj), p.node, false, false)
			}
		}

		for _, child := range d.Children(blk) {
			rename(child)
		}
		// Undo in reverse order.
		for i := len(undos) - 1; i >= 0; i-- {
			u := undos[i]
			if u.had {
				cur[u.obj] = u.node
			} else {
				delete(cur, u.obj)
			}
		}
	}
	rename(f.Entry)
}

package vfg

import (
	"repro/internal/andersen"
	"repro/internal/ir"
	"repro/internal/pts"
	"repro/internal/threads"
)

// ModRef holds, for every function, the sets of abstract objects it may
// store to (Mod) and load from (Ref), transitively including callees and —
// because the sequential view Pseq treats a fork as a call to its spawn
// routines (paper Section 3.2, Step 1) — fork routines. Join sites absorb
// the Mod sets of the joined threads' routines so their side effects become
// visible at the join (Step 3).
type ModRef struct {
	mod map[*ir.Function]*pts.Set
	ref map[*ir.Function]*pts.Set

	// joinMods caches, per handled join site, the Mod set of the joined
	// threads' start routines.
	joinMods map[*ir.Join]*pts.Set
}

// Mod returns the transitive may-store set of f (never nil).
func (mr *ModRef) Mod(f *ir.Function) *pts.Set {
	if s := mr.mod[f]; s != nil {
		return s
	}
	return &pts.Set{}
}

// Ref returns the transitive may-load set of f (never nil).
func (mr *ModRef) Ref(f *ir.Function) *pts.Set {
	if s := mr.ref[f]; s != nil {
		return s
	}
	return &pts.Set{}
}

// JoinMods returns the objects that may be modified by the threads joined
// at j (empty for unhandled joins).
func (mr *ModRef) JoinMods(j *ir.Join) *pts.Set {
	if s := mr.joinMods[j]; s != nil {
		return s
	}
	return &pts.Set{}
}

// computeModRef runs the interprocedural mod-ref fixpoint.
func computeModRef(pre *andersen.Result, model *threads.Model) *ModRef {
	mr := &ModRef{
		mod:      map[*ir.Function]*pts.Set{},
		ref:      map[*ir.Function]*pts.Set{},
		joinMods: map[*ir.Join]*pts.Set{},
	}
	prog := pre.Prog
	for _, f := range prog.Funcs {
		mr.mod[f] = &pts.Set{}
		mr.ref[f] = &pts.Set{}
	}

	// Direct effects.
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s := s.(type) {
				case *ir.Store:
					mr.mod[f].UnionWith(pre.PointsToVar(s.Addr))
				case *ir.Load:
					mr.ref[f].UnionWith(pre.PointsToVar(s.Addr))
				}
			}
		}
	}

	// Routines joined at each handled join site.
	joinRoutines := map[*ir.Join][]*ir.Function{}
	for _, e := range model.Joins {
		joinRoutines[e.Site] = append(joinRoutines[e.Site], e.Joinee.Routines...)
	}

	// Transitive closure over calls, forks (Pseq) and joins.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				for _, s := range b.Stmts {
					var callees []*ir.Function
					switch s := s.(type) {
					case *ir.Call:
						callees = pre.CallTargets[s]
					case *ir.Fork:
						callees = pre.ForkTargets[s]
					case *ir.Join:
						callees = joinRoutines[s]
					default:
						continue
					}
					for _, callee := range callees {
						if mr.mod[f].UnionWith(mr.mod[callee]) {
							changed = true
						}
						if mr.ref[f].UnionWith(mr.ref[callee]) {
							changed = true
						}
					}
				}
			}
		}
	}

	for j, routines := range joinRoutines {
		set := &pts.Set{}
		for _, r := range routines {
			set.UnionWith(mr.mod[r])
		}
		mr.joinMods[j] = set
	}
	return mr
}

package vfg

import (
	"repro/internal/ir"
)

// buildForkBypass implements Step 2 of the thread-oblivious def-use
// construction (paper Section 3.2): the side effects of a forked routine
// may be deferred arbitrarily, so the definition reaching the fork site can
// bypass the routine entirely and reach any use of the object between the
// fork and a join that is guaranteed to have retired the thread. The fork's
// callsite chi itself is strong (it carries the routine's completed exit
// state, which is the only state possible after the join), and these
// separate bypass edges carry the pre-fork value to the in-between uses —
// reproducing both the soundness of Figure 6(c) and the precision of
// Figure 1(c).
func (b *gbuilder) buildForkBypass() error {
	for fork, defs := range b.forkDefs {
		if b.cancel.Cancelled() {
			return b.cancel.Err()
		}
		f := ir.StmtFunc(fork)
		if f == nil {
			continue
		}
		active := b.forkActiveStmts(f, fork)
		for s, isActive := range active {
			if !isActive {
				continue
			}
			b.bypassUse(s, defs)
		}
	}
	return nil
}

// bypassUse adds edges from the recorded pre-fork definitions to the uses
// of the corresponding objects at statement s.
func (b *gbuilder) bypassUse(s ir.Stmt, defs map[ir.ObjID]int) {
	g := b.g
	switch s := s.(type) {
	case *ir.Load:
		g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
			if def, ok := defs[ir.ObjID(id)]; ok {
				b.addLoadEdge(def, s, false, false)
			}
		})
	case *ir.Store:
		g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
			if def, ok := defs[ir.ObjID(id)]; ok {
				if chi := g.StoreChiNode(s, g.Prog.Objects[id]); chi >= 0 {
					b.addMemEdge(def, chi, false, false)
				}
			}
		})
	case *ir.Call, *ir.Fork, *ir.Join:
		for _, callee := range b.calleesAt(s) {
			refs := g.MR.Ref(callee).Copy()
			refs.UnionWith(g.MR.Mod(callee))
			refs.ForEach(func(id uint32) {
				if def, ok := defs[ir.ObjID(id)]; ok {
					if ec := g.EntryChiNode(callee, g.Prog.Objects[id]); ec >= 0 {
						b.addMemEdge(def, ec, false, false)
					}
				}
			})
		}
	case *ir.Ret:
		f := ir.StmtFunc(s)
		for objID, def := range defs {
			if ep, ok := g.exitPhi[funcObjKey{f: f, obj: objID}]; ok {
				b.addMemEdge(def, ep, false, false)
			}
		}
	}
}

// forkActiveStmts computes, per statement of f, whether the pre-fork value
// may still be current: the statement is forward-reachable from the fork
// and not every path from the fork to it passes a (handled) join of the
// fork's threads. Symmetric join-all loops count as passed once their loop
// exits (Figure 11).
func (b *gbuilder) forkActiveStmts(f *ir.Function, fork *ir.Fork) map[ir.Stmt]bool {
	model := b.g.Model

	// Join statements in f that retire this fork's threads, plus the loop
	// IDs whose exit retires them (join-all).
	joinStmts := map[*ir.Join]bool{}
	joinAllLoops := map[int]bool{}
	for _, e := range model.Joins {
		if e.Joinee.Fork != fork || ir.StmtFunc(e.Site) != f {
			continue
		}
		if e.JoinAll {
			joinAllLoops[e.Site.LoopID] = true
		} else {
			joinStmts[e.Site] = true
		}
	}

	type fact struct {
		reached    bool
		mustJoined bool
	}
	forkBlk := fork.Parent()
	if forkBlk == nil {
		return nil
	}

	// exitsJoinLoop reports whether the edge u→v leaves a join-all loop.
	exitsJoinLoop := func(u, v *ir.Block) bool {
		for _, id := range u.Loops {
			if !joinAllLoops[id] {
				continue
			}
			inV := false
			for _, vid := range v.Loops {
				if vid == id {
					inV = true
					break
				}
			}
			if !inV {
				return true
			}
		}
		return false
	}

	// transfer runs cur through blk's statements (whole block).
	transfer := func(blk *ir.Block, cur fact) fact {
		for _, s := range blk.Stmts {
			if j, ok := s.(*ir.Join); ok && joinStmts[j] {
				cur.mustJoined = true
			}
		}
		return cur
	}

	// seedOut is the fact leaving the fork's block via the region start
	// (statements after the fork).
	seedOut := fact{reached: true}
	pastFork := false
	for _, s := range forkBlk.Stmts {
		if s == ir.Stmt(fork) {
			pastFork = true
			continue
		}
		if !pastFork {
			continue
		}
		if j, ok := s.(*ir.Join); ok && joinStmts[j] {
			seedOut.mustJoined = true
		}
	}

	// Fixpoint over block-entry facts: reached meets with OR, mustJoined
	// with AND over reached predecessors (optimistic start).
	in := map[*ir.Block]fact{}
	out := map[*ir.Block]fact{forkBlk: seedOut}
	for changed := true; changed; {
		changed = false
		for _, blk := range f.Blocks {
			newIn := fact{mustJoined: true}
			for _, p := range blk.Preds {
				po := out[p]
				if !po.reached {
					continue
				}
				ef := po
				if exitsJoinLoop(p, blk) {
					ef.mustJoined = true
				}
				newIn.reached = true
				newIn.mustJoined = newIn.mustJoined && ef.mustJoined
			}
			if !newIn.reached {
				newIn.mustJoined = false
			}
			if newIn != in[blk] {
				in[blk] = newIn
				changed = true
			}
			newOut := transfer(blk, newIn)
			if blk == forkBlk {
				// Merge the seed: the region always starts after the fork.
				newOut = fact{
					reached:    true,
					mustJoined: seedOut.mustJoined && (!newIn.reached || newOut.mustJoined),
				}
			}
			if newOut != out[blk] {
				out[blk] = newOut
				changed = true
			}
		}
	}

	// Final marking with converged facts.
	active := map[ir.Stmt]bool{}
	mark := func(blk *ir.Block, cur fact, fromFork bool) {
		started := !fromFork
		for _, s := range blk.Stmts {
			if !started {
				if s == ir.Stmt(fork) {
					started = true
				}
				continue
			}
			if cur.reached && !cur.mustJoined {
				active[s] = true
			}
			if j, ok := s.(*ir.Join); ok && joinStmts[j] {
				cur.mustJoined = true
			}
		}
	}
	mark(forkBlk, fact{reached: true}, true)
	for _, blk := range f.Blocks {
		if cur, ok := in[blk]; ok && cur.reached {
			mark(blk, cur, false)
		}
	}
	return active
}

package vfg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the def-use graph in Graphviz DOT format, mirroring the
// SVF implementation's graph dumps. Memory-definition nodes are boxes
// (thread-aware edges dashed red, ablation edges dotted); loads appear as
// ellipses.
func (g *Graph) WriteDot(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph defuse {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"monospace\", fontsize=10];\n")

	esc := func(s string) string {
		s = strings.ReplaceAll(s, "\\", "\\\\")
		return strings.ReplaceAll(s, "\"", "\\\"")
	}

	for _, n := range g.Nodes {
		shape := "box"
		color := "black"
		switch n.Kind {
		case MEntryChi, MExitPhi:
			color = "blue"
		case MJoinChi, MCallChi:
			color = "darkgreen"
		case MPhi:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  m%d [shape=%s, color=%s, label=\"%s\"];\n",
			n.ID, shape, color, esc(n.String()))
	}

	loadID := map[string]bool{}
	for _, n := range g.Nodes {
		for _, e := range g.Out[n.ID] {
			style := "solid"
			color := "black"
			if e.ThreadAware {
				style, color = "dashed", "red"
			}
			if e.Ungated {
				style = "dotted"
			}
			if e.ToMem >= 0 {
				fmt.Fprintf(&b, "  m%d -> m%d [style=%s, color=%s];\n",
					n.ID, e.ToMem, style, color)
			} else if e.ToLoad != nil {
				lid := fmt.Sprintf("l%d", e.ToLoad.ID())
				if !loadID[lid] {
					loadID[lid] = true
					fmt.Fprintf(&b, "  %s [shape=ellipse, label=\"%s\"];\n",
						lid, esc(e.ToLoad.String()))
				}
				fmt.Fprintf(&b, "  m%d -> %s [style=%s, color=%s];\n",
					n.ID, lid, style, color)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

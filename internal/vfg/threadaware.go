package vfg

import (
	"repro/internal/ir"
	"repro/internal/locks"
)

// buildThreadAware adds the [THREAD-VF] def-use edges (Section 3.3.2): for
// every MHP store-load or store-store pair with a common pointed-to object
// o ∈ AS(*p,*q), an edge from the store's chi of o to the peer access. The
// lock analysis filters non-interference pairs (Definition 6); the
// No-Value-Flow ablation drops the aliasing premise and connects every MHP
// pair over all objects the store may define.
func (b *gbuilder) buildThreadAware() error {
	g := b.g

	// Index memory accesses by the objects they may touch.
	var stores []*ir.Store
	var loads []*ir.Load
	storesOf := map[ir.ObjID][]*ir.Store{}
	accessesOf := map[ir.ObjID][]ir.Stmt{}
	for _, s := range g.Prog.Stmts {
		switch s := s.(type) {
		case *ir.Store:
			stores = append(stores, s)
			g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
				storesOf[ir.ObjID(id)] = append(storesOf[ir.ObjID(id)], s)
				accessesOf[ir.ObjID(id)] = append(accessesOf[ir.ObjID(id)], s)
			})
		case *ir.Load:
			loads = append(loads, s)
			g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
				accessesOf[ir.ObjID(id)] = append(accessesOf[ir.ObjID(id)], s)
			})
		}
	}

	if b.opt.NoValueFlow {
		// Ablation: connect every MHP store-access pair over every object
		// the store may define, ignoring whether the access aliases it.
		for _, s := range stores {
			var peers []ir.Stmt
			for _, l := range loads {
				peers = append(peers, l)
			}
			for _, s2 := range stores {
				if s2 != s {
					peers = append(peers, s2)
				}
			}
			for _, peer := range peers {
				if b.cancel.Cancelled() {
					return b.cancel.Err()
				}
				if !b.pairMHP(s, peer) {
					continue
				}
				g.Pre.PointsToVar(s.Addr).ForEach(func(id uint32) {
					obj := g.Prog.Objects[id]
					if b.lockFiltered(s, peer, obj) {
						g.FilteredByLock++
						return
					}
					b.connect(s, peer, obj)
				})
			}
		}
		return nil
	}

	// Normal mode: object-grouped aliased pairs. A statement pair sharing
	// several objects is MHP-checked once (cached).
	type pairKey struct{ a, b ir.StmtID }
	mhpCache := map[pairKey]bool{}
	cachedMHP := func(s, peer ir.Stmt) bool {
		k := pairKey{a: s.ID(), b: peer.ID()}
		if v, ok := mhpCache[k]; ok {
			return v
		}
		v := b.pairMHP(s, peer)
		mhpCache[k] = v
		return v
	}
	for objID, ss := range storesOf {
		// Thread-escape pruning: a non-Shared object has no accessor pair
		// that may run in parallel, so statement-level MHP — which refines
		// thread-level MHP — rejects every candidate pair below. Skipping
		// the object wholesale is result-identical; it only saves the MHP
		// and lock-filter work.
		if b.opt.Escape != nil && !b.opt.Escape.IsShared(objID) {
			g.FilteredByEscape++
			continue
		}
		obj := g.Prog.Objects[objID]
		for _, s := range ss {
			for _, peer := range accessesOf[objID] {
				if b.cancel.Cancelled() {
					return b.cancel.Err()
				}
				if peer == ir.Stmt(s) {
					continue
				}
				if !cachedMHP(s, peer) {
					g.FilteredByVF++
					continue
				}
				if b.lockFiltered(s, peer, obj) {
					g.FilteredByLock++
					continue
				}
				b.connect(s, peer, obj)
			}
		}
	}
	return nil
}

// connect adds the thread-aware edge store --obj--> peer.
func (b *gbuilder) connect(s *ir.Store, peer ir.Stmt, obj *ir.Object) {
	chi := b.g.StoreChiNode(s, obj)
	ungated := false
	if chi < 0 {
		// Ablation edges may involve objects without a chi (the store does
		// not alias them per pre-analysis); materialize one so the flow
		// still costs propagation work, and mark the edge ungated.
		if !b.opt.NoValueFlow {
			return
		}
		chi = b.newNode(MStoreChi, obj, s, ir.StmtFunc(s), s.Parent())
		b.g.storeChi[stmtObjKey{stmt: s.ID(), obj: obj.ID}] = chi
		ungated = true
	}
	switch peer := peer.(type) {
	case *ir.Load:
		gate := ungated || !b.g.Pre.PointsToVar(peer.Addr).Has(uint32(obj.ID))
		b.addLoadEdge(chi, peer, true, gate)
	case *ir.Store:
		peerChi := b.g.StoreChiNode(peer, obj)
		if peerChi < 0 {
			if !b.opt.NoValueFlow {
				return
			}
			peerChi = b.newNode(MStoreChi, obj, peer, ir.StmtFunc(peer), peer.Parent())
			b.g.storeChi[stmtObjKey{stmt: peer.ID(), obj: obj.ID}] = peerChi
		}
		b.addMemEdge(chi, peerChi, true, ungated)
	}
}

// pairMHP decides statement-level MHP using either the precise interleaving
// analysis or PCG.
func (b *gbuilder) pairMHP(s, peer ir.Stmt) bool {
	if b.opt.Interleave != nil {
		return b.opt.Interleave.MHPStmts(s, peer)
	}
	return b.opt.PCG.MHPStmts(s, peer)
}

// lockFiltered reports whether every MHP instance pair of (store s, access
// peer) is a non-interference lock pair for obj, in which case the edge is
// spurious and omitted (Definition 6).
func (b *gbuilder) lockFiltered(s *ir.Store, peer ir.Stmt, obj *ir.Object) bool {
	if b.opt.Locks == nil {
		return false
	}
	if b.opt.Interleave != nil {
		pairs := b.opt.Interleave.MHPInstances(s, peer)
		if len(pairs) == 0 {
			return false // pairMHP said yes, so this should not happen
		}
		for _, pr := range pairs {
			st := locks.Inst{Thread: pr[0].Thread, Ctx: pr[0].Ctx, Stmt: s}
			ac := locks.Inst{Thread: pr[1].Thread, Ctx: pr[1].Ctx, Stmt: peer}
			if !b.opt.Locks.NonInterfering(st, ac, obj) {
				return false // at least one instance pair may interfere
			}
		}
		return true
	}
	// PCG mode: enumerate instances from the thread model.
	sInsts := b.instancesOf(s)
	pInsts := b.instancesOf(peer)
	any := false
	for _, i1 := range sInsts {
		for _, i2 := range pInsts {
			if i1.Thread == i2.Thread && !i1.Thread.Multi {
				continue
			}
			any = true
			if !b.opt.Locks.NonInterfering(i1, i2, obj) {
				return false
			}
		}
	}
	return any
}

// instancesOf enumerates the (thread, ctx) instances executing s.
func (b *gbuilder) instancesOf(s ir.Stmt) []locks.Inst {
	f := ir.StmtFunc(s)
	if f == nil {
		return nil
	}
	var out []locks.Inst
	for _, t := range b.g.Model.Threads {
		for fc := range b.g.Model.Funcs(t) {
			if fc.Func == f {
				out = append(out, locks.Inst{Thread: t, Ctx: fc.Ctx, Stmt: s})
			}
		}
	}
	return out
}

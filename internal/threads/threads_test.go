package threads_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/threads"
)

// build compiles src and returns the thread model.
func build(t *testing.T, src string) *threads.Model {
	t.Helper()
	b, err := pipeline.FromSource("test.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return b.Model
}

// threadByRoutine finds the unique thread starting at the named routine.
func threadByRoutine(t *testing.T, m *threads.Model, name string) *threads.Thread {
	t.Helper()
	var found *threads.Thread
	for _, th := range m.Threads {
		for _, r := range th.Routines {
			if r.Name == name {
				if found != nil {
					t.Fatalf("multiple threads run %s", name)
				}
				found = th
			}
		}
	}
	if found == nil {
		t.Fatalf("no thread runs %s", name)
	}
	return found
}

// fig8 is the paper's Figure 8 program.
const fig8 = `
int s1g; int s2g; int s3g; int s4g; int s5g;

void bar(void *a) {
	s5g = 1;          // s5
}
void foo1(void *a) {
	thread_t t3;
	t3 = spawn(bar, NULL);   // fk3
	join(t3);                // jn3
}
void foo2(void *a) {
	bar(NULL);               // cs4
	s4g = 1;                 // s4
}
int main() {
	s1g = 1;                 // s1
	thread_t t1;
	t1 = spawn(foo1, NULL);  // fk1
	s2g = 1;                 // s2
	join(t1);                // jn1
	thread_t t2;
	t2 = spawn(foo2, NULL);  // fk2
	s3g = 1;                 // s3
	join(t2);                // jn2
	return 0;
}
`

func TestFig8ThreadEnumeration(t *testing.T) {
	m := build(t, fig8)
	// Threads: t0 (main), t1 (foo1), t2 (foo2), t3 (bar).
	if len(m.Threads) != 4 {
		t.Fatalf("got %d threads, want 4: %v", len(m.Threads), m.Threads)
	}
	t1 := threadByRoutine(t, m, "foo1")
	t2 := threadByRoutine(t, m, "foo2")
	t3 := threadByRoutine(t, m, "bar")
	if t1.Multi || t2.Multi || t3.Multi {
		t.Error("no thread should be multi-forked")
	}
	if t3.Spawner != t1 {
		t.Errorf("t3 spawner = %v, want t1", t3.Spawner)
	}
	if t1.Spawner != m.Main || t2.Spawner != m.Main {
		t.Error("t1 and t2 must be spawned by main")
	}
}

func TestFig8SpawnRelations(t *testing.T) {
	m := build(t, fig8)
	t1 := threadByRoutine(t, m, "foo1")
	t2 := threadByRoutine(t, m, "foo2")
	t3 := threadByRoutine(t, m, "bar")
	if !m.IsAncestor(m.Main, t1) || !m.IsAncestor(m.Main, t3) {
		t.Error("main must be ancestor of t1 and (transitively) t3")
	}
	if !m.IsAncestor(t1, t3) {
		t.Error("t1 must be ancestor of t3")
	}
	if m.IsAncestor(t2, t3) || m.IsAncestor(t3, t2) {
		t.Error("t2 and t3 are not ancestors of each other")
	}
	if !m.Siblings(t1, t2) || !m.Siblings(t3, t2) {
		t.Error("t1◇t2 and t3◇t2 must be siblings")
	}
	if m.Siblings(t1, t3) {
		t.Error("t1 and t3 are ancestor-related, not siblings")
	}
}

func TestFig8FullJoinsAndHB(t *testing.T) {
	m := build(t, fig8)
	t1 := threadByRoutine(t, m, "foo1")
	t2 := threadByRoutine(t, m, "foo2")
	t3 := threadByRoutine(t, m, "bar")
	// jn3 fully joins t3 inside foo1 (straight-line fork;join).
	if !m.FullyJoins(t1, t3) {
		t.Error("t1 must fully join t3")
	}
	// Indirect join: jn1 kills t1 and, via the full join, t3.
	kills := m.KillClosure(t1)
	if !kills.Has(uint32(t1.ID)) || !kills.Has(uint32(t3.ID)) {
		t.Errorf("kill closure of t1 = %v, want {t1,t3}", kills)
	}
	// Happens-before (paper Figure 8(b)): t1 > t2 and t3 > t2.
	if !m.HappensBefore(t1, t2) {
		t.Error("t1 > t2 expected")
	}
	if !m.HappensBefore(t3, t2) {
		t.Error("t3 > t2 expected (via indirect join at jn1)")
	}
	if m.HappensBefore(t2, t1) || m.HappensBefore(t2, t3) {
		t.Error("t2 must not happen before t1 or t3")
	}
}

func TestFig1bUnjoinedGrandchild(t *testing.T) {
	// Paper Figure 1(b): t2 outlives t1 (joined partially/indirectly not at
	// all), so joining t1 must NOT kill t2.
	m := build(t, `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void bar(void *a) {
	*p = q;
	c = *p;
}
void foo(void *a) {
	thread_t t2;
	t2 = spawn(bar, NULL);
	// t2 is never joined: it outlives foo.
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t1;
	t1 = spawn(foo, NULL);
	join(t1);
	*p = r;
	c = *p;
	return 0;
}
`)
	t1 := threadByRoutine(t, m, "foo")
	t2 := threadByRoutine(t, m, "bar")
	if m.FullyJoins(t1, t2) {
		t.Error("t1 never joins t2")
	}
	kills := m.KillClosure(t1)
	if kills.Has(uint32(t2.ID)) {
		t.Error("joining t1 must not kill the unjoined t2")
	}
}

func TestMultiForkedInLoop(t *testing.T) {
	m := build(t, `
void worker(void *a) { }
int main() {
	thread_t tids[4];
	int i;
	for (i = 0; i < 4; i++) {
		tids[i] = spawn(worker, NULL);
	}
	for (i = 0; i < 4; i++) {
		join(tids[i]);
	}
	return 0;
}
`)
	w := threadByRoutine(t, m, "worker")
	if !w.Multi {
		t.Error("loop-forked thread must be multi-forked (Definition 1)")
	}
	// Symmetric fork/join loops (Figure 11): the join must still be handled
	// as a join-all edge.
	var edge *threads.JoinEdge
	for _, e := range m.Joins {
		if e.Joinee == w {
			edge = e
		}
	}
	if edge == nil {
		t.Fatal("symmetric loop join must be resolved")
	}
	if !edge.JoinAll {
		t.Error("symmetric loop join must be a join-all edge")
	}
}

func TestMultiForkedByRecursion(t *testing.T) {
	m := build(t, `
void worker(void *a) { }
void rec(int n) {
	thread_t t;
	t = spawn(worker, NULL);
	if (n > 0) { rec(n - 1); }
}
int main() {
	rec(3);
	return 0;
}
`)
	w := threadByRoutine(t, m, "worker")
	if !w.Multi {
		t.Error("thread forked inside recursion must be multi-forked")
	}
}

func TestMultiForkedSpawnerPropagates(t *testing.T) {
	m := build(t, `
void leaf(void *a) { }
void mid(void *a) {
	thread_t t;
	t = spawn(leaf, NULL);
	join(t);
}
int main() {
	int i;
	for (i = 0; i < 2; i++) {
		thread_t t;
		t = spawn(mid, NULL);
		join(t);
	}
	return 0;
}
`)
	leaf := threadByRoutine(t, m, "leaf")
	if !leaf.Multi {
		t.Error("spawnee of a multi-forked thread must be multi-forked")
	}
}

func TestPartialJoinNotFull(t *testing.T) {
	m := build(t, `
int c;
void worker(void *a) { }
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	if (c > 0) {
		join(t);
	}
	return 0;
}
`)
	w := threadByRoutine(t, m, "worker")
	var edge *threads.JoinEdge
	for _, e := range m.Joins {
		if e.Joinee == w {
			edge = e
		}
	}
	if edge == nil {
		t.Fatal("conditional join should still be resolved")
	}
	if edge.Full {
		t.Error("a join on only one branch must not be a full join")
	}
}

func TestAmbiguousJoinIgnored(t *testing.T) {
	m := build(t, `
int c;
void wa(void *a) { }
void wb(void *a) { }
int main() {
	thread_t t1; thread_t t2; thread_t chosen;
	t1 = spawn(wa, NULL);
	t2 = spawn(wb, NULL);
	if (c > 0) { chosen = t1; } else { chosen = t2; }
	join(chosen);
	return 0;
}
`)
	// The join handle may be either thread: it must be soundly ignored.
	if len(m.Joins) != 0 {
		t.Errorf("ambiguous join must be unhandled, got %d edges", len(m.Joins))
	}
}

func TestContextSensitiveForkSites(t *testing.T) {
	// The same fork statement reached under two different contexts yields
	// two abstract threads (the paper's abstract threads are
	// context-sensitive fork sites).
	m := build(t, `
void worker(void *a) { }
void spawnOne() {
	thread_t t;
	t = spawn(worker, NULL);
	join(t);
}
int main() {
	spawnOne();
	spawnOne();
	return 0;
}
`)
	count := 0
	for _, th := range m.Threads {
		for _, r := range th.Routines {
			if r.Name == "worker" {
				count++
			}
		}
	}
	if count != 2 {
		t.Errorf("got %d abstract threads for worker, want 2 (one per context)", count)
	}
	for _, s := range m.Prog.Stmts {
		if f, ok := s.(*ir.Fork); ok {
			if got := len(m.ThreadsAtFork[f]); got != 2 {
				t.Errorf("ThreadsAtFork = %d, want 2", got)
			}
		}
	}
}

func TestMainThreadProperties(t *testing.T) {
	m := build(t, `int main() { return 0; }`)
	if len(m.Threads) != 1 {
		t.Fatalf("threads = %d, want 1", len(m.Threads))
	}
	if m.Main.Fork != nil || m.Main.Spawner != nil || m.Main.Multi {
		t.Error("main thread must have no fork site, no spawner, not multi")
	}
	if m.Main.Routines[0] != m.Prog.Main {
		t.Error("main thread routine must be main()")
	}
}

package threads

import (
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/pts"
)

// mustJoinedBefore computes, for each node n of function f executed by
// thread t, the set of thread IDs joined on *every* path from f's entry to
// n (evaluated before n executes). Used for the sibling happens-before
// relation (Definition 2).
func (m *Model) mustJoinedBefore(f *ir.Function, t *Thread) map[*icfg.Node]*pts.Set {
	nodes := m.nodesByFunc[f]
	in := map[*icfg.Node]*pts.Set{} // nil = ⊤ (unvisited)

	entry := m.G.EntryOf[f]
	if entry != nil {
		in[entry] = &pts.Set{}
	}

	changed := true
	for changed {
		changed = false
		for _, n := range nodes {
			if n == entry {
				continue
			}
			preds := m.funcPreds(n)
			var acc *pts.Set
			if len(preds) == 0 {
				acc = &pts.Set{}
			}
			for _, u := range preds {
				iu := in[u]
				if iu == nil {
					continue // ⊤ contribution: skip (optimistic)
				}
				contrib := iu.Copy()
				if g := m.siteGen(u, t); g != nil {
					contrib.UnionWith(g)
				}
				contrib.UnionWith(m.EdgeKills(u, n, t))
				if acc == nil {
					acc = contrib
				} else {
					acc = acc.Intersect(contrib)
				}
			}
			if acc == nil {
				continue
			}
			if old := in[n]; old == nil || !old.Equal(acc) {
				in[n] = acc
				changed = true
			}
		}
	}
	return in
}

// hbKey memoizes happens-before queries.
type hbKey struct{ a, b int }

// HappensBefore reports a > b: sibling a terminates before sibling b starts
// (Definition 2) because every path to b's fork site passes a join of a
// (possibly indirect, through full joins) in the spawning thread.
func (m *Model) HappensBefore(a, b *Thread) bool {
	if a == b || b.Fork == nil {
		return false
	}
	m.hbMu.Lock()
	defer m.hbMu.Unlock()
	if m.hbMemo == nil {
		m.hbMemo = map[hbKey]bool{}
	}
	key := hbKey{a.ID, b.ID}
	if v, ok := m.hbMemo[key]; ok {
		return v
	}
	res := m.happensBefore(a, b)
	m.hbMemo[key] = res
	return res
}

func (m *Model) happensBefore(a, b *Thread) bool {
	forkFunc := ir.StmtFunc(b.Fork)
	joiner := b.Spawner
	if forkFunc == nil || joiner == nil {
		return false
	}
	forkNode := m.G.StmtNode[b.Fork]
	if forkNode == nil {
		return false
	}
	ck := mjbKey{f: forkFunc, t: joiner}
	if m.mjbMemo == nil {
		m.mjbMemo = map[mjbKey]map[*icfg.Node]*pts.Set{}
	}
	in, ok := m.mjbMemo[ck]
	if !ok {
		in = m.mustJoinedBefore(forkFunc, joiner)
		m.mjbMemo[ck] = in
	}
	set := in[forkNode]
	return set != nil && set.Has(uint32(a.ID))
}

type mjbKey struct {
	f *ir.Function
	t *Thread
}

// MayHappenInParallelThreads is the thread-level guard used when seeding
// sibling interleavings: siblings may overlap unless ordered by
// happens-before in either direction.
func (m *Model) MayHappenInParallelThreads(a, b *Thread) bool {
	if a == b {
		return a.Multi
	}
	if m.IsAncestor(a, b) || m.IsAncestor(b, a) {
		return true // overlap until/unless joined; refined by MHP analysis
	}
	return !m.HappensBefore(a, b) && !m.HappensBefore(b, a)
}

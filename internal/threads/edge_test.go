package threads_test

import (
	"testing"

	"repro/internal/ir"
)

func TestSameLoopForkJoin(t *testing.T) {
	// fork and join in the same loop body: each instance joined before the
	// next is forked — a valid symmetric pattern (join-all).
	m := build(t, `
void w(void *a) { }
int main() {
	int i;
	for (i = 0; i < 4; i++) {
		thread_t t;
		t = spawn(w, NULL);
		join(t);
	}
	return 0;
}
`)
	w := threadByRoutine(t, m, "w")
	if !w.Multi {
		t.Fatal("loop fork must be multi")
	}
	found := false
	for _, e := range m.Joins {
		if e.Joinee == w && e.JoinAll {
			found = true
		}
	}
	if !found {
		t.Error("same-loop fork/join must resolve as join-all")
	}
}

func TestJoinInDifferentFunctionUnhandledFull(t *testing.T) {
	// The join is in a helper function: the edge resolves, but the full
	// join cannot be proven across functions (conservative).
	m := build(t, `
void w(void *a) { }
thread_t saved;
void joiner() {
	join(saved);
}
int main() {
	saved = spawn(w, NULL);
	joiner();
	return 0;
}
`)
	w := threadByRoutine(t, m, "w")
	for _, e := range m.Joins {
		if e.Joinee == w && e.Full {
			t.Error("cross-function join must not be proven full")
		}
	}
}

func TestIndirectForkTwoRoutinesOneThread(t *testing.T) {
	// An indirect fork with two possible routines is still one abstract
	// thread (one context-sensitive fork site).
	m := build(t, `
void wa(void *a) { }
void wb(void *a) { }
void *r;
int c;
int main() {
	if (c > 0) { r = wa; } else { r = wb; }
	thread_t t;
	t = spawn(r, NULL);
	join(t);
	return 0;
}
`)
	if len(m.Threads) != 2 {
		t.Fatalf("threads = %d, want 2 (main + one abstract spawnee)", len(m.Threads))
	}
	spawnee := m.Threads[1]
	if len(spawnee.Routines) != 2 {
		t.Errorf("routines = %v, want 2", spawnee.Routines)
	}
}

func TestForkInCalleeBelongsToCallerThread(t *testing.T) {
	// A fork performed inside a helper is attributed to the calling thread.
	m := build(t, `
void w(void *a) { }
void helper() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
}
int main() {
	helper();
	return 0;
}
`)
	w := threadByRoutine(t, m, "w")
	if w.Spawner != m.Main {
		t.Errorf("spawner = %v, want main", w.Spawner)
	}
	// The spawn context records the call chain (depth 1: the helper call).
	if m.Ctxs.Depth(w.SpawnCtx) != 1 {
		t.Errorf("spawn ctx depth = %d, want 1", m.Ctxs.Depth(w.SpawnCtx))
	}
}

func TestDescendantsTransitive(t *testing.T) {
	m := build(t, `
void leaf(void *a) { }
void mid(void *a) {
	thread_t t;
	t = spawn(leaf, NULL);
	join(t);
}
int main() {
	thread_t t;
	t = spawn(mid, NULL);
	join(t);
	return 0;
}
`)
	mid := threadByRoutine(t, m, "mid")
	leaf := threadByRoutine(t, m, "leaf")
	d := m.Descendants(m.Main)
	if !d.Has(uint32(mid.ID)) || !d.Has(uint32(leaf.ID)) {
		t.Errorf("main descendants = %v", d)
	}
	if m.Descendants(leaf).Len() != 0 {
		t.Error("leaf has no descendants")
	}
}

func TestSingletonObjects(t *testing.T) {
	m := build(t, `
int g;
int arr[4];
void w(void *a) {
	int wl;
	int *lp;
	lp = &wl;
	*lp = 1;
}
void once() {
	int ol;
	int *lp;
	lp = &ol;
	*lp = 1;
}
int main() {
	int i;
	once();
	for (i = 0; i < 3; i++) {
		thread_t t;
		t = spawn(w, NULL);
	}
	int *hp;
	hp = malloc();
	return 0;
}
`)
	singles := m.SingletonObjects()
	check := func(name string, want bool) {
		t.Helper()
		for _, o := range m.Prog.Objects {
			if o.Name == name {
				if singles.Has(uint32(o.ID)) != want {
					t.Errorf("singleton(%s) = %v, want %v", name, !want, want)
				}
				return
			}
		}
		t.Errorf("no object %s", name)
	}
	check("g", true)       // global scalar
	check("arr", false)    // array
	check("w.wl", false)   // local of a multi-forked thread routine
	check("once.ol", true) // local of a single-threaded function
	for _, o := range m.Prog.Objects {
		if o.Kind == ir.ObjHeap && singles.Has(uint32(o.ID)) {
			t.Error("heap objects are never singletons")
		}
	}
}

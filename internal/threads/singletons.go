package threads

import (
	"repro/internal/ir"
	"repro/internal/pts"
)

// SingletonObjects returns the abstract objects that represent exactly one
// runtime memory location and are therefore eligible for strong updates
// (paper Figure 10, P-SU/WU, following Lhoták-Chung): globals, and stack
// objects of functions that are neither recursive nor executed by more than
// one runtime thread. Heap objects, arrays, and anything rooted in them are
// excluded. The multithreaded refinement (excluding locals of functions run
// by multiple or multi-forked threads) keeps strong updates sound when the
// same abstract local is instantiated concurrently.
func (m *Model) SingletonObjects() *pts.Set {
	// Count runtime-thread instances per function.
	instances := map[*ir.Function]int{}
	for _, t := range m.Threads {
		weight := 1
		if t.Multi {
			weight = 2
		}
		seen := map[*ir.Function]bool{}
		for fc := range m.Funcs(t) {
			if !seen[fc.Func] {
				seen[fc.Func] = true
				instances[fc.Func] += weight
			}
		}
	}

	set := &pts.Set{}
	for _, o := range m.Prog.Objects {
		if m.isSingleton(o, instances) {
			set.Add(uint32(o.ID))
		}
	}
	return set
}

func (m *Model) isSingleton(o *ir.Object, instances map[*ir.Function]int) bool {
	root := o.Root()
	if o.IsArray || root.IsArray {
		return false
	}
	switch root.Kind {
	case ir.ObjGlobal:
		return true
	case ir.ObjStack:
		f := root.Func
		if f == nil || m.CG.InRecursion(f) {
			return false
		}
		return instances[f] <= 1
	default:
		// Heap, function, and thread-handle objects are never singletons.
		return false
	}
}

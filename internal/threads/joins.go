package threads

import (
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/pts"
)

// funcSuccs returns the intraprocedural successors of an ICFG node,
// treating resolved calls as opaque (call node hops to its return node).
func (m *Model) funcSuccs(n *icfg.Node) []*icfg.Node {
	var out []*icfg.Node
	for _, e := range n.Out {
		if e.Kind == icfg.EIntra {
			out = append(out, e.To)
		}
	}
	if len(out) == 0 && n.Kind == icfg.NStmt {
		if _, ok := n.Stmt.(*ir.Call); ok {
			if rn := m.G.RetNode[n.Stmt]; rn != nil {
				out = append(out, rn)
			}
		}
	}
	return out
}

// funcPreds is the mirror of funcSuccs.
func (m *Model) funcPreds(n *icfg.Node) []*icfg.Node {
	var out []*icfg.Node
	if n.Kind == icfg.NRet {
		hasIntraIn := false
		for _, e := range n.In {
			if e.Kind == icfg.EIntra {
				hasIntraIn = true
			}
		}
		if !hasIntraIn {
			if cn := m.G.StmtNode[n.Stmt]; cn != nil {
				out = append(out, cn)
			}
		}
	}
	for _, e := range n.In {
		if e.Kind == icfg.EIntra {
			out = append(out, e.From)
		}
	}
	return out
}

// nodeLoops returns the lexical loop stack of the node's basic block.
func nodeLoops(n *icfg.Node) []int {
	if n.Stmt == nil {
		return nil
	}
	if b := n.Stmt.Parent(); b != nil {
		return b.Loops
	}
	return nil
}

func loopsContain(loops []int, id int) bool {
	for _, l := range loops {
		if l == id {
			return true
		}
	}
	return false
}

// KillClosure returns the set of thread IDs whose liveness ends when joinee
// is joined: joinee itself plus every thread transitively fully joined by
// it ([T-JOIN] transitivity).
func (m *Model) KillClosure(joinee *Thread) *pts.Set {
	out := &pts.Set{}
	var visit func(t *Thread)
	visit = func(t *Thread) {
		if !out.Add(uint32(t.ID)) {
			return
		}
		if fj := m.fullJoins[t]; fj != nil {
			fj.ForEach(func(id uint32) { visit(m.Threads[id]) })
		}
	}
	visit(joinee)
	return out
}

// KillsAt returns the thread IDs whose execution is over once the join site
// completes, from the perspective of joiner t.
func (m *Model) KillsAt(join *ir.Join, t *Thread) *pts.Set {
	out := &pts.Set{}
	for _, e := range m.joinsBySite[join] {
		if e.Joiner == t {
			out.UnionWith(m.KillClosure(e.Joinee))
		}
	}
	return out
}

// EdgeKills returns the thread IDs killed along the ICFG edge u→v for
// joiner t: the loop-exit effect of symmetric join-all edges (the joinee's
// instances are all joined once the join loop exits; paper Figure 11).
func (m *Model) EdgeKills(u, v *icfg.Node, t *Thread) *pts.Set {
	out := &pts.Set{}
	uLoops := nodeLoops(u)
	if len(uLoops) == 0 {
		return out
	}
	vLoops := nodeLoops(v)
	for _, e := range m.Joins {
		if e.Joiner != t || !e.JoinAll {
			continue
		}
		if ir.StmtFunc(e.Site) != u.Func {
			continue
		}
		id := e.Site.LoopID
		if loopsContain(uLoops, id) && !loopsContain(vLoops, id) {
			out.UnionWith(m.KillClosure(e.Joinee))
		}
	}
	return out
}

// siteGen returns the kill set generated at node n (a direct join site) for
// joiner t, or nil.
func (m *Model) siteGen(n *icfg.Node, t *Thread) *pts.Set {
	if n.Kind != icfg.NStmt {
		return nil
	}
	j, ok := n.Stmt.(*ir.Join)
	if !ok {
		return nil
	}
	k := m.KillsAt(j, t)
	if k.IsEmpty() {
		return nil
	}
	return k
}

// mustJoinedAfter computes, for each node n of function f executed by
// thread t, the set of thread IDs joined on *every* path from n to f's
// exit (evaluated after n executes). Used to decide full joins.
func (m *Model) mustJoinedAfter(f *ir.Function, t *Thread) map[*icfg.Node]*pts.Set {
	nodes := m.nodesByFunc[f]
	out := map[*icfg.Node]*pts.Set{} // nil entry = ⊤ (unvisited)

	changed := true
	for changed {
		changed = false
		// Iterate in reverse creation order (roughly reverse topological).
		for i := len(nodes) - 1; i >= 0; i-- {
			n := nodes[i]
			succs := m.funcSuccs(n)
			var acc *pts.Set // nil = ⊤
			if len(succs) == 0 {
				acc = &pts.Set{}
			}
			for _, v := range succs {
				contrib := &pts.Set{}
				if g := m.siteGen(v, t); g != nil {
					contrib.UnionWith(g)
				}
				contrib.UnionWith(m.EdgeKills(n, v, t))
				if ov := out[v]; ov != nil {
					contrib.UnionWith(ov)
				} else {
					// Successor still ⊤: treat as ⊤ contribution (skip in
					// the meet so early iterations converge downward).
					continue
				}
				if acc == nil {
					acc = contrib
				} else {
					acc = acc.Intersect(contrib)
				}
			}
			if acc == nil {
				continue
			}
			if old := out[n]; old == nil || !old.Equal(acc) {
				out[n] = acc
				changed = true
			}
		}
	}
	return out
}

// computeFullJoins iterates full-join discovery to a fixpoint: an edge is
// full when every path from the joinee's fork site to the function exit
// joins the joinee. Kill sets at join sites include already-proven full
// joins, so indirect full joins converge upward.
func (m *Model) computeFullJoins() {
	for {
		changed := false
		// Group candidate edges by (function, joiner).
		type fkey struct {
			f *ir.Function
			t *Thread
		}
		groups := map[fkey][]*JoinEdge{}
		for _, e := range m.Joins {
			if e.Full {
				continue
			}
			forkFunc := ir.StmtFunc(e.Joinee.Fork)
			if forkFunc != ir.StmtFunc(e.Site) {
				continue // conservatively partial across functions
			}
			groups[fkey{f: forkFunc, t: e.Joiner}] = append(groups[fkey{f: forkFunc, t: e.Joiner}], e)
		}
		for key, edges := range groups {
			after := m.mustJoinedAfter(key.f, key.t)
			for _, e := range edges {
				forkNode := m.G.StmtNode[e.Joinee.Fork]
				if forkNode == nil {
					continue
				}
				set := after[forkNode]
				if set != nil && set.Has(uint32(e.Joinee.ID)) {
					e.Full = true
					if m.fullJoins[e.Joiner] == nil {
						m.fullJoins[e.Joiner] = &pts.Set{}
					}
					m.fullJoins[e.Joiner].Add(uint32(e.Joinee.ID))
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// FullyJoins reports whether t fully joins joinee directly.
func (m *Model) FullyJoins(t, joinee *Thread) bool {
	fj := m.fullJoins[t]
	return fj != nil && fj.Has(uint32(joinee.ID))
}

// Package threads implements the paper's static thread model (Section 3.1):
// abstract threads named by context-sensitive fork sites, the spawning
// relation [T-FORK], the joining relation [T-JOIN] (with full/partial join
// distinction and indirect joins through fully-joined children), sibling
// threads [T-SIBLING], multi-forked threads (Definition 1), the
// happens-before relation for siblings (Definition 2), and the symmetric
// fork/join loop heuristic standing in for LLVM's SCEV correlation
// (paper Figure 11 and Section 4.2).
package threads

import (
	"fmt"
	"sync"

	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/pts"
)

// Thread is an abstract thread: a context-sensitive fork site (nil fork for
// the main thread). A Thread represents one runtime thread unless Multi.
type Thread struct {
	ID       int
	Fork     *ir.Fork       // nil for main
	SpawnCtx callgraph.Ctx  // context of the fork site within the spawner
	StartCtx callgraph.Ctx  // context at the routine entry (SpawnCtx + fork)
	Spawner  *Thread        // nil for main
	Routines []*ir.Function // possible start procedures
	Multi    bool           // may represent several runtime threads (Def. 1)

	// forks/joins are the context-sensitive fork/join sites executed by
	// this thread, discovered during the thread-local walk.
	forks []SiteCtx
	joins []SiteCtx
	// funcs are the (function, context) pairs this thread may execute.
	funcs map[FuncCtx]bool
}

func (t *Thread) String() string {
	if t.Fork == nil {
		return "t0(main)"
	}
	return fmt.Sprintf("t%d(%s)", t.ID, t.Fork.Handle.Name)
}

// SiteCtx is a context-qualified statement.
type SiteCtx struct {
	Stmt ir.Stmt
	Ctx  callgraph.Ctx
}

// FuncCtx is a context-qualified function.
type FuncCtx struct {
	Func *ir.Function
	Ctx  callgraph.Ctx
}

// JoinEdge records that Joiner may join Joinee at a join site.
type JoinEdge struct {
	Joiner *Thread
	Joinee *Thread
	Site   *ir.Join
	Ctx    callgraph.Ctx
	// JoinAll marks a symmetric fork/join loop pair: the join is treated as
	// joining every runtime instance of the (multi-forked) joinee once its
	// enclosing loop exits.
	JoinAll bool
	// Full is set when every path from the joinee's fork site to the exit
	// of the enclosing function passes a join of the joinee; full joins
	// propagate join effects to the spawner's ancestors ([T-JOIN]).
	Full bool
}

// Model is the computed static thread model.
type Model struct {
	Prog *ir.Program
	Pre  *andersen.Result
	CG   *callgraph.Graph
	G    *icfg.Graph
	Ctxs *callgraph.Ctxs

	Threads []*Thread
	Main    *Thread

	// ThreadsAtFork lists the abstract threads created at each fork site
	// (one per spawning context).
	ThreadsAtFork map[*ir.Fork][]*Thread

	// Joins are all resolved join edges.
	Joins []*JoinEdge

	// handleFork maps each thread-handle object back to its fork site.
	handleFork map[*ir.Object]*ir.Fork

	// spawnKids[t] are the threads directly spawned by t.
	spawnKids map[*Thread][]*Thread

	// descendants[t] is the transitive spawn closure of t (excluding t).
	descendants map[*Thread]*pts.Set

	// joinsBySite groups edges by join site (for kill computation).
	joinsBySite map[*ir.Join][]*JoinEdge

	// fullJoins[t] = set of thread IDs fully joined by t.
	fullJoins map[*Thread]*pts.Set

	// nodesByFunc caches the ICFG nodes of each function.
	nodesByFunc map[*ir.Function][]*icfg.Node

	// maxThreads bounds abstract-thread enumeration (sound merging beyond).
	maxThreads int

	// hbMemo and mjbMemo cache happens-before queries and the per-function
	// must-joined-before analyses behind them. They are the only lazily
	// mutated state on a built Model, so hbMu is what makes a Model safe to
	// share between pipeline phases scheduled concurrently (MHP ∥ locks).
	hbMu    sync.Mutex
	hbMemo  map[hbKey]bool
	mjbMemo map[mjbKey]map[*icfg.Node]*pts.Set
}

// ThreadByID returns the thread with the given ID.
func (m *Model) ThreadByID(id int) *Thread { return m.Threads[id] }

// Forks returns the context-sensitive fork sites executed by t.
func (m *Model) Forks(t *Thread) []SiteCtx { return t.forks }

// JoinSites returns the context-sensitive join sites executed by t.
func (m *Model) JoinSites(t *Thread) []SiteCtx { return t.joins }

// Funcs returns the context-qualified functions executed by t.
func (m *Model) Funcs(t *Thread) map[FuncCtx]bool { return t.funcs }

// BuildModel enumerates abstract threads and computes all thread relations.
func BuildModel(pre *andersen.Result, cg *callgraph.Graph, g *icfg.Graph, ctxs *callgraph.Ctxs) *Model {
	m := &Model{
		Prog:          pre.Prog,
		Pre:           pre,
		CG:            cg,
		G:             g,
		Ctxs:          ctxs,
		ThreadsAtFork: map[*ir.Fork][]*Thread{},
		handleFork:    map[*ir.Object]*ir.Fork{},
		spawnKids:     map[*Thread][]*Thread{},
		descendants:   map[*Thread]*pts.Set{},
		joinsBySite:   map[*ir.Join][]*JoinEdge{},
		fullJoins:     map[*Thread]*pts.Set{},
		nodesByFunc:   map[*ir.Function][]*icfg.Node{},
		maxThreads:    4096,
	}
	for _, n := range g.Nodes {
		m.nodesByFunc[n.Func] = append(m.nodesByFunc[n.Func], n)
	}
	for _, s := range pre.Prog.Stmts {
		if f, ok := s.(*ir.Fork); ok {
			m.handleFork[f.Handle] = f
		}
	}
	m.enumerate()
	m.resolveJoins()
	m.computeFullJoins()
	m.computeDescendants()
	return m
}

// ---- Thread enumeration ----

type threadKey struct {
	fork ir.StmtID
	ctx  callgraph.Ctx
}

// enumerate discovers all abstract threads by walking each thread's
// reachable code, creating spawnee threads at every context-sensitive fork
// site found.
func (m *Model) enumerate() {
	byKey := map[threadKey]*Thread{}
	m.Main = &Thread{ID: 0, StartCtx: callgraph.EmptyCtx, Routines: []*ir.Function{m.Prog.Main}}
	m.Threads = []*Thread{m.Main}
	queue := []*Thread{m.Main}

	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		m.walk(t)
		for _, fc := range t.forks {
			fork := fc.Stmt.(*ir.Fork)
			routines := m.Pre.ForkTargets[fork]
			if len(routines) == 0 {
				continue
			}
			key := threadKey{fork: fork.ID(), ctx: fc.Ctx}
			if existing := byKey[key]; existing != nil {
				// Re-discovered (e.g. two walks merged by context capping):
				// the thread must represent multiple runtime instances.
				if existing.Spawner != t {
					existing.Multi = true
				}
				continue
			}
			if len(m.Threads) >= m.maxThreads {
				// Bounded enumeration: mark the spawner's threads multi and
				// stop creating distinctions (sound).
				continue
			}
			nt := &Thread{
				ID:       len(m.Threads),
				Fork:     fork,
				SpawnCtx: fc.Ctx,
				StartCtx: m.Ctxs.Push(fc.Ctx, fork.ID()),
				Spawner:  t,
				Routines: routines,
			}
			nt.Multi = fork.InLoop ||
				m.CG.InRecursion(ir.StmtFunc(fork)) ||
				t.Multi ||
				m.Ctxs.Contains(fc.Ctx, fork.ID())
			byKey[key] = nt
			m.Threads = append(m.Threads, nt)
			m.ThreadsAtFork[fork] = append(m.ThreadsAtFork[fork], nt)
			m.spawnKids[t] = append(m.spawnKids[t], nt)
			queue = append(queue, nt)
		}
	}
}

// walk visits the (function, context) pairs executed by t, collecting its
// fork and join sites. Fork edges are not followed (the spawnee runs in its
// own thread); call edges push context except within call-graph SCCs.
func (m *Model) walk(t *Thread) {
	t.funcs = map[FuncCtx]bool{}
	var visit func(f *ir.Function, ctx callgraph.Ctx)
	visit = func(f *ir.Function, ctx callgraph.Ctx) {
		key := FuncCtx{Func: f, Ctx: ctx}
		if t.funcs[key] {
			return
		}
		t.funcs[key] = true
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s := s.(type) {
				case *ir.Fork:
					t.forks = append(t.forks, SiteCtx{Stmt: s, Ctx: ctx})
				case *ir.Join:
					t.joins = append(t.joins, SiteCtx{Stmt: s, Ctx: ctx})
				case *ir.Call:
					for _, callee := range m.CG.CalleesOf[s] {
						nctx := ctx
						if !m.CG.SameSCC(f, callee) {
							nctx = m.Ctxs.Push(ctx, s.ID())
						}
						visit(callee, nctx)
					}
				}
			}
		}
	}
	for _, r := range t.Routines {
		visit(r, t.StartCtx)
	}
}

// ---- Join resolution ----

// resolveJoins matches each join site to the abstract threads it may join.
// A join is handled ([T-JOIN]) only when the handle resolves to a single
// fork site with a single candidate thread spawned by the joining thread;
// multi-forked joinees are handled only through the symmetric fork/join
// loop heuristic. Everything else is soundly ignored.
func (m *Model) resolveJoins() {
	for _, t := range m.Threads {
		for _, jc := range t.joins {
			join := jc.Stmt.(*ir.Join)
			handles := m.Pre.PointsToVar(join.Handle)
			var fork *ir.Fork
			count := 0
			handles.ForEach(func(id uint32) {
				obj := m.Pre.Obj(id)
				if obj.Kind == ir.ObjThread {
					count++
					fork = m.handleFork[obj]
				}
			})
			if count != 1 || fork == nil {
				continue // ambiguous handle: unhandled join (sound)
			}
			var candidate *Thread
			nCand := 0
			for _, cand := range m.ThreadsAtFork[fork] {
				if cand.Spawner == t {
					candidate = cand
					nCand++
				}
			}
			if nCand != 1 {
				continue
			}
			edge := &JoinEdge{Joiner: t, Joinee: candidate, Site: join, Ctx: jc.Ctx}
			if candidate.Multi {
				if !symmetricForkJoin(fork, join) {
					continue // cannot prove all instances are joined
				}
				edge.JoinAll = true
			}
			m.Joins = append(m.Joins, edge)
			m.joinsBySite[join] = append(m.joinsBySite[join], edge)
		}
	}
}

// symmetricForkJoin reports whether fork and join form the word_count-style
// symmetric loop pattern (paper Figure 11): both sites inside loops of the
// same function with the join's handle covering exactly the fork's handles.
// This stands in for the paper's SCEV-based fork/join correlation and
// assumes the two loops have matching trip counts.
func symmetricForkJoin(fork *ir.Fork, join *ir.Join) bool {
	if fork.LoopID == 0 || join.LoopID == 0 {
		return false
	}
	return ir.StmtFunc(fork) == ir.StmtFunc(join)
}

// JoinEdgesAt returns the join edges anchored at a join site.
func (m *Model) JoinEdgesAt(j *ir.Join) []*JoinEdge { return m.joinsBySite[j] }

// ---- Spawn relations ----

func (m *Model) computeDescendants() {
	// Reverse topological accumulation (threads are created parent-first,
	// so iterating in reverse ID order sees children before parents).
	for i := len(m.Threads) - 1; i >= 0; i-- {
		t := m.Threads[i]
		set := &pts.Set{}
		for _, kid := range m.spawnKids[t] {
			set.Add(uint32(kid.ID))
			if kd := m.descendants[kid]; kd != nil {
				set.UnionWith(kd)
			}
		}
		m.descendants[t] = set
	}
}

// Spawns returns the threads directly spawned by t.
func (m *Model) Spawns(t *Thread) []*Thread { return m.spawnKids[t] }

// Descendants returns the transitive spawnees of t as a set of thread IDs.
func (m *Model) Descendants(t *Thread) *pts.Set { return m.descendants[t] }

// IsAncestor reports the transitive spawning relation a ⇒* d ([T-FORK]).
func (m *Model) IsAncestor(a, d *Thread) bool {
	if a == d {
		return false
	}
	return m.descendants[a] != nil && m.descendants[a].Has(uint32(d.ID))
}

// Siblings reports t ◇ t': distinct threads with no ancestry between them
// ([T-SIBLING]).
func (m *Model) Siblings(a, b *Thread) bool {
	return a != b && !m.IsAncestor(a, b) && !m.IsAncestor(b, a)
}

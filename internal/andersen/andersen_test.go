package andersen_test

import (
	"testing"

	"repro/internal/andersen"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/irbuild"
)

// analyze compiles src and runs the pre-analysis.
func analyze(t *testing.T, src string) *andersen.Result {
	t.Helper()
	f, errs := parser.Parse("test.mc", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	p, err := irbuild.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return andersen.Analyze(p)
}

// objByName finds an object by (suffix of) its name.
func objByName(t *testing.T, p *ir.Program, name string) *ir.Object {
	t.Helper()
	for _, o := range p.Objects {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("no object named %q", name)
	return nil
}

// ptsNames returns the names of objects in the points-to set of object o.
func ptsNames(r *andersen.Result, o *ir.Object) map[string]bool {
	out := map[string]bool{}
	r.PointsToObj(o).ForEach(func(id uint32) {
		out[r.Obj(id).Name] = true
	})
	return out
}

func TestBasicAddrAndCopy(t *testing.T) {
	r := analyze(t, `
int x; int y;
int *p; int *q;
int main() {
	p = &x;
	q = p;
	return 0;
}
`)
	p := objByName(t, r.Prog, "p")
	q := objByName(t, r.Prog, "q")
	if n := ptsNames(r, p); !n["x"] || len(n) != 1 {
		t.Errorf("pt(p) = %v, want {x}", n)
	}
	if n := ptsNames(r, q); !n["x"] || len(n) != 1 {
		t.Errorf("pt(q) = %v, want {x}", n)
	}
}

func TestLoadStore(t *testing.T) {
	r := analyze(t, `
int x; int y;
int *a; int *b;
int **pp;
int main() {
	a = &x;
	pp = &a;
	*pp = &y;  // a now may point to y too (flow-insensitive)
	b = *pp;
	return 0;
}
`)
	b := objByName(t, r.Prog, "b")
	n := ptsNames(r, b)
	if !n["x"] || !n["y"] {
		t.Errorf("pt(b) = %v, want x and y", n)
	}
}

func TestHeapAllocation(t *testing.T) {
	r := analyze(t, `
int *p; int *q;
int main() {
	p = malloc();
	q = malloc();
	return 0;
}
`)
	p := objByName(t, r.Prog, "p")
	q := objByName(t, r.Prog, "q")
	np, nq := ptsNames(r, p), ptsNames(r, q)
	if len(np) != 1 || len(nq) != 1 {
		t.Fatalf("pt(p)=%v pt(q)=%v, want singletons", np, nq)
	}
	for k := range np {
		if nq[k] {
			t.Error("distinct malloc sites must yield distinct objects")
		}
	}
}

func TestInterproceduralCopy(t *testing.T) {
	r := analyze(t, `
int x;
int *id(int *v) { return v; }
int *g;
int main() {
	g = id(&x);
	return 0;
}
`)
	g := objByName(t, r.Prog, "g")
	if n := ptsNames(r, g); !n["x"] {
		t.Errorf("pt(g) = %v, want {x}", n)
	}
}

func TestFunctionPointer(t *testing.T) {
	r := analyze(t, `
int x; int y;
int *fa() { return &x; }
int *fb() { return &y; }
void *fp;
int *g;
int main() {
	if (1) { fp = fa; } else { fp = fb; }
	g = fp();
	return 0;
}
`)
	g := objByName(t, r.Prog, "g")
	n := ptsNames(r, g)
	if !n["x"] || !n["y"] {
		t.Errorf("pt(g) = %v, want x and y via indirect call", n)
	}
	// Both functions should be resolved as callees of the indirect call.
	var icall *ir.Call
	for _, s := range r.Prog.Stmts {
		if c, ok := s.(*ir.Call); ok && c.CalleeVar != nil {
			icall = c
		}
	}
	if icall == nil {
		t.Fatal("no indirect call found")
	}
	if len(r.CallTargets[icall]) != 2 {
		t.Errorf("indirect call targets = %v, want 2", r.CallTargets[icall])
	}
}

func TestFieldSensitivity(t *testing.T) {
	r := analyze(t, `
struct S { int *f; int *g; };
struct S s;
int x; int y;
int *a; int *b;
int main() {
	s.f = &x;
	s.g = &y;
	a = s.f;
	b = s.g;
	return 0;
}
`)
	a := objByName(t, r.Prog, "a")
	b := objByName(t, r.Prog, "b")
	na, nb := ptsNames(r, a), ptsNames(r, b)
	if !na["x"] || na["y"] {
		t.Errorf("pt(a) = %v, want exactly {x}", na)
	}
	if !nb["y"] || nb["x"] {
		t.Errorf("pt(b) = %v, want exactly {y}", nb)
	}
}

func TestArrayMonolithic(t *testing.T) {
	r := analyze(t, `
int x; int y;
int *arr[4];
int *a;
int main() {
	arr[0] = &x;
	arr[1] = &y;
	a = arr[3];
	return 0;
}
`)
	a := objByName(t, r.Prog, "a")
	n := ptsNames(r, a)
	if !n["x"] || !n["y"] {
		t.Errorf("pt(a) = %v, want x and y (monolithic array)", n)
	}
}

func TestForkHandleAndArg(t *testing.T) {
	r := analyze(t, `
int x;
int *shared;
void worker(void *arg) {
	shared = arg;
}
int main() {
	thread_t t;
	t = spawn(worker, &x);
	join(t);
	return 0;
}
`)
	shared := objByName(t, r.Prog, "shared")
	if n := ptsNames(r, shared); !n["x"] {
		t.Errorf("pt(shared) = %v, want {x}: fork arg must flow to param", n)
	}
	var fork *ir.Fork
	for _, s := range r.Prog.Stmts {
		if f, ok := s.(*ir.Fork); ok {
			fork = f
		}
	}
	if got := r.ForkTargets[fork]; len(got) != 1 || got[0].Name != "worker" {
		t.Errorf("fork targets = %v", got)
	}
	// The join handle must resolve to the fork's thread object.
	var join *ir.Join
	for _, s := range r.Prog.Stmts {
		if j, ok := s.(*ir.Join); ok {
			join = j
		}
	}
	handles := r.PointsToVar(join.Handle)
	if id, ok := handles.Single(); !ok || r.Obj(id) != fork.Handle {
		t.Errorf("join handle pts = %v, want the fork handle", handles)
	}
}

func TestIndirectForkRoutine(t *testing.T) {
	r := analyze(t, `
int done;
void workerA(void *a) { done = 1; }
void workerB(void *a) { done = 2; }
void *routine;
int main() {
	if (1) { routine = workerA; } else { routine = workerB; }
	thread_t t;
	t = spawn(routine, NULL);
	join(t);
	return 0;
}
`)
	var fork *ir.Fork
	for _, s := range r.Prog.Stmts {
		if f, ok := s.(*ir.Fork); ok {
			fork = f
		}
	}
	if got := r.ForkTargets[fork]; len(got) != 2 {
		t.Errorf("indirect fork targets = %v, want workerA and workerB", got)
	}
}

func TestCycleCollapsing(t *testing.T) {
	// p and q copy into each other (through a loop): they form an SCC and
	// must end with identical points-to sets.
	r := analyze(t, `
int x; int y;
int *p; int *q;
int main() {
	p = &x;
	q = &y;
	while (1) {
		int *tmp;
		tmp = p;
		p = q;
		q = tmp;
	}
	return 0;
}
`)
	p := objByName(t, r.Prog, "p")
	q := objByName(t, r.Prog, "q")
	np, nq := ptsNames(r, p), ptsNames(r, q)
	if !np["x"] || !np["y"] || !nq["x"] || !nq["y"] {
		t.Errorf("pt(p)=%v pt(q)=%v, want both {x,y}", np, nq)
	}
}

func TestMayAliasAndAliasSet(t *testing.T) {
	r := analyze(t, `
int x; int y;
int *p; int *q; int *r;
int main() {
	p = &x;
	q = &x;
	r = &y;
	return 0;
}
`)
	// Find the loads' source variables via the stores into globals.
	var pv, qv, rv *ir.Var
	for _, s := range r.Prog.Stmts {
		st, ok := s.(*ir.Store)
		if !ok {
			continue
		}
		if a, ok := addrTarget(r.Prog, st); ok {
			switch a {
			case "p":
				pv = st.Src
			case "q":
				qv = st.Src
			case "r":
				rv = st.Src
			}
		}
	}
	if pv == nil || qv == nil || rv == nil {
		t.Fatal("missing stores")
	}
	if !r.MayAlias(pv, qv) {
		t.Error("p and q should alias")
	}
	if r.MayAlias(pv, rv) {
		t.Error("p and r should not alias")
	}
	if n := r.AliasSet(pv, qv).Len(); n != 1 {
		t.Errorf("alias set size = %d, want 1", n)
	}
}

// addrTarget resolves a store's address operand to a global name if it is a
// direct AddrOf of a global.
func addrTarget(p *ir.Program, st *ir.Store) (string, bool) {
	for _, s := range p.Stmts {
		if a, ok := s.(*ir.AddrOf); ok && a.Dst == st.Addr && a.Obj.Kind == ir.ObjGlobal {
			return a.Obj.Name, true
		}
	}
	return "", false
}

func TestRecursionTerminates(t *testing.T) {
	r := analyze(t, `
int x;
int *walk(int *v, int n) {
	if (n > 0) { return walk(v, n - 1); }
	return v;
}
int *g;
int main() {
	g = walk(&x, 5);
	return 0;
}
`)
	g := objByName(t, r.Prog, "g")
	if n := ptsNames(r, g); !n["x"] {
		t.Errorf("pt(g) = %v, want {x}", n)
	}
}

func TestBytesAccounting(t *testing.T) {
	r := analyze(t, `
int x;
int *p;
int main() { p = &x; return 0; }
`)
	if r.Bytes() == 0 {
		t.Error("expected nonzero memory accounting")
	}
}

package andersen_test

import (
	"testing"

	"repro/internal/ir"
)

func TestSelfReferentialStruct(t *testing.T) {
	r := analyze(t, `
struct Node { struct Node *next; int v; };
struct Node a2; struct Node b2;
struct Node *walk;
int main() {
	a2.next = &b2;
	b2.next = &a2;
	walk = a2.next;
	walk = walk->next;
	return 0;
}
`)
	w := objByName(t, r.Prog, "walk")
	n := ptsNames(r, w)
	if !n["a2"] || !n["b2"] {
		t.Errorf("pt(walk) = %v, want both nodes", n)
	}
}

func TestNestedStructCollapse(t *testing.T) {
	// A struct-typed field collapses (field-insensitive at depth 2), but
	// remains sound: values stored through the inner field are retrievable.
	r := analyze(t, `
struct Inner { int *p; };
struct Outer { struct Inner in; int *q; };
struct Outer o;
int x;
int *got;
int main() {
	o.in.p = &x;
	got = o.in.p;
	return 0;
}
`)
	g := objByName(t, r.Prog, "got")
	if n := ptsNames(r, g); !n["x"] {
		t.Errorf("pt(got) = %v, want x", n)
	}
}

func TestHeapFieldSensitivity(t *testing.T) {
	r := analyze(t, `
struct Pair { int *a; int *b; };
struct Pair *hp;
int x; int y;
int *ga; int *gb;
int main() {
	hp = malloc();
	hp->a = &x;
	hp->b = &y;
	ga = hp->a;
	gb = hp->b;
	return 0;
}
`)
	ga := objByName(t, r.Prog, "ga")
	gb := objByName(t, r.Prog, "gb")
	na, nb := ptsNames(r, ga), ptsNames(r, gb)
	if !na["x"] || na["y"] {
		t.Errorf("pt(ga) = %v, want exactly {x}", na)
	}
	if !nb["y"] || nb["x"] {
		t.Errorf("pt(gb) = %v, want exactly {y}", nb)
	}
}

func TestChainOfIndirection(t *testing.T) {
	r := analyze(t, `
int x;
int *p1;
int **p2;
int ***p3;
int *out;
int main() {
	p1 = &x;
	p2 = &p1;
	p3 = &p2;
	out = **p3;
	return 0;
}
`)
	out := objByName(t, r.Prog, "out")
	if n := ptsNames(r, out); !n["x"] || len(n) != 1 {
		t.Errorf("pt(out) = %v, want exactly {x}", n)
	}
}

func TestCallersIndex(t *testing.T) {
	r := analyze(t, `
void callee() { }
void w(void *a) { callee(); }
int main() {
	callee();
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	callee := r.Prog.FuncByName["callee"]
	if len(r.Callers[callee]) != 2 {
		t.Errorf("callers of callee = %d, want 2", len(r.Callers[callee]))
	}
	w := r.Prog.FuncByName["w"]
	if len(r.Callers[w]) != 1 {
		t.Errorf("callers of w = %d, want 1 (the fork)", len(r.Callers[w]))
	}
}

func TestVarargMismatchTolerated(t *testing.T) {
	// More arguments than parameters (and vice versa) must not crash and
	// must bind the common prefix.
	r := analyze(t, `
int x;
int *g;
void f(int *a) { g = a; }
int main() {
	f(&x, 1, 2);
	return 0;
}
`)
	g := objByName(t, r.Prog, "g")
	if n := ptsNames(r, g); !n["x"] {
		t.Errorf("pt(g) = %v", n)
	}
}

func TestThreadHandleKind(t *testing.T) {
	r := analyze(t, `
void w(void *a) { }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	found := false
	for _, o := range r.Prog.Objects {
		if o.Kind == ir.ObjThread {
			found = true
		}
	}
	if !found {
		t.Error("fork must create a thread-handle object")
	}
}

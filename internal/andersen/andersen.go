// Package andersen implements the flow- and context-insensitive
// inclusion-based pointer analysis used as FSAM's pre-analysis (paper
// Section 1.2 and Figure 2).
//
// The solver uses difference (wave-style) propagation with periodic SCC
// collapsing of the copy-edge graph, following the constraint-resolution
// techniques of Pereira and Berlin cited by the paper. Points-to sets are
// hash-consed through the shared engine interner (identical sets stored
// once, set algebra memoized) and nodes are processed in SCC-topological
// order by the shared engine worklist. It is field-sensitive
// (one sub-object per struct field, arrays monolithic; nested aggregates are
// collapsed onto their field object, which bounds field derivation and
// subsumes positive-weight-cycle collapsing) and builds the call graph
// on the fly, resolving function pointers and indirect fork routines.
package andersen

import (
	"context"
	"sort"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/pts"
)

// node identifies a pointer-valued node in the constraint graph: all
// top-level variables first, then all abstract objects.
type node = uint32

// gepCon is a field-address constraint dst ⊇ gep(watch, field).
type gepCon struct {
	dst   node
	field int
}

// Result holds the pre-analysis outcome.
type Result struct {
	Prog *ir.Program

	// varPts[v] / objPts[o] are points-to sets of ObjIDs. The sets are
	// canonical interned sets shared across slots — read-only.
	varPts []*pts.Set
	objPts []*pts.Set
	// varIDs/objIDs are the interned handles behind varPts/objPts, kept for
	// sharing statistics and exact byte accounting.
	varIDs []engine.SetID
	objIDs []engine.SetID
	intern *engine.Interner

	// CallTargets resolves every call statement (direct calls included) to
	// its possible callees, and ForkTargets every fork to its routines.
	CallTargets map[*ir.Call][]*ir.Function
	ForkTargets map[*ir.Fork][]*ir.Function

	// Callers lists the call statements (Call or Fork) that may invoke each
	// function.
	Callers map[*ir.Function][]ir.Stmt

	// Iterations counts worklist pops that carried a non-empty delta; Pops
	// counts every pop (both for diagnostics and benchmarks).
	Iterations int
	Pops       int
}

// PointsToVar returns the set of ObjIDs v may point to (never nil).
func (r *Result) PointsToVar(v *ir.Var) *pts.Set {
	if v == nil || int(v.ID) >= len(r.varPts) || r.varPts[v.ID] == nil {
		return &pts.Set{}
	}
	return r.varPts[v.ID]
}

// PointsToObj returns the set of ObjIDs stored in object o (never nil).
func (r *Result) PointsToObj(o *ir.Object) *pts.Set {
	if o == nil || int(o.ID) >= len(r.objPts) || r.objPts[o.ID] == nil {
		return &pts.Set{}
	}
	return r.objPts[o.ID]
}

// Obj maps an ObjID from a points-to set back to its object.
func (r *Result) Obj(id uint32) *ir.Object { return r.Prog.Objects[id] }

// MayAlias reports whether *a and *b may reference a common object.
func (r *Result) MayAlias(a, b *ir.Var) bool {
	return r.PointsToVar(a).IntersectsWith(r.PointsToVar(b))
}

// AliasSet returns the common pointees of a and b (the paper's AS(*p,*q)).
func (r *Result) AliasSet(a, b *ir.Var) *pts.Set {
	return r.PointsToVar(a).Intersect(r.PointsToVar(b))
}

// InternStats returns sharing statistics over the stored points-to slots
// (how many distinct sets back how many references).
func (r *Result) InternStats() *engine.RefStats {
	rs := r.intern.NewRefStats()
	for _, id := range r.varIDs {
		rs.Ref(id)
	}
	for _, id := range r.objIDs {
		rs.Ref(id)
	}
	return rs
}

// Bytes reports the memory footprint of the stored points-to sets: each
// canonical interned set counted once plus one 4-byte handle per slot.
func (r *Result) Bytes() uint64 {
	rs := r.InternStats()
	return rs.UniqueBytes + uint64(rs.Refs)*4
}

// solver is the constraint solver state.
type solver struct {
	prog    *ir.Program
	numVars int

	parent []node // union-find over constraint nodes

	it      *engine.Interner
	wl      *engine.Worklist
	cancel  *engine.Canceller
	ptsOf   []engine.SetID // full points-to set per representative
	delta   []engine.SetID // not-yet-processed additions per representative
	copyOut [][]node       // copy successors per representative

	loads  [][]node     // dst ⊇ *n
	stores [][]node     // *n ⊇ src
	geps   [][]gepCon   // dst ⊇ gep(n, f)
	icalls [][]*ir.Call // indirect calls watching n
	iforks [][]*ir.Fork // indirect forks watching n

	resolvedCall map[*ir.Call]map[*ir.Function]bool
	resolvedFork map[*ir.Fork]map[*ir.Function]bool

	edgeCount    int
	lastCollapse int
	iterations   int
	hasEdge      map[uint64]bool
}

// Analyze runs the pre-analysis over a finalized program.
func Analyze(prog *ir.Program) *Result {
	r, _ := AnalyzeCtx(context.Background(), prog)
	return r
}

// AnalyzeCtx runs the pre-analysis under a context. On cancellation it
// returns (nil, ctx.Err()); the solve loop polls at its worklist pop.
func AnalyzeCtx(ctx context.Context, prog *ir.Program) (*Result, error) {
	s := &solver{
		prog:         prog,
		numVars:      len(prog.Vars),
		it:           engine.NewInterner(),
		wl:           engine.NewWorklist(0),
		cancel:       engine.NewCanceller(ctx),
		resolvedCall: map[*ir.Call]map[*ir.Function]bool{},
		resolvedFork: map[*ir.Fork]map[*ir.Function]bool{},
		hasEdge:      map[uint64]bool{},
	}
	s.grow()
	s.initConstraints()
	s.collapse()
	if err := s.solve(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

func (s *solver) size() int { return s.numVars + len(s.prog.Objects) }

// grow extends node-indexed slices to the current node-space size (field
// objects are materialized during solving).
func (s *solver) grow() {
	n := s.size()
	for len(s.parent) < n {
		s.parent = append(s.parent, node(len(s.parent)))
	}
	extend := func(sl *[][]node) {
		for len(*sl) < n {
			*sl = append(*sl, nil)
		}
	}
	extend(&s.copyOut)
	extend(&s.loads)
	extend(&s.stores)
	for len(s.geps) < n {
		s.geps = append(s.geps, nil)
	}
	for len(s.icalls) < n {
		s.icalls = append(s.icalls, nil)
	}
	for len(s.iforks) < n {
		s.iforks = append(s.iforks, nil)
	}
	for len(s.ptsOf) < n {
		s.ptsOf = append(s.ptsOf, engine.EmptySet)
	}
	for len(s.delta) < n {
		s.delta = append(s.delta, engine.EmptySet)
	}
	s.wl.Grow(n)
}

func (s *solver) varNode(v *ir.Var) node    { return node(v.ID) }
func (s *solver) objNode(o *ir.Object) node { return node(s.numVars) + node(o.ID) }

// find returns the representative of n with path halving.
func (s *solver) find(n node) node {
	for s.parent[n] != n {
		s.parent[n] = s.parent[s.parent[n]]
		n = s.parent[n]
	}
	return n
}

// addPts inserts obj into pts(n), scheduling n when it changes.
func (s *solver) addPts(n node, obj uint32) {
	n = s.find(n)
	if nu := s.it.Add(s.ptsOf[n], obj); nu != s.ptsOf[n] {
		s.ptsOf[n] = nu
		s.delta[n] = s.it.Add(s.delta[n], obj)
		s.push(n)
	}
}

// addPtsSet unions set into pts(n).
func (s *solver) addPtsSet(n node, set engine.SetID) {
	n = s.find(n)
	if u, added := s.it.UnionDiff(s.ptsOf[n], set); added != engine.EmptySet {
		s.ptsOf[n] = u
		s.delta[n] = s.it.Union(s.delta[n], added)
		s.push(n)
	}
}

func (s *solver) push(n node) { s.wl.Push(int(n)) }

// addCopy inserts the copy edge src→dst, propagating the current set.
func (s *solver) addCopy(src, dst node) {
	src, dst = s.find(src), s.find(dst)
	if src == dst {
		return
	}
	key := uint64(src)<<32 | uint64(dst)
	if s.hasEdge[key] {
		return
	}
	s.hasEdge[key] = true
	s.copyOut[src] = append(s.copyOut[src], dst)
	s.wl.AddEdge(int(src), int(dst))
	s.edgeCount++
	if s.ptsOf[src] != engine.EmptySet {
		s.addPtsSet(dst, s.ptsOf[src])
	}
}

// initConstraints seeds the graph from every statement.
func (s *solver) initConstraints() {
	for _, f := range s.prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				s.addStmt(f, st)
			}
		}
	}
}

func (s *solver) addStmt(f *ir.Function, st ir.Stmt) {
	switch st := st.(type) {
	case *ir.AddrOf:
		s.addPts(s.varNode(st.Dst), uint32(st.Obj.ID))
	case *ir.Copy:
		s.addCopy(s.varNode(st.Src), s.varNode(st.Dst))
	case *ir.Phi:
		for _, in := range st.Incoming {
			if in != nil {
				s.addCopy(s.varNode(in), s.varNode(st.Dst))
			}
		}
	case *ir.Load:
		n := s.find(s.varNode(st.Addr))
		s.loads[n] = append(s.loads[n], s.varNode(st.Dst))
		s.reprocess(n)
	case *ir.Store:
		n := s.find(s.varNode(st.Addr))
		s.stores[n] = append(s.stores[n], s.varNode(st.Src))
		s.reprocess(n)
	case *ir.Gep:
		n := s.find(s.varNode(st.Base))
		s.geps[n] = append(s.geps[n], gepCon{dst: s.varNode(st.Dst), field: st.Field})
		s.reprocess(n)
	case *ir.Call:
		if st.Callee != nil {
			s.bindCall(st, st.Callee)
		} else {
			n := s.find(s.varNode(st.CalleeVar))
			s.icalls[n] = append(s.icalls[n], st)
			s.reprocess(n)
		}
	case *ir.Ret:
		if st.Val != nil && f.RetVar != nil {
			s.addCopy(s.varNode(st.Val), s.varNode(f.RetVar))
		}
	case *ir.Fork:
		if st.Dst != nil {
			s.addPts(s.varNode(st.Dst), uint32(st.Handle.ID))
		}
		if st.Routine != nil {
			s.bindFork(st, st.Routine)
		} else {
			n := s.find(s.varNode(st.RoutineVar))
			s.iforks[n] = append(s.iforks[n], st)
			s.reprocess(n)
		}
	}
}

// reprocess requeues a node whose constraint lists changed so its existing
// points-to set is run through the new constraints.
func (s *solver) reprocess(n node) {
	n = s.find(n)
	if s.ptsOf[n] != engine.EmptySet {
		s.delta[n] = s.it.Union(s.delta[n], s.ptsOf[n])
		s.push(n)
	}
}

// bindCall wires up parameter and return copies for call→callee.
func (s *solver) bindCall(call *ir.Call, callee *ir.Function) {
	set := s.resolvedCall[call]
	if set == nil {
		set = map[*ir.Function]bool{}
		s.resolvedCall[call] = set
	}
	if set[callee] {
		return
	}
	set[callee] = true
	n := len(call.Args)
	if len(callee.Params) < n {
		n = len(callee.Params)
	}
	for i := 0; i < n; i++ {
		s.addCopy(s.varNode(call.Args[i]), s.varNode(callee.Params[i]))
	}
	if call.Dst != nil && callee.RetVar != nil {
		s.addCopy(s.varNode(callee.RetVar), s.varNode(call.Dst))
	}
}

// bindFork wires the fork argument to the routine's first parameter.
func (s *solver) bindFork(fork *ir.Fork, routine *ir.Function) {
	set := s.resolvedFork[fork]
	if set == nil {
		set = map[*ir.Function]bool{}
		s.resolvedFork[fork] = set
	}
	if set[routine] {
		return
	}
	set[routine] = true
	if fork.Arg != nil && len(routine.Params) > 0 {
		s.addCopy(s.varNode(fork.Arg), s.varNode(routine.Params[0]))
	}
}

// solve runs the difference-propagation worklist to a fixpoint, popping
// nodes in the engine's SCC-topological order. The worklist pop is the
// cancellation poll point.
func (s *solver) solve() error {
	for {
		if s.cancel.Cancelled() {
			return s.cancel.Err()
		}
		ni, ok := s.wl.Pop()
		if !ok {
			break
		}
		n := node(ni)
		if s.find(n) != n {
			continue // collapsed away
		}
		d := s.delta[n]
		s.delta[n] = engine.EmptySet
		if d == engine.EmptySet {
			continue
		}
		s.iterations++

		// Complex constraints over the delta.
		s.it.Set(d).ForEach(func(objID uint32) {
			obj := s.prog.Objects[objID]
			on := s.objNode(obj)
			for _, dst := range s.loads[n] {
				s.addCopy(on, dst)
			}
			for _, src := range s.stores[n] {
				s.addCopy(src, on)
			}
			for _, g := range s.geps[n] {
				fo := s.prog.FieldObj(obj, g.field)
				s.grow() // field objects may be new nodes
				s.addPts(g.dst, uint32(fo.ID))
			}
			if obj.Kind == ir.ObjFunc && obj.Func != nil {
				for _, call := range s.icalls[n] {
					s.bindCall(call, obj.Func)
				}
				for _, fork := range s.iforks[n] {
					s.bindFork(fork, obj.Func)
				}
			}
		})

		// Copy propagation of the delta.
		for _, m := range s.copyOut[n] {
			s.addPtsSet(m, d)
		}

		// Periodic cycle collapsing keeps chains short.
		if s.edgeCount-s.lastCollapse > 2048 {
			s.collapse()
			s.lastCollapse = s.edgeCount
		}
	}
	return nil
}

// collapse runs Tarjan's SCC algorithm over the copy graph and merges each
// multi-node SCC into its representative.
func (s *solver) collapse() {
	n := s.size()
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []node
	var counter int32
	type frame struct {
		v    node
		succ int
	}

	for start := 0; start < n; start++ {
		root := s.find(node(start))
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			succs := s.copyOut[v]
			advanced := false
			for fr.succ < len(succs) {
				w := s.find(succs[fr.succ])
				fr.succ++
				if w == v {
					continue
				}
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// Finished v.
			if low[v] == index[v] {
				// Pop SCC.
				var comp []node
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					s.merge(comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
}

// merge collapses the nodes of one SCC into comp[0].
func (s *solver) merge(comp []node) {
	rep := comp[0]
	for _, m := range comp[1:] {
		if m == rep {
			continue
		}
		s.parent[m] = rep
		if s.ptsOf[m] != engine.EmptySet {
			s.addPtsSet(rep, s.ptsOf[m])
			s.ptsOf[m] = engine.EmptySet
		}
		if s.delta[m] != engine.EmptySet {
			s.delta[rep] = s.it.Union(s.delta[rep], s.delta[m])
			s.delta[m] = engine.EmptySet
			s.push(rep)
		}
		s.copyOut[rep] = append(s.copyOut[rep], s.copyOut[m]...)
		s.copyOut[m] = nil
		s.loads[rep] = append(s.loads[rep], s.loads[m]...)
		s.loads[m] = nil
		s.stores[rep] = append(s.stores[rep], s.stores[m]...)
		s.stores[m] = nil
		s.geps[rep] = append(s.geps[rep], s.geps[m]...)
		s.geps[m] = nil
		s.icalls[rep] = append(s.icalls[rep], s.icalls[m]...)
		s.icalls[m] = nil
		s.iforks[rep] = append(s.iforks[rep], s.iforks[m]...)
		s.iforks[m] = nil
	}
	// Requeue the representative so merged constraint lists see its set.
	s.reprocess(rep)
}

// result snapshots the solver state into an immutable Result.
func (s *solver) result() *Result {
	s.grow()
	r := &Result{
		Prog:        s.prog,
		varPts:      make([]*pts.Set, s.numVars),
		objPts:      make([]*pts.Set, len(s.prog.Objects)),
		varIDs:      make([]engine.SetID, s.numVars),
		objIDs:      make([]engine.SetID, len(s.prog.Objects)),
		intern:      s.it,
		CallTargets: map[*ir.Call][]*ir.Function{},
		ForkTargets: map[*ir.Fork][]*ir.Function{},
		Callers:     map[*ir.Function][]ir.Stmt{},
		Iterations:  s.iterations,
		Pops:        int(s.wl.Pops()),
	}
	for i := 0; i < s.numVars; i++ {
		rep := s.find(node(i))
		if id := s.ptsOf[rep]; id != engine.EmptySet {
			r.varIDs[i] = id
			r.varPts[i] = s.it.Set(id)
		}
	}
	for i := range s.prog.Objects {
		rep := s.find(node(s.numVars + i))
		if id := s.ptsOf[rep]; id != engine.EmptySet {
			r.objIDs[i] = id
			r.objPts[i] = s.it.Set(id)
		}
	}
	for call, fs := range s.resolvedCall {
		list := make([]*ir.Function, 0, len(fs))
		for f := range fs {
			list = append(list, f)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
		r.CallTargets[call] = list
		for _, f := range list {
			r.Callers[f] = append(r.Callers[f], call)
		}
	}
	for fork, fs := range s.resolvedFork {
		list := make([]*ir.Function, 0, len(fs))
		for f := range fs {
			list = append(list, f)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
		r.ForkTargets[fork] = list
		for _, f := range list {
			r.Callers[f] = append(r.Callers[f], fork)
		}
	}
	return r
}

package andersen

import "repro/internal/ir"

// Rebind re-targets a completed Result onto fresh, a program for which
// ir.Isomorphic(r.Prog, fresh) holds and whose field objects have been
// replayed (fresh.ReplayFieldObjs(r.Prog)), so every VarID, ObjID and
// StmtID means the same thing in both programs. The interned points-to
// slices are ID-indexed and immutable, so they are shared; only the
// pointer-keyed call-resolution maps are rebuilt against fresh's
// statements and functions. This is the adoption step of the incremental
// path: the pre-analysis is the most expensive pre-interference phase,
// and under isomorphism its facts transfer exactly.
func (r *Result) Rebind(fresh *ir.Program) *Result {
	fn := func(f *ir.Function) *ir.Function {
		if f == nil {
			return nil
		}
		return fresh.FuncByName[f.Name]
	}
	nr := &Result{
		Prog:        fresh,
		varPts:      r.varPts,
		objPts:      r.objPts,
		varIDs:      r.varIDs,
		objIDs:      r.objIDs,
		intern:      r.intern,
		CallTargets: make(map[*ir.Call][]*ir.Function, len(r.CallTargets)),
		ForkTargets: make(map[*ir.Fork][]*ir.Function, len(r.ForkTargets)),
		Callers:     make(map[*ir.Function][]ir.Stmt, len(r.Callers)),
		Iterations:  r.Iterations,
		Pops:        r.Pops,
	}
	for call, fs := range r.CallTargets {
		list := make([]*ir.Function, len(fs))
		for i, f := range fs {
			list[i] = fn(f)
		}
		nr.CallTargets[fresh.Stmts[call.ID()].(*ir.Call)] = list
	}
	for fork, fs := range r.ForkTargets {
		list := make([]*ir.Function, len(fs))
		for i, f := range fs {
			list[i] = fn(f)
		}
		nr.ForkTargets[fresh.Stmts[fork.ID()].(*ir.Fork)] = list
	}
	for f, sites := range r.Callers {
		list := make([]ir.Stmt, len(sites))
		for i, s := range sites {
			list[i] = fresh.Stmts[s.ID()]
		}
		nr.Callers[fn(f)] = list
	}
	return nr
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	fsam "repro"
	"repro/internal/checkers"
	"repro/internal/diag"
	"repro/internal/exitcode"
	"repro/internal/facts"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	// Workers bounds concurrent pipeline runs (default GOMAXPROCS).
	Workers int
	// Queue bounds analyze requests waiting for a worker beyond the
	// workers themselves; an arrival past the bound is shed with 429
	// (default 64; <0 admits no waiters beyond the workers).
	Queue int
	// CacheBytes and CacheEntries bound the result cache (defaults 256 MB
	// and 128 entries; <0 disables the respective bound).
	CacheBytes   int64
	CacheEntries int
	// DefaultDeadline applies to analyze requests that set none;
	// MaxDeadline caps what a request may ask for (defaults 30s / 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxSourceBytes bounds the request body (default 4 MB); MaxScale
	// caps the workload scale a request may ask for (default 16).
	MaxSourceBytes int64
	MaxScale       int
	// Log receives one structured line per completed request (default:
	// discard).
	Log *log.Logger
	// Chaos injects server-side faults into the API paths for resilience
	// testing (zero value: no faults). See ChaosConfig.
	Chaos ChaosConfig
}

// Retry-After hints, in seconds, attached to the overload answers so
// well-behaved clients (and the gateway) can back off precisely rather
// than guessing. Queue-full is transient — capacity frees as fast as the
// pipeline drains, so retry soon; draining is terminal for this replica —
// the hint tells a direct client to wait out a restart, while a gateway
// fails over immediately anyway.
const (
	retryAfterQueueFull    = "1"
	retryAfterQueueTimeout = "2"
	retryAfterDraining     = "5"
)

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue == 0 {
		o.Queue = 64
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 128
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 30 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 5 * time.Minute
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 4 << 20
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 16
	}
	if o.Log == nil {
		o.Log = log.New(io.Discard, "", 0)
	}
	return o
}

// Server is the fsamd HTTP service. Create with New, mount Handler on an
// http.Server, and call BeginDrain before Shutdown for a graceful stop.
type Server struct {
	opt      Options
	cache    *cache
	adm      *admission
	met      *metrics
	facts    *facts.Store
	flight   flightGroup
	mux      *http.ServeMux
	chaos    *chaos
	reqSeq   atomic.Uint64
	draining atomic.Bool

	// testAnalyzeStart, when non-nil, runs inside the worker slot before
	// the pipeline; the drain test uses it to hold a request in flight.
	testAnalyzeStart func()
}

// New builds a Server over the given options.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	cacheBytes := uint64(opt.CacheBytes)
	if opt.CacheBytes < 0 {
		cacheBytes = 0
	}
	cacheEntries := opt.CacheEntries
	if cacheEntries < 0 {
		cacheEntries = 0
	}
	s := &Server{
		opt:   opt,
		cache: newCache(cacheBytes, cacheEntries),
		adm:   newAdmission(opt.Workers, opt.Queue),
		met:   newMetrics(),
		facts: facts.NewStore(0),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/pointsto", s.handlePointsTo)
	s.mux.HandleFunc("/v1/races", s.handleRaces)
	s.mux.HandleFunc("/v1/leaks", s.handleLeaks)
	s.mux.HandleFunc("/v1/diagnostics", s.handleDiagnostics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if opt.Chaos.Enabled() {
		s.chaos = newChaos(opt.Chaos, s.met)
	}
	return s
}

// Handler returns the service's HTTP handler: the API mux wrapped in the
// per-request observability layer (request IDs, structured logs, request
// counters and the latency histogram).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		if s.chaos == nil || s.chaos.intercept(rec, r) {
			s.mux.ServeHTTP(rec, r)
		}
		d := time.Since(t0)
		s.met.observeRequest(r.URL.Path, rec.status, d)
		s.opt.Log.Printf("req=%d method=%s path=%s status=%d dur=%s cache=%s engine=%s tier=%s",
			id, r.Method, r.URL.Path, rec.status, d.Round(time.Microsecond),
			orDash(rec.Header().Get("X-Fsamd-Cache")), orDash(rec.Header().Get("X-Fsamd-Engine")),
			orDash(rec.Header().Get("X-Fsamd-Precision")))
	})
}

// BeginDrain flips the server into draining: /healthz turns 503 so load
// balancers stop routing here, and new analyze requests are shed with 503
// while in-flight ones run to completion (http.Server.Shutdown waits for
// them).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusRecorder captures the response status for the logging layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, code int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), ExitCode: code})
}

// handleAnalyze implements POST /v1/analyze: admission control, the
// content-addressed cache, singleflight deduplication, and the pipeline
// run with the request's deadline and budgets mapped onto the engine.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, exitcode.Usage, "POST required")
		return
	}
	req, errStatus, err := decodeAnalyzeRequest(r, s.opt.MaxSourceBytes)
	if err != nil {
		writeError(w, errStatus, exitcode.Usage, "%v", err)
		return
	}
	// ?cachedonly=1 is the gateway's peer cache-fill probe: answer from the
	// cache or 404, never running the pipeline. Peeks bypass the drain shed
	// deliberately — a draining replica's cache stays warm, serving from it
	// costs nothing, and siblings may keep filling from it until it exits.
	cachedOnly := r.URL.Query().Get("cachedonly") == "1"
	wantEscape := r.URL.Query().Get("escape") == "1"
	if s.draining.Load() && !cachedOnly {
		s.met.observeShed("draining")
		w.Header().Set("Retry-After", retryAfterDraining)
		writeError(w, http.StatusServiceUnavailable, 0, "server is draining")
		return
	}
	name, src, cfg, deadline, errStatus, err := s.resolve(req)
	if err != nil {
		writeError(w, errStatus, exitcode.Usage, "%v", err)
		return
	}

	// Base+patch: the source is an edit of a cached analysis, re-analyzed
	// incrementally under the base's configuration (which also keys the
	// result, so a later identical from-scratch request hits this entry).
	var baseEnt *entry
	if req.Base != "" {
		var ok bool
		baseEnt, ok = s.cache.peekProgKey(req.Base)
		if !ok {
			writeError(w, http.StatusNotFound, 0,
				"unknown or evicted base %s; re-POST without base", req.Base)
			return
		}
		cfg = baseEnt.a.Config
	}
	key := Key(name, src, cfg)

	if cachedOnly {
		if ent, ok := s.cache.peek(key); ok {
			s.respondAnalyze(w, ent, true, false, wantEscape)
			return
		}
		writeError(w, http.StatusNotFound, 0, "not cached")
		return
	}

	// Fast path: a cache hit costs no admission and no pipeline run.
	if ent, ok := s.cache.get(key); ok {
		s.respondAnalyze(w, ent, true, false, wantEscape)
		return
	}

	// fromCache marks the leader re-finding a published entry under the
	// flight (set before the flight completes, read after — ordered by the
	// flight's WaitGroup).
	fromCache := false
	ent, status, err, shared := s.flight.do(key, func() (*entry, int, error) {
		// The admission wait is bounded by the client's patience: the
		// request context dies when the client gives up, and we also cap
		// the wait at the analysis deadline — queueing longer than the
		// work itself may take is never useful.
		actx, cancel := context.WithTimeout(r.Context(), deadline)
		defer cancel()
		if err := s.adm.acquire(actx); err != nil {
			if errors.Is(err, errQueueFull) {
				s.met.observeShed("queue_full")
				return nil, http.StatusTooManyRequests, errors.New("saturated: admission queue full, retry later")
			}
			s.met.observeShed("queue_timeout")
			return nil, http.StatusServiceUnavailable, errors.New("saturated: timed out waiting for a worker")
		}
		defer s.adm.release()
		// Re-check under the flight: an earlier leader may have published
		// the entry after our fast-path miss.
		if ent, ok := s.cache.peek(key); ok {
			fromCache = true
			return ent, 0, nil
		}
		if s.testAnalyzeStart != nil {
			s.testAnalyzeStart()
		}
		if baseEnt != nil {
			return s.runDelta(key, name, src, baseEnt, deadline)
		}
		return s.runAnalysis(key, name, src, cfg, deadline)
	})
	if shared {
		s.met.observeDedup()
	}
	if err != nil {
		code := exitcode.Failure
		switch status {
		case http.StatusTooManyRequests:
			code = 0
			w.Header().Set("Retry-After", retryAfterQueueFull)
		case http.StatusServiceUnavailable:
			code = 0
			w.Header().Set("Retry-After", retryAfterQueueTimeout)
		}
		writeError(w, status, code, "%v", err)
		return
	}
	s.respondAnalyze(w, ent, fromCache, shared, wantEscape)
}

// runAnalysis executes one pipeline run (the singleflight leader path,
// inside a worker slot) and publishes the entry.
func (s *Server) runAnalysis(key, name, src string, cfg fsam.Config, deadline time.Duration) (*entry, int, error) {
	// The analysis context is detached from the request: followers from
	// the singleflight and future cache hits share this result, so one
	// impatient client must not cancel it for everyone.
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	t0 := time.Now()
	a, err := fsam.AnalyzeSourceCtx(ctx, name, src, cfg)
	elapsed := time.Since(t0)
	if err != nil {
		if a == nil && !pipeline.ErrCancelled(err) {
			// Compile failure: the source itself is bad.
			return nil, http.StatusUnprocessableEntity, err
		}
		if pipeline.ErrCancelled(err) {
			// The deadline expired below the ladder (pre-analysis):
			// nothing usable completed. The client's budget, not our
			// fault — 504 mirrors the OOT exit-code convention.
			return nil, http.StatusGatewayTimeout,
				fmt.Errorf("deadline %s expired before any tier completed", deadline)
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	s.met.observeAnalysis(a)
	ent := s.newEntry(key, src, a, elapsed)
	s.cache.put(ent)
	return ent, 0, nil
}

// newEntry builds the cache entry for a completed analysis, wiring the
// analysis onto the server-wide fact store and indexing its program content
// address so it can serve as the base of later patch requests.
func (s *Server) newEntry(key, src string, a *fsam.Analysis, elapsed time.Duration) *entry {
	if a.FactsStore == nil {
		a.FactsStore = s.facts
	}
	progKey, _ := a.ProgKey() // empty (unindexed) when not delta-keyable
	return &entry{
		id:      key,
		a:       a,
		progKey: progKey,
		// Accounted footprint: the analysis' own structures plus the
		// retained source and a fixed overhead for the handle itself.
		bytes: a.Stats.Bytes + uint64(len(src)) + 4096,
		resp: AnalyzeResponse{
			ID:           key,
			Engine:       a.Engine,
			Precision:    a.Precision.String(),
			Degraded:     a.Stats.Degraded,
			ExitCode:     exitcode.ForAnalysis(a),
			Stats:        harness.StatsOf(a, elapsed, false),
			PhaseSeconds: phaseSeconds(a),
			ProgKey:      progKey,
		},
	}
}

// runDelta executes one incremental re-analysis against a cached base
// (the singleflight leader path, inside a worker slot) and publishes the
// entry. The result is cached under the same content address a
// from-scratch run of the patched source would use — the delta contract is
// that the two are observably identical.
func (s *Server) runDelta(key, name, src string, baseEnt *entry, deadline time.Duration) (*entry, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	t0 := time.Now()
	a, rep, err := fsam.AnalyzeDeltaCtx(ctx, baseEnt.a, name, src)
	elapsed := time.Since(t0)
	if err != nil {
		if a == nil && !pipeline.ErrCancelled(err) {
			return nil, http.StatusUnprocessableEntity, err
		}
		if pipeline.ErrCancelled(err) {
			return nil, http.StatusGatewayTimeout,
				fmt.Errorf("deadline %s expired before any tier completed", deadline)
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	s.met.observeDelta(rep.Tier)
	if rep.Tier != fsam.DeltaNoop {
		// A noop adoption runs no pipeline; anything else is a real
		// (partial or full) run worth the analysis series.
		s.met.observeAnalysis(a)
	}
	ent := s.newEntry(key, src, a, elapsed)
	ent.resp.Delta = &DeltaResponse{
		Base:          rep.BaseProgKey,
		Tier:          rep.Tier,
		ChangedFuncs:  rep.ChangedFuncs,
		RemovedFuncs:  rep.RemovedFuncs,
		AdoptedFuncs:  rep.AdoptedFuncs,
		ImpactedFuncs: len(rep.ImpactedFuncs),
		PhasesRun:     rep.PhasesRun,
		Facts:         rep.Facts.String(),
		HitRatio:      rep.Facts.HitRatio(),
	}
	s.cache.put(ent)
	return ent, 0, nil
}

// escapeSummary renders a cached analysis' thread-escape classification
// (nil when the result's tier has no thread model). EscapeResult is
// memoized and safe for concurrent readers, so cached replays are cheap.
func escapeSummary(ent *entry) *EscapeSummary {
	esc := ent.a.EscapeResult()
	if esc == nil {
		return nil
	}
	return &EscapeSummary{
		Local:       esc.NumLocal,
		HandedOff:   esc.NumHandedOff,
		Shared:      esc.NumShared,
		PrunedEdges: ent.a.Stats.EscapePrunedEdges,
	}
}

// respondAnalyze replays an entry's response skeleton with the per-request
// Cached/Shared flags (and the ?escape=1 summary, which is per-request
// presentation, not part of the cached skeleton).
func (s *Server) respondAnalyze(w http.ResponseWriter, ent *entry, cached, shared, wantEscape bool) {
	resp := ent.resp
	resp.Cached = cached
	resp.Shared = shared
	if wantEscape {
		resp.Escape = escapeSummary(ent)
	}
	w.Header().Set("X-Fsamd-Engine", resp.Engine)
	w.Header().Set("X-Fsamd-Precision", resp.Precision)
	if resp.ProgKey != "" {
		// The program content address rides a header so proxies (the
		// gateway's base-affinity map) can learn it without parsing bodies.
		w.Header().Set("X-Fsamd-Progkey", resp.ProgKey)
	}
	if resp.Delta != nil {
		w.Header().Set("X-Fsamd-Delta", resp.Delta.Tier)
		w.Header().Set("X-Fsamd-Facts", resp.Delta.Facts)
	}
	if cached {
		w.Header().Set("X-Fsamd-Cache", "hit")
	} else {
		w.Header().Set("X-Fsamd-Cache", "miss")
	}
	writeJSON(w, HTTPStatus(resp.ExitCode), resp)
}

// decodeAnalyzeRequest reads the bounded body and hands it to the shared
// decoder.
func decodeAnalyzeRequest(r *http.Request, maxBody int64) (AnalyzeRequest, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBody))
	if err != nil {
		return AnalyzeRequest{}, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err)
	}
	req, err := DecodeAnalyze(body, r.URL.Query())
	if err != nil {
		return req, http.StatusBadRequest, err
	}
	return req, 0, nil
}

// DecodeAnalyze parses an analyze request body and applies the
// query-parameter overrides (?membudget=, ?steplimit=, ?deadline=,
// ?engine=). It is shared with the gateway, which must interpret a request
// exactly the way the replica it routes to will — a disagreement would
// split identical requests across cache entries.
func DecodeAnalyze(body []byte, q url.Values) (AnalyzeRequest, error) {
	var req AnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("malformed request body: %w", err)
	}
	if v := q.Get("membudget"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("membudget: %w", err)
		}
		req.Config.MemBudgetBytes = n
	}
	if v := q.Get("steplimit"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("steplimit: %w", err)
		}
		req.Config.StepLimit = n
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return req, fmt.Errorf("deadline: %w", err)
		}
		req.DeadlineMS = d.Milliseconds()
	}
	if v := q.Get("engine"); v != "" {
		req.Config.Engine = v
	}
	if v := q.Get("memmodel"); v != "" {
		req.Config.MemModel = v
	}
	if v := q.Get("escapeprune"); v != "" {
		req.Config.EscapePrune = v
	}
	return req, nil
}

// ResolveInputs validates an analyze request and produces the concrete
// pipeline inputs: the position-bearing name, the source text (benchmark
// requests are generated here), and the canonicalized configuration.
// errStatus carries the HTTP status when err is non-nil. Exported for the
// gateway, which resolves requests the same way to compute the content
// address a replica will cache the result under.
func ResolveInputs(req AnalyzeRequest, maxScale int) (name, src string, cfg fsam.Config, errStatus int, err error) {
	if req.Config.Engine != "" && !fsam.KnownEngine(req.Config.Engine) {
		return "", "", cfg, http.StatusBadRequest,
			fmt.Errorf("unknown engine %q (known: %s)", req.Config.Engine, strings.Join(fsam.Engines(), ", "))
	}
	if req.Config.MemModel != "" && !fsam.KnownMemModel(req.Config.MemModel) {
		return "", "", cfg, http.StatusBadRequest,
			fmt.Errorf("unknown memory model %q (known: %s)", req.Config.MemModel, strings.Join(fsam.MemModels(), ", "))
	}
	if !fsam.KnownEscapePrune(req.Config.EscapePrune) {
		return "", "", cfg, http.StatusBadRequest,
			fmt.Errorf("unknown escape-prune mode %q (known: %s)", req.Config.EscapePrune, strings.Join(fsam.EscapePruneModes(), ", "))
	}
	switch {
	case req.Source != "" && req.Benchmark != "":
		return "", "", cfg, http.StatusBadRequest, errors.New("source and benchmark are mutually exclusive")
	case req.Source == "" && req.Benchmark == "":
		return "", "", cfg, http.StatusBadRequest, errors.New("one of source or benchmark is required")
	case req.Benchmark != "":
		scale := req.Scale
		if scale <= 0 {
			scale = 1
		}
		if scale > maxScale {
			return "", "", cfg, http.StatusBadRequest,
				fmt.Errorf("scale %d exceeds the server cap %d", scale, maxScale)
		}
		src, err = workload.Generate(req.Benchmark, scale)
		if err != nil {
			// The workload package's unknown-name error, surfaced verbatim.
			return "", "", cfg, http.StatusNotFound, err
		}
		name = req.Benchmark + ".mc"
	default:
		src = req.Source
		name = req.Name
		if name == "" {
			name = "request.mc"
		}
	}
	return name, src, req.Config.Config(), 0, nil
}

// RoutingKey computes the content address an analyze request's result will
// be cached under, for gateway-side consistent-hash routing. Base+patch
// requests are not keyable without the base entry's configuration (the base
// governs the config, and only the replica holding it knows the config);
// they report ok=false and are routed by their Base program key instead.
func RoutingKey(req AnalyzeRequest, maxScale int) (key string, ok bool, errStatus int, err error) {
	if req.Base != "" {
		return "", false, 0, nil
	}
	name, src, cfg, st, err := ResolveInputs(req, maxScale)
	if err != nil {
		return "", false, st, err
	}
	return Key(name, src, cfg), true, 0, nil
}

// resolve produces the pipeline inputs plus the server-policy deadline.
func (s *Server) resolve(req AnalyzeRequest) (name, src string, cfg fsam.Config, deadline time.Duration, errStatus int, err error) {
	name, src, cfg, errStatus, err = ResolveInputs(req, s.opt.MaxScale)
	if err != nil {
		return "", "", cfg, 0, errStatus, err
	}
	deadline = s.opt.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.opt.MaxDeadline {
		deadline = s.opt.MaxDeadline
	}
	return name, src, cfg, deadline, 0, nil
}

// lookup resolves ?id= against the cache for the query endpoints.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, exitcode.Usage, "missing id parameter")
		return nil, false
	}
	ent, ok := s.cache.peek(id)
	if !ok {
		writeError(w, http.StatusNotFound, 0,
			"unknown or evicted analysis id %s; re-POST /v1/analyze", id)
		return nil, false
	}
	w.Header().Set("X-Fsamd-Engine", ent.resp.Engine)
	w.Header().Set("X-Fsamd-Precision", ent.resp.Precision)
	w.Header().Set("X-Fsamd-Cache", "hit")
	return ent, true
}

// handlePointsTo implements GET /v1/pointsto?id=...&global=NAME.
func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(w, r)
	if !ok {
		return
	}
	global := r.URL.Query().Get("global")
	if global == "" {
		writeError(w, http.StatusBadRequest, exitcode.Usage, "missing global parameter")
		return
	}
	pt, err := ent.a.PointsToGlobal(global)
	if err != nil {
		writeError(w, http.StatusNotFound, 0, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, PointsToResponse{
		ID:        ent.id,
		Global:    global,
		PointsTo:  pt,
		Precision: ent.resp.Precision,
	})
}

// handleRaces implements GET /v1/races?id=... . On a degraded analysis the
// race client cannot run; that is a conflict with the cached result's
// tier, not a server error.
func (s *Server) handleRaces(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(w, r)
	if !ok {
		return
	}
	reports, err := ent.a.Races()
	if err != nil {
		writeError(w, http.StatusConflict, ent.resp.ExitCode, "%v", err)
		return
	}
	resp := RacesResponse{ID: ent.id, Count: len(reports), Precision: ent.resp.Precision}
	for _, rep := range reports {
		resp.Reports = append(resp.Reports, rep.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLeaks implements GET /v1/leaks?id=... .
func (s *Server) handleLeaks(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(w, r)
	if !ok {
		return
	}
	reports := ent.a.Leaks()
	resp := LeaksResponse{ID: ent.id, Count: len(reports), Precision: ent.resp.Precision}
	for _, rep := range reports {
		resp.Reports = append(resp.Reports, rep.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiagnostics implements GET /v1/diagnostics?id=...[&checkers=a,b].
// The checker suite runs once per cached analysis (memoized on the entry's
// *fsam.Analysis); repeated requests — and requests selecting different
// checker subsets — answer from that one run, so fingerprints are stable
// across queries. An unknown checker ID is a usage error; an analysis the
// suite cannot run on at all conflicts with the cached result's tier.
func (s *Server) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var ids []string
	if q := r.URL.Query().Get("checkers"); q != "" {
		for _, id := range strings.Split(q, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	res, err := ent.a.Diagnostics(ids...)
	if err != nil {
		if errors.Is(err, checkers.ErrUnknownChecker) {
			writeError(w, http.StatusBadRequest, exitcode.Usage, "%v", err)
			return
		}
		writeError(w, http.StatusConflict, ent.resp.ExitCode, "%v", err)
		return
	}
	s.met.observeDiagnostics(res.Diags)
	diags := res.Diags
	if diags == nil {
		diags = []diag.Diagnostic{}
	}
	writeJSON(w, http.StatusOK, DiagnosticsResponse{
		ID:          ent.id,
		Count:       len(res.Diags),
		Diagnostics: diags,
		Skipped:     res.Skipped,
		Suppressed:  res.Suppressed,
		Precision:   ent.resp.Precision,
	})
}

// handleHealthz implements GET /healthz — liveness. The process is up and
// answering; routing decisions belong to /readyz. Always 200 (a draining
// daemon is alive: it is finishing in-flight work), with the status field
// reporting the drain for humans.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.stats()
	resp := HealthResponse{
		Status:        "ok",
		Inflight:      s.adm.inflight(),
		Queued:        s.adm.queued(),
		CacheEntries:  st.Entries,
		UptimeSeconds: time.Since(s.met.started).Seconds(),
	}
	if s.draining.Load() {
		resp.Status = "draining"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz implements GET /readyz — readiness. 503 while draining or
// while the admission queue is saturated, so load balancers and the
// gateway stop routing new work here without concluding the process is
// dead (that distinction is exactly why liveness and readiness are split:
// ejecting on liveness would abort in-flight work a drain is protecting).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.stats()
	resp := HealthResponse{
		Status:        "ready",
		Inflight:      s.adm.inflight(),
		Queued:        s.adm.queued(),
		CacheEntries:  st.Entries,
		UptimeSeconds: time.Since(s.met.started).Seconds(),
	}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterDraining)
	case s.adm.saturated():
		resp.Status = "saturated"
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterQueueFull)
	}
	writeJSON(w, status, resp)
}

// handleMetrics implements GET /metrics (Prometheus text exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.cache.stats(), s.facts.Counters(), s.adm.inflight(), s.adm.queued(), s.draining.Load())
}

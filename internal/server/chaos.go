package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ChaosConfig injects server-side faults into the API paths (/v1/*) so the
// fleet's resilience layer can be proven under load rather than asserted.
// The probes and observability endpoints (/healthz, /readyz, /metrics) are
// exempt: chaos models a struggling data path, and orchestration must keep
// seeing the truth — a replica that lies to its prober cannot be drained
// sanely. Every injected fault is surfaced in the metrics as
// fsamd_chaos_injected_total{kind}.
type ChaosConfig struct {
	// Latency is the injected delay, applied with probability LatencyP
	// before the request is handled.
	Latency  time.Duration
	LatencyP float64
	// ErrorP is the probability of answering 503 "chaos: injected error"
	// without handling the request. 503 keeps the fault inside the
	// retryable family a well-behaved client already handles.
	ErrorP float64
	// DropP is the probability of severing the connection without any
	// response — the client sees a transport error, as it would from a
	// crashed or partitioned replica.
	DropP float64
	// Seed makes the fault schedule reproducible (0 = seed 1).
	Seed int64
}

// Enabled reports whether any fault is configured.
func (c ChaosConfig) Enabled() bool {
	return (c.Latency > 0 && c.LatencyP > 0) || c.ErrorP > 0 || c.DropP > 0
}

// ParseChaos parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g. "latency=50ms:0.3,error=0.1,drop=0.05,seed=7". The latency
// value is DURATION or DURATION:PROBABILITY (probability defaults to 1);
// error and drop take a probability in [0,1].
func ParseChaos(spec string) (ChaosConfig, error) {
	var c ChaosConfig
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return c, fmt.Errorf("chaos: %q is not key=value", part)
		}
		var err error
		switch k {
		case "latency":
			dur, prob := v, "1"
			if d, p, ok := strings.Cut(v, ":"); ok {
				dur, prob = d, p
			}
			if c.Latency, err = time.ParseDuration(dur); err != nil {
				return c, fmt.Errorf("chaos latency: %w", err)
			}
			if c.LatencyP, err = parseProb(prob); err != nil {
				return c, fmt.Errorf("chaos latency: %w", err)
			}
		case "error":
			if c.ErrorP, err = parseProb(v); err != nil {
				return c, fmt.Errorf("chaos error: %w", err)
			}
		case "drop":
			if c.DropP, err = parseProb(v); err != nil {
				return c, fmt.Errorf("chaos drop: %w", err)
			}
		case "seed":
			if c.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				return c, fmt.Errorf("chaos seed: %w", err)
			}
		default:
			return c, fmt.Errorf("chaos: unknown key %q (want latency, error, drop, seed)", k)
		}
	}
	return c, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

// chaos is the fault-injection middleware state. Rolls share one seeded
// RNG under a mutex so the schedule is reproducible for a fixed request
// order.
type chaos struct {
	cfg ChaosConfig
	met *metrics
	mu  sync.Mutex
	rng *rand.Rand
}

func newChaos(cfg ChaosConfig, met *metrics) *chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &chaos{cfg: cfg, met: met, rng: rand.New(rand.NewSource(seed))}
}

func (c *chaos) roll() (drop, latency, errResp float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64(), c.rng.Float64(), c.rng.Float64()
}

// intercept applies the configured faults ahead of the mux and reports
// whether the request should proceed to the real handler. Only /v1/ paths
// are eligible. Drop severs the connection (status recorded as 444, the
// conventional "closed without response"); error answers 503 so clients
// exercise their retry path; latency just delays and lets the request
// through.
func (c *chaos) intercept(rec *statusRecorder, r *http.Request) bool {
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		return true
	}
	dropRoll, latRoll, errRoll := c.roll()
	if c.cfg.DropP > 0 && dropRoll < c.cfg.DropP {
		c.met.observeChaos("drop")
		rec.status = 444
		if hj, ok := rec.ResponseWriter.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return false
			}
		}
		// The connection cannot be severed (e.g. an in-process
		// ResponseRecorder); an empty 500 is the closest stand-in.
		rec.WriteHeader(http.StatusInternalServerError)
		return false
	}
	if c.cfg.Latency > 0 && c.cfg.LatencyP > 0 && latRoll < c.cfg.LatencyP {
		c.met.observeChaos("latency")
		select {
		case <-time.After(c.cfg.Latency):
		case <-r.Context().Done():
		}
	}
	if c.cfg.ErrorP > 0 && errRoll < c.cfg.ErrorP {
		c.met.observeChaos("error")
		writeError(rec, http.StatusServiceUnavailable, 0, "chaos: injected error")
		return false
	}
	return true
}

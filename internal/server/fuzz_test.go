package server

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"testing"
)

// FuzzAnalyzeRequest feeds arbitrary bytes (and query strings) through the
// analyze request decoder: it must never panic, and whatever it accepts must
// survive resolve() without panicking either. This is the service's public
// attack surface — everything else is derived from an already-validated
// request.
func FuzzAnalyzeRequest(f *testing.F) {
	f.Add([]byte(`{"source":"int x;"}`), "")
	f.Add([]byte(`{"benchmark":"word_count","scale":2}`), "membudget=4096&steplimit=100&deadline=5s")
	f.Add([]byte(`{"source":"int x;","benchmark":"kmeans"}`), "")
	f.Add([]byte(`{"name":"a.mc","source":"","config":{"ctx_depth":-3,"membudget":1}}`), "steplimit=-5")
	f.Add([]byte(`{`), "membudget=18446744073709551616")
	f.Add([]byte(`null`), "deadline=-1s")
	f.Add([]byte(`{"deadline_ms":-100,"scale":-1}`), "")

	s := New(Options{MaxSourceBytes: 1 << 16})
	f.Fuzz(func(t *testing.T, body []byte, query string) {
		u, err := url.Parse("/v1/analyze?" + query)
		if err != nil {
			return // not a URL the router would ever deliver
		}
		r := &http.Request{Method: "POST", URL: u, Body: io.NopCloser(bytes.NewReader(body))}
		req, _, err := decodeAnalyzeRequest(r, 1<<16)
		if err != nil {
			return
		}
		name, src, cfg, deadline, _, err := s.resolve(req)
		if err != nil {
			return
		}
		// Accepted requests must produce a well-formed content address and a
		// positive deadline.
		if name == "" {
			t.Fatalf("accepted request with empty name: %+v", req)
		}
		if deadline <= 0 {
			t.Fatalf("accepted request with non-positive deadline %s", deadline)
		}
		if k := Key(name, src, cfg); len(k) != len("sha256:")+64 {
			t.Fatalf("malformed key %q", k)
		}
	})
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	fsam "repro"
	"repro/internal/exitcode"
)

// fig1aSrc is the paper's Fig. 1a program: tiny, multithreaded, and with a
// known flow-sensitive answer pt(c) = {y, z}.
const fig1aSrc = `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) {
	*p = q;
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	return 0;
}
`

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(opt)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// postAnalyze submits req (with extra query string, e.g. "membudget=1") and
// decodes the response body into either an AnalyzeResponse or an
// ErrorResponse depending on the status.
func postAnalyze(t *testing.T, base string, req AnalyzeRequest, query string) (int, AnalyzeResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	u := base + "/v1/analyze"
	if query != "" {
		u += "?" + query
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/analyze: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var ok AnalyzeResponse
	var bad ErrorResponse
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("decode AnalyzeResponse (%d): %v\n%s", resp.StatusCode, err, raw)
		}
	} else {
		if err := json.Unmarshal(raw, &bad); err != nil {
			t.Fatalf("decode ErrorResponse (%d): %v\n%s", resp.StatusCode, err, raw)
		}
	}
	return resp.StatusCode, ok, bad
}

// scrapeMetrics fetches /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(raw)
}

// metricValue extracts the value of an exact sample line (name plus label
// set, e.g. `fsamd_analyses_total`).
func metricValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, found := strings.CutPrefix(line, sample+" "); found {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse %q value %q: %v", sample, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric sample %q not found in exposition:\n%s", sample, text)
	return 0
}

// TestAnalyzeCacheHit is the acceptance path: a second identical POST
// /v1/analyze is served from the cache — the hit counter increments and no
// new pipeline run happens.
func TestAnalyzeCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{Name: "fig1a.mc", Source: fig1aSrc}

	status, first, _ := postAnalyze(t, ts.URL, req, "")
	if status != http.StatusOK {
		t.Fatalf("first analyze: status %d", status)
	}
	if first.Cached {
		t.Fatalf("first analyze reported cached=true")
	}
	if !strings.HasPrefix(first.ID, "sha256:") {
		t.Fatalf("id %q is not a content address", first.ID)
	}
	if first.Precision != fsam.PrecisionSparseFS.String() || first.ExitCode != exitcode.OK {
		t.Fatalf("first analyze: precision=%q exit=%d, want sparse-fs/0", first.Precision, first.ExitCode)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, "fsamd_analyses_total"); got != 1 {
		t.Fatalf("after first analyze: fsamd_analyses_total = %g, want 1", got)
	}
	if got := metricValue(t, m, "fsamd_cache_misses_total"); got != 1 {
		t.Fatalf("after first analyze: fsamd_cache_misses_total = %g, want 1", got)
	}

	status, second, _ := postAnalyze(t, ts.URL, req, "")
	if status != http.StatusOK {
		t.Fatalf("second analyze: status %d", status)
	}
	if !second.Cached {
		t.Fatalf("second identical analyze was not a cache hit")
	}
	if second.ID != first.ID {
		t.Fatalf("cache hit changed the id: %q vs %q", second.ID, first.ID)
	}

	m = scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, "fsamd_cache_hits_total"); got != 1 {
		t.Fatalf("after second analyze: fsamd_cache_hits_total = %g, want 1", got)
	}
	if got := metricValue(t, m, "fsamd_analyses_total"); got != 1 {
		t.Fatalf("second identical analyze ran the pipeline again (fsamd_analyses_total = %g)", got)
	}
	if got := metricValue(t, m, "fsamd_cache_hit_ratio"); got != 0.5 {
		t.Fatalf("fsamd_cache_hit_ratio = %g, want 0.5", got)
	}

	// The exposition carries the request counters and the latency histogram.
	for _, want := range []string{
		`fsamd_requests_total{path="/v1/analyze",code="200"} 2`,
		`fsamd_request_duration_seconds_bucket{le="+Inf"}`,
		"fsamd_request_duration_seconds_sum",
		"fsamd_request_duration_seconds_count",
		`fsamd_precision_total{tier="sparse-fs"} 1`,
		`fsamd_phase_seconds_total{phase="sparse"}`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics exposition is missing %q", want)
		}
	}
}

// TestAnalyzeOverBudgetDegrades: an over-budget request answers with a
// degraded tier — HTTP 200 carrying the exit-code convention — never a 5xx.
func TestAnalyzeOverBudgetDegrades(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{Name: "fig1a.mc", Source: fig1aSrc}

	status, resp, _ := postAnalyze(t, ts.URL, req, "membudget=1")
	if status != http.StatusOK {
		t.Fatalf("over-budget analyze: status %d, want 200", status)
	}
	if resp.ExitCode != exitcode.DegradedAndersen {
		t.Fatalf("over-budget analyze: exit_code %d, want %d", resp.ExitCode, exitcode.DegradedAndersen)
	}
	if resp.Precision != fsam.PrecisionAndersenOnly.String() {
		t.Fatalf("over-budget analyze: precision %q, want andersen-only", resp.Precision)
	}
	if resp.Degraded == "" {
		t.Fatalf("over-budget analyze: empty degraded reason")
	}
	if resp.ID == "" {
		t.Fatalf("over-budget analyze: no id")
	}

	// The budget is part of the content address: the same source without the
	// budget is a different result, not a hit on the degraded one.
	status2, full, _ := postAnalyze(t, ts.URL, req, "")
	if status2 != http.StatusOK || full.Cached {
		t.Fatalf("unbudgeted analyze after budgeted one: status=%d cached=%v", status2, full.Cached)
	}
	if full.ID == resp.ID {
		t.Fatalf("budgeted and unbudgeted requests share a content address")
	}

	// Race detection needs full precision; on the degraded result the query
	// endpoint answers 409 (a tier conflict), not a server error.
	rr, err := http.Get(ts.URL + "/v1/races?id=" + resp.ID)
	if err != nil {
		t.Fatalf("GET /v1/races: %v", err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("races on degraded analysis: status %d, want 409", rr.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(rr.Body).Decode(&er); err != nil {
		t.Fatalf("decode races error: %v", err)
	}
	if er.ExitCode != exitcode.DegradedAndersen {
		t.Fatalf("races on degraded analysis: body exit_code %d, want %d", er.ExitCode, exitcode.DegradedAndersen)
	}
}

// TestQueryEndpoints drives pointsto/races/leaks against a cached analysis.
func TestQueryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, ar, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "fig1a.mc", Source: fig1aSrc}, "")
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}

	var pt PointsToResponse
	getJSON(t, ts.URL+"/v1/pointsto?id="+ar.ID+"&global=c", http.StatusOK, &pt)
	want := map[string]bool{"y": true, "z": true}
	if len(pt.PointsTo) != 2 || !want[pt.PointsTo[0]] || !want[pt.PointsTo[1]] {
		t.Fatalf("pt(c) = %v, want {y, z}", pt.PointsTo)
	}
	if pt.Precision != fsam.PrecisionSparseFS.String() {
		t.Fatalf("pointsto precision %q", pt.Precision)
	}

	var races RacesResponse
	getJSON(t, ts.URL+"/v1/races?id="+ar.ID, http.StatusOK, &races)
	if races.Count != len(races.Reports) {
		t.Fatalf("races count %d != %d reports", races.Count, len(races.Reports))
	}

	var leaks LeaksResponse
	getJSON(t, ts.URL+"/v1/leaks?id="+ar.ID, http.StatusOK, &leaks)
	if leaks.ID != ar.ID {
		t.Fatalf("leaks id %q", leaks.ID)
	}

	// Error paths.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/pointsto?global=c", http.StatusBadRequest},                     // missing id
		{"/v1/pointsto?id=sha256:beef&global=c", http.StatusNotFound},        // unknown id
		{"/v1/pointsto?id=" + ar.ID, http.StatusBadRequest},                  // missing global
		{"/v1/pointsto?id=" + ar.ID + "&global=nosuch", http.StatusNotFound}, // unknown global
		{"/v1/races?id=sha256:beef", http.StatusNotFound},
		{"/v1/leaks", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, want %d\n%s", url, resp.StatusCode, wantStatus, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestAnalyzeRequestValidation covers the 400/404/405 request-shape errors.
func TestAnalyzeRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxScale: 4})

	cases := []struct {
		name  string
		req   AnalyzeRequest
		query string
		want  int
	}{
		{"both inputs", AnalyzeRequest{Source: "int x;", Benchmark: "word_count"}, "", http.StatusBadRequest},
		{"no inputs", AnalyzeRequest{}, "", http.StatusBadRequest},
		{"unknown benchmark", AnalyzeRequest{Benchmark: "no_such_bench"}, "", http.StatusNotFound},
		{"scale over cap", AnalyzeRequest{Benchmark: "word_count", Scale: 5}, "", http.StatusBadRequest},
		{"bad membudget", AnalyzeRequest{Source: "int x;"}, "membudget=bogus", http.StatusBadRequest},
		{"bad steplimit", AnalyzeRequest{Source: "int x;"}, "steplimit=1e9", http.StatusBadRequest},
		{"bad deadline", AnalyzeRequest{Source: "int x;"}, "deadline=soon", http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, _, er := postAnalyze(t, ts.URL, tc.req, tc.query)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		}
		if er.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
		if tc.name == "unknown benchmark" && !strings.Contains(er.Error, "unknown benchmark") {
			t.Errorf("unknown benchmark: error %q does not surface the workload error", er.Error)
		}
	}

	// Malformed body.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("POST malformed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatalf("GET analyze: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: status %d, want 405", resp.StatusCode)
	}

	// A compile error in the submitted source is the client's fault: 422
	// with the repo's failure exit code, not a 500.
	status, _, er := postAnalyze(t, ts.URL, AnalyzeRequest{Source: "int x = ;"}, "")
	if status != http.StatusUnprocessableEntity {
		t.Errorf("compile error: status %d, want 422", status)
	}
	if er.ExitCode != exitcode.Failure {
		t.Errorf("compile error: exit_code %d, want %d", er.ExitCode, exitcode.Failure)
	}
}

// TestHTTPStatusMapping pins the exit-code convention → HTTP status map.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct{ code, want int }{
		{exitcode.OK, http.StatusOK},
		{exitcode.DegradedThreadOblivious, http.StatusOK},
		{exitcode.DegradedAndersen, http.StatusOK},
		{exitcode.ForPrecision(fsam.PrecisionThreadModularFS), http.StatusOK},
		{exitcode.Usage, http.StatusBadRequest},
		{exitcode.Failure, http.StatusUnprocessableEntity},
		{99, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.code); got != tc.want {
			t.Errorf("HTTPStatus(%d) = %d, want %d", tc.code, got, tc.want)
		}
	}
}

// TestKeyCanonicalization: the content address must not depend on how the
// default configuration is spelled, and must depend on the inputs.
func TestKeyCanonicalization(t *testing.T) {
	base := Key("a.mc", "int x;", fsam.Config{})
	if got := Key("a.mc", "int x;", fsam.Config{}.Normalize()); got != base {
		t.Errorf("zero config and normalized config disagree: %q vs %q", got, base)
	}
	if got := Key("a.mc", "int y;", fsam.Config{}); got == base {
		t.Errorf("source change did not change the key")
	}
	if got := Key("b.mc", "int x;", fsam.Config{}); got == base {
		t.Errorf("name change did not change the key")
	}
	if got := Key("a.mc", "int x;", fsam.Config{MemBudgetBytes: 1}); got == base {
		t.Errorf("budget change did not change the key")
	}
}

// TestAdmissionQueueFull: with one worker and no queue depth, a second
// distinct request is shed with 429 while the first holds the slot.
func TestAdmissionQueueFull(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, Queue: -1})
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	svc.testAnalyzeStart = func() {
		once.Do(func() { close(started) })
		<-block
	}

	firstDone := make(chan int, 1)
	go func() {
		status, _, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: fig1aSrc, Name: "a.mc"}, "")
		firstDone <- status
	}()
	<-started

	// A different key, so it cannot ride the first request's singleflight.
	status, _, er := postAnalyze(t, ts.URL, AnalyzeRequest{Source: "int x; int main() { return 0; }", Name: "b.mc"}, "")
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated analyze: status %d, want 429", status)
	}
	if !strings.Contains(er.Error, "saturated") {
		t.Fatalf("saturated analyze: error %q", er.Error)
	}

	close(block)
	if got := <-firstDone; got != http.StatusOK {
		t.Fatalf("first analyze: status %d", got)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, `fsamd_shed_total{reason="queue_full"}`); got != 1 {
		t.Fatalf("fsamd_shed_total{queue_full} = %g, want 1", got)
	}
}

// TestSingleflightDedup: two concurrent identical submissions run the
// pipeline once.
func TestSingleflightDedup(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	svc.testAnalyzeStart = func() {
		once.Do(func() { close(started) })
		<-block
	}

	req := AnalyzeRequest{Source: fig1aSrc, Name: "dedup.mc"}
	type result struct {
		status int
		resp   AnalyzeResponse
	}
	results := make(chan result, 2)
	go func() {
		status, resp, _ := postAnalyze(t, ts.URL, req, "")
		results <- result{status, resp}
	}()
	<-started
	go func() {
		status, resp, _ := postAnalyze(t, ts.URL, req, "")
		results <- result{status, resp}
	}()
	// Let the follower reach the flight (or, at worst, the published cache
	// entry — either way the pipeline must not run twice).
	time.Sleep(100 * time.Millisecond)
	close(block)

	a, b := <-results, <-results
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses %d/%d", a.status, b.status)
	}
	if a.resp.ID != b.resp.ID {
		t.Fatalf("ids differ: %q vs %q", a.resp.ID, b.resp.ID)
	}
	follower := a.resp
	if b.resp.Shared || b.resp.Cached {
		follower = b.resp
	}
	if !follower.Shared && !follower.Cached {
		t.Fatalf("neither response was deduplicated or cached: %+v / %+v", a.resp, b.resp)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, "fsamd_analyses_total"); got != 1 {
		t.Fatalf("fsamd_analyses_total = %g, want 1 (dedup failed)", got)
	}
}

// TestGracefulDrain: after BeginDrain, new analyze requests and /readyz
// answer 503 (with a Retry-After hint) while /healthz stays 200 — the
// process is alive, just not routable — and the in-flight request runs to
// completion under http.Server.Shutdown.
func TestGracefulDrain(t *testing.T) {
	svc := New(Options{Workers: 2})
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	svc.testAnalyzeStart = func() {
		once.Do(func() { close(started) })
		<-block
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	inflight := make(chan AnalyzeResponse, 1)
	go func() {
		status, resp, _ := postAnalyze(t, base, AnalyzeRequest{Source: fig1aSrc, Name: "drain.mc"}, "")
		if status == http.StatusOK {
			inflight <- resp
		} else {
			inflight <- AnalyzeResponse{}
		}
	}()
	<-started

	svc.BeginDrain()
	if !svc.Draining() {
		t.Fatalf("Draining() = false after BeginDrain")
	}

	status, _, er := postAnalyze(t, base, AnalyzeRequest{Source: "int x;"}, "")
	if status != http.StatusServiceUnavailable || !strings.Contains(er.Error, "draining") {
		t.Fatalf("analyze while draining: status %d, error %q", status, er.Error)
	}
	var health HealthResponse
	getJSON(t, base+"/healthz", http.StatusOK, &health)
	if health.Status != "draining" {
		t.Fatalf("healthz while draining: status %q", health.Status)
	}
	var ready HealthResponse
	getJSON(t, base+"/readyz", http.StatusServiceUnavailable, &ready)
	if ready.Status != "draining" {
		t.Fatalf("readyz while draining: status %q", ready.Status)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(shutCtx) }()
	close(block)

	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	got := <-inflight
	if got.ID == "" {
		t.Fatalf("in-flight request did not complete during drain")
	}
	if got.Cached {
		t.Fatalf("in-flight request unexpectedly served from cache")
	}
}

// TestAnalyzeEscape covers the thread-escape surface of the service: the
// ?escape=1 summary, the escapeprune knob's participation in the content
// address (on and off are distinct cache entries), and rejection of
// unknown modes.
func TestAnalyzeEscape(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// ?escape=1 attaches the classification summary; the Fig. 1a program
	// has shared globals, so the shared class must be populated.
	status, got, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: fig1aSrc}, "escape=1")
	if status != http.StatusOK {
		t.Fatalf("analyze with escape=1: status %d", status)
	}
	if got.Escape == nil {
		t.Fatalf("escape=1: no escape summary in response")
	}
	if got.Escape.Shared == 0 {
		t.Errorf("escape summary: shared = 0, want > 0 for fig1a")
	}
	if got.Escape.PrunedEdges == 0 {
		t.Errorf("escape summary: pruned_edges = 0, want > 0 with pruning on")
	}
	if got.Stats.FSAMEscapeShared != got.Escape.Shared {
		t.Errorf("stats (%d) and summary (%d) disagree on shared count",
			got.Stats.FSAMEscapeShared, got.Escape.Shared)
	}

	// Without ?escape=1 the summary is absent — presentation, not cache
	// state: the second request hits the same entry.
	status, plain, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: fig1aSrc}, "")
	if status != http.StatusOK {
		t.Fatalf("analyze without escape: status %d", status)
	}
	if plain.Escape != nil {
		t.Errorf("escape summary present without ?escape=1")
	}
	if !plain.Cached {
		t.Errorf("plain re-request missed the cache: escape=1 must not change the key")
	}

	// escapeprune=off is a different canonical config, hence a different
	// content address, and its run pruned nothing.
	status, off, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: fig1aSrc}, "escapeprune=off&escape=1")
	if status != http.StatusOK {
		t.Fatalf("analyze escapeprune=off: status %d", status)
	}
	if off.Cached {
		t.Errorf("escapeprune=off served from the pruned entry's cache slot")
	}
	if off.ID == got.ID {
		t.Errorf("escapeprune=off got the same content address %s as the default", off.ID)
	}
	if off.Escape == nil {
		t.Fatalf("escapeprune=off with escape=1: no summary")
	}
	if off.Escape.PrunedEdges != 0 {
		t.Errorf("escapeprune=off pruned %d edges, want 0", off.Escape.PrunedEdges)
	}
	if off.Escape.Shared != got.Escape.Shared {
		t.Errorf("classification differs across prune modes: %d vs %d shared",
			off.Escape.Shared, got.Escape.Shared)
	}

	// Unknown modes are a 400 naming the known ones, via body and query.
	status, _, er := postAnalyze(t, ts.URL, AnalyzeRequest{Source: fig1aSrc,
		Config: ConfigRequest{EscapePrune: "sometimes"}}, "")
	if status != http.StatusBadRequest {
		t.Errorf("unknown escapeprune in body: status %d, want 400", status)
	}
	if !strings.Contains(er.Error, "escape-prune") || !strings.Contains(er.Error, "on") {
		t.Errorf("unknown escapeprune error %q does not name the known modes", er.Error)
	}
	status, _, er = postAnalyze(t, ts.URL, AnalyzeRequest{Source: fig1aSrc}, "escapeprune=bogus")
	if status != http.StatusBadRequest {
		t.Errorf("unknown escapeprune in query: status %d, want 400", status)
	}
	if !strings.Contains(er.Error, "bogus") {
		t.Errorf("query escapeprune error %q does not echo the bad mode", er.Error)
	}
}

package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

const chaosSrc = "int x; int *p; int main() { p = &x; return 0; }"

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("latency=50ms:0.3,error=0.1,drop=0.05,seed=7")
	if err != nil {
		t.Fatalf("ParseChaos: %v", err)
	}
	if c.Latency != 50*time.Millisecond || c.LatencyP != 0.3 || c.ErrorP != 0.1 || c.DropP != 0.05 || c.Seed != 7 {
		t.Fatalf("ParseChaos = %+v", c)
	}
	if !c.Enabled() {
		t.Fatal("Enabled() = false for a configured spec")
	}

	// Latency without an explicit probability defaults to 1.
	c, err = ParseChaos("latency=10ms")
	if err != nil || c.Latency != 10*time.Millisecond || c.LatencyP != 1 {
		t.Fatalf("ParseChaos(latency=10ms) = %+v, %v", c, err)
	}

	// Empty spec: chaos disabled.
	c, err = ParseChaos("")
	if err != nil || c.Enabled() {
		t.Fatalf("ParseChaos(\"\") = %+v, %v", c, err)
	}

	for _, bad := range []string{"latency", "latency=abc", "error=2", "drop=-1", "nope=1", "seed=x"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

// TestChaosErrorInjection: with error=1 every API request answers 503
// "chaos: injected error", the faults are counted in the metrics, and the
// observability endpoints stay exempt.
func TestChaosErrorInjection(t *testing.T) {
	_, ts := newTestServer(t, Options{Chaos: ChaosConfig{ErrorP: 1}})
	defer ts.Close()

	status, _, er := postAnalyze(t, ts.URL, AnalyzeRequest{Source: "int x;"}, "")
	if status != http.StatusServiceUnavailable || !strings.Contains(er.Error, "chaos") {
		t.Fatalf("chaos analyze: status %d, error %q", status, er.Error)
	}

	// Liveness, readiness and metrics are exempt from chaos.
	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &health)
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, `fsamd_chaos_injected_total{kind="error"}`); got < 1 {
		t.Fatalf("chaos error count = %g, want >= 1", got)
	}
}

// TestChaosLatencyInjection: latency=...:1 delays the request but still
// serves it correctly.
func TestChaosLatencyInjection(t *testing.T) {
	_, ts := newTestServer(t, Options{Chaos: ChaosConfig{Latency: 50 * time.Millisecond, LatencyP: 1}})
	defer ts.Close()

	t0 := time.Now()
	status, resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: chaosSrc}, "")
	if status != http.StatusOK || resp.ID == "" {
		t.Fatalf("latency-chaos analyze: status %d, resp %+v", status, resp)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("request completed in %s, want >= the injected 50ms", d)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, `fsamd_chaos_injected_total{kind="latency"}`); got < 1 {
		t.Fatalf("chaos latency count = %g, want >= 1", got)
	}
}

// TestChaosDropInjection: drop=1 severs the connection; the client sees a
// transport error, never an HTTP response.
func TestChaosDropInjection(t *testing.T) {
	_, ts := newTestServer(t, Options{Chaos: ChaosConfig{DropP: 1}})
	defer ts.Close()

	_, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"source":"int x;"}`))
	if err == nil {
		t.Fatal("drop-chaos request returned a response, want a transport error")
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, `fsamd_chaos_injected_total{kind="drop"}`); got < 1 {
		t.Fatalf("chaos drop count = %g, want >= 1", got)
	}
}

// TestRetryAfterOnDrain: the drain shed carries a Retry-After hint.
func TestRetryAfterOnDrain(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	defer ts.Close()
	svc.BeginDrain()

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"source":"int x;"}`))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without a Retry-After hint")
	}
}

// TestCachedOnlyPeek: ?cachedonly=1 answers cached entries without running
// the pipeline, 404s on a cold key, and keeps serving during drain.
func TestCachedOnlyPeek(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	defer ts.Close()

	// Cold peek: 404, no pipeline run.
	status, _, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: chaosSrc}, "cachedonly=1")
	if status != http.StatusNotFound {
		t.Fatalf("cold peek: status %d, want 404", status)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, m, "fsamd_analyses_total"); got != 0 {
		t.Fatalf("cold peek ran %g analyses, want 0", got)
	}

	// Warm the cache, then peek.
	status, warm, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: chaosSrc}, "")
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}
	status, peeked, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: chaosSrc}, "cachedonly=1")
	if status != http.StatusOK || !peeked.Cached || peeked.ID != warm.ID {
		t.Fatalf("warm peek: status %d, cached %v, id %q (want %q)", status, peeked.Cached, peeked.ID, warm.ID)
	}

	// Peeks keep answering during drain: the cache stays warm for siblings.
	svc.BeginDrain()
	status, peeked, _ = postAnalyze(t, ts.URL, AnalyzeRequest{Source: chaosSrc}, "cachedonly=1")
	if status != http.StatusOK || peeked.ID != warm.ID {
		t.Fatalf("draining peek: status %d, id %q", status, peeked.ID)
	}
}

// TestRoutingKeyMatchesServerKey: the gateway-side key computation must
// agree with the key the daemon caches under, for direct sources and for
// generated benchmarks alike; base+patch requests are not keyable.
func TestRoutingKeyMatchesServerKey(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	defer ts.Close()

	for _, req := range []AnalyzeRequest{
		{Source: "int x; int *p; int main() { p = &x; return 0; }", Name: "k.mc"},
		{Benchmark: "word_count", Scale: 1},
	} {
		key, ok, _, err := RoutingKey(req, 16)
		if err != nil || !ok {
			t.Fatalf("RoutingKey(%+v) = %q, %v, %v", req, key, ok, err)
		}
		status, resp, _ := postAnalyze(t, ts.URL, req, "")
		if status != http.StatusOK {
			t.Fatalf("analyze: status %d", status)
		}
		if resp.ID != key {
			t.Fatalf("RoutingKey %q != served id %q", key, resp.ID)
		}
	}

	if _, ok, _, err := RoutingKey(AnalyzeRequest{Base: "abc", Source: "int x;"}, 16); ok || err != nil {
		t.Fatalf("base+patch RoutingKey: ok=%v err=%v, want not keyable", ok, err)
	}
}

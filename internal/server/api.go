// Package server implements fsamd, the long-running analysis service: an
// HTTP/JSON front end over the staged FSAM pipeline with a
// content-addressed result cache, admission control mapped onto the
// engine's resource budgets and the precision-degradation ladder, request
// deduplication, and Prometheus-text observability.
//
// The service view of the pipeline: analyses are expensive, deterministic
// and repeatedly requested on near-identical inputs, so results are cached
// under a content address — the SHA-256 of the source plus the
// canonicalized Config (fsam.Config.Normalize / Canonical) — and every
// query endpoint (points-to, races, leaks) answers from the cached
// *fsam.Analysis, whose query methods are safe for concurrent readers.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"time"

	fsam "repro"
	"repro/internal/diag"
	"repro/internal/exitcode"
	"repro/internal/harness"
)

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one of Source or
// Benchmark must be set: Source carries MiniC text directly, Benchmark
// names a program of the internal/workload suite (generated server-side at
// Scale). The query parameters ?membudget=, ?steplimit= and ?deadline=
// override the corresponding fields, so budgets can be imposed without
// re-serializing the body.
type AnalyzeRequest struct {
	// Name labels the source in positions and reports (default "request.mc").
	Name string `json:"name,omitempty"`
	// Source is MiniC program text.
	Source string `json:"source,omitempty"`
	// Base, when set, is the program content address (AnalyzeResponse.ProgKey)
	// of a completed analysis still resident in the server cache; Source is
	// then treated as an edit of that program and re-analyzed incrementally,
	// adopting every per-function fact the edit did not invalidate. The
	// base's configuration governs the run — Config fields in a base+patch
	// request are ignored. An unknown or evicted base answers 404; re-POST
	// without base.
	Base string `json:"base,omitempty"`
	// Benchmark is an internal/workload suite name (e.g. "word_count").
	Benchmark string `json:"benchmark,omitempty"`
	// Scale is the workload scale factor (default 1, server-capped).
	Scale int `json:"scale,omitempty"`
	// Config selects analysis variants and resource budgets.
	Config ConfigRequest `json:"config"`
	// DeadlineMS bounds the analysis wall time in milliseconds (0 uses the
	// server default; server-capped). The deadline rides the request
	// context into every fixpoint loop; tripping it degrades the result
	// down the precision ladder rather than failing the request.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ConfigRequest is the wire form of fsam.Config. The service always runs
// with the degradation ladder enabled and parallel phase scheduling:
// NoDegrade and Sequential are deliberately not exposed, so every request
// lands on the best tier the budgets allow.
type ConfigRequest struct {
	// Engine selects the analysis backend (default "fsam"; see
	// fsam.Engines). The engine participates in the content address, so
	// the same source analyzed by two engines yields two cache entries.
	Engine string `json:"engine,omitempty"`
	// MemModel selects the memory consistency model (default "sc"; see
	// fsam.MemModels). Like the engine it participates in the content
	// address: the same source under sc and tso is two cache entries.
	MemModel       string `json:"memmodel,omitempty"`
	NoInterleaving bool   `json:"no_interleaving,omitempty"`
	NoValueFlow    bool   `json:"no_valueflow,omitempty"`
	NoLock         bool   `json:"no_lock,omitempty"`
	CtxDepth       int    `json:"ctx_depth,omitempty"`
	MemBudgetBytes uint64 `json:"membudget,omitempty"`
	StepLimit      int64  `json:"steplimit,omitempty"`
	// EscapePrune gates the thread-escape pruning oracle ("on", the
	// default, or "off"). It participates in the content address through
	// the canonical configuration even though results are identical either
	// way — the two runs do different work, and cache entries record what
	// ran.
	EscapePrune string `json:"escapeprune,omitempty"`
}

// Config maps the wire form onto a canonicalized fsam.Config.
func (c ConfigRequest) Config() fsam.Config {
	return fsam.Config{
		Engine:         c.Engine,
		MemModel:       c.MemModel,
		NoInterleaving: c.NoInterleaving,
		NoValueFlow:    c.NoValueFlow,
		NoLock:         c.NoLock,
		CtxDepth:       c.CtxDepth,
		MemBudgetBytes: c.MemBudgetBytes,
		StepLimit:      c.StepLimit,
		EscapePrune:    c.EscapePrune,
	}.Normalize()
}

// AnalyzeResponse answers POST /v1/analyze. A degraded run is a success
// (HTTP 200) whose ExitCode carries the tier under the repo's exit-code
// convention — the service never turns a budget trip into a 5xx.
type AnalyzeResponse struct {
	// ID is the content address of the result ("sha256:..."); subsequent
	// query requests pass it back.
	ID string `json:"id"`
	// Cached is true when the result was served from the cache without a
	// pipeline run.
	Cached bool `json:"cached"`
	// Shared is true when this request was deduplicated onto another
	// in-flight identical submission (one solve, many responses).
	Shared bool `json:"shared,omitempty"`
	// Engine is the backend that produced the result — after degradation,
	// the ladder rung that landed, not the one requested.
	Engine string `json:"engine"`
	// Precision is the tier the ladder landed on; Degraded carries the
	// reason when below the requested engine's tier.
	Precision string `json:"precision"`
	Degraded  string `json:"degraded,omitempty"`
	// ExitCode is the repo-wide exit-code convention value (0 at the
	// requested tier, 3 thread-oblivious, 4 Andersen-only, 5 CFG-free,
	// 6 thread-modular; later rungs are registry-assigned from 6 upward).
	ExitCode int `json:"exit_code"`
	// Stats is the shared harness statistics schema (fsam_ns is the
	// server-observed pipeline wall time for the run that produced the
	// entry, not this request's latency).
	Stats harness.FSAMStats `json:"stats"`
	// PhaseSeconds is per-phase wall time from the pipeline report.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// ProgKey is the program-level content address of the analyzed source —
	// the value a follow-up request passes as Base to re-analyze an edit
	// incrementally. Empty only when the analysis cannot be delta-keyed.
	ProgKey string `json:"prog_key,omitempty"`
	// Delta describes the incremental run that produced this entry (nil for
	// from-scratch runs). On a cached replay it still describes the original
	// producing run, not this request.
	Delta *DeltaResponse `json:"delta,omitempty"`
	// Escape is the thread-escape classification summary, present only when
	// the request asked for it with ?escape=1. Nil also when the result's
	// tier has no thread model (andersen/cfgfree) — absence, not zeros.
	Escape *EscapeSummary `json:"escape,omitempty"`
}

// EscapeSummary is the ?escape=1 view of the thread-escape classification
// of the analyzed program's abstract objects.
type EscapeSummary struct {
	Local       int `json:"local"`
	HandedOff   int `json:"handedoff"`
	Shared      int `json:"shared"`
	PrunedEdges int `json:"pruned_edges"`
}

// DeltaResponse is the wire form of fsam.DeltaReport: what an incremental
// (base+patch) analysis adopted, invalidated and recomputed.
type DeltaResponse struct {
	// Base is the program content address the patch was applied against.
	Base string `json:"base"`
	// Tier is "noop", "iso" or "semantic" (see fsam.AnalyzeDeltaCtx).
	Tier string `json:"tier"`
	// ChangedFuncs and RemovedFuncs name the functions whose content
	// address the edit changed; AdoptedFuncs counts those reused wholesale.
	ChangedFuncs []string `json:"changed_funcs,omitempty"`
	RemovedFuncs []string `json:"removed_funcs,omitempty"`
	AdoptedFuncs int      `json:"adopted_funcs"`
	// ImpactedFuncs counts the functions whose interference facts had to be
	// recomputed (mod/ref-widened transitive callers/callees).
	ImpactedFuncs int `json:"impacted_funcs"`
	// PhasesRun lists the pipeline phases that actually executed.
	PhasesRun []string `json:"phases_run,omitempty"`
	// Facts is the fact-store counter delta of this run (the X-Fsamd-Facts
	// header value); HitRatio is hits over lookups within it.
	Facts    string  `json:"facts"`
	HitRatio float64 `json:"hit_ratio"`
}

// PointsToResponse answers GET /v1/pointsto.
type PointsToResponse struct {
	ID        string   `json:"id"`
	Global    string   `json:"global"`
	PointsTo  []string `json:"points_to"`
	Precision string   `json:"precision"`
}

// RacesResponse answers GET /v1/races.
type RacesResponse struct {
	ID        string   `json:"id"`
	Count     int      `json:"count"`
	Reports   []string `json:"reports,omitempty"`
	Precision string   `json:"precision"`
}

// LeaksResponse answers GET /v1/leaks.
type LeaksResponse struct {
	ID        string   `json:"id"`
	Count     int      `json:"count"`
	Reports   []string `json:"reports,omitempty"`
	Precision string   `json:"precision"`
}

// DiagnosticsResponse answers GET /v1/diagnostics: the checker suite's
// finalized findings over a cached analysis. Checkers unavailable at the
// result's precision tier appear in Skipped rather than failing the
// request; Suppressed counts findings removed by inline fsam:ignore
// comments in the analyzed source.
type DiagnosticsResponse struct {
	ID          string            `json:"id"`
	Count       int               `json:"count"`
	Diagnostics []diag.Diagnostic `json:"diagnostics"`
	Skipped     map[string]string `json:"skipped,omitempty"`
	Suppressed  int               `json:"suppressed,omitempty"`
	Precision   string            `json:"precision"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"` // "ok" or "draining"
	Inflight      int64   `json:"inflight"`
	Queued        int64   `json:"queued"`
	CacheEntries  int     `json:"cache_entries"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// ExitCode carries the exit-code convention value when the error has
	// one (e.g. 1 for a compile failure, 2 for a malformed request).
	ExitCode int `json:"exit_code,omitempty"`
}

// HTTPStatus maps the repo's process exit-code convention onto HTTP
// statuses. Degraded tiers are successes: the request was served, the
// response labels the tier — the HTTP analogue of a nonzero-but-not-failure
// exit code.
func HTTPStatus(code int) int {
	if code == exitcode.OK || exitcode.IsDegraded(code) {
		return http.StatusOK
	}
	switch code {
	case exitcode.Usage:
		return http.StatusBadRequest
	case exitcode.Failure:
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// Key computes the content address of an analysis result: the SHA-256 of
// the canonicalized configuration and the exact source text (the name
// participates because it appears in positions, and therefore in race and
// leak reports). Two requests agree on Key iff the pipeline would compute
// identical results for them.
func Key(name, src string, cfg fsam.Config) string {
	h := sha256.New()
	h.Write([]byte(cfg.Canonical()))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// phaseSeconds renders the facade's per-phase times for responses and
// metrics.
func phaseSeconds(a *fsam.Analysis) map[string]float64 {
	out := map[string]float64{}
	a.Stats.Times.Each(func(phase string, d time.Duration) {
		if d > 0 {
			out[phase] = d.Seconds()
		}
	})
	return out
}

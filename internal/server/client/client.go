// Package client is the Go client for the fsamd analysis service. It
// shares the wire types with internal/server, so the CLIs (`fsam -server`,
// `fsambench -server`) and the end-to-end tests speak exactly the schema
// the daemon serves.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/server"
)

// APIError is a non-2xx response decoded into the service's error schema.
type APIError struct {
	Status   int
	Message  string
	ExitCode int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fsamd: HTTP %d: %s", e.Status, e.Message)
}

// Client talks to one fsamd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
}

// New returns a Client for the given base URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues the request and decodes the response into out (unless out is
// nil). Non-2xx responses become *APIError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr server.ErrorResponse
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(body, &apiErr) != nil || apiErr.Error == "" {
			apiErr.Error = strings.TrimSpace(string(body))
		}
		return &APIError{Status: resp.StatusCode, Message: apiErr.Error, ExitCode: apiErr.ExitCode}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// Analyze submits a source or benchmark for analysis. A degraded result is
// a success: check resp.ExitCode / resp.Precision for the tier.
func (c *Client) Analyze(ctx context.Context, areq server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	body, err := json.Marshal(areq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp server.AnalyzeResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// AnalyzeDelta submits an edited source as a patch against a completed
// analysis named by its program content address (AnalyzeResponse.ProgKey).
// The server adopts every per-function fact the edit did not invalidate;
// resp.Delta describes what was reused. An unknown or evicted base answers
// *APIError with Status 404 — re-submit via Analyze.
func (c *Client) AnalyzeDelta(ctx context.Context, base string, areq server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	areq.Base = base
	return c.Analyze(ctx, areq)
}

// PointsTo queries the points-to set of a global on a cached analysis.
func (c *Client) PointsTo(ctx context.Context, id, global string) (*server.PointsToResponse, error) {
	var resp server.PointsToResponse
	q := url.Values{"id": {id}, "global": {global}}
	if err := c.get(ctx, "/v1/pointsto", q, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Races queries the race reports of a cached analysis.
func (c *Client) Races(ctx context.Context, id string) (*server.RacesResponse, error) {
	var resp server.RacesResponse
	if err := c.get(ctx, "/v1/races", url.Values{"id": {id}}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Diagnostics runs the checker suite over a cached analysis. An empty
// checkers list runs every registered checker; naming a subset filters the
// (server-memoized) full run, so fingerprints match across selections.
func (c *Client) Diagnostics(ctx context.Context, id string, checkers []string) (*server.DiagnosticsResponse, error) {
	q := url.Values{"id": {id}}
	if len(checkers) > 0 {
		q.Set("checkers", strings.Join(checkers, ","))
	}
	var resp server.DiagnosticsResponse
	if err := c.get(ctx, "/v1/diagnostics", q, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Leaks queries the leak reports of a cached analysis.
func (c *Client) Leaks(ctx context.Context, id string) (*server.LeaksResponse, error) {
	var resp server.LeaksResponse
	if err := c.get(ctx, "/v1/leaks", url.Values{"id": {id}}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches /healthz. A draining server answers 503; that still
// decodes, so the status field is returned rather than an error.
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	var resp server.HealthResponse
	err := c.get(ctx, "/healthz", nil, &resp)
	var apiErr *APIError
	if err != nil {
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
			return &server.HealthResponse{Status: "draining"}, nil
		}
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// Package client is the Go client for the fsamd analysis service. It
// shares the wire types with internal/server, so the CLIs (`fsam -server`,
// `fsambench -server`) and the end-to-end tests speak exactly the schema
// the daemon serves.
//
// The client is resilient by default: requests carry a transport timeout
// (DefaultTimeout) so a hung daemon can never wedge a caller, and the
// analysis/query paths retry transient failures — transport errors, 429
// queue-full, 503 draining/saturated — with exponential backoff, honoring
// the daemon's Retry-After hints. Analyses are content-addressed and
// deterministic, so replaying a request is always safe. Health and Ready
// never retry: for a probe, the 503 is the answer.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
)

// DefaultTimeout bounds one HTTP exchange end to end. It sits above the
// daemon's default -maxdeadline (5m) so a legitimately long analysis is
// never cut off client-side, while a dead or wedged connection still
// surfaces as an error instead of hanging forever.
const DefaultTimeout = 6 * time.Minute

// defaultHTTPClient is shared by every Client that does not bring its own
// transport, so connection pools are reused across Client values.
var defaultHTTPClient = &http.Client{Timeout: DefaultTimeout}

// APIError is a non-2xx response decoded into the service's error schema.
type APIError struct {
	Status   int
	Message  string
	ExitCode int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fsamd: HTTP %d: %s", e.Status, e.Message)
}

// Client talks to one fsamd instance (or to a fleet through fsamgw —
// the gateway serves the same wire schema).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTP is the transport. nil selects a shared client with
	// DefaultTimeout; note that http.DefaultClient has NO timeout.
	HTTP *http.Client
	// Retry governs transient-failure handling on the analysis and query
	// paths. nil selects the resilience defaults (3 attempts, exponential
	// backoff from 50ms). Set &resilience.Policy{MaxAttempts: 1} to
	// disable retries entirely.
	Retry *resilience.Policy
}

// New returns a Client for the given base URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

func (c *Client) policy() resilience.Policy {
	if c.Retry != nil {
		return *c.Retry
	}
	return resilience.Policy{}
}

// readAPIError drains a non-2xx body into the error schema, falling back
// to the raw text for proxies that answer plain strings.
func readAPIError(resp *http.Response) *APIError {
	var apiErr server.ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(body, &apiErr) != nil || apiErr.Error == "" {
		apiErr.Error = strings.TrimSpace(string(body))
	}
	return &APIError{Status: resp.StatusCode, Message: apiErr.Error, ExitCode: apiErr.ExitCode}
}

// attempt runs one HTTP exchange and classifies the outcome for the retry
// policy: transport errors and 429/503 invite a retry (with any Retry-After
// hint), everything else is final.
func (c *Client) attempt(req *http.Request, out any) (hint time.Duration, retryable bool, err error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		hint, _ := resilience.RetryAfter(resp.Header)
		return hint, resilience.RetryableStatus(resp.StatusCode), readAPIError(resp)
	}
	if out == nil {
		return 0, false, nil
	}
	return 0, false, json.NewDecoder(resp.Body).Decode(out)
}

// doRetry drives build/attempt under the retry policy. build constructs a
// fresh request per attempt (a consumed body cannot be replayed).
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error), out any) error {
	return c.policy().Do(ctx, func(int) (time.Duration, bool, error) {
		req, err := build()
		if err != nil {
			return 0, false, err
		}
		return c.attempt(req, out)
	})
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.BaseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, out)
}

// Analyze submits a source or benchmark for analysis. A degraded result is
// a success: check resp.ExitCode / resp.Precision for the tier. Transient
// failures (transport errors, 429, 503) are retried per c.Retry.
func (c *Client) Analyze(ctx context.Context, areq server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	body, err := json.Marshal(areq)
	if err != nil {
		return nil, err
	}
	var resp server.AnalyzeResponse
	err = c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/analyze", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// AnalyzeDelta submits an edited source as a patch against a completed
// analysis named by its program content address (AnalyzeResponse.ProgKey).
// The server adopts every per-function fact the edit did not invalidate;
// resp.Delta describes what was reused. An unknown or evicted base answers
// *APIError with Status 404 — re-submit via Analyze.
func (c *Client) AnalyzeDelta(ctx context.Context, base string, areq server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	areq.Base = base
	return c.Analyze(ctx, areq)
}

// PointsTo queries the points-to set of a global on a cached analysis.
func (c *Client) PointsTo(ctx context.Context, id, global string) (*server.PointsToResponse, error) {
	var resp server.PointsToResponse
	q := url.Values{"id": {id}, "global": {global}}
	if err := c.get(ctx, "/v1/pointsto", q, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Races queries the race reports of a cached analysis.
func (c *Client) Races(ctx context.Context, id string) (*server.RacesResponse, error) {
	var resp server.RacesResponse
	if err := c.get(ctx, "/v1/races", url.Values{"id": {id}}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Diagnostics runs the checker suite over a cached analysis. An empty
// checkers list runs every registered checker; naming a subset filters the
// (server-memoized) full run, so fingerprints match across selections.
func (c *Client) Diagnostics(ctx context.Context, id string, checkers []string) (*server.DiagnosticsResponse, error) {
	q := url.Values{"id": {id}}
	if len(checkers) > 0 {
		q.Set("checkers", strings.Join(checkers, ","))
	}
	var resp server.DiagnosticsResponse
	if err := c.get(ctx, "/v1/diagnostics", q, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Leaks queries the leak reports of a cached analysis.
func (c *Client) Leaks(ctx context.Context, id string) (*server.LeaksResponse, error) {
	var resp server.LeaksResponse
	if err := c.get(ctx, "/v1/leaks", url.Values{"id": {id}}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// getHealth fetches a health-shaped endpoint exactly once (probes never
// retry: the 503 is the answer) and decodes the HealthResponse the daemon
// writes on every status.
func (c *Client) getHealth(ctx context.Context, path string) (*server.HealthResponse, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	var hr server.HealthResponse
	if json.Unmarshal(body, &hr) != nil || hr.Status == "" {
		return nil, resp.StatusCode, &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return &hr, resp.StatusCode, nil
}

// Health fetches /healthz — liveness. The daemon answers 200 whenever the
// process serves, including during a drain (Status "draining").
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	resp, _, err := c.getHealth(ctx, "/healthz")
	return resp, err
}

// Ready fetches /readyz — readiness. ready reports whether the daemon
// accepts new analysis work; when it does not, resp.Status says why
// ("draining", "saturated"). err is reserved for transport and protocol
// failures — a 503 with a well-formed body is not an error.
func (c *Client) Ready(ctx context.Context) (resp *server.HealthResponse, ready bool, err error) {
	resp, status, err := c.getHealth(ctx, "/readyz")
	if err != nil {
		return nil, false, err
	}
	return resp, status == http.StatusOK, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/exitcode"
	"repro/internal/server"
	"repro/internal/server/client"
)

const smokeSrc = `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) {
	*p = q;
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	return 0;
}
`

// TestClientSmoke drives the full client surface against an in-process
// fsamd: analyze → pointsto → races → leaks → health → metrics.
func TestClientSmoke(t *testing.T) {
	svc := server.New(server.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL + "/") // trailing slash is trimmed

	ar, err := c.Analyze(ctx, server.AnalyzeRequest{Name: "smoke.mc", Source: smokeSrc})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if ar.Cached || ar.ExitCode != exitcode.OK {
		t.Fatalf("Analyze: cached=%v exit=%d", ar.Cached, ar.ExitCode)
	}

	again, err := c.Analyze(ctx, server.AnalyzeRequest{Name: "smoke.mc", Source: smokeSrc})
	if err != nil {
		t.Fatalf("Analyze (second): %v", err)
	}
	if !again.Cached || again.ID != ar.ID {
		t.Fatalf("second Analyze not a cache hit: cached=%v id=%q want %q", again.Cached, again.ID, ar.ID)
	}

	pt, err := c.PointsTo(ctx, ar.ID, "c")
	if err != nil {
		t.Fatalf("PointsTo: %v", err)
	}
	if len(pt.PointsTo) != 2 {
		t.Fatalf("pt(c) = %v, want 2 targets", pt.PointsTo)
	}

	if _, err := c.Races(ctx, ar.ID); err != nil {
		t.Fatalf("Races: %v", err)
	}
	if _, err := c.Leaks(ctx, ar.ID); err != nil {
		t.Fatalf("Leaks: %v", err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("Health: status %q", h.Status)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if !strings.Contains(m, "fsamd_cache_hits_total 1") {
		t.Fatalf("metrics missing the cache hit:\n%s", m)
	}

	// Errors decode into *APIError with the service's exit code.
	_, err = c.Analyze(ctx, server.AnalyzeRequest{Source: "int x = ;"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("compile error: got %v, want *APIError", err)
	}
	if apiErr.Status != 422 || apiErr.ExitCode != exitcode.Failure {
		t.Fatalf("compile error: %+v", apiErr)
	}
	if _, err := c.PointsTo(ctx, "sha256:beef", "c"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown id: %v", err)
	}

	// A draining server still reports health, as "draining".
	svc.BeginDrain()
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatalf("Health while draining: %v", err)
	}
	if h.Status != "draining" {
		t.Fatalf("Health while draining: status %q", h.Status)
	}
}

package client_test

// End-to-end tests for GET /v1/diagnostics: the checker suite served off
// the content-addressed cache, subset filtering with stable fingerprints,
// and the per-checker metrics. They live in the client's test package so
// they can drive both the server and the typed client without a test-only
// import cycle.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/exitcode"
	"repro/internal/server"
	"repro/internal/server/client"
)

// uafSrc frees a shared buffer without joining the reader first: one
// cross-thread use-after-free plus the race the same overlap implies.
const uafSrc = `
int *buf;
int sink;
void worker(void *arg) {
	sink = *buf;
}
int main() {
	thread_t t;
	buf = malloc(4);
	t = spawn(worker, NULL);
	free(buf);
	join(t);
	return 0;
}
`

// getRaw issues a GET and returns status, headers and body.
func getRaw(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

func TestDiagnosticsEndpoint(t *testing.T) {
	svc := server.New(server.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ctx := context.Background()
	c := client.New(ts.URL)

	resp, err := c.Analyze(ctx, server.AnalyzeRequest{Name: "uaf.mc", Source: uafSrc})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if resp.ExitCode != exitcode.OK {
		t.Fatalf("analyze exit code %d, want full precision", resp.ExitCode)
	}

	dr, err := c.Diagnostics(ctx, resp.ID, nil)
	if err != nil {
		t.Fatalf("diagnostics: %v", err)
	}
	if dr.Count == 0 || len(dr.Diagnostics) != dr.Count {
		t.Fatalf("count = %d with %d diagnostics", dr.Count, len(dr.Diagnostics))
	}
	var sawUAF bool
	for _, d := range dr.Diagnostics {
		if d.Checker == "uaf" {
			sawUAF = true
		}
		if d.Fingerprint == "" {
			t.Fatalf("diagnostic without fingerprint: %+v", d)
		}
	}
	if !sawUAF {
		t.Fatalf("no uaf finding in %+v", dr.Diagnostics)
	}

	// The query endpoint answers from the cached analysis: the cache-hit
	// header is set, and a repeated GET is byte-identical (the suite runs
	// once per entry; rendering is deterministic).
	st1, hdr, body1 := getRaw(t, ts.URL+"/v1/diagnostics?id="+resp.ID)
	if st1 != http.StatusOK {
		t.Fatalf("GET status %d: %s", st1, body1)
	}
	if hdr.Get("X-Fsamd-Cache") != "hit" {
		t.Fatalf("X-Fsamd-Cache = %q, want hit", hdr.Get("X-Fsamd-Cache"))
	}
	st2, _, body2 := getRaw(t, ts.URL+"/v1/diagnostics?id="+resp.ID)
	if st2 != http.StatusOK || string(body1) != string(body2) {
		t.Fatalf("repeated GET diverged:\n%s\nvs\n%s", body1, body2)
	}

	// Subset selection filters the memoized run, so fingerprints match the
	// full suite's.
	sub, err := c.Diagnostics(ctx, resp.ID, []string{"uaf"})
	if err != nil {
		t.Fatalf("subset diagnostics: %v", err)
	}
	fullFPs := map[string]bool{}
	for _, d := range dr.Diagnostics {
		if d.Checker == "uaf" {
			fullFPs[d.Fingerprint] = true
		}
	}
	if len(sub.Diagnostics) != len(fullFPs) {
		t.Fatalf("subset returned %d uaf diags, full run had %d", len(sub.Diagnostics), len(fullFPs))
	}
	for _, d := range sub.Diagnostics {
		if !fullFPs[d.Fingerprint] {
			t.Fatalf("subset fingerprint %q not in full run", d.Fingerprint)
		}
	}

	// Unknown checker IDs are usage errors, not conflicts.
	var apiErr *client.APIError
	if _, err := c.Diagnostics(ctx, resp.ID, []string{"bogus"}); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusBadRequest || apiErr.ExitCode != exitcode.Usage {
		t.Fatalf("unknown checker: %v", err)
	}

	// Missing and unknown ids follow the query-endpoint convention.
	if st, _, _ := getRaw(t, ts.URL+"/v1/diagnostics"); st != http.StatusBadRequest {
		t.Fatalf("missing id: status %d, want 400", st)
	}
	if st, _, _ := getRaw(t, ts.URL+"/v1/diagnostics?id=sha256:unknown"); st != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", st)
	}

	// Metrics: requests counted, findings labeled by checker.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(text, "fsamd_diagnostics_requests_total") {
		t.Fatalf("metrics missing diagnostics request counter:\n%s", text)
	}
	var sawFindings bool
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `fsamd_diagnostics_findings_total{checker="uaf"}`) {
			sawFindings = true
		}
	}
	if !sawFindings {
		t.Fatalf("metrics missing per-checker findings counter:\n%s", text)
	}
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
)

// fastRetry is a policy with near-instant backoff so retry tests don't
// sleep for real.
func fastRetry(attempts int) *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts: attempts,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: 0.01},
	}
}

// TestDefaultTimeout: a Client without an explicit transport gets one with
// a finite timeout — http.DefaultClient (no timeout) would let a wedged
// daemon hang callers forever.
func TestDefaultTimeout(t *testing.T) {
	c := New("http://127.0.0.1:1")
	hc := c.httpClient()
	if hc.Timeout != DefaultTimeout {
		t.Fatalf("default transport timeout = %s, want %s", hc.Timeout, DefaultTimeout)
	}
	if DefaultTimeout <= 5*time.Minute {
		t.Fatalf("DefaultTimeout %s must exceed the daemon's 5m max deadline", DefaultTimeout)
	}
	own := &http.Client{Timeout: time.Second}
	c.HTTP = own
	if c.httpClient() != own {
		t.Fatal("explicit transport not honored")
	}
}

// TestAnalyzeRetries503: 503s with a Retry-After hint are replayed until
// the server recovers; the eventual success is returned as if nothing
// happened.
func TestAnalyzeRetries503(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "draining"})
			return
		}
		json.NewEncoder(w).Encode(server.AnalyzeResponse{ID: "sha256:ok"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	resp, err := c.Analyze(context.Background(), server.AnalyzeRequest{Source: "int x;"})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if resp.ID != "sha256:ok" || calls.Load() != 3 {
		t.Fatalf("resp.ID=%q after %d calls, want sha256:ok after 3", resp.ID, calls.Load())
	}
}

// TestAnalyzeRetriesTransportError: a severed connection (the chaos drop
// fault) is retried like any transient failure.
func TestAnalyzeRetriesTransportError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		json.NewEncoder(w).Encode(server.AnalyzeResponse{ID: "sha256:ok"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	if _, err := c.Analyze(context.Background(), server.AnalyzeRequest{Source: "int x;"}); err != nil {
		t.Fatalf("Analyze after drop: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestAnalyzeNoRetryOnClientError: a 422 is the client's fault; replaying
// the identical request cannot help.
func TestAnalyzeNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "parse error"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	_, err := c.Analyze(context.Background(), server.AnalyzeRequest{Source: "int x = ;"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on 4xx)", calls.Load())
	}
}

// TestRetryDisabled: MaxAttempts 1 turns retries off — the gateway and the
// cluster bench need the raw failure.
func TestRetryDisabled(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "draining"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &resilience.Policy{MaxAttempts: 1}
	_, err := c.Analyze(context.Background(), server.AnalyzeRequest{Source: "int x;"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

// TestReady: readiness against a real daemon — ready while serving, not
// ready (with the reason) once draining, and never an error for the 503.
func TestReady(t *testing.T) {
	svc := server.New(server.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	c := New(ts.URL)
	resp, ready, err := c.Ready(context.Background())
	if err != nil || !ready || resp.Status != "ready" {
		t.Fatalf("Ready = %+v, %v, %v; want ready", resp, ready, err)
	}

	svc.BeginDrain()
	resp, ready, err = c.Ready(context.Background())
	if err != nil || ready || resp.Status != "draining" {
		t.Fatalf("Ready while draining = %+v, %v, %v; want not ready, draining", resp, ready, err)
	}

	// Probes never retry: exactly one exchange per call.
	var calls atomic.Int32
	probe := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.HealthResponse{Status: "draining"})
	}))
	defer probe.Close()
	pc := New(probe.URL)
	pc.Retry = fastRetry(3)
	if _, ready, err := pc.Ready(context.Background()); err != nil || ready {
		t.Fatalf("probe Ready = %v, %v", ready, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("probe calls = %d, want 1 (probes must not retry)", calls.Load())
	}
}

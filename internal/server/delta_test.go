package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// deltaBaseSrc is the base program of the incremental-endpoint tests: two
// threads, a lock, and a branch whose constant can be tweaked without
// changing any pointer structure (the iso tier's home turf).
const deltaBaseSrc = `int g; int h;
int *p; int *q;
lock_t m;
void worker(void *arg) {
	lock(&m);
	if (g > 3) {
		p = &g;
	}
	unlock(&m);
}
int main() {
	thread_t t;
	q = &h;
	t = spawn(worker, NULL);
	lock(&m);
	g = 1;
	unlock(&m);
	join(t);
	return 0;
}
`

// postAnalyzeHdr is postAnalyze plus the response headers, which carry the
// delta tier and fact-store counters.
func postAnalyzeHdr(t *testing.T, base string, req AnalyzeRequest) (int, AnalyzeResponse, ErrorResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/analyze: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var ok AnalyzeResponse
	var bad ErrorResponse
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("decode AnalyzeResponse (%d): %v\n%s", resp.StatusCode, err, raw)
		}
	} else {
		if err := json.Unmarshal(raw, &bad); err != nil {
			t.Fatalf("decode ErrorResponse (%d): %v\n%s", resp.StatusCode, err, raw)
		}
	}
	return resp.StatusCode, ok, bad, resp.Header
}

func TestAnalyzeDeltaTiers(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	status, baseResp, _, _ := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: deltaBaseSrc,
	})
	if status != http.StatusOK {
		t.Fatalf("base analyze: status %d", status)
	}
	if baseResp.ProgKey == "" {
		t.Fatalf("base response carries no prog_key")
	}
	if baseResp.Delta != nil {
		t.Fatalf("from-scratch run reported a delta: %+v", baseResp.Delta)
	}

	// Comment/whitespace edit: noop tier, zero phases, same program key.
	noopSrc := strings.Replace(deltaBaseSrc, "\tlock(&m);\n\tif",
		"\t/* tuned threshold */\n\tlock(&m);\n\tif", 1)
	if noopSrc == deltaBaseSrc {
		t.Fatal("noop patch did not apply")
	}
	status, noopResp, _, hdr := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: noopSrc, Base: baseResp.ProgKey,
	})
	if status != http.StatusOK {
		t.Fatalf("noop delta: status %d", status)
	}
	if noopResp.Delta == nil || noopResp.Delta.Tier != "noop" {
		t.Fatalf("noop edit landed on %+v, want tier noop", noopResp.Delta)
	}
	if len(noopResp.Delta.PhasesRun) != 0 {
		t.Fatalf("noop tier ran phases: %v", noopResp.Delta.PhasesRun)
	}
	if noopResp.ProgKey != baseResp.ProgKey {
		t.Fatalf("noop tier changed the prog_key: %s vs %s", noopResp.ProgKey, baseResp.ProgKey)
	}
	if hdr.Get("X-Fsamd-Delta") != "noop" {
		t.Fatalf("X-Fsamd-Delta = %q, want noop", hdr.Get("X-Fsamd-Delta"))
	}
	if f := hdr.Get("X-Fsamd-Facts"); !strings.Contains(f, "hits=") {
		t.Fatalf("X-Fsamd-Facts = %q, want counter string", f)
	}

	// Constant edit: iso tier, worker changed, glue phases only.
	isoSrc := strings.Replace(deltaBaseSrc, "g > 3", "g > 9", 1)
	status, isoResp, _, hdr := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: isoSrc, Base: baseResp.ProgKey,
	})
	if status != http.StatusOK {
		t.Fatalf("iso delta: status %d", status)
	}
	if isoResp.Delta == nil || isoResp.Delta.Tier != "iso" {
		t.Fatalf("constant edit landed on %+v, want tier iso", isoResp.Delta)
	}
	if got := isoResp.Delta.ChangedFuncs; len(got) != 1 || got[0] != "worker" {
		t.Fatalf("changed funcs = %v, want [worker]", got)
	}
	if isoResp.Delta.AdoptedFuncs == 0 {
		t.Fatalf("iso tier adopted no functions")
	}
	if isoResp.ProgKey == baseResp.ProgKey {
		t.Fatalf("iso tier kept the base prog_key")
	}
	for _, p := range isoResp.Delta.PhasesRun {
		if p == "defuse" || p == "sparse" {
			t.Fatalf("iso tier re-ran %s (phases %v)", p, isoResp.Delta.PhasesRun)
		}
	}
	if hdr.Get("X-Fsamd-Delta") != "iso" {
		t.Fatalf("X-Fsamd-Delta = %q, want iso", hdr.Get("X-Fsamd-Delta"))
	}

	// The delta result is cached under the content address a from-scratch
	// request of the patched source would use — the keying contract that
	// makes the two interchangeable.
	status, again, _, _ := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: isoSrc,
	})
	if status != http.StatusOK {
		t.Fatalf("re-analyze patched source: status %d", status)
	}
	if !again.Cached || again.ID != isoResp.ID {
		t.Fatalf("from-scratch request of patched source missed the delta entry: cached=%v id=%s want %s",
			again.Cached, again.ID, isoResp.ID)
	}
	if again.Delta == nil || again.Delta.Tier != "iso" {
		t.Fatalf("cached replay lost the producing run's delta: %+v", again.Delta)
	}

	// Delta results answer queries exactly like from-scratch ones.
	resp, err := http.Get(ts.URL + "/v1/races?id=" + isoResp.ID)
	if err != nil {
		t.Fatalf("GET /v1/races: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("races on delta entry: status %d", resp.StatusCode)
	}

	// Metrics expose the delta tiers and the fact-store counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	metricsText := string(mb)
	for _, want := range []string{
		`fsamd_delta_total{tier="noop"} 1`,
		`fsamd_delta_total{tier="iso"} 1`,
		"fsamd_facts_hits_total",
		"fsamd_facts_entries",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if strings.Contains(metricsText, "fsamd_facts_hits_total 0\n") {
		t.Errorf("fact store recorded no hits after a noop and an iso delta")
	}
}

func TestAnalyzeDeltaUnknownBase(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, _, bad, _ := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: deltaBaseSrc, Base: "deadbeefdeadbeef",
	})
	if status != http.StatusNotFound {
		t.Fatalf("unknown base: status %d, want 404", status)
	}
	if !strings.Contains(bad.Error, "deadbeefdeadbeef") {
		t.Fatalf("error does not name the base: %q", bad.Error)
	}
}

func TestAnalyzeDeltaBaseConfigGoverns(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, baseResp, _, _ := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: deltaBaseSrc,
		Config: ConfigRequest{Engine: "oblivious"},
	})
	if status != http.StatusOK {
		t.Fatalf("base analyze: status %d", status)
	}
	// The patch request asks for a different engine; the base's config wins.
	isoSrc := strings.Replace(deltaBaseSrc, "g > 3", "g > 9", 1)
	status, dResp, _, _ := postAnalyzeHdr(t, ts.URL, AnalyzeRequest{
		Name: "prog.mc", Source: isoSrc, Base: baseResp.ProgKey,
		Config: ConfigRequest{Engine: "andersen"},
	})
	if status != http.StatusOK {
		t.Fatalf("delta analyze: status %d", status)
	}
	if dResp.Engine != "oblivious" {
		t.Fatalf("delta ran engine %q, want the base's oblivious", dResp.Engine)
	}
}

package server

import "sync"

// flightCall is one in-flight analysis computation.
type flightCall struct {
	wg     sync.WaitGroup
	ent    *entry
	status int
	err    error
}

// flightGroup deduplicates concurrent identical submissions: the first
// request for a key becomes the leader and runs fn; every request that
// arrives for the same key while the leader is running waits and shares
// the leader's outcome (including its error and HTTP status). One solve,
// many responses — the admission pool is only charged once.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for and shares that call's result. shared reports
// whether this caller piggybacked on another's computation.
func (g *flightGroup) do(key string, fn func() (*entry, int, error)) (ent *entry, status int, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.ent, c.status, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.ent, c.status, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.ent, c.status, c.err, false
}

package server

import (
	"container/list"
	"sync"

	fsam "repro"
)

// entry is one cached analysis: the live *fsam.Analysis handle (whose
// query methods are concurrent-reader-safe) plus the response skeleton the
// analyze endpoint replays on a hit.
type entry struct {
	id    string
	a     *fsam.Analysis
	resp  AnalyzeResponse
	bytes uint64
	// progKey is the program-level content address (fsam.Analysis.ProgKey),
	// indexed so base+patch requests can name this entry as their base;
	// empty when the analysis cannot be delta-keyed.
	progKey string
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	Hits, Misses, Evictions uint64
	Bytes                   uint64
	Entries                 int
}

// HitRatio is hits over lookups (0 when the cache has never been asked).
func (s cacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cache is a content-addressed LRU over completed analyses, bounded both
// by accounted bytes (the analyses' own Stats.Bytes plus the retained
// source) and by entry count. Eviction is strictly LRU from the cold end;
// a single entry larger than the byte budget is still admitted, because
// it is the only handle the query endpoints can answer from.
type cache struct {
	mu         sync.Mutex
	maxBytes   uint64
	maxEntries int

	ll   *list.List // front = most recently used; values are *entry
	byID map[string]*list.Element
	// byProgKey indexes entries by program content address for base+patch
	// requests. Distinct entries (different name or config) may share a
	// ProgKey; latest-put wins, which is the entry an editor loop wants.
	byProgKey map[string]*list.Element

	bytes                   uint64
	hits, misses, evictions uint64
}

func newCache(maxBytes uint64, maxEntries int) *cache {
	return &cache{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		ll:         list.New(),
		byID:       map[string]*list.Element{},
		byProgKey:  map[string]*list.Element{},
	}
}

// get looks up id for the analyze path, counting a hit or a miss and
// refreshing recency on a hit.
func (c *cache) get(id string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

// peek looks up id for the query endpoints: recency is refreshed (a
// queried analysis is a live one) but the hit/miss counters — which track
// the analyze endpoint's amortization — are untouched.
func (c *cache) peek(id string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

// put inserts e (replacing any same-id entry) and evicts from the cold end
// until the byte and entry budgets hold. The newly inserted entry itself
// is never evicted.
func (c *cache) put(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[e.id]; ok {
		// A singleflight follower can re-put what the leader already
		// published; keep the existing entry and its recency.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(e)
	c.byID[e.id] = el
	if e.progKey != "" {
		c.byProgKey[e.progKey] = el
	}
	c.bytes += e.bytes
	for (c.maxBytes > 0 && c.bytes > c.maxBytes) || (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) {
		el := c.ll.Back()
		if el == nil || el.Value.(*entry) == e {
			break
		}
		victim := c.ll.Remove(el).(*entry)
		delete(c.byID, victim.id)
		if victim.progKey != "" && c.byProgKey[victim.progKey] == el {
			delete(c.byProgKey, victim.progKey)
		}
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// peekProgKey resolves a program content address to its cache entry for
// the base+patch path, refreshing recency (a named base is a live one) but
// leaving the analyze-path hit/miss counters untouched.
func (c *cache) peekProgKey(progKey string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byProgKey[progKey]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

// stats snapshots the counters.
func (c *cache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.ll.Len(),
	}
}

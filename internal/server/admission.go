package server

import (
	"context"
	"errors"
)

// Shedding errors. queue-full is the client's fault (try later → 429);
// a deadline that expires while still queued means the server is saturated
// for this client's patience (→ 503).
var (
	errQueueFull = errors.New("admission queue full")
)

// admission is the bounded worker pool + bounded queue in front of the
// pipeline. A request first joins the queue (shedding immediately when the
// bound is hit), then waits for one of the worker slots; the analysis runs
// while the slot is held. Counters are channel/atomic-based so gauges can
// be read without a lock.
type admission struct {
	slots chan struct{} // capacity = worker count
	queue chan struct{} // capacity = workers + queue depth
}

func newAdmission(workers, queueDepth int) *admission {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, workers+queueDepth),
	}
}

// acquire admits one request: an immediate error when the queue bound is
// hit, then a wait for a worker slot bounded by ctx. On nil return the
// caller holds a slot and must release it.
func (ad *admission) acquire(ctx context.Context) error {
	select {
	case ad.queue <- struct{}{}:
	default:
		return errQueueFull
	}
	select {
	case ad.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-ad.queue
		return ctx.Err()
	}
}

// release returns the worker slot and the queue position.
func (ad *admission) release() {
	<-ad.slots
	<-ad.queue
}

// saturated reports whether the admission queue is at its bound — the
// readiness signal: a new arrival right now would be shed with 429.
func (ad *admission) saturated() bool { return len(ad.queue) >= cap(ad.queue) }

// inflight is the number of requests currently holding a worker slot.
func (ad *admission) inflight() int64 { return int64(len(ad.slots)) }

// queued is the number of admitted requests not yet holding a slot.
func (ad *admission) queued() int64 {
	n := int64(len(ad.queue)) - int64(len(ad.slots))
	if n < 0 {
		n = 0
	}
	return n
}

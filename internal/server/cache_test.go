package server

import (
	"fmt"
	"testing"
)

func mkEntry(id string, bytes uint64) *entry {
	return &entry{id: id, bytes: bytes, resp: AnalyzeResponse{ID: id}}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(100, 0) // byte bound only

	c.put(mkEntry("a", 40))
	c.put(mkEntry("b", 40))
	if _, ok := c.get("a"); !ok {
		t.Fatalf("a missing before eviction")
	}
	// a is now the most recently used; inserting c (40 bytes, total 120)
	// must evict b, the cold end.
	c.put(mkEntry("c", 40))
	if _, ok := c.peek("b"); ok {
		t.Fatalf("b survived eviction; LRU order not respected")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := c.peek(id); !ok {
			t.Fatalf("%s evicted; want b only", id)
		}
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestCacheEntryBound(t *testing.T) {
	c := newCache(0, 2) // entry bound only
	c.put(mkEntry("a", 1))
	c.put(mkEntry("b", 1))
	c.put(mkEntry("c", 1))
	if st := c.stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats: %+v, want 2 entries / 1 eviction", st)
	}
	if _, ok := c.peek("a"); ok {
		t.Fatalf("oldest entry a not evicted")
	}
}

func TestCacheOversizedEntryAdmitted(t *testing.T) {
	// An entry larger than the whole byte budget is still admitted — it is
	// the only handle the query endpoints can answer from — and evicts
	// everything else.
	c := newCache(100, 0)
	c.put(mkEntry("small", 10))
	c.put(mkEntry("huge", 500))
	if _, ok := c.peek("huge"); !ok {
		t.Fatalf("oversized entry was not admitted")
	}
	if _, ok := c.peek("small"); ok {
		t.Fatalf("small entry survived an over-budget cache")
	}
}

func TestCacheDuplicatePut(t *testing.T) {
	c := newCache(100, 0)
	c.put(mkEntry("a", 10))
	c.put(mkEntry("a", 10)) // singleflight follower re-publishing
	if st := c.stats(); st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("duplicate put double-counted: %+v", st)
	}
}

func TestCacheCounters(t *testing.T) {
	c := newCache(0, 0) // unbounded
	c.put(mkEntry("a", 1))
	if _, ok := c.get("a"); !ok {
		t.Fatalf("get(a) missed")
	}
	c.get("nope")
	c.peek("a") // query-path lookups do not move the hit/miss counters
	c.peek("nope")
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters: %+v, want 1 hit / 1 miss", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %g, want 0.5", got)
	}
	if (cacheStats{}).HitRatio() != 0 {
		t.Fatalf("hit ratio of an unasked cache is not 0")
	}
}

func TestCacheManyEntries(t *testing.T) {
	c := newCache(0, 8)
	for i := 0; i < 100; i++ {
		c.put(mkEntry(fmt.Sprintf("e%03d", i), 1))
	}
	st := c.stats()
	if st.Entries != 8 || st.Evictions != 92 || st.Bytes != 8 {
		t.Fatalf("stats: %+v", st)
	}
	// The survivors are exactly the 8 newest.
	for i := 92; i < 100; i++ {
		if _, ok := c.peek(fmt.Sprintf("e%03d", i)); !ok {
			t.Fatalf("entry e%03d missing", i)
		}
	}
}

package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	fsam "repro"
	"repro/internal/diag"
	"repro/internal/facts"
)

// latencyBuckets are the request-duration histogram bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// metrics is the hand-rolled Prometheus-text registry: the repo takes no
// dependencies, and the text exposition format is small enough to write
// directly. Everything is guarded by one mutex; scrapes are rare and
// observations cheap.
type metrics struct {
	mu      sync.Mutex
	started time.Time

	// requests[path][status] counts completed HTTP requests.
	requests map[string]map[int]uint64

	// Request-latency histogram (all endpoints).
	latCounts []uint64 // per-bucket (non-cumulative; cumulated at write)
	latOver   uint64   // > last bucket (+Inf - last)
	latSum    float64
	latCount  uint64

	// Pipeline-side counters: analyses actually run (cache hits and
	// deduplicated followers do not count), per-phase wall time, and the
	// precision tier distribution.
	analyses     uint64
	phaseSeconds map[string]float64
	tiers        map[string]uint64
	engines      map[string]uint64

	// Incremental (base+patch) runs by the delta tier they landed on.
	deltas map[string]uint64

	// Admission outcomes.
	shed  map[string]uint64 // reason -> count
	dedup uint64            // singleflight followers

	// Chaos faults injected, by kind (latency/error/drop).
	chaosInjected map[string]uint64

	// Diagnostics endpoint: requests served and findings returned per
	// checker (cached suite runs count every time they are served, so the
	// series tracks what clients saw, not pipeline work).
	diagRequests uint64
	diagFindings map[string]uint64
}

func newMetrics() *metrics {
	return &metrics{
		started:       time.Now(),
		requests:      map[string]map[int]uint64{},
		latCounts:     make([]uint64, len(latencyBuckets)),
		phaseSeconds:  map[string]float64{},
		tiers:         map[string]uint64{},
		engines:       map[string]uint64{},
		deltas:        map[string]uint64{},
		shed:          map[string]uint64{},
		chaosInjected: map[string]uint64{},
		diagFindings:  map[string]uint64{},
	}
}

func (m *metrics) observeRequest(path string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[path]
	if byStatus == nil {
		byStatus = map[int]uint64{}
		m.requests[path] = byStatus
	}
	byStatus[status]++
	s := d.Seconds()
	m.latSum += s
	m.latCount++
	placed := false
	for i, b := range latencyBuckets {
		if s <= b {
			m.latCounts[i]++
			placed = true
			break
		}
	}
	if !placed {
		m.latOver++
	}
}

// observeAnalysis records one pipeline run's tier and per-phase times.
func (m *metrics) observeAnalysis(a *fsam.Analysis) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.analyses++
	m.tiers[a.Precision.String()]++
	m.engines[a.Engine]++
	a.Stats.Times.Each(func(phase string, d time.Duration) {
		m.phaseSeconds[phase] += d.Seconds()
	})
}

// observeDelta records one base+patch run by its delta tier.
func (m *metrics) observeDelta(tier string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deltas[tier]++
}

func (m *metrics) observeShed(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed[reason]++
}

// observeChaos records one injected fault by kind.
func (m *metrics) observeChaos(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chaosInjected[kind]++
}

func (m *metrics) observeDedup() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dedup++
}

// observeDiagnostics records one served diagnostics request and its
// findings by checker.
func (m *metrics) observeDiagnostics(diags []diag.Diagnostic) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.diagRequests++
	for _, d := range diags {
		m.diagFindings[d.Checker]++
	}
}

// write emits the Prometheus text exposition. The gauges that live
// elsewhere (cache counters, admission occupancy, drain flag) are passed
// in as snapshots so the registry needs no back-references.
func (m *metrics) write(w io.Writer, cs cacheStats, fc facts.Counters, inflight, queued int64, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP fsamd_requests_total Completed HTTP requests by path and status.\n")
	fmt.Fprintf(w, "# TYPE fsamd_requests_total counter\n")
	for _, path := range sortedKeys(m.requests) {
		byStatus := m.requests[path]
		statuses := make([]int, 0, len(byStatus))
		for s := range byStatus {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(w, "fsamd_requests_total{path=%q,code=\"%d\"} %d\n", path, s, byStatus[s])
		}
	}

	fmt.Fprintf(w, "# HELP fsamd_request_duration_seconds Request latency, all endpoints.\n")
	fmt.Fprintf(w, "# TYPE fsamd_request_duration_seconds histogram\n")
	var cum uint64
	for i, b := range latencyBuckets {
		cum += m.latCounts[i]
		fmt.Fprintf(w, "fsamd_request_duration_seconds_bucket{le=\"%g\"} %d\n", b, cum)
	}
	fmt.Fprintf(w, "fsamd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum+m.latOver)
	fmt.Fprintf(w, "fsamd_request_duration_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "fsamd_request_duration_seconds_count %d\n", m.latCount)

	fmt.Fprintf(w, "# HELP fsamd_cache_hits_total Analyze requests served from the result cache.\n")
	fmt.Fprintf(w, "# TYPE fsamd_cache_hits_total counter\n")
	fmt.Fprintf(w, "fsamd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE fsamd_cache_misses_total counter\n")
	fmt.Fprintf(w, "fsamd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE fsamd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "fsamd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# TYPE fsamd_cache_bytes gauge\n")
	fmt.Fprintf(w, "fsamd_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "# TYPE fsamd_cache_entries gauge\n")
	fmt.Fprintf(w, "fsamd_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP fsamd_cache_hit_ratio Hits over analyze-path lookups.\n")
	fmt.Fprintf(w, "# TYPE fsamd_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "fsamd_cache_hit_ratio %g\n", cs.HitRatio())

	fmt.Fprintf(w, "# HELP fsamd_facts_hits_total Per-function fact-store lookups answered from the store.\n")
	fmt.Fprintf(w, "# TYPE fsamd_facts_hits_total counter\n")
	fmt.Fprintf(w, "fsamd_facts_hits_total %d\n", fc.Hits)
	fmt.Fprintf(w, "# TYPE fsamd_facts_misses_total counter\n")
	fmt.Fprintf(w, "fsamd_facts_misses_total %d\n", fc.Misses)
	fmt.Fprintf(w, "# TYPE fsamd_facts_invalidations_total counter\n")
	fmt.Fprintf(w, "fsamd_facts_invalidations_total %d\n", fc.Invalidations)
	fmt.Fprintf(w, "# TYPE fsamd_facts_evictions_total counter\n")
	fmt.Fprintf(w, "fsamd_facts_evictions_total %d\n", fc.Evictions)
	fmt.Fprintf(w, "# TYPE fsamd_facts_entries gauge\n")
	fmt.Fprintf(w, "fsamd_facts_entries %d\n", fc.Entries)
	fmt.Fprintf(w, "# HELP fsamd_facts_hit_ratio Fact-store hits over lookups since start.\n")
	fmt.Fprintf(w, "# TYPE fsamd_facts_hit_ratio gauge\n")
	fmt.Fprintf(w, "fsamd_facts_hit_ratio %g\n", fc.HitRatio())

	fmt.Fprintf(w, "# HELP fsamd_delta_total Incremental (base+patch) analyses by delta tier.\n")
	fmt.Fprintf(w, "# TYPE fsamd_delta_total counter\n")
	for _, tier := range sortedKeys(m.deltas) {
		fmt.Fprintf(w, "fsamd_delta_total{tier=%q} %d\n", tier, m.deltas[tier])
	}

	fmt.Fprintf(w, "# HELP fsamd_analyses_total Pipeline runs (cache hits and deduplicated requests excluded).\n")
	fmt.Fprintf(w, "# TYPE fsamd_analyses_total counter\n")
	fmt.Fprintf(w, "fsamd_analyses_total %d\n", m.analyses)

	fmt.Fprintf(w, "# HELP fsamd_phase_seconds_total Cumulative pipeline wall time by phase.\n")
	fmt.Fprintf(w, "# TYPE fsamd_phase_seconds_total counter\n")
	for _, phase := range sortedKeys(m.phaseSeconds) {
		fmt.Fprintf(w, "fsamd_phase_seconds_total{phase=%q} %g\n", phase, m.phaseSeconds[phase])
	}

	fmt.Fprintf(w, "# HELP fsamd_engine_total Analyses by the engine that produced the result.\n")
	fmt.Fprintf(w, "# TYPE fsamd_engine_total counter\n")
	for _, eng := range sortedKeys(m.engines) {
		fmt.Fprintf(w, "fsamd_engine_total{engine=%q} %d\n", eng, m.engines[eng])
	}
	fmt.Fprintf(w, "# HELP fsamd_precision_total Analyses by the tier the degradation ladder landed on.\n")
	fmt.Fprintf(w, "# TYPE fsamd_precision_total counter\n")
	for _, tier := range sortedKeys(m.tiers) {
		fmt.Fprintf(w, "fsamd_precision_total{tier=%q} %d\n", tier, m.tiers[tier])
	}

	fmt.Fprintf(w, "# HELP fsamd_shed_total Analyze requests shed by admission control.\n")
	fmt.Fprintf(w, "# TYPE fsamd_shed_total counter\n")
	for _, reason := range sortedKeys(m.shed) {
		fmt.Fprintf(w, "fsamd_shed_total{reason=%q} %d\n", reason, m.shed[reason])
	}

	fmt.Fprintf(w, "# HELP fsamd_chaos_injected_total Faults injected by the -chaos layer, by kind.\n")
	fmt.Fprintf(w, "# TYPE fsamd_chaos_injected_total counter\n")
	for _, kind := range sortedKeys(m.chaosInjected) {
		fmt.Fprintf(w, "fsamd_chaos_injected_total{kind=%q} %d\n", kind, m.chaosInjected[kind])
	}

	fmt.Fprintf(w, "# HELP fsamd_diagnostics_requests_total Diagnostics requests served.\n")
	fmt.Fprintf(w, "# TYPE fsamd_diagnostics_requests_total counter\n")
	fmt.Fprintf(w, "fsamd_diagnostics_requests_total %d\n", m.diagRequests)

	fmt.Fprintf(w, "# HELP fsamd_diagnostics_findings_total Findings returned by the diagnostics endpoint, by checker.\n")
	fmt.Fprintf(w, "# TYPE fsamd_diagnostics_findings_total counter\n")
	for _, checker := range sortedKeys(m.diagFindings) {
		fmt.Fprintf(w, "fsamd_diagnostics_findings_total{checker=%q} %d\n", checker, m.diagFindings[checker])
	}

	fmt.Fprintf(w, "# HELP fsamd_dedup_total Analyze requests deduplicated onto an in-flight identical solve.\n")
	fmt.Fprintf(w, "# TYPE fsamd_dedup_total counter\n")
	fmt.Fprintf(w, "fsamd_dedup_total %d\n", m.dedup)

	fmt.Fprintf(w, "# TYPE fsamd_inflight gauge\n")
	fmt.Fprintf(w, "fsamd_inflight %d\n", inflight)
	fmt.Fprintf(w, "# TYPE fsamd_queued gauge\n")
	fmt.Fprintf(w, "fsamd_queued %d\n", queued)
	fmt.Fprintf(w, "# TYPE fsamd_draining gauge\n")
	b := 0
	if draining {
		b = 1
	}
	fmt.Fprintf(w, "fsamd_draining %d\n", b)
	fmt.Fprintf(w, "# TYPE fsamd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "fsamd_uptime_seconds %g\n", time.Since(m.started).Seconds())
}

// sortedKeys returns the sorted keys of a string-keyed map, for
// deterministic exposition output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package irbuild lowers a MiniC AST into the partial-SSA IR.
//
// Lowering proceeds in two stages, mirroring clang + mem2reg (the paper's
// toolchain): first every variable — global, local and parameter — is
// treated as an abstract memory object and all accesses are lowered to
// AddrOf/Load/Store through fresh temporaries; then the mem2reg pass (in
// mem2reg.go) promotes non-address-taken scalar locals to top-level SSA
// variables with Phi statements, leaving exactly the paper's partial SSA
// form: top-level variables in T (SSA) and address-taken variables in A
// (accessed only via Load/Store).
package irbuild

import (
	"fmt"
	"strconv"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/token"
	"repro/internal/frontend/types"
	"repro/internal/ir"
)

// symbol binds a source name to its memory object and type.
type symbol struct {
	obj *ir.Object
	typ types.Type
}

// objInfo tracks per-object facts needed by mem2reg.
type objInfo struct {
	typ     types.Type
	escaped bool // user-level &x, aggregate, or otherwise unpromotable
}

type builder struct {
	prog *ir.Program
	file *ast.File

	objInfo map[*ir.Object]*objInfo

	// Per-function state.
	fn          *ir.Function
	blk         *ir.Block
	scopes      []map[string]symbol
	loopStack   []int
	loopCounter int
	breaks      []*ir.Block
	conts       []*ir.Block
	tmpCount    int
	line        int
}

// newBlock creates a block stamped with the current lexical loop stack.
func (b *builder) newBlock(comment string) *ir.Block {
	blk := b.fn.NewBlock(comment)
	blk.Loops = append([]int(nil), b.loopStack...)
	return blk
}

// curLoopID returns the innermost enclosing loop ID (0 when outside loops).
func (b *builder) curLoopID() int {
	if len(b.loopStack) == 0 {
		return 0
	}
	return b.loopStack[len(b.loopStack)-1]
}

// Build lowers file into a finalized partial-SSA program. The returned error
// reports unresolved names or malformed constructs.
func Build(file *ast.File) (*ir.Program, error) {
	b := &builder{
		prog:    ir.NewProgram(),
		file:    file,
		objInfo: map[*ir.Object]*objInfo{},
	}
	if err := b.build(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// BuildChecked is Build under a clearer name for callers migrating off the
// old panicking MustBuild: lowering failures (unresolved names, malformed
// constructs) are positioned errors, never panics.
func BuildChecked(file *ast.File) (*ir.Program, error) {
	return Build(file)
}

func (b *builder) build() error {
	// Declare globals.
	globalScope := map[string]symbol{}
	for _, g := range b.file.Globals {
		obj := b.prog.NewObject(ir.ObjGlobal, g.Name, nil)
		b.noteObjType(obj, g.Type)
		globalScope[g.Name] = symbol{obj: obj, typ: g.Type}
	}
	b.scopes = []map[string]symbol{globalScope}

	// Declare all functions first so calls and function pointers resolve
	// regardless of declaration order.
	for _, fd := range b.file.Funcs {
		if fd.Body == nil {
			continue
		}
		if b.prog.FuncByName[fd.Name] != nil {
			return fmt.Errorf("%s: duplicate function %q", fd.P, fd.Name)
		}
		b.prog.NewFunc(fd.Name)
	}
	if b.prog.Main == nil {
		return fmt.Errorf("program has no main function")
	}

	// Inject global initializers at the top of main, in declaration order.
	var inits []ast.Stmt
	for _, g := range b.file.Globals {
		if g.Init != nil {
			inits = append(inits, &ast.AssignStmt{
				P:   g.P,
				LHS: &ast.Ident{P: g.P, Name: g.Name},
				RHS: g.Init,
			})
		}
	}

	for _, fd := range b.file.Funcs {
		if fd.Body == nil {
			continue
		}
		pre := inits
		if fd.Name != "main" {
			pre = nil
		}
		if err := b.buildFunc(fd, pre); err != nil {
			return err
		}
	}

	// Promote scalars and finalize.
	for _, f := range b.prog.Funcs {
		ir.RemoveUnreachable(f)
	}
	b.mem2reg()
	b.prog.Finalize()
	return nil
}

func (b *builder) noteObjType(obj *ir.Object, t types.Type) {
	obj.NumFields = types.NumFields(t)
	if _, isArr := t.(*types.Array); isArr {
		obj.IsArray = true
	}
	b.objInfo[obj] = &objInfo{typ: t}
}

func (b *builder) pushScope() { b.scopes = append(b.scopes, map[string]symbol{}) }
func (b *builder) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) lookup(name string) (symbol, bool) {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if s, ok := b.scopes[i][name]; ok {
			return s, true
		}
	}
	return symbol{}, false
}

func (b *builder) declareLocal(name string, t types.Type) symbol {
	obj := b.prog.NewObject(ir.ObjStack, b.fn.Name+"."+name, b.fn)
	b.noteObjType(obj, t)
	s := symbol{obj: obj, typ: t}
	b.scopes[len(b.scopes)-1][name] = s
	return s
}

func (b *builder) temp(prefix string) *ir.Var {
	b.tmpCount++
	// Hand-rolled concatenation: this runs once per lowered expression and
	// fmt.Sprintf is measurable at that frequency.
	buf := make([]byte, 0, len(b.fn.Name)+len(prefix)+8)
	buf = append(buf, b.fn.Name...)
	buf = append(buf, '.')
	buf = append(buf, prefix...)
	buf = strconv.AppendInt(buf, int64(b.tmpCount), 10)
	return b.prog.NewVar(string(buf), b.fn)
}

func (b *builder) emit(s ir.Stmt) {
	ir.SetLine(s, b.line)
	b.blk.Append(s)
}

func (b *builder) setPos(p token.Pos) { b.line = p.Line }

// buildFunc lowers one function body. pre is a list of statements (global
// initializers) to lower before the body; only main receives them.
func (b *builder) buildFunc(fd *ast.FuncDecl, pre []ast.Stmt) error {
	b.fn = b.prog.FuncByName[fd.Name]
	b.blk = b.fn.NewBlock("entry")
	b.tmpCount = 0
	// Parameter spills below are emitted before any statement calls setPos,
	// so stamp them with the declaration's own line.
	b.setPos(fd.P)
	b.pushScope()
	defer b.popScope()

	// Parameters: an SSA variable plus a backing local object; the entry
	// block stores the parameter into its object and mem2reg promotes it
	// back unless the parameter's address escapes.
	for _, p := range fd.Params {
		pv := b.prog.NewVar(fd.Name+"."+p.Name, b.fn)
		b.fn.Params = append(b.fn.Params, pv)
		if p.Name == "" {
			continue
		}
		sym := b.declareLocal(p.Name, p.Type)
		addr := b.temp("a")
		b.emit(&ir.AddrOf{Dst: addr, Obj: sym.obj})
		b.emit(&ir.Store{Addr: addr, Src: pv})
	}
	if !fd.Ret.Equal(types.Void) {
		b.fn.RetVar = b.prog.NewVar(fd.Name+".$ret", b.fn)
	}

	var err error
	safeLower := func(s ast.Stmt) {
		if err == nil {
			err = b.lowerStmt(s)
		}
	}
	for _, s := range pre {
		safeLower(s)
	}
	for _, s := range fd.Body.Stmts {
		safeLower(s)
	}
	if err != nil {
		return fmt.Errorf("in %s: %w", fd.Name, err)
	}

	// Implicit return at fall-off.
	if b.blk != nil && !b.blockTerminated() {
		b.emit(&ir.Ret{})
	}
	return nil
}

func (b *builder) blockTerminated() bool {
	n := len(b.blk.Stmts)
	if n == 0 {
		return false
	}
	_, isRet := b.blk.Stmts[n-1].(*ir.Ret)
	return isRet
}

// startBlock switches emission to a fresh or given block.
func (b *builder) startBlock(blk *ir.Block) { b.blk = blk }

// ---- Statements ----

func (b *builder) lowerStmt(s ast.Stmt) error {
	b.setPos(s.Pos())
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pushScope()
		defer b.popScope()
		for _, st := range s.Stmts {
			if err := b.lowerStmt(st); err != nil {
				return err
			}
		}
		return nil

	case *ast.DeclStmt:
		sym := b.declareLocal(s.Decl.Name, s.Decl.Type)
		if s.Decl.Init != nil {
			v, err := b.lowerExpr(s.Decl.Init, s.Decl.Type)
			if err != nil {
				return err
			}
			addr := b.temp("a")
			b.emit(&ir.AddrOf{Dst: addr, Obj: sym.obj})
			b.emit(&ir.Store{Addr: addr, Src: v})
		}
		return nil

	case *ast.AssignStmt:
		hint := b.typeOf(s.LHS)
		v, err := b.lowerExpr(s.RHS, hint)
		if err != nil {
			return err
		}
		addr, err := b.lowerAddr(s.LHS, false)
		if err != nil {
			return err
		}
		b.setPos(s.Pos())
		b.emit(&ir.Store{Addr: addr, Src: v})
		return nil

	case *ast.ExprStmt:
		_, err := b.lowerExpr(s.X, nil)
		return err

	case *ast.IfStmt:
		if _, err := b.lowerExpr(s.Cond, nil); err != nil {
			return err
		}
		condBlk := b.blk
		thenBlk := b.newBlock("if.then")
		var elseBlk *ir.Block
		doneBlk := b.newBlock("if.done")
		condBlk.AddEdge(thenBlk)
		if s.Else != nil {
			elseBlk = b.newBlock("if.else")
			condBlk.AddEdge(elseBlk)
		} else {
			condBlk.AddEdge(doneBlk)
		}
		b.startBlock(thenBlk)
		if err := b.lowerStmt(s.Then); err != nil {
			return err
		}
		if !b.blockTerminated() {
			b.blk.AddEdge(doneBlk)
		}
		if s.Else != nil {
			b.startBlock(elseBlk)
			if err := b.lowerStmt(s.Else); err != nil {
				return err
			}
			if !b.blockTerminated() {
				b.blk.AddEdge(doneBlk)
			}
		}
		b.startBlock(doneBlk)
		return nil

	case *ast.WhileStmt:
		doneBlk := b.newBlock("while.done")
		b.loopCounter++
		b.loopStack = append(b.loopStack, b.loopCounter)
		headBlk := b.newBlock("while.head")
		bodyBlk := b.newBlock("while.body")
		b.blk.AddEdge(headBlk)
		b.startBlock(headBlk)
		if _, err := b.lowerExpr(s.Cond, nil); err != nil {
			b.loopStack = b.loopStack[:len(b.loopStack)-1]
			return err
		}
		b.blk.AddEdge(bodyBlk)
		b.blk.AddEdge(doneBlk)
		b.startBlock(bodyBlk)
		b.breaks = append(b.breaks, doneBlk)
		b.conts = append(b.conts, headBlk)
		err := b.lowerStmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		if err != nil {
			b.loopStack = b.loopStack[:len(b.loopStack)-1]
			return err
		}
		if !b.blockTerminated() {
			b.blk.AddEdge(headBlk)
		}
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		b.startBlock(doneBlk)
		return nil

	case *ast.ForStmt:
		b.pushScope()
		defer b.popScope()
		if s.Init != nil {
			if err := b.lowerStmt(s.Init); err != nil {
				return err
			}
		}
		doneBlk := b.newBlock("for.done")
		b.loopCounter++
		b.loopStack = append(b.loopStack, b.loopCounter)
		popLoop := func() { b.loopStack = b.loopStack[:len(b.loopStack)-1] }
		headBlk := b.newBlock("for.head")
		bodyBlk := b.newBlock("for.body")
		postBlk := b.newBlock("for.post")
		b.blk.AddEdge(headBlk)
		b.startBlock(headBlk)
		if s.Cond != nil {
			if _, err := b.lowerExpr(s.Cond, nil); err != nil {
				popLoop()
				return err
			}
		}
		b.blk.AddEdge(bodyBlk)
		b.blk.AddEdge(doneBlk)
		b.startBlock(bodyBlk)
		b.breaks = append(b.breaks, doneBlk)
		b.conts = append(b.conts, postBlk)
		err := b.lowerStmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		if err != nil {
			popLoop()
			return err
		}
		if !b.blockTerminated() {
			b.blk.AddEdge(postBlk)
		}
		b.startBlock(postBlk)
		if s.Post != nil {
			if err := b.lowerStmt(s.Post); err != nil {
				popLoop()
				return err
			}
		}
		b.blk.AddEdge(headBlk)
		popLoop()
		b.startBlock(doneBlk)
		return nil

	case *ast.ReturnStmt:
		var v *ir.Var
		if s.X != nil {
			var err error
			v, err = b.lowerExpr(s.X, nil)
			if err != nil {
				return err
			}
		}
		b.setPos(s.Pos())
		b.emit(&ir.Ret{Val: v})
		b.startBlock(b.newBlock("dead"))
		return nil

	case *ast.BreakStmt:
		if len(b.breaks) == 0 {
			return fmt.Errorf("%s: break outside loop", s.P)
		}
		b.blk.AddEdge(b.breaks[len(b.breaks)-1])
		b.startBlock(b.newBlock("dead"))
		return nil

	case *ast.ContinueStmt:
		if len(b.conts) == 0 {
			return fmt.Errorf("%s: continue outside loop", s.P)
		}
		b.blk.AddEdge(b.conts[len(b.conts)-1])
		b.startBlock(b.newBlock("dead"))
		return nil

	case *ast.JoinStmt:
		h, err := b.lowerExpr(s.Handle, types.Thread)
		if err != nil {
			return err
		}
		b.setPos(s.Pos())
		j := &ir.Join{Handle: h}
		j.InLoop = len(b.loopStack) > 0
		j.LoopID = b.curLoopID()
		b.emit(j)
		return nil

	case *ast.FreeStmt:
		v, err := b.lowerExpr(s.X, nil)
		if err != nil {
			return err
		}
		b.setPos(s.Pos())
		b.emit(&ir.Free{Ptr: v, ArgText: exprText(s.X)})
		return nil

	case *ast.LockStmt:
		ptr, err := b.lowerExpr(s.Ptr, types.PointerTo(types.Lock))
		if err != nil {
			return err
		}
		b.setPos(s.Pos())
		b.emit(&ir.Lock{Ptr: ptr})
		return nil

	case *ast.UnlockStmt:
		ptr, err := b.lowerExpr(s.Ptr, types.PointerTo(types.Lock))
		if err != nil {
			return err
		}
		b.setPos(s.Pos())
		b.emit(&ir.Unlock{Ptr: ptr})
		return nil
	}
	return fmt.Errorf("%s: unsupported statement %T", s.Pos(), s)
}

// ---- Expressions ----

// lowerExpr lowers e to a value held in a fresh or existing top-level
// variable. hint, when non-nil, types untyped allocations (malloc).
func (b *builder) lowerExpr(e ast.Expr, hint types.Type) (*ir.Var, error) {
	b.setPos(e.Pos())
	switch e := e.(type) {
	case *ast.IntLit, *ast.StringLit, *ast.NullLit:
		// Opaque non-pointer values: a fresh variable with no definition
		// (its points-to set is empty, which models NULL and integers).
		return b.temp("k"), nil

	case *ast.Ident:
		if sym, ok := b.lookup(e.Name); ok {
			// Array-typed variables decay to the array's address.
			if _, isArr := sym.typ.(*types.Array); isArr {
				addr := b.temp("a")
				b.emit(&ir.AddrOf{Dst: addr, Obj: sym.obj})
				return addr, nil
			}
			addr := b.temp("a")
			b.emit(&ir.AddrOf{Dst: addr, Obj: sym.obj})
			val := b.temp("t")
			b.emit(&ir.Load{Dst: val, Addr: addr})
			return val, nil
		}
		if f := b.prog.FuncByName[e.Name]; f != nil {
			fp := b.temp("fp")
			b.emit(&ir.AddrOf{Dst: fp, Obj: f.Obj})
			return fp, nil
		}
		return nil, fmt.Errorf("%s: undefined name %q", e.P, e.Name)

	case *ast.Unary:
		switch e.Op {
		case token.STAR:
			addr, err := b.lowerExpr(e.X, nil)
			if err != nil {
				return nil, err
			}
			val := b.temp("t")
			b.setPos(e.Pos())
			b.emit(&ir.Load{Dst: val, Addr: addr})
			return val, nil
		case token.AMP:
			return b.lowerAddr(e.X, true)
		default: // arithmetic/logical: operand effects only
			if _, err := b.lowerExpr(e.X, nil); err != nil {
				return nil, err
			}
			return b.temp("k"), nil
		}

	case *ast.Binary:
		if _, err := b.lowerExpr(e.X, nil); err != nil {
			return nil, err
		}
		if _, err := b.lowerExpr(e.Y, nil); err != nil {
			return nil, err
		}
		return b.temp("k"), nil

	case *ast.Index, *ast.FieldSel:
		addr, err := b.lowerAddr(e, false)
		if err != nil {
			return nil, err
		}
		// An array-typed element (e.g. field of array type) decays to its
		// address rather than being loaded.
		if t := b.typeOf(e); t != nil {
			if _, isArr := t.(*types.Array); isArr {
				return addr, nil
			}
		}
		val := b.temp("t")
		b.setPos(e.Pos())
		b.emit(&ir.Load{Dst: val, Addr: addr})
		return val, nil

	case *ast.MallocExpr:
		obj := b.prog.NewObject(ir.ObjHeap, fmt.Sprintf("heap@%s:%d", b.fn.Name, e.P.Line), b.fn)
		if pt := types.Deref(orVoidPtr(hint)); pt != nil {
			obj.NumFields = types.NumFields(pt)
			if _, isArr := pt.(*types.Array); isArr {
				obj.IsArray = true
			}
			b.objInfo[obj] = &objInfo{typ: pt, escaped: true}
		} else {
			b.objInfo[obj] = &objInfo{escaped: true}
		}
		dst := b.temp("m")
		b.emit(&ir.AddrOf{Dst: dst, Obj: obj})
		return dst, nil

	case *ast.SpawnExpr:
		return b.lowerSpawn(e)

	case *ast.CallExpr:
		return b.lowerCall(e)
	}
	return nil, fmt.Errorf("%s: unsupported expression %T", e.Pos(), e)
}

func orVoidPtr(t types.Type) types.Type {
	if t == nil {
		return types.PointerTo(types.Void)
	}
	return t
}

func (b *builder) lowerSpawn(e *ast.SpawnExpr) (*ir.Var, error) {
	fork := &ir.Fork{}
	if id, ok := e.Routine.(*ast.Ident); ok {
		if _, isVar := b.lookup(id.Name); !isVar {
			if f := b.prog.FuncByName[id.Name]; f != nil {
				fork.Routine = f
				f.IsThreadEntry = true
			} else {
				return nil, fmt.Errorf("%s: undefined spawn routine %q", id.P, id.Name)
			}
		}
	}
	if fork.Routine == nil {
		rv, err := b.lowerExpr(e.Routine, nil)
		if err != nil {
			return nil, err
		}
		fork.RoutineVar = rv
	}
	if e.Arg != nil {
		av, err := b.lowerExpr(e.Arg, nil)
		if err != nil {
			return nil, err
		}
		fork.Arg = av
	}
	b.setPos(e.Pos())
	fork.Dst = b.temp("tid")
	fork.Handle = b.prog.NewObject(ir.ObjThread, fmt.Sprintf("thread@%s:%d", b.fn.Name, e.P.Line), b.fn)
	fork.InLoop = len(b.loopStack) > 0
	fork.LoopID = b.curLoopID()
	b.emit(fork)
	return fork.Dst, nil
}

func (b *builder) lowerCall(e *ast.CallExpr) (*ir.Var, error) {
	call := &ir.Call{}
	resultUsed := true // conservatively materialize a result variable

	if id, ok := e.Fun.(*ast.Ident); ok {
		if _, isVar := b.lookup(id.Name); !isVar {
			f := b.prog.FuncByName[id.Name]
			if f == nil {
				// Calls to undeclared externals are modeled as no-ops with an
				// opaque result (C-style implicit declaration).
				for _, a := range e.Args {
					if _, err := b.lowerExpr(a, nil); err != nil {
						return nil, err
					}
				}
				return b.temp("k"), nil
			}
			call.Callee = f
		}
	}
	if call.Callee == nil {
		fv, err := b.lowerExpr(e.Fun, nil)
		if err != nil {
			return nil, err
		}
		call.CalleeVar = fv
	}
	for _, a := range e.Args {
		av, err := b.lowerExpr(a, nil)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, av)
	}
	if resultUsed {
		call.Dst = b.temp("r")
	}
	b.setPos(e.Pos())
	b.emit(call)
	return call.Dst, nil
}

// lowerAddr lowers e as an lvalue, returning a variable holding its address.
// escaping marks whether the address flows somewhere other than an
// immediately enclosing direct Load/Store (user-level &x), which disables
// promotion of the root object.
func (b *builder) lowerAddr(e ast.Expr, escaping bool) (*ir.Var, error) {
	b.setPos(e.Pos())
	switch e := e.(type) {
	case *ast.Ident:
		if sym, ok := b.lookup(e.Name); ok {
			if escaping {
				b.markEscaped(sym.obj)
			}
			addr := b.temp("a")
			b.emit(&ir.AddrOf{Dst: addr, Obj: sym.obj})
			return addr, nil
		}
		if f := b.prog.FuncByName[e.Name]; f != nil {
			// &funcname == funcname: the function object's address.
			fp := b.temp("fp")
			b.emit(&ir.AddrOf{Dst: fp, Obj: f.Obj})
			return fp, nil
		}
		return nil, fmt.Errorf("%s: undefined name %q", e.P, e.Name)

	case *ast.Unary:
		if e.Op == token.STAR {
			// &*p == p; the lvalue *p has address value(p).
			return b.lowerExpr(e.X, nil)
		}
		return nil, fmt.Errorf("%s: expression is not an lvalue", e.P)

	case *ast.FieldSel:
		var base *ir.Var
		var baseType types.Type
		var err error
		if e.Arrow {
			base, err = b.lowerExpr(e.X, nil)
			baseType = types.Deref(orVoidPtr(b.typeOf(e.X)))
		} else {
			// x.f requires x to be an lvalue; its object is address-exposed
			// through the field access.
			base, err = b.lowerAddr(e.X, true)
			baseType = b.typeOf(e.X)
		}
		if err != nil {
			return nil, err
		}
		st, _ := baseType.(*types.Struct)
		idx := -1
		if st != nil {
			idx = st.FieldIndex(e.Name)
		}
		if idx < 0 {
			return nil, fmt.Errorf("%s: unknown field %q", e.P, e.Name)
		}
		dst := b.temp("f")
		b.setPos(e.Pos())
		b.emit(&ir.Gep{Dst: dst, Base: base, Field: idx})
		return dst, nil

	case *ast.Index:
		// Arrays are monolithic: the element address aliases the array
		// object. For pointers, p[i] aliases *p.
		if _, err := b.lowerExpr(e.I, nil); err != nil {
			return nil, err
		}
		xt := b.typeOf(e.X)
		if _, isArr := xt.(*types.Array); isArr {
			base, err := b.lowerAddr(e.X, true)
			if err != nil {
				return nil, err
			}
			dst := b.temp("e")
			b.setPos(e.Pos())
			b.emit(&ir.Gep{Dst: dst, Base: base, Field: -1})
			return dst, nil
		}
		base, err := b.lowerExpr(e.X, nil)
		if err != nil {
			return nil, err
		}
		dst := b.temp("e")
		b.setPos(e.Pos())
		b.emit(&ir.Gep{Dst: dst, Base: base, Field: -1})
		return dst, nil
	}
	return nil, fmt.Errorf("%s: expression is not an lvalue (%T)", e.Pos(), e)
}

// exprText renders e approximately as source text; used for free-site
// metadata so diagnostics can name the freed expression in user terms.
// It covers the lvalue-ish shapes free arguments take.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.Unary:
		switch e.Op {
		case token.STAR:
			return "*" + exprText(e.X)
		case token.AMP:
			return "&" + exprText(e.X)
		}
	case *ast.FieldSel:
		sep := "."
		if e.Arrow {
			sep = "->"
		}
		return exprText(e.X) + sep + e.Name
	case *ast.Index:
		return exprText(e.X) + "[" + exprText(e.I) + "]"
	case *ast.IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.MallocExpr:
		return "malloc()"
	}
	return "<expr>"
}

// markEscaped records that obj's address escapes, disabling promotion.
func (b *builder) markEscaped(obj *ir.Object) {
	if info := b.objInfo[obj]; info != nil {
		info.escaped = true
	}
}

// ---- Type inference (best effort; used for field indices and hints) ----

func (b *builder) typeOf(e ast.Expr) types.Type {
	switch e := e.(type) {
	case *ast.Ident:
		if sym, ok := b.lookup(e.Name); ok {
			return sym.typ
		}
		if f := b.prog.FuncByName[e.Name]; f != nil {
			for _, fd := range b.file.Funcs {
				if fd.Name == e.Name {
					return fd.Signature()
				}
			}
			_ = f
		}
		return nil
	case *ast.IntLit, *ast.Binary:
		return types.Int
	case *ast.StringLit:
		return types.PointerTo(types.Char)
	case *ast.NullLit:
		return types.PointerTo(types.Void)
	case *ast.Unary:
		switch e.Op {
		case token.STAR:
			return types.Deref(orVoidPtr(b.typeOf(e.X)))
		case token.AMP:
			if t := b.typeOf(e.X); t != nil {
				return types.PointerTo(t)
			}
			return types.PointerTo(types.Void)
		}
		return types.Int
	case *ast.FieldSel:
		var st *types.Struct
		if e.Arrow {
			st, _ = types.Deref(orVoidPtr(b.typeOf(e.X))).(*types.Struct)
		} else {
			st, _ = b.typeOf(e.X).(*types.Struct)
		}
		if st != nil {
			if i := st.FieldIndex(e.Name); i >= 0 {
				return st.Fields[i].Type
			}
		}
		return nil
	case *ast.Index:
		switch xt := b.typeOf(e.X).(type) {
		case *types.Array:
			return xt.Elem
		case *types.Pointer:
			return xt.Elem
		}
		return nil
	case *ast.CallExpr:
		if ft, ok := b.typeOf(e.Fun).(*types.Func); ok {
			return ft.Ret
		}
		if pt, ok := b.typeOf(e.Fun).(*types.Pointer); ok {
			if ft, ok := pt.Elem.(*types.Func); ok {
				return ft.Ret
			}
		}
		return nil
	case *ast.MallocExpr:
		return types.PointerTo(types.Void)
	case *ast.SpawnExpr:
		return types.Thread
	}
	return nil
}

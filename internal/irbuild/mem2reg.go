package irbuild

import (
	"repro/internal/dom"
	"repro/internal/frontend/types"
	"repro/internal/ir"
)

// mem2reg promotes every non-escaping scalar stack object to a top-level SSA
// variable, inserting Phi statements at iterated dominance frontiers and
// deleting the AddrOf/Load/Store triples that accessed the object. This
// produces the paper's partial SSA form.
func (b *builder) mem2reg() {
	for _, f := range b.prog.Funcs {
		b.promoteFunc(f)
	}
}

// promotable reports whether obj can be promoted to SSA form.
func (b *builder) promotable(obj *ir.Object) bool {
	if obj.Kind != ir.ObjStack || obj.IsArray || obj.NumFields > 0 {
		return false
	}
	info := b.objInfo[obj]
	if info == nil || info.escaped {
		return false
	}
	// lock_t locals must remain memory objects so lock(&l) can name them;
	// escape analysis already catches &l, but be explicit.
	if basic, ok := info.typ.(*types.Basic); ok && basic.Name == "lock_t" {
		return false
	}
	return true
}

func (b *builder) promoteFunc(f *ir.Function) {
	// Collect promotable objects and their defining stores per block.
	var promote []*ir.Object
	promoteSet := map[*ir.Object]bool{}
	for _, blk := range f.Blocks {
		for _, s := range blk.Stmts {
			if a, ok := s.(*ir.AddrOf); ok && a.Obj.Kind == ir.ObjStack && a.Obj.Func == f {
				if !promoteSet[a.Obj] && b.promotable(a.Obj) {
					promoteSet[a.Obj] = true
					promote = append(promote, a.Obj)
				}
			}
		}
	}
	if len(promote) == 0 {
		return
	}

	domInfo := dom.Compute(f)

	// Map address temporaries to the object they point at. Because the
	// builder creates one fresh AddrOf temp per access and non-escaping
	// temps are used exactly once, this mapping is exact for promotable
	// objects.
	addrObj := map[*ir.Var]*ir.Object{}
	defBlocks := map[*ir.Object]map[*ir.Block]bool{}
	for _, blk := range f.Blocks {
		for _, s := range blk.Stmts {
			switch s := s.(type) {
			case *ir.AddrOf:
				if promoteSet[s.Obj] {
					addrObj[s.Dst] = s.Obj
				}
			case *ir.Store:
				if obj := addrObj[s.Addr]; obj != nil {
					if defBlocks[obj] == nil {
						defBlocks[obj] = map[*ir.Block]bool{}
					}
					defBlocks[obj][blk] = true
				}
			}
		}
	}

	// Phi placement at iterated dominance frontiers.
	type phiKey struct {
		blk *ir.Block
		obj *ir.Object
	}
	phis := map[phiKey]*ir.Phi{}
	for _, obj := range promote {
		// Seed in block-index order, not map order: phi dst variables are
		// created inside this worklist loop, and VarID assignment order must
		// be a pure function of the source for programs built from equal
		// sources to be ir.Isomorphic.
		work := make([]*ir.Block, 0, len(defBlocks[obj]))
		for _, blk := range f.Blocks {
			if defBlocks[obj][blk] {
				work = append(work, blk)
			}
		}
		inWork := map[*ir.Block]bool{}
		for _, blk := range work {
			inWork[blk] = true
		}
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range domInfo.Frontier(blk) {
				key := phiKey{fb, obj}
				if phis[key] != nil {
					continue
				}
				phi := &ir.Phi{
					Dst:      b.prog.NewVar(obj.Name+".phi", f),
					Incoming: make([]*ir.Var, len(fb.Preds)),
				}
				phis[key] = phi
				if !inWork[fb] {
					inWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}
	// Insert phis at block starts (order: promote order for determinism).
	for _, blk := range f.Blocks {
		inserted := 0
		for _, obj := range promote {
			if phi := phis[phiKey{blk, obj}]; phi != nil {
				blk.Insert(inserted, phi)
				inserted++
			}
		}
	}

	// Phis have no source statement of their own; stamp each with the first
	// positioned statement of its block (falling back to the function's first
	// positioned statement) so no statement carries Line()==0.
	fnLine := 0
	for _, blk := range f.Blocks {
		for _, s := range blk.Stmts {
			if l := ir.LineOf(s); l > 0 {
				fnLine = l
				break
			}
		}
		if fnLine > 0 {
			break
		}
	}
	for _, blk := range f.Blocks {
		blkLine := fnLine
		for _, s := range blk.Stmts {
			if _, isPhi := s.(*ir.Phi); isPhi {
				continue
			}
			if l := ir.LineOf(s); l > 0 {
				blkLine = l
				break
			}
		}
		for _, s := range blk.Stmts {
			if phi, ok := s.(*ir.Phi); ok && ir.LineOf(phi) == 0 {
				ir.SetLine(phi, blkLine)
			}
		}
	}

	// Renaming over the dominator tree.
	replaced := map[*ir.Var]*ir.Var{} // load-result -> current value
	resolve := func(v *ir.Var) *ir.Var {
		for {
			nv, ok := replaced[v]
			if !ok {
				return v
			}
			v = nv
		}
	}

	// undefVar produces a fresh definition-free variable for reads of
	// never-written (on some path) promoted locals.
	undef := map[*ir.Object]*ir.Var{}
	undefVar := func(obj *ir.Object) *ir.Var {
		if v := undef[obj]; v != nil {
			return v
		}
		v := b.prog.NewVar(obj.Name+".undef", f)
		undef[obj] = v
		return v
	}

	dead := map[ir.Stmt]bool{}

	var rename func(blk *ir.Block, cur map[*ir.Object]*ir.Var)
	rename = func(blk *ir.Block, cur map[*ir.Object]*ir.Var) {
		// Phi defs first (they are at the block head).
		for _, s := range blk.Stmts {
			phi, ok := s.(*ir.Phi)
			if !ok {
				break
			}
			for _, obj := range promote {
				if phis[phiKey{blk, obj}] == phi {
					cur[obj] = phi.Dst
					break
				}
			}
		}
		for _, s := range blk.Stmts {
			if _, ok := s.(*ir.Phi); ok {
				continue
			}
			switch s := s.(type) {
			case *ir.AddrOf:
				if promoteSet[s.Obj] {
					dead[s] = true
				}
			case *ir.Store:
				if obj := addrObj[s.Addr]; obj != nil {
					cur[obj] = resolve(s.Src)
					dead[s] = true
				}
			case *ir.Load:
				if obj := addrObj[s.Addr]; obj != nil {
					v := cur[obj]
					if v == nil {
						v = undefVar(obj)
					}
					replaced[s.Dst] = v
					dead[s] = true
				}
			}
		}
		// Fill phi operands of CFG successors.
		for _, succ := range blk.Succs {
			predIdx := -1
			for i, p := range succ.Preds {
				if p == blk {
					predIdx = i
					break
				}
			}
			for _, obj := range promote {
				if phi := phis[phiKey{succ, obj}]; phi != nil && predIdx >= 0 {
					v := cur[obj]
					if v == nil {
						v = undefVar(obj)
					}
					phi.Incoming[predIdx] = v
				}
			}
		}
		// Recurse into dominator-tree children with a copied environment.
		for _, child := range domInfo.Children(blk) {
			childCur := make(map[*ir.Object]*ir.Var, len(cur))
			for k, v := range cur {
				childCur[k] = v
			}
			rename(child, childCur)
		}
	}
	rename(f.Entry, map[*ir.Object]*ir.Var{})

	// Rewrite remaining uses and delete dead statements.
	for _, blk := range f.Blocks {
		kept := blk.Stmts[:0]
		for _, s := range blk.Stmts {
			if dead[s] {
				continue
			}
			ir.RewriteUses(s, resolve)
			kept = append(kept, s)
		}
		blk.Stmts = kept
	}
}

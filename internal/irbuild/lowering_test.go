package irbuild_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestGoldenIR pins the exact lowering of a small program, as a regression
// anchor for the builder and mem2reg.
func TestGoldenIR(t *testing.T) {
	p := compile(t, `
int x;
int *g;
int main() {
	int *q;
	q = &x;
	g = q;
	return 0;
}
`)
	got := p.String()
	// q is promoted (no stack object); g is a global accessed via
	// AddrOf+Store; the store's source is the promoted q value.
	for _, want := range []string{
		"func main(", "= &x", "= &g", "ret",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("golden IR missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "main.q") && strings.Contains(got, "&main.q") {
		t.Errorf("q must be promoted:\n%s", got)
	}
}

func TestBreakAndContinueEdges(t *testing.T) {
	p := compile(t, `
int g;
int main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i > 5) { break; }
		if (i > 2) { continue; }
		g = i;
	}
	g = 0;
	return 0;
}
`)
	// Must build a connected CFG with a single Ret reachable.
	rets := 0
	for _, s := range p.Stmts {
		if _, ok := s.(*ir.Ret); ok {
			rets++
		}
	}
	if rets != 1 {
		t.Errorf("rets = %d, want 1", rets)
	}
}

func TestWhileWithBreakOnly(t *testing.T) {
	p := compile(t, `
int g;
int main() {
	while (1) {
		g = 1;
		break;
	}
	return 0;
}
`)
	if p.Main == nil {
		t.Fatal("no main")
	}
}

func TestNestedLoopsLoopIDs(t *testing.T) {
	p := compile(t, `
void w(void *a) { }
int main() {
	int i; int j;
	for (i = 0; i < 2; i++) {
		for (j = 0; j < 2; j++) {
			thread_t t;
			t = spawn(w, NULL);
		}
	}
	return 0;
}
`)
	var fork *ir.Fork
	for _, s := range p.Stmts {
		if f, ok := s.(*ir.Fork); ok {
			fork = f
		}
	}
	if fork == nil || !fork.InLoop || fork.LoopID == 0 {
		t.Fatalf("fork loop info: %+v", fork)
	}
	// The fork's block must carry both enclosing loop IDs.
	if len(fork.Parent().Loops) != 2 {
		t.Errorf("fork block loops = %v, want depth 2", fork.Parent().Loops)
	}
}

func TestReturnValueWiring(t *testing.T) {
	p := compile(t, `
int x;
int *make() { return &x; }
int main() {
	int *r;
	r = make();
	return 0;
}
`)
	mk := p.FuncByName["make"]
	if mk.RetVar == nil {
		t.Fatal("make must have a RetVar")
	}
	found := false
	for _, s := range p.Stmts {
		if r, ok := s.(*ir.Ret); ok && ir.StmtFunc(r) == mk && r.Val != nil {
			found = true
		}
	}
	if !found {
		t.Error("make's return must carry a value")
	}
}

func TestVoidFunctionNoRetVar(t *testing.T) {
	p := compile(t, `
void nop() { }
int main() { nop(); return 0; }
`)
	if p.FuncByName["nop"].RetVar != nil {
		t.Error("void function must have no RetVar")
	}
}

func TestParamAddressEscape(t *testing.T) {
	// Taking a parameter's address keeps it a memory object.
	p := compile(t, `
int *g;
void f(int v) {
	g = &v;
}
int main() {
	f(3);
	return 0;
}
`)
	found := false
	for _, o := range p.Objects {
		if o.Kind == ir.ObjStack && strings.Contains(o.Name, "f.v") {
			found = true
		}
	}
	if !found {
		t.Error("address-taken parameter must stay a stack object")
	}
	// And stores of the incoming value into it must remain.
	stores := 0
	for _, s := range p.Stmts {
		if st, ok := s.(*ir.Store); ok && ir.StmtFunc(st).Name == "f" {
			stores++
		}
	}
	if stores == 0 {
		t.Error("parameter spill store must remain")
	}
}

func TestShadowing(t *testing.T) {
	p := compile(t, `
int x;
int *g1; int *g2;
int main() {
	g1 = &x;
	{
		int x;
		int *lp;
		lp = &x;
		g2 = lp;
	}
	return 0;
}
`)
	// g1 points to the global x, g2 to the local x: distinct objects.
	var globalX, localX bool
	for _, o := range p.Objects {
		if o.Name == "x" && o.Kind == ir.ObjGlobal {
			globalX = true
		}
		if strings.Contains(o.Name, "main.x") && o.Kind == ir.ObjStack {
			localX = true
		}
	}
	if !globalX || !localX {
		t.Errorf("shadowed variables must have distinct objects (global=%v local=%v)", globalX, localX)
	}
}

func TestFreeLowering(t *testing.T) {
	p := compile(t, `
int main() {
	int *p;
	p = malloc();
	free(p);
	return 0;
}
`)
	frees := 0
	for _, s := range p.Stmts {
		if _, ok := s.(*ir.Free); ok {
			frees++
		}
	}
	if frees != 1 {
		t.Errorf("frees = %d, want 1", frees)
	}
}

func TestMallocTypeHint(t *testing.T) {
	p := compile(t, `
struct S { int *a; int *b; int *c; };
struct S *ps;
int main() {
	ps = malloc();
	return 0;
}
`)
	found := false
	for _, o := range p.Objects {
		if o.Kind == ir.ObjHeap && o.NumFields == 3 {
			found = true
		}
	}
	if !found {
		t.Error("heap object must inherit the struct field count from the assignment hint")
	}
}

func TestStringLiteralOpaque(t *testing.T) {
	p := compile(t, `
char *name;
int main() {
	name = "hello";
	return 0;
}
`)
	if p.Main == nil {
		t.Fatal("no main")
	}
}

func TestDoubleDeclarationDifferentScopes(t *testing.T) {
	compile(t, `
int main() {
	int i;
	for (i = 0; i < 2; i++) {
		int t;
		t = i;
	}
	for (i = 0; i < 2; i++) {
		int t;
		t = i + 1;
	}
	return 0;
}
`)
}

package irbuild_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/irbuild"
)

// TestCorpusPositions walks every example program and asserts that lowering
// stamps a nonzero source line on every statement diagnostics can point at:
// stores, loads, calls, frees, locks/unlocks, forks and joins. (Phis are
// checked too — they borrow their block's position.) A Line()==0 here would
// surface as a "file:0" diagnostic in fsamcheck.
func TestCorpusPositions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			file, err := parser.ParseChecked(filepath.Base(path), string(src))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := irbuild.BuildChecked(file)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range prog.Stmts {
				var kind string
				switch s.(type) {
				case *ir.Store:
					kind = "store"
				case *ir.Load:
					kind = "load"
				case *ir.Call:
					kind = "call"
				case *ir.Free:
					kind = "free"
				case *ir.Lock:
					kind = "lock"
				case *ir.Unlock:
					kind = "unlock"
				case *ir.Fork:
					kind = "fork"
				case *ir.Join:
					kind = "join"
				case *ir.AddrOf:
					kind = "addrof"
				case *ir.Phi:
					kind = "phi"
				default:
					continue
				}
				if ir.LineOf(s) == 0 {
					t.Errorf("%s with zero line in %s: %s",
						kind, ir.StmtFunc(s), s)
				}
			}
			// Free sites must also carry their argument's source text.
			for _, s := range prog.Stmts {
				if fr, ok := s.(*ir.Free); ok && fr.ArgText == "" {
					t.Errorf("free without ArgText in %s: %s", ir.StmtFunc(fr), fr)
				}
			}
		})
	}
}

// TestParamSpillPosition pins the regression where the entry block's
// parameter spills (emitted before any statement set a position) carried
// line 0 in the first lowered function.
func TestParamSpillPosition(t *testing.T) {
	// p's address is taken, so its entry-block spill store survives mem2reg.
	src := "void writer(int *p) {\n  int **pp;\n  pp = &p;\n  **pp = 1;\n}\nint main() {\n  int x;\n  writer(&x);\n  return 0;\n}\n"
	file, err := parser.ParseChecked("param.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := irbuild.BuildChecked(file)
	if err != nil {
		t.Fatal(err)
	}
	writer := prog.FuncByName["writer"]
	if writer == nil {
		t.Fatal("no writer function")
	}
	for _, s := range writer.Entry.Stmts {
		if l := ir.LineOf(s); l == 0 {
			t.Fatalf("entry statement %s has line 0", s)
		}
	}
	if got := ir.LineOf(writer.Entry.Stmts[0]); got != 1 {
		t.Fatalf("param spill line = %d, want 1 (declaration line): %s",
			got, fmt.Sprint(writer.Entry.Stmts[0]))
	}
}

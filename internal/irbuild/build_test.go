package irbuild_test

import (
	"strings"
	"testing"

	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/irbuild"
)

// compile parses and lowers src, failing the test on any error.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, errs := parser.Parse("test.mc", src)
	for _, e := range errs {
		t.Errorf("parse error: %v", e)
	}
	if len(errs) > 0 {
		t.FailNow()
	}
	p, err := irbuild.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestBuildFig1a(t *testing.T) {
	// Paper Figure 1(a), transcribed into MiniC.
	p := compile(t, `
int x; int y; int z;
int *p; int *q; int *r; int *c;

void foo(void *arg) {
	*p = q;
}

int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	return 0;
}
`)
	if p.Main == nil {
		t.Fatal("no main")
	}
	var forks, stores, loads int
	for _, s := range p.Stmts {
		switch s.(type) {
		case *ir.Fork:
			forks++
		case *ir.Store:
			stores++
		case *ir.Load:
			loads++
		}
	}
	if forks != 1 {
		t.Errorf("forks = %d, want 1", forks)
	}
	if stores < 5 { // p,q,r global init stores + *p=r + *p=q + c=...
		t.Errorf("stores = %d, want >= 5", stores)
	}
	if loads < 2 {
		t.Errorf("loads = %d, want >= 2", loads)
	}
}

func TestMem2RegPromotesScalars(t *testing.T) {
	p := compile(t, `
int g;
int main() {
	int i;
	int *q;
	i = 0;
	q = &g;
	while (i < 10) {
		i = i + 1;
	}
	return i;
}
`)
	// i and q are non-escaping scalars: no stack objects for them should be
	// accessed via Load/Store, and a Phi should exist for i.
	hasPhi := false
	for _, s := range p.Stmts {
		switch s := s.(type) {
		case *ir.Phi:
			hasPhi = true
		case *ir.AddrOf:
			if s.Obj.Kind == ir.ObjStack {
				t.Errorf("unpromoted stack access: %s", s)
			}
		}
	}
	if !hasPhi {
		t.Error("expected a phi for loop variable i")
	}
}

func TestEscapedLocalNotPromoted(t *testing.T) {
	p := compile(t, `
int *leak(int *x) { return x; }
int main() {
	int a;
	int *p;
	p = &a;
	*p = 3;
	return 0;
}
`)
	found := false
	for _, s := range p.Stmts {
		if a, ok := s.(*ir.AddrOf); ok && a.Obj.Kind == ir.ObjStack && strings.Contains(a.Obj.Name, "main.a") {
			found = true
		}
	}
	if !found {
		t.Error("escaped local a should remain a memory object")
	}
}

func TestStructFieldGep(t *testing.T) {
	p := compile(t, `
struct S { int x; int *ptr; };
struct S gs;
int gv;
int main() {
	struct S *ps;
	ps = &gs;
	ps->ptr = &gv;
	gs.x = 1;
	return 0;
}
`)
	geps := 0
	for _, s := range p.Stmts {
		if g, ok := s.(*ir.Gep); ok && g.Field >= 0 {
			geps++
		}
	}
	if geps < 2 {
		t.Errorf("field geps = %d, want >= 2", geps)
	}
}

func TestArrayMonolithic(t *testing.T) {
	p := compile(t, `
int main() {
	thread_t tids[4];
	int i;
	for (i = 0; i < 4; i++) {
		tids[i] = spawn(worker, NULL);
	}
	for (i = 0; i < 4; i++) {
		join(tids[i]);
	}
	return 0;
}
void worker(void *a) { }
`)
	var fork *ir.Fork
	var join *ir.Join
	for _, s := range p.Stmts {
		switch s := s.(type) {
		case *ir.Fork:
			fork = s
		case *ir.Join:
			join = s
		}
	}
	if fork == nil || join == nil {
		t.Fatal("missing fork or join")
	}
	if !fork.InLoop || !join.InLoop {
		t.Error("fork/join should be marked InLoop")
	}
	if fork.Routine == nil || fork.Routine.Name != "worker" {
		t.Errorf("fork routine = %v", fork.Routine)
	}
}

func TestComplexStatementDecomposition(t *testing.T) {
	// *p = *q must decompose into a load feeding a store (paper Fig. 3).
	p := compile(t, `
int a; int b;
int *pa; int *pb;
int **p; int **q;
int main() {
	pa = &a; pb = &b;
	p = &pa; q = &pb;
	*p = *q;
	return 0;
}
`)
	hasLoadStore := false
	for _, s := range p.Stmts {
		if st, ok := s.(*ir.Store); ok {
			_ = st
			hasLoadStore = true
		}
	}
	if !hasLoadStore {
		t.Error("expected stores from decomposition")
	}
}

func TestLockNotPromoted(t *testing.T) {
	p := compile(t, `
lock_t gl;
int main() {
	lock(&gl);
	unlock(&gl);
	return 0;
}
`)
	var locks, unlocks int
	for _, s := range p.Stmts {
		switch s.(type) {
		case *ir.Lock:
			locks++
		case *ir.Unlock:
			unlocks++
		}
	}
	if locks != 1 || unlocks != 1 {
		t.Errorf("locks=%d unlocks=%d, want 1 each", locks, unlocks)
	}
}

func TestProgramStringer(t *testing.T) {
	p := compile(t, `
int g;
int main() { g = 1; return 0; }
`)
	s := p.String()
	if !strings.Contains(s, "func main(") {
		t.Errorf("program string missing main: %s", s)
	}
}

func TestUndefinedNameError(t *testing.T) {
	f, errs := parser.Parse("bad.mc", `int main() { zzz = 1; return 0; }`)
	if len(errs) > 0 {
		t.Fatalf("unexpected parse errors: %v", errs)
	}
	if _, err := irbuild.Build(f); err == nil {
		t.Error("expected build error for undefined name")
	}
}

func TestNoMainError(t *testing.T) {
	f, _ := parser.Parse("nomain.mc", `int foo() { return 0; }`)
	if _, err := irbuild.Build(f); err == nil {
		t.Error("expected error for missing main")
	}
}

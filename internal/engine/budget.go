package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/metrics"
)

// Budget caps the resources a fixpoint loop may consume beyond wall-clock
// time: a soft process-heap budget and a per-loop step limit. Budgets ride
// on the context (WithBudget) so they reach every solver through the same
// channel as cancellation, and they are enforced at the same amortized
// poll (Canceller.Cancelled) as the deadline — a trip surfaces as an error
// wrapping ErrOverBudget, symmetric with context.DeadlineExceeded.
//
// The pre-analysis is deliberately exempt (it uses NewCanceller, not
// NewLimitedCanceller): FSAM is staged so that the cheap, sound Andersen
// stage always completes and every later failure has a fallback tier.
type Budget struct {
	// MemBytes is a soft budget on the live process heap
	// (/memory/classes/heap/objects:bytes via runtime/metrics); 0 means
	// unlimited. "Soft" because it is polled every PollInterval steps and
	// measures the whole heap, not one analysis' share.
	MemBytes uint64
	// MaxSteps bounds the worklist pops (Cancelled calls) of each fixpoint
	// loop independently; 0 means unlimited. Per-loop rather than global so
	// a trip identifies the phase that overran.
	MaxSteps int64
}

// IsZero reports whether b imposes no limits.
func (b Budget) IsZero() bool { return b.MemBytes == 0 && b.MaxSteps == 0 }

// ErrOverBudget is wrapped by every budget-trip error, so callers can
// classify them with errors.Is regardless of which limit fired.
var ErrOverBudget = errors.New("over resource budget")

type budgetKey struct{}

// WithBudget returns a context carrying b. A zero budget returns ctx
// unchanged.
func WithBudget(ctx context.Context, b Budget) context.Context {
	if b.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the Budget carried by ctx (zero when absent).
func BudgetFrom(ctx context.Context) Budget {
	if ctx == nil {
		return Budget{}
	}
	b, _ := ctx.Value(budgetKey{}).(Budget)
	return b
}

// heapMetric is the runtime/metrics name of the live-heap gauge the memory
// budget polls.
const heapMetric = "/memory/classes/heap/objects:bytes"

// newHeapSample returns a sample slice for HeapBytes. Each Canceller owns
// its slice: metrics.Read writes into it, so sharing one across concurrent
// phases would race.
func newHeapSample() []metrics.Sample {
	s := make([]metrics.Sample, 1)
	s[0].Name = heapMetric
	return s
}

// HeapBytes reads the live-heap gauge into s (from newHeapSample). The
// cheap gauge aggregates per-P stat caches that may not have flushed yet
// (fresh process, only small allocations), in which case it reads zero —
// a value no live Go heap ever has — so that case falls back to the
// precise stop-the-world accounting. The fallback keeps one-byte budgets
// (used by tests to force the degradation ladder) deterministic.
func HeapBytes(s []metrics.Sample) uint64 {
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		if v := s[0].Value.Uint64(); v > 0 {
			return v
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// overStepsError builds the step-limit trip error.
func overStepsError(steps, limit int64) error {
	return fmt.Errorf("%w: %d worklist steps (limit %d)", ErrOverBudget, steps, limit)
}

// overMemError builds the memory-budget trip error.
func overMemError(heap, budget uint64) error {
	return fmt.Errorf("%w: live heap %d bytes (budget %d)", ErrOverBudget, heap, budget)
}

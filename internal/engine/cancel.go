package engine

import (
	"context"
	"runtime/metrics"
)

// PollInterval is the number of worklist pops (or equivalent loop
// iterations) between context-cancellation checks in the solvers' fixpoint
// loops. ctx.Err() costs an atomic load plus a mutex in the worst case, so
// amortizing it keeps the poll overhead invisible while bounding the
// latency of a cancellation to ~PollInterval pops.
const PollInterval = 256

// Canceller amortizes context cancellation (and, when built with
// NewLimitedCanceller, resource-budget) polling over tight solver loops:
// Cancelled reports true once ctx is done or a Budget limit trips,
// checking the context and the heap gauge every PollInterval calls and the
// step limit on every call. A nil Canceller (or one built from a nil
// context) never cancels, so solvers can thread it unconditionally.
type Canceller struct {
	ctx  context.Context
	tick uint32
	done bool
	err  error

	budget Budget
	steps  int64
	mem    []metrics.Sample
}

// NewCanceller returns a Canceller polling ctx's cancellation only; any
// Budget on ctx is ignored (the pre-analysis path — the ladder's safety
// net — must not be starved by the budget meant for the expensive
// phases). ctx may be nil.
func NewCanceller(ctx context.Context) *Canceller {
	if ctx == nil {
		return nil
	}
	// Fast path: Background and friends can never be cancelled.
	if ctx.Done() == nil {
		return nil
	}
	return &Canceller{ctx: ctx}
}

// NewLimitedCanceller returns a Canceller enforcing both ctx's
// cancellation and the Budget it carries (WithBudget). With no budget it
// behaves exactly like NewCanceller.
func NewLimitedCanceller(ctx context.Context) *Canceller {
	if ctx == nil {
		return nil
	}
	b := BudgetFrom(ctx)
	if b.IsZero() {
		return NewCanceller(ctx)
	}
	c := &Canceller{ctx: ctx, budget: b}
	if b.MemBytes > 0 {
		c.mem = newHeapSample()
	}
	return c
}

// Cancelled reports whether the run must stop — context cancelled or
// budget exhausted. The step limit is checked every call; the context and
// the heap gauge every PollInterval calls (the first call always polls, so
// an already-expired context is seen immediately).
func (c *Canceller) Cancelled() bool {
	if c == nil {
		return false
	}
	if c.done {
		return true
	}
	if c.budget.MaxSteps > 0 {
		if c.steps++; c.steps > c.budget.MaxSteps {
			return c.fail(overStepsError(c.steps, c.budget.MaxSteps))
		}
	}
	if c.tick%PollInterval == 0 {
		if err := c.ctx.Err(); err != nil {
			return c.fail(err)
		}
		if c.budget.MemBytes > 0 {
			if h := HeapBytes(c.mem); h > c.budget.MemBytes {
				return c.fail(overMemError(h, c.budget.MemBytes))
			}
		}
	}
	c.tick++
	return false
}

// fail latches the stop reason.
func (c *Canceller) fail(err error) bool {
	c.done = true
	c.err = err
	return true
}

// Err returns the reason the Canceller tripped: the budget error when a
// limit fired, otherwise the context's error (nil if neither, or c is
// nil).
func (c *Canceller) Err() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	return c.ctx.Err()
}

// Steps returns the number of Cancelled calls so far (the step-limit
// meter); 0 for a nil Canceller.
func (c *Canceller) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps
}

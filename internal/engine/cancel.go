package engine

import "context"

// PollInterval is the number of worklist pops (or equivalent loop
// iterations) between context-cancellation checks in the solvers' fixpoint
// loops. ctx.Err() costs an atomic load plus a mutex in the worst case, so
// amortizing it keeps the poll overhead invisible while bounding the
// latency of a cancellation to ~PollInterval pops.
const PollInterval = 256

// Canceller amortizes context cancellation polling over tight solver
// loops: Cancelled reports true only once ctx is done, checking the
// context every PollInterval calls. A nil Canceller (or one built from a
// nil context) never cancels, so solvers can thread it unconditionally.
type Canceller struct {
	ctx  context.Context
	tick uint32
	done bool
}

// NewCanceller returns a Canceller polling ctx. ctx may be nil.
func NewCanceller(ctx context.Context) *Canceller {
	if ctx == nil {
		return nil
	}
	// Fast path: Background and friends can never be cancelled.
	if ctx.Done() == nil {
		return nil
	}
	return &Canceller{ctx: ctx}
}

// Cancelled reports whether the context has been cancelled, polling it
// every PollInterval calls (the first call always polls, so an
// already-expired context is seen immediately).
func (c *Canceller) Cancelled() bool {
	if c == nil {
		return false
	}
	if c.done {
		return true
	}
	if c.tick%PollInterval == 0 {
		if c.ctx.Err() != nil {
			c.done = true
			return true
		}
	}
	c.tick++
	return false
}

// Err returns the context's error (nil if not cancelled or c is nil).
func (c *Canceller) Err() error {
	if c == nil {
		return nil
	}
	return c.ctx.Err()
}

package engine

import (
	"math/rand"
	"testing"
)

func TestWorklistPopsTopologically(t *testing.T) {
	// Chain 0→1→2→3 pushed in reverse: pops must come out in chain order.
	w := NewWorklist(4)
	for i := 0; i < 3; i++ {
		w.AddEdge(i, i+1)
	}
	for i := 3; i >= 0; i-- {
		w.Push(i)
	}
	for want := 0; want < 4; want++ {
		got, ok := w.Pop()
		if !ok || got != want {
			t.Fatalf("pop %d: got %d ok=%v", want, got, ok)
		}
	}
	if _, ok := w.Pop(); ok {
		t.Fatal("pop from empty worklist succeeded")
	}
	if w.Pops() != 4 {
		t.Fatalf("Pops=%d, want 4", w.Pops())
	}
}

func TestWorklistSCCMembersSharePriority(t *testing.T) {
	// 0→1→2→0 cycle feeding 3; source 4 feeding the cycle.
	w := NewWorklist(5)
	w.AddEdge(0, 1)
	w.AddEdge(1, 2)
	w.AddEdge(2, 0)
	w.AddEdge(2, 3)
	w.AddEdge(4, 0)
	for i := 0; i < 5; i++ {
		w.Push(i)
	}
	var order []int
	for {
		n, ok := w.Pop()
		if !ok {
			break
		}
		order = append(order, n)
	}
	pos := make([]int, 5)
	for i, n := range order {
		pos[n] = i
	}
	if pos[4] != 0 {
		t.Fatalf("source 4 not first: order=%v", order)
	}
	if pos[3] != 4 {
		t.Fatalf("sink 3 not last: order=%v", order)
	}
}

func TestWorklistPushDedups(t *testing.T) {
	w := NewWorklist(2)
	w.Push(1)
	w.Push(1)
	if w.Len() != 1 {
		t.Fatalf("Len=%d after duplicate push, want 1", w.Len())
	}
	if n, _ := w.Pop(); n != 1 {
		t.Fatal("wrong node")
	}
	// Re-push after pop is allowed.
	w.Push(1)
	if w.Len() != 1 {
		t.Fatal("re-push after pop lost")
	}
}

func TestWorklistGrowAndDynamicEdges(t *testing.T) {
	w := NewWorklist(2)
	w.AddEdge(1, 0)
	w.Push(0)
	w.Push(1)
	if n, _ := w.Pop(); n != 1 {
		t.Fatalf("want producer 1 first, got %d", n)
	}
	w.Grow(4)
	w.AddEdge(3, 2)
	w.Push(2)
	w.Push(3)
	// Drain; every node must come out exactly once.
	seen := map[int]bool{}
	for {
		n, ok := w.Pop()
		if !ok {
			break
		}
		if seen[n] {
			t.Fatalf("node %d popped twice", n)
		}
		seen[n] = true
	}
	if len(seen) != 3 {
		t.Fatalf("drained %d nodes, want 3", len(seen))
	}
}

// TestWorklistNeverLosesNodes randomly interleaves pushes, pops, edge
// additions and growth; every pushed node must eventually pop exactly once
// per push-while-absent.
func TestWorklistNeverLosesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 50
	w := NewWorklist(n)
	pending := map[int]bool{}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(4) {
		case 0:
			x := rng.Intn(n)
			w.Push(x)
			pending[x] = true
		case 1:
			if got, ok := w.Pop(); ok {
				if !pending[got] {
					t.Fatalf("popped %d which was not pending", got)
				}
				delete(pending, got)
			} else if len(pending) != 0 {
				t.Fatalf("empty pop with %d pending", len(pending))
			}
		case 2:
			w.AddEdge(rng.Intn(n), rng.Intn(n))
		case 3:
			if rng.Intn(10) == 0 {
				n++
				w.Grow(n)
			}
		}
		if w.Len() != len(pending) {
			t.Fatalf("Len=%d, pending=%d", w.Len(), len(pending))
		}
	}
	for {
		got, ok := w.Pop()
		if !ok {
			break
		}
		delete(pending, got)
	}
	if len(pending) != 0 {
		t.Fatalf("%d nodes lost", len(pending))
	}
}

package engine

import (
	"context"
	"errors"
	"testing"
)

func TestStepLimitTrips(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MaxSteps: 10})
	c := NewLimitedCanceller(ctx)
	if c == nil {
		t.Fatal("limited canceller is nil despite budget")
	}
	for i := 0; i < 10; i++ {
		if c.Cancelled() {
			t.Fatalf("tripped after %d steps, limit 10", i+1)
		}
	}
	if !c.Cancelled() {
		t.Fatal("did not trip past the step limit")
	}
	if !errors.Is(c.Err(), ErrOverBudget) {
		t.Fatalf("Err() = %v, want ErrOverBudget", c.Err())
	}
	if !c.Cancelled() {
		t.Error("trip did not latch")
	}
}

func TestMemBudgetTripsOnFirstPoll(t *testing.T) {
	// Any live Go heap exceeds one byte, and the first Cancelled call
	// always polls the gauge, so the trip is deterministic.
	ctx := WithBudget(context.Background(), Budget{MemBytes: 1})
	c := NewLimitedCanceller(ctx)
	if !c.Cancelled() {
		t.Fatal("one-byte heap budget did not trip on first poll")
	}
	if !errors.Is(c.Err(), ErrOverBudget) {
		t.Fatalf("Err() = %v, want ErrOverBudget", c.Err())
	}
}

func TestZeroBudgetBehavesLikePlainCanceller(t *testing.T) {
	if c := NewLimitedCanceller(context.Background()); c != nil {
		t.Errorf("no budget + uncancellable ctx should give nil, got %v", c)
	}
	ctx, cancel := context.WithCancel(WithBudget(context.Background(), Budget{}))
	defer cancel()
	c := NewLimitedCanceller(ctx)
	if c == nil {
		t.Fatal("cancellable ctx must give a canceller")
	}
	if c.Cancelled() {
		t.Error("cancelled before ctx done")
	}
	cancel()
	tripped := false
	for i := 0; i <= PollInterval; i++ {
		if c.Cancelled() {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Error("cancellation not seen within one poll interval")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", c.Err())
	}
}

func TestPreAnalysisCancellerIgnoresBudget(t *testing.T) {
	ctx := WithBudget(context.Background(), Budget{MemBytes: 1, MaxSteps: 1})
	if c := NewCanceller(ctx); c != nil {
		// Background ctx has no Done channel, so the budget-blind
		// constructor returns nil: the pre-analysis runs unthrottled.
		t.Errorf("NewCanceller must ignore the budget, got %v", c)
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	b := Budget{MemBytes: 123, MaxSteps: 456}
	got := BudgetFrom(WithBudget(context.Background(), b))
	if got != b {
		t.Errorf("BudgetFrom = %+v, want %+v", got, b)
	}
	if !BudgetFrom(context.Background()).IsZero() {
		t.Error("background ctx must carry the zero budget")
	}
	if WithBudget(context.Background(), Budget{}) != context.Background() {
		t.Error("zero budget must not wrap the context")
	}
}

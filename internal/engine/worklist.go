package engine

// Worklist is a priority worklist over a dense integer node space. Nodes
// are popped in reverse-postorder over the SCC condensation of the
// dependency graph registered through AddEdge: a node's facts are
// (heuristically) complete before its dependents run, which cuts the
// re-propagation a FIFO or LIFO discipline pays on diamond and chain
// shapes. Solvers add edges on the fly (Andersen's dynamic copy edges,
// indirect-call bindings); the ordering is recomputed lazily once enough
// new edges have landed since the last computation.
//
// The ordering is purely a performance heuristic: all three solvers are
// monotone fixpoint computations, so the result is identical under any pop
// order. A Worklist is not safe for concurrent use.
type Worklist struct {
	succs  [][]int32
	prio   []int32
	heap   []int32
	inWork []bool

	pops     uint64
	orders   int
	newEdges int
	ordered  bool
}

// NewWorklist returns a worklist over nodes [0, n).
func NewWorklist(n int) *Worklist {
	w := &Worklist{}
	w.Grow(n)
	return w
}

// Grow extends the node space to [0, n); existing state is preserved. New
// nodes get the current worst priority until the next reordering.
func (w *Worklist) Grow(n int) {
	for len(w.succs) < n {
		w.succs = append(w.succs, nil)
		w.prio = append(w.prio, int32(len(w.prio)))
		w.inWork = append(w.inWork, false)
	}
}

// AddEdge registers the dependency from → to (facts flow from "from" into
// "to"), used only for ordering. Duplicate edges are harmless.
func (w *Worklist) AddEdge(from, to int) {
	w.succs[from] = append(w.succs[from], int32(to))
	w.newEdges++
}

// Push schedules node n if it is not already scheduled.
func (w *Worklist) Push(n int) {
	if w.inWork[n] {
		return
	}
	w.inWork[n] = true
	w.heap = append(w.heap, int32(n))
	w.up(len(w.heap) - 1)
}

// Pop removes and returns the highest-priority scheduled node.
func (w *Worklist) Pop() (int, bool) {
	if len(w.heap) == 0 {
		return 0, false
	}
	if !w.ordered || w.newEdges > w.reorderThreshold() {
		w.reorder()
	}
	n := w.heap[0]
	last := len(w.heap) - 1
	w.heap[0] = w.heap[last]
	w.heap = w.heap[:last]
	if last > 0 {
		w.down(0)
	}
	w.inWork[n] = false
	w.pops++
	return int(n), true
}

// Len returns the number of scheduled nodes.
func (w *Worklist) Len() int { return len(w.heap) }

// Pops returns the total number of nodes popped so far (the "iterations"
// figure the benchmarks report).
func (w *Worklist) Pops() uint64 { return w.pops }

// Orders returns how many times the SCC-topo ordering was (re)computed.
func (w *Worklist) Orders() int { return w.orders }

// reorderThreshold is the number of new edges tolerated before the
// ordering is recomputed. Recomputation is O(V+E), so it is amortized
// against graph growth.
func (w *Worklist) reorderThreshold() int {
	t := len(w.succs) / 2
	if t < 256 {
		t = 256
	}
	return t
}

func (w *Worklist) less(a, b int32) bool {
	if w.prio[a] != w.prio[b] {
		return w.prio[a] < w.prio[b]
	}
	return a < b // deterministic tie-break
}

func (w *Worklist) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !w.less(w.heap[i], w.heap[parent]) {
			break
		}
		w.heap[i], w.heap[parent] = w.heap[parent], w.heap[i]
		i = parent
	}
}

func (w *Worklist) down(i int) {
	n := len(w.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && w.less(w.heap[l], w.heap[min]) {
			min = l
		}
		if r < n && w.less(w.heap[r], w.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		w.heap[i], w.heap[min] = w.heap[min], w.heap[i]
		i = min
	}
}

// reorder recomputes priorities as reverse-postorder over the SCC
// condensation (Tarjan, iterative) and re-heapifies the pending nodes.
// Tarjan completes an SCC only after every SCC reachable from it, so
// completion order is reverse-topological; inverting it makes sources
// (constraint/def-use producers) pop first.
func (w *Worklist) reorder() {
	n := len(w.succs)
	w.ordered = true
	w.newEdges = 0
	w.orders++

	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	compOrder := make([]int32, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var counter, comps int32
	type frame struct {
		v    int32
		succ int
	}
	var frames []frame

	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: int32(start)})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, int32(start))
		onStack[start] = true

		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			succs := w.succs[v]
			advanced := false
			for fr.succ < len(succs) {
				u := succs[fr.succ]
				fr.succ++
				if index[u] == -1 {
					index[u] = counter
					low[u] = counter
					counter++
					stack = append(stack, u)
					onStack[u] = true
					frames = append(frames, frame{v: u})
					advanced = true
					break
				} else if onStack[u] && index[u] < low[v] {
					low[v] = index[u]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					compOrder[u] = comps
					if u == v {
						break
					}
				}
				comps++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}

	for i := range w.prio {
		w.prio[i] = comps - 1 - compOrder[i]
	}
	// Re-heapify pending nodes under the new priorities.
	for i := len(w.heap)/2 - 1; i >= 0; i-- {
		w.down(i)
	}
}

package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pts"
)

func TestEmptySetIsZero(t *testing.T) {
	it := NewInterner()
	if got := it.Intern(&pts.Set{}); got != EmptySet {
		t.Fatalf("Intern(empty) = %d, want %d", got, EmptySet)
	}
	if got := it.Intern(nil); got != EmptySet {
		t.Fatalf("Intern(nil) = %d, want %d", got, EmptySet)
	}
	if !it.Set(EmptySet).IsEmpty() {
		t.Fatal("Set(EmptySet) not empty")
	}
}

func TestInternCanonicalizes(t *testing.T) {
	it := NewInterner()
	a := it.Intern(pts.FromSlice([]uint32{1, 5, 900}))
	b := it.Intern(pts.FromSlice([]uint32{900, 1, 5}))
	if a != b {
		t.Fatalf("equal sets interned to different IDs: %d vs %d", a, b)
	}
	c := it.Intern(pts.FromSlice([]uint32{1, 5}))
	if c == a {
		t.Fatal("distinct sets interned to the same ID")
	}
	// Equality is pointer comparison on the canonical sets.
	if it.Set(a) != it.Set(b) {
		t.Fatal("canonical sets of equal content are distinct pointers")
	}
}

func TestInternCopiesCallerSet(t *testing.T) {
	it := NewInterner()
	s := pts.FromSlice([]uint32{1, 2})
	id := it.Intern(s)
	s.Add(77) // caller keeps ownership; interner must be unaffected
	if it.Set(id).Has(77) {
		t.Fatal("interner aliased a caller-owned set")
	}
}

func TestAddUnionDiff(t *testing.T) {
	it := NewInterner()
	a := it.Singleton(3)
	a = it.Add(a, 70)
	if got := it.Set(a).Elems(); len(got) != 2 || got[0] != 3 || got[1] != 70 {
		t.Fatalf("Add built %v", got)
	}
	if it.Add(a, 3) != a {
		t.Fatal("Add of existing element changed the ID")
	}

	b := it.Intern(pts.FromSlice([]uint32{70, 500}))
	u, d := it.UnionDiff(a, b)
	if got := it.Set(u).Elems(); len(got) != 3 {
		t.Fatalf("union = %v", got)
	}
	if got := it.Set(d).Elems(); len(got) != 1 || got[0] != 500 {
		t.Fatalf("added = %v, want [500]", got)
	}
	// b ⊆ u: union is a fixpoint, diff empty.
	u2, d2 := it.UnionDiff(u, b)
	if u2 != u || d2 != EmptySet {
		t.Fatalf("UnionDiff(u, b) = (%d, %d), want (%d, 0)", u2, d2, u)
	}
	if it.Union(EmptySet, b) != b || it.Union(b, EmptySet) != b {
		t.Fatal("union with empty is not identity")
	}
}

// TestInternerMatchesReference drives random interner operations against a
// per-handle map[uint32]bool reference model, checking both content and the
// canonicalization invariant (equal content ⇔ equal SetID).
func TestInternerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	it := NewInterner()

	ids := []SetID{EmptySet}
	models := []map[uint32]bool{{}}

	copyModel := func(m map[uint32]bool) map[uint32]bool {
		c := make(map[uint32]bool, len(m))
		for k := range m {
			c[k] = true
		}
		return c
	}

	for step := 0; step < 3000; step++ {
		i := rng.Intn(len(ids))
		switch rng.Intn(3) {
		case 0: // Add
			x := uint32(rng.Intn(300))
			nid := it.Add(ids[i], x)
			m := copyModel(models[i])
			m[x] = true
			ids = append(ids, nid)
			models = append(models, m)
		case 1: // Union
			j := rng.Intn(len(ids))
			nid := it.Union(ids[i], ids[j])
			m := copyModel(models[i])
			for k := range models[j] {
				m[k] = true
			}
			ids = append(ids, nid)
			models = append(models, m)
		case 2: // UnionDiff: check the added part exactly
			j := rng.Intn(len(ids))
			u, d := it.UnionDiff(ids[i], ids[j])
			for k := range models[j] {
				if !it.Has(u, k) {
					t.Fatalf("step %d: union missing %d", step, k)
				}
				if !models[i][k] != it.Has(d, k) {
					t.Fatalf("step %d: added-set wrong at %d", step, k)
				}
			}
			it.Set(d).ForEach(func(k uint32) {
				if models[i][k] || !models[j][k] {
					t.Fatalf("step %d: spurious added element %d", step, k)
				}
			})
			m := copyModel(models[i])
			for k := range models[j] {
				m[k] = true
			}
			ids = append(ids, u)
			models = append(models, m)
		}
	}

	// Content check plus canonicalization: same content ⇒ same ID.
	byLen := map[int][]int{}
	for i, id := range ids {
		got := it.Set(id)
		if got.Len() != len(models[i]) {
			t.Fatalf("handle %d: len %d, want %d", i, got.Len(), len(models[i]))
		}
		for k := range models[i] {
			if !got.Has(k) {
				t.Fatalf("handle %d: missing %d", i, k)
			}
		}
		byLen[got.Len()] = append(byLen[got.Len()], i)
	}
	for _, group := range byLen {
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				i, j := group[a], group[b]
				if it.Set(ids[i]).Equal(it.Set(ids[j])) && ids[i] != ids[j] {
					t.Fatalf("equal sets with distinct IDs %d vs %d", ids[i], ids[j])
				}
			}
		}
	}
}

func TestRefStats(t *testing.T) {
	it := NewInterner()
	a := it.Intern(pts.FromSlice([]uint32{1, 2, 3}))
	b := it.Intern(pts.FromSlice([]uint32{9}))

	rs := it.NewRefStats()
	for i := 0; i < 10; i++ {
		rs.Ref(a)
	}
	rs.Ref(b)
	rs.Ref(EmptySet) // ignored

	if rs.Refs != 11 || rs.Unique != 2 {
		t.Fatalf("Refs=%d Unique=%d, want 11/2", rs.Refs, rs.Unique)
	}
	if rs.LogicalBytes != 10*it.Set(a).Bytes()+it.Set(b).Bytes() {
		t.Fatalf("LogicalBytes=%d", rs.LogicalBytes)
	}
	if rs.UniqueBytes != it.Set(a).Bytes()+it.Set(b).Bytes() {
		t.Fatalf("UniqueBytes=%d", rs.UniqueBytes)
	}
	if rs.DedupRatio() <= 1 {
		t.Fatalf("DedupRatio=%f, want > 1", rs.DedupRatio())
	}

	other := it.NewRefStats()
	other.Ref(b)
	rs.AddFrom(other)
	if rs.Refs != 12 || rs.Unique != 3 {
		t.Fatalf("after AddFrom: Refs=%d Unique=%d", rs.Refs, rs.Unique)
	}
}

// Package engine is the shared solver substrate every pointer analysis in
// this repository builds on. It provides two layers:
//
//   - an interning (hash-consing) table over pts.Set: every distinct
//     points-to set is stored once as an immutable canonical set, handles
//     are small SetID integers, set equality is ID comparison, and
//     union/add/diff results are memoized so the solvers' hot operations
//     become cache lookups. This is what keeps the Bytes metric (the
//     paper's Table 2 memory column) proportional to the number of
//     *distinct* sets rather than the number of program points.
//
//   - a priority worklist (worklist.go) that pops nodes in
//     reverse-postorder over the SCC condensation of the constraint or
//     def-use graph, recomputed lazily as on-the-fly edges land.
//
// The Andersen pre-analysis, the NonSparse baseline and the sparse FSAM
// core all run on this layer instead of private worklists and per-slot set
// storage.
package engine

import "repro/internal/pts"

// SetID is a handle to a canonical interned set. The zero SetID is the
// empty set, so zero-valued slots are correct by default.
type SetID uint32

// EmptySet is the SetID of the canonical empty set.
const EmptySet SetID = 0

// Interner hash-conses pts.Set values. All sets returned by Set are
// canonical and MUST NOT be mutated by callers. An Interner is not safe for
// concurrent use; each solver run owns one.
type Interner struct {
	sets   []*pts.Set
	lookup map[uint64][]SetID

	unionCache map[pairKey]SetID
	diffCache  map[pairKey]unionDiff
	addCache   map[addKey]SetID

	// Hits/Misses count memo-cache outcomes on Union/UnionDiff/Add, for
	// diagnostics.
	Hits, Misses uint64
}

type pairKey struct{ a, b SetID }

type addKey struct {
	s SetID
	x uint32
}

type unionDiff struct{ union, added SetID }

// NewInterner returns an empty interner whose SetID 0 is the empty set.
func NewInterner() *Interner {
	it := &Interner{
		lookup:     map[uint64][]SetID{},
		unionCache: map[pairKey]SetID{},
		diffCache:  map[pairKey]unionDiff{},
		addCache:   map[addKey]SetID{},
	}
	empty := &pts.Set{}
	it.sets = append(it.sets, empty)
	it.lookup[empty.Hash()] = append(it.lookup[empty.Hash()], EmptySet)
	return it
}

// Set returns the canonical set for id. The result must not be mutated.
func (it *Interner) Set(id SetID) *pts.Set { return it.sets[id] }

// NumSets returns the number of distinct sets interned so far (including
// the empty set).
func (it *Interner) NumSets() int { return len(it.sets) }

// Len returns the cardinality of set id.
func (it *Interner) Len(id SetID) int { return it.sets[id].Len() }

// Has reports whether x is in set id.
func (it *Interner) Has(id SetID, x uint32) bool { return it.sets[id].Has(x) }

// internOwned canonicalizes a freshly built set the interner may keep.
func (it *Interner) internOwned(s *pts.Set) SetID {
	h := s.Hash()
	for _, id := range it.lookup[h] {
		if it.sets[id].Equal(s) {
			return id
		}
	}
	id := SetID(len(it.sets))
	it.sets = append(it.sets, s)
	it.lookup[h] = append(it.lookup[h], id)
	return id
}

// Intern canonicalizes a caller-owned set. The caller keeps ownership of s
// and may mutate it afterwards (the interner copies when s is new).
func (it *Interner) Intern(s *pts.Set) SetID {
	if s == nil || s.IsEmpty() {
		return EmptySet
	}
	h := s.Hash()
	for _, id := range it.lookup[h] {
		if it.sets[id].Equal(s) {
			return id
		}
	}
	id := SetID(len(it.sets))
	it.sets = append(it.sets, s.Copy())
	it.lookup[h] = append(it.lookup[h], id)
	return id
}

// Singleton returns the canonical set {x}.
func (it *Interner) Singleton(x uint32) SetID { return it.Add(EmptySet, x) }

// Add returns the canonical set a ∪ {x}.
func (it *Interner) Add(a SetID, x uint32) SetID {
	if it.sets[a].Has(x) {
		return a
	}
	key := addKey{s: a, x: x}
	if r, ok := it.addCache[key]; ok {
		it.Hits++
		return r
	}
	it.Misses++
	c := it.sets[a].Copy()
	c.Add(x)
	r := it.internOwned(c)
	it.addCache[key] = r
	return r
}

// Union returns the canonical set a ∪ b.
func (it *Interner) Union(a, b SetID) SetID {
	u, _ := it.UnionDiff(a, b)
	return u
}

// UnionDiff returns the canonical union a ∪ b together with the canonical
// set of elements of b that were not in a (EmptySet when b ⊆ a). It is the
// engine form of the difference-propagation primitive every solver's
// "changed" scheduling is built on.
func (it *Interner) UnionDiff(a, b SetID) (union, added SetID) {
	if b == EmptySet || a == b {
		return a, EmptySet
	}
	if a == EmptySet {
		return b, b
	}
	key := pairKey{a: a, b: b}
	if r, ok := it.diffCache[key]; ok {
		it.Hits++
		return r.union, r.added
	}
	it.Misses++
	c := it.sets[a].Copy()
	d := c.UnionDiff(it.sets[b])
	if d == nil {
		union, added = a, EmptySet
	} else {
		union = it.internOwned(c)
		added = it.internOwned(d)
	}
	it.diffCache[key] = unionDiff{union: union, added: added}
	return union, added
}

// Bytes reports the heap footprint of the canonical sets plus the index
// overhead of the table itself (one pointer and one lookup slot per set).
func (it *Interner) Bytes() uint64 {
	var total uint64
	for _, s := range it.sets {
		total += s.Bytes()
	}
	// Pointer slice + lookup entries, approximately.
	total += uint64(len(it.sets)) * 16
	return total
}

// RefStats accumulates sharing statistics over the SetID slots a finished
// solver result holds: how many slots reference a set, how many distinct
// sets those references resolve to, and the byte cost with and without
// interning. Empty-set references are skipped (a nil/empty slot occupied no
// set storage before interning either).
type RefStats struct {
	it   *Interner
	seen map[SetID]struct{}

	// Refs counts non-empty set references; Unique counts distinct sets.
	Refs   int
	Unique int
	// LogicalBytes is what the referenced sets would cost if every slot
	// owned a private copy (the pre-interning representation); UniqueBytes
	// is what the canonical sets actually cost.
	LogicalBytes uint64
	UniqueBytes  uint64
}

// NewRefStats returns an accumulator bound to this interner.
func (it *Interner) NewRefStats() *RefStats {
	return &RefStats{it: it, seen: map[SetID]struct{}{}}
}

// Ref records one slot referencing set id.
func (r *RefStats) Ref(id SetID) {
	if id == EmptySet {
		return
	}
	b := r.it.sets[id].Bytes()
	r.Refs++
	r.LogicalBytes += b
	if _, ok := r.seen[id]; !ok {
		r.seen[id] = struct{}{}
		r.Unique++
		r.UniqueBytes += b
	}
}

// DedupRatio returns LogicalBytes/UniqueBytes (1.0 when nothing is
// referenced). Values above 1 mean interning is sharing sets.
func (r *RefStats) DedupRatio() float64 {
	if r.UniqueBytes == 0 {
		return 1
	}
	return float64(r.LogicalBytes) / float64(r.UniqueBytes)
}

// AddFrom folds another accumulator's totals into r (used to combine the
// per-solver stats into one Stats block; the interners are distinct so
// unique sets simply add).
func (r *RefStats) AddFrom(o *RefStats) {
	if o == nil {
		return
	}
	r.Refs += o.Refs
	r.Unique += o.Unique
	r.LogicalBytes += o.LogicalBytes
	r.UniqueBytes += o.UniqueBytes
}

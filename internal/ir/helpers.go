package ir

// Def returns the top-level variable defined by s, or nil.
func Def(s Stmt) *Var {
	switch s := s.(type) {
	case *AddrOf:
		return s.Dst
	case *Copy:
		return s.Dst
	case *Load:
		return s.Dst
	case *Phi:
		return s.Dst
	case *Gep:
		return s.Dst
	case *Call:
		return s.Dst
	case *Fork:
		return s.Dst
	}
	return nil
}

// Uses returns the top-level variables read by s (excluding its def).
func Uses(s Stmt) []*Var {
	switch s := s.(type) {
	case *Copy:
		return []*Var{s.Src}
	case *Load:
		return []*Var{s.Addr}
	case *Store:
		return []*Var{s.Addr, s.Src}
	case *Phi:
		var out []*Var
		for _, v := range s.Incoming {
			if v != nil {
				out = append(out, v)
			}
		}
		return out
	case *Gep:
		return []*Var{s.Base}
	case *Call:
		var out []*Var
		if s.CalleeVar != nil {
			out = append(out, s.CalleeVar)
		}
		out = append(out, s.Args...)
		return out
	case *Ret:
		if s.Val != nil {
			return []*Var{s.Val}
		}
	case *Fork:
		var out []*Var
		if s.RoutineVar != nil {
			out = append(out, s.RoutineVar)
		}
		if s.Arg != nil {
			out = append(out, s.Arg)
		}
		return out
	case *Join:
		return []*Var{s.Handle}
	case *Free:
		return []*Var{s.Ptr}
	case *Lock:
		return []*Var{s.Ptr}
	case *Unlock:
		return []*Var{s.Ptr}
	}
	return nil
}

// RewriteUses replaces every used (non-def) variable operand v of s with
// f(v). f must return its argument to leave an operand unchanged.
func RewriteUses(s Stmt, f func(*Var) *Var) {
	switch s := s.(type) {
	case *Copy:
		s.Src = f(s.Src)
	case *Load:
		s.Addr = f(s.Addr)
	case *Store:
		s.Addr = f(s.Addr)
		s.Src = f(s.Src)
	case *Phi:
		for i, v := range s.Incoming {
			if v != nil {
				s.Incoming[i] = f(v)
			}
		}
	case *Gep:
		s.Base = f(s.Base)
	case *Call:
		if s.CalleeVar != nil {
			s.CalleeVar = f(s.CalleeVar)
		}
		for i, a := range s.Args {
			s.Args[i] = f(a)
		}
	case *Ret:
		if s.Val != nil {
			s.Val = f(s.Val)
		}
	case *Fork:
		if s.RoutineVar != nil {
			s.RoutineVar = f(s.RoutineVar)
		}
		if s.Arg != nil {
			s.Arg = f(s.Arg)
		}
	case *Join:
		s.Handle = f(s.Handle)
	case *Free:
		s.Ptr = f(s.Ptr)
	case *Lock:
		s.Ptr = f(s.Ptr)
	case *Unlock:
		s.Ptr = f(s.Ptr)
	}
}

// IsMemAccess reports whether s directly reads or writes address-taken
// memory (Load or Store).
func IsMemAccess(s Stmt) bool {
	switch s.(type) {
	case *Load, *Store:
		return true
	}
	return false
}

// RemoveUnreachable deletes blocks not reachable from f.Entry, fixing up
// predecessor lists and block indices. Phi incoming entries corresponding to
// removed predecessors are dropped.
func RemoveUnreachable(f *Function) {
	if f.Entry == nil {
		return
	}
	reach := map[*Block]bool{}
	var stack []*Block
	stack = append(stack, f.Entry)
	reach[f.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		var preds []*Block
		var keepIdx []int
		for i, p := range b.Preds {
			if reach[p] {
				preds = append(preds, p)
				keepIdx = append(keepIdx, i)
			}
		}
		if len(preds) != len(b.Preds) {
			for _, s := range b.Stmts {
				if phi, ok := s.(*Phi); ok && len(phi.Incoming) == len(b.Preds) {
					inc := make([]*Var, 0, len(keepIdx))
					for _, i := range keepIdx {
						inc = append(inc, phi.Incoming[i])
					}
					phi.Incoming = inc
				}
			}
			b.Preds = preds
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.Index = i
	}
}

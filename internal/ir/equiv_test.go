package ir_test

import (
	"strings"
	"testing"

	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/irbuild"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.ParseChecked("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := irbuild.BuildChecked(f)
	if err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	return p
}

const equivBase = `
int g; int h;
int *p; int *q;
lock_t m;

void worker(void *arg) {
	lock(&m);
	*p = &g;
	unlock(&m);
	if (g > 3) { q = &g; } else { q = &h; }
}

int main() {
	p = &g;
	thread_t t;
	t = spawn(worker, NULL);
	q = p;
	join(t);
	return 0;
}
`

func TestIsomorphicSelf(t *testing.T) {
	a := compile(t, equivBase)
	b := compile(t, equivBase)
	if ok, why := ir.Isomorphic(a, b); !ok {
		t.Fatalf("identical source not isomorphic: %s", why)
	}
}

func TestIsomorphicIgnoresPositionsAndConstants(t *testing.T) {
	a := compile(t, equivBase)
	// Comment, blank-line, and integer-constant edits keep the CFG shape
	// and all operand identities.
	edited := strings.Replace(equivBase, "g > 3", "g > 7", 1)
	edited = strings.Replace(edited, "int main() {", "/* note */\n\nint main() {", 1)
	b := compile(t, edited)
	if ok, why := ir.Isomorphic(a, b); !ok {
		t.Fatalf("constant/comment edit broke isomorphism: %s", why)
	}
}

func TestIsomorphicDetectsOperandChange(t *testing.T) {
	a := compile(t, equivBase)
	b := compile(t, strings.Replace(equivBase, "q = p;", "q = &h;", 1))
	if ok, _ := ir.Isomorphic(a, b); ok {
		t.Fatalf("operand change reported isomorphic")
	}
}

func TestIsomorphicDetectsShapeChange(t *testing.T) {
	a := compile(t, equivBase)
	b := compile(t, strings.Replace(equivBase, "q = p;", "q = p;\n\t*q = &h;", 1))
	if ok, _ := ir.Isomorphic(a, b); ok {
		t.Fatalf("extra statement reported isomorphic")
	}
}

func TestReplayFieldObjsRoundTrip(t *testing.T) {
	src := `
struct S { int *f; int *g; };
struct S s0;
int x;
int main() {
	s0.f = &x;
	s0.g = s0.f;
	return 0;
}
`
	base := compile(t, src)
	// Simulate solver-side field materialization on the base program.
	var host *ir.Object
	for _, o := range base.Objects {
		if o.Name == "s0" {
			host = o
		}
	}
	if host == nil {
		t.Fatalf("no object s0")
	}
	n := len(base.Objects)
	base.FieldObj(host, 0)
	base.FieldObj(host, 1)
	if len(base.Objects) != n+2 {
		t.Fatalf("expected 2 field objects, table grew %d -> %d", n, len(base.Objects))
	}

	fresh := compile(t, src)
	if ok, why := ir.Isomorphic(base, fresh); !ok {
		t.Fatalf("field suffix broke isomorphism: %s", why)
	}
	if err := fresh.ReplayFieldObjs(base); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(fresh.Objects) != len(base.Objects) {
		t.Fatalf("replay did not align tables: %d vs %d", len(fresh.Objects), len(base.Objects))
	}
	for i := n; i < len(base.Objects); i++ {
		bo, fo := base.Objects[i], fresh.Objects[i]
		if bo.FieldIdx != fo.FieldIdx || bo.Base.ID != fo.Base.ID {
			t.Fatalf("field obj %d mismatch: %s[%d] vs %s[%d]",
				i, bo.Base.Name, bo.FieldIdx, fo.Base.Name, fo.FieldIdx)
		}
	}
}

package ir

import "fmt"

// Isomorphic reports whether fresh — a program straight out of irbuild,
// with no lazily-materialized field objects yet — is pointer-identical to
// base, a program that may already have been analyzed (and so may carry
// extra ObjField objects materialized by the solvers as a suffix of its
// object table).
//
// "Pointer-identical" means: every ID space (VarID, ObjID, StmtID, function
// order, block indices) lines up positionally AND every statement has the
// same kind and the same operand IDs. Variable and object *names* and
// statement *line numbers* are deliberately excluded: no solver consults
// them, so two isomorphic programs produce bit-identical ID-indexed results
// under this repository's deterministic pipeline. Function names are
// compared (call resolution and the main entry are by name).
//
// This is the adoption gate of the incremental-analysis path: when it
// holds, every ID-indexed fact computed for base (Andersen rows, def-use
// graphs, sparse solve rows) is exactly the fact a from-scratch run on
// fresh would compute, so the facts can be rebound wholesale. The non-empty
// reason string names the first mismatch, for diagnostics and tests.
func Isomorphic(base, fresh *Program) (bool, string) {
	if base == nil || fresh == nil {
		return false, "nil program"
	}
	if len(base.Funcs) != len(fresh.Funcs) {
		return false, fmt.Sprintf("function count %d != %d", len(base.Funcs), len(fresh.Funcs))
	}
	if len(base.Vars) != len(fresh.Vars) {
		return false, fmt.Sprintf("var count %d != %d", len(base.Vars), len(fresh.Vars))
	}
	// base's object table may carry solver-materialized ObjField objects.
	// irbuild never creates ObjField, so they form a strict suffix; fresh
	// must match the prefix exactly.
	built := len(base.Objects)
	for i, o := range base.Objects {
		if o.Kind == ObjField {
			built = i
			break
		}
	}
	for _, o := range base.Objects[built:] {
		if o.Kind != ObjField {
			return false, fmt.Sprintf("object %d: non-field object after first field object", o.ID)
		}
	}
	if len(fresh.Objects) != built {
		return false, fmt.Sprintf("object count %d != %d", built, len(fresh.Objects))
	}
	for i := 0; i < built; i++ {
		bo, fo := base.Objects[i], fresh.Objects[i]
		if bo.Kind != fo.Kind || bo.IsArray != fo.IsArray || bo.NumFields != fo.NumFields {
			return false, fmt.Sprintf("object %d: shape mismatch", i)
		}
		if (bo.Func == nil) != (fo.Func == nil) {
			return false, fmt.Sprintf("object %d: owner mismatch", i)
		}
		if bo.Func != nil && bo.Func.Name != fo.Func.Name {
			return false, fmt.Sprintf("object %d: owner %q != %q", i, bo.Func.Name, fo.Func.Name)
		}
	}
	for i := range base.Funcs {
		if ok, why := funcIso(base.Funcs[i], fresh.Funcs[i]); !ok {
			return false, fmt.Sprintf("func %s: %s", base.Funcs[i].Name, why)
		}
	}
	if (base.Main == nil) != (fresh.Main == nil) {
		return false, "main mismatch"
	}
	return true, ""
}

func funcIso(bf, ff *Function) (bool, string) {
	if bf.Name != ff.Name {
		return false, fmt.Sprintf("name %q != %q", bf.Name, ff.Name)
	}
	if bf.IsThreadEntry != ff.IsThreadEntry {
		return false, "thread-entry mismatch"
	}
	if len(bf.Params) != len(ff.Params) {
		return false, "param count"
	}
	for i := range bf.Params {
		if bf.Params[i].ID != ff.Params[i].ID {
			return false, fmt.Sprintf("param %d ID", i)
		}
	}
	if !varIDEq(bf.RetVar, ff.RetVar) {
		return false, "retvar"
	}
	if len(bf.Blocks) != len(ff.Blocks) {
		return false, fmt.Sprintf("block count %d != %d", len(bf.Blocks), len(ff.Blocks))
	}
	for i := range bf.Blocks {
		bb, fb := bf.Blocks[i], ff.Blocks[i]
		if len(bb.Succs) != len(fb.Succs) {
			return false, fmt.Sprintf("b%d succ count", i)
		}
		for j := range bb.Succs {
			if bb.Succs[j].Index != fb.Succs[j].Index {
				return false, fmt.Sprintf("b%d succ %d", i, j)
			}
		}
		if len(bb.Loops) != len(fb.Loops) {
			return false, fmt.Sprintf("b%d loop stack", i)
		}
		for j := range bb.Loops {
			if bb.Loops[j] != fb.Loops[j] {
				return false, fmt.Sprintf("b%d loop %d", i, j)
			}
		}
		if len(bb.Stmts) != len(fb.Stmts) {
			return false, fmt.Sprintf("b%d stmt count %d != %d", i, len(bb.Stmts), len(fb.Stmts))
		}
		for j := range bb.Stmts {
			if ok, why := stmtIso(bb.Stmts[j], fb.Stmts[j]); !ok {
				return false, fmt.Sprintf("b%d stmt %d (%s): %s", i, j, bb.Stmts[j], why)
			}
		}
	}
	return true, ""
}

func varIDEq(a, b *Var) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.ID == b.ID
}

func objIDEq(a, b *Object) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.ID == b.ID
}

func funcNameEq(a, b *Function) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Name == b.Name
}

func stmtIso(bs, fs Stmt) (bool, string) {
	switch b := bs.(type) {
	case *AddrOf:
		f, ok := fs.(*AddrOf)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || !objIDEq(b.Obj, f.Obj) {
			return false, "operands"
		}
	case *Copy:
		f, ok := fs.(*Copy)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || !varIDEq(b.Src, f.Src) {
			return false, "operands"
		}
	case *Load:
		f, ok := fs.(*Load)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || !varIDEq(b.Addr, f.Addr) {
			return false, "operands"
		}
	case *Store:
		f, ok := fs.(*Store)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Addr, f.Addr) || !varIDEq(b.Src, f.Src) {
			return false, "operands"
		}
	case *Phi:
		f, ok := fs.(*Phi)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || len(b.Incoming) != len(f.Incoming) {
			return false, "operands"
		}
		for i := range b.Incoming {
			if !varIDEq(b.Incoming[i], f.Incoming[i]) {
				return false, "incoming"
			}
		}
	case *Gep:
		f, ok := fs.(*Gep)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || !varIDEq(b.Base, f.Base) || b.Field != f.Field {
			return false, "operands"
		}
	case *Call:
		f, ok := fs.(*Call)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || !funcNameEq(b.Callee, f.Callee) ||
			!varIDEq(b.CalleeVar, f.CalleeVar) || len(b.Args) != len(f.Args) {
			return false, "operands"
		}
		for i := range b.Args {
			if !varIDEq(b.Args[i], f.Args[i]) {
				return false, "args"
			}
		}
	case *Ret:
		f, ok := fs.(*Ret)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Val, f.Val) {
			return false, "operands"
		}
	case *Fork:
		f, ok := fs.(*Fork)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Dst, f.Dst) || !funcNameEq(b.Routine, f.Routine) ||
			!varIDEq(b.RoutineVar, f.RoutineVar) || !varIDEq(b.Arg, f.Arg) ||
			!objIDEq(b.Handle, f.Handle) || b.InLoop != f.InLoop || b.LoopID != f.LoopID {
			return false, "operands"
		}
	case *Join:
		f, ok := fs.(*Join)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Handle, f.Handle) || b.InLoop != f.InLoop || b.LoopID != f.LoopID {
			return false, "operands"
		}
	case *Free:
		f, ok := fs.(*Free)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Ptr, f.Ptr) {
			return false, "operands"
		}
	case *Lock:
		f, ok := fs.(*Lock)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Ptr, f.Ptr) {
			return false, "operands"
		}
	case *Unlock:
		f, ok := fs.(*Unlock)
		if !ok {
			return false, "kind"
		}
		if !varIDEq(b.Ptr, f.Ptr) {
			return false, "operands"
		}
	default:
		return false, "unknown kind"
	}
	return true, ""
}

// ReplayFieldObjs materializes onto fresh, in base's creation order, every
// field sub-object the solvers lazily materialized on base, so fresh's
// object table becomes ID-for-ID identical to base's. It requires
// Isomorphic(base, fresh) to have held beforehand and reports an error when
// the replay diverges (a materialized field lands on an unexpected ID) —
// in which case the caller must not adopt base's facts.
func (fresh *Program) ReplayFieldObjs(base *Program) error {
	for _, o := range base.Objects {
		if o.Kind != ObjField {
			continue
		}
		if o.Base == nil || int(o.Base.ID) >= len(fresh.Objects) {
			return fmt.Errorf("field object %d: base object out of range", o.ID)
		}
		fo := fresh.FieldObj(fresh.Objects[o.Base.ID], o.FieldIdx)
		if fo.ID != o.ID {
			return fmt.Errorf("field object replay diverged: got ID %d, want %d", fo.ID, o.ID)
		}
	}
	return nil
}

// Package ir defines the partial-SSA intermediate representation consumed by
// every analysis in this repository.
//
// Following the paper (Section 2.1), the set of program variables V is split
// into two disjoint sets:
//
//   - T: top-level variables (Var), kept in SSA form with explicit Phi
//     statements. Their def-use chains are directly visible in the IR.
//   - A: address-taken variables (Object), accessed only indirectly via Load
//     and Store. These include globals, address-taken locals, heap objects
//     (one per allocation site), functions (for function pointers), thread
//     handles (one per fork site), and per-field sub-objects of structs.
//
// After construction a program contains only the statement forms the paper
// analyzes: AddrOf (p = &a), Copy (p = q), Load (p = *q), Store (*p = q),
// Phi, Gep (field address, for field sensitivity), Call/Ret, and the
// synchronization forms Fork, Join, Lock and Unlock.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// VarID identifies a top-level SSA variable within a Program.
type VarID uint32

// ObjID identifies an abstract memory object within a Program.
type ObjID uint32

// StmtID identifies a statement within a Program. IDs are dense and assigned
// by Program.Finalize in a deterministic order, so analyses may index slices
// by StmtID.
type StmtID uint32

// NoStmt is a sentinel for "no statement".
const NoStmt = StmtID(^uint32(0))

// Var is a top-level SSA variable (a member of T).
type Var struct {
	ID   VarID
	Name string
	// Func is the function the variable belongs to; nil for the handful of
	// synthetic variables created during def-use graph construction.
	Func *Function
}

func (v *Var) String() string {
	if v == nil {
		return "<nil-var>"
	}
	return v.Name
}

// ObjKind classifies abstract memory objects.
type ObjKind uint8

const (
	// ObjGlobal is a global variable object.
	ObjGlobal ObjKind = iota
	// ObjStack is an address-taken local variable.
	ObjStack
	// ObjHeap is a heap object named by its allocation site.
	ObjHeap
	// ObjFunc is the object standing for a function (function pointers).
	ObjFunc
	// ObjField is a per-field sub-object of a struct object.
	ObjField
	// ObjThread is the abstract thread handle created at a fork site.
	ObjThread
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjStack:
		return "stack"
	case ObjHeap:
		return "heap"
	case ObjFunc:
		return "func"
	case ObjField:
		return "field"
	case ObjThread:
		return "thread"
	}
	return fmt.Sprintf("ObjKind(%d)", uint8(k))
}

// Object is an abstract memory object (a member of A).
type Object struct {
	ID   ObjID
	Kind ObjKind
	Name string

	// Func is the enclosing function for ObjStack and ObjHeap objects, the
	// named function for ObjFunc objects, and nil for globals.
	Func *Function

	// IsArray marks objects that are (or contain) arrays; arrays are
	// analyzed monolithically and are never strong-update targets.
	IsArray bool

	// NumFields is the number of struct fields for aggregate objects; 0 for
	// scalars. Field sub-objects are materialized lazily by Program.FieldObj.
	NumFields int

	// Base and FieldIdx describe ObjField objects: the field sub-object
	// FieldIdx of Base. Base is nil for non-field objects.
	Base     *Object
	FieldIdx int

	// fields caches materialized field sub-objects, indexed by field index.
	fields map[int]*Object
}

func (o *Object) String() string {
	if o == nil {
		return "<nil-obj>"
	}
	return o.Name
}

// Root returns the outermost base object: o itself for non-field objects,
// else the transitive Base.
func (o *Object) Root() *Object {
	for o.Base != nil {
		o = o.Base
	}
	return o
}

// Stmt is implemented by every IR statement.
type Stmt interface {
	// ID returns the dense program-wide statement ID (valid after Finalize).
	ID() StmtID
	// Parent returns the containing basic block.
	Parent() *Block
	String() string

	setID(StmtID)
	setParent(*Block)
}

// stmt carries the bookkeeping shared by all statement kinds.
type stmt struct {
	id    StmtID
	block *Block
	line  int
}

func (s *stmt) ID() StmtID         { return s.id }
func (s *stmt) Parent() *Block     { return s.block }
func (s *stmt) Line() int          { return s.line }
func (s *stmt) setID(id StmtID)    { s.id = id }
func (s *stmt) setParent(b *Block) { s.block = b }

// SetLine records the source line a statement was lowered from.
func SetLine(s Stmt, line int) {
	type liner interface{ setLine(int) }
	if l, ok := s.(liner); ok {
		l.setLine(line)
	}
}

func (s *stmt) setLine(line int) { s.line = line }

// LineOf returns the source line recorded for s (0 when unknown).
func LineOf(s Stmt) int {
	type liner interface{ Line() int }
	if l, ok := s.(liner); ok {
		return l.Line()
	}
	return 0
}

// AddrOf is p = &o (an allocation site when o is a heap object).
type AddrOf struct {
	stmt
	Dst *Var
	Obj *Object
}

func (s *AddrOf) String() string { return fmt.Sprintf("%s = &%s", s.Dst, s.Obj) }

// Copy is p = q.
type Copy struct {
	stmt
	Dst *Var
	Src *Var
}

func (s *Copy) String() string { return fmt.Sprintf("%s = %s", s.Dst, s.Src) }

// Load is p = *q.
type Load struct {
	stmt
	Dst  *Var
	Addr *Var
}

func (s *Load) String() string { return fmt.Sprintf("%s = *%s", s.Dst, s.Addr) }

// Store is *p = q.
type Store struct {
	stmt
	Addr *Var
	Src  *Var
}

func (s *Store) String() string { return fmt.Sprintf("*%s = %s", s.Addr, s.Src) }

// Phi is p = phi(q, r, ...). Incoming[i] is the value flowing in from
// Parent().Preds[i]; entries may be nil for undefined paths.
type Phi struct {
	stmt
	Dst      *Var
	Incoming []*Var
}

func (s *Phi) String() string {
	parts := make([]string, len(s.Incoming))
	for i, v := range s.Incoming {
		if v == nil {
			parts[i] = "undef"
		} else {
			parts[i] = v.String()
		}
	}
	return fmt.Sprintf("%s = phi(%s)", s.Dst, strings.Join(parts, ", "))
}

// Gep is p = &q->f: field address computation giving field sensitivity.
// A negative Field means an array element address, which aliases the base
// object itself (arrays are monolithic).
type Gep struct {
	stmt
	Dst   *Var
	Base  *Var
	Field int
}

func (s *Gep) String() string {
	if s.Field < 0 {
		return fmt.Sprintf("%s = &%s[*]", s.Dst, s.Base)
	}
	return fmt.Sprintf("%s = &%s->f%d", s.Dst, s.Base, s.Field)
}

// Call is an (optionally indirect) function call. Exactly one of Callee and
// CalleeVar is non-nil. Dst may be nil for calls whose result is unused.
type Call struct {
	stmt
	Dst       *Var
	Callee    *Function // direct callee, or nil
	CalleeVar *Var      // function-pointer operand, or nil
	Args      []*Var
}

func (s *Call) String() string {
	target := ""
	if s.Callee != nil {
		target = s.Callee.Name
	} else {
		target = "*" + s.CalleeVar.String()
	}
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	call := fmt.Sprintf("%s(%s)", target, strings.Join(args, ", "))
	if s.Dst != nil {
		return fmt.Sprintf("%s = %s", s.Dst, call)
	}
	return call
}

// Ret returns from the enclosing function. Val may be nil.
type Ret struct {
	stmt
	Val *Var
}

func (s *Ret) String() string {
	if s.Val == nil {
		return "ret"
	}
	return "ret " + s.Val.String()
}

// Fork models pthread_create: it spawns Routine (direct) or *RoutineVar
// (indirect) with argument Arg, defining Dst to the abstract thread handle
// object Handle. Exactly one of Routine and RoutineVar is non-nil; Arg and
// Dst may be nil.
type Fork struct {
	stmt
	Dst        *Var
	Routine    *Function
	RoutineVar *Var
	Arg        *Var
	// Handle is the abstract thread-handle object created for this fork
	// site; Dst points to it after the fork (pt(Dst) = {Handle}).
	Handle *Object
	// InLoop is set by the builder when the fork site is lexically inside a
	// loop in its function (used for multi-forked thread detection).
	InLoop bool
	// LoopID identifies the innermost enclosing lexical loop (0 = none);
	// used with Join.LoopID for the symmetric fork/join loop heuristic
	// (paper Figure 11).
	LoopID int
}

func (s *Fork) String() string {
	target := ""
	if s.Routine != nil {
		target = s.Routine.Name
	} else {
		target = "*" + s.RoutineVar.String()
	}
	arg := ""
	if s.Arg != nil {
		arg = ", " + s.Arg.String()
	}
	dst := ""
	if s.Dst != nil {
		dst = s.Dst.String() + " = "
	}
	return fmt.Sprintf("%sfork(%s%s)", dst, target, arg)
}

// Join models pthread_join: Handle holds abstract thread handles (ObjThread
// objects) identifying which threads may be joined here.
type Join struct {
	stmt
	Handle *Var
	// InLoop is set when the join site is lexically inside a loop (used by
	// the symmetric fork/join loop heuristic, paper Figure 11).
	InLoop bool
	// LoopID identifies the innermost enclosing lexical loop (0 = none).
	LoopID int
}

func (s *Join) String() string { return fmt.Sprintf("join(%s)", s.Handle) }

// Free models free(Ptr): deallocation of heap objects. It does not change
// points-to information (dangling pointers are out of scope) but is the
// sink statement of the memory-leak, use-after-free and double-free clients.
type Free struct {
	stmt
	Ptr *Var
	// ArgText is the source text of the freed expression (e.g. "p",
	// "s->buf"), recorded by the builder so diagnostics can name the free
	// site in user terms instead of SSA temporaries.
	ArgText string
}

func (s *Free) String() string { return fmt.Sprintf("free(%s)", s.Ptr) }

// Lock models pthread_mutex_lock(Ptr).
type Lock struct {
	stmt
	Ptr *Var
}

func (s *Lock) String() string { return fmt.Sprintf("lock(%s)", s.Ptr) }

// Unlock models pthread_mutex_unlock(Ptr).
type Unlock struct {
	stmt
	Ptr *Var
}

func (s *Unlock) String() string { return fmt.Sprintf("unlock(%s)", s.Ptr) }

// Block is a basic block.
type Block struct {
	Index int // position within Function.Blocks
	Func  *Function
	Stmts []Stmt
	Preds []*Block
	Succs []*Block
	// Comment is an optional human-readable label (e.g. "if.then").
	Comment string
	// Loops is the stack of enclosing lexical loop IDs, innermost last.
	// Loop bodies, headers and post blocks carry the loop's ID; the blocks
	// following a loop do not. Used to detect loop-exit edges.
	Loops []int
}

func (b *Block) String() string {
	return fmt.Sprintf("b%d", b.Index)
}

// Append adds a statement to the end of the block.
func (b *Block) Append(s Stmt) {
	s.setParent(b)
	b.Stmts = append(b.Stmts, s)
}

// Insert places s at position i within the block.
func (b *Block) Insert(i int, s Stmt) {
	s.setParent(b)
	b.Stmts = append(b.Stmts, nil)
	copy(b.Stmts[i+1:], b.Stmts[i:])
	b.Stmts[i] = s
}

// AddEdge records a control-flow edge from b to succ.
func (b *Block) AddEdge(succ *Block) {
	b.Succs = append(b.Succs, succ)
	succ.Preds = append(succ.Preds, b)
}

// Function is a function definition.
type Function struct {
	Name   string
	Params []*Var
	// RetVar is the synthetic variable receiving the function's return value
	// (merged over all Ret statements); nil for void functions.
	RetVar *Var
	Blocks []*Block
	// Entry is Blocks[0]; Exit is a dedicated no-successor block that every
	// Ret transfers to conceptually (the builder guarantees all returns are
	// in blocks whose successor list is empty).
	Entry *Block

	// Obj is the ObjFunc object standing for this function.
	Obj *Object

	// IsThreadEntry is set for functions that appear as a fork routine; used
	// for reporting only.
	IsThreadEntry bool
}

func (f *Function) String() string { return f.Name }

// NewBlock creates and registers an empty basic block.
func (f *Function) NewBlock(comment string) *Block {
	b := &Block{Index: len(f.Blocks), Func: f, Comment: comment}
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

// Program is a whole program in partial SSA form.
type Program struct {
	Funcs      []*Function
	FuncByName map[string]*Function
	Main       *Function

	Vars    []*Var
	Objects []*Object

	// Stmts indexes every statement by its StmtID after Finalize.
	Stmts []Stmt

	finalized bool

	// varArena and objArena chunk-allocate Vars and Objects: builds create
	// tens of thousands of each, and one bump allocation per chunk beats
	// one heap object per entity. Handed-out pointers stay valid because a
	// chunk's backing array is never moved, only consumed from the front.
	varArena []Var
	objArena []Object
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{FuncByName: map[string]*Function{}}
}

// NewFunc creates and registers a function along with its ObjFunc object.
func (p *Program) NewFunc(name string) *Function {
	f := &Function{Name: name}
	f.Obj = p.NewObject(ObjFunc, name, f)
	p.Funcs = append(p.Funcs, f)
	p.FuncByName[name] = f
	if name == "main" {
		p.Main = f
	}
	return f
}

// NewVar creates and registers a top-level variable owned by f (f may be nil
// for synthetic variables).
func (p *Program) NewVar(name string, f *Function) *Var {
	if len(p.varArena) == 0 {
		p.varArena = make([]Var, 1024)
	}
	v := &p.varArena[0]
	p.varArena = p.varArena[1:]
	v.ID = VarID(len(p.Vars))
	v.Name = name
	v.Func = f
	p.Vars = append(p.Vars, v)
	return v
}

// NewObject creates and registers an abstract object.
func (p *Program) NewObject(kind ObjKind, name string, f *Function) *Object {
	if len(p.objArena) == 0 {
		p.objArena = make([]Object, 512)
	}
	o := &p.objArena[0]
	p.objArena = p.objArena[1:]
	o.ID = ObjID(len(p.Objects))
	o.Kind = kind
	o.Name = name
	o.Func = f
	p.Objects = append(p.Objects, o)
	return o
}

// FieldObj returns (materializing on first use) the sub-object for field idx
// of base. Arrays and scalar objects return base itself.
func (p *Program) FieldObj(base *Object, idx int) *Object {
	if base.IsArray || base.NumFields == 0 || idx < 0 {
		return base
	}
	if idx >= base.NumFields {
		// Out-of-range field access (e.g. through a badly typed pointer):
		// fall back to the base object, which is sound.
		return base
	}
	if base.fields == nil {
		base.fields = map[int]*Object{}
	}
	if fo := base.fields[idx]; fo != nil {
		return fo
	}
	fo := p.NewObject(ObjField, fmt.Sprintf("%s.f%d", base.Name, idx), base.Func)
	fo.Base = base
	fo.FieldIdx = idx
	base.fields[idx] = fo
	return fo
}

// FieldObjs returns the already-materialized field sub-objects of base in
// field-index order.
func (p *Program) FieldObjs(base *Object) []*Object {
	if base.fields == nil {
		return nil
	}
	idxs := make([]int, 0, len(base.fields))
	for i := range base.fields {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]*Object, len(idxs))
	for i, idx := range idxs {
		out[i] = base.fields[idx]
	}
	return out
}

// Finalize assigns dense statement IDs in a deterministic order (function
// declaration order, block order, statement order) and freezes the program.
// It must be called once after construction and before any analysis.
func (p *Program) Finalize() {
	if p.finalized {
		// Re-finalize to pick up statements added since (e.g. by tests that
		// extend a program); IDs are reassigned densely.
		p.Stmts = p.Stmts[:0]
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				s.setID(StmtID(len(p.Stmts)))
				p.Stmts = append(p.Stmts, s)
			}
		}
	}
	p.finalized = true
}

// NumStmts returns the number of statements (valid after Finalize).
func (p *Program) NumStmts() int { return len(p.Stmts) }

// StmtFunc returns the function containing s.
func StmtFunc(s Stmt) *Function {
	if b := s.Parent(); b != nil {
		return b.Func
	}
	return nil
}

// String renders the whole program, for debugging and golden tests.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s(", f.Name)
		for i, pa := range f.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(pa.Name)
		}
		sb.WriteString(") {\n")
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "  %s:", b)
			if b.Comment != "" {
				fmt.Fprintf(&sb, " ; %s", b.Comment)
			}
			if len(b.Succs) > 0 {
				succs := make([]string, len(b.Succs))
				for i, s := range b.Succs {
					succs[i] = s.String()
				}
				fmt.Fprintf(&sb, " -> %s", strings.Join(succs, ", "))
			}
			sb.WriteByte('\n')
			for _, s := range b.Stmts {
				fmt.Fprintf(&sb, "    %s\n", s)
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// Statement type assertions, grouped for convenience.
var (
	_ Stmt = (*AddrOf)(nil)
	_ Stmt = (*Copy)(nil)
	_ Stmt = (*Load)(nil)
	_ Stmt = (*Store)(nil)
	_ Stmt = (*Phi)(nil)
	_ Stmt = (*Gep)(nil)
	_ Stmt = (*Call)(nil)
	_ Stmt = (*Ret)(nil)
	_ Stmt = (*Fork)(nil)
	_ Stmt = (*Join)(nil)
	_ Stmt = (*Free)(nil)
	_ Stmt = (*Lock)(nil)
	_ Stmt = (*Unlock)(nil)
)

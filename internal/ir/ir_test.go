package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// buildToy constructs a small two-block function program by hand.
func buildToy() (*ir.Program, *ir.Function) {
	p := ir.NewProgram()
	f := p.NewFunc("main")
	x := p.NewObject(ir.ObjGlobal, "x", nil)
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("next")
	b0.AddEdge(b1)
	v1 := p.NewVar("a", f)
	v2 := p.NewVar("b", f)
	b0.Append(&ir.AddrOf{Dst: v1, Obj: x})
	b1.Append(&ir.Copy{Dst: v2, Src: v1})
	b1.Append(&ir.Ret{Val: v2})
	p.Finalize()
	return p, f
}

func TestFinalizeAssignsDenseIDs(t *testing.T) {
	p, _ := buildToy()
	if p.NumStmts() != 3 {
		t.Fatalf("stmts = %d", p.NumStmts())
	}
	for i, s := range p.Stmts {
		if int(s.ID()) != i {
			t.Errorf("stmt %d has ID %d", i, s.ID())
		}
	}
}

func TestRefinalizeKeepsDense(t *testing.T) {
	p, f := buildToy()
	f.Blocks[0].Append(&ir.Ret{})
	p.Finalize()
	if p.NumStmts() != 4 {
		t.Fatalf("stmts after refinalize = %d", p.NumStmts())
	}
}

func TestDefAndUses(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("main")
	a, b, c := p.NewVar("a", f), p.NewVar("b", f), p.NewVar("c", f)
	o := p.NewObject(ir.ObjGlobal, "o", nil)

	cases := []struct {
		s       ir.Stmt
		def     *ir.Var
		numUses int
	}{
		{&ir.AddrOf{Dst: a, Obj: o}, a, 0},
		{&ir.Copy{Dst: a, Src: b}, a, 1},
		{&ir.Load{Dst: a, Addr: b}, a, 1},
		{&ir.Store{Addr: a, Src: b}, nil, 2},
		{&ir.Phi{Dst: a, Incoming: []*ir.Var{b, nil, c}}, a, 2},
		{&ir.Gep{Dst: a, Base: b, Field: 1}, a, 1},
		{&ir.Call{Dst: a, CalleeVar: b, Args: []*ir.Var{c}}, a, 2},
		{&ir.Ret{Val: a}, nil, 1},
		{&ir.Ret{}, nil, 0},
		{&ir.Fork{Dst: a, RoutineVar: b, Arg: c, Handle: o}, a, 2},
		{&ir.Join{Handle: a}, nil, 1},
		{&ir.Lock{Ptr: a}, nil, 1},
		{&ir.Unlock{Ptr: a}, nil, 1},
	}
	for _, cse := range cases {
		if got := ir.Def(cse.s); got != cse.def {
			t.Errorf("Def(%s) = %v, want %v", cse.s, got, cse.def)
		}
		if got := len(ir.Uses(cse.s)); got != cse.numUses {
			t.Errorf("Uses(%s) = %d, want %d", cse.s, got, cse.numUses)
		}
	}
}

func TestRewriteUses(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("main")
	a, b, z := p.NewVar("a", f), p.NewVar("b", f), p.NewVar("z", f)
	st := &ir.Store{Addr: a, Src: b}
	ir.RewriteUses(st, func(v *ir.Var) *ir.Var {
		if v == b {
			return z
		}
		return v
	})
	if st.Src != z || st.Addr != a {
		t.Errorf("rewrite: %s", st)
	}
}

func TestFieldObjMemoized(t *testing.T) {
	p := ir.NewProgram()
	s := p.NewObject(ir.ObjGlobal, "s", nil)
	s.NumFields = 3
	f1 := p.FieldObj(s, 1)
	f1again := p.FieldObj(s, 1)
	f2 := p.FieldObj(s, 2)
	if f1 != f1again {
		t.Error("field objects must be memoized")
	}
	if f1 == f2 {
		t.Error("distinct fields must be distinct objects")
	}
	if f1.Root() != s {
		t.Error("Root")
	}
	if got := len(p.FieldObjs(s)); got != 2 {
		t.Errorf("materialized fields = %d", got)
	}
}

func TestFieldObjCollapses(t *testing.T) {
	p := ir.NewProgram()
	arr := p.NewObject(ir.ObjGlobal, "arr", nil)
	arr.IsArray = true
	arr.NumFields = 2
	if p.FieldObj(arr, 1) != arr {
		t.Error("array fields collapse to the array")
	}
	scalar := p.NewObject(ir.ObjGlobal, "x", nil)
	if p.FieldObj(scalar, 0) != scalar {
		t.Error("scalar field access collapses")
	}
	s := p.NewObject(ir.ObjGlobal, "s", nil)
	s.NumFields = 2
	if p.FieldObj(s, 99) != s {
		t.Error("out-of-range field collapses to base")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("main")
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("live")
	dead := f.NewBlock("dead")
	b0.AddEdge(b1)
	dead.AddEdge(b1) // dead predecessor of live block
	b0.Append(&ir.Ret{})
	_ = dead
	ir.RemoveUnreachable(f)
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(f.Blocks))
	}
	for _, pred := range b1.Preds {
		if pred == dead {
			t.Error("dead predecessor not removed")
		}
	}
	if f.Blocks[0].Index != 0 || f.Blocks[1].Index != 1 {
		t.Error("indices not renumbered")
	}
}

func TestRemoveUnreachableFixesPhis(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("main")
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("merge")
	dead := f.NewBlock("dead")
	b0.AddEdge(b1)
	dead.AddEdge(b1)
	v1 := p.NewVar("v1", f)
	v2 := p.NewVar("v2", f)
	d := p.NewVar("d", f)
	phi := &ir.Phi{Dst: d, Incoming: []*ir.Var{v1, v2}}
	b1.Append(phi)
	ir.RemoveUnreachable(f)
	if len(phi.Incoming) != 1 || phi.Incoming[0] != v1 {
		t.Errorf("phi incoming after cleanup: %v", phi.Incoming)
	}
}

func TestLineInfo(t *testing.T) {
	s := &ir.Copy{}
	ir.SetLine(s, 42)
	if ir.LineOf(s) != 42 {
		t.Error("line info")
	}
}

func TestStringers(t *testing.T) {
	p, _ := buildToy()
	str := p.String()
	for _, want := range []string{"func main(", "a = &x", "b = a", "ret b"} {
		if !strings.Contains(str, want) {
			t.Errorf("program string missing %q:\n%s", want, str)
		}
	}
	if ir.ObjHeap.String() != "heap" || ir.ObjThread.String() != "thread" {
		t.Error("ObjKind strings")
	}
}

func TestBlockInsert(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("main")
	b := f.NewBlock("entry")
	v := p.NewVar("v", f)
	b.Append(&ir.Ret{})
	b.Insert(0, &ir.Copy{Dst: v, Src: v})
	if _, ok := b.Stmts[0].(*ir.Copy); !ok {
		t.Error("Insert at head")
	}
	if _, ok := b.Stmts[1].(*ir.Ret); !ok {
		t.Error("original shifted")
	}
}

func TestStmtFunc(t *testing.T) {
	p, f := buildToy()
	if ir.StmtFunc(p.Stmts[0]) != f {
		t.Error("StmtFunc")
	}
	loose := &ir.Ret{}
	if ir.StmtFunc(loose) != nil {
		t.Error("unattached stmt has no func")
	}
}

// Package tmod implements a thread-modular sparse flow-sensitive points-to
// solver in the style of Miné's thread-modular abstract interpretation and
// its flow-sensitive refinement by Kusano & Wang (arXiv:1709.10116): each
// abstract thread runs the package core sparse solver restricted to its own
// slice of the thread-oblivious def-use graph, the slices exchange facts
// through a global interference environment (each thread's accumulated
// writes to shared objects), and the whole composition iterates to an
// interference fixpoint. Rounds solve all threads concurrently — one
// goroutine per thread, each with a private interner and worklist — and the
// exchange step between rounds is sequential, so the solve is deterministic
// and race-free by construction.
//
// Relaxed memory models (arXiv:1709.10077) layer onto the exchange step:
// the gate deciding which peer threads' published stores a reading thread
// may observe widens from may-happen-in-parallel (SC) to "MHP or
// happens-before" (TSO: store buffers delay commit past a fork/join edge)
// to "always" (PSO: per-location buffers give up inter-location ordering,
// collapsing onto the thread-oblivious composable bound). By construction
// pt(sc) ⊆ pt(tso) ⊆ pt(pso) pointwise.
package tmod

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/pts"
	"repro/internal/threads"
	"repro/internal/vfg"
)

// Memory consistency models. The model widens the interference gate only;
// intra-thread (program-order) flows are identical under all three.
const (
	// MemModelSC is sequential consistency: a thread observes a peer's
	// published stores only when the two may run in parallel.
	MemModelSC = "sc"
	// MemModelTSO adds store-buffer-induced visibility: a store buffered
	// before a fork/join edge may commit after it, so happens-before
	// ordered peers leak their intermediate store values too.
	MemModelTSO = "tso"
	// MemModelPSO drops inter-location store ordering entirely: every
	// peer's published store is observable, the composable upper bound.
	MemModelPSO = "pso"
)

// MemModels lists the supported memory models, most to least constrained.
func MemModels() []string { return []string{MemModelSC, MemModelTSO, MemModelPSO} }

// KnownMemModel reports whether name is a supported memory model.
func KnownMemModel(name string) bool {
	for _, m := range MemModels() {
		if m == name {
			return true
		}
	}
	return false
}

// Options configure a thread-modular solve.
type Options struct {
	// MemModel is MemModelSC, MemModelTSO or MemModelPSO ("" means SC).
	MemModel string
	// Sequential runs each round's per-thread solves one at a time instead
	// of one goroutine per thread. Results are identical either way (the
	// exchange is a barrier and every transfer is a monotone union); the
	// switch exists for determinism tests and the bench harness'
	// parallel-vs-sequential comparison.
	Sequential bool
	// Escape is the thread-escape pruning oracle: interference publication
	// skips objects whose stores cannot be absorbed under the configured
	// memory model's gate (non-Shared under sc, ThreadLocal under tso and
	// pso, where the gate also admits happens-before-ordered pairs). Nil
	// disables pruning; pruned and unpruned fixpoints are identical.
	Escape *escape.Result
}

// Result holds the composed thread-modular points-to information. The query
// surface mirrors core.Result so the facade can adapt either uniformly.
type Result struct {
	Prog  *ir.Program
	Graph *vfg.Graph
	Model *threads.Model

	// MemModel is the memory model the solve ran under.
	MemModel string
	// Rounds counts interference rounds to fixpoint (≥ 1).
	Rounds int
	// NumThreads is the number of per-thread solvers composed.
	NumThreads int
	// Iterations counts worklist pops summed over all threads and rounds.
	Iterations int
	// PrunedPubs counts (thread, object) interference publications the
	// escape oracle skipped, summed over all rounds.
	PrunedPubs int

	// RoundWall is the wall time of each round's solve step. ThreadWall and
	// ThreadPops are per-thread totals across all rounds, indexed like
	// Model.Threads.
	RoundWall  []time.Duration
	ThreadWall []time.Duration
	ThreadPops []uint64

	varPts []*pts.Set
	memPts []*pts.Set
	varIDs []engine.SetID
	memIDs []engine.SetID
	intern *engine.Interner

	singletons *pts.Set
}

// PointsToVar returns the composed points-to set (ObjIDs) of v; never nil.
func (r *Result) PointsToVar(v *ir.Var) *pts.Set {
	if v == nil || int(v.ID) >= len(r.varPts) || r.varPts[v.ID] == nil {
		return &pts.Set{}
	}
	return r.varPts[v.ID]
}

// PointsToMem returns the composed points-to set at MemNode id; never nil.
func (r *Result) PointsToMem(id int) *pts.Set {
	if id < 0 || id >= len(r.memPts) || r.memPts[id] == nil {
		return &pts.Set{}
	}
	return r.memPts[id]
}

// ObjAtExit returns the composed points-to set of obj at f's exit, or an
// empty set when f never defines obj.
func (r *Result) ObjAtExit(f *ir.Function, obj *ir.Object) *pts.Set {
	if id := r.Graph.ExitPhiNode(f, obj); id >= 0 {
		return r.PointsToMem(id)
	}
	return &pts.Set{}
}

// Obj resolves an ObjID from a points-to set.
func (r *Result) Obj(id uint32) *ir.Object { return r.Prog.Objects[id] }

// InternStats returns sharing statistics over the composed points-to slots.
func (r *Result) InternStats() *engine.RefStats {
	rs := r.intern.NewRefStats()
	for _, id := range r.varIDs {
		rs.Ref(id)
	}
	for _, id := range r.memIDs {
		rs.Ref(id)
	}
	return rs
}

// Bytes reports the memory footprint of the composed points-to sets plus
// the shared def-use graph (same accounting as core.Result.Bytes).
func (r *Result) Bytes() uint64 {
	rs := r.InternStats()
	return rs.UniqueBytes + uint64(rs.Refs)*4 + r.Graph.Bytes()
}

// memSync is one node the exchange step must reconcile across threads:
// either a node several threads' slices share (all owners converge on the
// union) or a boundary node feeding a slice from outside it (consumers
// adopt the owners' union).
type memSync struct {
	node    int
	owners  []int // threads whose slice contains the node
	targets []int // threads injected with the owners' union
}

// coordinator drives the interference fixpoint over the per-thread solvers.
type coordinator struct {
	r     *Result
	g     *vfg.Graph
	model *threads.Model
	prog  *ir.Program
	opt   Options

	solvers []*threadSolver

	// Shared indexes, read-only while the per-thread goroutines run.
	varUses    map[ir.VarID][]ir.Stmt
	chiOfStore map[*ir.Store][]int
	retUses    map[ir.VarID][]ir.Stmt
	singletons *pts.Set
	numMem     int

	// funcThreads maps each function to the threads executing it.
	funcThreads map[*ir.Function][]int

	memSyncs []memSync

	// gateOK[tp][tr] caches gate(tp → tr) under opt.MemModel.
	gateOK [][]bool

	cancel *engine.Canceller
}

// threadSolver is one thread's sparse solver over its slice of the shared
// graph. It mirrors the package core solver rule for rule; the differences
// are slice-filtered scheduling, the private interner/worklist (goroutine
// isolation), and interference absorption at loads and store chis.
type threadSolver struct {
	c      *coordinator
	thread *threads.Thread

	it *engine.Interner
	wl *engine.Worklist

	varIDs []engine.SetID
	memIDs []engine.SetID

	// interIn[obj] is this thread's interference environment: the interned
	// union of every gated peer's published stores of obj. Written only by
	// the (sequential) exchange step, read during the solve.
	interIn map[uint32]engine.SetID

	inStmt []bool // slice membership by ir.StmtID
	inMem  []bool // slice membership by MemNode ID

	// varRelevant marks variables some in-slice transfer reads; only those
	// receive the global var union at exchange time.
	varRelevant []bool

	sliceChis  []int // in-slice MStoreChi node IDs (the publication sites)
	loadsOfObj map[uint32][]*ir.Load
	chisOfObj  map[uint32][]int
	absorbObjs []uint32 // sorted keys of loadsOfObj ∪ chisOfObj

	emptySet   *pts.Set
	cancel     *engine.Canceller
	iterations int
	wall       time.Duration
	err        error
}

// Solve runs the thread-modular analysis over a thread-oblivious def-use
// graph (vfg.Options{ThreadOblivious: true}).
func Solve(model *threads.Model, g *vfg.Graph, opt Options) *Result {
	r, _ := SolveCtx(context.Background(), model, g, opt)
	return r
}

// SolveCtx runs the thread-modular analysis under a context. On
// cancellation (or budget/step-limit trips) it returns (nil, err); the
// per-thread solve loops poll at their worklist pops and the coordinator
// polls between rounds.
func SolveCtx(ctx context.Context, model *threads.Model, g *vfg.Graph, opt Options) (*Result, error) {
	if opt.MemModel == "" {
		opt.MemModel = MemModelSC
	}
	r := &Result{
		Prog:       model.Prog,
		Graph:      g,
		Model:      model,
		MemModel:   opt.MemModel,
		varPts:     make([]*pts.Set, len(model.Prog.Vars)),
		memPts:     make([]*pts.Set, len(g.Nodes)),
		varIDs:     make([]engine.SetID, len(model.Prog.Vars)),
		memIDs:     make([]engine.SetID, len(g.Nodes)),
		intern:     engine.NewInterner(),
		singletons: model.SingletonObjects(),
	}
	c := &coordinator{
		r:          r,
		g:          g,
		model:      model,
		prog:       model.Prog,
		opt:        opt,
		varUses:    map[ir.VarID][]ir.Stmt{},
		chiOfStore: map[*ir.Store][]int{},
		retUses:    map[ir.VarID][]ir.Stmt{},
		singletons: r.singletons,
		numMem:     len(g.Nodes),
		cancel:     engine.NewLimitedCanceller(ctx),
	}
	c.buildIndexes()
	c.buildSolvers(ctx)
	c.buildSyncs()
	c.buildGates()
	if err := c.run(); err != nil {
		return nil, err
	}
	c.snapshot()
	return r, nil
}

// buildIndexes constructs the slice-independent dependency indexes shared
// read-only by every thread, and pre-materializes every field object a Gep
// could demand — ir.Program.FieldObj creates field objects lazily (it
// mutates the program), so materializing the closure up front keeps the
// concurrent solves read-only. The solver's base sets refine the
// pre-analysis, so Pre.PointsToVar(gep.Base) covers every object any
// thread's Gep transfer can see.
func (c *coordinator) buildIndexes() {
	for _, st := range c.prog.Stmts {
		for _, u := range ir.Uses(st) {
			c.varUses[u.ID] = append(c.varUses[u.ID], st)
		}
		switch st := st.(type) {
		case *ir.Call:
			if st.Dst != nil {
				for _, callee := range c.g.Pre.CallTargets[st] {
					if callee.RetVar != nil {
						c.retUses[callee.RetVar.ID] = append(c.retUses[callee.RetVar.ID], st)
					}
				}
			}
		case *ir.Gep:
			c.g.Pre.PointsToVar(st.Base).ForEach(func(id uint32) {
				c.prog.FieldObj(c.prog.Objects[id], st.Field)
			})
		}
	}
	for _, n := range c.g.Nodes {
		if n.Kind == vfg.MStoreChi {
			st := n.Stmt.(*ir.Store)
			c.chiOfStore[st] = append(c.chiOfStore[st], n.ID)
		}
	}
}

// buildSolvers computes the per-thread slices and constructs one solver per
// abstract thread. A function belongs to the slice of every thread whose
// context-sensitive walk reaches it; functions no thread reaches (dead
// code the graph still models) and statements outside any function land in
// the main thread's slice, so every node is solved by someone and a
// single-threaded program degenerates to exactly the whole-program solve.
func (c *coordinator) buildSolvers(ctx context.Context) {
	c.funcThreads = map[*ir.Function][]int{}
	for ti, th := range c.model.Threads {
		seen := map[*ir.Function]bool{}
		for fc := range c.model.Funcs(th) {
			if fc.Func != nil && !seen[fc.Func] {
				seen[fc.Func] = true
				c.funcThreads[fc.Func] = append(c.funcThreads[fc.Func], ti)
			}
		}
	}
	for _, f := range c.prog.Funcs {
		if len(c.funcThreads[f]) == 0 {
			c.funcThreads[f] = []int{0}
		}
	}

	c.solvers = make([]*threadSolver, len(c.model.Threads))
	for ti, th := range c.model.Threads {
		t := &threadSolver{
			c:           c,
			thread:      th,
			it:          engine.NewInterner(),
			wl:          engine.NewWorklist(c.numMem + len(c.prog.Stmts)),
			varIDs:      make([]engine.SetID, len(c.prog.Vars)),
			memIDs:      make([]engine.SetID, len(c.g.Nodes)),
			interIn:     map[uint32]engine.SetID{},
			inStmt:      make([]bool, len(c.prog.Stmts)),
			inMem:       make([]bool, len(c.g.Nodes)),
			varRelevant: make([]bool, len(c.prog.Vars)),
			loadsOfObj:  map[uint32][]*ir.Load{},
			chisOfObj:   map[uint32][]int{},
			emptySet:    &pts.Set{},
			cancel:      engine.NewLimitedCanceller(ctx),
		}
		c.solvers[ti] = t
		t.buildSlice(ti)
		t.seedOrderEdges()
		t.seed()
	}
}

// buildSlice marks the statements and memory nodes of thread ti's slice and
// derives the slice-local indexes (relevant vars, publication chis,
// interference absorbers).
func (t *threadSolver) buildSlice(ti int) {
	c := t.c
	inThread := func(f *ir.Function) bool {
		if f == nil {
			return ti == 0
		}
		for _, o := range c.funcThreads[f] {
			if o == ti {
				return true
			}
		}
		return false
	}
	for _, st := range c.prog.Stmts {
		if !inThread(ir.StmtFunc(st)) {
			continue
		}
		t.inStmt[st.ID()] = true
		for _, u := range ir.Uses(st) {
			t.varRelevant[u.ID] = true
		}
		switch st := st.(type) {
		case *ir.Call:
			if st.Dst != nil {
				for _, callee := range c.g.Pre.CallTargets[st] {
					if callee.RetVar != nil {
						t.varRelevant[callee.RetVar.ID] = true
					}
				}
			}
		case *ir.Load:
			l := st
			c.g.Pre.PointsToVar(l.Addr).ForEach(func(o uint32) {
				t.loadsOfObj[o] = append(t.loadsOfObj[o], l)
			})
		}
	}
	for id, n := range c.g.Nodes {
		if !inThread(n.Func) {
			continue
		}
		t.inMem[id] = true
		if n.Kind == vfg.MStoreChi {
			o := uint32(n.Obj.ID)
			t.sliceChis = append(t.sliceChis, id)
			t.chisOfObj[o] = append(t.chisOfObj[o], id)
		}
	}
	objs := map[uint32]bool{}
	for o := range t.loadsOfObj {
		objs[o] = true
	}
	for o := range t.chisOfObj {
		objs[o] = true
	}
	t.absorbObjs = make([]uint32, 0, len(objs))
	for o := range objs {
		t.absorbObjs = append(t.absorbObjs, o)
	}
	sort.Slice(t.absorbObjs, func(i, j int) bool { return t.absorbObjs[i] < t.absorbObjs[j] })
}

// buildSyncs derives the exchange step's memory-node reconciliation list:
// nodes owned by several slices, and out-of-slice nodes with a def-use edge
// into some slice (the boundary frontier). Together they guarantee every
// in-slice transfer sees the global value of each direct input, which is
// what makes the converged union a post-fixpoint of the whole-program
// system (see DESIGN.md §16).
func (c *coordinator) buildSyncs() {
	needers := map[int]map[int]bool{}
	need := func(node, ti int) {
		if c.solvers[ti].inMem[node] {
			return
		}
		m := needers[node]
		if m == nil {
			m = map[int]bool{}
			needers[node] = m
		}
		m[ti] = true
	}
	for id, outs := range c.g.Out {
		for _, e := range outs {
			var consumer *ir.Function
			if e.ToMem >= 0 {
				consumer = c.g.Nodes[e.ToMem].Func
			} else if e.ToLoad != nil {
				consumer = ir.StmtFunc(e.ToLoad)
			} else {
				continue
			}
			if consumer == nil {
				need(id, 0)
				continue
			}
			for _, ti := range c.funcThreads[consumer] {
				need(id, ti)
			}
		}
	}
	for id, n := range c.g.Nodes {
		owners := c.funcThreads[n.Func]
		if n.Func == nil {
			owners = []int{0}
		}
		nd := needers[id]
		if len(owners) < 2 && len(nd) == 0 {
			continue
		}
		ms := memSync{node: id, owners: owners}
		if len(owners) >= 2 {
			ms.targets = append(ms.targets, owners...)
		}
		for ti := range nd {
			ms.targets = append(ms.targets, ti)
		}
		sort.Ints(ms.targets)
		c.memSyncs = append(c.memSyncs, ms)
	}
	sort.Slice(c.memSyncs, func(i, j int) bool { return c.memSyncs[i].node < c.memSyncs[j].node })
}

// buildGates caches gate(tp → tr): may thread tr observe stores published
// by thread tp? Same-thread interference needs tp to abstract several
// runtime threads (Multi) under every model — a runtime thread reading its
// own buffered writes sees program order even under PSO (store
// forwarding). Across threads the gate widens with the model: SC admits
// parallel peers, TSO additionally leaks buffered stores across
// happens-before edges, PSO admits everything.
func (c *coordinator) buildGates() {
	n := len(c.solvers)
	c.gateOK = make([][]bool, n)
	for i := range c.gateOK {
		c.gateOK[i] = make([]bool, n)
		tp := c.solvers[i].thread
		for j := range c.gateOK[i] {
			tr := c.solvers[j].thread
			switch {
			case tp == tr:
				c.gateOK[i][j] = tp.Multi
			case c.opt.MemModel == MemModelPSO:
				c.gateOK[i][j] = true
			case c.opt.MemModel == MemModelTSO:
				c.gateOK[i][j] = c.model.MayHappenInParallelThreads(tp, tr) ||
					c.model.HappensBefore(tp, tr)
			default: // sc
				c.gateOK[i][j] = c.model.MayHappenInParallelThreads(tp, tr)
			}
		}
	}
}

// run iterates rounds to the interference fixpoint: solve every thread's
// slice (concurrently unless Options.Sequential), then exchange global var
// unions, boundary/shared memory values and gated interference; stop when
// an exchange injects nothing new.
func (c *coordinator) run() error {
	for {
		if c.cancel.Cancelled() {
			return c.cancel.Err()
		}
		c.r.Rounds++
		t0 := time.Now()
		if c.opt.Sequential {
			for _, t := range c.solvers {
				if err := t.run(); err != nil {
					return err
				}
			}
		} else {
			var wg sync.WaitGroup
			for _, t := range c.solvers {
				wg.Add(1)
				go func(t *threadSolver) {
					defer wg.Done()
					t.err = t.run()
				}(t)
			}
			wg.Wait()
			for _, t := range c.solvers {
				if t.err != nil {
					return t.err
				}
			}
		}
		c.r.RoundWall = append(c.r.RoundWall, time.Since(t0))
		if !c.exchange() {
			return nil
		}
	}
}

// exchange is the sequential barrier between rounds. Every injection is a
// monotone union interned into the receiving thread's private interner, so
// the order of injections cannot change the fixpoint. It returns whether
// anything changed; a quiet exchange is the termination condition.
func (c *coordinator) exchange() bool {
	changed := false
	scratch := &pts.Set{}

	// Top-level variables are SSA and thread-global: every thread that
	// reads one adopts the union of all threads' values. Locality (a var
	// only one thread touches) falls out — the union equals the owner's
	// value and the length check skips the re-intern.
	for vi, v := range c.prog.Vars {
		scratch.Clear()
		for _, t := range c.solvers {
			if id := t.varIDs[vi]; id != engine.EmptySet {
				scratch.UnionWith(t.it.Set(id))
			}
		}
		if scratch.IsEmpty() {
			continue
		}
		glen := scratch.Len()
		for _, t := range c.solvers {
			if !t.varRelevant[vi] || t.it.Set(t.varIDs[vi]).Len() == glen {
				continue
			}
			t.varIDs[vi] = t.it.Intern(scratch)
			t.varChanged(v)
			changed = true
		}
	}

	// Shared and boundary memory nodes: reconcile each onto the owners'
	// union (local values are always subsets of it, so a length match
	// means equality).
	for i := range c.memSyncs {
		ms := &c.memSyncs[i]
		scratch.Clear()
		for _, ti := range ms.owners {
			if id := c.solvers[ti].memIDs[ms.node]; id != engine.EmptySet {
				scratch.UnionWith(c.solvers[ti].it.Set(id))
			}
		}
		if scratch.IsEmpty() {
			continue
		}
		glen := scratch.Len()
		for _, ti := range ms.targets {
			t := c.solvers[ti]
			if t.it.Set(t.memIDs[ms.node]).Len() == glen {
				continue
			}
			t.memIDs[ms.node] = t.it.Intern(scratch)
			for _, e := range c.g.Out[ms.node] {
				if e.ToMem >= 0 {
					t.pushMem(e.ToMem)
				} else if e.ToLoad != nil {
					t.pushStmt(e.ToLoad)
				}
			}
			changed = true
		}
	}

	// Interference: each thread publishes, per shared object, the union of
	// its store-chi values (everything it may ever have written there —
	// flow-sensitivity inside the thread, flow-insensitive publication, the
	// standard thread-modular abstraction). Receivers gated by the memory
	// model absorb the union at their loads and weak-update chis.
	pubs := make([]map[uint32]*pts.Set, len(c.solvers))
	for ti, t := range c.solvers {
		m := map[uint32]*pts.Set{}
		for _, nid := range t.sliceChis {
			id := t.memIDs[nid]
			if id == engine.EmptySet {
				continue
			}
			o := uint32(c.g.Nodes[nid].Obj.ID)
			// Thread-escape pruning: skip publications no receiver's gate
			// can absorb. The oracle's accessor attribution matches the
			// slice attribution (dead functions to main), so every gated
			// absorber of o is an accessor and the gate check below would
			// reject each of these pairs anyway.
			if c.opt.Escape != nil && !c.opt.Escape.InterferesUnder(ir.ObjID(o), c.opt.MemModel) {
				c.r.PrunedPubs++
				continue
			}
			if m[o] == nil {
				m[o] = &pts.Set{}
			}
			m[o].UnionWith(t.it.Set(id))
		}
		pubs[ti] = m
	}
	for ri, tr := range c.solvers {
		for _, o := range tr.absorbObjs {
			scratch.Clear()
			for pi := range c.solvers {
				if !c.gateOK[pi][ri] {
					continue
				}
				if s := pubs[pi][o]; s != nil {
					scratch.UnionWith(s)
				}
			}
			if scratch.IsEmpty() {
				continue
			}
			glen := scratch.Len()
			if cur, ok := tr.interIn[o]; ok && tr.it.Set(cur).Len() == glen {
				continue
			}
			tr.interIn[o] = tr.it.Intern(scratch)
			for _, l := range tr.loadsOfObj[o] {
				tr.pushStmt(l)
			}
			for _, nid := range tr.chisOfObj[o] {
				tr.pushMem(nid)
			}
			changed = true
		}
	}
	return changed
}

// snapshot composes the final result: per slot, the union of every
// thread's converged value, interned into the result's own canonical
// interner.
func (c *coordinator) snapshot() {
	it := c.r.intern
	scratch := &pts.Set{}
	for vi := range c.r.varIDs {
		scratch.Clear()
		for _, t := range c.solvers {
			if id := t.varIDs[vi]; id != engine.EmptySet {
				scratch.UnionWith(t.it.Set(id))
			}
		}
		if scratch.IsEmpty() {
			continue
		}
		id := it.Intern(scratch)
		c.r.varIDs[vi] = id
		c.r.varPts[vi] = it.Set(id)
	}
	for mi := range c.r.memIDs {
		scratch.Clear()
		for _, t := range c.solvers {
			if id := t.memIDs[mi]; id != engine.EmptySet {
				scratch.UnionWith(t.it.Set(id))
			}
		}
		if scratch.IsEmpty() {
			continue
		}
		id := it.Intern(scratch)
		c.r.memIDs[mi] = id
		c.r.memPts[mi] = it.Set(id)
	}
	c.r.NumThreads = len(c.solvers)
	for _, t := range c.solvers {
		c.r.Iterations += t.iterations
		c.r.ThreadPops = append(c.r.ThreadPops, t.wl.Pops())
		c.r.ThreadWall = append(c.r.ThreadWall, t.wall)
	}
}

func (t *threadSolver) stmtNode(st ir.Stmt) int { return t.c.numMem + int(st.ID()) }

// seedOrderEdges registers the full def-use structure with this thread's
// worklist so its SCC-topological priorities mirror fact flow; membership
// filtering happens at push time, so sharing the global edge set is safe.
func (t *threadSolver) seedOrderEdges() {
	c := t.c
	for id, outs := range c.g.Out {
		for _, e := range outs {
			if e.ToMem >= 0 {
				t.wl.AddEdge(id, e.ToMem)
			} else if e.ToLoad != nil {
				t.wl.AddEdge(id, t.stmtNode(e.ToLoad))
			}
		}
	}
	for _, st := range c.prog.Stmts {
		if v := ir.Def(st); v != nil {
			for _, u := range c.varUses[v.ID] {
				t.wl.AddEdge(t.stmtNode(st), t.stmtNode(u))
			}
		}
		switch st := st.(type) {
		case *ir.Ret:
			if st.Val != nil {
				if f := ir.StmtFunc(st); f != nil && f.RetVar != nil {
					for _, cl := range c.retUses[f.RetVar.ID] {
						t.wl.AddEdge(t.stmtNode(st), t.stmtNode(cl))
					}
				}
			}
		case *ir.Call:
			for _, callee := range c.g.Pre.CallTargets[st] {
				for _, p := range callee.Params {
					for _, u := range c.varUses[p.ID] {
						t.wl.AddEdge(t.stmtNode(st), t.stmtNode(u))
					}
				}
			}
		case *ir.Store:
			for _, id := range c.chiOfStore[st] {
				t.wl.AddEdge(t.stmtNode(st), id)
			}
		}
	}
}

func (t *threadSolver) pushStmt(st ir.Stmt) {
	if t.inStmt[st.ID()] {
		t.wl.Push(t.stmtNode(st))
	}
}

func (t *threadSolver) pushMem(id int) {
	if t.inMem[id] {
		t.wl.Push(id)
	}
}

func (t *threadSolver) varSet(v *ir.Var) *pts.Set {
	if v == nil {
		return t.emptySet
	}
	return t.it.Set(t.varIDs[v.ID])
}

func (t *threadSolver) varChanged(v *ir.Var) {
	for _, st := range t.c.varUses[v.ID] {
		t.pushStmt(st)
		if store, ok := st.(*ir.Store); ok {
			for _, id := range t.c.chiOfStore[store] {
				t.pushMem(id)
			}
		}
	}
	for _, cl := range t.c.retUses[v.ID] {
		t.pushStmt(cl)
	}
}

func (t *threadSolver) addVar(v *ir.Var, set engine.SetID) {
	if v == nil || set == engine.EmptySet {
		return
	}
	if u := t.it.Union(t.varIDs[v.ID], set); u != t.varIDs[v.ID] {
		t.varIDs[v.ID] = u
		t.varChanged(v)
	}
}

func (t *threadSolver) addVarObj(v *ir.Var, obj uint32) {
	if v == nil {
		return
	}
	if u := t.it.Add(t.varIDs[v.ID], obj); u != t.varIDs[v.ID] {
		t.varIDs[v.ID] = u
		t.varChanged(v)
	}
}

func (t *threadSolver) addMem(id int, set engine.SetID) {
	if set == engine.EmptySet {
		return
	}
	if u := t.it.Union(t.memIDs[id], set); u != t.memIDs[id] {
		t.memIDs[id] = u
		for _, e := range t.c.g.Out[id] {
			if e.ToMem >= 0 {
				t.pushMem(e.ToMem)
			} else if e.ToLoad != nil {
				t.pushStmt(e.ToLoad)
			}
		}
	}
}

// absorb unions this thread's interference environment for obj into memory
// node id — the thread-modular stand-in for fsam's gated [THREAD-VF] edges,
// applied at exactly the program points those edges target.
func (t *threadSolver) absorb(id int, obj uint32) {
	if inter, ok := t.interIn[obj]; ok {
		t.addMem(id, inter)
	}
}

// seed schedules every in-slice statement and memory node once.
func (t *threadSolver) seed() {
	for _, st := range t.c.prog.Stmts {
		t.pushStmt(st)
	}
	for id := range t.c.g.Nodes {
		t.pushMem(id)
	}
}

// run drains this thread's worklist; the pop is the cancellation poll.
func (t *threadSolver) run() error {
	t0 := time.Now()
	defer func() { t.wall += time.Since(t0) }()
	for {
		if t.cancel.Cancelled() {
			return t.cancel.Err()
		}
		n, ok := t.wl.Pop()
		if !ok {
			return nil
		}
		t.iterations++
		if n < t.c.numMem {
			t.processMem(n)
		} else {
			t.processStmt(t.c.prog.Stmts[n-t.c.numMem])
		}
	}
}

// processStmt applies the top-level rules; identical to the whole-program
// solver except that loads additionally absorb gated interference.
func (t *threadSolver) processStmt(st ir.Stmt) {
	c := t.c
	switch st := st.(type) {
	case *ir.AddrOf:
		t.addVarObj(st.Dst, uint32(st.Obj.ID)) // P-ADDR

	case *ir.Copy:
		t.addVar(st.Dst, t.varIDs[st.Src.ID]) // P-COPY

	case *ir.Phi:
		for _, in := range st.Incoming { // P-PHI
			if in != nil {
				t.addVar(st.Dst, t.varIDs[in.ID])
			}
		}

	case *ir.Gep:
		base := t.varSet(st.Base)
		base.ForEach(func(id uint32) {
			fo := c.prog.FieldObj(c.prog.Objects[id], st.Field)
			t.addVarObj(st.Dst, uint32(fo.ID))
		})

	case *ir.Load: // P-LOAD
		addrSet := t.varSet(st.Addr)
		for _, e := range c.g.LoadIn[st] {
			def := c.g.Nodes[e.ToMem]
			if e.Ungated || addrSet.Has(uint32(def.Obj.ID)) {
				t.addVar(st.Dst, t.memIDs[e.ToMem])
			}
		}
		if len(t.interIn) > 0 {
			addrSet.ForEach(func(o uint32) {
				if inter, ok := t.interIn[o]; ok {
					t.addVar(st.Dst, inter)
				}
			})
		}

	case *ir.Store:
		for _, id := range c.chiOfStore[st] {
			t.pushMem(id)
		}

	case *ir.Call:
		for _, callee := range c.g.Pre.CallTargets[st] {
			n := len(st.Args)
			if len(callee.Params) < n {
				n = len(callee.Params)
			}
			for i := 0; i < n; i++ {
				t.addVar(callee.Params[i], t.varIDs[st.Args[i].ID])
			}
			if st.Dst != nil && callee.RetVar != nil {
				t.addVar(st.Dst, t.varIDs[callee.RetVar.ID])
			}
		}

	case *ir.Ret:
		if st.Val != nil {
			if f := ir.StmtFunc(st); f != nil && f.RetVar != nil {
				t.addVar(f.RetVar, t.varIDs[st.Val.ID])
			}
		}

	case *ir.Fork:
		if st.Dst != nil {
			t.addVarObj(st.Dst, uint32(st.Handle.ID))
		}
		for _, routine := range c.g.Pre.ForkTargets[st] {
			if st.Arg != nil && len(routine.Params) > 0 {
				t.addVar(routine.Params[0], t.varIDs[st.Arg.ID])
			}
		}
	}
}

// processMem applies the memory transfer at one in-slice MemNode; identical
// to the whole-program solver except that weak-update and pass-through
// store chis absorb gated interference. Strong updates do not — fsam's
// [THREAD-VF] edges likewise never feed a strongly-updated chi.
func (t *threadSolver) processMem(id int) {
	n := t.c.g.Nodes[id]
	switch n.Kind {
	case vfg.MStoreChi:
		st := n.Stmt.(*ir.Store)
		addrSet := t.varSet(st.Addr)
		objID := uint32(n.Obj.ID)
		preAliased := t.c.g.Pre.PointsToVar(st.Addr).Has(objID)

		if !preAliased {
			t.addMem(id, t.varIDs[st.Src.ID])
			t.mergeIn(id)
			t.absorb(id, objID)
			return
		}
		if addrSet.IsEmpty() {
			return
		}
		if addrSet.Has(objID) {
			t.addMem(id, t.varIDs[st.Src.ID]) // P-STORE
			single, ok := addrSet.Single()
			strong := ok && single == objID && t.c.singletons.Has(objID)
			if !strong {
				t.mergeIn(id) // P-WU
				t.absorb(id, objID)
			}
			return
		}
		t.mergeIn(id) // pass-through
		t.absorb(id, objID)

	default:
		t.mergeIn(id)
	}
}

func (t *threadSolver) mergeIn(id int) {
	for _, in := range t.c.g.In[id] {
		t.addMem(id, t.memIDs[in])
	}
}

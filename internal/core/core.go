// Package core implements FSAM's sparse flow-sensitive points-to solver
// (paper Section 3.4, Figure 10). Points-to facts propagate only along the
// pre-computed def-use graph: top-level variables are in SSA form so their
// flows are direct, and address-taken objects flow between memory-definition
// nodes (store/call/join chis, entry chis, exit phis, memory phis) built by
// the vfg package.
//
// Rules: P-ADDR, P-COPY, P-PHI, P-LOAD, P-STORE and P-SU/WU. The load and
// store rules are gated by the solver's own (more precise) points-to sets of
// the address operands, so refinement over the pre-analysis kills spurious
// flows; strong updates apply when a store's address resolves to exactly one
// singleton object.
//
// The solver runs on the shared engine layer: points-to sets are interned
// (hash-consed) so identical sets are stored once, and memory nodes and
// statements share one SCC-topologically prioritized worklist seeded with
// the def-use edges, so producers are (heuristically) solved before their
// consumers.
package core

import (
	"context"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/pts"
	"repro/internal/threads"
	"repro/internal/vfg"
)

// Result holds the solved flow-sensitive points-to information.
type Result struct {
	Prog  *ir.Program
	Graph *vfg.Graph
	Model *threads.Model

	// varPts[v] is the points-to set of top-level variable v (SSA: one set
	// per variable is flow-sensitive). memPts[n] is the points-to set of
	// MemNode n's object after the definition the node represents. Both
	// hold canonical interned sets shared across slots — read-only.
	varPts []*pts.Set
	memPts []*pts.Set
	// varIDs/memIDs are the interned handles behind varPts/memPts.
	varIDs []engine.SetID
	memIDs []engine.SetID
	intern *engine.Interner

	singletons *pts.Set

	// Iterations counts worklist pops (diagnostics and benchmarks).
	Iterations int
}

// PointsToVar returns the points-to set (ObjIDs) of v; never nil.
func (r *Result) PointsToVar(v *ir.Var) *pts.Set {
	if v == nil || int(v.ID) >= len(r.varPts) || r.varPts[v.ID] == nil {
		return &pts.Set{}
	}
	return r.varPts[v.ID]
}

// PointsToMem returns the points-to set at MemNode id; never nil.
func (r *Result) PointsToMem(id int) *pts.Set {
	if id < 0 || id >= len(r.memPts) || r.memPts[id] == nil {
		return &pts.Set{}
	}
	return r.memPts[id]
}

// ObjAtExit returns the points-to set of obj at f's exit (the merged final
// state), or an empty set when f never defines obj.
func (r *Result) ObjAtExit(f *ir.Function, obj *ir.Object) *pts.Set {
	if id := r.Graph.ExitPhiNode(f, obj); id >= 0 {
		return r.PointsToMem(id)
	}
	return &pts.Set{}
}

// Obj resolves an ObjID from a points-to set.
func (r *Result) Obj(id uint32) *ir.Object { return r.Prog.Objects[id] }

// InternStats returns sharing statistics over the stored points-to slots.
func (r *Result) InternStats() *engine.RefStats {
	rs := r.intern.NewRefStats()
	for _, id := range r.varIDs {
		rs.Ref(id)
	}
	for _, id := range r.memIDs {
		rs.Ref(id)
	}
	return rs
}

// Bytes reports the memory footprint of the points-to sets (the quantity
// Table 2 reports, dominated by per-def points-to storage): each canonical
// interned set counted once plus one 4-byte handle per slot, plus the
// def-use graph.
func (r *Result) Bytes() uint64 {
	rs := r.InternStats()
	return rs.UniqueBytes + uint64(rs.Refs)*4 + r.Graph.Bytes()
}

// solver is the in-flight state.
type solver struct {
	r  *Result
	g  *vfg.Graph
	it *engine.Interner

	// Combined worklist node space: MemNode IDs in [0, numMem), statement
	// st at numMem + st.ID().
	wl     *engine.Worklist
	numMem int

	// varUses[v] lists statements to re-process when pt(v) changes.
	varUses map[ir.VarID][]ir.Stmt
	// chiOfStore lists the StoreChi node IDs of each store (re-gated when
	// the address set changes).
	chiOfStore map[*ir.Store][]int

	// retUses[f.RetVar] lists call statements consuming f's return.
	retUses map[ir.VarID][]ir.Stmt

	emptySet *pts.Set
	cancel   *engine.Canceller
}

// Solve runs the sparse analysis over a built def-use graph.
func Solve(model *threads.Model, g *vfg.Graph) *Result {
	r, _ := SolveCtx(context.Background(), model, g)
	return r
}

// SolveCtx runs the sparse analysis under a context. On cancellation it
// returns (nil, ctx.Err()); the solve loop polls at its worklist pop.
func SolveCtx(ctx context.Context, model *threads.Model, g *vfg.Graph) (*Result, error) {
	it := engine.NewInterner()
	r := &Result{
		Prog:       model.Prog,
		Graph:      g,
		Model:      model,
		varPts:     make([]*pts.Set, len(model.Prog.Vars)),
		memPts:     make([]*pts.Set, len(g.Nodes)),
		varIDs:     make([]engine.SetID, len(model.Prog.Vars)),
		memIDs:     make([]engine.SetID, len(g.Nodes)),
		intern:     it,
		singletons: model.SingletonObjects(),
	}
	s := &solver{
		r:          r,
		g:          g,
		it:         it,
		numMem:     len(g.Nodes),
		wl:         engine.NewWorklist(len(g.Nodes) + len(model.Prog.Stmts)),
		varUses:    map[ir.VarID][]ir.Stmt{},
		chiOfStore: map[*ir.Store][]int{},
		retUses:    map[ir.VarID][]ir.Stmt{},
		emptySet:   &pts.Set{},
		cancel:     engine.NewLimitedCanceller(ctx),
	}
	s.buildIndexes()
	s.seed()
	if err := s.run(); err != nil {
		return nil, err
	}
	s.snapshot()
	return r, nil
}

func (s *solver) stmtNode(st ir.Stmt) int { return s.numMem + int(st.ID()) }

func (s *solver) buildIndexes() {
	prog := s.r.Prog
	for _, st := range prog.Stmts {
		for _, u := range ir.Uses(st) {
			s.varUses[u.ID] = append(s.varUses[u.ID], st)
		}
		if c, ok := st.(*ir.Call); ok && c.Dst != nil {
			for _, callee := range s.g.Pre.CallTargets[c] {
				if callee.RetVar != nil {
					s.retUses[callee.RetVar.ID] = append(s.retUses[callee.RetVar.ID], c)
				}
			}
		}
	}
	for _, n := range s.g.Nodes {
		if n.Kind == vfg.MStoreChi {
			st := n.Stmt.(*ir.Store)
			s.chiOfStore[st] = append(s.chiOfStore[st], n.ID)
		}
	}
	s.seedOrderEdges()
}

// seedOrderEdges registers the def-use structure with the worklist so its
// SCC-topological priorities mirror actual fact flow: memory edges from the
// vfg graph, SSA def→use edges between statements, call/return bindings,
// and store→chi re-gating.
func (s *solver) seedOrderEdges() {
	prog := s.r.Prog
	for id, outs := range s.g.Out {
		for _, e := range outs {
			if e.ToMem >= 0 {
				s.wl.AddEdge(id, e.ToMem)
			} else if e.ToLoad != nil {
				s.wl.AddEdge(id, s.stmtNode(e.ToLoad))
			}
		}
	}
	for _, st := range prog.Stmts {
		if v := ir.Def(st); v != nil {
			for _, u := range s.varUses[v.ID] {
				s.wl.AddEdge(s.stmtNode(st), s.stmtNode(u))
			}
		}
		switch st := st.(type) {
		case *ir.Ret:
			if st.Val != nil {
				if f := ir.StmtFunc(st); f != nil && f.RetVar != nil {
					for _, c := range s.retUses[f.RetVar.ID] {
						s.wl.AddEdge(s.stmtNode(st), s.stmtNode(c))
					}
				}
			}
		case *ir.Call:
			for _, callee := range s.g.Pre.CallTargets[st] {
				for _, p := range callee.Params {
					for _, u := range s.varUses[p.ID] {
						s.wl.AddEdge(s.stmtNode(st), s.stmtNode(u))
					}
				}
			}
		case *ir.Store:
			for _, id := range s.chiOfStore[st] {
				s.wl.AddEdge(s.stmtNode(st), id)
			}
		}
	}
}

func (s *solver) pushStmt(st ir.Stmt) { s.wl.Push(s.stmtNode(st)) }

func (s *solver) pushMem(id int) { s.wl.Push(id) }

// varSet returns the current canonical points-to set of v (read-only).
func (s *solver) varSet(v *ir.Var) *pts.Set {
	if v == nil {
		return s.emptySet
	}
	return s.it.Set(s.r.varIDs[v.ID])
}

// varChanged schedules everything depending on v.
func (s *solver) varChanged(v *ir.Var) {
	for _, st := range s.varUses[v.ID] {
		s.pushStmt(st)
		// A store's chis re-gate when its address or source changes.
		if store, ok := st.(*ir.Store); ok {
			for _, id := range s.chiOfStore[store] {
				s.pushMem(id)
			}
		}
	}
	for _, c := range s.retUses[v.ID] {
		s.pushStmt(c)
	}
}

// addVar unions set into pt(v), scheduling dependents on change.
func (s *solver) addVar(v *ir.Var, set engine.SetID) {
	if v == nil || set == engine.EmptySet {
		return
	}
	if u := s.it.Union(s.r.varIDs[v.ID], set); u != s.r.varIDs[v.ID] {
		s.r.varIDs[v.ID] = u
		s.varChanged(v)
	}
}

func (s *solver) addVarObj(v *ir.Var, obj uint32) {
	if v == nil {
		return
	}
	if u := s.it.Add(s.r.varIDs[v.ID], obj); u != s.r.varIDs[v.ID] {
		s.r.varIDs[v.ID] = u
		s.varChanged(v)
	}
}

// addMem unions set into a MemNode's points-to, scheduling successors.
func (s *solver) addMem(id int, set engine.SetID) {
	if set == engine.EmptySet {
		return
	}
	if u := s.it.Union(s.r.memIDs[id], set); u != s.r.memIDs[id] {
		s.r.memIDs[id] = u
		for _, e := range s.g.Out[id] {
			if e.ToMem >= 0 {
				s.pushMem(e.ToMem)
			} else if e.ToLoad != nil {
				s.pushStmt(e.ToLoad)
			}
		}
	}
}

// seed schedules every statement and memory node once.
func (s *solver) seed() {
	for _, st := range s.r.Prog.Stmts {
		s.pushStmt(st)
	}
	for id := range s.g.Nodes {
		s.pushMem(id)
	}
}

// run drains the worklist; the pop is the cancellation poll point.
func (s *solver) run() error {
	for {
		if s.cancel.Cancelled() {
			return s.cancel.Err()
		}
		n, ok := s.wl.Pop()
		if !ok {
			break
		}
		s.r.Iterations++
		if n < s.numMem {
			s.processMem(n)
		} else {
			s.processStmt(s.r.Prog.Stmts[n-s.numMem])
		}
	}
	return nil
}

// snapshot materializes the interned handles into the canonical-set slices
// the Result accessors expose.
func (s *solver) snapshot() {
	for i, id := range s.r.varIDs {
		if id != engine.EmptySet {
			s.r.varPts[i] = s.it.Set(id)
		}
	}
	for i, id := range s.r.memIDs {
		if id != engine.EmptySet {
			s.r.memPts[i] = s.it.Set(id)
		}
	}
}

// processStmt applies the top-level rules (P-ADDR, P-COPY, P-PHI, P-LOAD's
// variable side, call/return copies, gep field addressing).
func (s *solver) processStmt(st ir.Stmt) {
	r := s.r
	switch st := st.(type) {
	case *ir.AddrOf:
		s.addVarObj(st.Dst, uint32(st.Obj.ID)) // P-ADDR

	case *ir.Copy:
		s.addVar(st.Dst, r.varIDs[st.Src.ID]) // P-COPY

	case *ir.Phi:
		for _, in := range st.Incoming { // P-PHI
			if in != nil {
				s.addVar(st.Dst, r.varIDs[in.ID])
			}
		}

	case *ir.Gep:
		base := s.varSet(st.Base)
		base.ForEach(func(id uint32) {
			fo := r.Prog.FieldObj(r.Prog.Objects[id], st.Field)
			s.addVarObj(st.Dst, uint32(fo.ID))
		})

	case *ir.Load: // P-LOAD
		addrSet := s.varSet(st.Addr)
		for _, e := range s.g.LoadIn[st] {
			def := s.g.Nodes[e.ToMem]
			if e.Ungated || addrSet.Has(uint32(def.Obj.ID)) {
				s.addVar(st.Dst, r.memIDs[e.ToMem])
			}
		}

	case *ir.Store:
		// P-STORE/P-SU/WU are applied at the store's chi nodes; schedule
		// them (addr/src changes reach here via varUses).
		for _, id := range s.chiOfStore[st] {
			s.pushMem(id)
		}

	case *ir.Call:
		for _, callee := range s.g.Pre.CallTargets[st] {
			n := len(st.Args)
			if len(callee.Params) < n {
				n = len(callee.Params)
			}
			for i := 0; i < n; i++ {
				s.addVar(callee.Params[i], r.varIDs[st.Args[i].ID])
			}
			if st.Dst != nil && callee.RetVar != nil {
				s.addVar(st.Dst, r.varIDs[callee.RetVar.ID])
			}
		}

	case *ir.Ret:
		if st.Val != nil {
			if f := ir.StmtFunc(st); f != nil && f.RetVar != nil {
				s.addVar(f.RetVar, r.varIDs[st.Val.ID])
			}
		}

	case *ir.Fork:
		if st.Dst != nil {
			s.addVarObj(st.Dst, uint32(st.Handle.ID))
		}
		for _, routine := range s.g.Pre.ForkTargets[st] {
			if st.Arg != nil && len(routine.Params) > 0 {
				s.addVar(routine.Params[0], r.varIDs[st.Arg.ID])
			}
		}
	}
}

// processMem applies the memory transfer at one MemNode.
func (s *solver) processMem(id int) {
	r := s.r
	n := s.g.Nodes[id]
	switch n.Kind {
	case vfg.MStoreChi:
		st := n.Stmt.(*ir.Store)
		addrSet := s.varSet(st.Addr)
		objID := uint32(n.Obj.ID)
		preAliased := s.g.Pre.PointsToVar(st.Addr).Has(objID)

		if !preAliased {
			// Ablation chi (No-Value-Flow): an unconditional weak write so
			// the configuration pays the spurious propagation cost.
			s.addMem(id, r.varIDs[st.Src.ID])
			s.mergeIn(id)
			return
		}
		// Figure 10 kill(s,p): pt(addr) = ∅ kills everything (the store
		// cannot execute soundly); a singleton {obj} kills the incoming
		// value (strong update, P-SU); otherwise the old value survives
		// (weak update, P-WU). Every branch grows monotonically as the
		// address and source sets grow, so recomputation stays sound.
		if addrSet.IsEmpty() {
			return
		}
		if addrSet.Has(objID) {
			s.addMem(id, r.varIDs[st.Src.ID]) // P-STORE
			single, ok := addrSet.Single()
			strong := ok && single == objID && s.r.singletons.Has(objID)
			if !strong {
				s.mergeIn(id)
			}
			return
		}
		// The store writes other objects only: obj passes through.
		s.mergeIn(id)

	default:
		// Entry chis, call/join chis, exit phis and memory phis merge their
		// incoming definitions.
		s.mergeIn(id)
	}
}

// mergeIn unions all incoming memory definitions into node id.
func (s *solver) mergeIn(id int) {
	for _, in := range s.g.In[id] {
		s.addMem(id, s.r.memIDs[in])
	}
}

// Package core implements FSAM's sparse flow-sensitive points-to solver
// (paper Section 3.4, Figure 10). Points-to facts propagate only along the
// pre-computed def-use graph: top-level variables are in SSA form so their
// flows are direct, and address-taken objects flow between memory-definition
// nodes (store/call/join chis, entry chis, exit phis, memory phis) built by
// the vfg package.
//
// Rules: P-ADDR, P-COPY, P-PHI, P-LOAD, P-STORE and P-SU/WU. The load and
// store rules are gated by the solver's own (more precise) points-to sets of
// the address operands, so refinement over the pre-analysis kills spurious
// flows; strong updates apply when a store's address resolves to exactly one
// singleton object.
package core

import (
	"repro/internal/ir"
	"repro/internal/pts"
	"repro/internal/threads"
	"repro/internal/vfg"
)

// Result holds the solved flow-sensitive points-to information.
type Result struct {
	Prog  *ir.Program
	Graph *vfg.Graph
	Model *threads.Model

	// varPts[v] is the points-to set of top-level variable v (SSA: one set
	// per variable is flow-sensitive).
	varPts []*pts.Set
	// memPts[n] is the points-to set of MemNode n's object after the
	// definition the node represents.
	memPts []*pts.Set

	singletons *pts.Set

	// Iterations counts worklist pops (diagnostics and benchmarks).
	Iterations int
}

// PointsToVar returns the points-to set (ObjIDs) of v; never nil.
func (r *Result) PointsToVar(v *ir.Var) *pts.Set {
	if v == nil || int(v.ID) >= len(r.varPts) || r.varPts[v.ID] == nil {
		return &pts.Set{}
	}
	return r.varPts[v.ID]
}

// PointsToMem returns the points-to set at MemNode id; never nil.
func (r *Result) PointsToMem(id int) *pts.Set {
	if id < 0 || id >= len(r.memPts) || r.memPts[id] == nil {
		return &pts.Set{}
	}
	return r.memPts[id]
}

// ObjAtExit returns the points-to set of obj at f's exit (the merged final
// state), or an empty set when f never defines obj.
func (r *Result) ObjAtExit(f *ir.Function, obj *ir.Object) *pts.Set {
	if id := r.Graph.ExitPhiNode(f, obj); id >= 0 {
		return r.PointsToMem(id)
	}
	return &pts.Set{}
}

// Obj resolves an ObjID from a points-to set.
func (r *Result) Obj(id uint32) *ir.Object { return r.Prog.Objects[id] }

// Bytes reports the memory footprint of the points-to sets (the quantity
// Table 2 reports, dominated by per-def points-to storage).
func (r *Result) Bytes() uint64 {
	var total uint64
	for _, s := range r.varPts {
		if s != nil {
			total += s.Bytes()
		}
	}
	for _, s := range r.memPts {
		if s != nil {
			total += s.Bytes()
		}
	}
	return total + r.Graph.Bytes()
}

// solver is the in-flight state.
type solver struct {
	r *Result
	g *vfg.Graph

	// varUses[v] lists statements to re-process when pt(v) changes.
	varUses map[ir.VarID][]ir.Stmt
	// chiOfStore lists the StoreChi node IDs of each store (re-gated when
	// the address set changes).
	chiOfStore map[*ir.Store][]int

	// callersOfRet[f.RetVar] lists call statements consuming f's return.
	retUses map[ir.VarID][]ir.Stmt

	inWorkStmt map[ir.StmtID]bool
	workStmt   []ir.Stmt
	inWorkMem  []bool
	workMem    []int
}

// Solve runs the sparse analysis over a built def-use graph.
func Solve(model *threads.Model, g *vfg.Graph) *Result {
	r := &Result{
		Prog:       model.Prog,
		Graph:      g,
		Model:      model,
		varPts:     make([]*pts.Set, len(model.Prog.Vars)),
		memPts:     make([]*pts.Set, len(g.Nodes)),
		singletons: model.SingletonObjects(),
	}
	s := &solver{
		r:          r,
		g:          g,
		varUses:    map[ir.VarID][]ir.Stmt{},
		chiOfStore: map[*ir.Store][]int{},
		retUses:    map[ir.VarID][]ir.Stmt{},
		inWorkStmt: map[ir.StmtID]bool{},
		inWorkMem:  make([]bool, len(g.Nodes)),
	}
	s.buildIndexes()
	s.seed()
	s.run()
	return r
}

func (s *solver) buildIndexes() {
	prog := s.r.Prog
	for _, st := range prog.Stmts {
		for _, u := range ir.Uses(st) {
			s.varUses[u.ID] = append(s.varUses[u.ID], st)
		}
		if c, ok := st.(*ir.Call); ok && c.Dst != nil {
			for _, callee := range s.g.Pre.CallTargets[c] {
				if callee.RetVar != nil {
					s.retUses[callee.RetVar.ID] = append(s.retUses[callee.RetVar.ID], c)
				}
			}
		}
	}
	for _, n := range s.g.Nodes {
		if n.Kind == vfg.MStoreChi {
			st := n.Stmt.(*ir.Store)
			s.chiOfStore[st] = append(s.chiOfStore[st], n.ID)
		}
	}
}

func (s *solver) pushStmt(st ir.Stmt) {
	if !s.inWorkStmt[st.ID()] {
		s.inWorkStmt[st.ID()] = true
		s.workStmt = append(s.workStmt, st)
	}
}

func (s *solver) pushMem(id int) {
	if !s.inWorkMem[id] {
		s.inWorkMem[id] = true
		s.workMem = append(s.workMem, id)
	}
}

// varChanged schedules everything depending on v.
func (s *solver) varChanged(v *ir.Var) {
	for _, st := range s.varUses[v.ID] {
		s.pushStmt(st)
		// A store's chis re-gate when its address or source changes.
		if store, ok := st.(*ir.Store); ok {
			for _, id := range s.chiOfStore[store] {
				s.pushMem(id)
			}
		}
	}
	for _, c := range s.retUses[v.ID] {
		s.pushStmt(c)
	}
}

// addVar unions set into pt(v), scheduling dependents on change.
func (s *solver) addVar(v *ir.Var, set *pts.Set) {
	if v == nil || set == nil || set.IsEmpty() {
		return
	}
	p := s.r.varPts[v.ID]
	if p == nil {
		p = &pts.Set{}
		s.r.varPts[v.ID] = p
	}
	if p.UnionWith(set) {
		s.varChanged(v)
	}
}

func (s *solver) addVarObj(v *ir.Var, obj uint32) {
	if v == nil {
		return
	}
	p := s.r.varPts[v.ID]
	if p == nil {
		p = &pts.Set{}
		s.r.varPts[v.ID] = p
	}
	if p.Add(obj) {
		s.varChanged(v)
	}
}

// addMem unions set into a MemNode's points-to, scheduling successors.
func (s *solver) addMem(id int, set *pts.Set) {
	if set == nil || set.IsEmpty() {
		return
	}
	p := s.r.memPts[id]
	if p == nil {
		p = &pts.Set{}
		s.r.memPts[id] = p
	}
	if p.UnionWith(set) {
		for _, e := range s.g.Out[id] {
			if e.ToMem >= 0 {
				s.pushMem(e.ToMem)
			} else if e.ToLoad != nil {
				s.pushStmt(e.ToLoad)
			}
		}
	}
}

// seed schedules every statement and memory node once.
func (s *solver) seed() {
	for _, st := range s.r.Prog.Stmts {
		s.pushStmt(st)
	}
	for id := range s.g.Nodes {
		s.pushMem(id)
	}
}

func (s *solver) run() {
	for len(s.workStmt) > 0 || len(s.workMem) > 0 {
		for len(s.workMem) > 0 {
			id := s.workMem[len(s.workMem)-1]
			s.workMem = s.workMem[:len(s.workMem)-1]
			s.inWorkMem[id] = false
			s.r.Iterations++
			s.processMem(id)
		}
		for len(s.workStmt) > 0 {
			st := s.workStmt[len(s.workStmt)-1]
			s.workStmt = s.workStmt[:len(s.workStmt)-1]
			s.inWorkStmt[st.ID()] = false
			s.r.Iterations++
			s.processStmt(st)
		}
	}
}

// processStmt applies the top-level rules (P-ADDR, P-COPY, P-PHI, P-LOAD's
// variable side, call/return copies, gep field addressing).
func (s *solver) processStmt(st ir.Stmt) {
	r := s.r
	switch st := st.(type) {
	case *ir.AddrOf:
		s.addVarObj(st.Dst, uint32(st.Obj.ID)) // P-ADDR

	case *ir.Copy:
		s.addVar(st.Dst, r.PointsToVar(st.Src)) // P-COPY

	case *ir.Phi:
		for _, in := range st.Incoming { // P-PHI
			if in != nil {
				s.addVar(st.Dst, r.PointsToVar(in))
			}
		}

	case *ir.Gep:
		base := r.PointsToVar(st.Base)
		base.ForEach(func(id uint32) {
			fo := r.Prog.FieldObj(r.Prog.Objects[id], st.Field)
			s.addVarObj(st.Dst, uint32(fo.ID))
		})

	case *ir.Load: // P-LOAD
		addrSet := r.PointsToVar(st.Addr)
		for _, e := range s.g.LoadIn[st] {
			def := s.g.Nodes[e.ToMem]
			if e.Ungated || addrSet.Has(uint32(def.Obj.ID)) {
				s.addVar(st.Dst, r.PointsToMem(e.ToMem))
			}
		}

	case *ir.Store:
		// P-STORE/P-SU/WU are applied at the store's chi nodes; schedule
		// them (addr/src changes reach here via varUses).
		for _, id := range s.chiOfStore[st] {
			s.pushMem(id)
		}

	case *ir.Call:
		for _, callee := range s.g.Pre.CallTargets[st] {
			n := len(st.Args)
			if len(callee.Params) < n {
				n = len(callee.Params)
			}
			for i := 0; i < n; i++ {
				s.addVar(callee.Params[i], r.PointsToVar(st.Args[i]))
			}
			if st.Dst != nil && callee.RetVar != nil {
				s.addVar(st.Dst, r.PointsToVar(callee.RetVar))
			}
		}

	case *ir.Ret:
		if st.Val != nil {
			if f := ir.StmtFunc(st); f != nil && f.RetVar != nil {
				s.addVar(f.RetVar, r.PointsToVar(st.Val))
			}
		}

	case *ir.Fork:
		if st.Dst != nil {
			s.addVarObj(st.Dst, uint32(st.Handle.ID))
		}
		for _, routine := range s.g.Pre.ForkTargets[st] {
			if st.Arg != nil && len(routine.Params) > 0 {
				s.addVar(routine.Params[0], r.PointsToVar(st.Arg))
			}
		}
	}
}

// processMem applies the memory transfer at one MemNode.
func (s *solver) processMem(id int) {
	r := s.r
	n := s.g.Nodes[id]
	switch n.Kind {
	case vfg.MStoreChi:
		st := n.Stmt.(*ir.Store)
		addrSet := r.PointsToVar(st.Addr)
		objID := uint32(n.Obj.ID)
		preAliased := s.g.Pre.PointsToVar(st.Addr).Has(objID)

		if !preAliased {
			// Ablation chi (No-Value-Flow): an unconditional weak write so
			// the configuration pays the spurious propagation cost.
			s.addMem(id, r.PointsToVar(st.Src))
			s.mergeIn(id)
			return
		}
		// Figure 10 kill(s,p): pt(addr) = ∅ kills everything (the store
		// cannot execute soundly); a singleton {obj} kills the incoming
		// value (strong update, P-SU); otherwise the old value survives
		// (weak update, P-WU). Every branch grows monotonically as the
		// address and source sets grow, so recomputation stays sound.
		if addrSet.IsEmpty() {
			return
		}
		if addrSet.Has(objID) {
			s.addMem(id, r.PointsToVar(st.Src)) // P-STORE
			single, ok := addrSet.Single()
			strong := ok && single == objID && s.r.singletons.Has(objID)
			if !strong {
				s.mergeIn(id)
			}
			return
		}
		// The store writes other objects only: obj passes through.
		s.mergeIn(id)

	default:
		// Entry chis, call/join chis, exit phis and memory phis merge their
		// incoming definitions.
		s.mergeIn(id)
	}
}

// mergeIn unions all incoming memory definitions into node id.
func (s *solver) mergeIn(id int) {
	for _, in := range s.g.In[id] {
		s.addMem(id, s.r.PointsToMem(in))
	}
}

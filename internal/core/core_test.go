package core_test

import (
	"testing"

	fsam "repro"
)

// pt analyzes src and returns the exit points-to of a global.
func pt(t *testing.T, src, global string) []string {
	t.Helper()
	a, err := fsam.AnalyzeSource("t.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	got, err := a.PointsToGlobal(global)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func want(t *testing.T, got []string, objs ...string) {
	t.Helper()
	if len(got) != len(objs) {
		t.Errorf("got %v, want %v", got, objs)
		return
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Errorf("got %v, want %v", got, objs)
			return
		}
	}
}

func TestStrongUpdateKillsOld(t *testing.T) {
	want(t, pt(t, `
int x; int y; int z;
int *p; int *c;
int main() {
	p = &x;
	*p = &y;
	*p = &z;
	c = *p;
	return 0;
}
`, "c"), "z")
}

func TestWeakUpdateOnHeap(t *testing.T) {
	// Heap objects are not singletons: both values survive.
	got := pt(t, `
int y; int z;
int **p; int *c;
int main() {
	p = malloc();
	*p = &y;
	*p = &z;
	c = *p;
	return 0;
}
`, "c")
	want(t, got, "y", "z")
}

func TestWeakUpdateOnAmbiguousTarget(t *testing.T) {
	// pt(p) has two targets: stores are weak, both globals keep both.
	got := pt(t, `
int a; int b2; int y; int z;
int *p; int *c; int cond;
int main() {
	if (cond > 0) { p = &a; } else { p = &b2; }
	*p = &y;
	*p = &z;
	c = *p;
	return 0;
}
`, "c")
	want(t, got, "y", "z")
}

func TestBranchMerging(t *testing.T) {
	got := pt(t, `
int x; int y; int z;
int *p; int *c; int cond;
int main() {
	p = &x;
	if (cond > 0) {
		*p = &y;
	} else {
		*p = &z;
	}
	c = *p;
	return 0;
}
`, "c")
	want(t, got, "y", "z")
}

func TestLoopFixpoint(t *testing.T) {
	got := pt(t, `
int x; int y; int z;
int *p; int *c; int i;
int main() {
	p = &x;
	*p = &y;
	i = 0;
	while (i < 10) {
		c = *p;
		*p = &z;
		i = i + 1;
	}
	return 0;
}
`, "c")
	// First iteration reads y, later iterations read z.
	want(t, got, "y", "z")
}

func TestInterproceduralFlow(t *testing.T) {
	want(t, pt(t, `
int x; int y;
int *g;
void set(int *v) {
	g = v;
}
int main() {
	set(&x);
	return 0;
}
`, "g"), "x")
}

func TestReturnValueFlow(t *testing.T) {
	want(t, pt(t, `
int x;
int *g;
int *make() { return &x; }
int main() {
	g = make();
	return 0;
}
`, "g"), "x")
}

func TestFunctionPointerCall(t *testing.T) {
	got := pt(t, `
int x; int y;
int *g;
void setX() { g = &x; }
void setY() { g = &y; }
void *fp;
int cond;
int main() {
	if (cond > 0) { fp = setX; } else { fp = setY; }
	fp();
	return 0;
}
`, "g")
	want(t, got, "x", "y")
}

func TestFieldSensitiveFlow(t *testing.T) {
	a, err := fsam.AnalyzeSource("t.mc", `
struct S { int *f; int *g2; };
struct S s;
int x; int y;
int *cf; int *cg;
int main() {
	s.f = &x;
	s.g2 = &y;
	cf = s.f;
	cg = s.g2;
	return 0;
}
`, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := a.PointsToGlobal("cf")
	want(t, got, "x")
	got, _ = a.PointsToGlobal("cg")
	want(t, got, "y")
}

func TestFieldStrongUpdate(t *testing.T) {
	// A field of a singleton global struct is itself a singleton.
	want(t, pt(t, `
struct S { int *f; };
struct S s;
int x; int y;
int *c;
int main() {
	s.f = &x;
	s.f = &y;
	c = s.f;
	return 0;
}
`, "c"), "y")
}

func TestArrayWeak(t *testing.T) {
	got := pt(t, `
int x; int y;
int *arr[4];
int *c;
int main() {
	arr[0] = &x;
	arr[1] = &y;
	c = arr[0];
	return 0;
}
`, "c")
	want(t, got, "x", "y")
}

func TestThreadArgFlow(t *testing.T) {
	want(t, pt(t, `
int x;
int *g;
void w(void *arg) {
	g = arg;
}
int main() {
	thread_t t;
	t = spawn(w, &x);
	join(t);
	return 0;
}
`, "g"), "x")
}

func TestValueFlowsBackAfterJoin(t *testing.T) {
	// The routine's write is visible after the join (Step 3).
	want(t, pt(t, `
int x; int y;
int *p; int *c;
void w(void *arg) {
	*p = &y;
}
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	c = *p;
	return 0;
}
`, "c"), "y")
}

func TestPartialJoinKeepsBothValues(t *testing.T) {
	// The join happens on one branch only: after the merge, the routine
	// may still be running, so both the pre-fork and routine values apply.
	got := pt(t, `
int x; int y;
int *p; int *c; int cond;
void w(void *arg) {
	*p = &y;
}
int main() {
	p = &x;
	*p = &x;
	thread_t t;
	t = spawn(w, NULL);
	if (cond > 0) {
		join(t);
	}
	c = *p;
	return 0;
}
`, "c")
	want(t, got, "x", "y")
}

func TestRecursionConverges(t *testing.T) {
	got := pt(t, `
int x; int y;
int *p; int *c;
void rec(int n) {
	*p = &y;
	if (n > 0) { rec(n - 1); }
}
int main() {
	p = &x;
	*p = &x;
	rec(3);
	c = *p;
	return 0;
}
`, "c")
	// Recursive function's stores are weak-ish through the cycle; final
	// value must include y (and x only if the analysis cannot prove the
	// kill — either way y must be present).
	found := false
	for _, n := range got {
		if n == "y" {
			found = true
		}
	}
	if !found {
		t.Errorf("pt(c) = %v, must contain y", got)
	}
}

func TestNullStoreYieldsEmpty(t *testing.T) {
	want(t, pt(t, `
int x;
int *p; int *c;
int main() {
	p = &x;
	*p = NULL;
	c = *p;
	return 0;
}
`, "c"))
}

func TestMultiForkedWeakLocals(t *testing.T) {
	// Locals of a multi-forked thread's routine are not singletons: stores
	// into them are weak.
	got := pt(t, `
int x; int y;
int *g;
void w(void *arg) {
	int slot;
	int *lp;
	lp = &slot;
	*lp = 1;
	g = lp;
}
int main() {
	int i;
	for (i = 0; i < 3; i++) {
		thread_t t;
		t = spawn(w, NULL);
	}
	return 0;
}
`, "g")
	if len(got) == 0 {
		t.Errorf("pt(g) must contain the escaped local, got %v", got)
	}
}

func TestIterationsAndBytesReported(t *testing.T) {
	a, err := fsam.AnalyzeSource("t.mc", `
int x;
int *p;
int main() { p = &x; return 0; }
`, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Iterations == 0 || a.Result.Bytes() == 0 {
		t.Error("iterations/bytes must be reported")
	}
}

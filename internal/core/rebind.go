package core

import (
	"repro/internal/ir"
	"repro/internal/threads"
	"repro/internal/vfg"
)

// Rebind re-targets a solved Result onto fresh, a program for which
// ir.Isomorphic held, given the rebound def-use graph and the freshly
// built thread model. Every fact slice is indexed by VarID or MemNode ID —
// both stable under isomorphism — so the interned sets, the interner and
// the singleton summary are shared wholesale; only the program, graph and
// model handles change. The returned Result answers every query exactly
// as a from-scratch solve over fresh would.
func (r *Result) Rebind(fresh *ir.Program, g *vfg.Graph, model *threads.Model) *Result {
	return &Result{
		Prog:       fresh,
		Graph:      g,
		Model:      model,
		varPts:     r.varPts,
		memPts:     r.memPts,
		varIDs:     r.varIDs,
		memIDs:     r.memIDs,
		intern:     r.intern,
		singletons: r.singletons,
		Iterations: r.Iterations,
	}
}

package deadlock_test

import (
	"testing"

	fsam "repro"
)

// detect runs FSAM + deadlock detection over src.
func detect(t *testing.T, src string) []string {
	t.Helper()
	a, err := fsam.AnalyzeSource("dl.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	reports, err := a.Deadlocks()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range reports {
		out = append(out, r.String())
	}
	return out
}

func TestClassicABBA(t *testing.T) {
	reports := detect(t, `
lock_t la; lock_t lb;
int x;
void w1(void *arg) {
	lock(&la);
	lock(&lb);
	x = 1;
	unlock(&lb);
	unlock(&la);
}
void w2(void *arg) {
	lock(&lb);
	lock(&la);
	x = 2;
	unlock(&la);
	unlock(&lb);
}
int main() {
	thread_t t1; thread_t t2;
	t1 = spawn(w1, NULL);
	t2 = spawn(w2, NULL);
	join(t1);
	join(t2);
	return 0;
}
`)
	if len(reports) == 0 {
		t.Fatal("AB-BA deadlock not detected")
	}
}

func TestConsistentOrderNoDeadlock(t *testing.T) {
	reports := detect(t, `
lock_t la; lock_t lb;
int x;
void w1(void *arg) {
	lock(&la);
	lock(&lb);
	x = 1;
	unlock(&lb);
	unlock(&la);
}
void w2(void *arg) {
	lock(&la);
	lock(&lb);
	x = 2;
	unlock(&lb);
	unlock(&la);
}
int main() {
	thread_t t1; thread_t t2;
	t1 = spawn(w1, NULL);
	t2 = spawn(w2, NULL);
	join(t1);
	join(t2);
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("consistent lock order must be deadlock-free: %v", reports)
	}
}

func TestHBOrderedThreadsNoDeadlock(t *testing.T) {
	// Opposite lock orders, but the threads never overlap (join between).
	reports := detect(t, `
lock_t la; lock_t lb;
int x;
void w1(void *arg) {
	lock(&la);
	lock(&lb);
	x = 1;
	unlock(&lb);
	unlock(&la);
}
void w2(void *arg) {
	lock(&lb);
	lock(&la);
	x = 2;
	unlock(&la);
	unlock(&lb);
}
int main() {
	thread_t t1;
	t1 = spawn(w1, NULL);
	join(t1);
	thread_t t2;
	t2 = spawn(w2, NULL);
	join(t2);
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("serialized threads cannot deadlock: %v", reports)
	}
}

func TestThreeLockCycle(t *testing.T) {
	reports := detect(t, `
lock_t la; lock_t lb; lock_t lc;
int x;
void w1(void *arg) {
	lock(&la); lock(&lb); x = 1; unlock(&lb); unlock(&la);
}
void w2(void *arg) {
	lock(&lb); lock(&lc); x = 2; unlock(&lc); unlock(&lb);
}
void w3(void *arg) {
	lock(&lc); lock(&la); x = 3; unlock(&la); unlock(&lc);
}
int main() {
	thread_t t1; thread_t t2; thread_t t3;
	t1 = spawn(w1, NULL);
	t2 = spawn(w2, NULL);
	t3 = spawn(w3, NULL);
	join(t1);
	join(t2);
	join(t3);
	return 0;
}
`)
	if len(reports) == 0 {
		t.Fatal("3-lock cycle not detected")
	}
	// The cycle should mention all three locks.
	found := false
	for _, r := range reports {
		if len(r) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("empty report")
	}
}

func TestSelfParallelMultiForked(t *testing.T) {
	// A single routine with inconsistent internal order deadlocks against
	// another instance of itself when multi-forked... but a SINGLE routine
	// acquiring la→lb in all instances has a consistent order: no cycle.
	reports := detect(t, `
lock_t la; lock_t lb;
int x;
void w(void *arg) {
	lock(&la); lock(&lb); x = 1; unlock(&lb); unlock(&la);
}
int main() {
	int i;
	for (i = 0; i < 4; i++) {
		thread_t t;
		t = spawn(w, NULL);
	}
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("single consistent order across instances: %v", reports)
	}
}

func TestNestedSameLockIgnored(t *testing.T) {
	// Re-acquisition of the same lock is not a lock-order edge (it is a
	// self-deadlock for non-recursive mutexes, but not an order cycle).
	reports := detect(t, `
lock_t la;
int x;
void w(void *arg) {
	lock(&la);
	x = 1;
	unlock(&la);
}
int main() {
	thread_t t;
	t = spawn(w, NULL);
	lock(&la);
	x = 2;
	unlock(&la);
	join(t);
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("single lock cannot form an order cycle: %v", reports)
	}
}

func TestDeadlocksRequireInterleaving(t *testing.T) {
	a, err := fsam.AnalyzeSource("x.mc", `int main() { return 0; }`,
		fsam.Config{NoInterleaving: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Deadlocks(); err == nil {
		t.Error("expected error without the interleaving analysis")
	}
}

func TestDeadlocksRequireLocks(t *testing.T) {
	a, err := fsam.AnalyzeSource("x.mc", `int main() { return 0; }`,
		fsam.Config{NoLock: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Deadlocks(); err == nil {
		t.Error("expected error without the lock analysis")
	}
}

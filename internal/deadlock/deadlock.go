// Package deadlock implements a static deadlock detector as a client of
// FSAM's interference analyses — the paper's second motivating application
// (Section 1 cites deadlock detection among the clients built on pointer
// analysis).
//
// The detector builds a lock-order graph: an edge L1 → L2 records a
// context-sensitive acquisition of L2 while L1 is held (the acquisition
// statement lies inside a lock-release span of L1). A candidate deadlock is
// a cycle in this graph whose edges can be exercised by concurrently
// running thread instances (verified pairwise with the interleaving
// analysis), the classic Goodlock condition.
package deadlock

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/threads"
)

// Acquisition is one context-sensitive lock acquisition performed while
// another lock is held.
type Acquisition struct {
	Held locks.Inst // an acquisition of Held-lock is in effect...
	Site locks.Inst // ...when Site acquires the new lock
	From *ir.Object // the held lock object
	To   *ir.Object // the newly acquired lock object
}

// Report is one candidate deadlock: a cycle of lock-order edges whose
// acquiring instances may all run in parallel pairwise.
type Report struct {
	// Cycle lists the lock objects in order; Cycle[i] is held while
	// Cycle[(i+1)%n] is acquired by Edges[i].
	Cycle []*ir.Object
	Edges []Acquisition
}

// String renders the report.
func (r *Report) String() string {
	s := "potential deadlock:"
	for i, e := range r.Edges {
		s += fmt.Sprintf(" [%s holds %s, acquires %s at line %d]",
			e.Site.Thread, r.Cycle[i].Name, r.Cycle[(i+1)%len(r.Cycle)].Name,
			ir.LineOf(e.Site.Stmt))
	}
	return s
}

// lockPair keys the lock-order edge groups.
type lockPair struct{ from, to ir.ObjID }

// Detector bundles the inputs.
type Detector struct {
	Model *threads.Model
	MHP   *mhp.Result
	Locks *locks.Result
	// MaxCycle bounds cycle length (default 4).
	MaxCycle int
}

// edges computes the lock-order edges from the lock spans.
func (d *Detector) edges() []Acquisition {
	var out []Acquisition
	for _, t := range d.Model.Threads {
		for fc := range d.Model.Funcs(t) {
			for _, blk := range fc.Func.Blocks {
				for _, s := range blk.Stmts {
					l, ok := s.(*ir.Lock)
					if !ok {
						continue
					}
					inst := locks.Inst{Thread: t, Ctx: fc.Ctx, Stmt: l}
					spans := d.Locks.SpansOf(inst)
					// The acquired lock object(s): per pre-analysis.
					acquired := d.Model.Pre.PointsToVar(l.Ptr)
					for _, sp := range spans {
						if sp.Thread != t {
							continue
						}
						acquired.ForEach(func(id uint32) {
							to := d.Model.Prog.Objects[id]
							if to == sp.LockObj {
								return // re-acquisition of the same lock
							}
							out = append(out, Acquisition{
								Held: locks.Inst{Thread: t, Ctx: sp.Ctx, Stmt: sp.Lock},
								Site: inst,
								From: sp.LockObj,
								To:   to,
							})
						})
					}
				}
			}
		}
	}
	// Model.Funcs iterates a map, so edge discovery order varies between
	// runs; sort so witness selection in tryReport (first viable
	// assignment wins) is deterministic.
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.From.ID != b.From.ID {
			return a.From.ID < b.From.ID
		}
		if a.To.ID != b.To.ID {
			return a.To.ID < b.To.ID
		}
		if a.Site.Stmt.ID() != b.Site.Stmt.ID() {
			return a.Site.Stmt.ID() < b.Site.Stmt.ID()
		}
		if a.Site.Thread.ID != b.Site.Thread.ID {
			return a.Site.Thread.ID < b.Site.Thread.ID
		}
		if a.Site.Ctx != b.Site.Ctx {
			return a.Site.Ctx < b.Site.Ctx
		}
		if a.Held.Stmt.ID() != b.Held.Stmt.ID() {
			return a.Held.Stmt.ID() < b.Held.Stmt.ID()
		}
		if a.Held.Thread.ID != b.Held.Thread.ID {
			return a.Held.Thread.ID < b.Held.Thread.ID
		}
		return a.Held.Ctx < b.Held.Ctx
	})
	return out
}

// Detect enumerates candidate deadlock cycles (deterministic order).
func (d *Detector) Detect() []*Report {
	if d.MaxCycle <= 0 {
		d.MaxCycle = 4
	}
	acq := d.edges()
	// Group edges by (from, to) lock pair.
	byPair := map[lockPair][]Acquisition{}
	succs := map[ir.ObjID][]ir.ObjID{}
	seenSucc := map[lockPair]bool{}
	for _, e := range acq {
		k := lockPair{from: e.From.ID, to: e.To.ID}
		byPair[k] = append(byPair[k], e)
		if !seenSucc[k] {
			seenSucc[k] = true
			succs[e.From.ID] = append(succs[e.From.ID], e.To.ID)
		}
	}
	for _, s := range succs {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	var reports []*Report
	reported := map[string]bool{}

	// DFS for simple cycles up to MaxCycle, canonicalized by smallest
	// starting lock ID.
	var path []ir.ObjID
	var dfs func(start, cur ir.ObjID)
	dfs = func(start, cur ir.ObjID) {
		if len(path) > d.MaxCycle {
			return
		}
		for _, next := range succs[cur] {
			if next == start && len(path) >= 2 {
				d.tryReport(start, path, byPair, reported, &reports)
				continue
			}
			if next <= start {
				continue // canonical start = minimum lock in cycle
			}
			inPath := false
			for _, p := range path {
				if p == next {
					inPath = true
				}
			}
			if inPath {
				continue
			}
			path = append(path, next)
			dfs(start, next)
			path = path[:len(path)-1]
		}
	}
	var starts []ir.ObjID
	for from := range succs {
		starts = append(starts, from)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, start := range starts {
		path = []ir.ObjID{start}
		dfs(start, start)
	}
	return reports
}

// tryReport validates one lock cycle: some combination of edge instances
// must be pairwise concurrent.
func (d *Detector) tryReport(start ir.ObjID, path []ir.ObjID,
	byPair map[lockPair][]Acquisition,
	reported map[string]bool, reports *[]*Report) {

	n := len(path)
	key := ""
	for _, id := range path {
		key += fmt.Sprintf("%d,", id)
	}
	if reported[key] {
		return
	}

	// Edge candidate lists around the cycle.
	edgeChoices := make([][]Acquisition, n)
	for i := 0; i < n; i++ {
		from := path[i]
		to := path[(i+1)%n]
		edgeChoices[i] = byPair[lockPair{from: from, to: to}]
		if len(edgeChoices[i]) == 0 {
			return
		}
	}

	// Search for a pairwise-concurrent assignment (bounded backtracking).
	chosen := make([]Acquisition, n)
	var pick func(i int) bool
	pick = func(i int) bool {
		if i == n {
			return true
		}
		for _, e := range edgeChoices[i] {
			ok := true
			for j := 0; j < i; j++ {
				if !d.concurrent(chosen[j], e) {
					ok = false
					break
				}
			}
			if ok {
				chosen[i] = e
				if pick(i + 1) {
					return true
				}
			}
		}
		return false
	}
	if !pick(0) {
		return
	}

	reported[key] = true
	cycle := make([]*ir.Object, n)
	for i, id := range path {
		cycle[i] = d.Model.Prog.Objects[id]
	}
	*reports = append(*reports, &Report{Cycle: cycle, Edges: append([]Acquisition(nil), chosen...)})
}

// concurrent reports whether the two acquisitions may execute in parallel.
func (d *Detector) concurrent(a, b Acquisition) bool {
	return d.MHP.MHP(a.Site.Thread, a.Site.Ctx, a.Site.Stmt,
		b.Site.Thread, b.Site.Ctx, b.Site.Stmt)
}

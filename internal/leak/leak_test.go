package leak_test

import (
	"testing"

	fsam "repro"
)

func detect(t *testing.T, src string) []string {
	t.Helper()
	a, err := fsam.AnalyzeSource("leak.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	reports := a.Leaks()
	var out []string
	for _, r := range reports {
		out = append(out, r.String())
	}
	return out
}

func TestDroppedAllocationLeaks(t *testing.T) {
	reports := detect(t, `
int main() {
	int *p;
	p = malloc();
	*p = 1;
	p = NULL;
	return 0;
}
`)
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want 1 leak", reports)
	}
}

func TestFreedAllocationDoesNotLeak(t *testing.T) {
	reports := detect(t, `
int main() {
	int *p;
	p = malloc();
	*p = 1;
	free(p);
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("freed allocation reported: %v", reports)
	}
}

func TestConditionalFreeLeaks(t *testing.T) {
	reports := detect(t, `
int cond;
int main() {
	int *p;
	p = malloc();
	if (cond > 0) {
		free(p);
	}
	return 0;
}
`)
	if len(reports) != 1 {
		t.Fatalf("conditionally freed allocation must be a candidate: %v", reports)
	}
}

func TestFreeOnBothBranches(t *testing.T) {
	reports := detect(t, `
int cond;
int main() {
	int *p;
	p = malloc();
	if (cond > 0) {
		free(p);
	} else {
		*p = 1;
		free(p);
	}
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("freed on every path: %v", reports)
	}
}

func TestGloballyReachableDoesNotLeak(t *testing.T) {
	reports := detect(t, `
int *cache;
int main() {
	cache = malloc();
	*cache = 1;
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("globally reachable allocation reported: %v", reports)
	}
}

func TestReachableThroughChain(t *testing.T) {
	// Global → heap node → second heap node: both reachable.
	reports := detect(t, `
struct Node { struct Node *next; int v; };
struct Node *head;
int main() {
	head = malloc();
	struct Node *second;
	second = malloc();
	head->next = second;
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("chain-reachable allocations reported: %v", reports)
	}
}

func TestOverwrittenGlobalLeaks(t *testing.T) {
	// The first allocation is overwritten in the global: lost.
	reports := detect(t, `
int *cache;
int main() {
	cache = malloc();   // lost
	cache = malloc();   // kept
	return 0;
}
`)
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want exactly the first allocation", reports)
	}
}

func TestAmbiguousFreeIsNotMustFree(t *testing.T) {
	// free(p) where p may be either of two allocations frees neither for
	// sure.
	reports := detect(t, `
int cond;
int main() {
	int *a; int *b2; int *p;
	a = malloc();
	b2 = malloc();
	if (cond > 0) { p = a; } else { p = b2; }
	free(p);
	return 0;
}
`)
	if len(reports) != 2 {
		t.Fatalf("ambiguous free must leave both candidates: %v", reports)
	}
}

func TestLoopAllocationWithFree(t *testing.T) {
	reports := detect(t, `
int main() {
	int i;
	for (i = 0; i < 4; i++) {
		int *p;
		p = malloc();
		*p = i;
		free(p);
	}
	return 0;
}
`)
	if len(reports) != 0 {
		t.Fatalf("freed loop allocation reported: %v", reports)
	}
}

func TestThreadLocalAllocationLeaks(t *testing.T) {
	reports := detect(t, `
void w(void *arg) {
	int *p;
	p = malloc();
	*p = 1;
}
int main() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	if len(reports) != 1 {
		t.Fatalf("thread-local dropped allocation must leak: %v", reports)
	}
}

func TestAuditExposesBothConditions(t *testing.T) {
	a, err := fsam.AnalyzeSource("leak.mc", `
int *keep;
int main() {
	keep = malloc();
	int *drop;
	drop = malloc();
	free(drop);
	return 0;
}
`, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	audit := a.LeakAudit()
	if len(audit) != 2 {
		t.Fatalf("audit entries = %d, want 2", len(audit))
	}
	if !audit[0].ReachableAtExit || audit[0].MustFreed {
		t.Errorf("first allocation: %+v", audit[0])
	}
	if !audit[1].MustFreed || audit[1].ReachableAtExit {
		t.Errorf("second allocation: %+v", audit[1])
	}
}

// Package leak implements a static memory-leak detector as a client of the
// flow-sensitive points-to results — the third client application the paper
// motivates (Section 1 cites static memory leak detection, the SABER line
// of work, among the analyses built on pointer analysis).
//
// A heap allocation site is reported as a leak candidate when
//
//  1. its object is not reachable from any global at program exit
//     (following the flow-sensitive exit states), and
//  2. the allocation is not must-freed: some path from the allocation to
//     its function's exit performs no free() whose argument must-aliases
//     the object.
//
// Like real leak checkers this is a heuristic bug finder: condition (1)
// treats pointers held only in stack frames at exit as lost ("definitely
// lost" in valgrind terms), and (2) under-approximates freeing across
// function boundaries (an object freed by a callee or a sibling thread is
// still reported unless it is globally reachable).
package leak

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pts"
)

// Report is one candidate leak.
type Report struct {
	Obj   *ir.Object
	Alloc *ir.AddrOf
	// MustFreed and ReachableAtExit report the two conditions (both false
	// for reported leaks; populated for diagnostics on all sites via
	// Detector.Audit).
	MustFreed       bool
	ReachableAtExit bool
}

func (r *Report) String() string {
	return fmt.Sprintf("leak: %s allocated at line %d is never freed and unreachable at exit",
		r.Obj, ir.LineOf(r.Alloc))
}

// Detector bundles the inputs.
type Detector struct {
	Prog   *ir.Program
	Points *core.Result
	// Reachable filters allocation sites to functions reachable from main
	// (nil means consider every function).
	Reachable map[*ir.Function]bool
}

// Detect returns the leak candidates, deterministically ordered.
func (d *Detector) Detect() []*Report {
	var out []*Report
	for _, r := range d.Audit() {
		if !r.MustFreed && !r.ReachableAtExit {
			out = append(out, r)
		}
	}
	return out
}

// Audit evaluates both conditions for every reachable heap allocation.
func (d *Detector) Audit() []*Report {
	reach := d.reachableAtExit()
	var out []*Report
	for _, s := range d.Prog.Stmts {
		a, ok := s.(*ir.AddrOf)
		if !ok || a.Obj.Kind != ir.ObjHeap {
			continue
		}
		f := ir.StmtFunc(a)
		if f == nil || (d.Reachable != nil && !d.Reachable[f]) {
			continue
		}
		out = append(out, &Report{
			Obj:             a.Obj,
			Alloc:           a,
			MustFreed:       d.mustFreed(a),
			ReachableAtExit: reach.Has(uint32(a.Obj.ID)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Alloc.ID() < out[j].Alloc.ID() })
	return out
}

// reachableAtExit computes the objects transitively reachable from globals
// through the flow-sensitive exit states of main.
func (d *Detector) reachableAtExit() *pts.Set {
	reach := &pts.Set{}
	var work []*ir.Object
	push := func(o *ir.Object) {
		if reach.Add(uint32(o.ID)) {
			work = append(work, o)
			// An aggregate's fields are reachable with it.
			for _, fo := range d.Prog.FieldObjs(o) {
				if reach.Add(uint32(fo.ID)) {
					work = append(work, fo)
				}
			}
		}
	}
	for _, o := range d.Prog.Objects {
		if o.Kind == ir.ObjGlobal {
			push(o)
		}
	}
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		d.Points.ObjAtExit(d.Prog.Main, o).ForEach(func(id uint32) {
			push(d.Prog.Objects[id])
		})
	}
	return reach
}

// mustFreed reports whether every path from the allocation to its
// function's exit performs a must-aliased free of the object.
func (d *Detector) mustFreed(alloc *ir.AddrOf) bool {
	obj := alloc.Obj
	f := ir.StmtFunc(alloc)
	allocBlk := alloc.Parent()
	if f == nil || allocBlk == nil {
		return false
	}

	isMustFree := func(s ir.Stmt) bool {
		fr, ok := s.(*ir.Free)
		if !ok {
			return false
		}
		set := d.Points.PointsToVar(fr.Ptr)
		single, isSingle := set.Single()
		return isSingle && single == uint32(obj.ID)
	}

	// Blocks guaranteed to free the object when executed from their head.
	freeBlock := map[*ir.Block]bool{}
	for _, blk := range f.Blocks {
		for _, s := range blk.Stmts {
			if isMustFree(s) {
				freeBlock[blk] = true
				break
			}
		}
	}

	// In the allocation block, only frees after the allocation count.
	pastAlloc := false
	for _, s := range allocBlk.Stmts {
		if s == ir.Stmt(alloc) {
			pastAlloc = true
			continue
		}
		if pastAlloc && isMustFree(s) {
			return true
		}
	}

	// good(b): every path from b's head to exit frees obj. Greatest
	// fixpoint (optimistic): start true, shrink.
	good := map[*ir.Block]bool{}
	for _, blk := range f.Blocks {
		good[blk] = true
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range f.Blocks {
			v := good[blk]
			if freeBlock[blk] {
				continue // definitely freed here
			}
			nv := len(blk.Succs) > 0
			for _, s := range blk.Succs {
				if !good[s] {
					nv = false
					break
				}
			}
			if nv != v {
				good[blk] = nv
				changed = true
			}
		}
	}
	if len(allocBlk.Succs) == 0 {
		return false
	}
	for _, s := range allocBlk.Succs {
		if !good[s] {
			return false
		}
	}
	return true
}

package cfgfree

import "repro/internal/ir"

// Rebind re-targets a completed Result onto fresh, a program for which
// ir.Isomorphic held and whose field objects have been replayed. Every
// fact the result holds is indexed by VarID or ObjID, both stable under
// isomorphism, so the rebound result shares all of them and only the
// program handle changes.
func (r *Result) Rebind(fresh *ir.Program) *Result {
	nr := *r
	nr.Prog = fresh
	return &nr
}

package cfgfree_test

import (
	"context"
	"testing"

	"repro/internal/cfgfree"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/randprog"
)

// TestPrunedSubsetOfUnpruned: the escape oracle is a precision refinement
// for the CFG-free engine, not a pure work skip — the mutual-concurrency
// reach disjunct admits sequentially unreachable store→load pairs that
// the oracle proves impossible for non-shared objects. So the pruned
// result must be a subset of the unpruned one (never larger), and on
// programs where only some objects are shared it is allowed to be
// strictly smaller.
func TestPrunedSubsetOfUnpruned(t *testing.T) {
	prunedSomewhere := false
	for seed := int64(0); seed < 40; seed++ {
		src := randprog.Threaded(seed, 3)
		b, err := pipeline.FromSource("prune.mc", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		esc := escape.Analyze(b.Model)
		full, err := cfgfree.AnalyzeCtx(context.Background(), b.CG, b.G)
		if err != nil {
			t.Fatalf("seed %d: unpruned: %v", seed, err)
		}
		pruned, err := cfgfree.AnalyzeCtxPruned(context.Background(), b.CG, b.G,
			func(objID uint32) bool { return esc.IsShared(ir.ObjID(objID)) })
		if err != nil {
			t.Fatalf("seed %d: pruned: %v", seed, err)
		}
		if pruned.PrunedPairs > 0 {
			prunedSomewhere = true
		}
		for _, v := range b.Prog.Vars {
			p, f := pruned.PointsToVar(v), full.PointsToVar(v)
			if !p.SubsetOf(f) {
				t.Errorf("seed %d: pruned pt(%s)=%v exceeds unpruned %v\n%s",
					seed, v, p, f, src)
			}
		}
	}
	if !prunedSomewhere {
		t.Error("oracle admitted every reach pair on 40 random threaded programs")
	}
}

// Package cfgfree implements a flow-sensitive pointer analysis that never
// propagates along control-flow order — the "flow sensitivity without
// control flow graph" design (arXiv:2508.01974) adapted to this
// repository's IR and interned-set worklist substrate.
//
// The solver is structurally Andersen's inclusion analysis: one constraint
// node per top-level SSA variable and per abstract object, difference
// propagation over an on-the-fly copy graph. What changes is the handling
// of memory. Andersen routes every load through the object node —
// dst ⊇ pts(o) for each o the address may reference — which merges all
// stores into o regardless of whether they can ever reach the load.
// Here a load instead receives direct copy edges from individual stores:
//
//	store *p = src;  load dst = *q  adds  src → dst  iff
//	  (1) pts(p) ∩ pts(q) ≠ ∅ under this solver's own evolving sets, and
//	  (2) the store can reach the load in some execution (reach below).
//
// Because top-level variables are in SSA form, suppressing unreachable
// store→load flows is exactly the precision flow-sensitive analyses get
// from indexing memory by program point — but no per-point states are kept
// and no propagation follows CFG edges, so the cost profile stays
// Andersen-like. Object nodes are retained only as write summaries (every
// aliasing store still flows into the object node) so whole-program
// queries like "what may this global ever hold" remain answerable.
//
// The reach predicate is a one-shot summary computed before solving:
//
//	reach(s, l) = PseqReach(s, l) ∨ (concurrent(s) ∧ concurrent(l))
//
// PseqReach is reachability over the sequentialized ICFG Pseq (all edge
// kinds, including fork-call/fork-return, as in the paper's memory-SSA
// construction), computed as a batched bitset data-flow pass over the SCC
// condensation. concurrent(x) over-approximates "x may execute while
// another thread is live": x's function is in the call-graph closure of
// some fork routine, or x is Pseq-reachable from a fork-return node
// (main-thread code after a spawn). Both disjuncts over-approximate the
// sparse engine's admitted flows — Pseq covers its sequential def-use
// chains, and MHP(s, l) implies concurrent(s) ∧ concurrent(l) — so the
// precision ladder ordering sparse ⊆ oblivious-as-refined ⊆ cfgfree ⊆
// Andersen holds object- and variable-wise. On fork-free programs
// concurrent() is uniformly false and the analysis degenerates to purely
// sequential reachability gating, its most precise regime.
package cfgfree

import (
	"context"
	"math/bits"

	"repro/internal/callgraph"
	"repro/internal/engine"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/pts"
)

// Result holds the CFG-free flow-sensitive analysis outcome.
type Result struct {
	Prog *ir.Program

	// varPts[v] / objPts[o] are canonical interned sets of ObjIDs —
	// read-only, shared across slots.
	varPts []*pts.Set
	objPts []*pts.Set
	varIDs []engine.SetID
	objIDs []engine.SetID
	intern *engine.Interner

	// Stores and Loads count the memory statements the reach summary
	// covers; Pairs counts the store→load copy edges the alias ∧ reach
	// gate admitted (the cfgfree analogue of def-use edge count).
	Stores, Loads int
	Pairs         int
	// PrunedPairs counts store→load admissions rejected because only the
	// mutual-concurrency disjunct held and the escape oracle proved the
	// object non-shared (0 without an oracle).
	PrunedPairs int
	// SummaryBytes is the transient footprint of the reach summary during
	// solving (freed with the solver; reported for diagnostics).
	SummaryBytes uint64
	// Iterations counts worklist pops carrying a non-empty delta; Pops
	// counts every pop.
	Iterations int
	Pops       uint64
}

// PointsToVar returns the set of ObjIDs v may point to (never nil). One
// set per SSA variable is the engine's flow-sensitive answer.
func (r *Result) PointsToVar(v *ir.Var) *pts.Set {
	if v == nil || int(v.ID) >= len(r.varPts) || r.varPts[v.ID] == nil {
		return &pts.Set{}
	}
	return r.varPts[v.ID]
}

// PointsToObj returns the write summary of object o: everything any
// admitted store may have put in it (never nil).
func (r *Result) PointsToObj(o *ir.Object) *pts.Set {
	if o == nil || int(o.ID) >= len(r.objPts) || r.objPts[o.ID] == nil {
		return &pts.Set{}
	}
	return r.objPts[o.ID]
}

// ObjAtExit answers the "contents at exit of f" query with the object's
// write summary — the engine keeps no per-point memory states, so this is
// its soundest flow-insensitive answer (⊇ the sparse engine's at-exit set,
// ⊆ Andersen's object set). The f parameter exists for interface symmetry
// with the memory-SSA engines.
func (r *Result) ObjAtExit(f *ir.Function, obj *ir.Object) *pts.Set {
	return r.PointsToObj(obj)
}

// Obj maps an ObjID from a points-to set back to its object.
func (r *Result) Obj(id uint32) *ir.Object { return r.Prog.Objects[id] }

// InternStats returns sharing statistics over the stored points-to slots.
func (r *Result) InternStats() *engine.RefStats {
	rs := r.intern.NewRefStats()
	for _, id := range r.varIDs {
		rs.Ref(id)
	}
	for _, id := range r.objIDs {
		rs.Ref(id)
	}
	return rs
}

// Bytes reports the memory footprint of the stored points-to sets: each
// canonical interned set counted once plus one 4-byte handle per slot.
func (r *Result) Bytes() uint64 {
	rs := r.InternStats()
	return rs.UniqueBytes + uint64(rs.Refs)*4
}

// Analyze runs the CFG-free analysis without a context.
func Analyze(cg *callgraph.Graph, g *icfg.Graph) *Result {
	r, _ := AnalyzeCtx(context.Background(), cg, g)
	return r
}

// SharedFn is the thread-escape oracle consulted by the reach gate: it
// reports whether the object may be accessed by two thread instances that
// run in parallel. When supplied, the mutual-concurrency disjunct of the
// store→load admission is dropped for non-shared objects. Unlike the
// fsam/tmod prunes this is a (sound) precision refinement, not a pure
// work skip: Pseq — where a fork behaves as a call — covers every
// happens-before-ordered cross-thread flow with a sequential path, so the
// concurrency disjunct is only ever needed for genuinely shared objects;
// for the rest it admits spurious pairs the oracle now rejects.
type SharedFn func(objID uint32) bool

// AnalyzeCtx runs the CFG-free analysis under a context that may carry an
// engine.Budget. The reach summary and the fixpoint loop each poll their
// own limited canceller, so deadline, memory and step budgets degrade the
// run instead of being ignored.
func AnalyzeCtx(ctx context.Context, cg *callgraph.Graph, g *icfg.Graph) (*Result, error) {
	return AnalyzeCtxPruned(ctx, cg, g, nil)
}

// AnalyzeCtxPruned is AnalyzeCtx with a thread-escape oracle gating the
// mutual-concurrency reach admission (nil disables pruning).
func AnalyzeCtxPruned(ctx context.Context, cg *callgraph.Graph, g *icfg.Graph, shared SharedFn) (*Result, error) {
	sum, err := buildSummary(ctx, g)
	if err != nil {
		return nil, err
	}
	s := &solver{
		prog:    cg.Prog,
		cg:      cg,
		sum:     sum,
		shared:  shared,
		numVars: len(cg.Prog.Vars),
		it:      engine.NewInterner(),
		wl:      engine.NewWorklist(0),
		cancel:  engine.NewLimitedCanceller(ctx),
		hasEdge: map[uint64]bool{},
	}
	s.grow()
	s.initConstraints()
	if err := s.solve(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// ---------------------------------------------------------------------------
// Reach summary

// summary is the precomputed store→load admissibility relation.
type summary struct {
	stores []*ir.Store
	loads  []*ir.Load
	// storeIdx/loadIdx invert the slices above.
	storeIdx map[*ir.Store]int
	loadIdx  map[*ir.Load]int

	// seq is a bitset matrix: seq[si*loadWords + li/64] bit li%64 set when
	// store si Pseq-reaches load li.
	seq       []uint64
	loadWords int

	// storeConc/loadConc flag statements that may execute while another
	// thread is live.
	storeConc []bool
	loadConc  []bool
}

// seqReaches reports whether store index si Pseq-reaches load index li
// (the sequential disjunct of the admission gate; the concurrent disjunct
// — storeConc ∧ loadConc — lives in solver.admit where the escape oracle
// can veto it).
func (m *summary) seqReaches(si, li int) bool {
	return m.seq[si*m.loadWords+li/64]&(1<<(uint(li)%64)) != 0
}

func (m *summary) bytes() uint64 {
	return uint64(len(m.seq))*8 + uint64(len(m.storeConc)+len(m.loadConc))
}

// batchBits is the number of stores whose reachability is computed per DP
// pass: each condensation component carries batchBits/64 words, keeping
// the pass memory proportional to the ICFG, not stores × ICFG.
const batchBits = 1024

// buildSummary computes Pseq reachability (batched bitset DP over the SCC
// condensation of the ICFG, all edge kinds) and the concurrency flags.
func buildSummary(ctx context.Context, g *icfg.Graph) (*summary, error) {
	cancel := engine.NewLimitedCanceller(ctx)
	m := &summary{
		storeIdx: map[*ir.Store]int{},
		loadIdx:  map[*ir.Load]int{},
	}
	for _, f := range g.Prog.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s := s.(type) {
				case *ir.Store:
					m.storeIdx[s] = len(m.stores)
					m.stores = append(m.stores, s)
				case *ir.Load:
					m.loadIdx[s] = len(m.loads)
					m.loads = append(m.loads, s)
				}
			}
		}
	}
	m.loadWords = (len(m.loads) + 63) / 64
	if m.loadWords == 0 {
		m.loadWords = 1
	}
	m.seq = make([]uint64, len(m.stores)*m.loadWords)
	m.storeConc = make([]bool, len(m.stores))
	m.loadConc = make([]bool, len(m.loads))

	comp, numComps := condense(g)

	// Condensed adjacency, deduped with a last-writer mark. Cross edges go
	// from higher to lower component IDs (Tarjan completion order is
	// reverse-topological), so a single descending sweep propagates fully.
	csucc := make([][]int32, numComps)
	mark := make([]int32, numComps)
	for i := range mark {
		mark[i] = -1
	}
	for _, n := range g.Nodes {
		cu := comp[n.ID]
		for _, e := range n.Out {
			if cv := comp[e.To.ID]; cv != cu && mark[cv] != cu {
				mark[cv] = cu
				csucc[cu] = append(csucc[cu], cv)
			}
		}
	}

	for base := 0; base < len(m.stores); base += batchBits {
		end := base + batchBits
		if end > len(m.stores) {
			end = len(m.stores)
		}
		wb := (end - base + 63) / 64
		rows := make([]uint64, numComps*wb)
		for i := base; i < end; i++ {
			if n := g.StmtNode[m.stores[i]]; n != nil {
				b := i - base
				rows[int(comp[n.ID])*wb+b/64] |= 1 << (uint(b) % 64)
			}
		}
		for c := numComps - 1; c >= 0; c-- {
			if cancel.Cancelled() {
				return nil, cancel.Err()
			}
			src := rows[c*wb : (c+1)*wb]
			zero := true
			for _, w := range src {
				if w != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
			for _, d := range csucc[c] {
				dst := rows[int(d)*wb : (int(d)+1)*wb]
				for w := range src {
					dst[w] |= src[w]
				}
			}
		}
		for li, l := range m.loads {
			n := g.StmtNode[l]
			if n == nil {
				continue
			}
			c := int(comp[n.ID])
			row := rows[c*wb : c*wb+wb]
			for w, bits := range row {
				for ; bits != 0; bits &= bits - 1 {
					b := w*64 + trailingZeros(bits)
					si := base + b
					m.seq[si*m.loadWords+li/64] |= 1 << (uint(li) % 64)
				}
			}
		}
	}

	markConcurrent(g, m, comp, numComps, csucc)
	return m, nil
}

// markConcurrent sets storeConc/loadConc: a statement is concurrent when
// its function may run in a spawned thread (call-graph closure of fork
// routines) or when it is Pseq-reachable from a fork-return node (the
// spawning thread's continuation).
func markConcurrent(g *icfg.Graph, m *summary, comp []int32, numComps int, csucc [][]int32) {
	// Call-graph closure from every fork routine.
	spawned := map[*ir.Function]bool{}
	var queue []*ir.Function
	addFunc := func(f *ir.Function) {
		if f != nil && !spawned[f] {
			spawned[f] = true
			queue = append(queue, f)
		}
	}
	forkRets := map[int]bool{} // component IDs seeded by fork-return nodes
	for _, f := range g.Prog.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				fk, ok := s.(*ir.Fork)
				if !ok {
					continue
				}
				for _, t := range g.CG.CalleesOf[fk] {
					addFunc(t)
				}
				if rn := g.RetNode[fk]; rn != nil {
					forkRets[int(comp[rn.ID])] = true
				}
			}
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s.(type) {
				case *ir.Call, *ir.Fork:
					for _, t := range g.CG.CalleesOf[s] {
						addFunc(t)
					}
				}
			}
		}
	}

	// Component-level reachability from fork-return components: one
	// descending sweep over the condensation, as in the DP above.
	after := make([]bool, numComps)
	for c := range after {
		after[c] = forkRets[c]
	}
	for c := numComps - 1; c >= 0; c-- {
		if !after[c] {
			continue
		}
		for _, d := range csucc[c] {
			after[d] = true
		}
	}

	conc := func(s ir.Stmt, f *ir.Function) bool {
		if spawned[f] {
			return true
		}
		n := g.StmtNode[s]
		return n != nil && after[comp[n.ID]]
	}
	for si, s := range m.stores {
		m.storeConc[si] = conc(s, ir.StmtFunc(s))
	}
	for li, l := range m.loads {
		m.loadConc[li] = conc(l, ir.StmtFunc(l))
	}
}

// condense computes the SCC condensation of the ICFG over every edge kind
// (iterative Tarjan). Component IDs follow completion order, which is
// reverse-topological: every cross edge goes from a higher ID to a lower.
func condense(g *icfg.Graph) (comp []int32, numComps int) {
	n := len(g.Nodes)
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var counter, comps int32
	type frame struct {
		v    int32
		succ int
	}
	var frames []frame

	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: int32(start)})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, int32(start))
		onStack[start] = true

		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			out := g.Nodes[v].Out
			advanced := false
			for fr.succ < len(out) {
				u := int32(out[fr.succ].To.ID)
				fr.succ++
				if index[u] == -1 {
					index[u] = counter
					low[u] = counter
					counter++
					stack = append(stack, u)
					onStack[u] = true
					frames = append(frames, frame{v: u})
					advanced = true
					break
				} else if onStack[u] && index[u] < low[v] {
					low[v] = index[u]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					comp[u] = comps
					if u == v {
						break
					}
				}
				comps++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, int(comps)
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// ---------------------------------------------------------------------------
// Solver

type node int32

// gepCon is a field-address constraint dst ⊇ gep(watch, field).
type gepCon struct {
	dst   node
	field int
}

type solver struct {
	prog    *ir.Program
	cg      *callgraph.Graph
	sum     *summary
	shared  SharedFn
	numVars int

	it     *engine.Interner
	wl     *engine.Worklist
	cancel *engine.Canceller

	ptsOf   []engine.SetID
	delta   []engine.SetID
	copyOut [][]node
	hasEdge map[uint64]bool

	// loadsAt/storesAt watch address variables (indexed by var ID) and
	// hold indices into sum.loads/sum.stores; geps watch base variables.
	loadsAt  [][]int32
	storesAt [][]int32
	geps     [][]gepCon

	// loadsOfObj/storesOfObj record, per object, the loads and stores
	// whose address set came to include it — the incremental form of the
	// alias-intersection gate. Each (stmt, obj) pair lands exactly once
	// because deltas carry each object once per variable.
	loadsOfObj  [][]int32
	storesOfObj [][]int32

	pairs       int
	prunedPairs int
	iterations  int
}

func (s *solver) size() int { return s.numVars + len(s.prog.Objects) }

// grow extends node-indexed slices (field objects materialize during
// solving, extending the object space).
func (s *solver) grow() {
	n := s.size()
	for len(s.copyOut) < n {
		s.copyOut = append(s.copyOut, nil)
	}
	for len(s.ptsOf) < n {
		s.ptsOf = append(s.ptsOf, engine.EmptySet)
	}
	for len(s.delta) < n {
		s.delta = append(s.delta, engine.EmptySet)
	}
	for len(s.loadsAt) < s.numVars {
		s.loadsAt = append(s.loadsAt, nil)
	}
	for len(s.storesAt) < s.numVars {
		s.storesAt = append(s.storesAt, nil)
	}
	for len(s.geps) < s.numVars {
		s.geps = append(s.geps, nil)
	}
	for len(s.loadsOfObj) < len(s.prog.Objects) {
		s.loadsOfObj = append(s.loadsOfObj, nil)
	}
	for len(s.storesOfObj) < len(s.prog.Objects) {
		s.storesOfObj = append(s.storesOfObj, nil)
	}
	s.wl.Grow(n)
}

func (s *solver) varNode(v *ir.Var) node    { return node(v.ID) }
func (s *solver) objNode(o *ir.Object) node { return node(s.numVars) + node(o.ID) }

func (s *solver) addPts(n node, obj uint32) {
	if nu := s.it.Add(s.ptsOf[n], obj); nu != s.ptsOf[n] {
		s.ptsOf[n] = nu
		s.delta[n] = s.it.Add(s.delta[n], obj)
		s.wl.Push(int(n))
	}
}

func (s *solver) addPtsSet(n node, set engine.SetID) {
	if u, added := s.it.UnionDiff(s.ptsOf[n], set); added != engine.EmptySet {
		s.ptsOf[n] = u
		s.delta[n] = s.it.Union(s.delta[n], added)
		s.wl.Push(int(n))
	}
}

// addCopy inserts the copy edge src→dst, propagating the current set.
func (s *solver) addCopy(src, dst node) {
	if src == dst {
		return
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if s.hasEdge[key] {
		return
	}
	s.hasEdge[key] = true
	s.copyOut[src] = append(s.copyOut[src], dst)
	s.wl.AddEdge(int(src), int(dst))
	if s.ptsOf[src] != engine.EmptySet {
		s.addPtsSet(dst, s.ptsOf[src])
	}
}

// initConstraints seeds the graph from every statement. Calls and forks
// bind through the pre-analysis' final resolution (cg.CalleesOf) — the
// pre-analysis over-approximates this solver, so its target sets are
// sound here and remove the need for on-the-fly binding.
func (s *solver) initConstraints() {
	for _, f := range s.prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				s.addStmt(f, st)
			}
		}
	}
}

func (s *solver) addStmt(f *ir.Function, st ir.Stmt) {
	switch st := st.(type) {
	case *ir.AddrOf:
		s.addPts(s.varNode(st.Dst), uint32(st.Obj.ID))
	case *ir.Copy:
		s.addCopy(s.varNode(st.Src), s.varNode(st.Dst))
	case *ir.Phi:
		for _, in := range st.Incoming {
			if in != nil {
				s.addCopy(s.varNode(in), s.varNode(st.Dst))
			}
		}
	case *ir.Load:
		s.loadsAt[st.Addr.ID] = append(s.loadsAt[st.Addr.ID], int32(s.sum.loadIdx[st]))
	case *ir.Store:
		s.storesAt[st.Addr.ID] = append(s.storesAt[st.Addr.ID], int32(s.sum.storeIdx[st]))
	case *ir.Gep:
		s.geps[st.Base.ID] = append(s.geps[st.Base.ID], gepCon{dst: s.varNode(st.Dst), field: st.Field})
	case *ir.Call:
		for _, t := range s.cg.CalleesOf[st] {
			s.bindCall(st, t)
		}
	case *ir.Ret:
		if st.Val != nil && f.RetVar != nil {
			s.addCopy(s.varNode(st.Val), s.varNode(f.RetVar))
		}
	case *ir.Fork:
		if st.Dst != nil {
			s.addPts(s.varNode(st.Dst), uint32(st.Handle.ID))
		}
		for _, t := range s.cg.CalleesOf[st] {
			if st.Arg != nil && len(t.Params) > 0 {
				s.addCopy(s.varNode(st.Arg), s.varNode(t.Params[0]))
			}
		}
	}
}

// bindCall wires up parameter and return copies for call→callee.
func (s *solver) bindCall(call *ir.Call, callee *ir.Function) {
	n := len(call.Args)
	if len(callee.Params) < n {
		n = len(callee.Params)
	}
	for i := 0; i < n; i++ {
		s.addCopy(s.varNode(call.Args[i]), s.varNode(callee.Params[i]))
	}
	if call.Dst != nil && callee.RetVar != nil {
		s.addCopy(s.varNode(callee.RetVar), s.varNode(call.Dst))
	}
}

// solve runs the difference-propagation worklist to a fixpoint. The
// worklist pop is the cancellation/budget poll point.
func (s *solver) solve() error {
	for {
		if s.cancel.Cancelled() {
			return s.cancel.Err()
		}
		ni, ok := s.wl.Pop()
		if !ok {
			break
		}
		n := node(ni)
		d := s.delta[n]
		s.delta[n] = engine.EmptySet
		if d == engine.EmptySet {
			continue
		}
		s.iterations++

		if int(n) < s.numVars {
			s.it.Set(d).ForEach(func(objID uint32) { s.processVarDelta(n, objID) })
		}

		for _, m := range s.copyOut[n] {
			s.addPtsSet(m, d)
		}
	}
	return nil
}

// processVarDelta handles the complex constraints watching variable n for
// one newly discovered pointee: field materialization, the store write
// summary, and the reach-gated store→load pairing.
func (s *solver) processVarDelta(n node, objID uint32) {
	obj := s.prog.Objects[objID]
	for _, g := range s.geps[n] {
		fo := s.prog.FieldObj(obj, g.field)
		s.grow() // field objects may extend the node space
		s.addPts(g.dst, uint32(fo.ID))
	}
	for _, li := range s.loadsAt[n] {
		s.loadsOfObj[objID] = append(s.loadsOfObj[objID], li)
		for _, si := range s.storesOfObj[objID] {
			s.admit(int(si), int(li), objID)
		}
	}
	for _, si := range s.storesAt[n] {
		s.storesOfObj[objID] = append(s.storesOfObj[objID], si)
		s.addCopy(s.varNode(s.sum.stores[si].Src), s.objNode(obj))
		for _, li := range s.loadsOfObj[objID] {
			s.admit(int(si), int(li), objID)
		}
	}
}

// admit adds the store→load copy edge when the reach summary allows it:
// a Pseq path, or mutual concurrency on an object the escape oracle (when
// present) considers shared.
func (s *solver) admit(si, li int, objID uint32) {
	if !s.sum.seqReaches(si, li) {
		if !(s.sum.storeConc[si] && s.sum.loadConc[li]) {
			return
		}
		if s.shared != nil && !s.shared(objID) {
			s.prunedPairs++
			return
		}
	}
	src, dst := s.varNode(s.sum.stores[si].Src), s.varNode(s.sum.loads[li].Dst)
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if !s.hasEdge[key] {
		s.pairs++
	}
	s.addCopy(src, dst)
}

// result snapshots the solver state.
func (s *solver) result() *Result {
	r := &Result{
		Prog:         s.prog,
		varPts:       make([]*pts.Set, s.numVars),
		objPts:       make([]*pts.Set, len(s.prog.Objects)),
		varIDs:       make([]engine.SetID, s.numVars),
		objIDs:       make([]engine.SetID, len(s.prog.Objects)),
		intern:       s.it,
		Stores:       len(s.sum.stores),
		Loads:        len(s.sum.loads),
		Pairs:        s.pairs,
		PrunedPairs:  s.prunedPairs,
		SummaryBytes: s.sum.bytes(),
		Iterations:   s.iterations,
		Pops:         s.wl.Pops(),
	}
	for i := 0; i < s.numVars; i++ {
		r.varIDs[i] = s.ptsOf[i]
		r.varPts[i] = s.it.Set(s.ptsOf[i])
	}
	for i := range s.prog.Objects {
		id := s.ptsOf[s.numVars+i]
		r.objIDs[i] = id
		r.objPts[i] = s.it.Set(id)
	}
	return r
}

package locks_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/pipeline"
)

func analyze(t *testing.T, src string) (*pipeline.Base, *locks.Result) {
	t.Helper()
	b, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return b, locks.Analyze(b.Model)
}

// instOf builds the context-insensitive instance of a statement executed by
// the thread running its function (assumes exactly one instance).
func instOf(t *testing.T, b *pipeline.Base, s ir.Stmt) locks.Inst {
	t.Helper()
	f := ir.StmtFunc(s)
	for _, th := range b.Model.Threads {
		for fc := range b.Model.Funcs(th) {
			if fc.Func == f {
				return locks.Inst{Thread: th, Ctx: fc.Ctx, Stmt: s}
			}
		}
	}
	t.Fatalf("no instance for %s", s)
	return locks.Inst{}
}

// stmtsIn collects loads/stores in a function, in order.
func stmtsIn(b *pipeline.Base, fname string) (stores []*ir.Store, loads []*ir.Load) {
	f := b.Prog.FuncByName[fname]
	for _, blk := range f.Blocks {
		for _, s := range blk.Stmts {
			switch s := s.(type) {
			case *ir.Store:
				stores = append(stores, s)
			case *ir.Load:
				loads = append(loads, s)
			}
		}
	}
	return
}

func globalObj(t *testing.T, b *pipeline.Base, name string) *ir.Object {
	t.Helper()
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o
		}
	}
	t.Fatalf("no global %s", name)
	return nil
}

func TestSpanDiscovery(t *testing.T) {
	b, r := analyze(t, `
int x;
int *p;
lock_t m;
void w(void *a) {
	lock(&m);
	*p = &x;
	unlock(&m);
}
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	_ = b
	if r.NumSpans() != 1 {
		t.Fatalf("spans = %d, want 1", r.NumSpans())
	}
	sp := r.Spans[0]
	if sp.LockObj == nil || sp.LockObj.Name != "m" {
		t.Errorf("lock object = %v", sp.LockObj)
	}
}

func TestSpanMembership(t *testing.T) {
	b, r := analyze(t, `
int x;
int *p;
lock_t m;
void w(void *a) {
	*p = &x;      // before: not in span
	lock(&m);
	*p = &x;      // inside
	unlock(&m);
	*p = &x;      // after: not in span
}
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	stores, _ := stmtsIn(b, "w")
	if len(stores) != 3 {
		t.Fatalf("stores in w = %d", len(stores))
	}
	if n := len(r.SpansOf(instOf(t, b, stores[0]))); n != 0 {
		t.Errorf("store before lock in %d spans", n)
	}
	if n := len(r.SpansOf(instOf(t, b, stores[1]))); n != 1 {
		t.Errorf("store inside lock in %d spans, want 1", n)
	}
	if n := len(r.SpansOf(instOf(t, b, stores[2]))); n != 0 {
		t.Errorf("store after unlock in %d spans", n)
	}
}

func TestSpanCoversCallees(t *testing.T) {
	b, r := analyze(t, `
int x;
int *p;
lock_t m;
void helper() {
	*p = &x;
}
void w(void *a) {
	lock(&m);
	helper();
	unlock(&m);
}
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	stores, _ := stmtsIn(b, "helper")
	if len(stores) != 1 {
		t.Fatalf("stores in helper = %d", len(stores))
	}
	// The helper's store runs under the lock when called from the span.
	inst := instOf(t, b, stores[0])
	if len(r.SpansOf(inst)) != 1 {
		t.Errorf("callee store should be in the span")
	}
}

func TestCalleeOutsideSpanExcluded(t *testing.T) {
	b, r := analyze(t, `
int x;
int *p;
lock_t m;
void helper() {
	*p = &x;
}
void w(void *a) {
	helper();        // unlocked call
	lock(&m);
	helper();        // locked call
	unlock(&m);
}
int main() {
	p = &x;
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	stores, _ := stmtsIn(b, "helper")
	inst := instOf(t, b, stores[0])
	// Context-insensitive instance lookup: with two call sites the helper
	// has two context-qualified instances; at least the unlocked one must
	// be out of the span. Check per instance.
	f := b.Prog.FuncByName["helper"]
	inSpan, outSpan := 0, 0
	for _, th := range b.Model.Threads {
		for fc := range b.Model.Funcs(th) {
			if fc.Func != f {
				continue
			}
			i := locks.Inst{Thread: th, Ctx: fc.Ctx, Stmt: stores[0]}
			if len(r.SpansOf(i)) > 0 {
				inSpan++
			} else {
				outSpan++
			}
		}
	}
	_ = inst
	if inSpan != 1 || outSpan != 1 {
		t.Errorf("locked instances = %d, unlocked = %d, want 1/1 (context-sensitivity)", inSpan, outSpan)
	}
}

func TestAmbiguousLockNoSpan(t *testing.T) {
	_, r := analyze(t, `
int x;
int *p;
lock_t m1; lock_t m2;
lock_t *which;
int c;
void w(void *a) {
	lock(which);      // may be m1 or m2: no must-alias
	*p = &x;
	unlock(which);
}
int main() {
	p = &x;
	if (c > 0) { which = &m1; } else { which = &m2; }
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	if r.NumSpans() != 0 {
		t.Errorf("ambiguous lock pointer must produce no span, got %d", r.NumSpans())
	}
}

// fig9 is the paper's Figure 9 example: two spans under the same lock; the
// store s2 (not a tail) must be non-interfering with the load s4 (a head),
// while s3 (the tail) interferes.
const fig9 = `
int o;
int *p; int *q;
lock_t l1;

void bar() {
	int *v;
	v = *q;       // s4
}

void foo1(void *arg) {
	*p = &o;      // s1 (outside any span)
	lock(&l1);
	*p = &o;      // s2 (inside span, not tail)
	*p = &o;      // s3 (inside span, tail)
	unlock(&l1);
}

void foo2(void *arg) {
	lock(&l1);
	bar();        // s4 runs inside this span
	unlock(&l1);
}

int main() {
	p = &o; q = &o;
	thread_t t1; thread_t t2;
	t1 = spawn(foo1, NULL);
	t2 = spawn(foo2, NULL);
	join(t1);
	join(t2);
	return 0;
}
`

func TestFig9NonInterference(t *testing.T) {
	b, r := analyze(t, fig9)
	if r.NumSpans() != 2 {
		t.Fatalf("spans = %d, want 2", r.NumSpans())
	}
	stores, _ := stmtsIn(b, "foo1")
	if len(stores) != 3 {
		t.Fatalf("stores in foo1 = %d", len(stores))
	}
	obj := globalObj(t, b, "o")
	// v = *q lowers to two loads (fetch q, then deref); pick the one that
	// may access o.
	_, allLoads := stmtsIn(b, "bar")
	var loads []*ir.Load
	for _, l := range allLoads {
		if b.Pre.PointsToVar(l.Addr).Has(uint32(obj.ID)) {
			loads = append(loads, l)
		}
	}
	if len(loads) != 1 {
		t.Fatalf("loads of o in bar = %d", len(loads))
	}

	s2 := instOf(t, b, stores[1])
	s3 := instOf(t, b, stores[2])
	s4 := instOf(t, b, loads[0])

	if !r.NonInterfering(s2, s4, obj) {
		t.Error("s2→s4 must be non-interfering (s2 is not the span tail)")
	}
	if r.NonInterfering(s3, s4, obj) {
		t.Error("s3→s4 must interfere (tail → head)")
	}
	// s1 is outside any span: never filtered.
	s1 := instOf(t, b, stores[0])
	if r.NonInterfering(s1, s4, obj) {
		t.Error("s1 is unprotected and must interfere")
	}
}

func TestHeadFiltering(t *testing.T) {
	// A load preceded by a same-span store of the object is not a span
	// head, so tail stores elsewhere cannot interfere with it.
	b, r := analyze(t, `
int o;
int *p; int *q;
lock_t l1;
void foo1(void *arg) {
	lock(&l1);
	*p = &o;     // tail store in span A
	unlock(&l1);
}
void foo2(void *arg) {
	lock(&l1);
	*q = &o;     // store preceding the load: the load is not a head
	int *v;
	v = *q;
	unlock(&l1);
}
int main() {
	p = &o; q = &o;
	thread_t t1; thread_t t2;
	t1 = spawn(foo1, NULL);
	t2 = spawn(foo2, NULL);
	join(t1);
	join(t2);
	return 0;
}
`)
	storesA, _ := stmtsIn(b, "foo1")
	obj := globalObj(t, b, "o")
	_, allLoads := stmtsIn(b, "foo2")
	var loadsB []*ir.Load
	for _, l := range allLoads {
		if b.Pre.PointsToVar(l.Addr).Has(uint32(obj.ID)) {
			loadsB = append(loadsB, l)
		}
	}
	if len(loadsB) != 1 {
		t.Fatalf("loads of o in foo2 = %d", len(loadsB))
	}
	tail := instOf(t, b, storesA[0])
	load := instOf(t, b, loadsB[0])
	if !r.NonInterfering(tail, load, obj) {
		t.Error("tail→non-head load must be non-interfering")
	}
}

func TestDifferentLocksNeverFiltered(t *testing.T) {
	b, r := analyze(t, `
int o;
int *p; int *q;
lock_t l1; lock_t l2;
void foo1(void *arg) {
	lock(&l1);
	*p = &o;
	unlock(&l1);
}
void foo2(void *arg) {
	lock(&l2);
	int *v;
	v = *q;
	unlock(&l2);
}
int main() {
	p = &o; q = &o;
	thread_t t1; thread_t t2;
	t1 = spawn(foo1, NULL);
	t2 = spawn(foo2, NULL);
	join(t1);
	join(t2);
	return 0;
}
`)
	stores, _ := stmtsIn(b, "foo1")
	_, loads := stmtsIn(b, "foo2")
	obj := globalObj(t, b, "o")
	if r.NonInterfering(instOf(t, b, stores[0]), instOf(t, b, loads[0]), obj) {
		t.Error("different locks must not be non-interfering")
	}
}

// TestFig13TaskQueue mirrors the radiosity pattern (paper Figure 13): the
// lock field of a struct guards repeated writes to the queue tail; the
// early write must be filtered against the peer span's accesses.
func TestFig13TaskQueue(t *testing.T) {
	b, r := analyze(t, `
struct TQ { int *tail; lock_t qlock; };
struct TQ q;
int task;
void dequeue(void *arg) {
	lock(&q.qlock);
	q.tail = NULL;      // line 457-style write (not tail of span)
	q.tail = &task;     // line 470-style write (tail)
	unlock(&q.qlock);
}
void enqueue(void *arg) {
	lock(&q.qlock);
	int *t2;
	t2 = q.tail;        // head read
	q.tail = t2;
	unlock(&q.qlock);
}
int main() {
	thread_t a; thread_t b2;
	a = spawn(dequeue, NULL);
	b2 = spawn(enqueue, NULL);
	join(a);
	join(b2);
	return 0;
}
`)
	if r.NumSpans() != 2 {
		t.Fatalf("spans = %d, want 2 (struct-field lock must resolve)", r.NumSpans())
	}
	storesD, _ := stmtsIn(b, "dequeue")
	_, loadsE := stmtsIn(b, "enqueue")
	if len(storesD) != 2 || len(loadsE) != 1 {
		t.Fatalf("unexpected statement counts: %d stores, %d loads", len(storesD), len(loadsE))
	}
	// The guarded object is the tail field of q.
	var tailObj *ir.Object
	for _, o := range b.Prog.Objects {
		if o.Kind == ir.ObjField && o.Root().Name == "q" && o.FieldIdx == 0 {
			tailObj = o
		}
	}
	if tailObj == nil {
		t.Fatal("no field object for q.tail")
	}
	early := instOf(t, b, storesD[0])
	late := instOf(t, b, storesD[1])
	head := instOf(t, b, loadsE[0])
	if !r.NonInterfering(early, head, tailObj) {
		t.Error("the early write must be filtered (Figure 13)")
	}
	if r.NonInterfering(late, head, tailObj) {
		t.Error("the final write is the span tail and must interfere")
	}
}

func TestLockInRecursionSkipped(t *testing.T) {
	_, r := analyze(t, `
int x;
int *p;
lock_t m;
void rec(int n) {
	lock(&m);
	*p = &x;
	unlock(&m);
	if (n > 0) { rec(n - 1); }
}
int main() {
	p = &x;
	rec(2);
	return 0;
}
`)
	if r.NumSpans() != 0 {
		t.Errorf("recursive lock region must be skipped (sound), got %d spans", r.NumSpans())
	}
}

func TestBytes(t *testing.T) {
	_, r := analyze(t, `
int x; int *p;
lock_t m;
void w(void *a) { lock(&m); *p = &x; unlock(&m); }
int main() { p = &x; thread_t t; t = spawn(w, NULL); join(t); return 0; }
`)
	if r.NumSpans() > 0 && r.Bytes() == 0 {
		t.Error("bytes accounting")
	}
}

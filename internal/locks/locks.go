// Package locks implements the paper's lock analysis (Section 3.3.3): flow-
// and context-sensitive lock-release spans (Definition 3), per-object span
// heads and tails (Definitions 4 and 5), and the non-interference lock-pair
// filter (Definition 6) that removes spurious [THREAD-VF] def-use edges
// between mutually exclusive regions.
//
// Soundness notes. Span membership must be a MUST property (a statement is
// in a span only if it always holds the lock when executed), so spans are
// under-approximated: a context-qualified node belongs to the span of a lock
// acquisition only when it is (a) forward-reachable from the acquisition
// without passing a may-release of the same lock, (b) not reachable from the
// locking function's entry without passing the acquisition, and (c) inside
// the locking function or its callees. Locks are matched only through
// must-alias singleton lock objects; acquisitions in recursive functions
// produce no span. Span heads/tails are over-approximated (may-reach), which
// only reduces filtering.
package locks

import (
	"sync"

	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/threads"
)

// Inst is a context-sensitive statement instance executed by a thread.
type Inst struct {
	Thread *threads.Thread
	Ctx    callgraph.Ctx
	Stmt   ir.Stmt
}

// nodeCtx is a context-qualified ICFG node.
type nodeCtx struct {
	node *icfg.Node
	ctx  callgraph.Ctx
}

// Span is one lock-release span: the statements executed with a given lock
// held, from one context-sensitive acquisition (Definition 3).
type Span struct {
	ID      int
	Thread  *threads.Thread
	Lock    *ir.Lock
	Ctx     callgraph.Ctx
	LockObj *ir.Object

	// nodes are the context-qualified statements in the span.
	nodes map[nodeCtx]bool

	// accesses are the span's Load/Store nodes, in discovery order.
	accesses []nodeCtx

	// reach[i] lists indices of accesses reachable from accesses[i] within
	// the span (exclusive of i itself unless through a cycle).
	reach [][]int

	// hdMemo/tlMemo lazily cache the per-object Head/Tail computations.
	// memoMu guards them: Head and Tail are reached from post-analysis
	// query clients (race and deadlock detection) that may run from
	// concurrent readers of one completed Analysis, not just from the
	// single-threaded def-use phase. The cached maps themselves are
	// immutable once published.
	memoMu sync.Mutex
	hdMemo map[*ir.Object]map[nodeCtx]bool
	tlMemo map[*ir.Object]map[nodeCtx]bool
}

// Result is the computed lock analysis.
type Result struct {
	Model *threads.Model
	Pre   *andersen.Result

	Spans []*Span

	// spansOf indexes spans by the context-qualified statements they
	// contain, per thread.
	spansOf map[instKey][]*Span
}

type instKey struct {
	thread int
	ctx    callgraph.Ctx
	stmt   ir.StmtID
}

// Analyze discovers all lock-release spans.
func Analyze(model *threads.Model) *Result {
	r := &Result{
		Model:   model,
		Pre:     model.Pre,
		spansOf: map[instKey][]*Span{},
	}
	for _, t := range model.Threads {
		for fc := range model.Funcs(t) {
			for _, b := range fc.Func.Blocks {
				for _, s := range b.Stmts {
					if l, ok := s.(*ir.Lock); ok {
						r.buildSpan(t, fc.Ctx, l)
					}
				}
			}
		}
	}
	return r
}

// mustLockObj resolves ptr to a singleton must-alias lock object, or nil.
func (r *Result) mustLockObj(ptr *ir.Var) *ir.Object {
	set := r.Pre.PointsToVar(ptr)
	id, ok := set.Single()
	if !ok {
		return nil
	}
	obj := r.Pre.Obj(id)
	// Must-alias requires a singleton runtime object: a global or a
	// non-recursive stack lock; heap locks and arrays of locks are skipped.
	switch obj.Kind {
	case ir.ObjGlobal:
	case ir.ObjStack, ir.ObjField:
		root := obj.Root()
		if root.Func != nil && r.Model.CG.InRecursion(root.Func) {
			return nil
		}
		if root.Kind == ir.ObjHeap {
			return nil
		}
	default:
		return nil
	}
	if obj.IsArray || obj.Root().IsArray {
		return nil
	}
	return obj
}

// mayReleaseLock reports whether an unlock may release obj.
func (r *Result) mayReleaseLock(u *ir.Unlock, obj *ir.Object) bool {
	return r.Pre.PointsToVar(u.Ptr).Has(uint32(obj.ID))
}

// buildSpan constructs the span for one context-sensitive acquisition.
func (r *Result) buildSpan(t *threads.Thread, ctx callgraph.Ctx, l *ir.Lock) {
	m := r.Model
	lockObj := r.mustLockObj(l.Ptr)
	if lockObj == nil {
		return
	}
	lockFunc := ir.StmtFunc(l)
	if lockFunc == nil || m.CG.InRecursion(lockFunc) {
		return // cannot bound the region in recursive code (sound skip)
	}
	lockNode := m.G.StmtNode[l]
	if lockNode == nil {
		return
	}

	// A: nodes forward-reachable from the acquisition without passing a
	// may-release of the lock, confined to lockFunc and its callees.
	reached := map[nodeCtx]bool{}
	start := nodeCtx{node: lockNode, ctx: ctx}
	reached[start] = true
	frontier := []nodeCtx{start}
	for len(frontier) > 0 {
		nc := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if u, ok := stmtOf(nc.node).(*ir.Unlock); ok && nc != start {
			if r.mayReleaseLock(u, lockObj) {
				continue // the release ends the span on this path
			}
		}
		for _, next := range r.succsWithin(nc, ctx, lockFunc) {
			if !reached[next] {
				reached[next] = true
				frontier = append(frontier, next)
			}
		}
	}

	// B: nodes reachable from lockFunc's entry (same ctx) without passing
	// the acquisition; these may execute without the lock and must be
	// excluded.
	unlockedReach := map[nodeCtx]bool{}
	entry := m.G.EntryOf[lockFunc]
	if entry != nil {
		startB := nodeCtx{node: entry, ctx: ctx}
		unlockedReach[startB] = true
		frontier = []nodeCtx{startB}
		for len(frontier) > 0 {
			nc := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if nc.node == lockNode && nc.ctx == ctx {
				continue // blocked at the acquisition
			}
			for _, next := range r.succsWithin(nc, ctx, lockFunc) {
				if !unlockedReach[next] {
					unlockedReach[next] = true
					frontier = append(frontier, next)
				}
			}
		}
	}

	sp := &Span{
		ID:      len(r.Spans),
		Thread:  t,
		Lock:    l,
		Ctx:     ctx,
		LockObj: lockObj,
		nodes:   map[nodeCtx]bool{},
		hdMemo:  map[*ir.Object]map[nodeCtx]bool{},
		tlMemo:  map[*ir.Object]map[nodeCtx]bool{},
	}
	for nc := range reached {
		if unlockedReach[nc] {
			continue
		}
		if nc.node.Kind != icfg.NStmt {
			continue
		}
		sp.nodes[nc] = true
		if ir.IsMemAccess(nc.node.Stmt) {
			sp.accesses = append(sp.accesses, nc)
		}
	}
	if len(sp.nodes) == 0 {
		return
	}
	sp.computeAccessReach(r, ctx, lockFunc, lockObj)
	r.Spans = append(r.Spans, sp)
	for nc := range sp.nodes {
		key := instKey{thread: t.ID, ctx: nc.ctx, stmt: nc.node.Stmt.ID()}
		r.spansOf[key] = append(r.spansOf[key], sp)
	}
}

func stmtOf(n *icfg.Node) ir.Stmt {
	if n.Kind == icfg.NStmt {
		return n.Stmt
	}
	return nil
}

// succsWithin yields the context-qualified successors of nc staying inside
// baseFunc and its callees: intra edges, call edges (context push, SCC
// merged), and matched return edges that do not pop past baseCtx.
func (r *Result) succsWithin(nc nodeCtx, baseCtx callgraph.Ctx, baseFunc *ir.Function) []nodeCtx {
	m := r.Model
	var out []nodeCtx
	for _, e := range nc.node.Out {
		switch e.Kind {
		case icfg.EIntra:
			out = append(out, nodeCtx{node: e.To, ctx: nc.ctx})
		case icfg.ECall:
			callee := e.To.Func
			nctx := nc.ctx
			if !m.CG.SameSCC(nc.node.Func, callee) {
				nctx = m.Ctxs.Push(nc.ctx, e.Site.ID())
			}
			out = append(out, nodeCtx{node: e.To, ctx: nctx})
		case icfg.ERet:
			if nc.node.Func == baseFunc && nc.ctx == baseCtx {
				continue // never leave the locking function
			}
			if m.Ctxs.Peek(nc.ctx) == e.Site.ID() {
				out = append(out, nodeCtx{node: e.To, ctx: m.Ctxs.Pop(nc.ctx)})
			}
		}
	}
	return out
}

// computeAccessReach precomputes, for each memory access in the span, which
// other accesses are forward-reachable from it within the span.
func (sp *Span) computeAccessReach(r *Result, baseCtx callgraph.Ctx, baseFunc *ir.Function, lockObj *ir.Object) {
	idx := map[nodeCtx]int{}
	for i, a := range sp.accesses {
		idx[a] = i
	}
	sp.reach = make([][]int, len(sp.accesses))
	for i, a := range sp.accesses {
		seen := map[nodeCtx]bool{a: true}
		frontier := []nodeCtx{a}
		for len(frontier) > 0 {
			nc := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, next := range r.succsWithin(nc, baseCtx, baseFunc) {
				if !sp.nodes[next] || seen[next] {
					continue
				}
				seen[next] = true
				frontier = append(frontier, next)
				if j, ok := idx[next]; ok {
					sp.reach[i] = append(sp.reach[i], j)
				}
			}
		}
	}
}

// accessTouches reports whether the access statement may touch obj, and
// whether it is a store.
func (r *Result) accessTouches(s ir.Stmt, obj *ir.Object) (touches, isStore bool) {
	switch s := s.(type) {
	case *ir.Load:
		return r.Pre.PointsToVar(s.Addr).Has(uint32(obj.ID)), false
	case *ir.Store:
		return r.Pre.PointsToVar(s.Addr).Has(uint32(obj.ID)), true
	}
	return false, false
}

// Head computes HD(sp, o): accesses of o with no span-internal store of o
// reaching them (Definition 4).
func (sp *Span) Head(r *Result, obj *ir.Object) map[nodeCtx]bool {
	sp.memoMu.Lock()
	defer sp.memoMu.Unlock()
	if hd, ok := sp.hdMemo[obj]; ok {
		return hd
	}
	hd := map[nodeCtx]bool{}
	for i, a := range sp.accesses {
		touches, _ := r.accessTouches(a.node.Stmt, obj)
		if !touches {
			continue
		}
		preceded := false
		for j, b := range sp.accesses {
			if i == j {
				continue
			}
			jTouches, jStore := r.accessTouches(b.node.Stmt, obj)
			if !jTouches || !jStore {
				continue
			}
			for _, k := range sp.reach[j] {
				if k == i {
					preceded = true
					break
				}
			}
			if preceded {
				break
			}
		}
		if !preceded {
			hd[a] = true
		}
	}
	sp.hdMemo[obj] = hd
	return hd
}

// Tail computes TL(sp, o): stores of o with no later span-internal store of
// o (Definition 5).
func (sp *Span) Tail(r *Result, obj *ir.Object) map[nodeCtx]bool {
	sp.memoMu.Lock()
	defer sp.memoMu.Unlock()
	if tl, ok := sp.tlMemo[obj]; ok {
		return tl
	}
	tl := map[nodeCtx]bool{}
	for i, a := range sp.accesses {
		touches, isStore := r.accessTouches(a.node.Stmt, obj)
		if !touches || !isStore {
			continue
		}
		followed := false
		for _, k := range sp.reach[i] {
			if k == i {
				continue
			}
			kTouches, kStore := r.accessTouches(sp.accesses[k].node.Stmt, obj)
			if kTouches && kStore {
				followed = true
				break
			}
		}
		if !followed {
			tl[a] = true
		}
	}
	sp.tlMemo[obj] = tl
	return tl
}

// AccessStmts returns the span's Load/Store statements in discovery
// order. Duplicates are possible when one statement is reached under
// several contexts; callers that need a set should deduplicate.
func (sp *Span) AccessStmts() []ir.Stmt {
	out := make([]ir.Stmt, len(sp.accesses))
	for i, a := range sp.accesses {
		out[i] = a.node.Stmt
	}
	return out
}

// SpansOf returns the spans containing the given instance.
func (r *Result) SpansOf(in Inst) []*Span {
	return r.spansOf[instKey{thread: in.Thread.ID, ctx: in.Ctx, stmt: in.Stmt.ID()}]
}

// NonInterfering implements Definition 6: the MHP pair (store, access) on
// object obj is non-interfering when both instances sit in spans of a
// common lock and the store is not a span tail or the access is not a span
// head for obj.
func (r *Result) NonInterfering(store, access Inst, obj *ir.Object) bool {
	storeSpans := r.SpansOf(store)
	if len(storeSpans) == 0 {
		return false
	}
	accessSpans := r.SpansOf(access)
	if len(accessSpans) == 0 {
		return false
	}
	m := r.Model
	storeNC := nodeCtx{node: m.G.StmtNode[store.Stmt], ctx: store.Ctx}
	accessNC := nodeCtx{node: m.G.StmtNode[access.Stmt], ctx: access.Ctx}
	for _, sp1 := range storeSpans {
		for _, sp2 := range accessSpans {
			if sp1.LockObj != sp2.LockObj {
				continue
			}
			if !sp1.Tail(r, obj)[storeNC] || !sp2.Head(r, obj)[accessNC] {
				return true
			}
		}
	}
	return false
}

// NumSpans returns the number of discovered spans.
func (r *Result) NumSpans() int { return len(r.Spans) }

// Bytes reports the approximate footprint of span data.
func (r *Result) Bytes() uint64 {
	var total uint64
	for _, sp := range r.Spans {
		total += uint64(len(sp.nodes))*24 + uint64(len(sp.accesses))*16
		for _, rr := range sp.reach {
			total += uint64(len(rr)) * 8
		}
	}
	return total
}

package checkers

// Adapters for the three pre-existing detection clients. Messages avoid
// embedding line numbers (positions live in Line/Related) so content
// fingerprints survive renumbering-only edits.

import (
	"fmt"
	"strings"

	"repro/internal/deadlock"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/leak"
	"repro/internal/race"
)

func accessKind(s ir.Stmt) string {
	if _, ok := s.(*ir.Store); ok {
		return "write"
	}
	return "read"
}

var raceChecker = &Checker{
	ID:       "race",
	Name:     "DataRace",
	Doc:      "concurrent accesses to a common object, at least one a write, with no common lock",
	Severity: diag.SevWarning,
	available: func(f *Facts) string {
		if !f.FullPrecision {
			return "requires a full-precision result (" + f.PrecisionNote + ")"
		}
		if f.MHP == nil {
			return "requires the interleaving analysis (disable NoInterleaving)"
		}
		return ""
	},
	run: func(f *Facts) []diag.Diagnostic {
		d := &race.Detector{Model: f.Model, MHP: f.MHP, Locks: f.Locks, Points: f.Points}
		var out []diag.Diagnostic
		for _, r := range d.Detect() {
			out = append(out, diag.Diagnostic{
				Line: ir.LineOf(r.First),
				Message: fmt.Sprintf("data race on %s: %s by %s and %s by %s without a common lock",
					r.Obj, accessKind(r.First), r.Threads[0], accessKind(r.Second), r.Threads[1]),
				Object:  r.Obj.Name,
				Threads: []string{r.Threads[0].String(), r.Threads[1].String()},
				Related: []diag.Related{{
					Line:    ir.LineOf(r.Second),
					Message: fmt.Sprintf("conflicting %s by %s", accessKind(r.Second), r.Threads[1]),
				}},
			})
		}
		return out
	},
}

var deadlockChecker = &Checker{
	ID:       "deadlock",
	Name:     "LockOrderCycle",
	Doc:      "a cycle of lock acquisitions whose edges can run concurrently (Goodlock)",
	Severity: diag.SevWarning,
	available: func(f *Facts) string {
		if !f.FullPrecision {
			return "requires a full-precision result (" + f.PrecisionNote + ")"
		}
		if f.MHP == nil {
			return "requires the interleaving analysis (disable NoInterleaving)"
		}
		if f.Locks == nil {
			return "requires the lock analysis (disable NoLock)"
		}
		return ""
	},
	run: func(f *Facts) []diag.Diagnostic {
		d := &deadlock.Detector{Model: f.Model, MHP: f.MHP, Locks: f.Locks}
		var out []diag.Diagnostic
		for _, r := range d.Detect() {
			names := make([]string, 0, len(r.Cycle)+1)
			for _, o := range r.Cycle {
				names = append(names, o.Name)
			}
			names = append(names, r.Cycle[0].Name)
			var related []diag.Related
			for i, e := range r.Edges {
				related = append(related, diag.Related{
					Line: ir.LineOf(e.Site.Stmt),
					Message: fmt.Sprintf("%s acquires %s while holding %s",
						e.Site.Thread, r.Cycle[(i+1)%len(r.Cycle)].Name, r.Cycle[i].Name),
				})
			}
			threadNames := make([]string, 0, len(r.Edges))
			seen := map[string]bool{}
			for _, e := range r.Edges {
				n := e.Site.Thread.String()
				if !seen[n] {
					seen[n] = true
					threadNames = append(threadNames, n)
				}
			}
			out = append(out, diag.Diagnostic{
				Line:    ir.LineOf(r.Edges[0].Site.Stmt),
				Message: "potential deadlock: lock-order cycle " + strings.Join(names, " -> "),
				Object:  r.Cycle[0].Name,
				Threads: threadNames,
				Related: related,
			})
		}
		return out
	},
}

var leakChecker = &Checker{
	ID:       "leak",
	Name:     "MemoryLeak",
	Doc:      "a heap allocation neither must-freed nor reachable from globals at exit",
	Severity: diag.SevWarning,
	available: func(f *Facts) string {
		if f.Points == nil {
			return "requires a flow-sensitive result (" + f.PrecisionNote + ")"
		}
		return ""
	},
	run: func(f *Facts) []diag.Diagnostic {
		d := &leak.Detector{Prog: f.Prog, Points: f.Points, Reachable: f.Reachable}
		var out []diag.Diagnostic
		for _, r := range d.Detect() {
			out = append(out, diag.Diagnostic{
				Line:    ir.LineOf(r.Alloc),
				Message: fmt.Sprintf("%s may leak: never freed and unreachable from globals at exit", r.Obj),
				Object:  r.Obj.Name,
			})
		}
		return out
	},
}

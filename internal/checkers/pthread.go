package checkers

// pthread-API misuse: double lock, unlock-without-lock and self-join,
// derived from the lock-span analysis and the thread model. A lock
// acquisition that sits inside an existing span of the same lock object is
// a double lock (self-deadlock on non-recursive mutexes); an unlock whose
// instance lies in no span of the unlocked object releases a mutex the
// thread does not hold; a join whose handle may name the joining thread's
// own handle is a self-join (EDEADLK).

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/locks"
)

var pthreadChecker = &Checker{
	ID:       "pthread",
	Name:     "PthreadMisuse",
	Doc:      "pthread API misuse: double lock, unlock without a held lock, self-join",
	Severity: diag.SevWarning,
	available: func(f *Facts) string {
		if f.Model == nil {
			return "requires the thread model (" + f.PrecisionNote + ")"
		}
		return ""
	},
	run: func(f *Facts) []diag.Diagnostic {
		var out []diag.Diagnostic
		if f.Locks != nil {
			out = append(out, doubleLocks(f)...)
			out = append(out, unpairedUnlocks(f)...)
		}
		out = append(out, selfJoins(f)...)
		return out
	},
}

// doubleLocks flags acquisitions lying inside a span of the same lock
// object. A Lock statement is excluded from its own span, so membership
// means an enclosing earlier acquisition of that lock is still held.
func doubleLocks(f *Facts) []diag.Diagnostic {
	type key struct {
		lock ir.StmtID
		obj  ir.ObjID
	}
	seen := map[key]bool{}
	var out []diag.Diagnostic
	for _, t := range f.Model.Threads {
		for _, fc := range sortedFuncs(f.Model, t) {
			for _, blk := range fc.Func.Blocks {
				for _, s := range blk.Stmts {
					l, ok := s.(*ir.Lock)
					if !ok {
						continue
					}
					inst := locks.Inst{Thread: t, Ctx: fc.Ctx, Stmt: l}
					acquired := f.Pre.PointsToVar(l.Ptr)
					for _, sp := range f.Locks.SpansOf(inst) {
						if sp.Thread != t || !acquired.Has(uint32(sp.LockObj.ID)) {
							continue
						}
						k := key{l.ID(), sp.LockObj.ID}
						if seen[k] {
							continue
						}
						seen[k] = true
						out = append(out, diag.Diagnostic{
							Line: ir.LineOf(l),
							Message: fmt.Sprintf("double lock of %s by %s: already held at this acquisition",
								sp.LockObj, t),
							Object:  sp.LockObj.Name,
							Threads: []string{t.String()},
							Related: []diag.Related{{
								Line:    ir.LineOf(sp.Lock),
								Message: fmt.Sprintf("%s first acquired here", sp.LockObj),
							}},
						})
					}
				}
			}
		}
	}
	return out
}

// unpairedUnlocks flags unlocks whose instance lies in no span of the
// unlocked object: the thread releases a mutex it did not acquire (which
// includes cross-thread lock handoff, undefined for pthread mutexes).
func unpairedUnlocks(f *Facts) []diag.Diagnostic {
	type key struct {
		unlock ir.StmtID
		obj    ir.ObjID
	}
	seen := map[key]bool{}
	var out []diag.Diagnostic
	for _, t := range f.Model.Threads {
		for _, fc := range sortedFuncs(f.Model, t) {
			for _, blk := range fc.Func.Blocks {
				for _, s := range blk.Stmts {
					u, ok := s.(*ir.Unlock)
					if !ok {
						continue
					}
					inst := locks.Inst{Thread: t, Ctx: fc.Ctx, Stmt: u}
					spans := f.Locks.SpansOf(inst)
					f.Pre.PointsToVar(u.Ptr).ForEach(func(id uint32) {
						obj := f.Prog.Objects[id]
						for _, sp := range spans {
							if sp.Thread == t && sp.LockObj == obj {
								return // paired with an acquisition
							}
						}
						k := key{u.ID(), obj.ID}
						if seen[k] {
							return
						}
						seen[k] = true
						out = append(out, diag.Diagnostic{
							Line: ir.LineOf(u),
							Message: fmt.Sprintf("unlock of %s by %s without a matching lock acquisition in this thread",
								obj, t),
							Object:  obj.Name,
							Threads: []string{t.String()},
						})
					})
				}
			}
		}
	}
	return out
}

// selfJoins flags joins whose handle may name the joining thread's own
// fork handle.
func selfJoins(f *Facts) []diag.Diagnostic {
	handleFork := map[*ir.Object]*ir.Fork{}
	for _, s := range f.Prog.Stmts {
		if fk, ok := s.(*ir.Fork); ok && fk.Handle != nil {
			handleFork[fk.Handle] = fk
		}
	}
	type key struct {
		join   ir.StmtID
		thread int
	}
	seen := map[key]bool{}
	var out []diag.Diagnostic
	for _, t := range f.Model.Threads {
		for _, sc := range f.Model.JoinSites(t) {
			j, ok := sc.Stmt.(*ir.Join)
			if !ok {
				continue
			}
			f.Pre.PointsToVar(j.Handle).ForEach(func(id uint32) {
				fk := handleFork[f.Prog.Objects[id]]
				if fk == nil {
					return
				}
				for _, tt := range f.Model.ThreadsAtFork[fk] {
					if tt != t {
						continue
					}
					k := key{j.ID(), t.ID}
					if seen[k] {
						continue
					}
					seen[k] = true
					out = append(out, diag.Diagnostic{
						Line:    ir.LineOf(j),
						Message: fmt.Sprintf("%s may join itself: the joined handle can name the joining thread", t),
						Object:  fk.Handle.Name,
						Threads: []string{t.String()},
					})
				}
			})
		}
	}
	return out
}

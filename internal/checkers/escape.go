package checkers

// The escape-aware checkers consume the thread-escape sharedness
// classification (internal/escape) alongside the lockset and interleaving
// analyses, covering the lockset-hybrid bug classes the pairwise race
// detector is not shaped for:
//
//   - localonlylock: a mutex whose spans only ever guard ThreadLocal data
//     — the synchronization is unnecessary (a perf smell, not a bug).
//   - unsyncshared: Eraser-style inconsistent locking — a Shared object
//     written under an empty candidate lockset (no single lock protects
//     all of its accesses), refined by statement-level MHP so HB-ordered
//     fork handoffs do not fire.
//   - escapeleak: the address of a ThreadLocal stack object stored into a
//     Shared sink — a latent escape no thread dereferences yet, invisible
//     to accessor-based race detection.

import (
	"fmt"
	"sort"

	"repro/internal/diag"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/locks"
)

var localOnlyLockChecker = &Checker{
	ID:       "localonlylock",
	Name:     "LocalOnlyLock",
	Doc:      "mutex only guards thread-local data; the synchronization is unnecessary",
	Severity: diag.SevNote,
	available: func(f *Facts) string {
		if f.Model == nil {
			return "requires the thread model (" + f.PrecisionNote + ")"
		}
		if f.Locks == nil {
			return "requires the lock analysis (" + f.PrecisionNote + ")"
		}
		if f.Escape == nil {
			return "requires the escape analysis (" + f.PrecisionNote + ")"
		}
		return ""
	},
	run: localOnlyLocks,
}

// localOnlyLocks groups spans by lock object and reports every lock whose
// spans guard at least one data object, all of them ThreadLocal.
func localOnlyLocks(f *Facts) []diag.Diagnostic {
	type lockState struct {
		firstSpan *locks.Span // minimum span ID, the report position
		guarded   map[ir.ObjID]bool
		allLocal  bool
	}
	states := map[ir.ObjID]*lockState{}
	for _, sp := range f.Locks.Spans {
		st := states[sp.LockObj.ID]
		if st == nil {
			st = &lockState{firstSpan: sp, guarded: map[ir.ObjID]bool{}, allLocal: true}
			states[sp.LockObj.ID] = st
		} else if sp.ID < st.firstSpan.ID {
			st.firstSpan = sp
		}
		for _, s := range sp.AccessStmts() {
			var addr *ir.Var
			switch a := s.(type) {
			case *ir.Load:
				addr = a.Addr
			case *ir.Store:
				addr = a.Addr
			default:
				continue
			}
			f.pointsTo(addr).ForEach(func(id uint32) {
				obj := f.Prog.Objects[id]
				if obj.ID == sp.LockObj.ID {
					return
				}
				st.guarded[obj.ID] = true
				if f.Escape.ClassOf(obj.ID) != escape.ThreadLocal {
					st.allLocal = false
				}
			})
		}
	}

	ids := make([]ir.ObjID, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var out []diag.Diagnostic
	for _, id := range ids {
		st := states[id]
		if len(st.guarded) == 0 || !st.allLocal {
			continue
		}
		lockObj := st.firstSpan.LockObj
		out = append(out, diag.Diagnostic{
			Line: ir.LineOf(st.firstSpan.Lock),
			Message: fmt.Sprintf(
				"lock %s only guards thread-local data (%d object(s)); the synchronization is unnecessary",
				lockObj, len(st.guarded)),
			Object:  lockObj.Name,
			Threads: []string{st.firstSpan.Thread.String()},
		})
	}
	return out
}

var unsyncSharedChecker = &Checker{
	ID:       "unsyncshared",
	Name:     "UnsyncedSharedWrite",
	Doc:      "shared object written with no single lock protecting all of its accesses (Eraser lockset)",
	Severity: diag.SevWarning,
	available: func(f *Facts) string {
		if f.Model == nil {
			return "requires the thread model (" + f.PrecisionNote + ")"
		}
		if f.MHP == nil {
			return "requires the interleaving analysis (" + f.PrecisionNote + ")"
		}
		if f.Locks == nil {
			return "requires the lock analysis (" + f.PrecisionNote + ")"
		}
		if f.Escape == nil {
			return "requires the escape analysis (" + f.PrecisionNote + ")"
		}
		return ""
	},
	run: unsyncSharedWrites,
}

// objAccess is one context-sensitive Load/Store instance on an object,
// with the lockset held at the access.
type objAccess struct {
	inst    locks.Inst
	isStore bool
	lockset map[ir.ObjID]bool
}

// unsyncSharedWrites implements the Eraser candidate-lockset discipline
// over the escape analysis's Shared objects: for each Shared object, the
// candidate set is the intersection of the locksets of its concurrent
// Load/Store accesses — those with at least one statement-level-MHP
// partner access on the same object. Restricting to concurrent accesses is
// the happens-before refinement (Eraser's ownership state machine,
// approximated by MHP): a parent's unlocked pre-fork initialization is
// ordered before every reader and must not void the lockset. An empty
// candidate set with at least one concurrent store is inconsistent
// locking. The report is object-granular, so it also fires when every
// individual pair shares SOME lock but no single lock covers all accesses.
func unsyncSharedWrites(f *Facts) []diag.Diagnostic {
	accessesOf := map[ir.ObjID][]objAccess{}
	for _, t := range f.Model.Threads {
		for _, fc := range sortedFuncs(f.Model, t) {
			for _, blk := range fc.Func.Blocks {
				for _, s := range blk.Stmts {
					var addr *ir.Var
					isStore := false
					switch a := s.(type) {
					case *ir.Load:
						addr = a.Addr
					case *ir.Store:
						addr = a.Addr
						isStore = true
					default:
						continue
					}
					inst := locks.Inst{Thread: t, Ctx: fc.Ctx, Stmt: s}
					var lockset map[ir.ObjID]bool
					for _, sp := range f.Locks.SpansOf(inst) {
						if lockset == nil {
							lockset = map[ir.ObjID]bool{}
						}
						lockset[sp.LockObj.ID] = true
					}
					f.pointsTo(addr).ForEach(func(id uint32) {
						obj := f.Prog.Objects[id]
						if !f.Escape.IsShared(obj.ID) {
							return
						}
						accessesOf[obj.ID] = append(accessesOf[obj.ID],
							objAccess{inst: inst, isStore: isStore, lockset: lockset})
					})
				}
			}
		}
	}

	ids := make([]ir.ObjID, 0, len(accessesOf))
	for id := range accessesOf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var out []diag.Diagnostic
	for _, id := range ids {
		accs := accessesOf[id]
		// An access is concurrent when some other access of the same
		// object (or another runtime instance of itself, for multi
		// threads) may happen in parallel with it, statement-level.
		// partner[i] records the first such peer.
		partner := make([]int, len(accs))
		for i := range accs {
			partner[i] = -1
			for j := range accs {
				if i == j && !accs[i].inst.Thread.Multi {
					continue
				}
				if len(f.MHP.MHPInstances(accs[i].inst.Stmt, accs[j].inst.Stmt)) > 0 {
					partner[i] = j
					break
				}
			}
		}
		var candidate map[ir.ObjID]bool
		first := true
		var store, other *objAccess
		for i := range accs {
			if partner[i] < 0 {
				continue // HB-ordered with every peer: exempt.
			}
			if first {
				candidate, first = accs[i].lockset, false
			} else {
				candidate = intersectLocksets(candidate, accs[i].lockset)
			}
			if accs[i].isStore && store == nil {
				store, other = &accs[i], &accs[partner[i]]
			}
		}
		if store == nil || len(candidate) > 0 {
			continue
		}
		obj := f.Prog.Objects[id]
		kind := "read"
		if other.isStore {
			kind = "written"
		}
		out = append(out, diag.Diagnostic{
			Line: ir.LineOf(store.inst.Stmt),
			Message: fmt.Sprintf(
				"shared object %s is written with an empty candidate lockset: no single lock protects all of its accesses",
				obj),
			Object:  obj.Name,
			Threads: []string{store.inst.Thread.String(), other.inst.Thread.String()},
			Related: []diag.Related{{
				Line:    ir.LineOf(other.inst.Stmt),
				Message: fmt.Sprintf("also %s here without a common lock", kind),
			}},
		})
	}
	return out
}

// intersectLocksets intersects two locksets; nil means empty.
func intersectLocksets(a, b map[ir.ObjID]bool) map[ir.ObjID]bool {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := map[ir.ObjID]bool{}
	for id := range a {
		if b[id] {
			out[id] = true
		}
	}
	return out
}

var escapeLeakChecker = &Checker{
	ID:       "escapeleak",
	Name:     "EscapeLeak",
	Doc:      "address of a thread-local stack object stored into a shared sink (latent escape)",
	Severity: diag.SevNote,
	available: func(f *Facts) string {
		if f.Model == nil {
			return "requires the thread model (" + f.PrecisionNote + ")"
		}
		if f.Escape == nil {
			return "requires the escape analysis (" + f.PrecisionNote + ")"
		}
		return ""
	},
	run: escapeLeaks,
}

// escapeLeaks flags stores that place the address of a ThreadLocal stack
// object into a Shared sink. The escape classification is accessor-based:
// as long as no other thread dereferences the leaked pointer the object
// stays ThreadLocal, so the leak is latent — the stack frame's lifetime is
// now entangled with shared state and any future reader turns it into a
// cross-thread stack access.
func escapeLeaks(f *Facts) []diag.Diagnostic {
	type key struct {
		store ir.StmtID
		local ir.ObjID
		sink  ir.ObjID
	}
	seen := map[key]bool{}
	var out []diag.Diagnostic
	for _, fn := range f.Prog.Funcs {
		if f.Reachable != nil && !f.Reachable[fn] {
			continue
		}
		for _, blk := range fn.Blocks {
			for _, s := range blk.Stmts {
				st, ok := s.(*ir.Store)
				if !ok {
					continue
				}
				sinks := f.pointsTo(st.Addr)
				leaked := f.pointsTo(st.Src)
				sinks.ForEach(func(gid uint32) {
					sink := f.Prog.Objects[gid]
					if !f.Escape.IsShared(sink.ID) {
						return
					}
					leaked.ForEach(func(xid uint32) {
						x := f.Prog.Objects[xid]
						if x.Root().Kind != ir.ObjStack ||
							f.Escape.ClassOf(x.ID) != escape.ThreadLocal ||
							x.ID == sink.ID {
							return
						}
						k := key{st.ID(), x.ID, sink.ID}
						if seen[k] {
							return
						}
						seen[k] = true
						out = append(out, diag.Diagnostic{
							Line: ir.LineOf(st),
							Message: fmt.Sprintf(
								"address of thread-local stack object %s stored into shared %s; it can now escape its owning thread",
								x, sink),
							Object: x.Name,
						})
					})
				})
			}
		}
	}
	return out
}

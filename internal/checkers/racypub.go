package checkers

// Racy publication under relaxed memory: a thread initializes an object
// with one or more stores and then publishes a pointer to it through a
// shared location another thread reads. Under sequential consistency the
// program-order init→publish edge guarantees every reader that sees the
// pointer also sees the initialization. Under TSO/PSO the initializing
// store can still sit in the writer's store buffer when the publication
// commits, so a reader may dereference the pointer into uninitialized (or
// stale) memory — the double-checked-locking bug class. The checker is
// memory-model aware: it reports nothing under SC, where the pattern is
// safe.
//
// Detection is structural over the pre-analysis and the thread model (so
// it is available at every precision tier): within one thread's walk of a
// function, a store S1 whose address may name object X followed by a store
// S2 that (a) writes a value that may point to X and (b) targets a shared
// object some other thread may read, is a publication of X racing its own
// initialization.

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/threads"
)

var racypubChecker = &Checker{
	ID:       "racypub",
	Name:     "RacyPublication",
	Doc:      "pointer published to another thread before its pointee's stores commit (unsafe under tso/pso)",
	Severity: diag.SevWarning,
	available: func(f *Facts) string {
		if f.Model == nil {
			return "requires the thread model (" + f.PrecisionNote + ")"
		}
		return ""
	},
	run: func(f *Facts) []diag.Diagnostic {
		if f.MemModel == "" || f.MemModel == "sc" {
			// Program-order init→publish is preserved at commit time under
			// SC: nothing to report.
			return nil
		}
		return racyPublications(f)
	},
}

// objReaders maps each object to the set of thread IDs that may load from
// it, per the pre-analysis address sets and the thread model's slices.
func objReaders(f *Facts) map[ir.ObjID]map[int]bool {
	readers := map[ir.ObjID]map[int]bool{}
	for _, t := range f.Model.Threads {
		for _, fc := range sortedFuncs(f.Model, t) {
			for _, blk := range fc.Func.Blocks {
				for _, s := range blk.Stmts {
					l, ok := s.(*ir.Load)
					if !ok {
						continue
					}
					f.Pre.PointsToVar(l.Addr).ForEach(func(id uint32) {
						obj := f.Prog.Objects[id]
						if readers[obj.ID] == nil {
							readers[obj.ID] = map[int]bool{}
						}
						readers[obj.ID][t.ID] = true
					})
				}
			}
		}
	}
	return readers
}

// racyPublications walks every thread's functions in program order, tracks
// the earliest in-walk store to each object, and flags stores that publish
// a pointer to an already-stored-to object into a location a different
// thread (or another instance of a multi thread) may read.
func racyPublications(f *Facts) []diag.Diagnostic {
	readers := objReaders(f)
	type key struct {
		pub     ir.StmtID
		pointee ir.ObjID
	}
	seen := map[key]bool{}
	var out []diag.Diagnostic
	for _, t := range f.Model.Threads {
		for _, fc := range sortedFuncs(f.Model, t) {
			firstStore := map[ir.ObjID]*ir.Store{}
			for _, blk := range fc.Func.Blocks {
				for _, s := range blk.Stmts {
					st, ok := s.(*ir.Store)
					if !ok {
						continue
					}
					targets := f.Pre.PointsToVar(st.Addr)
					published := f.Pre.PointsToVar(st.Src)
					targets.ForEach(func(gid uint32) {
						g := f.Prog.Objects[gid]
						if !readByPeer(readers[g.ID], t) {
							return
						}
						published.ForEach(func(xid uint32) {
							x := f.Prog.Objects[xid]
							init := firstStore[x.ID]
							if init == nil || init == st || x == g {
								return
							}
							k := key{st.ID(), x.ID}
							if seen[k] {
								return
							}
							seen[k] = true
							out = append(out, diag.Diagnostic{
								Line: ir.LineOf(st),
								Message: fmt.Sprintf(
									"%s publishes a pointer to %s through %s before the initializing store may commit under %s",
									t, x, g, f.MemModel),
								Object:  g.Name,
								Threads: []string{t.String()},
								Related: []diag.Related{{
									Line:    ir.LineOf(init),
									Message: fmt.Sprintf("%s initialized here; still buffered when the publication commits", x),
								}},
							})
						})
					})
					// Record after flagging so a store never races itself.
					targets.ForEach(func(gid uint32) {
						obj := f.Prog.Objects[gid]
						if firstStore[obj.ID] == nil {
							firstStore[obj.ID] = st
						}
					})
				}
			}
		}
	}
	return out
}

// readByPeer reports whether a thread other than the publisher — or
// another runtime instance of a multi publisher — may read the object.
func readByPeer(rs map[int]bool, publisher *threads.Thread) bool {
	for id := range rs {
		if id != publisher.ID || publisher.Multi {
			return true
		}
	}
	return false
}

package checkers_test

// The checker registry and the individual checkers, driven through the
// facade over small inline programs (the external test package avoids the
// repro -> checkers import cycle).

import (
	"errors"
	"strings"
	"testing"

	fsam "repro"
	"repro/internal/checkers"
	"repro/internal/diag"
)

func analyze(t *testing.T, src string) *fsam.Analysis {
	t.Helper()
	a, err := fsam.AnalyzeSource("test.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.Precision != fsam.PrecisionSparseFS {
		t.Fatalf("precision %s, want full (%s)", a.Precision, a.Stats.Degraded)
	}
	return a
}

// byChecker groups finalized diagnostics by checker ID.
func byChecker(diags []diag.Diagnostic) map[string][]diag.Diagnostic {
	out := map[string][]diag.Diagnostic{}
	for _, d := range diags {
		out[d.Checker] = append(out[d.Checker], d)
	}
	return out
}

func TestRegistry(t *testing.T) {
	want := []string{"race", "deadlock", "leak", "uaf", "doublefree", "pthread",
		"racypub", "localonlylock", "unsyncshared", "escapeleak"}
	got := checkers.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i, id := range want {
		if got[i] != id {
			t.Fatalf("IDs()[%d] = %q, want %q", i, got[i], id)
		}
		c := checkers.ByID(id)
		if c == nil || c.ID != id {
			t.Fatalf("ByID(%q) = %v", id, c)
		}
		r := c.Rule()
		if r.ID != id || r.Name == "" || r.Doc == "" {
			t.Fatalf("Rule(%q) incomplete: %+v", id, r)
		}
	}
	if checkers.ByID("nope") != nil {
		t.Fatal("ByID(nope) != nil")
	}
	if len(checkers.Rules()) != len(want) {
		t.Fatalf("Rules() = %d rules, want %d", len(checkers.Rules()), len(want))
	}
	if len(checkers.Rules("uaf", "race")) != 2 {
		t.Fatal("Rules(uaf, race) != 2 rules")
	}
}

func TestRunUnknownChecker(t *testing.T) {
	_, err := checkers.Run(&checkers.Facts{}, "nope")
	if !errors.Is(err, checkers.ErrUnknownChecker) {
		t.Fatalf("Run(nope) err = %v, want ErrUnknownChecker", err)
	}
}

// TestRunDegradedFactsSkipsAll: an empty Facts bundle (nothing available)
// must skip every checker with a reason, not panic or report.
func TestRunDegradedFactsSkipsAll(t *testing.T) {
	res, err := checkers.Run(&checkers.Facts{PrecisionNote: "Andersen-only: budget"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("degraded run reported %d diagnostics", len(res.Diags))
	}
	for _, id := range checkers.IDs() {
		if res.Skipped[id] == "" {
			t.Errorf("checker %s not skipped on empty facts", id)
		}
	}
}

func TestSequentialUseAfterFree(t *testing.T) {
	a := analyze(t, `
int main() {
	int *p;
	p = malloc(4);
	*p = 1;
	free(p);
	*p = 2;
	return 0;
}
`)
	res, err := a.Diagnostics("uaf")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("uaf diags = %d, want 1: %+v", len(res.Diags), res.Diags)
	}
	d := res.Diags[0]
	if !strings.Contains(d.Message, "after free(p)") || strings.Contains(d.Message, "concurrently") {
		t.Fatalf("want sequential UAF message, got %q", d.Message)
	}
	if d.Line != 7 {
		t.Fatalf("uaf line = %d, want 7 (the use)", d.Line)
	}
	if len(d.Related) != 1 || d.Related[0].Line != 6 {
		t.Fatalf("related = %+v, want the free at line 6", d.Related)
	}
}

func TestCrossThreadUseAfterFree(t *testing.T) {
	a := analyze(t, `
int *buf;
int sink;
void worker(void *arg) {
	sink = *buf;
}
int main() {
	thread_t t;
	buf = malloc(4);
	t = spawn(worker, NULL);
	free(buf);
	join(t);
	return 0;
}
`)
	res, err := a.Diagnostics("uaf")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("uaf diags = %d, want 1: %+v", len(res.Diags), res.Diags)
	}
	d := res.Diags[0]
	if !strings.Contains(d.Message, "concurrently") {
		t.Fatalf("want concurrent UAF message, got %q", d.Message)
	}
	if len(d.Threads) != 2 {
		t.Fatalf("concurrent UAF wants a two-thread witness, got %v", d.Threads)
	}
}

func TestDoubleFree(t *testing.T) {
	a := analyze(t, `
int main() {
	int *p;
	p = malloc(4);
	free(p);
	free(p);
	return 0;
}
`)
	res, err := a.Diagnostics("doublefree")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("doublefree diags = %d, want 1: %+v", len(res.Diags), res.Diags)
	}
	d := res.Diags[0]
	if d.Line != 6 || len(d.Related) != 1 || d.Related[0].Line != 5 {
		t.Fatalf("double free should anchor the second free (line 6) and relate the first (5): %+v", d)
	}
}

// TestSingleFreeInLoopNotDoubleFree: one free site executed repeatedly is
// not reported (the checker pairs distinct statements only).
func TestSingleFreeInLoopNotDoubleFree(t *testing.T) {
	a := analyze(t, `
int main() {
	int *p;
	int i;
	i = 0;
	while (i < 2) {
		p = malloc(4);
		free(p);
		i = i + 1;
	}
	return 0;
}
`)
	res, err := a.Diagnostics("doublefree")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("loop single-free flagged: %+v", res.Diags)
	}
}

func TestDoubleLock(t *testing.T) {
	a := analyze(t, `
lock_t m;
int x;
int main() {
	lock(&m);
	lock(&m);
	x = 1;
	unlock(&m);
	return 0;
}
`)
	res, err := a.Diagnostics("pthread")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	var found bool
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "double lock of m") && d.Line == 6 {
			found = true
			if len(d.Related) != 1 || d.Related[0].Line != 5 {
				t.Fatalf("double lock should relate the first acquisition at 5: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("no double-lock finding in %+v", res.Diags)
	}
}

func TestUnlockWithoutLock(t *testing.T) {
	a := analyze(t, `
lock_t m;
int main() {
	unlock(&m);
	return 0;
}
`)
	res, err := a.Diagnostics("pthread")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	if len(res.Diags) != 1 || !strings.Contains(res.Diags[0].Message, "without a matching lock") {
		t.Fatalf("want one unlock-without-lock finding, got %+v", res.Diags)
	}
}

// TestPairedLockUnlockClean: a well-formed critical section produces no
// pthread findings.
func TestPairedLockUnlockClean(t *testing.T) {
	a := analyze(t, `
lock_t m;
int x;
int main() {
	lock(&m);
	x = 1;
	unlock(&m);
	return 0;
}
`)
	res, err := a.Diagnostics("pthread")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("clean lock/unlock flagged: %+v", res.Diags)
	}
}

func TestSelfJoin(t *testing.T) {
	a := analyze(t, `
thread_t t;
void worker(void *arg) {
	join(t);
}
int main() {
	t = spawn(worker, NULL);
	join(t);
	return 0;
}
`)
	res, err := a.Diagnostics("pthread")
	if err != nil {
		t.Fatalf("Diagnostics: %v", err)
	}
	var found bool
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "may join itself") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no self-join finding in %+v", res.Diags)
	}
}

// TestSubsetFingerprintsMatchFullRun: requesting one checker must return
// the same fingerprints the full suite assigns (the suite is memoized and
// filtered, never re-finalized).
func TestSubsetFingerprintsMatchFullRun(t *testing.T) {
	a := analyze(t, `
int main() {
	int *p;
	p = malloc(4);
	free(p);
	*p = 2;
	return 0;
}
`)
	full, err := a.Diagnostics()
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	sub, err := a.Diagnostics("uaf")
	if err != nil {
		t.Fatalf("subset: %v", err)
	}
	fullUAF := byChecker(full.Diags)["uaf"]
	if len(fullUAF) != len(sub.Diags) {
		t.Fatalf("subset returned %d uaf diags, full run had %d", len(sub.Diags), len(fullUAF))
	}
	for i := range sub.Diags {
		if sub.Diags[i].Fingerprint != fullUAF[i].Fingerprint {
			t.Fatalf("fingerprint drift between subset and full run: %q vs %q",
				sub.Diags[i].Fingerprint, fullUAF[i].Fingerprint)
		}
	}
}

func TestUnknownCheckerViaFacade(t *testing.T) {
	a := analyze(t, `int main() { return 0; }`)
	if _, err := a.Diagnostics("bogus"); !errors.Is(err, checkers.ErrUnknownChecker) {
		t.Fatalf("err = %v, want ErrUnknownChecker", err)
	}
}

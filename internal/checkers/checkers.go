// Package checkers is the go/vet-style registry of the diagnostic suite:
// each Checker adapts one bug-finding client of the FSAM results (the
// existing race/deadlock/leak detectors plus the use-after-free,
// double-free and pthread-misuse checkers defined here) to the unified
// diag.Diagnostic model.
//
// The registry consumes a Facts bundle rather than the fsam.Analysis facade
// so the dependency points one way: the facade builds Facts from its
// completed phases and calls Run. Checkers are tier-aware — a checker whose
// required analyses are missing (degraded precision, ablation switches)
// reports a skip reason instead of wrong results.
package checkers

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/andersen"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pts"
	"repro/internal/threads"
)

// Facts bundles the analysis results checkers consume. Fields may be nil
// when the corresponding phase did not run (ablation Config switches) or
// was lost to precision degradation; each checker declares what it needs.
type Facts struct {
	// File is the source file name diagnostics are attributed to.
	File string
	Prog *ir.Program
	// Model is the static thread model (nil below the thread-model phase).
	Model *threads.Model
	// MHP is the interleaving analysis (nil under NoInterleaving or when
	// degraded).
	MHP *mhp.Result
	// Locks is the lock-span analysis (nil under NoLock or when degraded).
	Locks *locks.Result
	// Points is the flow-sensitive points-to result; nil at the
	// Andersen-only tier.
	Points *core.Result
	// Pre is the flow-insensitive pre-analysis, the fallback for points-to
	// queries. Always present once a program compiled.
	Pre *andersen.Result
	// Reachable filters to functions reachable from main (nil: no filter).
	Reachable map[*ir.Function]bool
	// FullPrecision is true when the analysis landed on the full sparse
	// flow-sensitive tier; PrecisionNote carries the tier and degradation
	// reason otherwise, for skip messages.
	FullPrecision bool
	PrecisionNote string
	// MemModel is the memory consistency model the analysis ran under
	// ("sc", "tso", "pso"; "" reads as "sc"). Memory-model-aware checkers
	// (racypub) key off it: a pattern that is only unsafe under relaxed
	// models reports nothing under SC.
	MemModel string
	// Escape is the thread-escape sharedness classification. The
	// escape-aware checkers (localonlylock, unsyncshared, escapeleak) need
	// it; nil skips them.
	Escape *escape.Result
}

// pointsTo answers a top-level-variable points-to query from the most
// precise result available (top-level variables are SSA, so the
// flow-sensitive answer is flow-invariant). The sparse result can be empty
// for dead code; fall back to the pre-analysis, mirroring race.Detector.
func (f *Facts) pointsTo(v *ir.Var) *pts.Set {
	if f.Points != nil {
		if s := f.Points.PointsToVar(v); !s.IsEmpty() {
			return s
		}
	}
	return f.Pre.PointsToVar(v)
}

// Checker is one registered diagnostic pass.
type Checker struct {
	// ID is the stable registry key ("race", "uaf", ...) used in -checkers
	// lists, fsam:ignore filters and SARIF ruleIds.
	ID string
	// Name is the SARIF rule name (CamelCase).
	Name string
	// Doc is a one-line description.
	Doc string
	// Severity classifies every finding of this checker.
	Severity diag.Severity

	// available returns "" when the checker can run over f, else the
	// human-readable skip reason.
	available func(f *Facts) string
	// run produces the findings. Severity and File are stamped by Run.
	run func(f *Facts) []diag.Diagnostic
}

// Rule returns the checker's SARIF rule metadata.
func (c *Checker) Rule() diag.Rule {
	return diag.Rule{ID: c.ID, Name: c.Name, Doc: c.Doc}
}

// all is the registry, in canonical order. Order matters only for listings
// (rules metadata, -checkers help); findings are sorted positionally.
var all = []*Checker{
	raceChecker,
	deadlockChecker,
	leakChecker,
	uafChecker,
	doubleFreeChecker,
	pthreadChecker,
	racypubChecker,
	localOnlyLockChecker,
	unsyncSharedChecker,
	escapeLeakChecker,
}

// All returns the registered checkers in canonical order.
func All() []*Checker { return all }

// IDs returns the registered checker IDs in canonical order.
func IDs() []string {
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.ID
	}
	return out
}

// ByID resolves a checker by registry ID (nil if unknown).
func ByID(id string) *Checker {
	for _, c := range all {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Rules returns SARIF rule metadata for the given checker IDs (all
// registered checkers when ids is empty).
func Rules(ids ...string) []diag.Rule {
	var out []diag.Rule
	if len(ids) == 0 {
		ids = IDs()
	}
	for _, id := range ids {
		if c := ByID(id); c != nil {
			out = append(out, c.Rule())
		}
	}
	return out
}

// ErrUnknownChecker is wrapped by Run for unrecognized checker IDs.
var ErrUnknownChecker = errors.New("unknown checker")

// Result is the outcome of one Run: finalized diagnostics (canonically
// sorted, fingerprints assigned) plus the skip reason of every requested
// checker that could not run over these Facts.
type Result struct {
	Diags   []diag.Diagnostic
	Skipped map[string]string
}

// Run executes the requested checkers (all of them when ids is empty) over
// f and returns the finalized findings. Unknown IDs error with
// ErrUnknownChecker; unavailable checkers are recorded in Skipped rather
// than failing the run.
func Run(f *Facts, ids ...string) (*Result, error) {
	var selected []*Checker
	if len(ids) == 0 {
		selected = all
	} else {
		seen := map[string]bool{}
		for _, id := range ids {
			c := ByID(id)
			if c == nil {
				return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownChecker, id, IDs())
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			selected = append(selected, c)
		}
	}

	res := &Result{Skipped: map[string]string{}}
	for _, c := range selected {
		if reason := c.available(f); reason != "" {
			res.Skipped[c.ID] = reason
			continue
		}
		for _, d := range c.run(f) {
			d.Checker = c.ID
			d.Severity = c.Severity
			d.File = f.File
			res.Diags = append(res.Diags, d)
		}
	}
	diag.Finalize(res.Diags)
	return res, nil
}

// sortedFuncs returns a thread's executed (function, context) pairs in a
// deterministic order; Model.Funcs is a map, and iterating it directly
// would let witness selection drift between runs.
func sortedFuncs(m *threads.Model, t *threads.Thread) []threads.FuncCtx {
	fcs := make([]threads.FuncCtx, 0, len(m.Funcs(t)))
	for fc := range m.Funcs(t) {
		fcs = append(fcs, fc)
	}
	sort.Slice(fcs, func(i, j int) bool {
		if fcs[i].Func.Name != fcs[j].Func.Name {
			return fcs[i].Func.Name < fcs[j].Func.Name
		}
		return fcs[i].Ctx < fcs[j].Ctx
	})
	return fcs
}

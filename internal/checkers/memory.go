package checkers

// Use-after-free and double-free: the two new memory checkers built on the
// flow-sensitive points-to of free() arguments. A freed heap object is
// matched against later accesses two ways: sequentially, via intraprocedural
// CFG reachability from the free site, and cross-thread, via the
// interleaving analysis (an access that may-happen-in-parallel with the
// free). The cross-thread direction is what the paper's thread-aware
// analyses enable: without MHP facts a free in one thread and a use in
// another look unrelated.

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/pts"
)

// cfgReach memoizes intraprocedural block-level reachability (through
// successor edges, so a block reaches itself only via a cycle).
type cfgReach struct {
	memo map[*ir.Block]map[*ir.Block]bool
}

func newCFGReach() *cfgReach { return &cfgReach{memo: map[*ir.Block]map[*ir.Block]bool{}} }

func (r *cfgReach) reachable(from, to *ir.Block) bool {
	set := r.memo[from]
	if set == nil {
		set = map[*ir.Block]bool{}
		stack := append([]*ir.Block(nil), from.Succs...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if set[b] {
				continue
			}
			set[b] = true
			stack = append(stack, b.Succs...)
		}
		r.memo[from] = set
	}
	return set[to]
}

// stmtIdx returns s's position within its block.
func stmtIdx(s ir.Stmt) int {
	for i, t := range s.Parent().Stmts {
		if t == s {
			return i
		}
	}
	return -1
}

// seqAfter reports whether b may execute strictly after a on some
// intraprocedural path (same function only; cross-function sequencing is
// out of scope for these heuristic checkers).
func seqAfter(reach *cfgReach, a, b ir.Stmt) bool {
	ba, bb := a.Parent(), b.Parent()
	if ba == nil || bb == nil || ba.Func != bb.Func {
		return false
	}
	if ba == bb {
		if stmtIdx(b) > stmtIdx(a) {
			return true
		}
		return reach.reachable(ba, ba) // earlier in the block, via a cycle
	}
	return reach.reachable(ba, bb)
}

// heapOnly filters a points-to set down to heap objects.
func heapOnly(prog *ir.Program, set *pts.Set) *pts.Set {
	out := &pts.Set{}
	set.ForEach(func(id uint32) {
		if prog.Objects[id].Kind == ir.ObjHeap {
			out.Add(id)
		}
	})
	return out
}

// freeSites returns the program's Free statements in statement order,
// restricted to reachable functions.
func freeSites(f *Facts) []*ir.Free {
	var out []*ir.Free
	for _, s := range f.Prog.Stmts {
		fr, ok := s.(*ir.Free)
		if !ok {
			continue
		}
		if fn := ir.StmtFunc(fr); fn != nil && f.Reachable != nil && !f.Reachable[fn] {
			continue
		}
		out = append(out, fr)
	}
	return out
}

// freeText names a free site in user terms.
func freeText(fr *ir.Free) string {
	if fr.ArgText != "" {
		return "free(" + fr.ArgText + ")"
	}
	return "free"
}

// mhpWitness returns the thread names of one MHP instance pair of s1/s2.
func mhpWitness(f *Facts, s1, s2 ir.Stmt) []string {
	pairs := f.MHP.MHPInstances(s1, s2)
	if len(pairs) == 0 {
		return nil
	}
	return []string{pairs[0][0].Thread.String(), pairs[0][1].Thread.String()}
}

func memAvailable(f *Facts) string {
	if f.Prog == nil || f.Pre == nil {
		return "requires a compiled program"
	}
	return ""
}

var uafChecker = &Checker{
	ID:        "uaf",
	Name:      "UseAfterFree",
	Doc:       "a load or store that may access a heap object after it was freed, sequentially or concurrently",
	Severity:  diag.SevError,
	available: memAvailable,
	run: func(f *Facts) []diag.Diagnostic {
		reach := newCFGReach()
		frees := freeSites(f)
		if len(frees) == 0 {
			return nil
		}
		type accSite struct {
			stmt ir.Stmt
			addr *ir.Var
		}
		var accesses []accSite
		for _, s := range f.Prog.Stmts {
			switch s := s.(type) {
			case *ir.Load:
				accesses = append(accesses, accSite{s, s.Addr})
			case *ir.Store:
				accesses = append(accesses, accSite{s, s.Addr})
			}
		}
		type key struct {
			acc ir.StmtID
			obj ir.ObjID
		}
		seen := map[key]bool{}
		var out []diag.Diagnostic
		for _, fr := range frees {
			freed := heapOnly(f.Prog, f.pointsTo(fr.Ptr))
			if freed.IsEmpty() {
				continue
			}
			for _, acc := range accesses {
				common := heapOnly(f.Prog, freed.Intersect(f.pointsTo(acc.addr)))
				if common.IsEmpty() {
					continue
				}
				seq := seqAfter(reach, fr, acc.stmt)
				conc := !seq && f.MHP != nil && f.MHP.MHPStmts(fr, acc.stmt)
				if !seq && !conc {
					continue
				}
				common.ForEach(func(id uint32) {
					k := key{acc.stmt.ID(), ir.ObjID(id)}
					if seen[k] {
						return
					}
					seen[k] = true
					obj := f.Prog.Objects[id]
					d := diag.Diagnostic{
						Line:   ir.LineOf(acc.stmt),
						Object: obj.Name,
						Related: []diag.Related{{
							Line:    ir.LineOf(fr),
							Message: "freed here by " + freeText(fr),
						}},
					}
					if seq {
						d.Message = fmt.Sprintf("use after free: %s of %s after %s",
							accessKind(acc.stmt), obj, freeText(fr))
					} else {
						d.Message = fmt.Sprintf("use after free: %s of %s may run concurrently with %s in another thread",
							accessKind(acc.stmt), obj, freeText(fr))
						d.Threads = mhpWitness(f, fr, acc.stmt)
					}
					out = append(out, d)
				})
			}
		}
		return out
	},
}

var doubleFreeChecker = &Checker{
	ID:        "doublefree",
	Name:      "DoubleFree",
	Doc:       "two free() calls that may release the same heap object, sequentially or concurrently",
	Severity:  diag.SevError,
	available: memAvailable,
	run: func(f *Facts) []diag.Diagnostic {
		reach := newCFGReach()
		frees := freeSites(f)
		if len(frees) < 2 {
			return nil
		}
		freed := make([]*pts.Set, len(frees))
		for i, fr := range frees {
			freed[i] = heapOnly(f.Prog, f.pointsTo(fr.Ptr))
		}
		var out []diag.Diagnostic
		for i, fr1 := range frees {
			for j := i + 1; j < len(frees); j++ {
				fr2 := frees[j]
				common := freed[i].Intersect(freed[j])
				if common.IsEmpty() {
					continue
				}
				seq12 := seqAfter(reach, fr1, fr2)
				seq21 := !seq12 && seqAfter(reach, fr2, fr1)
				conc := !seq12 && !seq21 && f.MHP != nil && f.MHP.MHPStmts(fr1, fr2)
				if !seq12 && !seq21 && !conc {
					continue
				}
				// first frees, second double-frees (for concurrent pairs the
				// order is arbitrary; keep statement order for determinism).
				first, second := fr1, fr2
				if seq21 {
					first, second = fr2, fr1
				}
				common.ForEach(func(id uint32) {
					obj := f.Prog.Objects[id]
					d := diag.Diagnostic{
						Line:   ir.LineOf(second),
						Object: obj.Name,
						Related: []diag.Related{{
							Line:    ir.LineOf(first),
							Message: "first freed here by " + freeText(first),
						}},
					}
					if conc {
						d.Message = fmt.Sprintf("double free of %s: %s may run concurrently with %s in another thread",
							obj, freeText(second), freeText(first))
						d.Threads = mhpWitness(f, first, second)
					} else {
						d.Message = fmt.Sprintf("double free of %s: %s may run after %s",
							obj, freeText(second), freeText(first))
					}
					out = append(out, d)
				})
			}
		}
		return out
	},
}

package icfg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the ICFG in Graphviz DOT format: one cluster per
// function, intra edges solid, call/return edges dashed blue, fork edges
// dashed red.
func (g *Graph) WriteDot(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph icfg {\n")
	b.WriteString("  node [fontname=\"monospace\", fontsize=10, shape=box];\n")

	esc := func(s string) string {
		s = strings.ReplaceAll(s, "\\", "\\\\")
		return strings.ReplaceAll(s, "\"", "\\\"")
	}

	byFunc := map[string][]*Node{}
	for _, n := range g.Nodes {
		byFunc[n.Func.Name] = append(byFunc[n.Func.Name], n)
	}
	for fname, nodes := range byFunc {
		fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n", esc(fname))
		fmt.Fprintf(&b, "    label=\"%s\";\n", esc(fname))
		for _, n := range nodes {
			fmt.Fprintf(&b, "    n%d [label=\"%s\"];\n", n.ID, esc(n.String()))
		}
		b.WriteString("  }\n")
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			style, color := "solid", "black"
			switch e.Kind {
			case ECall, ERet:
				style, color = "dashed", "blue"
			case EForkCall, EForkRet:
				style, color = "dashed", "red"
			}
			fmt.Fprintf(&b, "  n%d -> n%d [style=%s, color=%s];\n",
				n.ID, e.To.ID, style, color)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

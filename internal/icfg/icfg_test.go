package icfg_test

import (
	"testing"

	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/frontend/parser"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/irbuild"
)

func build(t *testing.T, src string) *icfg.Graph {
	t.Helper()
	f, errs := parser.Parse("t.mc", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	prog, err := irbuild.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return icfg.Build(callgraph.Build(andersen.Analyze(prog)))
}

// findStmt locates the first statement of the given type in a function.
func findStmt[T ir.Stmt](g *icfg.Graph, fname string) T {
	var zero T
	f := g.Prog.FuncByName[fname]
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if v, ok := s.(T); ok {
				return v
			}
		}
	}
	return zero
}

func TestCallReturnSplit(t *testing.T) {
	g := build(t, `
void callee() { }
int main() { callee(); return 0; }
`)
	call := findStmt[*ir.Call](g, "main")
	cn := g.StmtNode[call]
	rn := g.RetNode[call]
	if cn == nil || rn == nil {
		t.Fatal("missing call/ret nodes")
	}
	// Resolved calls have no direct fall-through; control goes through the
	// callee via ECall/ERet.
	var hasCallEdge, hasIntraShortcut bool
	for _, e := range cn.Out {
		switch e.Kind {
		case icfg.ECall:
			hasCallEdge = true
			if e.To != g.EntryOf[g.Prog.FuncByName["callee"]] {
				t.Error("call edge target")
			}
		case icfg.EIntra:
			hasIntraShortcut = true
		}
	}
	if !hasCallEdge {
		t.Error("missing ECall edge")
	}
	if hasIntraShortcut {
		t.Error("resolved call must not fall through directly")
	}
	// Return edge from callee exit to the return node.
	exit := g.ExitOf[g.Prog.FuncByName["callee"]]
	found := false
	for _, e := range exit.Out {
		if e.Kind == icfg.ERet && e.To == rn {
			found = true
		}
	}
	if !found {
		t.Error("missing ERet edge")
	}
}

func TestForkEdges(t *testing.T) {
	g := build(t, `
void worker(void *a) { }
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	join(t);
	return 0;
}
`)
	fork := findStmt[*ir.Fork](g, "main")
	cn := g.StmtNode[fork]
	rn := g.RetNode[fork]
	var fallThrough, forkCall bool
	for _, e := range cn.Out {
		switch e.Kind {
		case icfg.EIntra:
			if e.To == rn {
				fallThrough = true
			}
		case icfg.EForkCall:
			forkCall = true
		}
	}
	if !fallThrough {
		t.Error("fork must fall through (the spawner continues)")
	}
	if !forkCall {
		t.Error("fork must have an EForkCall edge to the routine (Pseq)")
	}
	// EForkRet from routine exit back to the fork's return node.
	exit := g.ExitOf[g.Prog.FuncByName["worker"]]
	found := false
	for _, e := range exit.Out {
		if e.Kind == icfg.EForkRet && e.To == rn {
			found = true
		}
	}
	if !found {
		t.Error("missing EForkRet edge")
	}
}

func TestRetsWireToExit(t *testing.T) {
	g := build(t, `
int f(int c) {
	if (c > 0) { return 1; }
	return 2;
}
int main() { f(0); return 0; }
`)
	exit := g.ExitOf[g.Prog.FuncByName["f"]]
	rets := 0
	for _, e := range exit.In {
		if e.Kind == icfg.EIntra {
			if _, ok := e.From.Stmt.(*ir.Ret); ok {
				rets++
			}
		}
	}
	if rets != 2 {
		t.Errorf("ret edges into exit = %d, want 2", rets)
	}
}

func TestEmptyBlocksCompressed(t *testing.T) {
	g := build(t, `
int main() {
	int i;
	for (i = 0; i < 3; i++) {
	}
	return 0;
}
`)
	// Every node must be connected: no node except exits has zero out.
	for _, n := range g.Nodes {
		if n.Kind == icfg.NExit {
			continue
		}
		if len(n.Out) == 0 && n.Func.Name == "main" {
			t.Errorf("dangling node %v", n)
		}
	}
}

func TestUnresolvedExternalCallFallsThrough(t *testing.T) {
	g := build(t, `
void *fp;
int main() {
	fp(1);
	return 0;
}
`)
	call := findStmt[*ir.Call](g, "main")
	if call == nil {
		t.Skip("call lowered differently")
	}
	cn := g.StmtNode[call]
	hasIntra := false
	for _, e := range cn.Out {
		if e.Kind == icfg.EIntra {
			hasIntra = true
		}
	}
	if !hasIntra {
		t.Error("unresolved call must fall through")
	}
}

func TestFirstStmtNode(t *testing.T) {
	g := build(t, `
int main() {
	int x;
	x = 1;
	return x;
}
`)
	n := g.FirstStmtNode(g.Prog.Main)
	if n == nil || n.Kind == icfg.NEntry {
		t.Errorf("FirstStmtNode = %v", n)
	}
}

func TestStats(t *testing.T) {
	g := build(t, `int main() { return 0; }`)
	nodes, edges := g.Stats()
	if nodes == 0 || edges == 0 {
		t.Errorf("stats %d/%d", nodes, edges)
	}
}
